#!/usr/bin/env python
"""Train the AI physics suite (§5.2.1) and run the atmosphere with it.

Follows the paper's pipeline end-to-end at laptop scale:
1. generate the training archive — high-resolution conventional-physics
   output over days spanning four seasons;
2. train the AI tendency CNN and the radiation MLP on the 7:1 day split
   (3 random validation steps per training day);
3. evaluate skill on the held-out test days;
4. drop the trained suite into GRIST in place of the conventional suite
   and compare one simulated day of the two models.

Run:  python examples/ai_physics_training.py
"""

import time

import numpy as np

from repro.ai import split_by_days
from repro.atm import (
    AIPhysicsSuite,
    ConventionalPhysics,
    GristConfig,
    GristModel,
    harvest_archive_from_model,
    synthetic_columns,
)

N_DAYS, SAMPLES_PER_DAY, NCOL, NLEV = 6, 8, 128, 10


def main() -> None:
    print("Harvesting the training archive from a conventional-physics run "
          f"({N_DAYS} days x {SAMPLES_PER_DAY} samples x {NCOL} columns)...")
    host = GristModel(GristConfig(level=3, nlev=NLEV))
    host.init()
    archive = harvest_archive_from_model(
        host, n_days=N_DAYS, samples_per_day=SAMPLES_PER_DAY, ncol_per_sample=NCOL
    )
    print(f"  {len(archive['x_column'])} column samples "
          "(the paper's protocol: the model's own high-res output, "
          "supervised by the conventional suite)")

    print("Training the AI suite (tendency CNN + radiation MLP)...")
    t0 = time.perf_counter()
    suite = AIPhysicsSuite.train(archive, epochs=60, width=48, lr=2e-3)
    print(f"  trained in {time.perf_counter() - t0:.1f} s; "
          f"CNN parameters: {suite.tendency_trainer.model.n_params:,} "
          f"(paper-size width-128 net: ~5e5)")

    split = split_by_days(N_DAYS, SAMPLES_PER_DAY)
    test_idx = (split.test[:, None] * NCOL + np.arange(NCOL)[None, :]).ravel()
    skill = suite.skill(archive, test_idx)
    print(f"  held-out skill: tendency R^2 = {skill['tendency']:.2f}, "
          f"radiation R^2 = {skill['radiation']:.2f}")

    # Inference cost comparison.
    cols = synthetic_columns(512, NLEV, season=1, step=3)
    conv = ConventionalPhysics()
    t0 = time.perf_counter()
    for _ in range(5):
        conv.compute(cols, 120.0)
    t_conv = (time.perf_counter() - t0) / 5
    t0 = time.perf_counter()
    for _ in range(5):
        suite.compute(cols, 120.0)
    t_ai = (time.perf_counter() - t0) / 5
    print(f"  cost per 512 columns: conventional {t_conv * 1e3:.1f} ms, "
          f"AI suite {t_ai * 1e3:.1f} ms")

    print("\nRunning GRIST two days with each suite...")
    results = {}
    for name, physics in (("conventional", None), ("AI", suite)):
        model = GristModel(GristConfig(level=3, nlev=NLEV), physics=physics)
        model.init()
        model.run(48)
        out = model.export_state()
        results[name] = out
        print(f"  [{name:>12}] mean precip "
              f"{out['precip'].mean() * 86400:.2f} mm/day, "
              f"T_bot {out['t_bot'].min():.0f}..{out['t_bot'].max():.0f} K, "
              f"mass {model.dycore.total_mass(model.swe):.4e}")
        model.finalize()

    corr = np.corrcoef(results["conventional"]["t_bot"], results["AI"]["t_bot"])[0, 1]
    print(f"\nspatial correlation of near-surface temperature between the "
          f"two suites after two days: {corr:.2f}")
    print("(the AI suite is a drop-in replacement through the same "
          "physics-dynamics coupling interface; the diagnostic module "
          "closes the moisture budget online)")


if __name__ == "__main__":
    main()
