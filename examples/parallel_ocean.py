#!/usr/bin/env python
"""Distributed ocean demo: the barotropic solver block-decomposed over the
simulated MPI runtime, verified bit-for-bit against the serial solver.

This is the §5.1 validation standard ("bit-for-bit ... validation") applied
to this library's own parallel stack: the same gravity-wave adjustment
problem is solved serially and on 1/2/4/8 simulated ranks, and every
variant must agree to the last bit.

Run:  python examples/parallel_ocean.py
"""

import time

import numpy as np

from repro.grids import TripolarGrid
from repro.ocn import BarotropicSolver, BarotropicState, CGridMetrics
from repro.ocn.parallel_run import distributed_barotropic_run

N_STEPS = 50


def main() -> None:
    grid = TripolarGrid.build(64, 48, n_levels=8)
    metrics = CGridMetrics.build(grid)
    solver = BarotropicSolver(metrics, grid.depth)
    dt = solver.max_stable_dt()
    print(f"tripolar grid {grid.nlon}x{grid.nlat}, "
          f"ocean fraction {grid.ocean_fraction:.2f}, dt = {dt:.0f} s")

    rng = np.random.default_rng(0)
    eta0 = np.where(metrics.mask_c, 0.2 * rng.standard_normal(metrics.shape), 0.0)
    taux = np.where(metrics.mask_u, 0.05, 0.0)

    print(f"\nserial reference: {N_STEPS} steps...")
    state = BarotropicState(eta0.copy(), np.zeros_like(eta0), np.zeros_like(eta0))
    t0 = time.perf_counter()
    for _ in range(N_STEPS):
        state, norm = solver.step(state, dt, taux=taux)
    t_serial = time.perf_counter() - t0
    print(f"  {t_serial * 1e3:.0f} ms, final eta norm {norm:.4e}")

    for n_ranks in (1, 2, 4, 8):
        t0 = time.perf_counter()
        dist, norms = distributed_barotropic_run(
            grid, N_STEPS, n_ranks, dt=dt, taux=taux, initial_eta=eta0
        )
        elapsed = time.perf_counter() - t0
        identical = (
            np.array_equal(dist.eta, state.eta)
            and np.array_equal(dist.u, state.u)
            and np.array_equal(dist.v, state.v)
        )
        print(f"  {n_ranks} ranks: {elapsed * 1e3:6.0f} ms "
              f"(threads share one core; this demonstrates correctness, "
              f"not speedup) — bit-identical to serial: {identical}")
        assert identical

    print("\nthe same halo-exchange/topology machinery feeds the machine "
          "model that prices the paper's 37-million-core runs "
          "(see examples/scaling_study.py)")


if __name__ == "__main__":
    main()
