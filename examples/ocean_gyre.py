#!/usr/bin/env python
"""Standalone LICOM demo: a wind-driven gyre spin-up on the tripolar grid.

A steady zonal wind-stress pattern (easterlies / westerlies / easterlies)
spins up subtropical gyres; the western sides of the basins intensify —
the classic Stommel signature — and the non-ocean-point compression
reports its memory saving along the way.

Run:  python examples/ocean_gyre.py
"""

import numpy as np

from repro.esm.diagnostics import surface_speed
from repro.ocn import LicomConfig, LicomModel

DAYS = 30


def main() -> None:
    model = LicomModel(LicomConfig(nlon=96, nlat=64, n_levels=10, compressed=True))
    model.init()
    print(f"ocean grid {model.grid.nlon}x{model.grid.nlat}x{model.grid.n_levels}; "
          f"ocean fraction {model.grid.ocean_fraction:.2f}, "
          f"3-D wet fraction {model.grid.wet_fraction_3d():.2f}")
    rep = model.memory_report()
    print(f"non-ocean-point removal: {100 * rep['reduction']:.0f}% of the state "
          f"bytes removed ({rep['full_bytes'] / 1e6:.1f} -> "
          f"{rep['packed_bytes'] / 1e6:.1f} MB)")

    # Idealized zonal wind stress: trades / westerlies / polar easterlies.
    lat = model.grid.lat
    taux = 0.1 * (-np.cos(3.0 * lat))
    model.import_state({
        "taux": np.where(model.metrics.mask_c, taux, 0.0),
        "heat_flux": np.where(model.metrics.mask_c, 40.0 * np.cos(lat), 0.0),
    })

    steps_per_day = max(1, int(round(86400.0 / model.dt_baroclinic)))
    print(f"\nspinning up {DAYS} days ({steps_per_day} baroclinic steps/day, "
          f"dt = {model.dt_baroclinic:.0f} s, "
          f"{10 * steps_per_day} barotropic substeps/day)...")
    for day in range(DAYS):
        model.run(steps_per_day)
        if (day + 1) % 10 == 0:
            speed = surface_speed(model)
            ssh = model.bt.eta
            print(f"  day {day + 1:3d}: max speed {np.nanmax(speed):.3f} m/s, "
                  f"SSH range [{ssh.min():+.3f}, {ssh.max():+.3f}] m")

    # Western intensification: within each subtropical band, currents on
    # the western flank of ocean basins are stronger than on the east.
    speed = surface_speed(model)
    mask = model.mask3d[0]
    band = (np.abs(np.degrees(lat)) > 15) & (np.abs(np.degrees(lat)) < 45) & mask
    west_edge = np.zeros_like(mask)
    # A wet cell whose western neighbor is land is a western boundary cell.
    west_edge[:, 1:] = mask[:, 1:] & ~mask[:, :-1]
    west_edge[:, 0] = mask[:, 0] & ~mask[:, -1]
    wb = band & west_edge
    interior = band & ~west_edge
    print(f"\nwestern-boundary mean speed: {np.nanmean(speed[wb]):.4f} m/s")
    print(f"basin-interior mean speed:   {np.nanmean(speed[interior]):.4f} m/s")
    ratio = np.nanmean(speed[wb]) / max(np.nanmean(speed[interior]), 1e-12)
    print(f"intensification ratio:       {ratio:.1f}x "
          f"({'western intensification resolved' if ratio > 1.5 else 'weak'})")
    model.finalize()


if __name__ == "__main__":
    main()
