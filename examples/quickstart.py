#!/usr/bin/env python
"""Quickstart: build the coupled AP3ESM, run one simulated day, and print
the model state and timing summary.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.esm import AP3ESM, AP3ESMConfig, atm_snapshot, surface_speed
from repro.utils import get_timing


def main() -> None:
    print("Initializing the coupled model (atmosphere L3 + 64x48x8 ocean)...")
    model = AP3ESM(AP3ESMConfig(atm_level=3, ocn_nlon=64, ocn_nlat=48, ocn_levels=8))
    model.init()
    print(f"  atmosphere: {model.atm.grid.n_cells} cells "
          f"(~{model.atm.grid.mean_cell_spacing_km:.0f} km), "
          f"dt_model = {model.atm.dt_model:.0f} s")
    print(f"  ocean:      {model.ocn.grid.nlon}x{model.ocn.grid.nlat}x"
          f"{model.ocn.grid.n_levels}, "
          f"ocean fraction {model.ocn.grid.ocean_fraction:.2f}")
    print(f"  coupling:   atm every {model.dt_couple:.0f} s, "
          f"ocean every {model.config.ocn_couple_ratio} atm couplings "
          f"(paper ratio 180:36 per day)")

    print("\nRunning one simulated day...")
    model.run_days(1.0)

    snap = atm_snapshot(model.atm)
    sst = model.ocn.export_state()["sst"]
    wet = model.ocn.mask3d[0]
    speed = surface_speed(model.ocn)
    print("\nState after one day:")
    print(f"  global-mean precip:     {snap['precip'].mean() * 86400:.2f} mm/day")
    print(f"  global cloud fraction:  {snap['cloud_fraction'].mean():.2f}")
    print(f"  SST range:              {sst[wet].min():.1f} .. {sst[wet].max():.1f} C")
    print(f"  max surface current:    {np.nanmax(speed):.3f} m/s")
    print(f"  sea-ice area:           {model.ice.total_area() / 1e12:.2f} Mkm^2")
    print(f"  mean land skin temp:    "
          f"{model.lnd.tskin[model.land_mask_atm].mean():.1f} K")

    # The paper's metric: SYPD from the coupler timer (getTiming-style).
    report = get_timing([model.timers], "cpl_run",
                        simulated_days=model.n_couplings * model.dt_couple / 86400.0)
    print(f"\nThroughput on this machine: {report.sypd:.1f} SYPD "
          f"({report.max_seconds:.1f} s wall for 1 simulated day)")
    print("\nTimer tree:")
    print(model.timers.report())
    model.finalize()


if __name__ == "__main__":
    main()
