#!/usr/bin/env python
"""The Figs. 6/7 experiment: an idealized Doksuri-like typhoon in the
coupled model, at two resolutions.

A Holland vortex in gradient-wind balance is injected over the synthetic
western Pacific; the coupled model integrates 18 hours while the tracker
follows the storm.  The high-resolution run doubles as the "best track".

Run:  python examples/typhoon_doksuri.py
"""

import math

import numpy as np

from repro.esm import (
    AP3ESM,
    AP3ESMConfig,
    HollandVortex,
    TyphoonExperiment,
    cold_wake,
    track_distance,
)

VORTEX = HollandVortex(
    center_lon=math.radians(150.0),
    center_lat=math.radians(20.0),
    v_max=40.0,
    r_max=5.0e5,
)
HOURS = 18


def run(label: str, atm_level: int, nlon: int, nlat: int) -> TyphoonExperiment:
    print(f"\n[{label}] initializing (atmosphere L{atm_level}, ocean {nlon}x{nlat})...")
    model = AP3ESM(AP3ESMConfig(atm_level=atm_level, ocn_nlon=nlon, ocn_nlat=nlat,
                                ocn_levels=8))
    model.init()
    exp = TyphoonExperiment(model, VORTEX)
    print(f"[{label}] integrating +{HOURS} h with the tracker...")
    exp.run(HOURS)
    track = exp.tracker.track()
    print(f"[{label}] track:")
    for k in range(0, len(track), 6):
        t, lon, lat, vmax = track[k]
        print(f"    +{t / 3600:4.0f} h  ({math.degrees(lon):6.1f} E, "
              f"{math.degrees(lat):5.1f} N)  Vmax {vmax:5.1f} m/s")
    em = exp.eye_metrics()
    print(f"[{label}] eye radius {em['eye_radius_km']:.0f} km, "
          f"max wind {em['max_wind']:.1f} m/s, "
          f"wind-gradient RMS {em['wind_grad_rms']:.2e} 1/s")
    cw = cold_wake(exp.sst_before, exp.model.ocn.t[0], exp.model.ocn.mask3d[0])
    print(f"[{label}] SST cold wake: max {cw['max_cooling']:.2f} C, "
          f"mean {cw['mean_cooling']:.3f} C over "
          f"{100 * cw['cooled_fraction']:.0f}% of the ocean")
    return exp


def main() -> None:
    best = run("3v2-like (best track)", atm_level=4, nlon=96, nlat=64)
    fcst = run("25v10-like", atm_level=3, nlon=48, nlat=32)
    sep = track_distance(best.tracker.track(), fcst.tracker.track())
    print(f"\nmean track separation (coarse vs best track): {sep:.0f} km")
    print("paper (Fig. 6): the higher-resolution pair shows the more compact "
          "eye and the sharper wind structure — compare the metrics above.")


if __name__ == "__main__":
    main()
