#!/usr/bin/env python
"""Regenerate the paper's scaling results (Table 2 / Figs. 8a-8b) with the
calibrated machine models.

Run:  python examples/scaling_study.py
"""

from repro.bench import (
    banner,
    coupled_curve,
    evaluate_all_curves,
    format_curve_result,
    format_table,
    weak_scaling_series,
)


def main() -> None:
    print(banner("Strong scaling (Fig. 8a / Table 2): paper vs machine model"))
    for key, result in evaluate_all_curves().items():
        print(format_curve_result(result))

    for label in ("3v2", "1v1"):
        print(format_curve_result(coupled_curve(label)))

    print(banner("Weak scaling (Fig. 8b)"))
    for comp in ("atm", "ocn"):
        data = weak_scaling_series(comp)
        rows = list(zip(
            [f"{r:g} km" for r in data["resolution_km"]],
            data["nodes"], data["sypd"], data["efficiency"],
        ))
        print(f"\n[{comp.upper()}]  "
              f"(paper terminal efficiency "
              f"{data['published_terminal_efficiency'][0] * 100:.1f}%)")
        print(format_table(["resolution", "nodes", "SYPD", "weak eff"], rows))


if __name__ == "__main__":
    main()
