"""Tests for the ensemble runtime: multi-instance sessions, lockstep
stepping, cross-member batched physics, and the bitwise twin contracts."""

import numpy as np
import pytest

from repro.atm import (
    AIPhysicsSuite,
    ConventionalPhysics,
    generate_training_archive,
    synthetic_columns,
)
from repro.atm.columns import ColumnState
from repro.esm import (
    AP3ESM,
    AP3ESMConfig,
    BatchedPhysicsDriver,
    EnsembleConfig,
    EnsembleRun,
)
from repro.obs import Obs

SMALL = dict(atm_level=2, ocn_nlon=24, ocn_nlat=16, ocn_levels=4)


def _small_config(**overrides) -> AP3ESMConfig:
    kwargs = dict(SMALL)
    kwargs.update(overrides)
    return AP3ESMConfig(**kwargs)


def _atm_state(model):
    atm = model.atm
    return {
        "h": atm.swe.h.copy(), "u": atm.swe.u.copy(),
        "t_col": np.asarray(atm.t_col).copy(),
        "q_col": np.asarray(atm.q_col).copy(),
        "tskin": np.asarray(atm.tskin).copy(),
    }


def _assert_state_equal(a, b):
    for key in a:
        assert np.array_equal(a[key], b[key]), f"field {key} differs"


class TestEnsembleConfig:
    def test_needs_at_least_one_member(self):
        with pytest.raises(ValueError, match="at least one"):
            EnsembleConfig(members=0)

    def test_member_config_applies_deltas(self):
        cfg = EnsembleConfig(
            base=_small_config(), members=3,
            config_deltas=[{}, {"atm_steps_per_coupling": 2}],
        )
        assert cfg.member_config(0).atm_steps_per_coupling == \
            cfg.base.atm_steps_per_coupling
        assert cfg.member_config(1).atm_steps_per_coupling == 2
        # Trailing members past the delta list stay at the base config.
        assert cfg.member_config(2) == cfg.base

    def test_member_config_rejects_unknown_keys(self):
        cfg = EnsembleConfig(
            base=_small_config(), members=2,
            config_deltas=[{}, {"no_such_field": 1}],
        )
        with pytest.raises(ValueError, match="unknown keys"):
            cfg.member_config(1)


class TestPerturbations:
    def test_member_zero_never_perturbed_and_members_distinct(self):
        ens = EnsembleRun(EnsembleConfig(base=_small_config(), members=3))
        ens.init()
        solo = AP3ESM(_small_config())
        solo.init()
        assert np.array_equal(ens.members[0].atm.t_col, solo.atm.t_col)
        t0 = np.asarray(ens.members[0].atm.t_col)
        t1 = np.asarray(ens.members[1].atm.t_col)
        t2 = np.asarray(ens.members[2].atm.t_col)
        assert not np.array_equal(t0, t1)
        assert not np.array_equal(t1, t2)

    def test_perturbations_deterministic(self):
        a = EnsembleRun(EnsembleConfig(base=_small_config(), members=2,
                                       perturb_seed=7))
        a.init()
        b = EnsembleRun(EnsembleConfig(base=_small_config(), members=2,
                                       perturb_seed=7))
        b.init()
        assert np.array_equal(a.members[1].atm.t_col, b.members[1].atm.t_col)
        c = EnsembleRun(EnsembleConfig(base=_small_config(), members=2,
                                       perturb_seed=8))
        c.init()
        assert not np.array_equal(a.members[1].atm.t_col,
                                  c.members[1].atm.t_col)

    def test_zero_amplitude_disables_perturbation(self):
        ens = EnsembleRun(EnsembleConfig(base=_small_config(), members=2,
                                         perturb_amplitude=0.0))
        ens.init()
        assert np.array_equal(ens.members[0].atm.t_col,
                              ens.members[1].atm.t_col)


class TestLockstepBitwise:
    """The tentpole contracts: member 0 is a bitwise solo twin, and
    batched physics is bitwise-identical to per-member stepping."""

    COUPLINGS = 3

    def _run_solo(self):
        solo = AP3ESM(_small_config())
        solo.init()
        solo.run_couplings(self.COUPLINGS)
        solo._wait_ocean()
        return solo

    def _run_ensemble(self, batch):
        ens = EnsembleRun(EnsembleConfig(base=_small_config(), members=3,
                                         batch_physics=batch))
        ens.init()
        ens.run_couplings(self.COUPLINGS)
        return ens

    def test_member0_bitwise_vs_solo_batched(self):
        solo = self._run_solo()
        ens = self._run_ensemble(batch=True)
        _assert_state_equal(_atm_state(solo), _atm_state(ens.members[0]))
        assert np.array_equal(solo.ocn.t, ens.members[0].ocn.t)
        assert np.array_equal(solo.ocn.u, ens.members[0].ocn.u)
        # Perturbed members really diverged.
        assert not np.array_equal(ens.members[0].atm.t_col,
                                  ens.members[1].atm.t_col)

    def test_batched_equals_unbatched_stepping(self):
        batched = self._run_ensemble(batch=True)
        plain = self._run_ensemble(batch=False)
        for mb, mp in zip(batched.members, plain.members):
            _assert_state_equal(_atm_state(mb), _atm_state(mp))

    def test_fleet_call_accounting(self):
        ens = self._run_ensemble(batch=True)
        summary = ens.summary()
        bp = summary["batched_physics"]
        steps = self.COUPLINGS * ens.config.base.atm_steps_per_coupling
        assert bp["fleet_steps"] == steps
        assert bp["fleet_calls"] == steps
        ncol = ens.members[0].atm.grid.n_cells
        assert bp["columns_total"] == steps * 3 * ncol
        assert summary["sypd"]["mean"] > 0
        assert summary["spread"]["t_bot"] > 0


class TestBatchedPhysicsDriver:
    def _columns(self, sizes, nlev=10):
        return [synthetic_columns(n, nlev, season=i % 4, step=i, seed=i)
                for i, n in enumerate(sizes)]

    def test_conventional_batched_bitwise(self):
        suite = ConventionalPhysics()
        cols = self._columns([16, 5, 1, 40])
        driver = BatchedPhysicsDriver([suite] * 4, batch=True)
        batched = driver.compute(cols, 120.0)
        sequential = [suite.compute(c, 120.0) for c in cols]
        for b, s in zip(batched, sequential):
            for fld in ("du", "dv", "dt", "dq", "gsw", "glw",
                        "precip", "cloud_fraction"):
                assert np.array_equal(getattr(b, fld), getattr(s, fld)), fld
        assert driver.fleet_calls == 1
        assert driver.columns_total == 62

    def test_ai_suite_batched_bitwise(self, tiny_ai_suite):
        """One CNN/MLP forward over the stacked fleet reproduces the
        per-member forwards bit-for-bit (incl. a single-column member,
        the gemv/gemm edge case)."""
        cols = self._columns([7, 1, 12])
        driver = BatchedPhysicsDriver([tiny_ai_suite] * 3, batch=True)
        batched = driver.compute(cols, 120.0)
        for b, c in zip(batched, cols):
            solo = tiny_ai_suite.compute(c, 120.0)
            for fld in ("du", "dv", "dt", "dq", "gsw", "glw", "precip"):
                assert np.array_equal(getattr(b, fld), getattr(solo, fld)), fld

    def test_sequential_path_counts_member_calls(self):
        suite = ConventionalPhysics()
        driver = BatchedPhysicsDriver([suite] * 2, batch=False)
        driver.compute(self._columns([4, 4]), 120.0)
        assert driver.member_calls == 2
        assert driver.fleet_calls == 0

    def test_rejects_mismatched_suites(self):
        from repro.atm.physics import PhysicsParams

        a = ConventionalPhysics()
        other = ConventionalPhysics(params=PhysicsParams(albedo=0.5))
        with pytest.raises(ValueError, match="different physics parameters"):
            BatchedPhysicsDriver([a, other], batch=True)

    def test_rejects_guarded_suites(self):
        from repro.resilience.guardrail import GuardedPhysics

        guarded = GuardedPhysics(ConventionalPhysics())
        with pytest.raises(ValueError, match="guardrail"):
            BatchedPhysicsDriver([guarded, guarded], batch=True)

    def test_concat_requires_shared_pressure(self):
        a = synthetic_columns(4, 10, season=0, step=0)
        b = synthetic_columns(4, 8, season=0, step=0)
        with pytest.raises(ValueError, match="pressure"):
            ColumnState.concat([a, b])


@pytest.fixture(scope="module")
def tiny_ai_suite():
    archive = generate_training_archive(
        n_days=8, steps_per_day=4, ncol_per_step=8, nlev=10
    )
    return AIPhysicsSuite.train(archive, epochs=3, width=16, lr=3e-3)


class TestEnsembleGuards:
    def test_batch_physics_needs_uniform_atmosphere(self):
        cfg = EnsembleConfig(
            base=_small_config(), members=2, batch_physics=True,
            config_deltas=[{}, {"atm_steps_per_coupling": 2}],
        )
        with pytest.raises(ValueError, match="uniform atmosphere"):
            EnsembleRun(cfg).init()

    def test_batch_physics_rejects_guardrail(self):
        from repro.resilience import ResilienceConfig

        res = ResilienceConfig(enabled=True, guard_physics=True)
        cfg = EnsembleConfig(
            base=_small_config(resilience=res), members=2, batch_physics=True,
        )
        with pytest.raises(ValueError, match="guardrail"):
            EnsembleRun(cfg).init()

    def test_stepping_before_init_raises(self):
        ens = EnsembleRun(EnsembleConfig(base=_small_config()))
        with pytest.raises(RuntimeError, match="init"):
            ens.step_coupling()


class TestEnsembleObservability:
    def test_member_prefixes_in_shared_registry(self):
        obs = Obs()
        ens = EnsembleRun(
            EnsembleConfig(base=_small_config(), members=2), obs=obs
        )
        ens.init()
        ens.run_couplings(1)
        ens.summary()
        names = obs.metrics.names()
        assert any(n.startswith("member.0.") for n in names)
        assert any(n.startswith("member.1.") for n in names)
        assert "ensemble.sypd.mean" in names
        assert "ensemble.spread.t_bot" in names

    def test_batched_counters_recorded(self):
        obs = Obs()
        ens = EnsembleRun(
            EnsembleConfig(base=_small_config(), members=2,
                           batch_physics=True),
            obs=obs,
        )
        ens.init()
        ens.run_couplings(1)
        names = obs.metrics.names()
        assert "ensemble.physics.fleet_calls" in names
        assert "ensemble.physics.columns" in names


class TestRegistryFactories:
    """Per-context kernel registries: instances are isolated, module
    aliases stay the shared default for solo runs."""

    def test_factories_make_isolated_registries(self):
        from repro.atm.kernels import ATM_KERNELS, make_atm_registry
        from repro.ice.kernels import make_ice_registry
        from repro.lnd.kernels import make_lnd_registry
        from repro.ocn.kernels import make_ocean_registry

        a = make_atm_registry()
        b = make_atm_registry()
        assert a is not b
        assert a is not ATM_KERNELS
        assert sorted(a._table) == sorted(ATM_KERNELS._table)
        for make in (make_ice_registry, make_lnd_registry,
                     make_ocean_registry):
            r1, r2 = make(), make()
            assert r1 is not r2
            assert r1.launch_counts == {}

    def test_launch_counts_stay_per_instance(self):
        from repro.atm.kernels import make_atm_registry
        from repro.atm.physics import ConventionalPhysics
        from repro.pp import Serial

        cols = synthetic_columns(8, 10, season=0, step=0)
        reg_a, reg_b = make_atm_registry(), make_atm_registry()
        pa = ConventionalPhysics()
        pa.bind(Serial(), registry=reg_a)
        pb = ConventionalPhysics()
        pb.bind(Serial(), registry=reg_b)
        pa.compute(cols, 120.0)
        pa.compute(cols, 120.0)
        pb.compute(cols, 120.0)
        assert reg_a.launch_counts["radiation_kernel"] == 2
        assert reg_b.launch_counts["radiation_kernel"] == 1

    def test_ensemble_members_do_not_share_kernel_registries(self):
        ens = EnsembleRun(EnsembleConfig(base=_small_config(), members=2))
        ens.init()
        regs = {id(m.atm.physics.registry) for m in ens.members}
        assert len(regs) == 2


class TestEnsembleRestarts:
    def test_save_restarts_layout(self, tmp_path):
        ens = EnsembleRun(EnsembleConfig(base=_small_config(), members=2))
        ens.init()
        ens.run_couplings(1)
        ens.save_restarts(tmp_path / "rst")
        for k in range(2):
            assert (tmp_path / "rst" / f"member{k}" / "atm").is_dir()
            assert (tmp_path / "rst" / f"member{k}" / "ocn").is_dir()
