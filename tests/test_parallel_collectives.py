"""Tests for the LogGP collective cost models."""

import pytest

from repro.parallel.collectives import (
    cost_allreduce,
    cost_alltoall,
    cost_alltoall_sparse,
    cost_bcast,
    cost_gather,
    cost_halo_exchange,
    cost_p2p,
)


def test_p2p_is_one_message():
    assert cost_p2p(1024) == (1, 1024)


def test_halo_exchange_overlaps_messages():
    msgs, nbytes = cost_halo_exchange(1000, 4)
    assert msgs == 4
    assert nbytes == 4000
    assert cost_halo_exchange(1000, 0) == (0, 0)


@pytest.mark.parametrize("p", [2, 8, 1024, 10**6])
def test_allreduce_logarithmic_rounds(p):
    import math

    msgs, nbytes = cost_allreduce(64, p)
    assert msgs == math.ceil(math.log2(p))
    assert nbytes == 64 * msgs


def test_single_rank_collectives_free():
    for fn in (cost_allreduce, cost_bcast):
        assert fn(100, 1) == (0, 0)
    assert cost_alltoall(100, 1) == (0, 0)
    assert cost_gather(100, 1) == (0, 0)


def test_alltoall_linear_in_ranks():
    msgs, _ = cost_alltoall(10, 1000)
    assert msgs == 999


def test_sparse_alltoall_depends_on_partners_not_ranks():
    m_small, b_small = cost_alltoall_sparse(10, 16, 1000)
    m_large, b_large = cost_alltoall_sparse(10, 16, 10**6)
    assert m_small == m_large == 16
    assert b_small == b_large


def test_sparse_beats_dense():
    p, nbytes = 100_000, 4096
    dense = cost_alltoall(nbytes, p)
    sparse = cost_alltoall_sparse(nbytes, 16, p)
    assert sparse[0] < dense[0]
    assert sparse[1] < dense[1]


def test_gather_root_receives_all():
    msgs, nbytes = cost_gather(100, 64)
    assert nbytes == 100 * 63
    assert msgs == 6  # log2(64)


def test_bcast_tree_depth():
    msgs, nbytes = cost_bcast(256, 1024)
    assert msgs == 10
    assert nbytes == 256 * 10
