"""Tests for the ProcPool shared-memory execution backend.

The contract under test: ProcPool executes the *same* decomposition as
every modeled space, so results are bit-for-bit identical to Serial —
while actually dispatching BoundKernel launches to worker processes and
falling back in-process (never crashing, never losing writes) for
functors it cannot ship.
"""

import numpy as np
import pytest

from repro.pp import (
    BoundKernel,
    KernelRegistry,
    MDRangePolicy,
    ProcPool,
    Serial,
    make_backend,
    parallel_for,
    parallel_reduce,
    parallel_scan,
    reduction_chunks,
)
from repro.pp.procpool import _pack_index, _unpack_index


# -- module-level kernels (picklable, worker-resolvable) -------------------

def _saxpy(idx, out, x, a):
    out[idx] = a * x[idx] + np.sin(x[idx])


def _fill_tile(kz, jy, out):
    out[np.ix_(kz, jy)] = kz[:, None] * 100.0 + jy[None, :]


def _chunk_sum(idx, x):
    return x[idx].sum()


def _rw_alias(idx, a, b):
    # a and b may be the same array: writes through one name must be
    # visible through the other inside the worker.
    a[idx] = b[idx] + 1.0


REGISTRY = KernelRegistry()
_SAXPY_H = REGISTRY.register(_saxpy)


@pytest.fixture(scope="module")
def pool():
    space = ProcPool(2)
    yield space
    space.runtime.shutdown()


def test_parallel_for_bitwise_vs_serial(pool):
    n = 30_000
    x = np.linspace(0.0, 3.0, n)
    out_s, out_p = np.zeros(n), np.zeros(n)
    parallel_for(Serial(), n, BoundKernel(_saxpy, (out_s, x, 2.0)))
    parallel_for(pool, n, BoundKernel(_saxpy, (out_p, x, 2.0)))
    assert np.array_equal(out_s, out_p)
    assert pool.runtime.stats.dispatches >= 1


def test_registry_launch_dispatches_to_pool(pool):
    n = 20_000
    x = np.linspace(0.0, 1.0, n)
    out_s, out_p = np.zeros(n), np.zeros(n)
    REGISTRY.launch(Serial(), _SAXPY_H, n, out_s, x, 0.5)
    before = pool.runtime.stats.dispatches
    REGISTRY.launch(pool, _SAXPY_H, n, out_p, x, 0.5)
    assert pool.runtime.stats.dispatches == before + 1
    assert np.array_equal(out_s, out_p)


def test_mdrange_bitwise_vs_serial(pool):
    policy = MDRangePolicy(extents=(32, 48), tile=(4, 48))
    a_s, a_p = np.zeros((32, 48)), np.zeros((32, 48))
    parallel_for(Serial(), policy, BoundKernel(_fill_tile, (a_s,)))
    parallel_for(pool, policy, BoundKernel(_fill_tile, (a_p,)))
    assert np.array_equal(a_s, a_p)


def test_reduce_bitwise_vs_serial(pool):
    rng = np.random.default_rng(3)
    x = rng.standard_normal(50_000) * 1e8
    r_s = parallel_reduce(Serial(), len(x), BoundKernel(_chunk_sum, (x,)))
    r_p = parallel_reduce(pool, len(x), BoundKernel(_chunk_sum, (x,)))
    assert r_s == r_p  # bit-for-bit, not approx


def test_scan_bitwise_vs_serial(pool):
    rng = np.random.default_rng(4)
    x = rng.standard_normal(40_000)
    s_s = parallel_scan(Serial(), len(x), x)
    s_p = parallel_scan(pool, len(x), x)
    assert np.array_equal(s_s, s_p)


def test_closure_on_write_path_falls_back_correctly(pool):
    n = 5_000
    x = np.arange(n, dtype=float)
    out = np.zeros(n)

    def body(idx):
        out[idx] = x[idx] * 3.0

    before = pool.runtime.stats.fallbacks
    parallel_for(pool, n, body)
    assert np.array_equal(out, x * 3.0)
    assert pool.runtime.stats.fallbacks == before + 1


def test_lambda_reduce_falls_back_correctly(pool):
    x = np.arange(10_000, dtype=float)
    total = parallel_reduce(pool, len(x), lambda idx: x[idx].sum())
    assert total == parallel_reduce(Serial(), len(x), lambda idx: x[idx].sum())


def test_aliased_array_args_share_one_segment(pool):
    n = 4_000
    a = np.arange(n, dtype=float)
    parallel_for(pool, n, BoundKernel(_rw_alias, (a, a)))
    assert np.array_equal(a, np.arange(n, dtype=float) + 1.0)


def test_pool_reuses_shared_segments(pool):
    n = 8_192
    x = np.linspace(0.0, 1.0, n)
    out = np.zeros(n)
    parallel_for(pool, n, BoundKernel(_saxpy, (out, x, 1.0)))
    staged_once = pool.runtime.stats.bytes_shared
    capacity = pool.runtime._arena.total_bytes
    parallel_for(pool, n, BoundKernel(_saxpy, (out, x, 1.0)))
    # bytes_shared counts staging traffic and keeps growing, but the
    # arena recycles segments: capacity must not grow on a repeat launch.
    assert pool.runtime.stats.bytes_shared > staged_once
    assert pool.runtime._arena.total_bytes == capacity


def test_shutdown_is_idempotent():
    space = ProcPool(2)
    n = 4_096
    out = np.zeros(n)
    parallel_for(space, n, BoundKernel(_saxpy, (out, np.ones(n), 1.0)))
    space.runtime.shutdown()
    space.runtime.shutdown()
    # After shutdown the space still works — everything falls back lazily
    # to a fresh pool on next dispatch.
    out2 = np.zeros(n)
    parallel_for(space, n, BoundKernel(_saxpy, (out2, np.ones(n), 1.0)))
    assert np.array_equal(out, out2)
    space.runtime.shutdown()


def test_make_backend_names():
    assert make_backend("serial").name == "Serial"
    assert make_backend("threads", 4).lanes == 4
    assert make_backend("cpe").name == "CPECluster"
    assert make_backend("gpu").name == "GPUDevice"
    procs = make_backend("procs", 2)
    assert procs.name == "ProcPool" and procs.lanes == 2
    procs.runtime.shutdown()
    with pytest.raises(ValueError):
        make_backend("quantum")


def test_reduction_chunks_space_independent():
    chunks = reduction_chunks(10_000)
    assert np.array_equal(np.concatenate(chunks), np.arange(10_000))
    assert reduction_chunks(0) == []
    with pytest.raises(ValueError):
        reduction_chunks(-1)


def test_pack_index_roundtrip():
    contiguous = np.arange(5, 17, dtype=np.int64)
    packed = _pack_index(contiguous)
    assert packed == (5, 17)
    assert np.array_equal(_unpack_index(packed), contiguous)
    ragged = np.array([1, 3, 4], dtype=np.int64)
    assert _pack_index(ragged) is ragged
    assert _unpack_index(ragged) is ragged


def test_main_defined_kernels_are_refused(pool):
    # A function claiming to live in __main__ must never be shipped: a
    # worker forked earlier cannot resolve it, which would kill the
    # worker mid-unpickle and hang the dispatch forever.
    def fake(idx, out):
        out[idx] = 1.0

    fake.__module__ = "__main__"
    out = np.zeros(4_000)
    parallel_for(pool, 4_000, BoundKernel(fake, (out,)))  # falls back
    assert np.all(out == 1.0)


def test_occupancy_and_counters(pool):
    st = pool.runtime.stats
    assert st.workers == 2
    assert st.dispatches > 0 and st.tasks >= st.dispatches
    assert 0.0 < st.occupancy <= 2.0 * st.workers
