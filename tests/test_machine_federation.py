"""Tests for the computing-power-network federation model (§8)."""

import numpy as np
import pytest

from repro.machine import (
    CoupledPerfModel,
    CouplingSpec,
    PerfModel,
    atm_workload,
    ocn_workload,
    orise,
    sunway_oceanlight,
)
from repro.machine.federation import FederatedESM, WanLink


@pytest.fixture(scope="module")
def federated():
    sunway = PerfModel(sunway_oceanlight(), mode="accelerated")
    ori = PerfModel(orise(), mode="accelerated")
    atm = atm_workload(42_000_000, 30)
    ocn = ocn_workload(18000 * 11511, 80, compressed=True)
    cal_a, wl_a = sunway.calibrated(atm, [(32768, 0.36), (262144, 1.16)])
    cal_o, wl_o = ori.calibrated(ocn, [(4060, 0.92), (16085, 1.98)])
    coupling = CouplingSpec(
        exchanges_per_day={"atm": 180.0, "ocn": 36.0, "ice": 180.0},
        bytes_per_exchange={"atm": 4.2e8, "ocn": 1.7e9, "ice": 4.2e8},
    )
    fed = FederatedESM(
        model1=cal_a, workload1=wl_a,
        model2=cal_o, workload2=wl_o,
        coupling=coupling,
    )
    single = CoupledPerfModel(
        model1=cal_a, model2=cal_a,  # both on Sunway for the baseline
        domain1=(wl_a,), domain2=(wl_o,), coupling=coupling,
    )
    return fed, single


class TestWanLink:
    def test_transfer_time_components(self):
        link = WanLink(latency_s=0.05, bandwidth=1e9)
        assert link.transfer_time(0) == pytest.approx(0.05)
        assert link.transfer_time(1e9) == pytest.approx(1.05)
        with pytest.raises(ValueError):
            link.transfer_time(-1)


class TestFederation:
    def test_wan_cost_positive_and_latency_dominated(self, federated):
        fed, _ = federated
        t_wan = fed.wan_time_per_day()
        # 396 exchanges/day at 50 ms each = ~20 s of pure latency.
        assert t_wan > 396 * 0.05 * 0.99

    def test_sypd_decreases_with_worse_link(self, federated):
        fed, _ = federated
        from dataclasses import replace

        slow = replace(fed, link=WanLink(latency_s=0.2, bandwidth=1e8))
        assert slow.predict_sypd(100_000, 12_000) < fed.predict_sypd(100_000, 12_000)

    def test_comparison_reports_all_fields(self, federated):
        fed, single = federated
        out = fed.compare_with_single_machine(single, 260_000, 260_000, 16_000)
        assert set(out) == {
            "single_machine_s_per_day", "federated_s_per_day",
            "federation_speedup", "wan_share_of_federated",
        }
        assert 0 <= out["wan_share_of_federated"] <= 1

    def test_federation_wins_given_extra_hardware(self, federated):
        """The §8 proposition: adding a second machine for the ocean frees
        the whole first machine for the atmosphere.  With the same Sunway
        allocation plus all of ORISE, federated time must beat the
        single-machine split (WAN terms included)."""
        fed, single = federated
        out = fed.compare_with_single_machine(
            single, single_total_procs=260_000,
            n_procs1=260_000, n_procs2=16_000,
        )
        assert out["federation_speedup"] > 1.0

    def test_breakeven_bandwidth_sane(self, federated):
        fed, single = federated
        s1, s2 = single.balance_resources(260_000)
        target = single.time_per_day(s1, s2)
        bw = fed.breakeven_bandwidth(target, 260_000, 16_000)
        assert bw is not None
        assert bw < fed.link.bandwidth  # 100 Gb/s comfortably suffices

    def test_breakeven_none_when_latency_blows_budget(self, federated):
        fed, _ = federated
        assert fed.breakeven_bandwidth(1.0, 260_000, 16_000) is None
        with pytest.raises(ValueError):
            fed.breakeven_bandwidth(0.0, 1, 1)
