"""Tests for the coupler primitives: GSMap, AttrVect, Router, rearranger,
clocks, and field pruning."""

import numpy as np
import pytest

from repro.coupler import (
    AttrVect,
    Clock,
    FieldRegistry,
    GlobalSegMap,
    Rearranger,
    Router,
)
from repro.parallel import SimWorld


def _two_maps(gsize=24, n_pes=3):
    """Source: contiguous blocks; destination: round-robin stripes."""
    src_owner = np.repeat(np.arange(n_pes), gsize // n_pes)
    dst_owner = np.arange(gsize) % n_pes
    return GlobalSegMap.from_owners(src_owner), GlobalSegMap.from_owners(dst_owner)


class TestGSMap:
    def test_from_owners_runs(self):
        gsmap = GlobalSegMap.from_owners(np.array([0, 0, 1, 1, 1, 0]))
        assert gsmap.n_segments == 3
        assert gsmap.covered == 6
        assert gsmap.owner(0) == 0
        assert gsmap.owner(3) == 1
        assert gsmap.owner(5) == 0

    def test_holes_supported(self):
        gsmap = GlobalSegMap.from_owners(np.array([0, -1, -1, 1]))
        assert gsmap.covered == 2
        assert gsmap.owner(1) == -1

    def test_local_indices_ascending(self):
        gsmap = GlobalSegMap.from_owners(np.array([1, 0, 1, 0, 1]))
        assert np.array_equal(gsmap.local_indices(1), [0, 2, 4])
        assert np.array_equal(gsmap.local_indices(0), [1, 3])
        assert gsmap.local_indices(7).size == 0

    def test_owner_array_roundtrip(self):
        owners = np.array([2, 2, 0, 1, 1, -1, 0])
        gsmap = GlobalSegMap.from_owners(owners)
        assert np.array_equal(gsmap.owner_array(), owners)

    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalSegMap(10, [0, 2], [3, 3], [0, 1])  # overlap
        with pytest.raises(ValueError):
            GlobalSegMap(4, [0], [5], [0])  # out of range
        with pytest.raises(ValueError):
            GlobalSegMap(4, [0], [0], [0])  # zero length

    def test_offline_save_load(self, tmp_path):
        src, _ = _two_maps()
        path = tmp_path / "gsmap.npz"
        src.to_file(path)
        loaded = GlobalSegMap.from_file(path)
        assert np.array_equal(loaded.owner_array(), src.owner_array())

    def test_save_load_aliases_removed(self):
        """to_file/from_file is the one persistence idiom: the deprecated
        save/load aliases completed their cycle and are gone."""
        src, _ = _two_maps()
        assert not hasattr(src, "save")
        assert not hasattr(GlobalSegMap, "load")

    def test_build_cost_scales_with_pes(self):
        a = GlobalSegMap.from_owners(np.arange(100) % 4)
        cost = a.build_cost()
        assert cost["allgather_bytes"] == cost["table_bytes_per_rank"] * 4


class TestAttrVect:
    def test_zeros_and_set_get(self):
        av = AttrVect.zeros(["t", "s"], 5)
        av.set("t", np.arange(5.0))
        assert np.array_equal(av.get("t"), np.arange(5.0))
        assert av.lsize == 5 and av.n_fields == 2
        assert "t" in av and "x" not in av

    def test_from_dict_roundtrip(self):
        av = AttrVect.from_dict({"a": np.ones(3), "b": np.zeros(3)})
        d = av.to_dict()
        assert set(d) == {"a", "b"}

    def test_subset_prunes(self):
        av = AttrVect.from_dict({"a": np.ones(3), "b": np.zeros(3), "c": np.full(3, 2.0)})
        sub = av.subset(["c", "a"])
        assert sub.fields == ["c", "a"]
        assert np.array_equal(sub.get("c"), np.full(3, 2.0))
        with pytest.raises(KeyError):
            av.subset(["zz"])

    def test_validation(self):
        with pytest.raises(ValueError):
            AttrVect(["a", "a"], np.zeros((2, 3)))
        av = AttrVect.zeros(["a"], 4)
        with pytest.raises(ValueError):
            av.set("a", np.zeros(3))
        with pytest.raises(KeyError):
            av.get("nope")

    def test_permute(self):
        av = AttrVect.from_dict({"x": np.array([10.0, 20.0, 30.0])})
        out = av.permute(np.array([2, 0, 1]))
        assert np.array_equal(out.get("x"), [30.0, 10.0, 20.0])


class TestRouter:
    def test_build_covers_all_points(self):
        src, dst = _two_maps()
        router = Router.build(src, dst)
        assert router.total_points() == 24

    def test_transfer_lists_consistent(self):
        src, dst = _two_maps()
        router = Router.build(src, dst)
        for (p, q), s_idx in router.send.items():
            assert len(s_idx) == len(router.recv[(p, q)])

    def test_identity_maps_self_pairs_only(self):
        owners = np.arange(12) % 4
        gsmap = GlobalSegMap.from_owners(owners)
        router = Router.build(gsmap, gsmap)
        assert all(p == q for (p, q) in router.send)

    def test_holes_skipped(self):
        src = GlobalSegMap.from_owners(np.array([0, 0, -1, 1]))
        dst = GlobalSegMap.from_owners(np.array([1, 1, 1, 0]))
        router = Router.build(src, dst)
        assert router.total_points() == 3  # the hole carries nothing

    def test_gsize_mismatch(self):
        a = GlobalSegMap.from_owners(np.zeros(4, dtype=int))
        b = GlobalSegMap.from_owners(np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            Router.build(a, b)

    def test_offline_save_load(self, tmp_path):
        src, dst = _two_maps()
        router = Router.build(src, dst)
        path = tmp_path / "router.npz"
        router.to_file(path)
        loaded = Router.from_file(path)
        assert loaded.n_pairs == router.n_pairs
        for key in router.send:
            assert np.array_equal(loaded.send[key], router.send[key])
            assert np.array_equal(loaded.recv[key], router.recv[key])

    def test_save_load_aliases_removed(self):
        """Same unification as GlobalSegMap: only to_file/from_file exist."""
        src, dst = _two_maps()
        router = Router.build(src, dst)
        assert not hasattr(router, "save")
        assert not hasattr(Router, "load")

    def test_memory_accounting(self):
        src, dst = _two_maps()
        router = Router.build(src, dst)
        assert router.memory_bytes() == 2 * router.total_points() * 8


class TestRearranger:
    @pytest.mark.parametrize("method", ["p2p", "alltoall"])
    def test_rearrange_is_lossless_permutation(self, method):
        gsize, n_pes = 24, 3
        src, dst = _two_maps(gsize, n_pes)
        router = Router.build(src, dst)
        rearranger = Rearranger(router, method=method)
        gfield = np.arange(gsize, dtype=float) * 3.0

        def program(comm):
            me = comm.rank
            src_av = AttrVect.from_dict({"f": gfield[src.local_indices(me)]})
            dst_lsize = len(dst.local_indices(me))
            out = rearranger.rearrange(comm, src_av, dst_lsize)
            return out.get("f")

        results = SimWorld(n_pes).run(program)
        for pe, got in enumerate(results):
            assert np.array_equal(got, gfield[dst.local_indices(pe)])

    def test_methods_agree(self):
        src, dst = _two_maps()
        router = Router.build(src, dst)
        gfield = np.random.default_rng(0).standard_normal(24)

        def run(method):
            rearranger = Rearranger(router, method=method)

            def program(comm):
                me = comm.rank
                av = AttrVect.from_dict({"f": gfield[src.local_indices(me)]})
                return rearranger.rearrange(comm, av, len(dst.local_indices(me))).get("f")

            return SimWorld(3).run(program)

        a = run("p2p")
        b = run("alltoall")
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_p2p_sends_fewer_messages(self):
        """The §5.2.4 claim: sparse p2p beats dense all-to-all traffic."""
        gsize, n_pes = 64, 8
        # Nearly-aligned decompositions: each rank overlaps only 2 others.
        src_owner = np.repeat(np.arange(n_pes), gsize // n_pes)
        dst_owner = np.roll(src_owner, 3)
        src = GlobalSegMap.from_owners(src_owner)
        dst = GlobalSegMap.from_owners(dst_owner)
        router = Router.build(src, dst)
        counts = Rearranger(router).message_counts(n_pes)
        assert counts["p2p_messages_per_rank_max"] < counts["alltoall_messages_per_rank"]

        def run(method):
            world = SimWorld(n_pes)
            rearranger = Rearranger(router, method=method)
            gfield = np.arange(gsize, dtype=float)

            def program(comm):
                me = comm.rank
                av = AttrVect.from_dict({"f": gfield[src.local_indices(me)]})
                rearranger.rearrange(comm, av, len(dst.local_indices(me)))

            world.run(program)
            return world.ledger.total_messages

        assert run("p2p") < run("alltoall")

    def test_multifield_rearrange(self):
        src, dst = _two_maps()
        router = Router.build(src, dst)
        rearranger = Rearranger(router)
        f1 = np.arange(24.0)
        f2 = np.arange(24.0) ** 2

        def program(comm):
            me = comm.rank
            av = AttrVect.from_dict({
                "a": f1[src.local_indices(me)],
                "b": f2[src.local_indices(me)],
            })
            out = rearranger.rearrange(comm, av, len(dst.local_indices(me)))
            return out

        results = SimWorld(3).run(program)
        for pe, av in enumerate(results):
            assert np.array_equal(av.get("b"), f2[dst.local_indices(pe)])

    def test_bad_method(self):
        src, dst = _two_maps()
        with pytest.raises(ValueError):
            Rearranger(Router.build(src, dst), method="magic")

    def test_self_send_without_recv_entry(self):
        """Regression: the p2p path raised KeyError on a (me, me) send
        entry with no matching recv key (hand-built/pruned router); the
        alltoall path silently delivered nothing.  Both must agree."""
        router = Router(
            src_gsize=2, dst_gsize=2,
            send={(0, 0): np.array([0, 1])}, recv={},
        )

        def run(method):
            def program(comm):
                av = AttrVect.from_dict({"f": np.array([1.0, 2.0])})
                return Rearranger(router, method=method).rearrange(comm, av, 2)

            return SimWorld(1).run(program)[0]

        p2p = run("p2p")  # seed: KeyError
        a2a = run("alltoall")
        assert np.array_equal(p2p.data, a2a.data)
        assert np.array_equal(p2p.get("f"), np.zeros(2))

    def test_self_send_round_trip(self):
        """A matched (me, me) send/recv pair copies locally, without any
        messages on the wire."""
        owners = np.zeros(6, dtype=int)
        src = GlobalSegMap.from_owners(owners)
        dst = GlobalSegMap.from_owners(owners)
        router = Router.build(src, dst)
        assert (0, 0) in router.send and (0, 0) in router.recv
        values = np.arange(6.0)

        def program(comm):
            av = AttrVect.from_dict({"f": values})
            return Rearranger(router, method="p2p").rearrange(comm, av, 6)

        world = SimWorld(1)
        out = world.run(program)[0]
        assert np.array_equal(out.get("f"), values)
        assert world.ledger.p2p_messages == 0

    def test_message_counts_include_recv_fanin(self):
        """Regression: only send-side partners were counted, so a rank
        receiving from every other rank reported one message."""
        src = GlobalSegMap.from_owners(np.arange(4).repeat(2))
        dst = GlobalSegMap.from_owners(np.zeros(8, dtype=int))
        router = Router.build(src, dst)
        counts = Rearranger(router).message_counts(4)
        assert counts["p2p_recv_partners_max"] == 3.0
        # Rank 0 posts 3 receives; the seed code reported a max of 1.
        assert counts["p2p_messages_per_rank_max"] >= 3.0
        assert counts["p2p_messages_per_rank_max"] < counts["alltoall_messages_per_rank"]


class TestClock:
    def test_alarm_fires_at_coupling_frequency(self):
        # Atmosphere couples 180x/day at a 480 s coupling period; model
        # step 120 s -> alarm every 4 steps.
        clock = Clock(dt=120.0)
        clock.add_alarm("cpl_atm", interval=480.0)
        fires = 0
        for _ in range(16):
            clock.advance()
            if clock.ringing("cpl_atm"):
                fires += 1
        assert fires == 4

    def test_inconsistent_period_rejected(self):
        clock = Clock(dt=120.0)
        with pytest.raises(ValueError, match="not a multiple"):
            clock.add_alarm("bad", interval=500.0)

    def test_paper_coupling_frequencies_consistent(self):
        """atm 180/day, ocn 36/day, ice 180/day: all must divide into the
        respective component steps (120 s atm, 2400 s ocn)."""
        atm_clock = Clock(dt=120.0)
        atm_clock.add_alarm("cpl", interval=86400.0 / 180.0)
        ocn_clock = Clock(dt=2400.0)
        ocn_clock.add_alarm("cpl", interval=86400.0 / 36.0)

    def test_synchronization(self):
        a = Clock(dt=100.0)
        b = Clock(dt=50.0)
        for _ in range(2):
            a.advance()
        for _ in range(4):
            b.advance()
        assert a.synchronized_with(b)

    def test_duplicate_alarm_rejected(self):
        clock = Clock(dt=60.0)
        clock.add_alarm("x", 120.0)
        with pytest.raises(ValueError):
            clock.add_alarm("x", 120.0)

    def test_bad_dt(self):
        with pytest.raises(ValueError):
            Clock(dt=0.0)

    def test_long_run_time_is_exact(self):
        """Regression: `time += dt` accumulated float error; after 2e5
        steps at dt=0.1 it exceeded 1e-8, past the 1e-9 alarm tolerance."""
        clock = Clock(dt=0.1)
        for _ in range(200_000):
            clock.advance()
        assert clock.time == 200_000 * 0.1
        assert clock.step_count == 200_000

    def test_long_run_alarm_schedule_exact(self):
        """Regression: accumulated clock drift fired the coupling alarm a
        step late (and eventually dropped rings) on long runs."""
        clock = Clock(dt=0.1)
        clock.add_alarm("cpl", interval=0.5)
        rings = []
        for step in range(1, 200_001):
            clock.advance()
            if clock.ringing("cpl"):
                rings.append(step)
        # One ring exactly every 5 steps, none late, none dropped.
        assert len(rings) == 40_000
        assert rings == [5 * (i + 1) for i in range(40_000)]

    def test_alarm_reset_to(self):
        clock = Clock(dt=100.0)
        alarm = clock.add_alarm("cpl", interval=300.0)
        alarm.reset_to(4)
        assert alarm.next_ring == pytest.approx(1500.0)
        with pytest.raises(ValueError):
            alarm.reset_to(-1)


class TestFieldRegistry:
    def test_cesm_default_paths(self):
        reg = FieldRegistry.cesm_default()
        assert {"a2x", "x2o", "o2x", "i2x"} <= set(reg.registered)

    def test_pruning_keeps_only_used(self):
        reg = FieldRegistry.cesm_default()
        reg.mark_used("x2o", ["Foxx_taux", "Foxx_tauy", "Foxx_swnet"])
        assert reg.pruned("x2o") == ["Foxx_taux", "Foxx_tauy", "Foxx_swnet"]

    def test_savings_accounting(self):
        reg = FieldRegistry.cesm_default()
        reg.mark_used("o2x", ["So_t", "So_ssh"])
        s = reg.savings("o2x", lsize=1000)
        assert s["used_fields"] == 2
        assert s["bytes_after"] == 2 * 1000 * 8
        assert s["fraction_saved"] > 0.5

    def test_unknown_field_rejected(self):
        reg = FieldRegistry.cesm_default()
        with pytest.raises(KeyError):
            reg.mark_used("a2x", ["NotAField"])
        with pytest.raises(KeyError):
            reg.mark_used("nope", ["Sa_z"])

    def test_duplicate_registration_rejected(self):
        reg = FieldRegistry.cesm_default()
        with pytest.raises(ValueError):
            reg.register("a2x", ["x"])
