"""Tests for the shallow-water dycore: conservation and accuracy."""

import numpy as np
import pytest

from repro.atm import (
    ShallowWaterDycore,
    SWEState,
    isolated_mountain,
    williamson_tc2,
)


@pytest.fixture(scope="module")
def dycore4(icos4):
    return ShallowWaterDycore(icos4)


def _run(dycore, state, hours, cfl=0.4):
    dt = dycore.max_stable_dt(state, cfl=cfl)
    n = int(hours * 3600.0 / dt) + 1
    for _ in range(n):
        state = dycore.step_rk4(state, dt)
    return state, n * dt


class TestTC2:
    def test_initial_state_is_balanced(self, icos4, dycore4):
        """One step of TC2 changes the state only at truncation level."""
        s0 = williamson_tc2(icos4)
        dt = dycore4.max_stable_dt(s0, cfl=0.4)
        s1 = dycore4.step_rk4(s0, dt)
        assert np.abs(s1.h - s0.h).max() / s0.h.mean() < 1e-3
        # Max truncation sits at the pentagon edges (TRSK property).
        assert np.abs(s1.u - s0.u).max() < 0.5
        assert np.sqrt(np.mean((s1.u - s0.u) ** 2)) < 0.1

    def test_steady_state_error_small_after_a_day(self, icos4, dycore4):
        s0 = williamson_tc2(icos4)
        s, _ = _run(dycore4, s0.copy(), hours=24)
        rel_h = np.abs(s.h - s0.h).max() / s0.h.mean()
        assert rel_h < 0.02

    def test_error_decreases_with_resolution(self, icos3, icos4):
        errs = {}
        for grid in (icos3, icos4):
            dy = ShallowWaterDycore(grid)
            s0 = williamson_tc2(grid)
            s, _ = _run(dy, s0.copy(), hours=12)
            errs[grid.level] = np.sqrt(
                np.sum(grid.area_cell * (s.h - s0.h) ** 2) / np.sum(grid.area_cell)
            )
        assert errs[4] < 0.6 * errs[3]


class TestInvariants:
    def test_mass_conserved_to_roundoff(self, icos4, dycore4):
        s = williamson_tc2(icos4)
        m0 = dycore4.total_mass(s)
        s, _ = _run(dycore4, s, hours=12)
        assert dycore4.total_mass(s) == pytest.approx(m0, rel=1e-13)

    def test_energy_drift_bounded(self, icos4, dycore4):
        s = williamson_tc2(icos4)
        e0 = dycore4.total_energy(s)
        s, _ = _run(dycore4, s, hours=24)
        assert abs(dycore4.total_energy(s) - e0) / e0 < 1e-4

    def test_mass_conserved_from_random_state(self, icos4, dycore4):
        rng = np.random.default_rng(0)
        s = SWEState(
            h=2000.0 + 100.0 * rng.standard_normal(icos4.n_cells),
            u=5.0 * rng.standard_normal(icos4.n_edges),
        )
        m0 = dycore4.total_mass(s)
        dt = dycore4.max_stable_dt(s, cfl=0.3)
        for _ in range(20):
            s = dycore4.step_rk4(s, dt)
        assert dycore4.total_mass(s) == pytest.approx(m0, rel=1e-13)

    def test_enstrophy_defined_positive(self, icos4, dycore4):
        s = williamson_tc2(icos4)
        assert dycore4.total_enstrophy(s) > 0


class TestMountain:
    def test_tc5_generates_waves(self, icos3):
        """Flow over the mountain must break zonal symmetry downstream."""
        state, b = isolated_mountain(icos3)
        dy = ShallowWaterDycore(icos3, terrain=b)
        m0 = dy.total_mass(state)
        s, _ = _run(dy, state, hours=48)
        assert dy.total_mass(s) == pytest.approx(m0, rel=1e-12)
        # Meridional velocity (absent initially outside the mountain) grows.
        v_proxy = np.abs(s.u - state.u).max()
        assert v_proxy > 1.0

    def test_terrain_must_be_cell_field(self, icos3):
        with pytest.raises(ValueError):
            ShallowWaterDycore(icos3, terrain=np.zeros(5))


class TestDiffusion:
    def test_diffusion_damps_noise(self, icos4):
        rng = np.random.default_rng(1)
        noise = SWEState(
            h=np.full(icos4.n_cells, 2000.0),
            u=rng.standard_normal(icos4.n_edges),
        )
        dy_visc = ShallowWaterDycore(icos4, diffusion=1e6)
        dy_free = ShallowWaterDycore(icos4, diffusion=0.0)
        dt = 60.0
        s_v, s_f = noise.copy(), noise.copy()
        for _ in range(10):
            s_v = dy_visc.step_rk4(s_v, dt)
            s_f = dy_free.step_rk4(s_f, dt)
        assert np.abs(s_v.u).std() < np.abs(s_f.u).std()


def test_max_stable_dt_scales_with_resolution(icos3, icos4):
    s3 = williamson_tc2(icos3)
    s4 = williamson_tc2(icos4)
    dt3 = ShallowWaterDycore(icos3).max_stable_dt(s3)
    dt4 = ShallowWaterDycore(icos4).max_stable_dt(s4)
    assert dt3 == pytest.approx(2 * dt4, rel=0.2)
