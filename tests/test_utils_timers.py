"""Tests for the GPTL-style timer registry and getTiming aggregation."""

import pytest

from repro.utils import TimerRegistry, get_timing


class FakeClock:
    """Manually advanced clock for deterministic timer tests."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def test_start_stop_accumulates():
    clock = FakeClock()
    reg = TimerRegistry(clock=clock)
    reg.start("run")
    clock.advance(2.5)
    reg.stop("run")
    reg.start("run")
    clock.advance(1.5)
    reg.stop("run")
    assert reg.total("run") == pytest.approx(4.0)


def test_nesting_structure_and_report():
    clock = FakeClock()
    reg = TimerRegistry(clock=clock)
    reg.start("run")
    reg.start("atm")
    clock.advance(1.0)
    reg.stop("atm")
    reg.start("ocn")
    clock.advance(2.0)
    reg.stop("ocn")
    reg.stop("run")
    assert reg.total("run") == pytest.approx(3.0)
    assert reg.total("atm") == pytest.approx(1.0)
    report = reg.report()
    assert "atm" in report and "ocn" in report
    assert set(reg.names()) == {"run", "atm", "ocn"}


def test_stop_wrong_timer_raises():
    reg = TimerRegistry(clock=FakeClock())
    reg.start("a")
    with pytest.raises(RuntimeError, match="nesting violation"):
        reg.stop("b")


def test_double_start_raises():
    clock = FakeClock()
    reg = TimerRegistry(clock=clock)
    reg.start("a")
    with pytest.raises(RuntimeError, match="already running"):
        reg.start("a")


def test_add_direct_credit():
    reg = TimerRegistry(clock=FakeClock())
    reg.add("model_run", 10.0)
    reg.add("model_run", 5.0)
    assert reg.total("model_run") == pytest.approx(15.0)
    node = reg._find(reg._root, "model_run")
    assert node.count == 2
    assert node.max == pytest.approx(10.0)
    assert node.min == pytest.approx(5.0)


def test_get_timing_uses_max_across_ranks():
    regs = []
    for seconds in (10.0, 20.0, 15.0):
        reg = TimerRegistry(clock=FakeClock())
        reg.add("run_loop", seconds)
        regs.append(reg)
    rep = get_timing(regs, "run_loop", simulated_days=1.0)
    assert rep.max_seconds == pytest.approx(20.0)
    assert rep.n_ranks == 3
    # 1 simulated day in 20 s wall -> 86400/20 = 4320 SDPD -> /365 SYPD
    assert rep.sdpd == pytest.approx(4320.0)
    assert rep.sypd == pytest.approx(4320.0 / 365.0)


def test_get_timing_rejects_bad_inputs():
    reg = TimerRegistry(clock=FakeClock())
    reg.add("run", 1.0)
    with pytest.raises(ValueError):
        get_timing([reg], "run", simulated_days=0.0)
    with pytest.raises(ValueError):
        get_timing([], "run", simulated_days=1.0)
    with pytest.raises(KeyError):
        get_timing([reg], "missing", simulated_days=1.0)


def test_timed_context_manager():
    clock = FakeClock()
    reg = TimerRegistry(clock=clock)
    with reg.timed("step"):
        clock.advance(0.5)
    assert reg.total("step") == pytest.approx(0.5)


def test_unrecorded_timer_min_is_finite():
    """Regression: a never-recorded node reported min = inf, which leaked
    into reports and min-across-ranks aggregates."""
    from repro.utils.timers import TimerNode

    node = TimerNode(name="never")
    assert node.min == 0.0
    assert node.max == 0.0
    # First record seeds min/max with the observation, not the default.
    node.record(2.0)
    assert node.min == pytest.approx(2.0)
    assert node.max == pytest.approx(2.0)


def test_report_surfaces_min_max():
    """Regression: report() omitted the min/max columns GPTL prints."""
    clock = FakeClock()
    reg = TimerRegistry(clock=clock)
    for elapsed in (1.0, 3.0):
        with reg.timed("phase"):
            clock.advance(elapsed)
    report = reg.report()
    header = report.splitlines()[0]
    assert "min(s)" in header and "max(s)" in header
    row = report.splitlines()[1]
    assert "1.000000" in row and "3.000000" in row
