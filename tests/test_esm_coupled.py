"""Tests for the coupled AP3ESM driver and its diagnostics."""

import numpy as np
import pytest

from repro.esm import AP3ESM, AP3ESMConfig, surface_kinetic_energy, surface_rossby_number
from repro.esm.diagnostics import atm_snapshot, cold_wake, wind_speed_10m


@pytest.fixture(scope="module")
def coupled():
    m = AP3ESM(AP3ESMConfig(atm_level=3, ocn_nlon=64, ocn_nlat=48, ocn_levels=8))
    m.init()
    m.run_couplings(12)
    return m


class TestDriver:
    def test_clock_and_frequencies(self, coupled):
        # Ocean couples once per 5 atmosphere couplings (paper 180:36).
        assert coupled.clock.step_count == 12
        assert coupled.ocn.n_steps == 2 * coupled.ocn_steps_per_coupling

    def test_ocean_coupling_period_is_multiple_of_its_step(self, coupled):
        period = coupled.config.ocn_couple_ratio * coupled.dt_couple
        ratio = period / coupled.ocn.dt_baroclinic
        assert ratio == pytest.approx(round(ratio), abs=1e-9)

    def test_all_components_stepped(self, coupled):
        assert coupled.atm.n_steps == 12
        assert coupled.ice.n_steps == 12
        assert coupled.lnd.n_steps == 12

    def test_states_remain_physical(self, coupled):
        assert np.isfinite(coupled.atm.swe.h).all()
        assert coupled.atm.swe.h.min() > 0
        wet = coupled.ocn.mask3d
        assert np.isfinite(coupled.ocn.t[wet]).all()
        assert coupled.ocn.t[wet].min() >= -1.8 - 1e-9
        assert coupled.ocn.t[wet].max() < 40.0
        assert 170.0 < coupled.atm.tskin.min()
        assert coupled.atm.tskin.max() < 345.0

    def test_land_sea_mask_consistent(self, coupled):
        """Land cells keep the land model's skin; ocean cells track SST."""
        land = coupled.land_mask_atm
        assert land.any() and (~land).any()
        assert np.allclose(
            coupled.atm.tskin[land], coupled.lnd.tskin[land]
        )

    def test_field_registry_pruned(self, coupled):
        # The driver-native registry genuinely prunes the a2x, o2x, and
        # i2x paths; x2o is fully consumed (the ocean reads all four).
        for path in ("a2x", "o2x", "i2x"):
            pruned = coupled.fields.pruned(path)
            assert 0 < len(pruned) < len(coupled.fields.registered[path]), path
        assert coupled.fields.pruned("x2o") == coupled.fields.registered["x2o"]
        assert coupled.fields.n_used("a2x") == len(coupled.fields.pruned("a2x"))

    def test_task_domains_match_paper(self, coupled):
        domains = coupled.task_domains()
        assert domains["domain1"]["members"] == ["cpl", "atm", "ice", "lnd"]
        assert domains["domain2"]["members"] == ["ocn"]

    def test_lifecycle_guard(self):
        m = AP3ESM()
        with pytest.raises(RuntimeError):
            m.step_coupling()

    def test_timers_cover_components(self, coupled):
        names = set(coupled.timers.names())
        assert {"cpl_run", "atm_run", "ocn_run", "ice_run", "lnd_run"} <= names
        # Coupled time includes all component time.
        assert coupled.timers.total("cpl_run") >= coupled.timers.total("atm_run")


class TestDiagnostics:
    def test_rossby_number_shape_and_mask(self, coupled):
        ro = surface_rossby_number(coupled.ocn)
        assert ro.shape == coupled.ocn.metrics.shape
        assert np.isnan(ro[~coupled.ocn.metrics.mask_c]).all()
        finite = ro[np.isfinite(ro)]
        assert len(finite) > 0
        # Large-scale flow: |Ro| << 1 away from storms.
        assert np.abs(np.median(finite)) < 0.1

    def test_surface_ke_nonnegative(self, coupled):
        ke = surface_kinetic_energy(coupled.ocn)
        finite = ke[np.isfinite(ke)]
        assert np.all(finite >= 0)

    def test_wind10m_positive(self, coupled):
        w = wind_speed_10m(coupled.atm)
        assert w.shape == (coupled.atm.grid.n_cells,)
        assert np.all(w >= 0)
        assert w.max() < 150.0

    def test_atm_snapshot_fields(self, coupled):
        snap = atm_snapshot(coupled.atm)
        assert {"wind10m", "precip", "cloud_fraction"} <= set(snap)

    def test_cold_wake_requires_matching_shapes(self, coupled):
        with pytest.raises(ValueError):
            cold_wake(np.zeros((2, 2)), np.zeros((3, 3)), np.ones((2, 2), bool))


class TestAIPhysicsCoupled:
    """The headline configuration: the coupled AP3ESM running the trained
    AI physics suite in place of the conventional parameterizations."""

    @pytest.fixture(scope="class")
    def ai_coupled(self):
        from repro.atm import (
            AIPhysicsSuite,
            GristConfig,
            GristModel,
            harvest_archive_from_model,
        )

        host = GristModel(GristConfig(level=3, nlev=10))
        host.init()
        archive = harvest_archive_from_model(
            host, n_days=3, samples_per_day=6, ncol_per_sample=64
        )
        suite = AIPhysicsSuite.train(archive, epochs=25, width=24, lr=3e-3)
        model = AP3ESM(AP3ESMConfig(
            atm_level=3, atm_nlev=10, ocn_nlon=48, ocn_nlat=32,
            ocn_levels=6, physics=suite,
        ))
        model.init()
        model.run_couplings(8)
        return model

    def test_runs_stably(self, ai_coupled):
        assert np.isfinite(ai_coupled.atm.swe.h).all()
        assert np.isfinite(ai_coupled.ocn.t).all()
        assert ai_coupled.atm.swe.h.min() > 0

    def test_physical_state(self, ai_coupled):
        assert 170.0 < ai_coupled.atm.tskin.min()
        assert ai_coupled.atm.tskin.max() < 345.0
        wet = ai_coupled.ocn.mask3d
        assert ai_coupled.ocn.t[wet].min() >= -1.8 - 1e-9

    def test_ai_suite_actually_used(self, ai_coupled):
        from repro.atm import AIPhysicsSuite

        assert isinstance(ai_coupled.atm.physics, AIPhysicsSuite)

    def test_radiation_flows_to_land(self, ai_coupled):
        """The AI radiation outputs 'serve as inputs to the land surface
        model' — the land stepped every coupling with those fluxes."""
        assert ai_coupled.lnd.n_steps == 8
