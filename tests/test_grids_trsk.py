"""Tests for the TRSK mimetic operators: the discrete conservation
properties the dycore's stability rests on."""

import numpy as np
import pytest

from repro.grids import trsk


W = 1e-5  # solid-body angular rate (rad/s)


def _solid_body(grid, axis=(0.0, 0.0, 1.0)):
    def vf(xyz):
        return W * np.cross(np.asarray(axis, dtype=float), xyz) * grid.radius

    return vf


def test_divergence_of_solid_body_is_tiny(icos4):
    u = icos4.project_to_edges(_solid_body(icos4))
    div = trsk.divergence(icos4, u)
    scale = np.abs(u).max() / icos4.de.mean()
    assert np.abs(div).max() < 1e-3 * scale


def test_divergence_of_constant_normal_field_integrates_to_zero(icos4):
    rng = np.random.default_rng(0)
    u = rng.standard_normal(icos4.n_edges)
    total = np.sum(icos4.area_cell * trsk.divergence(icos4, u))
    # Every edge flux appears with +/- once: global integral is round-off.
    assert abs(total) < 1e-6 * np.abs(icos4.le * u).sum()


def test_gradient_of_constant_is_zero(icos4):
    g = trsk.gradient(icos4, np.full(icos4.n_cells, 7.3))
    assert np.allclose(g, 0.0, atol=1e-18)


def test_div_grad_adjointness(icos4):
    """sum_c A_c phi div(u) == -sum_e le de grad(phi) u : exact (energy
    conservation of the pressure term)."""
    rng = np.random.default_rng(1)
    phi = rng.standard_normal(icos4.n_cells)
    u = rng.standard_normal(icos4.n_edges)
    lhs = np.sum(icos4.area_cell * phi * trsk.divergence(icos4, u))
    rhs = -np.sum(icos4.le * icos4.de * trsk.gradient(icos4, phi) * u)
    assert lhs == pytest.approx(rhs, rel=1e-12)


def test_curl_of_solid_body_is_2w_sinlat(icos4):
    u = icos4.project_to_edges(_solid_body(icos4))
    zeta = trsk.curl(icos4, u)
    expected = 2.0 * W * np.sin(icos4.lat_dual)
    assert np.abs(zeta - expected).max() < 0.02 * 2.0 * W


def test_curl_of_gradient_is_zero(icos4):
    """Discrete curl(grad) = 0 exactly: the mimetic property."""
    rng = np.random.default_rng(2)
    phi = rng.standard_normal(icos4.n_cells)
    zeta = trsk.curl(icos4, trsk.gradient(icos4, phi))
    scale = np.abs(phi).max() / icos4.area_dual.mean() * icos4.de.mean()
    assert np.abs(zeta).max() < 1e-12 * scale


def test_global_circulation_zero(icos4):
    rng = np.random.default_rng(3)
    u = rng.standard_normal(icos4.n_edges)
    total = np.sum(icos4.area_dual * trsk.curl(icos4, u))
    assert abs(total) < 1e-6 * np.abs(icos4.de * u).sum()


def test_tangential_reconstruction_accuracy(icos4):
    """TRSK tangential winds: accurate in RMS; max error is localized at
    the 12 pentagons (known property of the scheme)."""
    vf = _solid_body(icos4)
    u = icos4.project_to_edges(vf)
    vt = trsk.tangential(icos4, u)
    vt_exact = icos4.tangential_of(vf)
    scale = np.abs(vt_exact).max()
    rms = np.sqrt(np.mean((vt - vt_exact) ** 2)) / scale
    assert rms < 0.03
    assert np.abs(vt - vt_exact).max() / scale < 0.15


def test_tangential_rms_converges(icos3, icos4):
    def rms_err(grid):
        vf = _solid_body(grid, axis=(0.0, 1.0, 0.0))
        u = grid.project_to_edges(vf)
        err = trsk.tangential(grid, u) - grid.tangential_of(vf)
        return np.sqrt(np.mean(err**2)) / np.abs(grid.tangential_of(vf)).max()

    assert rms_err(icos4) < 0.8 * rms_err(icos3)


def test_coriolis_energy_neutrality(icos4):
    """The PV-flux operator must not change kinetic energy: for any u, q,
    sum_e le de u_e q_e tangential(u*h)_e with the symmetric q pairing is
    zero to round-off thanks to the antisymmetrized weights."""
    rng = np.random.default_rng(4)
    u = rng.standard_normal(icos4.n_edges)
    # Constant q and h: the exactly-neutral case.
    e = np.sum(icos4.le * icos4.de * u * trsk.tangential(icos4, u))
    assert abs(e) < 1e-10 * np.sum(icos4.le * icos4.de * u * u)


def test_cell_to_edge_preserves_constants(icos4):
    assert np.allclose(trsk.cell_to_edge(icos4, np.full(icos4.n_cells, 3.0)), 3.0)


def test_cell_to_dual_preserves_constants(icos4):
    assert np.allclose(trsk.cell_to_dual(icos4, np.full(icos4.n_cells, 2.5)), 2.5)


def test_dual_to_edge_preserves_constants(icos4):
    assert np.allclose(trsk.dual_to_edge(icos4, np.full(icos4.n_dual, 1.5)), 1.5)


def test_kinetic_energy_positive_and_consistent(icos4):
    """Global KE from cells equals the edge-quadrature KE identically."""
    rng = np.random.default_rng(5)
    u = rng.standard_normal(icos4.n_edges)
    ke_cells = np.sum(icos4.area_cell * trsk.kinetic_energy_cell(icos4, u))
    ke_edges = np.sum(0.5 * icos4.le * icos4.de * u * u)
    assert ke_cells == pytest.approx(ke_edges, rel=1e-12)
    assert np.all(trsk.kinetic_energy_cell(icos4, u) >= 0)


def test_kinetic_energy_of_solid_body(icos4):
    """KE of solid-body flow ~ integral of |V|^2/2 over the sphere."""
    vf = _solid_body(icos4)
    u = icos4.project_to_edges(vf)
    ke = np.sum(icos4.area_cell * trsk.kinetic_energy_cell(icos4, u))
    # |V|^2 = (W R cos(lat))^2; sphere mean of cos^2(lat) = 2/3.
    exact = 0.5 * (W * icos4.radius) ** 2 * (2.0 / 3.0) * 4 * np.pi * icos4.radius**2
    assert ke == pytest.approx(exact, rel=0.05)


def test_laplacian_smooths(icos4):
    """The vector Laplacian of a random field must reduce its energy when
    used as a diffusion tendency (negative-semidefinite operator)."""
    rng = np.random.default_rng(6)
    u = rng.standard_normal(icos4.n_edges)
    lap = trsk.laplacian_edge(icos4, u)
    de_dt = np.sum(icos4.le * icos4.de * u * lap)
    assert de_dt < 0
