"""Tests for the conventional physics suite and column machinery."""

import numpy as np
import pytest

from repro.atm import (
    ColumnState,
    ConventionalPhysics,
    PhysicsParams,
    pressure_levels,
    reference_profiles,
    saturation_specific_humidity,
    synthetic_columns,
)
from repro.utils.units import GRAVITY


@pytest.fixture
def columns():
    return synthetic_columns(64, 30, season=1, step=3)


@pytest.fixture
def physics():
    return ConventionalPhysics()


class TestColumnInfrastructure:
    def test_pressure_levels_monotone_top_to_bottom(self):
        p = pressure_levels(30)
        assert len(p) == 30
        assert np.all(np.diff(p) > 0)
        assert p[-1] == pytest.approx(101325.0)
        with pytest.raises(ValueError):
            pressure_levels(1)

    def test_reference_profiles_physical(self):
        p = pressure_levels(30)
        t, q = reference_profiles(p)
        assert 200.0 < t.min() < 230.0       # stratosphere
        assert 280.0 < t[-1] < 295.0         # surface
        assert np.all(q >= 0)
        assert q[-1] > q[0]                  # moisture concentrated low

    def test_qsat_increases_with_temperature(self):
        p = np.full(5, 1e5)
        t = np.array([250.0, 270.0, 290.0, 300.0, 310.0])
        qs = saturation_specific_humidity(t, p)
        assert np.all(np.diff(qs) > 0)
        # ~290 K at the surface: qsat ~ 12 g/kg.
        assert qs[2] == pytest.approx(0.012, rel=0.2)

    def test_column_state_validation(self):
        p = pressure_levels(10)
        good = np.zeros((4, 10))
        with pytest.raises(ValueError):
            ColumnState(good, good, good, np.zeros((4, 9)), p, np.zeros(4), np.zeros(4))
        with pytest.raises(ValueError):
            ColumnState(good, good, good, good, p, np.zeros(3), np.zeros(4))

    def test_as_channels_layout(self, columns):
        chan = columns.as_channels()
        assert chan.shape == (64, 5, 30)
        assert np.array_equal(chan[:, 2], columns.t)
        assert np.array_equal(chan[0, 4], columns.p)

    def test_synthetic_columns_deterministic(self):
        a = synthetic_columns(8, 10, 0, 0)
        b = synthetic_columns(8, 10, 0, 0)
        assert np.array_equal(a.t, b.t)
        c = synthetic_columns(8, 10, 0, 1)
        assert not np.array_equal(a.t, c.t)


class TestRadiation:
    def test_night_side_gets_no_shortwave(self, physics, columns):
        columns.coszr[:] = 0.0
        gsw, glw, _ = physics.radiation(columns, np.zeros(columns.ncol))
        assert np.all(gsw == 0.0)
        assert np.all(glw > 50.0)  # longwave continues at night

    def test_clouds_reduce_shortwave_increase_longwave(self, physics, columns):
        columns.coszr[:] = 0.8
        clear = physics.radiation(columns, np.zeros(columns.ncol))
        cloudy = physics.radiation(columns, np.ones(columns.ncol))
        assert np.all(cloudy[0] < clear[0])
        assert np.all(cloudy[1] > clear[1])

    def test_magnitudes_earthlike(self, physics, columns):
        columns.coszr[:] = 1.0
        gsw, glw, dt_rad = physics.radiation(columns, np.full(columns.ncol, 0.3))
        assert 500.0 < gsw.mean() < 1000.0
        assert 150.0 < glw.mean() < 450.0
        # Radiative cooling ~ 1-2 K/day.
        assert abs(dt_rad.mean()) * 86400.0 < 5.0


class TestSurfaceLayer:
    def test_warm_skin_drives_positive_sensible_flux(self, physics, columns):
        columns.tskin = columns.t[:, -1] + 5.0
        _, _, _, _, shflx, _ = physics.surface_layer(columns)
        assert np.all(shflx > 0)

    def test_drag_opposes_wind(self, physics, columns):
        du, dv, _, _, _, _ = physics.surface_layer(columns)
        assert np.all(du[:, -1] * columns.u[:, -1] <= 0)
        assert np.all(dv[:, -1] * columns.v[:, -1] <= 0)
        # Only the lowest level feels the surface directly.
        assert np.all(du[:, :-1] == 0)

    def test_latent_flux_nonnegative(self, physics, columns):
        _, _, _, _, _, lhflx = physics.surface_layer(columns)
        assert np.all(lhflx >= 0)


class TestConvection:
    def test_stable_column_untouched(self, physics):
        p = pressure_levels(20)
        t_ref, q_ref = reference_profiles(p)
        # An isothermal column is absolutely stable.
        state = ColumnState(
            u=np.zeros((4, 20)), v=np.zeros((4, 20)),
            t=np.full((4, 20), 260.0), q=np.tile(q_ref * 0.1, (4, 1)),
            p=p, tskin=np.full(4, 260.0), coszr=np.zeros(4),
        )
        dT, dQ, precip = physics.convective_adjustment(state, 600.0)
        assert np.allclose(dT, 0.0)
        assert np.allclose(precip, 0.0)

    def test_unstable_column_adjusts_toward_critical(self, physics):
        p = pressure_levels(20)
        t_ref, q_ref = reference_profiles(p)
        state = ColumnState(
            u=np.zeros((1, 20)), v=np.zeros((1, 20)),
            t=t_ref[None, :].copy(), q=q_ref[None, :].copy(),
            p=p, tskin=np.array([300.0]), coszr=np.zeros(1),
        )
        state.t[0, -1] += 15.0  # superadiabatic near the surface
        dT, _, _ = physics.convective_adjustment(state, 600.0)
        assert dT[0, -1] < 0     # surface level cools
        assert dT[0, :-1].max() > 0  # heat deposited aloft

    def test_adjustment_conserves_column_enthalpy(self, physics):
        p = pressure_levels(20)
        t_ref, q_ref = reference_profiles(p)
        state = ColumnState(
            u=np.zeros((1, 20)), v=np.zeros((1, 20)),
            t=t_ref[None, :].copy(), q=q_ref[None, :].copy(),
            p=p, tskin=np.array([300.0]), coszr=np.zeros(1),
        )
        state.t[0, -1] += 10.0
        dT, _, _ = physics.convective_adjustment(state, 600.0)
        # Pairwise swaps: the plain sum of dT vanishes.
        assert abs(dT.sum()) < 1e-10 * np.abs(dT).max() * dT.size


class TestCondensation:
    def test_supersaturation_rains_out(self, physics):
        p = pressure_levels(10)
        t = np.full((2, 10), 285.0)
        qsat = saturation_specific_humidity(t, p[None, :])
        state = ColumnState(
            u=np.zeros((2, 10)), v=np.zeros((2, 10)), t=t,
            q=qsat * 1.5, p=p, tskin=np.full(2, 285.0), coszr=np.zeros(2),
        )
        dT, dQ, precip, cloud = physics.large_scale_condensation(state, 600.0)
        assert np.all(precip > 0)
        assert np.all(dQ <= 0)
        assert np.all(dT >= 0)  # latent heating
        assert np.all(cloud > 0.5)

    def test_dry_column_produces_nothing(self, physics):
        p = pressure_levels(10)
        state = ColumnState(
            u=np.zeros((2, 10)), v=np.zeros((2, 10)),
            t=np.full((2, 10), 285.0), q=np.zeros((2, 10)),
            p=p, tskin=np.full(2, 285.0), coszr=np.zeros(2),
        )
        _, dQ, precip, cloud = physics.large_scale_condensation(state, 600.0)
        assert np.all(precip == 0)
        assert np.all(dQ == 0)
        assert np.all(cloud == 0)

    def test_precip_matches_column_moisture_loss(self, physics):
        p = pressure_levels(15)
        t = np.full((1, 15), 290.0)
        qsat = saturation_specific_humidity(t, p[None, :])
        state = ColumnState(
            u=np.zeros((1, 15)), v=np.zeros((1, 15)), t=t,
            q=qsat * 1.2, p=p, tskin=np.full(1, 290.0), coszr=np.zeros(1),
        )
        _, dQ, precip, _ = physics.large_scale_condensation(state, 600.0)
        expected = -np.trapezoid(dQ[0], p) / GRAVITY
        assert precip[0] == pytest.approx(expected, rel=1e-12)


class TestFullSuite:
    def test_compute_returns_all_fields(self, physics, columns):
        tend = physics.compute(columns, 600.0)
        for arr in (tend.du, tend.dv, tend.dt, tend.dq):
            assert arr.shape == (columns.ncol, columns.nlev)
            assert np.all(np.isfinite(arr))
        for arr in (tend.gsw, tend.glw, tend.precip, tend.cloud_fraction):
            assert arr.shape == (columns.ncol,)
        assert np.all(tend.precip >= 0)
        assert np.all((tend.cloud_fraction >= 0) & (tend.cloud_fraction <= 1))

    def test_compute_rejects_bad_dt(self, physics, columns):
        with pytest.raises(ValueError):
            physics.compute(columns, 0.0)

    def test_deterministic(self, physics, columns):
        a = physics.compute(columns, 600.0)
        b = physics.compute(columns.copy(), 600.0)
        assert np.array_equal(a.dt, b.dt)
        assert np.array_equal(a.precip, b.precip)

    def test_custom_params_change_answer(self, columns):
        default = ConventionalPhysics().compute(columns, 600.0)
        dark = ConventionalPhysics(PhysicsParams(albedo=0.9)).compute(columns, 600.0)
        assert dark.gsw.mean() < default.gsw.mean()


class TestBoundaryLayer:
    def test_mixing_smooths_lower_column(self, physics):
        from repro.atm import pressure_levels

        p = pressure_levels(20)
        rng = np.random.default_rng(0)
        t = 280.0 + np.zeros((8, 20))
        t[:, -5:] += rng.standard_normal((8, 5)) * 4.0  # noisy PBL
        state = ColumnState(
            u=np.zeros((8, 20)), v=np.zeros((8, 20)), t=t,
            q=np.full((8, 20), 1e-3), p=p,
            tskin=np.full(8, 285.0), coszr=np.zeros(8),
        )
        du, dv, dt_t, dq = physics.boundary_layer_diffusion(state, 1800.0)
        t_new = t + 1800.0 * dt_t
        assert t_new[:, -5:].std() < t[:, -5:].std()

    def test_conserves_column_mean_roughly(self, physics):
        """Diffusion redistributes; with near-uniform dz the column mean
        barely moves."""
        from repro.atm import pressure_levels

        p = pressure_levels(16)
        rng = np.random.default_rng(1)
        t = 270.0 + rng.standard_normal((4, 16)) * 3.0
        state = ColumnState(
            u=np.zeros((4, 16)), v=np.zeros((4, 16)), t=t,
            q=np.full((4, 16), 1e-3), p=p,
            tskin=np.full(4, 285.0), coszr=np.zeros(4),
        )
        _, _, dt_t, _ = physics.boundary_layer_diffusion(state, 1800.0)
        drift = np.abs((1800.0 * dt_t).mean(axis=1))
        assert np.all(drift < 0.5)

    def test_free_troposphere_barely_touched(self, physics):
        from repro.atm import pressure_levels

        p = pressure_levels(20)
        rng = np.random.default_rng(2)
        t = 260.0 + rng.standard_normal((4, 20)) * 2.0
        state = ColumnState(
            u=np.zeros((4, 20)), v=np.zeros((4, 20)), t=t,
            q=np.full((4, 20), 1e-3), p=p,
            tskin=np.full(4, 285.0), coszr=np.zeros(4),
        )
        _, _, dt_t, _ = physics.boundary_layer_diffusion(state, 1800.0)
        upper = np.abs(dt_t[:, :8]).max()
        lower = np.abs(dt_t[:, -4:]).max()
        assert lower > 3.0 * upper

    def test_included_in_full_suite(self, physics, columns):
        """The full compute now mixes momentum above the surface level."""
        tend = physics.compute(columns, 600.0)
        assert np.abs(tend.du[:, -3]).max() > 0  # interior level touched
