"""Tests for the subfile parallel-I/O layer."""

import numpy as np
import pytest

from repro.io import IOCostModel, SubfileLayout, read_subfiles, write_subfiles
from repro.parallel import block_ranges


def _rank_slices(global_array, n_ranks):
    out = []
    for s, e in block_ranges(len(global_array), n_ranks):
        out.append((s, global_array[s:e]))
    return out


class TestLayout:
    def test_group_assignment_partitions_ranks(self):
        layout = SubfileLayout(n_ranks=10, n_groups=3)
        seen = []
        for g in range(3):
            seen.extend(layout.ranks_of(g))
        assert sorted(seen) == list(range(10))
        for r in range(10):
            assert r in layout.ranks_of(layout.group_of(r))

    def test_validation(self):
        with pytest.raises(ValueError):
            SubfileLayout(4, 5)
        with pytest.raises(ValueError):
            SubfileLayout(4, 0)
        with pytest.raises(ValueError):
            SubfileLayout(4, 2).group_of(9)

    def test_subfile_names_stable(self):
        layout = SubfileLayout(8, 2)
        assert layout.subfile_name("restart", 1) == "restart.00001.bin"


class TestRoundtrip:
    @pytest.mark.parametrize("n_ranks,n_groups", [(1, 1), (8, 1), (8, 4), (8, 8), (7, 3)])
    def test_write_read_roundtrip(self, tmp_path, n_ranks, n_groups):
        rng = np.random.default_rng(n_ranks * 10 + n_groups)
        global_array = rng.standard_normal(1000)
        layout = SubfileLayout(n_ranks, n_groups)
        paths = write_subfiles(tmp_path, "field", layout, _rank_slices(global_array, n_ranks))
        assert len(paths) == n_groups
        back = read_subfiles(tmp_path, "field", layout, 1000)
        assert np.array_equal(back, global_array)

    def test_other_dtypes(self, tmp_path):
        data = np.arange(100, dtype=np.int32)
        layout = SubfileLayout(4, 2)
        write_subfiles(tmp_path, "ints", layout, _rank_slices(data, 4))
        back = read_subfiles(tmp_path, "ints", layout, 100)
        assert back.dtype == np.int32
        assert np.array_equal(back, data)

    def test_bad_magic_detected(self, tmp_path):
        layout = SubfileLayout(2, 1)
        write_subfiles(tmp_path, "x", layout, _rank_slices(np.zeros(10), 2))
        path = tmp_path / layout.subfile_name("x", 0)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"JUNK"
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="bad magic"):
            read_subfiles(tmp_path, "x", layout, 10)

    def test_incomplete_coverage_detected(self, tmp_path):
        layout = SubfileLayout(2, 1)
        write_subfiles(tmp_path, "y", layout, _rank_slices(np.zeros(10), 2))
        with pytest.raises(ValueError, match="cover"):
            read_subfiles(tmp_path, "y", layout, 20)

    def test_wrong_slice_count(self, tmp_path):
        layout = SubfileLayout(4, 2)
        with pytest.raises(ValueError):
            write_subfiles(tmp_path, "z", layout, _rank_slices(np.zeros(10), 3))

    def test_unsupported_dtype(self, tmp_path):
        layout = SubfileLayout(1, 1)
        with pytest.raises(ValueError):
            write_subfiles(tmp_path, "c", layout, [(0, np.zeros(4, dtype=complex))])


class TestCostModel:
    def test_subfiles_beat_shared_file_at_scale(self):
        model = IOCostModel()
        total = 100e9  # a 100 GB restart
        n_ranks = 10000
        shared = model.shared_file_time(total, n_writers=n_ranks)
        sub = model.subfile_time(total, n_groups=64)
        assert sub < shared

    def test_more_groups_help_until_fs_saturates(self):
        model = IOCostModel()
        total = 1e12
        t8 = model.subfile_time(total, 8)
        t64 = model.subfile_time(total, 64)
        assert t64 < t8

    def test_metadata_penalty_scales_with_groups(self):
        """Regression: `n_groups * metadata_s / max(n_groups, 1)`
        algebraically cancelled, so the metadata term was constant."""
        model = IOCostModel()
        small = 1e6  # bandwidth term negligible
        t1 = model.subfile_time(small, 1)
        t256 = model.subfile_time(small, 256)
        assert t256 > t1
        assert t256 - t1 == pytest.approx(255 * model.metadata_s, rel=1e-3)

    def test_subfile_time_monotone_past_saturation(self):
        """Once the filesystem bandwidth saturates (~200 groups for the
        defaults), every extra group strictly costs metadata time."""
        model = IOCostModel()
        total = 1e12
        times = [model.subfile_time(total, g) for g in (256, 512, 1024, 2048, 4096)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_best_group_count_reasonable(self):
        model = IOCostModel()
        g = model.best_group_count(1e12, n_ranks=100000)
        assert 64 <= g <= 100000

    def test_best_group_count_models_metadata_tradeoff(self):
        """Regression: best_group_count always drove to max bandwidth
        (256 groups here) because the metadata penalty cancelled; a tiny
        restart is fastest as a single subfile."""
        model = IOCostModel()
        assert model.best_group_count(1e6, n_ranks=4096) == 1
        # A huge restart still wants many groups, but not every rank.
        g = model.best_group_count(1e13, n_ranks=1 << 20)
        assert 1 < g < 1 << 20

    def test_validation(self):
        model = IOCostModel()
        with pytest.raises(ValueError):
            model.shared_file_time(-1, 4)
        with pytest.raises(ValueError):
            model.subfile_time(10, 0)
