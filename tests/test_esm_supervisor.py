"""Tests for the fleet supervisor: member-level fault isolation,
quarantine with bitwise survivors, checkpoint-rollback rejoin, policy
escalation, FaultPlan member scoping, and the EnsembleRun lifecycle
fixes that ride along (teardown on failed init, pool shutdown on a
raising finalize)."""

import numpy as np
import pytest

from repro.esm import AP3ESM, AP3ESMConfig, EnsembleConfig, EnsembleRun
from repro.obs import Obs
from repro.resilience import (
    CommFault,
    CommFaultInjector,
    CommTimeoutError,
    FaultPlan,
    FaultPlanError,
    FleetSupervisor,
    MemberPolicy,
    PhysicsFault,
    PhysicsFaultInjector,
    ResilienceConfig,
)

SMALL = dict(atm_level=2, ocn_nlon=24, ocn_nlat=16, ocn_levels=4)
COUPLINGS = 6

#: One-shot NaN poisoning of member 2's atmosphere at model step 3.
NAN_PLAN = {
    "seed": 7,
    "physics": [{"kind": "nan", "step": 3, "n_columns": 4, "member": 2}],
}


def _config(checkpoint_dir=None, **res_kw):
    res = ResilienceConfig(
        enabled=True,
        guard_physics=False,  # member-level isolation supersedes it
        checkpoint_every=2 if checkpoint_dir else 0,
        checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
        **res_kw,
    )
    return AP3ESMConfig(resilience=res, **SMALL)


def _fleet(members=3, policy="fail_fast", plan=None, batch=True,
           couplings=COUPLINGS, checkpoint_dir=None, obs=None, **res_kw):
    ens = EnsembleRun(EnsembleConfig(
        base=_config(checkpoint_dir=checkpoint_dir, member_policy=policy,
                     **res_kw),
        members=members,
        batch_physics=batch,
        fault_plan=FaultPlan.from_dict(plan) if plan is not None else None,
    ), obs=obs)
    ens.init()
    ens.run_couplings(couplings)
    return ens


def _state(m):
    return {
        "h": m.atm.swe.h.copy(), "u": m.atm.swe.u.copy(),
        "t_col": np.asarray(m.atm.t_col).copy(),
        "ocn.t": m.ocn.t.copy(), "ocn.u": m.ocn.u.copy(),
    }


def _assert_members_equal(a, b):
    sa, sb = _state(a), _state(b)
    for key in sa:
        assert np.array_equal(sa[key], sb[key]), f"field {key} differs"


class TestFaultPlanMemberScoping:
    def test_roundtrip_preserves_member(self):
        plan = FaultPlan.from_dict({
            "seed": 3,
            "physics": [{"kind": "nan", "step": 2, "n_columns": 2, "member": 1},
                        {"kind": "blowup", "step": 4, "n_columns": 2}],
            "comm": [{"kind": "transient", "match": 1, "times": 2,
                      "member": 0}],
        })
        again = FaultPlan.from_json(plan.to_json())
        assert again.physics[0].member == 1
        assert again.physics[1].member is None
        assert again.comm[0].member == 0
        assert again.member_scoped
        assert again.member_targets() == [0, 1]

    def test_for_member_and_without_members(self):
        plan = FaultPlan.from_dict({
            "physics": [{"kind": "nan", "step": 2, "n_columns": 2, "member": 1},
                        {"kind": "blowup", "step": 4, "n_columns": 2}],
            "comm": [{"kind": "kill", "rank": 1, "member": 1}],
        })
        phys, comm = plan.for_member(1)
        assert [f.step for f in phys] == [2]
        assert [f.kind for f in comm] == ["kill"]
        assert plan.for_member(0) == ([], [])
        stripped = plan.without_members()
        assert not stripped.member_scoped
        assert [f.step for f in stripped.physics] == [4]
        assert stripped.comm == []

    def test_memberless_plan_is_not_member_scoped(self):
        plan = FaultPlan.from_dict({"physics": [{"kind": "nan", "step": 1, "n_columns": 2}]})
        assert not plan.member_scoped
        assert plan.member_targets() == []

    def test_negative_member_names_the_bad_key(self):
        with pytest.raises(FaultPlanError, match=r"physics\[0\]\.member"):
            FaultPlan.from_dict(
                {"physics": [{"kind": "nan", "step": 1, "n_columns": 2, "member": -1}]}
            )

    def test_bool_member_rejected(self):
        with pytest.raises(ValueError, match="non-negative integer"):
            PhysicsFault(kind="nan", step=1, n_columns=2, member=True)

    def test_drop_and_corrupt_cannot_be_member_scoped(self):
        for kind in ("drop", "corrupt"):
            with pytest.raises(ValueError, match="transient and kill"):
                CommFault(kind=kind, src=0, dst=1, member=2)

    def test_injectors_skip_member_scoped_entries(self):
        plan = FaultPlan.from_dict({
            "physics": [{"kind": "nan", "step": 1, "n_columns": 2, "member": 0}],
            "comm": [{"kind": "transient", "src": 0, "dst": 1, "member": 0}],
        })
        assert PhysicsFaultInjector(plan).steps == []
        inj = CommFaultInjector(plan)
        # The scoped transient on edge (0, 1) must never fire here.
        for _ in range(3):
            assert inj.on_send(0, 1, 0, b"x") == b"x"
        assert inj.injected == 0


class TestQuarantine:
    """Losing the last member must leave the survivors bitwise-identical
    to a fleet that never contained it."""

    @pytest.mark.parametrize("batch", [True, False])
    def test_survivors_bitwise_equal_smaller_fleet(self, batch):
        faulted = _fleet(members=3, policy="quarantine", plan=NAN_PLAN,
                         batch=batch)
        sup = faulted.supervisor
        assert sup.quarantined == [2]
        assert sup.alive == [True, True, False]
        assert [(e.member, e.kind, e.action) for e in sup.events] == \
            [(2, "physics_blowup", "quarantine")]
        # Members 0..1 get the same seeded perturbations in any fleet
        # that contains them, so a 2-member clean fleet is the twin.
        clean = _fleet(members=2, batch=batch)
        for k in (0, 1):
            _assert_members_equal(faulted.members[k], clean.members[k])
        # The quarantined member stopped at the failed coupling.
        assert faulted.members[2].n_couplings < COUPLINGS
        assert faulted.members[0].n_couplings == COUPLINGS

    def test_whole_fleet_quarantined_raises(self):
        plan = {
            "physics": [{"kind": "nan", "step": 2, "n_columns": 2, "member": 0},
                        {"kind": "nan", "step": 2, "n_columns": 2, "member": 1}],
        }
        ens = EnsembleRun(EnsembleConfig(
            base=_config(member_policy="quarantine"), members=2,
            batch_physics=True, fault_plan=FaultPlan.from_dict(plan),
        ))
        ens.init()
        with pytest.raises(Exception, match="entire fleet quarantined"):
            ens.run_couplings(COUPLINGS)


class TestRestart:
    """Rollback + solo replay + rejoin must be bitwise-invisible: every
    member ends identical to a never-faulted twin fleet."""

    def test_rejoin_bitwise_equal_never_faulted_twin(self, tmp_path):
        plan = {
            "seed": 7,
            "physics": [{"kind": "blowup", "step": 3, "n_columns": 4,
                         "member": 1}],
        }
        faulted = _fleet(members=3, policy="restart", plan=plan,
                         checkpoint_dir=tmp_path / "faulted")
        sup = faulted.supervisor
        assert sup.alive == [True, True, True]
        assert sup.restarts == 1
        events = [(e.member, e.kind, e.action) for e in sup.events]
        assert events == [(1, "physics_blowup", "restart")]
        assert sup.events[0].replayed_couplings > 0
        assert sup.events[0].restored_from is not None
        twin = _fleet(members=3)
        for k in range(3):
            _assert_members_equal(faulted.members[k], twin.members[k])
            assert faulted.members[k].n_couplings == COUPLINGS

    def test_armed_but_fault_free_fleet_is_bitwise_clean(self, tmp_path):
        armed = _fleet(members=2, policy="restart",
                       checkpoint_dir=tmp_path / "armed")
        assert armed.supervisor is not None
        assert armed.supervisor.events == []
        plain = _fleet(members=2)
        assert plain.supervisor is None
        for k in range(2):
            _assert_members_equal(armed.members[k], plain.members[k])

    def test_restart_cap_escalates_to_quarantine(self, tmp_path):
        # A 4-coupling timeout window defeats rollback-and-replay: the
        # single allowed restart fails again inside the window.
        plan = {
            "comm": [{"kind": "transient", "match": 1, "times": 4,
                      "member": 2}],
        }
        faulted = _fleet(members=3, policy="restart", plan=plan,
                         checkpoint_dir=tmp_path / "esc",
                         member_restart_max=1)
        sup = faulted.supervisor
        assert sup.alive == [True, True, False]
        assert sup.escalations == 1
        actions = [(e.member, e.kind, e.action) for e in sup.events]
        assert (2, "comm_timeout", "restart") in actions
        assert actions[-1] == (2, "comm_timeout", "escalate")

    def test_restart_policy_needs_checkpoints(self):
        ens = EnsembleRun(EnsembleConfig(
            base=_config(member_policy="restart"), members=2,
            batch_physics=True,
        ))
        with pytest.raises(ValueError, match="rollback target"):
            ens.init()


class TestFailFast:
    def test_reraises_original_exception(self):
        plan = {
            "comm": [{"kind": "transient", "match": 1, "member": 1}],
        }
        ens = EnsembleRun(EnsembleConfig(
            base=_config(), members=2,
            fault_plan=FaultPlan.from_dict(plan),
        ))
        ens.init()
        with pytest.raises(CommTimeoutError):
            ens.run_couplings(COUPLINGS)
        sup = ens.supervisor
        assert [(e.member, e.kind, e.action) for e in sup.events] == \
            [(1, "comm_timeout", "fail_fast")]

    def test_default_policy_without_plan_arms_nothing(self):
        ens = EnsembleRun(EnsembleConfig(base=_config(), members=2))
        ens.init()
        assert ens.supervisor is None

    def test_plan_requires_resilience_enabled(self):
        ens = EnsembleRun(EnsembleConfig(
            base=AP3ESMConfig(**SMALL), members=2,
            fault_plan=FaultPlan.from_dict(
                {"physics": [{"kind": "nan", "step": 3, "n_columns": 2, "member": 1}]}
            ),
        ))
        with pytest.raises(ValueError, match="resilience"):
            ens.init()

    def test_plan_targeting_missing_member_rejected(self):
        ens = EnsembleRun(EnsembleConfig(
            base=_config(member_policy="quarantine"), members=2,
            batch_physics=True,
            fault_plan=FaultPlan.from_dict(NAN_PLAN),  # targets member 2
        ))
        with pytest.raises(ValueError, match="member 2"):
            ens.init()


class TestSupervisorObservability:
    def test_summary_degraded_section_and_counters(self):
        obs = Obs()
        faulted = _fleet(members=3, policy="quarantine", plan=NAN_PLAN,
                         obs=obs)
        summary = faulted.summary()
        sup = summary["supervisor"]
        assert sup["policy"] == "quarantine"
        assert sup["members_total"] == 3.0
        assert sup["alive"] == 2.0
        assert sup["quarantined"] == [2]
        assert sup["quarantines"] == 1.0
        assert sup["faults_injected"] == 1.0
        assert 0 < sup["sypd_degraded"] < summary["sypd"]["mean"] * 1.01
        assert sup["events"][0]["action"] == "quarantine"
        for row in summary["members"]:
            assert row["alive"] == (0.0 if row["member"] == 2 else 1.0)
        metrics = obs.metrics
        assert metrics.get("ensemble.supervisor.quarantines").value == 1.0
        assert metrics.get("ensemble.supervisor.events").value == 1.0

    def test_counters_render_in_interventions_report(self):
        from repro.obs.export import resilience_interventions, text_report

        obs = Obs()
        obs.counter("ensemble.supervisor.restarts").inc()
        regs = [h.metrics for h in obs.all_ranks()]
        assert resilience_interventions(regs) == \
            {"ensemble.supervisor.restarts": 1.0}
        report = text_report([h.tracer for h in obs.all_ranks()], regs)
        assert "resilience interventions" in report
        assert "ensemble.supervisor.restarts" in report

    def test_member_policy_validation(self):
        with pytest.raises(ValueError, match="member_policy"):
            ResilienceConfig(enabled=True, member_policy="retry")
        with pytest.raises(ValueError, match="member_restart_max"):
            ResilienceConfig(enabled=True, member_restart_max=-1)
        with pytest.raises(ValueError, match="unknown member_policy"):
            MemberPolicy.parse("retry")


class _FakePool:
    class _Stats:
        dispatches = 0
        fallbacks = 0
        workers = 0
        bytes_shared = 0
        occupancy = 0.0

    def __init__(self):
        self.stats = self._Stats()
        self.obs = None
        self.shutdowns = 0

    def ensure_started(self):
        pass

    def shutdown(self):
        self.shutdowns += 1


class TestLifecycleLeaks:
    """Satellite fixes: no leaked pool or half-built members when init or
    finalize raises partway through the fleet."""

    def test_finalize_shuts_pool_when_member_finalize_raises(self):
        ens = EnsembleRun(EnsembleConfig(base=AP3ESMConfig(**SMALL),
                                         members=2))
        ens.init()
        pool = _FakePool()
        ens._owned_pool = pool

        def bad_finalize():
            raise RuntimeError("member 0 finalize failed")

        real = ens.members[1].finalize
        finalized = []

        def recording_finalize():
            finalized.append(1)
            return real()

        ens.members[0].finalize = bad_finalize
        ens.members[1].finalize = recording_finalize
        with pytest.raises(RuntimeError, match="member 0 finalize"):
            ens.finalize()
        assert pool.shutdowns == 1
        # The later member was still finalized despite member 0 raising.
        assert finalized == [1]

    def test_failed_member_init_tears_down_fleet(self, monkeypatch):
        import repro.esm.ensemble as ensemble_mod

        pool = _FakePool()
        monkeypatch.setattr(
            ensemble_mod, "make_backend",
            lambda *a, **k: type("Space", (), {"runtime": pool})(),
        )
        real_init = AP3ESM.init
        real_finalize = AP3ESM.finalize
        calls, finalized = [], []

        def flaky_init(self):
            calls.append(self)
            if len(calls) == 2:
                raise RuntimeError("member 1 init failed")
            return real_init(self)

        def recording_finalize(self):
            finalized.append(self)
            return real_finalize(self)

        monkeypatch.setattr(AP3ESM, "init", flaky_init)
        monkeypatch.setattr(AP3ESM, "finalize", recording_finalize)
        ens = EnsembleRun(EnsembleConfig(
            base=AP3ESMConfig(backend="procs", **SMALL), members=2,
        ))
        with pytest.raises(RuntimeError, match="member 1 init"):
            ens.init()
        assert ens.members == []
        assert ens._owned_pool is None
        assert pool.shutdowns == 1
        # Member 0 completed init and was finalized on teardown.
        assert finalized == [calls[0]]

    def test_invalid_batched_config_tears_down_pool(self, monkeypatch):
        import repro.esm.ensemble as ensemble_mod

        pool = _FakePool()
        monkeypatch.setattr(
            ensemble_mod, "make_backend",
            lambda *a, **k: type("Space", (), {"runtime": pool})(),
        )
        ens = EnsembleRun(EnsembleConfig(
            base=AP3ESMConfig(backend="procs", **SMALL), members=2,
            batch_physics=True,
            config_deltas=[{}, {"atm_steps_per_coupling": 2}],
        ))
        with pytest.raises(ValueError, match="uniform atmosphere"):
            ens.init()
        assert ens.members == []
        assert pool.shutdowns == 1


class TestChaosEnsembleStage:
    def test_member_scoped_plan_runs_ensemble_stage(self):
        from repro.resilience.chaos import run_chaos

        config = AP3ESMConfig(resilience=ResilienceConfig(enabled=True),
                              **SMALL)
        report = run_chaos(FaultPlan.from_dict(NAN_PLAN), config=config,
                           couplings=COUPLINGS)
        assert report.ensemble_members == 3
        assert report.ensemble_quarantined == [2]
        assert report.ensemble_quarantine_bitwise is True
        assert report.ensemble_restart_bitwise is True
        assert report.survived
        assert report.counters["ensemble.supervisor.quarantines"] == 1.0
        assert report.counters["ensemble.supervisor.restarts"] == 1.0
        assert "ensemble stage (3 member(s))" in report.summary()

    def test_memberless_plan_skips_stage(self):
        from repro.resilience.chaos import run_chaos

        config = AP3ESMConfig(resilience=ResilienceConfig(enabled=True),
                              **SMALL)
        plan = FaultPlan.from_dict(
            {"physics": [{"kind": "nan", "step": 2, "n_columns": 2}]}
        )
        report = run_chaos(plan, config=config, couplings=2)
        assert report.ensemble_members is None
        assert "ensemble stage" not in report.summary()


class TestSupervisorConstruction:
    def test_members_only_no_lockstep(self, tmp_path):
        # The supervisor is usable standalone around plain AP3ESM models.
        cfg = _config(checkpoint_dir=tmp_path)
        models = []
        for k in range(2):
            m = AP3ESM(cfg)
            m.init()
            models.append(m)
        sup = FleetSupervisor(models, MemberPolicy.QUARANTINE)
        for _ in range(2):
            sup.step_fleet()
        assert sup.n_alive == 2
        assert all(m.n_couplings == 2 for m in models)
        for m in models:
            m.finalize()
