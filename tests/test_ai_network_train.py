"""Tests for the §5.2.1 architectures and the training harness."""

import numpy as np
import pytest

from repro.ai import (
    Adam,
    SGD,
    Normalizer,
    Sequential,
    Trainer,
    build_radiation_mlp,
    build_tendency_cnn,
    clip_grad_norm,
    mse_loss,
    split_by_days,
)
from repro.ai.layers import Dense


class TestArchitectures:
    def test_tendency_cnn_is_11_layers_500k_params(self):
        """Paper: 'five ResUnits within an 11-layer deep CNN totaling
        approximately 5e5 trainable parameters'."""
        net = build_tendency_cnn()
        # 1 stem + 5 ResUnits x 2 convs = 11 (the 1x1 head is a projection).
        assert net.n_conv_layers() == 11 + 1
        assert net.n_params == pytest.approx(5e5, rel=0.05)

    def test_tendency_cnn_shapes(self):
        net = build_tendency_cnn(levels=30)
        x = np.random.default_rng(0).standard_normal((3, 5, 30))
        y = net.forward(x)
        assert y.shape == (3, 4, 30)

    def test_tendency_cnn_level_independent(self):
        """Convolutional: the same net runs on any vertical extent —
        the 'resolution-adaptive' property."""
        net = build_tendency_cnn(levels=30)
        for levels in (10, 30, 50):
            x = np.zeros((1, 5, levels))
            assert net.forward(x).shape == (1, 4, levels)

    def test_radiation_mlp_shapes(self):
        net = build_radiation_mlp(levels=30)
        x = np.random.default_rng(0).standard_normal((4, 5 * 30 + 2))
        y = net.forward(x)
        assert y.shape == (4, 2)

    def test_radiation_mlp_has_7_dense_layers(self):
        net = build_radiation_mlp()

        def count(layer):
            if isinstance(layer, Dense):
                return 1
            if hasattr(layer, "fc1"):
                return 2
            if isinstance(layer, Sequential):
                return sum(count(l) for l in layer.layers)
            return 0

        assert count(net) == 7


class TestOptim:
    def test_sgd_reduces_quadratic(self):
        layer = Dense(1, 1)
        opt = SGD(layer.parameters(), lr=0.1)
        x = np.ones((8, 1))
        target = np.full((8, 1), 3.0)
        losses = []
        for _ in range(100):
            pred = layer.forward(x)
            loss, grad = mse_loss(pred, target)
            opt.zero_grad()
            layer.backward(grad)
            opt.step()
            losses.append(loss)
        assert losses[-1] < 1e-3 * losses[0] + 1e-10

    def test_adam_reduces_quadratic(self):
        layer = Dense(2, 1)
        opt = Adam(layer.parameters(), lr=0.05)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((32, 2))
        target = x @ np.array([[1.5], [-2.0]]) + 0.3
        for _ in range(300):
            pred = layer.forward(x)
            loss, grad = mse_loss(pred, target)
            opt.zero_grad()
            layer.backward(grad)
            opt.step()
        assert loss < 1e-4

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([], lr=0.0)

    def test_clip_grad_norm(self):
        layer = Dense(4, 4)
        for p in layer.parameters():
            p.grad[:] = 10.0
        pre = clip_grad_norm(layer.parameters(), max_norm=1.0)
        assert pre > 1.0
        total = np.sqrt(sum(np.sum(p.grad**2) for p in layer.parameters()))
        assert total == pytest.approx(1.0, rel=1e-9)
        with pytest.raises(ValueError):
            clip_grad_norm(layer.parameters(), 0.0)


class TestSplit:
    def test_split_matches_paper_protocol(self):
        """80 days, 7:1 train:test, 3 random validation steps/day."""
        split = split_by_days(80, steps_per_day=8)
        n_test_days = len(split.test) // 8
        n_train_days = 80 - n_test_days
        assert n_train_days / n_test_days == pytest.approx(7.0, rel=0.05)
        assert len(split.validation) == n_train_days * 3
        # Disjoint.
        assert not set(split.train) & set(split.validation)
        assert not set(split.train) & set(split.test)
        assert not set(split.validation) & set(split.test)

    def test_split_day_wise_no_leakage(self):
        """All steps of a day land on the same side of the split."""
        split = split_by_days(16, steps_per_day=4)
        test_days = set(i // 4 for i in split.test)
        train_days = set(i // 4 for i in np.concatenate([split.train, split.validation]))
        assert not test_days & train_days

    def test_split_validation(self):
        with pytest.raises(ValueError):
            split_by_days(1, 4)
        with pytest.raises(ValueError):
            split_by_days(10, 4, val_steps_per_day=5)
        with pytest.raises(ValueError):
            split_by_days(10, 4, train_fraction=1.5)


class TestNormalizer:
    def test_fit_apply_invert(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((100, 3, 10)) * np.array([1.0, 5.0, 0.1])[None, :, None]
        norm = Normalizer.fit(x)
        xn = norm.apply(x)
        assert np.allclose(xn.mean(axis=(0, 2)), 0.0, atol=1e-10)
        assert np.allclose(xn.std(axis=(0, 2)), 1.0, atol=1e-10)
        assert np.allclose(norm.invert(xn), x)

    def test_constant_channel_safe(self):
        x = np.ones((10, 2, 4))
        norm = Normalizer.fit(x)
        assert np.all(np.isfinite(norm.apply(x)))


class TestTrainer:
    def test_training_reduces_loss_small_cnn(self):
        """A small tendency CNN must fit a synthetic column mapping."""
        rng = np.random.default_rng(3)
        net = build_tendency_cnn(levels=10, width=8, n_res_units=1)
        x = rng.standard_normal((64, 5, 10))
        # Learnable target: smoothed input channels.
        y = np.stack(
            [x[:, c] + 0.5 * np.roll(x[:, c], 1, axis=-1) for c in range(4)], axis=1
        )
        trainer = Trainer(net, lr=3e-3, batch_size=16)
        hist = trainer.fit(x, y, epochs=20)
        assert hist["train"][-1] < 0.5 * hist["train"][0]

    def test_validation_tracked(self):
        rng = np.random.default_rng(4)
        net = build_radiation_mlp(levels=4, width=16)
        x = rng.standard_normal((40, 22))
        y = x[:, :2] * 2.0
        trainer = Trainer(net, lr=1e-3, batch_size=8)
        hist = trainer.fit(x[:32], y[:32], epochs=3, x_val=x[32:], y_val=y[32:])
        assert len(hist["val"]) == 3

    def test_predict_in_physical_units(self):
        rng = np.random.default_rng(5)
        net = Sequential([Dense(3, 1)])
        x = rng.standard_normal((200, 3))
        y = (x @ np.array([[2.0], [0.0], [-1.0]])) * 100.0 + 400.0
        trainer = Trainer(net, lr=3e-2, batch_size=50)
        trainer.fit(x, y, epochs=200)
        pred = trainer.predict(x)
        # R^2-style check in physical units.
        ss_res = np.sum((pred - y) ** 2)
        ss_tot = np.sum((y - y.mean()) ** 2)
        assert 1.0 - ss_res / ss_tot > 0.95

    def test_fit_rejects_bad_input(self):
        trainer = Trainer(Sequential([Dense(2, 1)]))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((3, 2)), np.zeros((4, 1)))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((0, 2)), np.zeros((0, 1)))
