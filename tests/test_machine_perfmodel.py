"""Tests for the performance model: roofline terms, scaling shape, and
anchor calibration against published Table 2 points."""

import math

import pytest

from repro.machine import (
    ComponentWorkload,
    CoupledPerfModel,
    CouplingSpec,
    PerfModel,
    Phase,
    atm_workload,
    ocn_workload,
    orise,
    sunway_oceanlight,
)

CORES_PER_PROC = 65  # Sunway: one process per 65-core CG


def procs(cores: int) -> int:
    return max(1, cores // CORES_PER_PROC)


@pytest.fixture
def sunway_model():
    return PerfModel(sunway_oceanlight(), mode="accelerated")


@pytest.fixture
def atm3km():
    return atm_workload(42_000_000, 30)


class TestPhaseAndWorkloadValidation:
    def test_phase_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            Phase("x", steps_per_day=0, flops_per_point=1, bytes_per_point=1)

    def test_phase_rejects_negative_work(self):
        with pytest.raises(ValueError):
            Phase("x", steps_per_day=1, flops_per_point=-1, bytes_per_point=1)

    def test_workload_needs_phases(self):
        with pytest.raises(ValueError):
            ComponentWorkload("w", columns=10, levels=5, phases=())

    def test_workload_scaled(self):
        wl = ocn_workload(1000, 10)
        assert ocn_workload(1000, 10, compressed=True).columns == pytest.approx(
            wl.columns * 0.70, abs=1
        )
        with pytest.raises(ValueError):
            wl.scaled(0.0)


class TestTimePerDay:
    def test_breakdown_components_positive(self, sunway_model, atm3km):
        bd = sunway_model.time_per_day(atm3km, procs(2_129_920))
        assert bd.t_compute > 0
        assert bd.t_halo > 0
        assert bd.t_collectives > 0
        assert bd.t_staging == 0  # Sunway CPEs need no PCIe staging
        assert bd.total == pytest.approx(
            bd.t_compute + bd.t_halo + bd.t_collectives + bd.t_staging + bd.t_serial
        )

    def test_orise_charges_staging(self):
        model = PerfModel(orise(), mode="accelerated")
        wl = ocn_workload(18000 * 11511, 80)
        bd = model.time_per_day(wl, 4000)
        assert bd.t_staging > 0

    def test_single_process_has_no_comm(self, sunway_model, atm3km):
        bd = sunway_model.time_per_day(atm3km, 1)
        assert bd.t_halo == 0
        assert bd.t_collectives == 0

    def test_compute_scales_inversely_with_procs(self, sunway_model, atm3km):
        bd1 = sunway_model.time_per_day(atm3km, 1000)
        bd2 = sunway_model.time_per_day(atm3km, 4000)
        assert bd2.t_compute == pytest.approx(bd1.t_compute / 4, rel=0.01)

    def test_halo_scales_like_perimeter(self, sunway_model, atm3km):
        # Quadrupling ranks halves the local edge, so per-rank halo bytes
        # halve; the latency term is unchanged.
        bd1 = sunway_model.time_per_day(atm3km, 1000)
        bd2 = sunway_model.time_per_day(atm3km, 4000)
        assert bd1.t_halo / 2 < bd2.t_halo < bd1.t_halo

    def test_too_many_processes_rejected(self, sunway_model, atm3km):
        with pytest.raises(ValueError):
            sunway_model.time_per_day(atm3km, 10**9)

    def test_host_mode_much_slower(self, atm3km):
        acc = PerfModel(sunway_oceanlight(), mode="accelerated")
        host = PerfModel(sunway_oceanlight(), mode="host")
        p = 32768
        assert host.time_per_day(atm3km, p).t_compute > 50 * acc.time_per_day(
            atm3km, p
        ).t_compute

    def test_orise_requires_host_processor_for_host_mode(self):
        with pytest.raises(ValueError):
            PerfModel(orise(), mode="nonsense")


class TestStrongScalingShape:
    def test_efficiency_decreases_at_scale(self, sunway_model, atm3km):
        """Strong scaling efficiency must fall as comm dominates."""
        base_p = procs(2_129_920)
        sypd0 = sunway_model.predict_sypd(atm3km, base_p)
        effs = []
        for mult in (2, 4, 8):
            sypd = sunway_model.predict_sypd(atm3km, base_p * mult)
            effs.append((sypd / sypd0) / mult)
        assert effs[0] > effs[1] > effs[2]
        assert effs[2] > 0.3  # but not a collapse

    def test_throughput_still_increases(self, sunway_model, atm3km):
        prev = 0.0
        for mult in (1, 2, 4, 8):
            sypd = sunway_model.predict_sypd(atm3km, procs(2_129_920) * mult)
            assert sypd > prev
            prev = sypd


class TestCalibration:
    def test_two_point_calibration_exact_at_anchors(self, sunway_model, atm3km):
        anchors = [(procs(2_129_920), 0.36), (procs(17_039_360), 1.16)]
        cal, wl = sunway_model.calibrated(atm3km, anchors)
        for p, sypd in anchors:
            assert cal.predict_sypd(wl, p) == pytest.approx(sypd, rel=1e-6)

    def test_interior_prediction_close_to_paper(self, sunway_model, atm3km):
        """Calibrated on endpoints, the *interior* Table 2 points are
        predictions — require them within 20 % of published."""
        cal, wl = sunway_model.calibrated(
            atm3km, [(procs(2_129_920), 0.36), (procs(17_039_360), 1.16)]
        )
        for cores, pub in [(4_259_840, 0.70), (8_519_680, 0.92)]:
            got = cal.predict_sypd(wl, procs(cores))
            assert got == pytest.approx(pub, rel=0.20)

    def test_mpe_curve_calibration_finds_large_serial_term(self, atm3km):
        """The MPE baseline's 24.6 % efficiency implies a large Amdahl term."""
        host = PerfModel(sunway_oceanlight(), mode="host")
        cal, wl = host.calibrated(atm3km, [(32768, 0.0032), (262144, 0.0063)])
        t1 = cal.time_per_day(wl, 32768).total
        assert wl.serial_seconds_per_day > 0.3 * t1

    def test_one_point_calibration(self, sunway_model, atm3km):
        cal, wl = sunway_model.calibrated(atm3km, [(procs(2_129_920), 0.36)])
        assert cal.predict_sypd(wl, procs(2_129_920)) == pytest.approx(0.36, rel=1e-6)

    def test_calibration_requires_anchor(self, sunway_model, atm3km):
        with pytest.raises(ValueError):
            sunway_model.calibrated(atm3km, [])

    def test_orise_ocn_curve(self):
        model = PerfModel(orise(), mode="accelerated")
        wl = ocn_workload(36000 * 22018, 80, compressed=True)
        cal, wlc = model.calibrated(wl, [(4060, 0.92), (16085, 1.98)])
        # Published interior points within 15 %.
        assert cal.predict_sypd(wlc, 8060) == pytest.approx(1.45, rel=0.15)
        assert cal.predict_sypd(wlc, 11927) == pytest.approx(1.76, rel=0.15)

    def test_mpe_vs_cpe_speedup_band(self, atm3km):
        """End-to-end MPE->CPE+OPT speedup should land in the paper's
        84-184x band at matching node counts."""
        acc = PerfModel(sunway_oceanlight(), mode="accelerated")
        host = PerfModel(sunway_oceanlight(), mode="host")
        cal_a, wl_a = acc.calibrated(
            atm3km, [(procs(2_129_920), 0.36), (procs(17_039_360), 1.16)]
        )
        cal_h, wl_h = host.calibrated(atm3km, [(32768, 0.0032), (262144, 0.0063)])
        # 5462 nodes: 32768 MPE processes vs 32768 CG processes.
        speedup = cal_a.predict_sypd(wl_a, 32768) / cal_h.predict_sypd(wl_h, 32768)
        assert 80 < speedup < 200


class TestCoupledModel:
    def _coupled(self):
        machine = sunway_oceanlight()
        model = PerfModel(machine, mode="accelerated")
        atm = atm_workload(42_000_000, 30)
        ocn = ocn_workload(18000 * 11511, 80, compressed=True)
        cal_a, wl_a = model.calibrated(
            atm, [(procs(2_129_920), 0.36), (procs(17_039_360), 1.16)]
        )
        cal_o, wl_o = model.calibrated(
            ocn, [(procs(1_273_415), 0.21), (procs(19_513_780), 1.59)]
        )
        coupling = CouplingSpec(
            exchanges_per_day={"atm": 180.0, "ocn": 36.0, "ice": 180.0},
            bytes_per_exchange={"atm": 42e6 * 8 * 8, "ocn": 2e8 * 8 * 8, "ice": 2e8 * 8 * 2},
        )
        return CoupledPerfModel(
            model1=cal_a,
            model2=cal_o,
            domain1=(wl_a,),
            domain2=(wl_o,),
            coupling=coupling,
        )

    def test_coupled_slower_than_either_component(self):
        cm = self._coupled()
        n1, n2 = 150_000, 100_000
        coupled = cm.predict_sypd(n1, n2)
        atm_alone = cm.model1.predict_sypd(cm.domain1[0], n1)
        assert coupled < atm_alone

    def test_balance_beats_even_split(self):
        cm = self._coupled()
        total = 260_000
        n1, n2 = cm.balance_resources(total)
        assert n1 + n2 == total
        balanced = cm.time_per_day(n1, n2)
        even = cm.time_per_day(total // 2, total // 2)
        assert balanced <= even + 1e-9

    def test_coupled_3v2_in_paper_ballpark(self):
        """AP3ESM 3v2 published: 0.71 SYPD at 17 M cores.  The coupled model
        assembled from *standalone* calibrations must land within 35 %."""
        cm = self._coupled()
        total = procs(17_039_360)
        n1, n2 = cm.balance_resources(total)
        got = cm.predict_sypd(n1, n2)
        assert got == pytest.approx(0.71, rel=0.35)

    def test_balance_requires_two_procs(self):
        cm = self._coupled()
        with pytest.raises(ValueError):
            cm.balance_resources(1)


class TestTaskParallelStrategies:
    """§5.1.2: sequential single-domain vs concurrent task domains."""

    def _coupled_with_imbalance(self):
        machine = sunway_oceanlight()
        model = PerfModel(machine, mode="accelerated")
        atm = atm_workload(42_000_000, 30)
        ocn = ocn_workload(18000 * 11511, 80, compressed=True)
        cal_a, wl_a = model.calibrated(
            atm, [(procs(2_129_920), 0.36), (procs(17_039_360), 1.16)]
        )
        cal_o, wl_o = model.calibrated(
            ocn, [(procs(1_273_415), 0.21), (procs(19_513_780), 1.59)]
        )
        coupling = CouplingSpec(
            exchanges_per_day={"atm": 180.0, "ocn": 36.0, "ice": 180.0},
            bytes_per_exchange={"atm": 4.2e8, "ocn": 1.7e9, "ice": 4.2e8},
        )
        from dataclasses import replace

        cm = CoupledPerfModel(
            model1=cal_a, model2=cal_o, domain1=(wl_a,), domain2=(wl_o,),
            coupling=coupling,
        )
        return replace(cm, sync_imbalance=0.3)

    def test_concurrent_wins_at_scale(self):
        """At the paper's scales (poor strong-scaling tails), running the
        domains concurrently beats time-slicing the full machine — the
        reason the paper partitions into two task domains."""
        cm = self._coupled_with_imbalance()
        cmp_large = cm.strategy_comparison(560_000)
        assert cmp_large["speedup"] > 1.1

    def test_sequential_wins_when_scaling_is_good(self):
        """At small scale (near-linear strong scaling), time-slicing the
        full allocation is the better strategy — the crossover the model
        exposes."""
        cm = self._coupled_with_imbalance()
        cmp_small = cm.strategy_comparison(50_000)
        assert cmp_small["speedup"] < 1.0

    def test_comparison_fields_consistent(self):
        cm = self._coupled_with_imbalance()
        out = cm.strategy_comparison(100_000)
        assert out["split_domain1"] + out["split_domain2"] == 100_000
        with pytest.raises(ValueError):
            cm.sequential_time_per_day(0)


class TestAuxWorkloads:
    def test_ice_and_land_workloads_cheap(self):
        """'These two components are not bottlenecks' (§5.1.1): at equal
        columns their per-day cost is far below the atmosphere's."""
        from repro.machine import ice_workload, lnd_workload

        model = PerfModel(sunway_oceanlight(), mode="accelerated")
        cols = 1_000_000
        t_atm = model.time_per_day(atm_workload(cols, 30), 1000).total
        t_ice = model.time_per_day(ice_workload(cols), 1000).total
        t_lnd = model.time_per_day(lnd_workload(cols), 1000).total
        assert t_ice < 0.05 * t_atm
        assert t_lnd < 0.05 * t_atm

    def test_imbalance_cv_increases_time(self):
        model = PerfModel(sunway_oceanlight(), imbalance_cv=0.1)
        base = PerfModel(sunway_oceanlight())
        wl = atm_workload(42_000_000, 30)
        assert model.time_per_day(wl, 10_000).t_compute > base.time_per_day(wl, 10_000).t_compute
        # Single process: no synchronization, no penalty.
        assert model.time_per_day(wl, 1).t_compute == base.time_per_day(wl, 1).t_compute
        with pytest.raises(ValueError):
            PerfModel(sunway_oceanlight(), imbalance_cv=-0.1)
