"""Tests for the ESM diagnostics (Rossby number, spectra, cold wake)."""

import numpy as np
import pytest

from repro.esm import structure_function
from repro.esm.diagnostics import cold_wake


class TestStructureFunction:
    def test_white_noise_is_flat(self):
        rng = np.random.default_rng(0)
        f = rng.standard_normal((40, 128))
        mask = np.ones_like(f, dtype=bool)
        out = structure_function(f, mask, max_lag=10)
        # White noise: S2(k) = 2 var for every k.
        assert np.allclose(out["s2"], 2.0 * f.var(), rtol=0.05)

    def test_smooth_field_grows_with_lag(self):
        x = np.linspace(0, 2 * np.pi, 256, endpoint=False)
        f = np.tile(np.sin(x), (20, 1))
        mask = np.ones_like(f, dtype=bool)
        out = structure_function(f, mask, max_lag=20)
        assert np.all(np.diff(out["s2"]) > 0)  # smooth: more variance at larger lag

    def test_small_scale_field_saturates_early(self):
        """A field with energy at small scales has larger S2 at small lags
        than a smoothed copy of itself — the resolution-comparison use."""
        rng = np.random.default_rng(1)
        rough = rng.standard_normal((30, 200))
        smooth = (np.roll(rough, 1, 1) + rough + np.roll(rough, -1, 1)) / 3.0
        mask = np.ones_like(rough, dtype=bool)
        s_rough = structure_function(rough, mask, max_lag=3)["s2"]
        s_smooth = structure_function(smooth, mask, max_lag=3)["s2"]
        assert s_rough[0] > 1.5 * s_smooth[0]

    def test_mask_excludes_land_pairs(self):
        f = np.zeros((4, 16))
        f[:, 8] = 100.0  # a "land spike"
        mask = np.ones_like(f, dtype=bool)
        mask[:, 8] = False  # masked out: must not contribute
        out = structure_function(f, mask, max_lag=2)
        assert np.allclose(out["s2"], 0.0)

    def test_validation(self):
        f = np.zeros((4, 8))
        with pytest.raises(ValueError):
            structure_function(f, np.ones((3, 8), bool))
        with pytest.raises(ValueError):
            structure_function(f, np.ones((4, 8), bool), max_lag=8)

    def test_resolution_comparison_on_same_signal(self):
        """Sampling the same physical signal at 2x resolution puts more
        variance at the smallest resolved separation — the Fig. 1/6
        'finer details' effect in diagnostic form."""
        x_hi = np.linspace(0, 2 * np.pi, 256, endpoint=False)
        signal = np.sin(8 * x_hi) + 0.5 * np.sin(32 * x_hi)
        hi = np.tile(signal, (8, 1))
        lo = hi[:, ::2]
        m_hi = np.ones_like(hi, dtype=bool)
        m_lo = np.ones_like(lo, dtype=bool)
        # Compare at the same *physical* lag: hi lag 2 vs lo lag 1.
        s_hi = structure_function(hi, m_hi, max_lag=2)["s2"][1]
        s_lo = structure_function(lo, m_lo, max_lag=1)["s2"][0]
        assert s_hi == pytest.approx(s_lo, rel=0.1)
        # And the hi grid resolves a smaller separation with real variance.
        s_hi_small = structure_function(hi, m_hi, max_lag=1)["s2"][0]
        assert 0 < s_hi_small < s_hi


class TestColdWake:
    def test_cooling_statistics(self):
        before = np.full((4, 4), 20.0)
        after = before.copy()
        after[1, 1] = 18.0
        after[2, 2] = 19.5
        mask = np.ones((4, 4), bool)
        cw = cold_wake(before, after, mask)
        assert cw["max_cooling"] == pytest.approx(2.0)
        assert cw["cooled_fraction"] == pytest.approx(2 / 16)

    def test_no_cooling(self):
        field = np.full((3, 3), 15.0)
        cw = cold_wake(field, field + 0.5, np.ones((3, 3), bool))
        assert cw["mean_cooling"] == 0.0
