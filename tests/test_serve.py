"""Tests for the crash-safe scenario job service (``repro.serve``).

Covers the durable journal (torn tails, CRC damage, duplicated and
gapped suffixes, idempotent replay, snapshot rotation, flock
exclusivity), the job state machine and scheduler (dispatch, retry with
pinned jittered backoff, circuit breaker, backpressure, reaping and
stale-generation drops, deadlines, recovery), bitwise worker-kill
recovery, the chaos harness's inter-record kill sweep, the serve CLI
argument groups, and the zero-overhead rule (default CLI paths never
import ``repro.serve``).
"""

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.esm import AP3ESMConfig, EnsembleConfig, EnsembleRun
from repro.resilience import (
    CheckpointError,
    CheckpointManager,
    FaultPlan,
    FaultPlanError,
    ResilienceConfig,
    RetryPolicy,
    ServiceFault,
    ServiceFaultInjector,
    WorkerKilled,
    corrupt_checkpoint,
)
from repro.serve import (
    JobDeadlineExceeded,
    JobRecord,
    JobScheduler,
    JobSpec,
    JobStore,
    ServeBackpressure,
    ServeConfig,
    ServeError,
)

SMALL = dict(atm_level=2, ocn_nlon=24, ocn_nlat=16, ocn_levels=4)

#: The frozen full-jitter sequence for RetryPolicy(backoff_s=1.0,
#: jitter_seed=7, max_backoff_s=4.0).delay(1..5) — drawn from the
#: deterministic ("retry.jitter", 7, n) streams, so any change to the
#: jitter derivation shows up as a diff here.
PINNED_JITTER = [0.164365, 1.726647, 0.04437, 1.052081, 3.880039]


def _small_config(**overrides) -> AP3ESMConfig:
    kwargs = dict(SMALL)
    kwargs.update(overrides)
    return AP3ESMConfig(**kwargs)


def _table(store: JobStore) -> dict:
    """The job table as plain data (what replay must reconstruct)."""
    return {job_id: rec.to_dict() for job_id, rec in store.jobs.items()}


def _replay_table(root) -> dict:
    with JobStore(root) as store:
        return _table(store)


def _dirs_equal(a: Path, b: Path) -> bool:
    fa = {p.relative_to(a).as_posix(): p.read_bytes()
          for p in sorted(Path(a).rglob("*")) if p.is_file()}
    fb = {p.relative_to(b).as_posix(): p.read_bytes()
          for p in sorted(Path(b).rglob("*")) if p.is_file()}
    return fa == fb


# -- specs -------------------------------------------------------------------


class TestJobSpec:
    def test_roundtrip(self):
        spec = JobSpec("exp-1.a", couplings=4, config_delta={"precision": "mixed"},
                       members=2, perturb_seed=9, perturb_amplitude=1e-3,
                       batch_physics=True, max_attempts=2, deadline_s=60.0)
        assert JobSpec.from_dict(spec.to_dict()) == spec
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown job spec keys"):
            JobSpec.from_dict({"job_id": "a", "walltime": 3})

    @pytest.mark.parametrize("kwargs", [
        dict(job_id="no spaces"),
        dict(job_id=""),
        dict(job_id="a", couplings=0),
        dict(job_id="a", couplings=True),
        dict(job_id="a", members=0),
        dict(job_id="a", config_delta={3: "x"}),
        dict(job_id="a", config_delta="precision=mixed"),
        dict(job_id="a", max_attempts=0),
        dict(job_id="a", deadline_s=0.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            JobSpec(**kwargs)

    def test_record_roundtrip(self):
        rec = JobRecord(spec=JobSpec("a"), state="completed", attempts=2,
                        failures=1, submitted_seq=3,
                        result={"restart_dir": "x"})
        assert JobRecord.from_dict(rec.to_dict()).to_dict() == rec.to_dict()
        assert rec.terminal
        assert not JobRecord(spec=JobSpec("a")).terminal


# -- the journal -------------------------------------------------------------


def _seed_store(root) -> Path:
    """A journal with a little history: 2 jobs, 6 records."""
    with JobStore(root) as s:
        s.submit(JobSpec("a", couplings=1))
        s.submit(JobSpec("b", couplings=1))
        s.update("a", "running", attempts=1)
        s.update("a", "completed", result={"couplings": 1})
        s.update("b", "running", attempts=1)
        s.update("b", "queued", failures=1, error="boom")
    return Path(root) / "journal.jsonl"


class TestJournal:
    def test_replay_roundtrip(self, tmp_path):
        _seed_store(tmp_path)
        with JobStore(tmp_path) as store:
            assert store.counts() == {"completed": 1, "queued": 1}
            assert store.jobs["a"].result == {"couplings": 1}
            assert store.jobs["b"].failures == 1
            assert store.jobs["b"].error == "boom"
            # Replaying again from the same bytes is idempotent.
            before = _table(store)
            store.replay()
            assert _table(store) == before

    def test_duplicate_submit_rejected(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.submit(JobSpec("a"))
            with pytest.raises(ServeError, match="already exists"):
                store.submit(JobSpec("a"))

    def test_torn_tail_tolerated(self, tmp_path):
        journal = _seed_store(tmp_path)
        intact = _replay_table(tmp_path)
        with journal.open("a") as f:
            f.write('{"v": 1, "seq": 7, "crc": 1, "bo')  # cut mid-record
        assert _replay_table(tmp_path) == intact

    def test_crc_damage_stops_replay(self, tmp_path):
        journal = _seed_store(tmp_path)
        lines = journal.read_text().splitlines()
        # Flip the payload of the last record without fixing its CRC:
        # replay must stop there, keeping the 5-record prefix.
        rec = json.loads(lines[-1])
        rec["body"]["failures"] = 99
        journal.write_text("\n".join(lines[:-1] + [json.dumps(rec)]) + "\n")
        with JobStore(tmp_path) as store:
            assert store.jobs["b"].state == "running"  # record 6 ignored
            assert store.jobs["b"].failures == 0

    def test_seq_gap_stops_replay(self, tmp_path):
        journal = _seed_store(tmp_path)
        lines = journal.read_text().splitlines()
        del lines[3]  # drop seq 4: 5 and 6 are now an orphaned suffix
        journal.write_text("\n".join(lines) + "\n")
        with JobStore(tmp_path) as store:
            assert store.jobs["a"].state == "running"  # seq 3 applied
            assert store.jobs["b"].state == "queued"   # seq 5/6 never applied
            assert store.jobs["b"].attempts == 0

    def test_duplicated_suffix_idempotent(self, tmp_path):
        journal = _seed_store(tmp_path)
        intact = _replay_table(tmp_path)
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines + lines[-3:]) + "\n")
        assert _replay_table(tmp_path) == intact

    def test_replay_prefix_property(self, tmp_path):
        """Property-style sweep: for EVERY prefix of the journal, replay
        converges, is stable under re-replay, and is insensitive to a
        duplicated suffix — the three invariants a torn write plus a
        naive re-append can produce."""
        journal = _seed_store(tmp_path)
        lines = journal.read_text().splitlines()
        for n in range(len(lines) + 1):
            prefix_dir = tmp_path / f"prefix-{n}"
            prefix_dir.mkdir()
            (prefix_dir / "journal.jsonl").write_text(
                "\n".join(lines[:n]) + ("\n" if n else "")
            )
            once = _replay_table(prefix_dir)
            assert _replay_table(prefix_dir) == once  # stable
            for dup in range(1, min(n, 3) + 1):
                dup_dir = tmp_path / f"prefix-{n}-dup-{dup}"
                dup_dir.mkdir()
                (dup_dir / "journal.jsonl").write_text(
                    "\n".join(lines[:n] + lines[n - dup:n]) + "\n"
                )
                assert _replay_table(dup_dir) == once  # idempotent

    def test_rotation_compacts_to_snapshot(self, tmp_path):
        with JobStore(tmp_path, rotate_every=4) as store:
            store.submit(JobSpec("a"))
            store.submit(JobSpec("b"))
            store.update("a", "running", attempts=1)
            store.update("a", "completed", result={"couplings": 2})
            table = _table(store)
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["body"]["event"] == "snapshot"
        assert _replay_table(tmp_path) == table

    def test_flock_exclusive(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(ServeError, match="already owned"):
            JobStore(tmp_path)
        store.close()
        JobStore(tmp_path).close()  # released lock can be re-taken

    def test_update_defaults_to_current_counters(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.submit(JobSpec("a"))
            store.update("a", "running", attempts=2, failures=1)
            store.update("a", "queued")  # counters carried forward
            assert store.jobs["a"].attempts == 2
            assert store.jobs["a"].failures == 1

    def test_fifo_order_and_depth(self, tmp_path):
        with JobStore(tmp_path) as store:
            for name in ("c", "a", "b"):
                store.submit(JobSpec(name))
            assert [r.spec.job_id for r in store.queued_jobs()] == \
                ["c", "a", "b"]
            store.update("c", "running")
            assert store.depth == 3
            store.update("c", "completed")
            assert store.depth == 2


# -- retry policy (satellite: seeded full jitter) ----------------------------


class TestRetryJitter:
    def test_pinned_jitter_sequence(self):
        policy = RetryPolicy(backoff_s=1.0, jitter_seed=7, max_backoff_s=4.0)
        assert [round(policy.delay(n), 6) for n in range(1, 6)] == \
            PINNED_JITTER
        # Deterministic: the same (seed, attempt) always redraws the same.
        assert policy.delay(3) == policy.delay(3)

    def test_defaults_byte_identical(self):
        """No cap, no jitter: delay is the exact uncapped exponential
        every pre-existing call site always got."""
        assert RetryPolicy().delay(2) == 0.0
        policy = RetryPolicy(backoff_s=0.5)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [0.5, 1.0, 2.0, 4.0]

    def test_cap_without_jitter(self):
        policy = RetryPolicy(backoff_s=1.0, max_backoff_s=3.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [1.0, 2.0, 3.0, 3.0]

    def test_jitter_stays_under_cap(self):
        policy = RetryPolicy(backoff_s=1.0, jitter_seed=123, max_backoff_s=2.0)
        assert all(0.0 <= policy.delay(n) <= 2.0 for n in range(1, 12))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_backoff_s=-1.0)


# -- service fault plans (satellite: worker_kill) ----------------------------


class TestServiceFaults:
    def test_roundtrip(self):
        plan = FaultPlan(seed=3, service=[
            ServiceFault(kind="worker_kill", coupling=1, job="job1"),
            ServiceFault(kind="worker_kill", coupling=0),
        ])
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert plan.n_faults == 2
        assert plan.without_members().service == plan.service

    def test_bad_kind_names_key(self):
        with pytest.raises(FaultPlanError, match=r"\$\.service\[0\]\.kind"):
            FaultPlan.from_dict({"service": [{"kind": "oom"}]})

    def test_bad_coupling_names_key(self):
        with pytest.raises(FaultPlanError, match=r"\$\.service\[0\]\.coupling"):
            FaultPlan.from_dict(
                {"service": [{"kind": "worker_kill", "coupling": -1}]}
            )

    def test_unknown_key_named(self):
        with pytest.raises(FaultPlanError, match=r"\$\.service\[0\]\.member"):
            FaultPlan.from_dict(
                {"service": [{"kind": "worker_kill", "member": 0}]}
            )

    def test_job_must_be_string(self):
        with pytest.raises(FaultPlanError, match=r"\$\.service\[0\]\.job"):
            FaultPlan.from_dict(
                {"service": [{"kind": "worker_kill", "job": 3}]}
            )

    def test_injector_one_shot_and_scoping(self):
        plan = FaultPlan(service=[
            ServiceFault(kind="worker_kill", coupling=1, job="a"),
        ])
        inj = ServiceFaultInjector(plan)
        inj.check("b", 1)  # other job: no fire
        inj.check("a", 0)  # other coupling: no fire
        with pytest.raises(WorkerKilled):
            inj.check("a", 1)
        inj.check("a", 1)  # one-shot: the resumed attempt survives
        assert inj.injected == 1

    def test_injector_job_wildcard(self):
        plan = FaultPlan(service=[ServiceFault(kind="worker_kill", coupling=0)])
        inj = ServiceFaultInjector(plan)
        with pytest.raises(WorkerKilled):
            inj.check("anything", 0)


# -- the scheduler (no model: admission, liveness, retry bookkeeping) --------


class _Clock:
    """An injectable monotonic clock the tests advance by hand."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def _scheduler(tmp_path, store, **kwargs):
    kwargs.setdefault("base_config", _small_config())
    kwargs.setdefault("work_dir", tmp_path / "work")
    return JobScheduler(store, **kwargs)


class TestSchedulerBookkeeping:
    def test_backpressure(self, tmp_path):
        with JobStore(tmp_path / "store") as store:
            sched = _scheduler(tmp_path, store,
                               config=ServeConfig(max_queue=1))
            sched.submit(JobSpec("a"))
            appends = store.appends
            with pytest.raises(ServeBackpressure) as exc:
                sched.submit(JobSpec("b"))
            assert exc.value.depth == 1 and exc.value.limit == 1
            assert store.appends == appends  # rejected spec never journaled
            assert "b" not in store.jobs

    def test_recover_requeues_running(self, tmp_path):
        with JobStore(tmp_path / "store") as store:
            store.submit(JobSpec("a"))
            store.submit(JobSpec("b"))
            store.update("a", "running", attempts=1)
        # "The previous service was SIGKILLed": a fresh one replays and
        # recovers — interrupted jobs requeue with no failure penalty.
        with JobStore(tmp_path / "store") as store:
            sched = _scheduler(tmp_path, store)
            assert sched.recover() == {"requeued": 1}
            assert store.jobs["a"].state == "queued"
            assert store.jobs["a"].failures == 0
            assert sched.recover() == {"requeued": 0}  # idempotent

    def test_reap_requeues_and_drops_stale_result(self, tmp_path):
        clock = _Clock()
        with JobStore(tmp_path / "store") as store:
            sched = _scheduler(
                tmp_path, store,
                config=ServeConfig(heartbeat_timeout_s=5.0), clock=clock,
            )
            sched.submit(JobSpec("a"))
            job_id = sched._claim()
            assert job_id == "a" and store.jobs["a"].state == "running"
            zombie_gen = sched._gen["a"]

            clock.t = 3.0
            assert sched.reap() == 0  # heartbeat still fresh
            clock.t = 10.0
            assert sched.reap() == 1  # stale: requeued, generation bumped
            assert store.jobs["a"].state == "queued"
            assert "a" not in sched.heartbeats

            # The zombie worker finally reports in — its generation is
            # stale, so the outcome is dropped, not double-journaled.
            appends = store.appends
            sched._completed("a", zombie_gen, {"restart_dir": "x"})
            assert store.jobs["a"].state == "queued"
            assert store.jobs["a"].result is None
            assert store.appends == appends

    def test_poisoned_spec_trips_circuit_breaker(self, tmp_path):
        """A bad config delta fails at run time, burns its attempts
        through the pinned jittered backoff, and lands in quarantine."""
        sleeps = []
        retry = RetryPolicy(backoff_s=1.0, jitter_seed=7, max_backoff_s=4.0)
        with JobStore(tmp_path / "store") as store:
            sched = _scheduler(
                tmp_path, store,
                config=ServeConfig(retry=retry), sleep=sleeps.append,
            )
            sched.submit(JobSpec("poisoned", max_attempts=3,
                                 config_delta={"no_such_field": 1}))
            counts = sched.run_until_idle()
        assert counts == {"quarantined": 1}
        rec = store.jobs["poisoned"]
        assert rec.attempts == 3 and rec.failures == 3
        assert "no_such_field" in rec.error
        assert [round(s, 6) for s in sleeps] == PINNED_JITTER[:2]
        kinds = [e["kind"] for e in sched.events]
        assert kinds.count("retry") == 2
        assert kinds[-1] == "quarantined"

    def test_single_attempt_spec_fails_not_quarantined(self, tmp_path):
        with JobStore(tmp_path / "store") as store:
            sched = _scheduler(tmp_path, store, sleep=lambda s: None)
            sched.submit(JobSpec("once", max_attempts=1,
                                 config_delta={"no_such_field": 1}))
            assert sched.run_until_idle() == {"failed": 1}
            assert store.jobs["once"].failures == 1

    def test_run_until_idle_bounded(self, tmp_path):
        with JobStore(tmp_path / "store") as store:
            sched = _scheduler(tmp_path, store, sleep=lambda s: None)
            sched.submit(JobSpec("p", max_attempts=5,
                                 config_delta={"no_such_field": 1}))
            sched.run_until_idle(max_attempts=2)
            assert store.jobs["p"].state == "queued"
            assert store.jobs["p"].failures == 2

    def test_mode_guards(self, tmp_path):
        with JobStore(tmp_path / "store") as store:
            inline = _scheduler(tmp_path, store)
            with pytest.raises(ServeError, match="threads"):
                inline.start()
        with pytest.raises(ValueError, match="unknown mode"):
            ServeConfig(mode="fork")


# -- the scheduler driving real jobs -----------------------------------------


class TestSchedulerRuns:
    def test_job_completes_and_publishes(self, tmp_path):
        events = []
        with JobStore(tmp_path / "store") as store:
            sched = _scheduler(tmp_path, store, on_event=events.append)
            sched.submit(JobSpec("demo", couplings=2, perturb_amplitude=1e-3))
            assert sched.run_until_idle() == {"completed": 1}
            rec = store.jobs["demo"]
        published = Path(rec.result["restart_dir"])
        assert published == tmp_path / "work" / "jobs" / "demo" / "restart"
        assert (published / "atm").is_dir()
        assert rec.result["couplings"] == 2
        assert rec.result["adopted"] is False
        assert [e["kind"] for e in events] == \
            ["submitted", "start", "completed"]
        # Restarting the service finds nothing to do — and a redispatch
        # of the same spec ADOPTS the published set instead of re-running.
        with JobStore(tmp_path / "store") as store:
            sched = _scheduler(tmp_path, store)
            sched.recover()
            assert sched.run_until_idle() == {"completed": 1}
            assert sched.runner.run(JobSpec("demo", couplings=2))["adopted"]

    def test_deadline_burns_an_attempt(self, tmp_path):
        clock = _Clock()

        def ticking() -> float:
            clock.t += 10.0
            return clock.t

        with JobStore(tmp_path / "store") as store:
            sched = _scheduler(tmp_path, store, clock=ticking,
                               sleep=lambda s: None)
            sched.submit(JobSpec("slow", couplings=2, max_attempts=1,
                                 deadline_s=5.0))
            assert sched.run_until_idle() == {"failed": 1}
            assert "deadline" in store.jobs["slow"].error

    def test_worker_kill_recovery_is_bitwise(self, tmp_path):
        """The supervision headline at unit scale: a worker killed
        mid-job is requeued, the retry resumes from the rotation, and
        the published restart set is bitwise identical to a never-killed
        twin's."""
        spec = JobSpec("exp", couplings=3, perturb_amplitude=1e-3)
        cfg = ServeConfig(checkpoint_every=1)

        with JobStore(tmp_path / "twin-store") as store:
            twin = JobScheduler(store, _small_config(),
                                tmp_path / "twin-work", cfg)
            twin.submit(spec)
            assert twin.run_until_idle() == {"completed": 1}

        plan = FaultPlan(service=[
            ServiceFault(kind="worker_kill", coupling=2, job="exp"),
        ])
        with JobStore(tmp_path / "hurt-store") as store:
            hurt = JobScheduler(store, _small_config(),
                                tmp_path / "hurt-work", cfg, fault_plan=plan)
            hurt.submit(spec)
            assert hurt.run_until_idle() == {"completed": 1}
            rec = store.jobs["exp"]
        assert rec.attempts == 2 and rec.failures == 0  # interruption != failure
        kinds = [e["kind"] for e in hurt.events]
        assert "interrupted" in kinds
        assert hurt.injector.injected == 1
        assert _dirs_equal(tmp_path / "twin-work" / "jobs" / "exp" / "restart",
                           tmp_path / "hurt-work" / "jobs" / "exp" / "restart")

    def test_threads_mode_drains_pool(self, tmp_path):
        specs = [JobSpec(f"j{k}", couplings=1) for k in range(3)]
        with JobStore(tmp_path / "store") as store:
            sched = _scheduler(
                tmp_path, store,
                config=ServeConfig(mode="threads", workers=2,
                                   checkpoint_every=1),
            )
            for spec in specs:
                sched.submit(spec)
            sched.start()
            assert sched.join() == {"completed": 3}
        for spec in specs:
            assert (tmp_path / "work" / "jobs" / spec.job_id /
                    "restart" / "atm").is_dir()


# -- the chaos kill sweep (the PR's acceptance headline) ---------------------


class TestServiceKillSweep:
    def test_sigkill_between_every_journal_record(self, tmp_path):
        """run_chaos's service stage: SIGKILL the service before AND
        after every journal append, restart it, and demand every job
        completes exactly once with a bitwise-identical restart set."""
        from repro.resilience.chaos import run_chaos

        plan = FaultPlan(seed=0, service=[
            ServiceFault(kind="worker_kill", coupling=1, job="job1"),
        ])
        config = _small_config(
            resilience=ResilienceConfig(enabled=True, guard_physics=False)
        )
        report = run_chaos(plan, config=config, couplings=2)
        assert report.service_jobs == 2
        assert report.service_journal_records >= 6
        # Both instants around every record were actually killed at.
        assert report.service_crash_points == \
            2 * report.service_journal_records
        assert report.service_bitwise is True
        assert report.service_exactly_once is True
        assert report.survived
        assert "exactly once" in report.summary()
        assert report.counters["serve.interruptions"] >= 1
        assert report.counters["serve.resumes"] >= 1
        assert report.counters["serve.adopted"] >= 1


# -- checkpoint manager (satellite: inter-process lock + latest) -------------


def _ckpt_writer(root: str, steps) -> None:
    mgr = CheckpointManager(root, keep=3)
    for step in steps:
        payload = (f"step={step}\n" * 64).encode()
        mgr.to_file(lambda d, p=payload: (d / "state.bin").write_bytes(p),
                    step)


class TestCheckpointConcurrency:
    def test_latest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=2)
        assert mgr.latest() is None
        mgr.to_file(lambda d: (d / "state.bin").write_bytes(b"x"), 4)
        mgr.to_file(lambda d: (d / "state.bin").write_bytes(b"y"), 7)
        assert mgr.latest().name == "ckpt-00000007"
        assert mgr.step_of(mgr.latest()) == 7

    def test_two_concurrent_writers_cannot_shred_the_rotation(self, tmp_path):
        """Regression for the unlocked rotation: two writers sharing one
        directory used to interleave rename/rmtree and leave truncated
        or half-pruned sets.  Under the flock every surviving checkpoint
        must validate and the staging area must be clean."""
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_ckpt_writer,
                        args=(str(tmp_path), range(k, 20, 2)))
            for k in (0, 1)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        mgr = CheckpointManager(tmp_path, keep=3)
        survivors = mgr.checkpoints()
        assert 1 <= len(survivors) <= 3
        for ckpt in survivors:
            mgr.validate(ckpt)  # every published set is whole
        assert mgr.latest_valid() is not None
        assert not list(tmp_path.glob(".tmp-*"))  # no staging junk


# -- ensemble serve adapters -------------------------------------------------


class TestEnsembleRecovery:
    def test_checkpoint_and_recover_to_common_step(self, tmp_path):
        base = _small_config(resilience=ResilienceConfig(
            enabled=True, guard_physics=False, checkpoint_every=2,
            checkpoint_dir=str(tmp_path / "ck"),
        ))
        ens = EnsembleRun(EnsembleConfig(base=base, members=2,
                                         perturb_amplitude=1e-3))
        ens.init()
        try:
            assert ens.has_checkpoint() is False
            ens.run_couplings(2)
            ens.checkpoint()
            assert ens.has_checkpoint() is True
            saved = [np.asarray(m.atm.t_col).copy() for m in ens.members]
            ens.run_couplings(2)
            ens.checkpoint()
            # Member 0's newest set is damaged: the fleet must fall back
            # to the newest step valid in EVERY member — coupling 2.
            newest = sorted((tmp_path / "ck" / "member0").glob("ckpt-*"))[-1]
            corrupt_checkpoint(newest, "bitflip")
            assert ens.recover() == 2
            assert ens.n_couplings == 2
            for m, ref in zip(ens.members, saved):
                assert np.array_equal(np.asarray(m.atm.t_col), ref)
        finally:
            ens.finalize()

    def test_recover_without_common_step_raises(self, tmp_path):
        base = _small_config(resilience=ResilienceConfig(
            enabled=True, guard_physics=False, checkpoint_every=2,
            checkpoint_dir=str(tmp_path / "ck"),
        ))
        ens = EnsembleRun(EnsembleConfig(base=base, members=2))
        ens.init()
        try:
            ens.run_couplings(2)
            ens.checkpoint()
            newest = sorted((tmp_path / "ck" / "member1").glob("ckpt-*"))[-1]
            corrupt_checkpoint(newest, "truncate")
            with pytest.raises(CheckpointError, match="every member"):
                ens.recover()
        finally:
            ens.finalize()


# -- CLI ---------------------------------------------------------------------


class TestServeCLI:
    def _groups(self, command):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        sub = next(a for a in parser._actions
                   if isinstance(a, argparse._SubParsersAction))
        cmd = sub.choices[command]
        groups = {}
        for g in cmd._action_groups:
            opts = sorted(s for a in g._group_actions
                          for s in a.option_strings)
            if opts:
                groups[g.title] = opts
        return groups

    def test_submit_group_snapshot(self):
        groups = self._groups("submit")
        assert set(groups) >= {"job store", "job spec"}
        assert groups["job store"] == ["--store"]
        assert groups["job spec"] == [
            "--batch-physics", "--couplings", "--deadline-s", "--delta",
            "--job-id", "--max-attempts", "--members",
            "--perturb-amplitude", "--perturb-seed",
        ]

    def test_run_jobs_group_snapshot(self):
        groups = self._groups("run-jobs")
        assert set(groups) >= {"job store", "scheduler", "base model"}
        assert groups["job store"] == ["--store"]
        assert groups["scheduler"] == [
            "--checkpoint-every", "--checkpoint-keep", "--faults",
            "--heartbeat-timeout-s", "--max-queue", "--threads",
            "--work-dir", "--workers",
        ]
        assert groups["base model"] == [
            "--atm-level", "--ocn-levels", "--ocn-nlat", "--ocn-nlon",
            "--precision",
        ]

    def test_submit_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["submit", "--store", "st", "--job-id", "a"]
        )
        assert (args.couplings, args.members, args.max_attempts) == (2, 1, 3)
        assert args.delta == [] and args.deadline_s is None
        assert args.perturb_amplitude == 0.0
        assert args.batch_physics is False

    def test_run_jobs_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run-jobs", "--store", "st", "--work-dir", "wk"]
        )
        assert (args.workers, args.max_queue) == (2, 64)
        assert args.heartbeat_timeout_s == 30.0
        assert (args.checkpoint_every, args.checkpoint_keep) == (2, 3)
        assert args.threads is False and args.faults is None

    def test_delta_parsing(self):
        from repro.cli import _parse_delta

        assert _parse_delta(
            ["atm_level=4", "precision=mixed", "dt_atm=120.5", "x=true"]
        ) == {"atm_level": 4, "precision": "mixed", "dt_atm": 120.5,
              "x": True}
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            _parse_delta(["atm_level"])

    def test_submit_then_run_jobs_main(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        assert main(["submit", "--store", store, "--job-id", "demo",
                     "--couplings", "1", "--perturb-amplitude", "1e-3",
                     "--delta", "precision=mixed"]) == 0
        out = capsys.readouterr().out
        assert "queued" in out and "demo" in out
        assert main(["run-jobs", "--store", store,
                     "--work-dir", str(tmp_path / "work"),
                     "--checkpoint-every", "1",
                     "--atm-level", "2", "--ocn-nlon", "24",
                     "--ocn-nlat", "16", "--ocn-levels", "4"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert (tmp_path / "work" / "jobs" / "demo" / "restart").is_dir()

    def test_run_jobs_exit_code_on_quarantine(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        assert main(["submit", "--store", store, "--job-id", "bad",
                     "--max-attempts", "2",
                     "--delta", "no_such_field=1"]) == 0
        assert main(["run-jobs", "--store", store,
                     "--work-dir", str(tmp_path / "work"),
                     "--atm-level", "2", "--ocn-nlon", "24",
                     "--ocn-nlat", "16", "--ocn-levels", "4"]) == 1
        assert "quarantined" in capsys.readouterr().out


# -- the zero-overhead rule --------------------------------------------------


class TestZeroOverhead:
    def test_default_paths_never_import_serve(self):
        """run-coupled / run-ensemble users pay nothing for the service:
        importing the CLI and the model layers must not pull repro.serve
        (its import is lazy, inside the submit/run-jobs handlers)."""
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        code = (
            "import sys\n"
            "import repro.cli, repro.esm, repro.resilience\n"
            "mods = [m for m in sys.modules if m.startswith('repro.serve')]\n"
            "assert not mods, mods\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True, env=env)
