"""Tests for the measurement-calibrated machine model (repro calibrate).

Covers the full loop: probe measurement off the pp KernelStats
accumulators, the fit, the content-addressed CalibrationTable and its
to_file/from_file protocol, the explicit calibration= handles on the
perf models and machine factories (byte-identical when absent), and the
guarded drift metric the perf gate consumes.
"""

import json
import math

import pytest

from repro.machine import (
    CalibrationError,
    CalibrationTable,
    CoupledPerfModel,
    CouplingSpec,
    PerfModel,
    calibrate,
    drift,
    drift_report,
    measure_probes,
    orise,
    sunway_oceanlight,
)
from repro.machine.calibrate import (
    IDENTITY_CALIBRATION,
    PROBES,
    KernelCalibration,
    KernelMeasurement,
    ReferenceRates,
    _fit_line,
)
from repro.machine.perfmodel import Phase
from repro.machine.workloads import atm_workload, ocn_workload
from repro.pp import KernelMetrics

SIZES = (256, 1_024)
REPEATS = 2


@pytest.fixture(scope="module")
def measurements():
    return measure_probes(sizes=SIZES, repeats=REPEATS)


@pytest.fixture(scope="module")
def table(measurements):
    return calibrate(sizes=SIZES, repeats=REPEATS, measurements=measurements)


def _synthetic(kernel="fma8", per_launch=1e-5, per_iter=1e-8,
               flops=16.0, bytes_=24.0):
    """A measurement whose best_s lies exactly on a known line."""
    sizes = (1_000, 10_000)
    return KernelMeasurement(
        kernel=kernel,
        sizes=sizes,
        best_s=tuple(per_launch + per_iter * n for n in sizes),
        launches=len(sizes),
        iterations=sum(sizes),
        seconds=sum(per_launch + per_iter * n for n in sizes),
        flops_per_iter=flops,
        bytes_per_iter=bytes_,
    )


class TestMeasureProbes:
    def test_covers_the_portfolio(self, measurements):
        assert set(measurements) == set(PROBES) == {
            "stream", "axpy", "stencil", "fma8", "transcendental"
        }

    def test_seconds_come_from_the_accumulator(self):
        """The measured time is read back off the shared KernelStats pool —
        the same obs signal production kernels publish."""
        metrics = KernelMetrics()
        out = measure_probes(sizes=(256,), repeats=1, metrics=metrics,
                             probes={"axpy": PROBES["axpy"]})
        acc = metrics.stats("calib.axpy")
        assert acc.launches == 1
        assert acc.iterations == 256
        assert out["axpy"].seconds == acc.seconds
        assert out["axpy"].best_s[0] <= acc.seconds

    def test_launch_and_iteration_accounting(self, measurements):
        for name, m in measurements.items():
            assert m.launches == len(SIZES) * REPEATS
            assert m.iterations == sum(m.sizes) * REPEATS
            assert all(t > 0 for t in m.best_s)
            assert m.seconds >= sum(m.best_s)

    def test_mdrange_probe_rounds_to_square_and_profiles(self, measurements):
        m = measurements["stencil"]
        for requested, actual in zip(SIZES, m.sizes):
            side = math.isqrt(requested)
            assert actual == side * side
        assert m.tile_imbalance >= 1.0  # max/mean of real tile sizes

    def test_validates_inputs(self):
        with pytest.raises(CalibrationError, match="repeats"):
            measure_probes(sizes=(256,), repeats=0)
        with pytest.raises(CalibrationError, match="sizes"):
            measure_probes(sizes=())
        with pytest.raises(CalibrationError, match="sizes"):
            measure_probes(sizes=(2,))


class TestFit:
    def test_fit_line_recovers_exact_coefficients(self):
        intercept, slope = _fit_line((100, 1000), (1e-4 + 100 * 1e-7, 1e-4 + 1000 * 1e-7))
        assert intercept == pytest.approx(1e-4)
        assert slope == pytest.approx(1e-7)

    def test_fit_line_single_size_pins_intercept(self):
        intercept, slope = _fit_line((500,), (5e-4,))
        assert intercept == 0.0
        assert slope == pytest.approx(1e-6)

    def test_fit_line_noise_falls_back_to_secant(self):
        # Decreasing times (clock noise) would fit a negative slope.
        intercept, slope = _fit_line((100, 1000), (2e-4, 1e-4))
        assert intercept == 0.0
        assert slope == pytest.approx(1e-4 / 1000)

    def test_compute_bound_overhead_from_synthetic_line(self):
        """fma8 at reference rates is compute-bound: 16/3.2e9 s/iter of
        flops vs 24/1.6e10 of bytes -> overhead = slope / (flops term)."""
        ref = ReferenceRates()
        m = _synthetic(per_launch=2e-5, per_iter=1e-8)
        tab = calibrate(measurements={"fma8": m}, reference=ref)
        e = tab.entries["fma8"]
        assert e.bandwidth_scale == 1.0
        assert e.per_launch_s == pytest.approx(2e-5)
        assert e.overhead_factor == pytest.approx(1e-8 / (16.0 / ref.flops))

    def test_bandwidth_bound_sets_bandwidth_scale(self):
        """stream (0 flops) is bandwidth-bound: the slope is priced as
        achieved bytes/s against the reference."""
        ref = ReferenceRates()
        m = _synthetic(kernel="stream", flops=0.0, bytes_=16.0,
                       per_launch=0.0, per_iter=2e-9)
        tab = calibrate(measurements={"stream": m}, reference=ref)
        e = tab.entries["stream"]
        achieved = 16.0 / 2e-9
        assert e.bandwidth_scale == pytest.approx(achieved / ref.mem_bw)
        assert e.overhead_factor == pytest.approx(1.0)

    def test_full_fit_produces_physical_terms(self, table):
        assert set(table.entries) == set(PROBES)
        for e in table.entries.values():
            assert e.overhead_factor > 0 and math.isfinite(e.overhead_factor)
            assert e.per_launch_s >= 0
            assert e.bandwidth_scale > 0
        assert table.meta["probe_launches"] == len(PROBES) * len(SIZES) * REPEATS

    def test_workless_probe_rejected(self):
        m = _synthetic(flops=0.0, bytes_=0.0)
        with pytest.raises(CalibrationError, match="work"):
            calibrate(measurements={"fma8": m})


class TestCalibrationEntry:
    def test_validates_terms(self):
        with pytest.raises(CalibrationError, match="overhead_factor"):
            KernelCalibration(kernel="k", overhead_factor=0.0)
        with pytest.raises(CalibrationError, match="overhead_factor"):
            KernelCalibration(kernel="k", overhead_factor=math.nan)
        with pytest.raises(CalibrationError, match="bandwidth_scale"):
            KernelCalibration(kernel="k", bandwidth_scale=-1.0)
        with pytest.raises(CalibrationError, match="per_launch_s"):
            KernelCalibration(kernel="k", per_launch_s=-1e-9)

    def test_modeled_s_is_the_calibrated_roofline(self):
        ref = ReferenceRates()
        e = KernelCalibration(kernel="k", overhead_factor=2.0,
                              per_launch_s=1e-6, bandwidth_scale=0.5,
                              flops_per_iter=2.0, bytes_per_iter=24.0)
        per_iter = max(2.0 / ref.flops, 24.0 / (ref.mem_bw * 0.5))
        assert e.modeled_s(1000, ref) == pytest.approx(1e-6 + 1000 * per_iter * 2.0)

    def test_identity_predicts_zero_for_no_work(self):
        assert IDENTITY_CALIBRATION.modeled_s(10**6, ReferenceRates()) == 0.0


class TestTable:
    def test_roundtrip_preserves_identity(self, table, tmp_path):
        path = table.to_file(tmp_path / "cal.json")
        loaded = CalibrationTable.from_file(path)
        assert loaded.table_id == table.table_id
        assert loaded.entries == table.entries
        assert loaded.reference == table.reference
        assert loaded.meta == table.meta

    def test_table_id_is_content_addressed(self, table):
        # meta rides along without affecting identity
        import dataclasses
        retagged = dataclasses.replace(table, meta={"anything": "else"})
        assert retagged.table_id == table.table_id
        # but any fit content change moves the hash
        changed = dataclasses.replace(table, machine="other-host")
        assert changed.table_id != table.table_id

    def test_tamper_detection(self, table, tmp_path):
        path = table.to_file(tmp_path / "cal.json")
        doc = json.loads(path.read_text())
        doc["entries"]["fma8"]["overhead_factor"] *= 2.0
        path.write_text(json.dumps(doc))
        with pytest.raises(CalibrationError, match="hash mismatch"):
            CalibrationTable.from_file(path)

    def test_version_and_malformed_rejected(self, table, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text('{"version": 99}')
        with pytest.raises(CalibrationError, match="version"):
            CalibrationTable.from_file(path)
        path.write_text("not json")
        with pytest.raises(CalibrationError, match="unreadable"):
            CalibrationTable.from_file(path)
        doc = json.loads(table.to_file(tmp_path / "ok.json").read_text())
        del doc["entries"]
        path.write_text(json.dumps(doc))
        with pytest.raises(CalibrationError, match="malformed"):
            CalibrationTable.from_file(path)

    def test_no_save_load_aliases(self):
        """The table speaks only the unified persistence protocol."""
        assert not hasattr(CalibrationTable, "save")
        assert not hasattr(CalibrationTable, "load")

    def test_for_phase_prefers_the_kernel_tag(self, table):
        tagged = Phase(name="p", steps_per_day=1.0, flops_per_point=0.0,
                       bytes_per_point=16.0, kernel="fma8")
        assert table.for_phase(tagged) is table.entries["fma8"]

    def test_for_phase_falls_back_to_intensity(self, table):
        # 0 flops/byte is nearest the stream probe's intensity class.
        untagged = Phase(name="p", steps_per_day=1.0, flops_per_point=0.0,
                         bytes_per_point=64.0)
        assert table.for_phase(untagged) is table.entries["stream"]
        # heavy arithmetic intensity lands on the transcendental class
        hot = Phase(name="q", steps_per_day=1.0, flops_per_point=1e4,
                    bytes_per_point=8.0)
        assert table.for_phase(hot).kernel in ("transcendental", "fma8")

    def test_empty_table_is_identity(self):
        empty = CalibrationTable()
        ph = Phase(name="p", steps_per_day=1.0, flops_per_point=1.0,
                   bytes_per_point=1.0)
        assert empty.for_phase(ph) is IDENTITY_CALIBRATION
        assert empty.machine_scales() == {"flops_scale": 1.0, "mem_bw_scale": 1.0}

    def test_machine_scales_from_extreme_probes(self):
        entries = {
            "stream": KernelCalibration(kernel="stream", bandwidth_scale=0.25,
                                        flops_per_iter=0.0, bytes_per_iter=16.0),
            "fma8": KernelCalibration(kernel="fma8", overhead_factor=4.0,
                                      flops_per_iter=16.0, bytes_per_iter=24.0),
        }
        scales = CalibrationTable(entries=entries).machine_scales()
        assert scales["mem_bw_scale"] == pytest.approx(0.25)
        assert scales["flops_scale"] == pytest.approx(0.25)

    def test_report_is_human_readable(self, table):
        text = table.report()
        assert table.table_id[:12] in text
        for name in PROBES:
            assert name in text
        assert "machine scales" in text


def _identity_table():
    """A table whose entries reproduce the uncalibrated roofline exactly
    for the phases they price (factor 1, no launch cost, reference BW)."""
    entries = {
        name: KernelCalibration(kernel=name, flops_per_iter=p.flops_per_iter,
                                bytes_per_iter=p.bytes_per_iter)
        for name, p in PROBES.items()
    }
    return CalibrationTable(entries=entries)


class TestModelThreading:
    def test_default_is_uncalibrated(self):
        model = PerfModel(machine=sunway_oceanlight())
        assert model.calibration is None

    def test_none_calibration_is_byte_identical(self):
        """calibration=None must not change a single bit of the model
        output (the PR's compatibility guarantee)."""
        w = atm_workload(100_000)
        base = PerfModel(machine=sunway_oceanlight())
        threaded = base.with_calibration(None)
        for n in (64, 1024):
            assert threaded.time_per_day(w, n) == base.time_per_day(w, n)

    def test_identity_table_reproduces_uncalibrated_exactly(self):
        w = atm_workload(100_000)
        base = PerfModel(machine=sunway_oceanlight())
        ident = base.with_calibration(_identity_table())
        for n in (64, 1024):
            got = ident.time_per_day(w, n)
            ref = base.time_per_day(w, n)
            assert got.t_compute == ref.t_compute
            assert got.total == ref.total

    def test_real_table_changes_compute_only(self, table):
        w = ocn_workload(100_000)
        base = PerfModel(machine=sunway_oceanlight())
        cal = base.with_calibration(table)
        got = cal.time_per_day(w, 256)
        ref = base.time_per_day(w, 256)
        assert got.t_compute != ref.t_compute
        assert got.t_halo == ref.t_halo
        assert got.t_collectives == ref.t_collectives

    def test_coupled_with_calibration(self, table):
        atm, ocn = atm_workload(50_000), ocn_workload(50_000)
        coupled = CoupledPerfModel(
            model1=PerfModel(machine=sunway_oceanlight()),
            model2=PerfModel(machine=sunway_oceanlight()),
            domain1=(atm,), domain2=(ocn,),
            coupling=CouplingSpec(exchanges_per_day={"a-o": 36.0},
                                  bytes_per_exchange={"a-o": 1e8}),
        )
        cal = coupled.with_calibration(table)
        assert cal.model1.calibration is table
        assert cal.model2.calibration is table
        assert cal.time_per_day(64, 64) != coupled.time_per_day(64, 64)
        back = cal.with_calibration(None)
        assert back.time_per_day(64, 64) == coupled.time_per_day(64, 64)

    def test_machine_factories_take_calibration(self, table):
        for factory in (sunway_oceanlight, orise):
            plain = factory()
            assert factory(calibration=None) == plain
            scaled = factory(calibration=table)
            scales = table.machine_scales()
            assert scaled.node.processor.flops == pytest.approx(
                plain.node.processor.flops * scales["flops_scale"]
            )
            assert scaled.node.processor.mem_bw == pytest.approx(
                plain.node.processor.mem_bw * scales["mem_bw_scale"]
            )
            if plain.node.host_processor is not None:
                # MPE-vs-CPE rate ratios are preserved by a uniform rescale
                assert (
                    scaled.node.host_processor.flops / scaled.node.processor.flops
                ) == pytest.approx(
                    plain.node.host_processor.flops / plain.node.processor.flops
                )


class TestDrift:
    def test_signed_fraction(self):
        assert drift(1.2, 1.0) == pytest.approx(0.2)
        assert drift(0.8, 1.0) == pytest.approx(-0.2)

    def test_zero_measured_zero_modeled_is_zero(self):
        assert drift(0.0, 0.0) == 0.0
        assert drift(1e-15, 1e-15) == 0.0  # below the clock floor

    def test_zero_measured_with_modeled_cost_is_inf(self):
        assert drift(1e-3, 0.0) == math.inf

    def test_non_finite_inputs_are_inf(self):
        assert drift(math.nan, 1.0) == math.inf
        assert drift(1.0, math.nan) == math.inf
        assert drift(math.inf, 1.0) == math.inf
        assert drift(-1.0, 1.0) == math.inf
        assert drift(1.0, -1.0) == math.inf

    def test_report_ok_within_band_and_boundary(self, table, measurements):
        report = drift_report(table, measurements, tolerance=1e9)
        assert report.ok
        assert not report.missing_measurements
        assert report.table_id == table.table_id
        # the boundary exactly met passes
        worst = report.worst
        exact = drift_report(table, measurements, tolerance=worst)
        assert exact.ok

    def test_report_fails_beyond_band(self, table, measurements):
        report = drift_report(table, measurements, tolerance=0.0)
        # self-drift is tiny but not exactly zero -> 0-band fails
        if report.worst > 0:
            assert not report.ok
            assert "FAIL" in report.report()

    def test_model_only_kernel_fails_the_report(self, table):
        """A kernel the table prices but the probe run no longer measures
        cannot be verified -> not ok."""
        partial = {k: m for k, m in
                   measure_probes(sizes=(256,), repeats=1).items()
                   if k != "fma8"}
        report = drift_report(table, partial, tolerance=1e9)
        assert report.missing_measurements == ("fma8",)
        assert not report.ok
        assert "not measured" in report.report()

    def test_measurement_only_kernel_is_informational(self, measurements):
        """A measured kernel absent from the table is priced by intensity
        fallback — reported, never a failure."""
        slim = calibrate(
            measurements={"axpy": measurements["axpy"]}
        )
        report = drift_report(slim, measurements, tolerance=1e9)
        assert set(report.uncalibrated) == set(PROBES) - {"axpy"}
        assert report.ok
        assert "intensity fallback" in report.report()

    def test_tolerance_validated(self, table, measurements):
        with pytest.raises(CalibrationError, match="tolerance"):
            drift_report(table, measurements, tolerance=-0.1)
        with pytest.raises(CalibrationError, match="tolerance"):
            drift_report(table, measurements, tolerance=math.nan)


class TestCalibrateCLI:
    def test_fit_writes_a_loadable_table(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "table.json"
        rc = main(["calibrate", "--out", str(out),
                   "--sizes", "256,1024", "--repeats", "1"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "calibration table" in text
        loaded = CalibrationTable.from_file(out)
        assert set(loaded.entries) == set(PROBES)
        assert loaded.table_id[:12] in text

    def test_check_mode_reports_drift(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "table.json"
        assert main(["calibrate", "--out", str(out),
                     "--sizes", "256,1024", "--repeats", "1"]) == 0
        capsys.readouterr()
        rc = main(["calibrate", "--check", str(out),
                   "--sizes", "256,1024", "--repeats", "1",
                   "--drift-tolerance", "1e9"])
        assert rc == 0
        assert "drift report" in capsys.readouterr().out

    def test_check_fails_on_zero_band(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "table.json"
        assert main(["calibrate", "--out", str(out),
                     "--sizes", "256,1024", "--repeats", "1"]) == 0
        capsys.readouterr()
        rc = main(["calibrate", "--check", str(out),
                   "--sizes", "256,1024", "--repeats", "1",
                   "--drift-tolerance", "0"])
        report = capsys.readouterr().out
        assert rc == (0 if "worst |drift|: 0.0%" in report else 1)

    def test_bad_sizes_exit(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["calibrate", "--out", str(tmp_path / "t.json"),
                  "--sizes", "not,numbers"])

    def test_parser_owns_a_calibration_group(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["calibrate"])
        assert args.command == "calibrate"
        assert args.out == "CALIBRATION.json"
        assert args.sizes == "16384,65536"
        assert args.repeats == 3
        assert args.check is None
        assert args.drift_tolerance == 0.5
