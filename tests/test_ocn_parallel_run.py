"""The end-to-end parallel validation: the distributed barotropic solver
(blocks + halo exchange over simulated MPI) must be bit-for-bit identical
to the serial solver — the paper's §5.1 coupled-model validation standard
applied to our parallel stack."""

import numpy as np
import pytest

from repro.grids import TripolarGrid
from repro.ocn import BarotropicSolver, BarotropicState, CGridMetrics
from repro.ocn.parallel_run import distributed_barotropic_run, local_window
from repro.parallel import Block2D


@pytest.fixture(scope="module")
def small_grid():
    return TripolarGrid.build(64, 48, n_levels=8)


@pytest.fixture(scope="module")
def serial_setup(small_grid):
    metrics = CGridMetrics.build(small_grid)
    solver = BarotropicSolver(metrics, small_grid.depth)
    rng = np.random.default_rng(0)
    eta0 = np.where(metrics.mask_c, 0.1 * rng.standard_normal(metrics.shape), 0.0)
    taux = np.where(metrics.mask_u, 0.05, 0.0)
    return metrics, solver, eta0, taux


def _serial_run(solver, eta0, taux, n_steps, dt):
    state = BarotropicState(eta0.copy(), np.zeros_like(eta0), np.zeros_like(eta0))
    norm = 0.0
    for _ in range(n_steps):
        state, norm = solver.step(state, dt, taux=taux)
    return state, norm


@pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
def test_distributed_bitwise_identical(small_grid, serial_setup, n_ranks):
    metrics, solver, eta0, taux = serial_setup
    dt = solver.max_stable_dt()
    n_steps = 12
    serial, _ = _serial_run(solver, eta0, taux, n_steps, dt)
    dist, _ = distributed_barotropic_run(
        small_grid, n_steps, n_ranks, dt=dt, taux=taux, initial_eta=eta0
    )
    assert np.array_equal(dist.eta, serial.eta)
    assert np.array_equal(dist.u, serial.u)
    assert np.array_equal(dist.v, serial.v)


def test_distributed_norm_matches_serial(small_grid, serial_setup):
    metrics, solver, eta0, taux = serial_setup
    dt = solver.max_stable_dt()
    serial, serial_norm = _serial_run(solver, eta0, taux, 8, dt)
    _, norms = distributed_barotropic_run(
        small_grid, 8, 4, dt=dt, taux=taux, initial_eta=eta0
    )
    # Different summation order: equal to near round-off, not bitwise.
    assert norms[-1] == pytest.approx(serial_norm, rel=1e-12)


def test_rank_count_independence(small_grid, serial_setup):
    """2 ranks and 8 ranks must agree bitwise with each other too."""
    metrics, solver, eta0, taux = serial_setup
    dt = solver.max_stable_dt()
    a, _ = distributed_barotropic_run(small_grid, 6, 2, dt=dt, taux=taux, initial_eta=eta0)
    b, _ = distributed_barotropic_run(small_grid, 6, 8, dt=dt, taux=taux, initial_eta=eta0)
    assert np.array_equal(a.eta, b.eta)
    assert np.array_equal(a.u, b.u)


def test_local_window_masks_out_of_domain(small_grid):
    metrics = CGridMetrics.build(small_grid)
    block = Block2D(small_grid.nlat, small_grid.nlon, 2, 2, rank=0)  # south-west
    local_m, local_depth = local_window(small_grid, metrics, block)
    # Padded rows below the global south edge must be fully closed.
    assert not local_m.mask_c[:3].any()
    assert not local_m.mask_v[:3].any()
    assert np.all(local_depth[:3] == 0.0)


def test_indivisible_x_rejected(small_grid):
    # 6 ranks factor to px=3 on this aspect ratio; 64 % 3 != 0.
    with pytest.raises(ValueError, match="divide"):
        distributed_barotropic_run(small_grid, 1, 6)
