"""Tests for unit conversions and the SYPD arithmetic."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    SECONDS_PER_DAY,
    SECONDS_PER_YEAR,
    parallel_efficiency,
    resolution_to_cell_km,
    sdpd_from_sypd,
    sypd_from_sdpd,
    sypd_from_walltime,
    walltime_from_sypd,
)


def test_sypd_one_to_one():
    # Simulating one year in exactly one wall day is 1.0 SYPD.
    assert sypd_from_walltime(SECONDS_PER_YEAR, SECONDS_PER_DAY) == pytest.approx(1.0)


def test_paper_convention_sdpd():
    # Duan et al. 2024: 340 SDPD == 0.93 SYPD (paper's own rounding).
    assert sypd_from_sdpd(340.0) == pytest.approx(0.93, abs=0.01)
    assert sdpd_from_sypd(0.73) == pytest.approx(265.0, abs=2.0)


@given(st.floats(min_value=1e-3, max_value=1e3))
def test_sypd_walltime_roundtrip(sypd):
    assert sypd_from_walltime(SECONDS_PER_YEAR, walltime_from_sypd(sypd)) == pytest.approx(
        sypd, rel=1e-12
    )


@given(st.floats(min_value=1e-6, max_value=1e6))
def test_sdpd_roundtrip(x):
    assert sypd_from_sdpd(sdpd_from_sypd(x)) == pytest.approx(x, rel=1e-12)


def test_parallel_efficiency_definition():
    # Paper Table 2, ATM 1 km: 0.36 SYPD at 2.13 M cores -> 0.92 SYPD at
    # 8.52 M cores is 63.9 % efficiency.
    eff = parallel_efficiency(0.36, 2129920, 0.92, 8519680)
    assert eff == pytest.approx(0.639, abs=0.001)


def test_parallel_efficiency_perfect_scaling():
    assert parallel_efficiency(1.0, 100, 2.0, 200) == pytest.approx(1.0)


def test_parallel_efficiency_rejects_nonpositive():
    with pytest.raises(ValueError):
        parallel_efficiency(0.0, 1, 1, 1)


def test_resolution_to_cell_km_one_km_grid():
    # A true 1-km global grid needs ~5.1e8 cells (4*pi*R^2 / 1 km^2).
    n = int(4 * math.pi * 6.371e6**2 / 1e6)
    assert resolution_to_cell_km(n) == pytest.approx(1.0, rel=1e-3)


def test_resolution_fraction_of_sphere():
    # Halving the covered area at fixed cell count shrinks the cell size by sqrt(2).
    full = resolution_to_cell_km(10_000)
    half = resolution_to_cell_km(10_000, fraction_of_sphere=0.5)
    assert half == pytest.approx(full / math.sqrt(2))
