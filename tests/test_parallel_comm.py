"""Tests for the simulated MPI runtime (SimWorld/SimComm)."""

import numpy as np
import pytest

from repro.parallel import Request, SimWorld


def test_send_recv_roundtrip():
    def program(comm):
        if comm.rank == 0:
            comm.send(np.arange(5.0), dest=1, tag=3)
            return None
        return comm.recv(source=0, tag=3)

    results = SimWorld(2).run(program)
    assert np.array_equal(results[1], np.arange(5.0))


def test_send_has_value_semantics():
    """Mutating the buffer after send must not corrupt the message."""

    def program(comm):
        if comm.rank == 0:
            buf = np.zeros(4)
            comm.send(buf, dest=1)
            buf[:] = 99.0
            return None
        return comm.recv(source=0)

    results = SimWorld(2).run(program)
    assert np.array_equal(results[1], np.zeros(4))


def test_isend_irecv():
    def program(comm):
        if comm.rank == 0:
            req = comm.isend({"x": 1}, dest=1)
            req.wait()
            return None
        req = comm.irecv(source=0)
        assert isinstance(req, Request)
        return req.wait()

    results = SimWorld(2).run(program)
    assert results[1] == {"x": 1}


def test_tag_matching_out_of_order():
    def program(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)
        first = comm.recv(source=0, tag=1)
        return (first, second)

    results = SimWorld(2).run(program)
    assert results[1] == ("first", "second")


def test_sendrecv_ring():
    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        return comm.sendrecv(comm.rank, dest=right, source=left)

    results = SimWorld(4).run(program)
    assert results == [3, 0, 1, 2]


@pytest.mark.parametrize("n", [1, 2, 3, 8])
def test_allreduce_sum_matches_numpy(n):
    def program(comm):
        x = np.full(3, float(comm.rank + 1))
        return comm.allreduce(x, op="sum")

    results = SimWorld(n).run(program)
    expected = np.full(3, sum(range(1, n + 1)), dtype=float)
    for r in results:
        assert np.array_equal(r, expected)


def test_allreduce_max_min():
    def program(comm):
        x = np.array([float(comm.rank)])
        return (comm.allreduce(x, op="max")[0], comm.allreduce(x, op="min")[0])

    results = SimWorld(5).run(program)
    for mx, mn in results:
        assert mx == 4.0 and mn == 0.0


def test_allreduce_deterministic_order():
    """Tree reduction must be arrival-order independent (bit-for-bit)."""

    def program(comm):
        # Values chosen so that FP addition order matters.
        x = np.array([1e16, 1.0, -1e16, 2.0][comm.rank % 4])
        return comm.allreduce(x, op="sum")

    a = SimWorld(4).run(program)
    b = SimWorld(4).run(program)
    assert a == b
    assert all(v == a[0] for v in a)


def test_bcast():
    def program(comm):
        data = {"cfg": [1, 2, 3]} if comm.rank == 0 else None
        return comm.bcast(data, root=0)

    results = SimWorld(4).run(program)
    assert all(r == {"cfg": [1, 2, 3]} for r in results)


def test_scatter_gather():
    def program(comm):
        chunks = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
        mine = comm.scatter(chunks, root=0)
        gathered = comm.gather(mine + 1, root=0)
        return gathered

    results = SimWorld(4).run(program)
    assert results[0] == [1, 11, 21, 31]
    assert results[1] is None


def test_allgather():
    def program(comm):
        return comm.allgather(comm.rank**2)

    results = SimWorld(4).run(program)
    assert all(r == [0, 1, 4, 9] for r in results)


def test_alltoall_is_transpose():
    def program(comm):
        objs = [f"{comm.rank}->{dst}" for dst in range(comm.size)]
        return comm.alltoall(objs)

    results = SimWorld(3).run(program)
    for dst, received in enumerate(results):
        assert received == [f"{src}->{dst}" for src in range(3)]


def test_reduce_to_root():
    def program(comm):
        return comm.reduce(np.array([1.0]), op="sum", root=2)

    results = SimWorld(4).run(program)
    assert results[2][0] == 4.0
    assert results[0] is None


def test_barrier_completes():
    def program(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert all(SimWorld(6).run(program))


def test_unknown_reduce_op_raises():
    def program(comm):
        comm.allreduce(1.0, op="xor")

    with pytest.raises(RuntimeError, match="rank 0 failed"):
        SimWorld(2).run(program)


def test_exception_propagates_with_rank():
    def program(comm):
        if comm.rank == 1:
            raise ValueError("boom")
        comm.barrier()

    with pytest.raises(RuntimeError, match="rank 1 failed"):
        SimWorld(2, timeout=5.0).run(program)


def test_split_collectives_within_group():
    def program(comm):
        color = comm.rank % 2
        sub = comm.split(color)
        total = sub.allreduce(comm.rank, op="sum")
        return (color, sub.rank, sub.size, total)

    results = SimWorld(6).run(program)
    for world_rank, (color, sub_rank, sub_size, total) in enumerate(results):
        assert color == world_rank % 2
        assert sub_size == 3
        expected = sum(r for r in range(6) if r % 2 == color)
        assert total == expected


def test_split_p2p_within_group():
    def program(comm):
        sub = comm.split(comm.rank // 2)  # pairs: (0,1), (2,3)
        if sub.rank == 0:
            sub.send(f"hello from world {comm.rank}", dest=1)
            return None
        return sub.recv(source=0)

    results = SimWorld(4).run(program)
    assert results[1] == "hello from world 0"
    assert results[3] == "hello from world 2"


def test_split_bcast_nonzero_root():
    def program(comm):
        sub = comm.split(0)
        payload = "root-data" if sub.rank == 1 else None
        return sub.bcast(payload, root=1)

    results = SimWorld(3).run(program)
    assert all(r == "root-data" for r in results)


def test_ledger_counts_p2p_bytes():
    world = SimWorld(2)

    def program(comm):
        if comm.rank == 0:
            comm.send(np.zeros(100, dtype=np.float64), dest=1)
        else:
            comm.recv(source=0)

    world.run(program)
    assert world.ledger.p2p_messages == 1
    assert world.ledger.p2p_bytes == 800
    assert world.ledger.traffic_matrix(2)[0, 1] == 800


def test_ledger_records_collectives():
    world = SimWorld(4)

    def program(comm):
        comm.allreduce(np.zeros(10), op="sum")

    world.run(program)
    ops = [c.op for c in world.ledger.collectives]
    assert "allreduce-sum" in ops


def test_recv_timeout_raises():
    def program(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=9)

    with pytest.raises(RuntimeError, match="rank 0 failed"):
        SimWorld(2, timeout=0.2).run(program)


def test_single_rank_world():
    def program(comm):
        assert comm.size == 1
        return comm.allreduce(5.0, op="sum")

    assert SimWorld(1).run(program) == [5.0]
