"""Shared fixtures: grid construction is the slow part of the suite, so
the meshes are built once per session."""

import pytest

from repro.grids import IcosahedralGrid, TripolarGrid


@pytest.fixture(scope="session")
def icos3():
    """Level-3 icosahedral grid: 642 cells (~890 km spacing)."""
    return IcosahedralGrid.build(3)


@pytest.fixture(scope="session")
def icos4():
    """Level-4 icosahedral grid: 2562 cells (~450 km spacing)."""
    return IcosahedralGrid.build(4)


@pytest.fixture(scope="session")
def tripolar_small():
    """96 x 64 tripolar ocean grid with 20 levels."""
    return TripolarGrid.build(96, 64, n_levels=20)
