"""Tests for the structured observability layer (repro.obs):

span nesting, virtual-clock spans, Chrome-trace schema, metric
aggregation across ranks, and end-to-end wiring through the coupled
driver, the rearranger, subfile I/O, and the distributed ocean run.
"""

import json

import numpy as np
import pytest

from repro.coupler import AttrVect, GlobalSegMap, Rearranger, Router
from repro.io import SubfileLayout, read_subfiles, write_subfiles
from repro.obs import (
    MetricsRegistry,
    Obs,
    Tracer,
    chrome_trace_events,
    timing_summary,
    write_chrome_trace,
)
from repro.parallel import SimWorld


class FakeClock:
    """Manually advanced clock: virtual-time spans, deterministic tests."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTracer:
    def test_span_nesting_paths_and_durations(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("step"):
            clock.advance(1.0)
            with tracer.span("atm", steps=4):
                clock.advance(2.0)
            with tracer.span("ocn"):
                clock.advance(3.0)
        assert [s.name for s in tracer.spans] == ["atm", "ocn", "step"]
        atm, ocn, step = tracer.spans
        assert atm.path == ("step", "atm")
        assert atm.parent == "step"
        assert atm.depth == 1
        assert atm.duration == pytest.approx(2.0)
        assert atm.attrs == {"steps": 4}
        assert step.path == ("step",)
        assert step.parent is None
        assert step.duration == pytest.approx(6.0)
        assert ocn.start == pytest.approx(3.0)

    def test_mismatched_end_raises(self):
        tracer = Tracer(clock=FakeClock())
        tracer.begin("a")
        with pytest.raises(RuntimeError, match="nesting violation"):
            tracer.end("b")
        with pytest.raises(RuntimeError, match="no span is open"):
            Tracer(clock=FakeClock()).end()

    def test_virtual_clock_spans_use_injected_time(self):
        """Spans on a machine-model virtual clock: durations are exactly
        the simulated seconds, independent of host wall time."""
        clock = FakeClock()
        clock.t = 1000.0  # nonzero epoch
        tracer = Tracer(clock=clock)
        with tracer.span("simulated_phase"):
            clock.advance(123.456)
        span = tracer.spans[0]
        assert span.start == pytest.approx(0.0)
        assert span.duration == pytest.approx(123.456)

    def test_to_timer_registry_subsumes_flat_timers(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for elapsed in (1.0, 3.0):
            with tracer.span("run"):
                with tracer.span("atm"):
                    clock.advance(elapsed)
        reg = tracer.to_timer_registry()
        assert reg.total("run") == pytest.approx(4.0)
        assert reg.total("atm") == pytest.approx(4.0)
        node = reg._find(reg._root, "atm")
        assert node.count == 2
        assert node.min == pytest.approx(1.0)
        assert node.max == pytest.approx(3.0)
        # "atm" is nested under "run" in the registry tree too.
        run_node = reg._find(reg._root, "run")
        assert "atm" in run_node.children

    def test_timing_summary_matches_get_timing(self):
        tracers = []
        for rank, seconds in enumerate((10.0, 20.0, 15.0)):
            clock = FakeClock()
            tracer = Tracer(clock=clock, rank=rank)
            with tracer.span("run_loop"):
                clock.advance(seconds)
            tracers.append(tracer)
        rep = timing_summary(tracers, "run_loop", simulated_days=1.0)
        assert rep.max_seconds == pytest.approx(20.0)
        assert rep.n_ranks == 3
        assert rep.sdpd == pytest.approx(4320.0)


class TestChromeTrace:
    def _one_tracer(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, rank=2)
        with tracer.span("step", coupling=0):
            clock.advance(0.25)
        return tracer

    def test_event_schema(self):
        events = chrome_trace_events([self._one_tracer()])
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert meta and spans
        ev = spans[0]
        assert ev["name"] == "step"
        assert ev["pid"] == 2
        assert ev["tid"] == 0
        assert ev["ts"] == pytest.approx(0.0)
        assert ev["dur"] == pytest.approx(0.25e6)  # microseconds
        assert ev["args"] == {"coupling": 0}
        json.dumps(events)  # must be JSON-serializable

    def test_written_file_is_valid_json(self, tmp_path):
        reg = MetricsRegistry(rank=2)
        reg.counter("x.bytes").inc(100)
        path = write_chrome_trace(
            tmp_path / "trace.json", [self._one_tracer()], [reg]
        )
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["x.bytes"]["sum"] == 100.0

    def test_non_jsonable_attrs_coerced(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("s", arr=np.arange(3)):
            clock.advance(1.0)
        json.dumps(chrome_trace_events([tracer]))


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter("c").value == 5.0
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)
        reg.gauge("g").set(2.5)
        assert reg.gauge("g").value == 2.5
        h = reg.histogram("h")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(7.0)
        assert h.min == pytest.approx(1.0)
        assert h.max == pytest.approx(4.0)
        assert h.mean == pytest.approx(7.0 / 3.0)

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_aggregate_across_ranks(self):
        regs = []
        for rank, value in enumerate((10.0, 30.0, 20.0)):
            reg = MetricsRegistry(rank=rank)
            reg.counter("bytes").inc(value)
            regs.append(reg)
        agg = MetricsRegistry.aggregate(regs)
        assert agg["bytes"]["n_ranks"] == 3.0
        assert agg["bytes"]["min"] == 10.0
        assert agg["bytes"]["max"] == 30.0
        assert agg["bytes"]["sum"] == 60.0
        assert agg["bytes"]["mean"] == pytest.approx(20.0)

    def test_aggregate_handles_missing_metrics(self):
        a = MetricsRegistry(rank=0)
        a.counter("only_on_a").inc(7)
        b = MetricsRegistry(rank=1)
        agg = MetricsRegistry.aggregate([a, b])
        assert agg["only_on_a"]["n_ranks"] == 1.0
        assert agg["only_on_a"]["sum"] == 7.0


class TestObsFacade:
    def test_disabled_obs_records_nothing(self):
        obs = Obs(enabled=False)
        with obs.span("s"):
            obs.counter("c").inc()
            obs.gauge("g").set(1.0)
            obs.histogram("h").observe(1.0)
        assert obs.tracer.spans == []
        assert obs.metrics.names() == []

    def test_fork_is_idempotent_and_per_rank(self):
        obs = Obs(clock=FakeClock())
        a = obs.fork(1)
        b = obs.fork(1)
        assert a is b
        c = obs.fork(2)
        assert c.rank == 2
        assert [o.rank for o in obs.all_ranks()] == [0, 1, 2]

    def test_report_contains_spans_and_metrics(self):
        clock = FakeClock()
        obs = Obs(clock=clock)
        with obs.span("phase"):
            clock.advance(1.0)
        obs.counter("io.bytes").inc(512)
        report = obs.report()
        assert "phase" in report
        assert "io.bytes" in report


class TestWiring:
    def test_rearrange_metrics_match_ledger(self):
        """Per-rank rearranger counters sum to the world's p2p ledger."""
        gsize, n_pes = 64, 4
        src = GlobalSegMap.from_owners(np.repeat(np.arange(n_pes), gsize // n_pes))
        dst = GlobalSegMap.from_owners(np.roll(np.repeat(np.arange(n_pes), gsize // n_pes), 5))
        router = Router.build(src, dst)
        rearranger = Rearranger(router, method="p2p")
        obs = Obs()
        gfield = np.arange(gsize, dtype=float)

        def program(comm):
            me = comm.rank
            av = AttrVect.from_dict({"f": gfield[src.local_indices(me)]})
            out = rearranger.rearrange(
                comm, av, len(dst.local_indices(me)), obs=obs.fork(me)
            )
            return out.get("f")

        world = SimWorld(n_pes)
        results = world.run(program)
        for pe, got in enumerate(results):
            assert np.array_equal(got, gfield[dst.local_indices(pe)])

        agg = MetricsRegistry.aggregate(
            [o.metrics for o in obs.all_ranks() if o.metrics.names()]
        )
        assert agg["cpl.rearrange.messages"]["sum"] == world.ledger.p2p_messages
        assert agg["cpl.rearrange.bytes"]["sum"] == world.ledger.p2p_bytes
        # Every rank recorded a span for its rearrange call.
        ranks_with_spans = {
            o.rank for o in obs.all_ranks() if o.tracer.find("cpl.rearrange")
        }
        assert ranks_with_spans == set(range(n_pes))

    def test_rearrange_without_obs_unchanged(self):
        """obs=None (the default) must not record or allocate anything."""
        gsize, n_pes = 24, 3
        src = GlobalSegMap.from_owners(np.repeat(np.arange(n_pes), 8))
        dst = GlobalSegMap.from_owners(np.arange(gsize) % n_pes)
        router = Router.build(src, dst)
        gfield = np.arange(gsize, dtype=float)

        def program(comm):
            me = comm.rank
            av = AttrVect.from_dict({"f": gfield[src.local_indices(me)]})
            return Rearranger(router).rearrange(comm, av, len(dst.local_indices(me)))

        for av in SimWorld(n_pes).run(program):
            assert av is not None

    def test_subfile_io_records_bytes(self, tmp_path):
        obs = Obs()
        layout = SubfileLayout(n_ranks=8, n_groups=4)
        data = np.arange(64.0)
        from repro.parallel import block_ranges

        slices = [(s, data[s:e]) for s, e in block_ranges(64, 8)]
        write_subfiles(tmp_path, "x", layout, slices, obs=obs)
        back = read_subfiles(tmp_path, "x", layout, 64, obs=obs)
        assert np.array_equal(back, data)
        assert obs.counter("io.subfiles_written").value == 4.0
        assert obs.counter("io.bytes_written").value > 64 * 8  # data + headers
        assert obs.counter("io.bytes_read").value == back.nbytes
        assert obs.tracer.find("io.write_subfiles")
        assert obs.tracer.find("io.read_subfiles")

    def test_distributed_ocean_run_traced(self):
        from repro.grids.tripolar import TripolarGrid
        from repro.ocn.parallel_run import distributed_barotropic_run

        grid = TripolarGrid.build(nlon=24, nlat=16, n_levels=3)
        obs = Obs()
        state, norms = distributed_barotropic_run(grid, n_steps=2, n_ranks=2, obs=obs)
        assert len(norms) == 2
        rank_handles = [o for o in obs.all_ranks() if o.rank in (0, 1) and o.tracer.spans]
        assert len(rank_handles) == 2
        for handle in rank_handles:
            steps = handle.tracer.find("ocn.parallel_step")
            assert len(steps) == 2
            assert handle.tracer.find("ocn.halo_exchange")
            assert handle.tracer.find("ocn.solve")
        # The world's traffic landed in the parent metrics.
        assert obs.metrics.gauge("ocn.comm.p2p_messages").value > 0


class TestCoupledTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        from repro.esm import AP3ESM, AP3ESMConfig

        obs = Obs()
        model = AP3ESM(
            AP3ESMConfig(atm_level=2, ocn_nlon=32, ocn_nlat=24, ocn_levels=4),
            obs=obs,
        )
        model.init()
        model.run_couplings(5)  # ratio 5 -> exactly one ocean coupling
        return model, obs

    def test_every_coupling_step_has_component_spans(self, traced):
        model, obs = traced
        tracer = obs.tracer
        assert len(tracer.find("cpl.step")) == 5
        domain1 = tracer.find("cpl.domain.domain1")
        assert len(domain1) == 5
        assert all(s.parent == "cpl.step" for s in domain1)
        for phase in ("atm.run", "lnd.step", "cpl.a2o_remap", "ice.step", "cpl.o2a_merge"):
            spans = tracer.find(phase)
            assert len(spans) == 5, phase
            assert all(s.parent == "cpl.domain.domain1" for s in spans)
        ocn = tracer.find("ocn.run")
        assert len(ocn) == 1
        assert ocn[0].parent == "cpl.domain.domain2"
        assert tracer.find("esm.init")

    def test_metrics_track_component_steps(self, traced):
        model, obs = traced
        assert obs.counter("cpl.steps").value == 5.0
        assert obs.counter("atm.steps").value == 5.0
        assert obs.counter("ocn.couplings").value == 1.0
        assert obs.counter("ocn.steps").value == float(model.ocn_steps_per_coupling)

    def test_chrome_trace_export_is_valid(self, traced, tmp_path):
        model, obs = traced
        path = obs.write_chrome_trace(tmp_path / "coupled_trace.json")
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert {"cpl.step", "atm.run", "ice.step", "ocn.run"} <= names
        # Timestamps are non-negative microseconds with positive duration.
        for ev in doc["traceEvents"]:
            if ev.get("ph") == "X":
                assert ev["ts"] >= 0.0
                assert ev["dur"] >= 0.0
        assert doc["otherData"]["cpl.steps"]["sum"] == 5.0

    def test_sypd_summary_from_trace(self, traced):
        model, obs = traced
        days = model.n_couplings * model.dt_couple / 86400.0
        rep = obs.timing("cpl.step", simulated_days=days)
        assert rep.sypd > 0
        assert rep.n_ranks == 1