"""Tests for the Table 1 configuration data and its internal consistency."""

import pytest

from repro.esm import (
    grist_counts_from_hexagons,
    AP3ESM_CONFIGS,
    COUPLING_FREQUENCIES_PER_DAY,
    GRIST_CONFIGS,
    LICOM_CONFIGS,
    grist_counts_from_triangles,
    licom_grid_points,
)
from repro.grids import icosahedral_counts
from repro.utils import resolution_to_cell_km


def test_all_table1_rows_present():
    assert set(GRIST_CONFIGS) == {1.0, 3.0, 6.0, 10.0, 25.0}
    assert set(LICOM_CONFIGS) == {1.0, 2.0, 3.0, 5.0, 10.0}
    assert set(AP3ESM_CONFIGS) == {"1v1", "3v2", "6v3", "10v5", "25v10"}


@pytest.mark.parametrize("res", [1.0, 3.0, 6.0, 10.0, 25.0])
def test_grist_euler_relations_hold(res):
    """Each published GRIST row obeys the icosahedral Euler relations in
    its own counting convention (the 1-km row counts triangles; the rest
    count hexagons — a Table 1 quirk this reproduction preserves)."""
    cfg = GRIST_CONFIGS[res]
    if cfg.convention == "triangle":
        edges, vertices = grist_counts_from_triangles(cfg.cells)
        assert cfg.edges == pytest.approx(edges, rel=0.05)
        assert cfg.vertices == pytest.approx(vertices, rel=0.05)
    else:
        edges, triangles = grist_counts_from_hexagons(cfg.cells)
        assert cfg.edges == pytest.approx(edges, rel=0.05)
        assert cfg.vertices == pytest.approx(triangles, rel=0.05)


@pytest.mark.parametrize("res,level", [(1.0, 12), (3.0, 11), (6.0, 10), (10.0, 9), (25.0, 8)])
def test_grist_rows_match_icos_levels(res, level):
    """Every Table 1 row corresponds to an integer subdivision level."""
    cfg = GRIST_CONFIGS[res]
    assert cfg.icos_level == level
    nc, ne, nd = icosahedral_counts(level)
    if cfg.convention == "triangle":
        assert nd == pytest.approx(cfg.cells, rel=0.05)
    else:
        assert nc == pytest.approx(cfg.cells, rel=0.10)


def test_grist_1km_matches_icosahedral_level12():
    """The 1-km GRIST counts coincide with subdivision level 12."""
    nc, ne, nd = icosahedral_counts(12)
    cfg = GRIST_CONFIGS[1.0]
    assert nd == pytest.approx(cfg.cells, rel=0.02)      # triangles
    assert ne == pytest.approx(cfg.edges, rel=0.02)
    assert nc == pytest.approx(cfg.vertices, rel=0.02)   # hex cells


@pytest.mark.parametrize("res", [1.0, 2.0, 3.0, 5.0, 10.0])
def test_licom_grid_points_column(res):
    """'No. of Grids' ~ nlon * nlat * 80 (Table 1 rounds to 2 digits)."""
    cfg = LICOM_CONFIGS[res]
    assert licom_grid_points(cfg) == pytest.approx(cfg.grid_points, rel=0.30)


def test_licom_1km_grid_points_exact():
    cfg = LICOM_CONFIGS[1.0]
    assert licom_grid_points(cfg) == pytest.approx(6.3e10, rel=0.01)


@pytest.mark.parametrize("res", [1.0, 2.0, 5.0, 10.0])
def test_licom_nominal_resolution_consistent(res):
    """nlon x nlat over the (ocean-covered) sphere gives roughly the named
    resolution."""
    cfg = LICOM_CONFIGS[res]
    km = resolution_to_cell_km(cfg.nlon * cfg.nlat)
    assert km == pytest.approx(res, rel=0.35)


@pytest.mark.parametrize("label", ["1v1", "3v2", "6v3", "10v5", "25v10"])
def test_pairings_reference_existing_rows(label):
    pairing = AP3ESM_CONFIGS[label]
    assert pairing.atm.resolution_km == pairing.atm_resolution_km
    assert pairing.ocn.resolution_km == pairing.ocn_resolution_km
    # Total grid points ~ atm + ocn totals.
    combined = pairing.atm.grid_points + pairing.ocn.grid_points
    assert pairing.total_grid_points == pytest.approx(combined, rel=0.25)


def test_coupling_frequencies_match_paper():
    assert COUPLING_FREQUENCIES_PER_DAY == {"atm": 180.0, "ocn": 36.0, "ice": 180.0}
    # The 5:1 atm:ocn ratio the driver implements.
    assert COUPLING_FREQUENCIES_PER_DAY["atm"] / COUPLING_FREQUENCIES_PER_DAY["ocn"] == 5.0
