"""Gradient checks (finite differences) and behavior tests for every layer."""

import numpy as np
import pytest

from repro.ai import (
    Conv1d,
    Dense,
    Flatten,
    LayerNorm,
    ReLU,
    ResidualDense,
    ResUnit,
    Sequential,
    Tanh,
)


def _loss_and_grad(layer, x):
    """Scalar loss = sum(forward(x) * c) for a fixed random c."""
    rng = np.random.default_rng(42)
    y = layer.forward(x)
    c = rng.standard_normal(y.shape)
    loss = float(np.sum(y * c))
    layer_params = layer.parameters()
    for p in layer_params:
        p.zero_grad()
    gx = layer.backward(c)
    return loss, gx, c


def _check_input_grad(layer, x, eps=1e-6, tol=1e-5):
    _, gx, c = _loss_and_grad(layer, x)
    rng = np.random.default_rng(0)
    # Probe a handful of random input entries.
    flat = x.reshape(-1)
    idx = rng.choice(flat.size, size=min(10, flat.size), replace=False)
    for i in idx:
        xp = flat.copy()
        xm = flat.copy()
        xp[i] += eps
        xm[i] -= eps
        yp = layer.forward(xp.reshape(x.shape))
        ym = layer.forward(xm.reshape(x.shape))
        num = float(np.sum((yp - ym) * c)) / (2 * eps)
        assert num == pytest.approx(gx.reshape(-1)[i], rel=tol, abs=1e-7)


def _check_param_grads(layer, x, eps=1e-6, tol=1e-5):
    _, _, c = _loss_and_grad(layer, x)
    rng = np.random.default_rng(1)
    for p in layer.parameters():
        flat = p.value.reshape(-1)
        g = p.grad.reshape(-1)
        idx = rng.choice(flat.size, size=min(8, flat.size), replace=False)
        for i in idx:
            orig = flat[i]
            flat[i] = orig + eps
            yp = float(np.sum(layer.forward(x) * c))
            flat[i] = orig - eps
            ym = float(np.sum(layer.forward(x) * c))
            flat[i] = orig
            num = (yp - ym) / (2 * eps)
            assert num == pytest.approx(g[i], rel=tol, abs=1e-7)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestDense:
    def test_shapes(self, rng):
        layer = Dense(5, 3)
        y = layer.forward(rng.standard_normal((4, 5)))
        assert y.shape == (4, 3)
        assert layer.n_params == 5 * 3 + 3

    def test_gradients(self, rng):
        layer = Dense(6, 4)
        x = rng.standard_normal((3, 6))
        _check_input_grad(layer, x)
        _check_param_grads(layer, x)


class TestConv1d:
    def test_shapes_same_padding(self, rng):
        layer = Conv1d(2, 5, kernel=3)
        y = layer.forward(rng.standard_normal((4, 2, 30)))
        assert y.shape == (4, 5, 30)

    def test_odd_kernel_required(self):
        with pytest.raises(ValueError):
            Conv1d(1, 1, kernel=2)

    def test_requires_3d(self, rng):
        with pytest.raises(ValueError):
            Conv1d(2, 2).forward(rng.standard_normal((4, 2)))

    def test_matches_numpy_correlate(self, rng):
        """Single-channel conv equals scipy-style 'same' correlation."""
        layer = Conv1d(1, 1, kernel=3)
        x = rng.standard_normal((1, 1, 16))
        w = layer.w.value[0, 0]
        y = layer.forward(x)[0, 0]
        ref = np.correlate(np.pad(x[0, 0], 1), w, mode="valid") + layer.b.value[0]
        assert np.allclose(y, ref)

    def test_gradients(self, rng):
        layer = Conv1d(2, 3, kernel=3)
        x = rng.standard_normal((2, 2, 9))
        _check_input_grad(layer, x)
        _check_param_grads(layer, x)

    def test_kernel1_gradients(self, rng):
        layer = Conv1d(3, 2, kernel=1)
        x = rng.standard_normal((2, 3, 7))
        _check_input_grad(layer, x)
        _check_param_grads(layer, x)


class TestActivations:
    def test_relu_forward_backward(self, rng):
        layer = ReLU()
        x = np.array([[-1.0, 0.5, 2.0]])
        assert np.array_equal(layer.forward(x), [[0.0, 0.5, 2.0]])
        g = layer.backward(np.ones_like(x))
        assert np.array_equal(g, [[0.0, 1.0, 1.0]])

    def test_tanh_gradient(self, rng):
        layer = Tanh()
        x = rng.standard_normal((3, 5))
        _check_input_grad(layer, x)


class TestLayerNorm:
    def test_normalizes(self, rng):
        layer = LayerNorm(8)
        y = layer.forward(rng.standard_normal((10, 8)) * 5 + 3)
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-10)
        assert np.allclose(y.std(axis=-1), 1.0, atol=1e-3)

    def test_gradients(self, rng):
        layer = LayerNorm(6)
        x = rng.standard_normal((4, 6))
        _check_input_grad(layer, x, tol=1e-4)
        _check_param_grads(layer, x, tol=1e-4)


class TestResUnits:
    def test_res_unit_gradients(self, rng):
        layer = ResUnit(3, kernel=3)
        x = rng.standard_normal((2, 3, 8))
        _check_input_grad(layer, x, tol=1e-4)
        _check_param_grads(layer, x, tol=1e-4)

    def test_residual_dense_gradients(self, rng):
        layer = ResidualDense(5)
        x = rng.standard_normal((3, 5))
        _check_input_grad(layer, x, tol=1e-4)
        _check_param_grads(layer, x, tol=1e-4)

    def test_identity_at_zero_weights(self, rng):
        layer = ResUnit(2)
        layer.conv2.w.value[:] = 0.0
        layer.conv2.b.value[:] = 0.0
        x = rng.standard_normal((1, 2, 6))
        assert np.allclose(layer.forward(x), x)


class TestFlattenSequential:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.standard_normal((2, 3, 4))
        y = layer.forward(x)
        assert y.shape == (2, 12)
        assert layer.backward(y).shape == x.shape

    def test_sequential_composes(self, rng):
        net = Sequential([Dense(4, 8), ReLU(), Dense(8, 2)])
        x = rng.standard_normal((5, 4))
        assert net.forward(x).shape == (5, 2)
        _check_input_grad(net, x, tol=1e-4)

    def test_zero_grad(self, rng):
        net = Sequential([Dense(3, 3)])
        x = rng.standard_normal((2, 3))
        net.forward(x)
        net.backward(np.ones((2, 3)))
        assert np.any(net.parameters()[0].grad != 0)
        net.zero_grad()
        assert np.all(net.parameters()[0].grad == 0)

    def test_deterministic_init(self):
        a = Dense(4, 4, rng_key="k1")
        b = Dense(4, 4, rng_key="k1")
        c = Dense(4, 4, rng_key="k2")
        assert np.array_equal(a.w.value, b.w.value)
        assert not np.array_equal(a.w.value, c.w.value)
