"""Cross-cutting property-based tests (hypothesis): the invariants the
paper's validation methodology relies on, checked over randomized inputs
rather than single examples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atm import ShallowWaterDycore, SWEState
from repro.coupler import AttrVect, GlobalSegMap, Router
from repro.esm.diagnostics import structure_function
from repro.io import SubfileLayout, read_subfiles, write_subfiles
from repro.parallel import block_ranges
from repro.precision import GroupScaled32, area_weighted_rmsd


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_swe_mass_conservation_any_random_state(seed):
    """Mass is conserved from ANY positive random SWE state (module-scope
    grid via a cached build)."""
    grid = _grid()
    rng = np.random.default_rng(seed)
    state = SWEState(
        h=1000.0 + 200.0 * rng.random(grid.n_cells),
        u=10.0 * rng.standard_normal(grid.n_edges),
    )
    dycore = ShallowWaterDycore(grid)
    m0 = dycore.total_mass(state)
    dt = dycore.max_stable_dt(state, cfl=0.3)
    for _ in range(3):
        state = dycore.step_rk4(state, dt)
    assert dycore.total_mass(state) == pytest.approx(m0, rel=1e-12)


_GRID_CACHE = {}


def _grid():
    if "g" not in _GRID_CACHE:
        from repro.grids import IcosahedralGrid

        _GRID_CACHE["g"] = IcosahedralGrid.build(3)
    return _GRID_CACHE["g"]


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=1_000),
)
def test_router_rearrangement_is_always_lossless(n_src, n_dst, seed):
    """Any pair of random full decompositions over the same index space
    yields a Router that moves every point exactly once."""
    rng = np.random.default_rng(seed)
    gsize = 60
    src = GlobalSegMap.from_owners(rng.integers(0, n_src, gsize))
    dst = GlobalSegMap.from_owners(rng.integers(0, n_dst, gsize))
    router = Router.build(src, dst)
    assert router.total_points() == gsize
    # Every send list pairs with an equally sized recv list.
    for key, s_idx in router.send.items():
        assert len(s_idx) == len(router.recv[key])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=500),
    n_ranks=st.integers(min_value=1, max_value=32),
    n_groups=st.integers(min_value=1, max_value=32),
)
def test_subfile_roundtrip_any_geometry(tmp_path_factory, n, n_ranks, n_groups):
    n_groups = min(n_groups, n_ranks)
    data = np.arange(n, dtype=np.float64) * 1.5
    layout = SubfileLayout(n_ranks, n_groups)
    slices = [(s, data[s:e]) for s, e in block_ranges(n, n_ranks)]
    tmp = tmp_path_factory.mktemp("prop")
    write_subfiles(tmp, "f", layout, slices)
    assert np.array_equal(read_subfiles(tmp, "f", layout, n), data)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_groupscale_never_flips_sign_or_order_of_magnitude(seed):
    rng = np.random.default_rng(seed)
    field = rng.standard_normal(257) * 10.0 ** rng.integers(-8, 8)
    back = GroupScaled32.encode(field, 32).decode()
    big = np.abs(field) > 1e-5 * np.abs(field).max()
    assert np.all(np.sign(back[big]) == np.sign(field[big]))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=1_000))
def test_rmsd_is_a_metric_like_quantity(seed):
    """Area-weighted RMSD: zero iff equal, symmetric, scales linearly."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((6, 8))
    b = rng.standard_normal((6, 8))
    area = rng.uniform(0.5, 2.0, (6, 8))
    assert area_weighted_rmsd(a, a, area) == 0.0
    ab = area_weighted_rmsd(a, b, area)
    ba = area_weighted_rmsd(b, a, area)
    assert ab == pytest.approx(ba)
    assert area_weighted_rmsd(2 * a, 2 * b, area) == pytest.approx(2 * ab)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=1_000))
def test_attrvect_subset_then_permute_commutes(seed):
    rng = np.random.default_rng(seed)
    av = AttrVect.from_dict({
        "a": rng.standard_normal(10),
        "b": rng.standard_normal(10),
        "c": rng.standard_normal(10),
    })
    perm = rng.permutation(10)
    x = av.subset(["c", "a"]).permute(perm)
    y = av.permute(perm).subset(["c", "a"])
    assert np.array_equal(x.data, y.data)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=1_000))
def test_structure_function_shift_invariant(seed):
    """S2 must be invariant under zonal rotation of the field+mask."""
    rng = np.random.default_rng(seed)
    f = rng.standard_normal((8, 32))
    mask = rng.random((8, 32)) > 0.2
    shift = int(rng.integers(1, 31))
    a = structure_function(f, mask, max_lag=5)["s2"]
    b = structure_function(np.roll(f, shift, 1), np.roll(mask, shift, 1), max_lag=5)["s2"]
    assert np.allclose(a, b, equal_nan=True)
