"""Tests for the coupler fast path (§5.2.4): the content-addressed
offline GSMap/Router cache, the coalesced RearrangePlan, and end-to-end
field pruning through CoupledExchange — plus the driver/CLI wiring.

The load-bearing contracts: every layout (per-field, per-bundle,
coalesced plan) is bitwise identical on surviving fields; the plan
carries ``n_fields``-times fewer messages per edge; a warm cache skips
``Router.build`` and says so on the obs ledger; an elastic shrink can
never be served a stale table because the owner arrays *are* the key.
"""

import numpy as np
import pytest

from repro.coupler import (
    AttrVect,
    CoupledExchange,
    CouplerCache,
    FieldRegistry,
    GlobalSegMap,
    Rearranger,
    RearrangePlan,
    Router,
)
from repro.obs import Obs
from repro.parallel import SimWorld
from repro.resilience import CommFault, CommFaultInjector, FaultPlan

N_RANKS = 4
PER_RANK = 5
GSIZE = N_RANKS * PER_RANK


@pytest.fixture()
def maps():
    src = GlobalSegMap.from_owners(np.arange(GSIZE) * N_RANKS // GSIZE)
    dst = GlobalSegMap.from_owners(np.arange(GSIZE) % N_RANKS)
    return src, dst


@pytest.fixture()
def router(maps):
    return Router.build(*maps)


def _bundles():
    """Two global field bundles with deterministic, distinct values."""
    rng = np.random.default_rng(7)
    return {
        "x2o": {f: rng.normal(size=GSIZE) for f in ("taux", "tauy", "heat")},
        "i2x": {f: rng.normal(size=GSIZE) for f in ("ifrac", "tsurf")},
    }


def _local(bundle, gsmap, rank):
    idx = gsmap.local_indices(rank)
    return AttrVect.from_dict({f: g[idx] for f, g in bundle.items()})


class TestRearrangePlan:
    def test_compile_validation(self, router):
        with pytest.raises(ValueError, match="at least one bundle"):
            RearrangePlan.compile(router, {})
        with pytest.raises(ValueError, match="no fields"):
            RearrangePlan.compile(router, {"x2o": []})
        with pytest.raises(ValueError, match="duplicate"):
            RearrangePlan.compile(router, {"x2o": ["a", "a"]})

    def test_introspection(self, router):
        plan = RearrangePlan.compile(router, {"a": ["f1", "f2"], "b": ["g1"]})
        assert plan.n_fields == 3
        assert plan.n_bundles == 2
        assert plan.bundle_fields("b") == ("g1",)
        with pytest.raises(KeyError):
            plan.bundle_fields("zz")

    def test_plan_matches_per_field_and_bundle_layouts(self, maps, router):
        """The acceptance identity: coalesced plan == per-bundle == the
        legacy per-field layout, bitwise, on every field."""
        src, dst = maps
        bundles = _bundles()
        schema = {n: list(b) for n, b in bundles.items()}
        plan = RearrangePlan.compile(router, schema)

        def run_plan(comm):
            srcs = {n: _local(b, src, comm.rank) for n, b in bundles.items()}
            out = plan.execute(comm, srcs, len(dst.local_indices(comm.rank)))
            return {n: av.data.copy() for n, av in out.items()}

        def run_rearranger(granularity):
            rearranger = Rearranger(router, method="p2p", granularity=granularity)

            def program(comm):
                dst_lsize = len(dst.local_indices(comm.rank))
                return {
                    n: rearranger.rearrange(
                        comm, _local(b, src, comm.rank), dst_lsize
                    ).data.copy()
                    for n, b in bundles.items()
                }

            return SimWorld(N_RANKS, timeout=5.0).run(program)

        plan_out = SimWorld(N_RANKS, timeout=5.0).run(run_plan)
        for legacy in (run_rearranger("field"), run_rearranger("bundle")):
            for rank_plan, rank_legacy in zip(plan_out, legacy):
                for name in bundles:
                    assert np.array_equal(rank_plan[name], rank_legacy[name]), name

    def test_plan_delivers_correct_values(self, maps, router):
        """Destination ranks see exactly the global field at their points."""
        src, dst = maps
        bundles = _bundles()
        plan = RearrangePlan.compile(router, {n: list(b) for n, b in bundles.items()})

        def program(comm):
            srcs = {n: _local(b, src, comm.rank) for n, b in bundles.items()}
            return plan.execute(comm, srcs, len(dst.local_indices(comm.rank)))

        outs = SimWorld(N_RANKS, timeout=5.0).run(program)
        for rank, out in enumerate(outs):
            idx = dst.local_indices(rank)
            for name, bundle in bundles.items():
                for fname, gfield in bundle.items():
                    assert np.array_equal(out[name].get(fname), gfield[idx])

    def test_plan_coalesces_messages_on_the_ledger(self, maps, router):
        """One message per (src, dst) edge, against n_fields for the
        legacy layout — the ≥ n_fields× reduction the issue demands."""
        src, dst = maps
        bundles = _bundles()
        n_fields = sum(len(b) for b in bundles.values())
        plan = RearrangePlan.compile(router, {n: list(b) for n, b in bundles.items()})
        edges = sum(1 for (p, q) in router.send if p != q)

        def run_plan(comm):
            srcs = {n: _local(b, src, comm.rank) for n, b in bundles.items()}
            plan.execute(comm, srcs, len(dst.local_indices(comm.rank)))

        world = SimWorld(N_RANKS, timeout=5.0)
        world.run(run_plan)
        assert world.ledger.p2p_messages == edges

        rearranger = Rearranger(router, method="p2p", granularity="field")

        def run_field(comm):
            dst_lsize = len(dst.local_indices(comm.rank))
            for n, b in bundles.items():
                rearranger.rearrange(comm, _local(b, src, comm.rank), dst_lsize)

        world_f = SimWorld(N_RANKS, timeout=5.0)
        world_f.run(run_field)
        # bcast traffic rides along in the legacy path; p2p data messages
        # alone already show the full n_fields factor.
        assert world_f.ledger.p2p_messages == edges * n_fields
        assert world_f.ledger.p2p_messages >= n_fields * world.ledger.p2p_messages

    def test_message_counts_arithmetic(self, router):
        plan = RearrangePlan.compile(router, {"a": ["f1", "f2", "f3"], "b": ["g1", "g2"]})
        mc = plan.message_counts(N_RANKS)
        assert mc["n_fields"] == 5.0
        assert mc["coalesced_messages_per_edge"] == 1.0
        assert mc["per_field_messages_per_edge"] == 5.0
        assert mc["message_reduction"] == 5.0
        assert mc["per_field_messages_per_rank_max"] == 5 * mc["coalesced_messages_per_rank_max"]
        # The rearranger's pricing agrees on the granularity axis.
        rc = Rearranger(router).message_counts(N_RANKS, n_fields=5)
        assert rc["field_messages_per_rank_max"] == mc["per_field_messages_per_rank_max"]
        assert rc["bundle_messages_per_rank_max"] == mc["coalesced_messages_per_rank_max"]

    def test_plan_obs_counters(self, maps, router):
        src, dst = maps
        bundles = _bundles()
        n_fields = sum(len(b) for b in bundles.values())
        plan = RearrangePlan.compile(router, {n: list(b) for n, b in bundles.items()})
        obs = Obs()

        def program(comm):
            srcs = {n: _local(b, src, comm.rank) for n, b in bundles.items()}
            plan.execute(
                comm, srcs, len(dst.local_indices(comm.rank)), obs=obs.fork(comm.rank)
            )

        world = SimWorld(N_RANKS, timeout=5.0)
        world.run(program)
        totals = {}
        for h in obs.all_ranks():
            for name in h.metrics.names():
                m = h.metrics.get(name)
                if m.kind == "counter":
                    totals[name] = totals.get(name, 0) + m.value
        assert totals["cpl.plan.calls"] == N_RANKS
        assert totals["cpl.plan.messages"] == world.ledger.p2p_messages
        assert totals["cpl.plan.messages_saved"] == (
            totals["cpl.plan.messages"] * (n_fields - 1)
        )

    def test_plan_retries_transient_faults_bit_identical(self, maps, router):
        """The resilience contract survives coalescing: a transient fault
        on the coalesced edge is retried and the run stays bit-identical."""
        src, dst = maps
        bundles = _bundles()
        schema = {n: list(b) for n, b in bundles.items()}
        plan_clean = RearrangePlan.compile(router, schema)
        plan_faulted = RearrangePlan.compile(router, schema, max_retries=3)

        def make_program(plan, obs):
            def program(comm):
                srcs = {n: _local(b, src, comm.rank) for n, b in bundles.items()}
                out = plan.execute(
                    comm, srcs, len(dst.local_indices(comm.rank)),
                    obs=obs.fork(comm.rank) if obs is not None else None,
                )
                return {n: av.data.copy() for n, av in out.items()}
            return program

        clean = SimWorld(N_RANKS, timeout=5.0).run(make_program(plan_clean, None))

        obs = Obs()
        fault_plan = FaultPlan(comm=[
            CommFault(kind="transient", src=0, dst=3, match=0, times=2)])
        world = SimWorld(
            N_RANKS, timeout=5.0, faults=CommFaultInjector(fault_plan, obs=obs))
        faulted = world.run(make_program(plan_faulted, obs))

        for a, b in zip(faulted, clean):
            for name in bundles:
                assert np.array_equal(a[name], b[name])
        retries = sum(
            h.metrics.get("resilience.retries").value
            for h in obs.all_ranks()
            if "resilience.retries" in h.metrics.names()
        )
        assert retries == 2

    def test_mixed_none_sources_rejected(self, router):
        plan = RearrangePlan.compile(router, {"a": ["f"], "b": ["g"]})

        def program(comm):
            srcs = {"a": AttrVect.from_dict({"f": np.zeros(PER_RANK)}), "b": None}
            with pytest.raises(ValueError, match="all present or all None"):
                plan._pack(srcs)
            with pytest.raises(KeyError, match="missing source bundle"):
                plan._pack({"a": None})
            return True

        assert all(SimWorld(N_RANKS, timeout=5.0).run(program))


class TestCouplerCache:
    def test_miss_then_hit(self, tmp_path, maps):
        src, dst = maps
        cache = CouplerCache(tmp_path)
        r1 = cache.get_router("g1", "g2", src, dst)
        assert (cache.hits, cache.misses) == (0, 1)
        r2 = cache.get_router("g1", "g2", src, dst)
        assert (cache.hits, cache.misses) == (1, 1)
        assert r2.n_pairs == r1.n_pairs
        for key in r1.send:
            assert np.array_equal(r2.send[key], r1.send[key])
            assert np.array_equal(r2.recv[key], r1.recv[key])
        assert cache.build_time_saved_s >= 0.0
        stats = cache.stats()
        assert stats["hits"] == 1.0 and stats["entries"] >= 1.0

    def test_gsmap_roundtrip(self, tmp_path):
        owners = np.arange(12) % 3
        cache = CouplerCache(tmp_path)
        g1 = cache.get_gsmap("grid", owners)
        g2 = cache.get_gsmap("grid", owners)
        assert (cache.hits, cache.misses) == (1, 1)
        assert np.array_equal(g1.owner_array(), g2.owner_array())

    def test_grid_id_differentiates(self, tmp_path):
        owners = np.arange(8) % 2
        cache = CouplerCache(tmp_path)
        cache.get_gsmap("atm", owners)
        cache.get_gsmap("ocn", owners)
        assert cache.misses == 2

    def test_elastic_shrink_invalidates(self, tmp_path, maps):
        """The stale-table hazard the key design removes: after a rank
        failure rewrites the owner arrays, the pre-failure Router cannot
        be served — the new content hashes to a different key."""
        src, dst = maps
        cache = CouplerCache(tmp_path)
        cache.get_router("cpl", "ocn", src, dst)
        # Shrink-the-world repair: rank 3 dies, its points redistribute.
        owners = dst.owner_array()
        shrunk = GlobalSegMap.from_owners(np.where(owners == 3, 0, owners))
        cache.get_router("cpl", "ocn", src, shrunk)
        assert cache.misses == 2 and cache.hits == 0
        # The original decomposition still hits its own entry.
        cache.get_router("cpl", "ocn", src, dst)
        assert cache.hits == 1

    def test_obs_counters(self, tmp_path, maps):
        src, dst = maps
        obs = Obs()
        cache = CouplerCache(tmp_path, obs=obs)
        cache.get_router("a", "b", src, dst)
        cache.get_router("a", "b", src, dst)
        assert obs.metrics.get("coupler.cache.misses").value == 1
        assert obs.metrics.get("coupler.cache.hits").value == 1
        assert "coupler.cache.build_time_saved" in obs.metrics.names()


class TestFieldRegistryEdges:
    def test_unknown_path_raises(self):
        reg = FieldRegistry()
        with pytest.raises(KeyError, match="unknown path"):
            reg.pruned("nope")
        with pytest.raises(KeyError, match="unknown path"):
            reg.n_used("nope")

    def test_empty_registration(self):
        reg = FieldRegistry()
        reg.register("empty", [])
        assert reg.pruned("empty") == []
        assert reg.n_used("empty") == 0
        s = reg.savings("empty", lsize=100)
        assert s["fraction_saved"] == 0.0  # an empty path saves nothing
        assert s["bytes_before"] == 0.0

    def test_all_pruned(self):
        reg = FieldRegistry()
        reg.register("p", ["a", "b", "c"])
        assert reg.pruned("p") == []
        assert reg.n_used("p") == 0
        assert reg.savings("p", lsize=10)["fraction_saved"] == 1.0

    def test_nothing_pruned(self):
        reg = FieldRegistry()
        reg.register("p", ["a", "b"])
        reg.mark_used("p", ["b", "a"])
        assert reg.pruned("p") == ["a", "b"]  # registration order
        assert reg.savings("p", lsize=10)["fraction_saved"] == 0.0


class TestCoupledExchange:
    @pytest.fixture()
    def registry(self):
        reg = FieldRegistry()
        reg.register("o2x", ["sst", "u", "v", "ssh", "freezing"])
        reg.mark_used("o2x", ["sst", "freezing"])
        return reg

    def test_round_trip_preserves_dtype_and_shape(self, registry):
        ex = CoupledExchange(registry)
        values = {
            "sst": np.random.default_rng(0).normal(size=(4, 3)),
            "u": np.arange(12, dtype=np.float32).reshape(4, 3),
            "v": np.zeros((4, 3)),
            "ssh": np.ones(12),
            "freezing": np.array([True, False, True] * 4),
        }
        out = ex.transfer("o2x", values)
        assert set(out) == set(values)
        for name, arr in values.items():
            assert out[name].dtype == np.asarray(arr).dtype, name
            assert out[name].shape == np.asarray(arr).shape, name
            assert np.array_equal(out[name], arr), name

    def test_pruning_drops_unused_exactly(self, registry):
        ex = CoupledExchange(registry, prune=True)
        values = {n: np.full(6, i, dtype=float)
                  for i, n in enumerate(registry.registered["o2x"])}
        values["freezing"] = np.array([True] * 6)
        out = ex.transfer("o2x", values)
        assert sorted(out) == ["freezing", "sst"]
        assert np.array_equal(out["sst"], values["sst"])
        assert np.array_equal(out["freezing"], values["freezing"])
        rep = ex.report()["o2x"]
        assert rep["fields_pruned"] == 3
        assert rep["bytes_saved"] == 3 * 6 * 8

    def test_unknown_path_and_fields_rejected(self, registry):
        ex = CoupledExchange(registry)
        with pytest.raises(KeyError, match="unknown coupling path"):
            ex.transfer("a2x", {})
        with pytest.raises(KeyError, match="unregistered fields"):
            ex.transfer("o2x", {"sst": np.zeros(3), "freezing": np.zeros(3),
                                "bogus": np.zeros(3)})

    def test_missing_used_field_rejected(self, registry):
        ex = CoupledExchange(registry)
        with pytest.raises(KeyError, match="missing used fields"):
            ex.transfer("o2x", {"sst": np.zeros(3)})  # no freezing

    def test_registered_unused_field_may_be_absent(self, registry):
        """Optional diagnostics the producer did not emit are tolerated —
        they would not survive pruning anyway."""
        ex = CoupledExchange(registry)
        out = ex.transfer("o2x", {"sst": np.zeros(3), "freezing": np.zeros(3, bool)})
        assert sorted(out) == ["freezing", "sst"]

    def test_obs_counters(self, registry):
        obs = Obs()
        ex = CoupledExchange(registry, prune=True, obs=obs)
        values = {"sst": np.zeros(5), "freezing": np.ones(5, bool),
                  "u": np.zeros(5)}
        ex.transfer("o2x", values)
        assert obs.metrics.get("coupler.exchange.transfers").value == 1
        assert obs.metrics.get("coupler.exchange.fields").value == 2
        assert obs.metrics.get("coupler.exchange.fields_pruned").value == 1


class TestDriverFastPath:
    """The driver wiring: pruning is bitwise-neutral on surviving fields,
    a warm cache skips Router.build, and coupler_report tells the story."""

    CFG = dict(atm_level=2, ocn_nlon=24, ocn_nlat=16, ocn_levels=4)

    @staticmethod
    def _run(tmp_path=None, prune=False, obs=None, couplings=6):
        from repro.esm import AP3ESM, AP3ESMConfig

        cfg = AP3ESMConfig(
            **TestDriverFastPath.CFG,
            prune_fields=prune,
            coupler_cache_dir=str(tmp_path) if tmp_path is not None else None,
        )
        m = AP3ESM(cfg, obs=obs)
        m.init()
        m.run_couplings(couplings)
        return m

    def test_pruning_is_bitwise_neutral(self):
        base = self._run(prune=False)
        pruned = self._run(prune=True)
        assert np.array_equal(base.atm.swe.h, pruned.atm.swe.h)
        assert np.array_equal(base.ocn.t, pruned.ocn.t)
        assert np.array_equal(base.ocn.u, pruned.ocn.u)
        assert np.array_equal(base.ice.thickness, pruned.ice.thickness)
        assert np.array_equal(base.lnd.tskin, pruned.lnd.tskin)
        # But the pruned run genuinely moved fewer bytes.
        assert pruned.exchange.report()["a2x"]["bytes_saved"] > 0
        assert sorted(pruned._o2x) == sorted(pruned.fields.pruned("o2x"))

    def test_warm_cache_skips_router_build(self, tmp_path):
        cold_obs = Obs()
        cold = self._run(tmp_path, obs=cold_obs, couplings=2)
        assert cold.coupler_cache.misses > 0
        assert cold.coupler_cache.hits == 0

        warm_obs = Obs()
        warm = self._run(tmp_path, obs=warm_obs, couplings=2)
        assert warm.coupler_cache.misses == 0
        assert warm.coupler_cache.hits == cold.coupler_cache.misses
        # The obs ledger records the skip (the acceptance counter).
        assert warm_obs.metrics.get("coupler.cache.hits").value == warm.coupler_cache.hits
        assert "coupler.cache.hits" not in cold_obs.metrics.names()
        assert np.array_equal(cold.ocn.t, warm.ocn.t)

    def test_compiled_plans_and_report(self, tmp_path):
        m = self._run(tmp_path, prune=True, couplings=2)
        assert set(m.plans) == {"x2o", "o2x"}
        report = m.coupler_report()
        assert set(report) >= {"exchange", "pruning", "cache", "plans"}
        for name, plan in m.plans.items():
            mc = report["plans"][name]
            assert mc["message_reduction"] == plan.n_fields
            assert mc["message_reduction"] >= 4.0
        # Pruned plans carry only used fields.
        assert plan_fields(m.plans["x2o"]) == tuple(m.fields.pruned("x2o"))
        o2x = m.plans["o2x"]
        assert o2x.bundle_fields("o2x") == tuple(m.fields.pruned("o2x"))
        assert o2x.bundle_fields("i2x") == tuple(m.fields.pruned("i2x"))

    def test_driver_registry_matches_components(self):
        m = self._run(couplings=1)
        assert m.fields.n_used("x2o") == len(m.fields.registered["x2o"])
        assert 0 < m.fields.n_used("a2x") < len(m.fields.registered["a2x"])
        savings = m.coupler_report()["pruning"]
        assert savings["a2x"]["fraction_saved"] > 0


def plan_fields(plan):
    return plan.bundle_fields(plan.bundles[0][0])


class TestCLIGrouping:
    """run-coupled flags are organized into stable argument groups; this
    snapshot (by introspection, not help text) is the satellite's test."""

    def _groups(self, command="run-coupled"):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, __import__("argparse")._SubParsersAction)
        )
        run = sub.choices[command]
        groups = {}
        for g in run._action_groups:
            opts = sorted(
                s for a in g._group_actions for s in a.option_strings
            )
            if opts:
                groups[g.title] = opts
        return groups

    def test_group_snapshot(self):
        groups = self._groups()
        assert set(groups) >= {"core", "precision", "resilience", "coupler",
                               "observability"}
        assert groups["coupler"] == ["--coupler-cache", "--prune-fields"]
        assert "--precision" in groups["precision"]
        assert "--trace" in groups["observability"]
        assert {"--days", "--atm-level", "--ocn-nlon",
                "--backend", "--backend-workers"} <= set(groups["core"])
        assert {"--checkpoint-every", "--faults"} <= set(groups["resilience"])

    def test_run_ensemble_group_snapshot(self):
        """run-ensemble reuses run-coupled's shared groups verbatim and
        adds its own 'ensemble' group (no resilience: chaos/checkpoints
        don't compose with multi-member sessions yet)."""
        coupled = self._groups("run-coupled")
        ens = self._groups("run-ensemble")
        assert set(ens) >= {"core", "ensemble", "precision", "coupler",
                            "observability"}
        assert "resilience" not in ens
        for shared in ("core", "precision", "coupler", "observability"):
            assert ens[shared] == coupled[shared]
        assert ens["ensemble"] == ["--batch-physics", "--members",
                                   "--perturb-amplitude", "--perturb-seed"]

    def test_run_ensemble_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run-ensemble"])
        assert args.members == 2
        assert args.perturb_seed == 0
        assert args.perturb_amplitude == 1e-3
        assert args.batch_physics is False
        args = build_parser().parse_args(
            ["run-ensemble", "--members", "4", "--batch-physics",
             "--perturb-seed", "9"])
        assert (args.members, args.perturb_seed, args.batch_physics) == \
            (4, 9, True)

    def test_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run-coupled", "--days", "1"])
        assert args.coupler_cache is None
        assert args.prune_fields is False
        args = build_parser().parse_args(
            ["run-coupled", "--coupler-cache", "/tmp/c", "--prune-fields"])
        assert args.coupler_cache == "/tmp/c"
        assert args.prune_fields is True
