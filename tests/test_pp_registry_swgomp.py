"""Tests for the hash-based kernel registry, hybrid dispatch, and SWGOMP."""

import numpy as np
import pytest

from repro.pp import (
    CPECluster,
    HybridDispatcher,
    KernelRegistry,
    Serial,
    kernel_hash,
    target,
)


def _axpy(idx, y, a, x):
    y[idx] += a * x[idx]


class TestKernelRegistry:
    def test_register_and_lookup(self):
        reg = KernelRegistry()
        h = reg.register(_axpy)
        assert reg.lookup(h) is _axpy
        assert h in reg
        assert len(reg) == 1

    def test_hash_is_stable(self):
        assert kernel_hash(_axpy) == kernel_hash(_axpy)

    def test_reregistration_idempotent(self):
        reg = KernelRegistry()
        h1 = reg.register(_axpy)
        h2 = reg.register(_axpy)
        assert h1 == h2
        assert len(reg) == 1

    def test_collision_detected(self):
        reg = KernelRegistry()
        reg.register(_axpy)
        # Forge a different function with an identical identity string.
        def _axpy2(idx, y, a, x):  # noqa: ANN001
            pass

        _axpy2.__module__ = _axpy.__module__
        _axpy2.__qualname__ = _axpy.__qualname__
        with pytest.raises(ValueError, match="hash collision"):
            reg.register(_axpy2)

    def test_unknown_handle(self):
        reg = KernelRegistry()
        with pytest.raises(KeyError, match="no kernel registered"):
            reg.lookup(0xDEAD)

    def test_launch_by_handle(self):
        reg = KernelRegistry()
        h = reg.register(_axpy)
        y = np.zeros(100)
        x = np.ones(100)
        reg.launch(CPECluster(8), h, 100, y, 2.0, x)
        assert np.all(y == 2.0)

    def test_decorator_form(self):
        reg = KernelRegistry()

        @reg.kernel
        def scale(idx, y):
            y[idx] *= 3.0

        y = np.ones(10)
        reg.launch(Serial(), kernel_hash(scale), 10, y)
        assert np.all(y == 3.0)


class TestHybridDispatcher:
    def test_split_partitions_range(self):
        d = HybridDispatcher(Serial(), CPECluster(64), device_fraction=0.8)
        host, dev = d.split(100)
        assert len(dev) == 80 and len(host) == 20
        assert np.array_equal(np.sort(np.concatenate([host, dev])), np.arange(100))

    def test_run_covers_everything(self):
        d = HybridDispatcher(Serial(), CPECluster(64), device_fraction=0.7)
        out = np.zeros(1000)
        d.run(1000, lambda idx: out.__setitem__(idx, 1.0))
        assert np.all(out == 1.0)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            HybridDispatcher(Serial(), CPECluster(), device_fraction=1.5)

    def test_balanced_fraction_optimal(self):
        """The balanced split's modeled time must beat lopsided splits."""
        host, dev = Serial(), CPECluster(64)
        d = HybridDispatcher(host, dev).rebalanced()
        n, fpi = 1_000_000, 100.0
        t_bal = d.modeled_time(fpi, n)
        for frac in (0.5, 0.99, 1.0):
            other = HybridDispatcher(host, dev, device_fraction=frac)
            assert t_bal <= other.modeled_time(fpi, n) + 1e-12

    def test_device_dominates_balanced_fraction(self):
        d = HybridDispatcher(Serial(), CPECluster(64))
        # 64 CPEs at 11 GF vs 1 MPE lane at 3.2 GF: fraction near 1.
        assert 0.98 < d.balanced_fraction() < 1.0


class TestSWGOMP:
    def test_offload_matches_host_execution(self):
        @target(schedule="static")
        def relax(u, f):
            u += 0.25 * f

        u1 = np.zeros((100, 4))
        u2 = np.zeros((100, 4))
        f = np.random.default_rng(0).standard_normal((100, 4))
        relax(u1, f)  # plain host call
        relax.offload(CPECluster(16), u2, f)
        assert np.array_equal(u1, u2)

    def test_offload_writes_through_views(self):
        @target()
        def bump(x):
            x += 1.0

        x = np.zeros(37)
        bump.offload(CPECluster(8), x)
        assert np.all(x == 1.0)

    def test_chunked_schedule(self):
        @target(schedule="chunked", chunk=10)
        def fill(x):
            x[:] = 5.0

        x = np.zeros(95)
        fill.offload(Serial(), x)
        assert np.all(x == 5.0)
        assert fill.stats.chunks == 10  # ceil(95/10)
        assert fill.stats.rows == 95
        assert fill.stats.offloads == 1

    def test_leading_extent_mismatch(self):
        @target()
        def op(a, b):
            a += b

        with pytest.raises(ValueError, match="leading"):
            op.offload(Serial(), np.zeros(4), np.zeros(5))

    def test_validate_passes_for_conflict_free(self):
        @target()
        def ok(x):
            x *= 2.0

        x = np.arange(10.0)
        ok.offload(CPECluster(4), x, validate=True)
        assert np.array_equal(x, np.arange(10.0) * 2)

    def test_validate_catches_conflict(self):
        @target()
        def bad(x):
            # Writes depend on the full array: NOT conflict-free.
            x[:] = x.sum()

        x = np.arange(10.0)
        with pytest.raises(RuntimeError, match="not conflict-free"):
            bad.offload(CPECluster(4), x, validate=True)

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError):
            target(schedule="dynamic")(lambda x: None)
        with pytest.raises(ValueError):
            target(schedule="chunked")(lambda x: None)


class TestHybridDispatcherSplitRatios:
    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 0.9, 1.0])
    def test_split_ratio_honoured(self, fraction):
        d = HybridDispatcher(Serial(), CPECluster(64), device_fraction=fraction)
        n = 1000
        host, dev = d.split(n)
        assert len(dev) == int(round(n * fraction))
        assert len(host) == n - len(dev)
        # Disjoint cover of range(n), device block first.
        assert np.array_equal(
            np.concatenate([dev, host]), np.arange(n, dtype=np.int64)
        )

    def test_extreme_fractions_still_run_everything(self):
        for fraction in (0.0, 1.0):
            d = HybridDispatcher(
                Serial(), CPECluster(64), device_fraction=fraction
            )
            out = np.zeros(137)
            d.run(137, lambda idx: out.__setitem__(idx, out[idx] + 1.0))
            assert np.all(out == 1.0)

    def test_split_empty_range(self):
        d = HybridDispatcher(Serial(), CPECluster(64), device_fraction=0.5)
        host, dev = d.split(0)
        assert len(host) == 0 and len(dev) == 0
        d.run(0, lambda idx: (_ for _ in ()).throw(AssertionError))


class TestRegistryMDRangeLaunch:
    def test_launch_dispatches_mdrange_kernels(self):
        """launch() forwards one index array per MDRange dimension plus
        the bound arguments (the coupled components' tiled kernels)."""
        from repro.pp import MDRangePolicy

        reg = KernelRegistry()

        def scale2d(yi, xi, out, factor):
            out[np.ix_(yi, xi)] *= factor

        handle = reg.register(scale2d)
        out = np.ones((6, 8))
        reg.launch(
            Serial(), handle, MDRangePolicy((6, 8), tile=(2, 4)), out, 3.0
        )
        assert np.all(out == 3.0)
