"""Tests for the LICOMK++-style portable ocean kernels: bit-identical to
the plain-numpy solvers on every execution space, with and without
non-ocean-point compression (the §5.3 x §5.2.2 composition)."""

import numpy as np
import pytest

from repro.ocn import BaroclinicSolver, CGridMetrics, Compressor, MixingParams, canuto_kappa, linear_eos
from repro.ocn.kernels import OCEAN_KERNELS, run_canuto, run_eos, run_pressure
from repro.pp import CPECluster, GPUDevice, HostThreads, Serial

SPACES = [Serial(), HostThreads(4), CPECluster(64), GPUDevice(512)]
IDS = [s.name for s in SPACES]


@pytest.fixture(scope="module")
def fields(tripolar_small):
    mask3d = tripolar_small.levels_mask()
    rng = np.random.default_rng(0)
    t = np.where(mask3d, 5.0 + 20.0 * rng.random(mask3d.shape), 0.0)
    s = np.where(mask3d, 34.0 + 2.0 * rng.random(mask3d.shape), 0.0)
    return tripolar_small, mask3d, t, s


@pytest.mark.parametrize("space", SPACES, ids=IDS)
def test_eos_matches_reference(fields, space):
    _, _, t, s = fields
    assert np.array_equal(run_eos(space, t, s), linear_eos(t, s))


@pytest.mark.parametrize("space", SPACES, ids=IDS)
def test_eos_compressed_matches_on_wet_points(fields, space):
    _, mask3d, t, s = fields
    comp = Compressor(mask3d)
    packed = run_eos(space, t, s, compressor=comp)
    ref = linear_eos(t, s)
    assert np.array_equal(packed[mask3d], ref[mask3d])


@pytest.mark.parametrize("space", SPACES, ids=IDS)
def test_canuto_matches_reference(fields, space):
    rng = np.random.default_rng(1)
    ri = rng.standard_normal((10, 40, 60)) * 2.0
    prm = MixingParams()
    assert np.array_equal(run_canuto(space, ri, prm), canuto_kappa(ri, prm))


def test_canuto_compressed(fields):
    _, mask3d, _, _ = fields
    rng = np.random.default_rng(2)
    ri = rng.standard_normal(mask3d.shape)
    comp = Compressor(mask3d)
    packed = run_canuto(Serial(), ri, compressor=comp)
    ref = canuto_kappa(ri)
    assert np.array_equal(packed[mask3d], ref[mask3d])


@pytest.mark.parametrize("space", SPACES, ids=IDS)
def test_pressure_matches_baroclinic_solver(fields, space):
    grid, mask3d, t, s = fields
    metrics = CGridMetrics.build(grid)
    dz = np.diff(grid.z_interfaces)
    solver = BaroclinicSolver(metrics, mask3d, dz)
    ref = solver.pressure(t, s)
    got = run_pressure(space, t, s, dz)
    assert np.allclose(got, ref, rtol=1e-12, atol=1e-6)


def test_all_spaces_agree_bitwise(fields):
    _, _, t, s = fields
    results = [run_eos(space, t, s) for space in SPACES]
    for r in results[1:]:
        assert np.array_equal(r, results[0])


def test_kernels_are_registered():
    """The hash registry holds every ocean kernel (the §5.3 mechanism)."""
    assert len(OCEAN_KERNELS) >= 3


class TestBackendSelection:
    """§5.1.1's implementation portfolio: pick the backend per machine."""

    def test_sunway_selects_athread(self):
        from repro.machine import sunway_oceanlight
        from repro.pp import select_backend

        label, space = select_backend(sunway_oceanlight())
        assert label == "athread"
        assert space.name == "CPECluster"
        assert space.lanes == 64

    def test_orise_selects_hip(self):
        from repro.machine import orise
        from repro.pp import select_backend

        label, space = select_backend(orise())
        assert label == "hip"
        assert space.name == "GPUDevice"

    def test_selected_backend_runs_the_kernels(self, fields):
        """Whatever the portfolio picks, the kernels produce the reference
        answer — the point of performance portability."""
        from repro.machine import orise, sunway_oceanlight
        from repro.pp import select_backend

        _, _, t, s = fields
        ref = linear_eos(t, s)
        for machine in (sunway_oceanlight(), orise()):
            _, space = select_backend(machine)
            assert np.array_equal(run_eos(space, t, s), ref)

    def test_portfolio_labels_documented(self):
        from repro.pp import BACKEND_PORTFOLIO

        assert {"athread", "hip", "kokkos-host", "serial"} <= set(BACKEND_PORTFOLIO)


def test_ocn_backends_shim_removed():
    """The PR-5 deprecation cycle is complete: the old
    ``repro.ocn.backends`` names now raise a hard error that points the
    caller at ``repro.pp`` instead of forwarding with a warning."""
    import importlib
    import warnings

    from repro.ocn import backends as shim

    with pytest.raises(ImportError, match=r"repro\.pp"):
        shim.select_backend
    with pytest.raises(ImportError, match=r"BACKEND_PORTFOLIO"):
        shim.BACKEND_PORTFOLIO
    with pytest.raises(ImportError):
        from repro.ocn.backends import select_backend  # noqa: F401
    with pytest.raises(AttributeError):
        shim.not_a_backend_name
    # The removed names no longer advertise themselves.
    assert "select_backend" not in dir(importlib.import_module("repro.ocn.backends"))
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # plain module import stays silent
        importlib.reload(shim)

