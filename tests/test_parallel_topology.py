"""Tests for communication-topology analysis and rank remapping."""

import numpy as np
import pytest

from repro.parallel import (
    Placement,
    comm_graph_from_matrix,
    greedy_locality_mapping,
    traffic_split,
)


def _ring_matrix(p, nbytes=100):
    mat = np.zeros((p, p), dtype=np.int64)
    for r in range(p):
        mat[r, (r + 1) % p] = nbytes
    return mat


def test_comm_graph_symmetrizes():
    g = comm_graph_from_matrix(_ring_matrix(4))
    assert g.number_of_nodes() == 4
    assert g.number_of_edges() == 4
    assert g.edges[0, 1]["bytes"] == 100


def test_comm_graph_rejects_nonsquare():
    with pytest.raises(ValueError):
        comm_graph_from_matrix(np.zeros((2, 3)))


def test_block_placement_levels():
    p = Placement.block(n_ranks=8, ranks_per_node=2, nodes_per_supernode=2)
    assert p.node_of[0] == p.node_of[1] == 0
    assert p.supernode_of(0) == 0
    assert p.supernode_of(4) == 1


def test_traffic_split_classification():
    g = comm_graph_from_matrix(_ring_matrix(8))
    p = Placement.block(8, ranks_per_node=2, nodes_per_supernode=2)
    split = traffic_split(g, p)
    total = sum(split.values())
    assert total == 8 * 100
    # Pairs (0,1),(2,3),(4,5),(6,7) are intra-node: 4 edges.
    assert split["intra_node"] == 400
    # Edge (1,2) stays in supernode 0, (5,6) in supernode 1.
    assert split["intra_supernode"] == 200
    # Edges (3,4) and (7,0) cross supernodes.
    assert split["inter_supernode"] == 200


def test_greedy_mapping_localizes_cliques():
    """Two 4-cliques with a weak bridge: greedy mapping must put each
    clique on its own node, removing all heavy inter-node traffic."""
    p = 8
    mat = np.zeros((p, p), dtype=np.int64)
    for group in (range(0, 4), range(4, 8)):
        for a in group:
            for b in group:
                if a < b:
                    mat[a, b] = 1000
    mat[3, 4] = 1  # weak bridge
    g = comm_graph_from_matrix(mat)

    placement = greedy_locality_mapping(g, n_nodes=2, ranks_per_node=4,
                                        nodes_per_supernode=1)
    split = traffic_split(g, placement)
    assert split["intra_node"] == 12 * 1000
    assert split["inter_supernode"] + split["intra_supernode"] == 1


def test_greedy_mapping_beats_stride_placement():
    """On a 1-D chain, consecutive packing (which greedy recovers) beats a
    round-robin placement."""
    p = 16
    g = comm_graph_from_matrix(_ring_matrix(p, nbytes=10))
    greedy = greedy_locality_mapping(g, n_nodes=4, ranks_per_node=4,
                                     nodes_per_supernode=4)
    stride = Placement(node_of=np.arange(p) % 4, nodes_per_supernode=4)
    g_split = traffic_split(g, greedy)
    s_split = traffic_split(g, stride)
    assert g_split["intra_node"] > s_split["intra_node"]


def test_greedy_mapping_capacity_check():
    g = comm_graph_from_matrix(np.zeros((8, 8), dtype=np.int64))
    with pytest.raises(ValueError):
        greedy_locality_mapping(g, n_nodes=1, ranks_per_node=4)


def test_greedy_mapping_places_every_rank():
    rng = np.random.default_rng(3)
    mat = rng.integers(0, 50, size=(12, 12))
    np.fill_diagonal(mat, 0)
    g = comm_graph_from_matrix(mat)
    placement = greedy_locality_mapping(g, n_nodes=4, ranks_per_node=3)
    assert set(placement.node_of.tolist()) == {0, 1, 2, 3}
    assert np.all(np.bincount(placement.node_of) == 3)
