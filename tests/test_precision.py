"""Tests for group-wise scaling mixed precision and acceptance metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision import (
    GRIST_REL_L2_THRESHOLD,
    LICOM_RMSD_THRESHOLDS,
    GroupScaled32,
    Precision,
    PrecisionPolicy,
    area_weighted_rmsd,
    evaluate_licom_acceptance,
    quantize_roundtrip_error,
    relative_l2,
)


class TestGroupScaled32:
    def test_roundtrip_error_bounded_by_fp32_eps(self):
        rng = np.random.default_rng(0)
        field = rng.standard_normal((50, 40)) * 1e5
        err = quantize_roundtrip_error(field, group_size=64)
        assert err < 1.2e-7  # ~2^-23

    def test_handles_large_offsets_better_than_plain_fp32(self):
        """The group-scaling point: a pressure-like field (1e5 + small
        anomalies) keeps its anomalies; note both stay within FP32 eps of
        the *absolute* value — the win appears when groups are local and
        anomaly-dominated."""
        rng = np.random.default_rng(1)
        anomalies = rng.standard_normal(4096)
        field = anomalies * 1e-3  # tiny dynamic field
        gs_err = np.abs(GroupScaled32.encode(field, 64).decode() - field).max()
        assert gs_err < 1e-9  # relative to ~1e-3 group maxima

    def test_zero_field(self):
        gs = GroupScaled32.encode(np.zeros(100))
        assert np.array_equal(gs.decode(), np.zeros(100))

    def test_shape_preserved(self):
        field = np.arange(60.0).reshape(3, 4, 5)
        assert GroupScaled32.encode(field, 7).decode().shape == (3, 4, 5)

    def test_ragged_group_padding(self):
        field = np.arange(10.0)  # not a multiple of group_size
        gs = GroupScaled32.encode(field, group_size=4)
        assert np.allclose(gs.decode(), field, rtol=1e-6)

    def test_compression_ratio_about_half(self):
        gs = GroupScaled32.encode(np.ones(64 * 100), group_size=64)
        assert gs.compression_ratio() == pytest.approx(0.5 + 1 / 64 / 8, rel=0.05)

    def test_bad_group_size(self):
        with pytest.raises(ValueError):
            GroupScaled32.encode(np.ones(4), group_size=0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=64),
    )
    def test_roundtrip_property(self, n, group):
        rng = np.random.default_rng(n * 1000 + group)
        field = rng.standard_normal(n) * 10.0 ** rng.integers(-6, 6)
        back = GroupScaled32.encode(field, group).decode()
        scale = np.abs(field).max() if n else 1.0
        assert np.abs(back - field).max() <= 1.5e-7 * max(scale, 1e-300)


class TestPolicy:
    def test_fp64_untouched(self):
        policy = PrecisionPolicy({"area": Precision.FP64})
        state = {"area": np.array([1.0 / 3.0])}
        out = policy.apply(state)
        assert out["area"][0] == state["area"][0]

    def test_fp32_loses_precision(self):
        policy = PrecisionPolicy({"x": Precision.FP32})
        state = {"x": np.array([1.0 + 1e-12])}
        out = policy.apply(state)
        assert out["x"][0] == 1.0  # the 1e-12 is below FP32 resolution

    def test_groupscaled_beats_fp32_on_offset_fields(self):
        rng = np.random.default_rng(2)
        pressure = 1.0e5 + rng.standard_normal(256)
        p32 = PrecisionPolicy({"p": Precision.FP32})
        pgs = PrecisionPolicy({"p": Precision.FP32_GROUPSCALED}, group_size=32)
        e32 = np.abs(p32.apply({"p": pressure})["p"] - pressure).max()
        egs = np.abs(pgs.apply({"p": pressure})["p"] - pressure).max()
        assert egs <= e32 * 1.5  # never meaningfully worse
        assert egs < 0.02  # absolute: cm-scale on a 1e5 field

    def test_default_is_fp64(self):
        policy = PrecisionPolicy()
        assert policy.precision_of("anything") is Precision.FP64

    def test_memory_report(self):
        policy = PrecisionPolicy({"a": Precision.FP32, "b": Precision.FP64})
        state = {"a": np.zeros(1000), "b": np.zeros(1000)}
        rep = policy.memory_report(state)
        assert rep["bytes_fp64"] == 16000
        assert rep["bytes_mixed"] == 12000
        assert rep["saving_fraction"] == pytest.approx(0.25)


class TestMetrics:
    def test_relative_l2_basics(self):
        ref = np.array([3.0, 4.0])
        assert relative_l2(ref, ref) == 0.0
        assert relative_l2(np.array([3.0, 4.0 + 0.05]), ref) == pytest.approx(0.01)
        with pytest.raises(ValueError):
            relative_l2(np.zeros(2), np.zeros(2))
        with pytest.raises(ValueError):
            relative_l2(np.zeros(2), np.zeros(3))

    def test_area_weighted_rmsd_uniform_equals_plain(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        area = np.ones((8, 8))
        plain = float(np.sqrt(np.mean((a - b) ** 2)))
        assert area_weighted_rmsd(a, b, area) == pytest.approx(plain)

    def test_area_weighting_downweights_small_cells(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 0.0]])  # error only in the first cell
        small_first = np.array([[1.0, 99.0]])
        big_first = np.array([[99.0, 1.0]])
        assert area_weighted_rmsd(a, b, small_first) < area_weighted_rmsd(a, b, big_first)

    def test_mask_restricts_region(self):
        a = np.zeros((2, 2))
        b = np.array([[5.0, 0.0], [0.0, 0.0]])
        area = np.ones((2, 2))
        mask = np.array([[False, True], [True, True]])
        assert area_weighted_rmsd(a, b, area, mask) == 0.0

    def test_thresholds_match_paper(self):
        assert GRIST_REL_L2_THRESHOLD == 0.05
        assert LICOM_RMSD_THRESHOLDS == {
            "temperature": 0.018, "salinity": 0.0098, "ssh": 0.0005
        }

    def test_evaluate_licom_acceptance(self):
        rng = np.random.default_rng(4)
        area = np.ones((4, 4))
        days = 5
        ref_t = [rng.standard_normal((4, 4)) for _ in range(days)]
        ref_s = [rng.standard_normal((4, 4)) for _ in range(days)]
        ref_h = [rng.standard_normal((4, 4)) for _ in range(days)]
        # Perturb within thresholds.
        t = [r + 1e-3 for r in ref_t]
        s = [r + 1e-3 for r in ref_s]
        h = [r + 1e-4 for r in ref_h]
        reports = evaluate_licom_acceptance(t, s, h, ref_t, ref_s, ref_h, area)
        assert all(r.passed for r in reports.values())
        # And a failing case.
        bad = [r + 1.0 for r in ref_t]
        reports = evaluate_licom_acceptance(bad, s, h, ref_t, ref_s, ref_h, area)
        assert not reports["temperature"].passed

    def test_acceptance_mismatched_days(self):
        area = np.ones((2, 2))
        with pytest.raises(ValueError):
            evaluate_licom_acceptance(
                [np.zeros((2, 2))], [np.zeros((2, 2))], [np.zeros((2, 2))],
                [], [], [], area,
            )
