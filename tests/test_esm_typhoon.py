"""Tests for the idealized typhoon experiment (Figs. 6/7 machinery)."""

import math

import numpy as np
import pytest

from repro.atm import GristConfig, GristModel
from repro.esm import (
    AP3ESM,
    AP3ESMConfig,
    HollandVortex,
    TyphoonExperiment,
    VortexTracker,
    inject_vortex,
    track_distance,
)

VORTEX = HollandVortex(
    center_lon=math.radians(135.0), center_lat=math.radians(18.0),
    v_max=40.0, r_max=5.0e5,
)


class TestHollandProfile:
    def test_wind_peaks_at_rmax(self):
        r = np.linspace(1e4, 2e6, 400)
        v = VORTEX.wind(r)
        assert r[np.argmax(v)] == pytest.approx(VORTEX.r_max, rel=0.02)
        assert v.max() == pytest.approx(VORTEX.v_max, rel=1e-3)

    def test_wind_decays_far_away(self):
        assert VORTEX.wind(np.array([3.0e6]))[0] < 0.4 * VORTEX.v_max

    def test_depression_negative_and_monotone(self):
        f = 2.0 * 7.292e-5 * math.sin(VORTEX.center_lat)
        r = np.linspace(1e4, 3e6, 50)
        d = VORTEX.height_depression(r, f)
        assert np.all(d <= 0)
        assert np.all(np.diff(d) >= -1e-9)  # fills in outward
        assert d[0] < -5.0  # a real depression at the core


class TestInjection:
    @pytest.fixture(scope="class")
    def atm(self):
        m = GristModel(GristConfig(level=4))
        m.init()
        return m

    def test_injection_deepens_height_at_center(self, atm):
        h_before = atm.swe.h.copy()
        inject_vortex(atm, VORTEX)
        from repro.grids import lonlat_to_xyz

        c = lonlat_to_xyz(np.array(VORTEX.center_lon), np.array(VORTEX.center_lat))
        center = int(np.argmax(atm.grid.xyz_cell @ c))
        assert atm.swe.h[center] < h_before[center] - 1.0
        # Far side of the planet barely touched.
        far = int(np.argmin(atm.grid.xyz_cell @ c))
        assert abs(atm.swe.h[far] - h_before[far]) < 0.5

    def test_injection_spins_cyclonically(self, atm):
        """Vorticity at the center must be strongly positive (NH)."""
        from repro.grids import lonlat_to_xyz, trsk

        zeta = trsk.curl(atm.grid, atm.swe.u)
        c = lonlat_to_xyz(np.array(VORTEX.center_lon), np.array(VORTEX.center_lat))
        near = (atm.grid.xyz_dual @ c) > math.cos(1.0e6 / 6.371e6)
        assert zeta[near].max() > 5e-5


class TestExperiment:
    @pytest.fixture(scope="class")
    def experiment(self):
        model = AP3ESM(AP3ESMConfig(atm_level=4, ocn_nlon=64, ocn_nlat=48, ocn_levels=8))
        model.init()
        exp = TyphoonExperiment(model, VORTEX)
        exp.run(12)  # 12 hours
        return exp

    def test_track_has_fixes(self, experiment):
        track = experiment.tracker.track()
        assert len(track) == 13
        assert np.all(np.diff(track[:, 0]) > 0)  # time increases

    def test_tracker_starts_at_injection_point(self, experiment):
        first = experiment.tracker.fixes[0]
        assert abs(first.lon - VORTEX.center_lon) < math.radians(6.0)
        assert abs(first.lat - VORTEX.center_lat) < math.radians(6.0)

    def test_storm_moves_poleward(self, experiment):
        """Beta drift: NH storms drift poleward (and generally westward)."""
        track = experiment.tracker.track()
        assert track[-1, 2] > track[0, 2]

    def test_intensity_positive_and_decaying_slowly(self, experiment):
        track = experiment.tracker.track()
        assert track[0, 3] > 20.0  # initial winds well above background
        assert np.all(track[:, 3] > 0)

    def test_structure_snapshot_fields(self, experiment):
        snap = experiment.structure_snapshot()
        assert snap["wind10m"].shape == (experiment.model.atm.grid.n_cells,)
        assert snap["rossby"].shape == experiment.model.ocn.metrics.shape

    def test_eye_metrics(self, experiment):
        em = experiment.eye_metrics()
        assert em["eye_radius_km"] > 0
        assert em["max_wind"] > 0

    def test_ocean_cooled_under_storm(self, experiment):
        from repro.esm import cold_wake

        cw = cold_wake(
            experiment.sst_before,
            experiment.model.ocn.t[0],
            experiment.model.ocn.mask3d[0],
        )
        assert cw["max_cooling"] > 0.0


class TestTrackDistance:
    def test_identical_tracks_zero(self):
        track = np.array([[0.0, 1.0, 0.5, 30.0], [1.0, 1.1, 0.6, 28.0]])
        assert track_distance(track, track) == 0.0

    def test_known_separation(self):
        a = np.array([[0.0, 0.0, 0.0, 0.0]])
        b = np.array([[0.0, math.pi / 2, 0.0, 0.0]])  # 90 deg apart on equator
        assert track_distance(a, b) == pytest.approx(6371.0 * math.pi / 2, rel=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            track_distance(np.empty((0, 4)), np.empty((0, 4)))
