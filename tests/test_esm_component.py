"""Tests for the Component protocol, the shared ComponentContext, the
task-domain scheduler, and the model-wide precision policy."""

import numpy as np
import pytest

from repro.esm import (
    AP3ESM,
    AP3ESMConfig,
    Component,
    ComponentContext,
    TaskDomain,
    TaskDomainScheduler,
    default_mixed_policy,
    paper_layout,
    precision_policy,
)
from repro.precision import Precision

TINY = dict(atm_level=3, ocn_nlon=48, ocn_nlat=32, ocn_levels=5)


@pytest.fixture(scope="module")
def serial_model():
    m = AP3ESM(AP3ESMConfig(**TINY))
    m.init()
    m.run_couplings(12)
    return m


class TestComponentProtocol:
    def test_all_four_components_conform(self, serial_model):
        for comp in serial_model.components:
            assert isinstance(comp, Component), comp.name
        assert [c.name for c in serial_model.components] == [
            "atm", "ocn", "ice", "lnd"
        ]

    def test_one_shared_kernel_table(self, serial_model):
        """Every component registered its kernels into ONE hash registry
        (atm 5 + ocn 3 + ice 1 + lnd 1)."""
        assert len(serial_model.ctx.kernels) == 10

    def test_state_set_state_roundtrip(self, serial_model):
        for comp in serial_model.components:
            state = comp.state()
            assert state, comp.name
            copied = {k: np.array(v, copy=True) for k, v in state.items()}
            comp.set_state(copied)
            after = comp.state()
            for key, value in copied.items():
                assert np.array_equal(after[key], value), f"{comp.name}.{key}"

    def test_context_namespaces_state(self, serial_model):
        keys = serial_model.ctx.namespaced_state(serial_model.ocn)
        assert all(k.startswith("ocn.") for k in keys)
        assert "ocn.t" in keys


class TestTaskDomainScheduler:
    def test_layout_matches_paper(self, serial_model):
        domains = serial_model.task_domains()
        assert domains["domain1"]["members"] == ["cpl", "atm", "ice", "lnd"]
        assert domains["domain2"]["members"] == ["ocn"]
        assert domains == paper_layout()

    def test_serial_launch_runs_immediately(self):
        sched = TaskDomainScheduler(concurrent=False)
        ran = []
        handle = sched.launch("domain2", lambda obs: ran.append(1) or "out")
        assert ran == [1]          # executed before result() was asked for
        assert handle.done()
        assert handle.result() == "out"

    def test_concurrent_launch_runs_on_worker_thread(self):
        import threading

        sched = TaskDomainScheduler(concurrent=True)
        try:
            main = threading.current_thread().name
            handle = sched.launch(
                "domain2", lambda obs: threading.current_thread().name
            )
            assert handle.result() != main
            sched.drain()
        finally:
            sched.shutdown()

    def test_launch_exception_surfaces_at_join(self):
        sched = TaskDomainScheduler(concurrent=True)
        try:
            def boom(obs):
                raise RuntimeError("ocean blew up")

            handle = sched.launch("domain2", boom)
            with pytest.raises(RuntimeError, match="ocean blew up"):
                handle.result()
        finally:
            sched.shutdown()

    def test_unknown_domain_rejected(self):
        sched = TaskDomainScheduler(concurrent=False)
        with pytest.raises(KeyError):
            sched.execute("domain9", lambda obs: None)

    def test_duplicate_domain_names_rejected(self):
        dup = (TaskDomain("d", ("a",)), TaskDomain("d", ("b",)))
        with pytest.raises(ValueError):
            TaskDomainScheduler(dup)


class TestConcurrentSchedule:
    def test_concurrent_bitwise_identical_to_serial(self, serial_model):
        """§5.1.2 with lagged coupling: threading the ocean domain must
        not change a single bit of any component's state."""
        conc = AP3ESM(AP3ESMConfig(concurrent_domains=True, **TINY))
        conc.init()
        conc.run_couplings(12)
        for comp_s, comp_c in zip(serial_model.components, conc.components):
            for key, value in comp_s.state().items():
                assert np.array_equal(value, comp_c.state()[key]), (
                    f"{comp_s.name}.{key}"
                )
        assert conc.ocn.n_steps == serial_model.ocn.n_steps

    def test_procs_backend_bitwise_identical_to_serial(self, serial_model):
        """The ProcPool tentpole end-to-end: fanning every component
        kernel across worker processes must not change a single bit of
        any component's state."""
        procs = AP3ESM(AP3ESMConfig(backend="procs", backend_workers=2, **TINY))
        procs.init()
        try:
            procs.run_couplings(12)
            for comp_s, comp_p in zip(serial_model.components, procs.components):
                for key, value in comp_s.state().items():
                    assert np.array_equal(value, comp_p.state()[key]), (
                        f"{comp_s.name}.{key}"
                    )
            stats = procs.pool_stats()
            assert stats is not None
            assert stats.workers == 2
            assert stats.dispatches > 0  # kernels really crossed the pool
        finally:
            procs.finalize()

    def test_explicit_space_wins_over_config_backend(self):
        from repro.pp import HostThreads

        space = HostThreads(4)
        m = AP3ESM(AP3ESMConfig(backend="procs", **TINY), space=space)
        m.init()
        assert m.ctx.space is space
        assert m.pool_stats() is None  # no config-owned pool was built

    def test_ocean_gets_private_timers_when_concurrent(self):
        m = AP3ESM(AP3ESMConfig(concurrent_domains=True, **TINY))
        m.init()
        assert m.ocn.timers is not m.timers
        s = AP3ESM(AP3ESMConfig(**TINY))
        s.init()
        assert s.ocn.timers is s.timers


class TestPrecisionCoupled:
    def test_policy_names(self):
        assert not precision_policy("fp64").assignments
        assert precision_policy("mixed").assignments
        with pytest.raises(ValueError):
            precision_policy("fp16")

    def test_mixed_run_stays_physical_and_reports_groups(self):
        """The §5.2.3 policy exercised by the coupled driver: FP32 groups
        appear in the ledger and the climate stays physical."""
        m = AP3ESM(AP3ESMConfig(precision="mixed", **TINY))
        m.init()
        m.run_couplings(12)
        rep = m.memory_report()
        assert rep["n_fp32_groupscaled"] >= 2
        assert rep["n_fp32"] >= 8
        assert 0.0 < rep["saving_fraction"] < 1.0
        assert rep["bytes_mixed"] < rep["bytes_fp64"]
        wet = m.ocn.mask3d
        assert np.isfinite(m.ocn.t[wet]).all()
        assert m.ocn.t[wet].min() >= -1.8 - 1e-3
        assert 170.0 < m.atm.tskin.min() and m.atm.tskin.max() < 345.0

    def test_apply_precision_roundtrip_through_coupled_step(self, serial_model):
        """apply() through GroupScale is a projection: a second pass over
        already-rounded state is bitwise idempotent, and the first pass
        stays within FP32 relative error of the FP64 state."""
        ctx = ComponentContext(precision=default_mixed_policy())
        ocn = serial_model.ocn
        before = {k: np.array(v, copy=True) for k, v in ocn.state().items()}
        try:
            ctx.apply_precision(ocn)
            once = {k: np.array(v, copy=True) for k, v in ocn.state().items()}
            ctx.apply_precision(ocn)
            twice = ocn.state()
            for key in once:
                assert np.array_equal(once[key], twice[key]), key
                scale = np.max(np.abs(before[key])) or 1.0
                assert np.max(np.abs(once[key] - before[key])) <= 1e-5 * scale
        finally:
            ocn.set_state(before)

    def test_fp64_policy_is_identity(self, serial_model):
        ctx = ComponentContext(precision=precision_policy("fp64"))
        ice = serial_model.ice
        before = {k: np.array(v, copy=True) for k, v in ice.state().items()}
        ctx.apply_precision(ice)
        for key, value in before.items():
            assert np.array_equal(ice.state()[key], value)

    def test_default_mixed_policy_keeps_accumulators_fp64(self):
        policy = default_mixed_policy()
        assert policy.precision_of("lnd.runoff_total") is Precision.FP64
        assert policy.precision_of("ocn.t") is Precision.FP32_GROUPSCALED


class TestKernelMetricsSurface:
    def test_traced_run_records_kernel_activity(self):
        """Satellite: pp KernelStats flow into repro.obs — a traced
        coupled step shows per-kernel launch counters and iteration
        histograms."""
        from repro.obs import Obs

        obs = Obs()
        m = AP3ESM(AP3ESMConfig(**TINY), obs=obs)
        m.init()
        m.run_couplings(2)
        names = set(obs.metrics.names())
        for kernel in ("atm.radiation", "ice.thermo", "lnd.bucket"):
            assert f"pp.{kernel}.launches" in names
            assert f"pp.{kernel}.iterations" in names
        assert obs.metrics.counter("pp.ice.thermo.launches").value == 2

    def test_null_obs_run_records_nothing(self, serial_model):
        assert serial_model.obs.enabled is False
