"""Tests for spherical geometry primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grids import (
    arc_length,
    lonlat_to_xyz,
    normalize,
    spherical_triangle_area,
    tangent_basis,
    triangle_circumcenter,
    xyz_to_lonlat,
)

unit = st.floats(min_value=-1.0, max_value=1.0)


def test_normalize_unit_length():
    v = np.array([[3.0, 4.0, 0.0], [0.0, 0.0, 2.0]])
    n = normalize(v)
    assert np.allclose(np.linalg.norm(n, axis=-1), 1.0)


def test_normalize_zero_raises():
    with pytest.raises(ValueError):
        normalize(np.zeros(3))


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=-math.pi, max_value=math.pi),
    st.floats(min_value=-math.pi / 2 + 0.01, max_value=math.pi / 2 - 0.01),
)
def test_lonlat_roundtrip(lon, lat):
    xyz = lonlat_to_xyz(np.array(lon), np.array(lat))
    lon2, lat2 = xyz_to_lonlat(xyz)
    assert float(lat2) == pytest.approx(lat, abs=1e-12)
    # Longitudes compare modulo 2*pi.
    assert math.cos(float(lon2) - lon) == pytest.approx(1.0, abs=1e-12)


def test_arc_length_quarter_circle():
    a = np.array([1.0, 0.0, 0.0])
    b = np.array([0.0, 1.0, 0.0])
    assert arc_length(a, b) == pytest.approx(math.pi / 2)
    assert arc_length(a, a) == pytest.approx(0.0)
    assert arc_length(a, -a) == pytest.approx(math.pi)


def test_octant_triangle_area():
    # One octant of the sphere has area 4*pi/8 = pi/2.
    a = np.array([1.0, 0.0, 0.0])
    b = np.array([0.0, 1.0, 0.0])
    c = np.array([0.0, 0.0, 1.0])
    assert spherical_triangle_area(a, b, c) == pytest.approx(math.pi / 2)


def test_small_triangle_area_matches_planar():
    # A tiny triangle's spherical area approaches its planar area.
    eps = 1e-4
    a = normalize(np.array([1.0, 0.0, 0.0]))
    b = normalize(np.array([1.0, eps, 0.0]))
    c = normalize(np.array([1.0, 0.0, eps]))
    planar = 0.5 * eps * eps
    assert spherical_triangle_area(a, b, c) == pytest.approx(planar, rel=1e-3)


def test_circumcenter_equidistant():
    rng = np.random.default_rng(5)
    pts = normalize(rng.standard_normal((10, 3, 3)))
    cc = triangle_circumcenter(pts[:, 0], pts[:, 1], pts[:, 2])
    d0 = arc_length(cc, pts[:, 0])
    d1 = arc_length(cc, pts[:, 1])
    d2 = arc_length(cc, pts[:, 2])
    assert np.allclose(d0, d1, atol=1e-10)
    assert np.allclose(d1, d2, atol=1e-10)


def test_circumcenter_same_hemisphere_as_centroid():
    rng = np.random.default_rng(6)
    # Small triangles near a random point: circumcenter must be near them.
    base = normalize(rng.standard_normal(3))
    pts = normalize(base + 0.01 * rng.standard_normal((20, 3, 3)))
    cc = triangle_circumcenter(pts[:, 0], pts[:, 1], pts[:, 2])
    assert np.all(np.sum(cc * base, axis=-1) > 0.9)


def test_tangent_basis_orthonormal():
    rng = np.random.default_rng(7)
    p = normalize(rng.standard_normal((50, 3)))
    east, north = tangent_basis(p)
    assert np.allclose(np.sum(east * p, axis=-1), 0.0, atol=1e-12)
    assert np.allclose(np.sum(north * p, axis=-1), 0.0, atol=1e-12)
    assert np.allclose(np.sum(east * north, axis=-1), 0.0, atol=1e-12)
    assert np.allclose(np.linalg.norm(east, axis=-1), 1.0)
    assert np.allclose(np.linalg.norm(north, axis=-1), 1.0)


def test_tangent_basis_at_pole():
    east, north = tangent_basis(np.array([0.0, 0.0, 1.0]))
    assert np.allclose(np.linalg.norm(east), 1.0)
    assert np.allclose(np.dot(east, north), 0.0)


def test_tangent_basis_points_east_and_north():
    # At (lon=0, lat=0): east = +y, north = +z.
    p = lonlat_to_xyz(np.array(0.0), np.array(0.0))
    east, north = tangent_basis(p)
    assert np.allclose(east, [0.0, 1.0, 0.0], atol=1e-12)
    assert np.allclose(north, [0.0, 0.0, 1.0], atol=1e-12)
