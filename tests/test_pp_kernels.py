"""Tests for space-polymorphic parallel dispatch (the §5.3 portability claim:
identical results on every execution space)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pp import (
    CPECluster,
    GPUDevice,
    HostThreads,
    KernelStats,
    MDRangePolicy,
    Serial,
    parallel_for,
    parallel_reduce,
    parallel_scan,
)

SPACES = [Serial(), HostThreads(4), CPECluster(64), GPUDevice(256)]


@pytest.mark.parametrize("space", SPACES, ids=lambda s: s.name)
def test_parallel_for_covers_range(space):
    n = 1000
    out = np.zeros(n)

    def body(idx):
        out[idx] = idx * 2.0

    parallel_for(space, n, body)
    assert np.array_equal(out, np.arange(n) * 2.0)


def test_all_spaces_bit_identical():
    """The portability contract: the same kernel on every space produces
    bit-identical output."""
    n = 777
    x = np.linspace(0.0, 1.0, n)
    results = []
    for space in SPACES:
        out = np.zeros(n)

        def body(idx):
            out[idx] = np.sin(x[idx]) * np.exp(-x[idx])

        parallel_for(space, n, body)
        results.append(out.copy())
    for r in results[1:]:
        assert np.array_equal(r, results[0])


def test_chunks_partition_disjoint():
    space = CPECluster(64)
    seen = np.zeros(1000, dtype=int)
    for chunk in space.chunks(1000):
        seen[chunk] += 1
    assert np.all(seen == 1)


def test_chunks_fewer_iterations_than_lanes():
    space = GPUDevice(4096)
    chunks = list(space.chunks(10))
    total = np.concatenate(chunks)
    assert np.array_equal(np.sort(total), np.arange(10))


def test_chunks_zero_iterations():
    assert list(Serial().chunks(0)) == []


@pytest.mark.parametrize("space", SPACES, ids=lambda s: s.name)
def test_parallel_reduce_sum(space):
    n = 500
    x = np.arange(n, dtype=float)
    total = parallel_reduce(space, n, lambda idx: x[idx].sum())
    assert total == pytest.approx(x.sum())


def test_parallel_reduce_deterministic_across_spaces():
    """FP sums must agree bit-for-bit across spaces with equal lane counts
    and remain deterministic per space."""
    rng = np.random.default_rng(7)
    x = rng.standard_normal(10_000) * 1e8
    space = CPECluster(64)
    a = parallel_reduce(space, len(x), lambda idx: x[idx].sum())
    b = parallel_reduce(space, len(x), lambda idx: x[idx].sum())
    assert a == b


def test_parallel_reduce_max_combine():
    x = np.array([3.0, 9.0, 1.0, 7.0])
    space = HostThreads(2)
    result = parallel_reduce(space, 4, lambda idx: x[idx].max(), combine=np.maximum)
    assert result == 9.0


def test_parallel_reduce_empty_raises():
    with pytest.raises(ValueError):
        parallel_reduce(Serial(), 0, lambda idx: 0.0)


def test_mdrange_tiles_cover_space():
    policy = MDRangePolicy(extents=(5, 7, 3), tile=(2, 3, 3))
    covered = np.zeros((5, 7, 3), dtype=int)
    for tile in policy.tiles():
        covered[np.ix_(*tile)] += 1
    assert np.all(covered == 1)
    assert policy.n_iterations == 5 * 7 * 3


def test_mdrange_default_tile_is_pencils():
    policy = MDRangePolicy(extents=(4, 6))
    assert policy.effective_tile == (1, 6)
    assert len(policy.tiles()) == 4


def test_mdrange_validation():
    with pytest.raises(ValueError):
        MDRangePolicy(extents=())
    with pytest.raises(ValueError):
        MDRangePolicy(extents=(4, 4), tile=(2,))
    with pytest.raises(ValueError):
        MDRangePolicy(extents=(4, 4), tile=(0, 2))


def test_mdrange_parallel_for_matches_dense():
    nz, ny = 6, 8
    a = np.zeros((nz, ny))
    policy = MDRangePolicy(extents=(nz, ny), tile=(2, 4))

    def body(kz, jy):
        a[np.ix_(kz, jy)] = kz[:, None] * 100.0 + jy[None, :]

    parallel_for(Serial(), policy, body)
    kz, jy = np.mgrid[0:nz, 0:ny]
    assert np.array_equal(a, kz * 100.0 + jy)


def test_tile_profiling():
    policy = MDRangePolicy(extents=(5, 5), tile=(2, 2))
    prof = parallel_for(Serial(), policy, lambda a, b: None, profile=True)
    assert prof is not None
    assert prof.n_tiles == 9  # ceil(5/2)^2
    assert prof.total_iterations == 25
    assert prof.imbalance > 1.0  # edge tiles are smaller


def test_kernel_stats_accumulate():
    stats = KernelStats()
    parallel_for(Serial(), 10, lambda idx: None, stats=stats)
    parallel_for(Serial(), 20, lambda idx: None, stats=stats)
    assert stats.launches == 2
    assert stats.iterations == 30


@pytest.mark.parametrize("space", SPACES, ids=lambda s: s.name)
def test_parallel_scan_matches_numpy(space):
    rng = np.random.default_rng(0)
    x = rng.integers(0, 100, 333).astype(float)
    got = parallel_scan(space, len(x), x)
    want = np.concatenate([[0.0], np.cumsum(x)[:-1]])
    assert np.allclose(got, want)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=300), st.integers(min_value=1, max_value=128))
def test_scan_property_any_size_any_lanes(n, lanes):
    x = np.ones(n)
    got = parallel_scan(HostThreads(lanes), n, x)
    assert np.array_equal(got, np.arange(n, dtype=float))


def test_modeled_time_monotone_in_flops():
    space = CPECluster(64)
    assert space.modeled_time(1e9) < space.modeled_time(2e9)
    with pytest.raises(ValueError):
        space.modeled_time(-1.0)


def test_parallel_scan_empty_range():
    """n=0 is a legal launch: empty output, no chunk work, stats recorded."""
    stats = KernelStats()
    for space in SPACES:
        got = parallel_scan(space, 0, np.zeros(0), stats=stats)
        assert got.shape == (0,)
    assert stats.launches == len(SPACES)
    assert stats.iterations == 0


def test_parallel_scan_single_element():
    for space in SPACES:
        got = parallel_scan(space, 1, np.array([7.5]))
        assert np.array_equal(got, np.array([0.0]))


def test_parallel_scan_fewer_elements_than_lanes():
    """A single occupied tile (every other lane's chunk empty) must not
    perturb the serial prefix sum."""
    x = np.array([3.0, 1.0, 4.0])
    got = parallel_scan(CPECluster(64), 3, x)
    assert np.array_equal(got, np.array([0.0, 3.0, 4.0]))


def test_parallel_scan_vector_values():
    """Scan over per-row vectors (the rearranger offset pattern)."""
    x = np.arange(12, dtype=float).reshape(6, 2)
    got = parallel_scan(GPUDevice(4), 6, x)
    want = np.cumsum(x, axis=0) - x
    assert np.array_equal(got, want)


def test_mdrange_single_tile_covers_everything():
    """A tile as big as the space degenerates to one launch index."""
    policy = MDRangePolicy((5, 7), tile=(5, 7))
    tiles = policy.tiles()
    assert len(tiles) == 1
    out = np.zeros((5, 7))

    def body(yi, xi):
        out[np.ix_(yi, xi)] += 1.0

    parallel_for(Serial(), policy, body)
    assert np.all(out == 1.0)
