"""Tests for space-polymorphic parallel dispatch (the §5.3 portability claim:
identical results on every execution space)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pp import (
    BoundKernel,
    CPECluster,
    GPUDevice,
    HostThreads,
    KernelStats,
    MDRangePolicy,
    ProcPool,
    Serial,
    parallel_for,
    parallel_reduce,
    parallel_scan,
)

SPACES = [Serial(), HostThreads(4), CPECluster(64), GPUDevice(256)]


@pytest.mark.parametrize("space", SPACES, ids=lambda s: s.name)
def test_parallel_for_covers_range(space):
    n = 1000
    out = np.zeros(n)

    def body(idx):
        out[idx] = idx * 2.0

    parallel_for(space, n, body)
    assert np.array_equal(out, np.arange(n) * 2.0)


def test_all_spaces_bit_identical():
    """The portability contract: the same kernel on every space produces
    bit-identical output."""
    n = 777
    x = np.linspace(0.0, 1.0, n)
    results = []
    for space in SPACES:
        out = np.zeros(n)

        def body(idx):
            out[idx] = np.sin(x[idx]) * np.exp(-x[idx])

        parallel_for(space, n, body)
        results.append(out.copy())
    for r in results[1:]:
        assert np.array_equal(r, results[0])


def test_chunks_partition_disjoint():
    space = CPECluster(64)
    seen = np.zeros(1000, dtype=int)
    for chunk in space.chunks(1000):
        seen[chunk] += 1
    assert np.all(seen == 1)


def test_chunks_fewer_iterations_than_lanes():
    space = GPUDevice(4096)
    chunks = list(space.chunks(10))
    total = np.concatenate(chunks)
    assert np.array_equal(np.sort(total), np.arange(10))


def test_chunks_zero_iterations():
    assert list(Serial().chunks(0)) == []


@pytest.mark.parametrize("space", SPACES, ids=lambda s: s.name)
def test_parallel_reduce_sum(space):
    n = 500
    x = np.arange(n, dtype=float)
    total = parallel_reduce(space, n, lambda idx: x[idx].sum())
    assert total == pytest.approx(x.sum())


def test_parallel_reduce_deterministic_across_spaces():
    """FP sums must agree bit-for-bit across spaces with equal lane counts
    and remain deterministic per space."""
    rng = np.random.default_rng(7)
    x = rng.standard_normal(10_000) * 1e8
    space = CPECluster(64)
    a = parallel_reduce(space, len(x), lambda idx: x[idx].sum())
    b = parallel_reduce(space, len(x), lambda idx: x[idx].sum())
    assert a == b


def test_parallel_reduce_max_combine():
    x = np.array([3.0, 9.0, 1.0, 7.0])
    space = HostThreads(2)
    result = parallel_reduce(space, 4, lambda idx: x[idx].max(), combine=np.maximum)
    assert result == 9.0


def test_parallel_reduce_empty_raises():
    with pytest.raises(ValueError):
        parallel_reduce(Serial(), 0, lambda idx: 0.0)


def test_mdrange_tiles_cover_space():
    policy = MDRangePolicy(extents=(5, 7, 3), tile=(2, 3, 3))
    covered = np.zeros((5, 7, 3), dtype=int)
    for tile in policy.tiles():
        covered[np.ix_(*tile)] += 1
    assert np.all(covered == 1)
    assert policy.n_iterations == 5 * 7 * 3


def test_mdrange_default_tile_is_pencils():
    policy = MDRangePolicy(extents=(4, 6))
    assert policy.effective_tile == (1, 6)
    assert len(policy.tiles()) == 4


def test_mdrange_validation():
    with pytest.raises(ValueError):
        MDRangePolicy(extents=())
    with pytest.raises(ValueError):
        MDRangePolicy(extents=(4, 4), tile=(2,))
    with pytest.raises(ValueError):
        MDRangePolicy(extents=(4, 4), tile=(0, 2))


def test_mdrange_parallel_for_matches_dense():
    nz, ny = 6, 8
    a = np.zeros((nz, ny))
    policy = MDRangePolicy(extents=(nz, ny), tile=(2, 4))

    def body(kz, jy):
        a[np.ix_(kz, jy)] = kz[:, None] * 100.0 + jy[None, :]

    parallel_for(Serial(), policy, body)
    kz, jy = np.mgrid[0:nz, 0:ny]
    assert np.array_equal(a, kz * 100.0 + jy)


def test_tile_profiling():
    policy = MDRangePolicy(extents=(5, 5), tile=(2, 2))
    prof = parallel_for(Serial(), policy, lambda a, b: None, profile=True)
    assert prof is not None
    assert prof.n_tiles == 9  # ceil(5/2)^2
    assert prof.total_iterations == 25
    assert prof.imbalance > 1.0  # edge tiles are smaller


def test_kernel_stats_accumulate():
    stats = KernelStats()
    parallel_for(Serial(), 10, lambda idx: None, stats=stats)
    parallel_for(Serial(), 20, lambda idx: None, stats=stats)
    assert stats.launches == 2
    assert stats.iterations == 30


@pytest.mark.parametrize("space", SPACES, ids=lambda s: s.name)
def test_parallel_scan_matches_numpy(space):
    rng = np.random.default_rng(0)
    x = rng.integers(0, 100, 333).astype(float)
    got = parallel_scan(space, len(x), x)
    want = np.concatenate([[0.0], np.cumsum(x)[:-1]])
    assert np.allclose(got, want)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=300), st.integers(min_value=1, max_value=128))
def test_scan_property_any_size_any_lanes(n, lanes):
    x = np.ones(n)
    got = parallel_scan(HostThreads(lanes), n, x)
    assert np.array_equal(got, np.arange(n, dtype=float))


def test_modeled_time_monotone_in_flops():
    space = CPECluster(64)
    assert space.modeled_time(1e9) < space.modeled_time(2e9)
    with pytest.raises(ValueError):
        space.modeled_time(-1.0)


def test_parallel_scan_empty_range():
    """n=0 is a legal launch: empty output, no chunk work, stats recorded."""
    stats = KernelStats()
    for space in SPACES:
        got = parallel_scan(space, 0, np.zeros(0), stats=stats)
        assert got.shape == (0,)
    assert stats.launches == len(SPACES)
    assert stats.iterations == 0


def test_parallel_scan_single_element():
    for space in SPACES:
        got = parallel_scan(space, 1, np.array([7.5]))
        assert np.array_equal(got, np.array([0.0]))


def test_parallel_scan_fewer_elements_than_lanes():
    """A single occupied tile (every other lane's chunk empty) must not
    perturb the serial prefix sum."""
    x = np.array([3.0, 1.0, 4.0])
    got = parallel_scan(CPECluster(64), 3, x)
    assert np.array_equal(got, np.array([0.0, 3.0, 4.0]))


def test_parallel_scan_vector_values():
    """Scan over per-row vectors (the rearranger offset pattern)."""
    x = np.arange(12, dtype=float).reshape(6, 2)
    got = parallel_scan(GPUDevice(4), 6, x)
    want = np.cumsum(x, axis=0) - x
    assert np.array_equal(got, want)


def test_mdrange_single_tile_covers_everything():
    """A tile as big as the space degenerates to one launch index."""
    policy = MDRangePolicy((5, 7), tile=(5, 7))
    tiles = policy.tiles()
    assert len(tiles) == 1
    out = np.zeros((5, 7))

    def body(yi, xi):
        out[np.ix_(yi, xi)] += 1.0

    parallel_for(Serial(), policy, body)
    assert np.all(out == 1.0)


# -- empty-iteration-space semantics (the documented edge-case contract) ---


def test_mdrange_zero_extents_are_legal_and_produce_zero_tiles():
    """Zero extents pass validation (only negatives raise) and yield no
    tiles — the MDRange analogue of ``chunks(0)`` yielding no chunks."""
    for extents in [(0,), (0, 5), (5, 0), (3, 0, 4)]:
        policy = MDRangePolicy(extents=extents)
        assert policy.tiles() == []
        assert policy.n_iterations == 0
    with pytest.raises(ValueError, match="non-empty tuple of integers >= 0"):
        MDRangePolicy(extents=(3, -1))


@pytest.mark.parametrize("space", SPACES, ids=lambda s: s.name)
def test_parallel_for_empty_flat_and_mdrange_consistent(space):
    """A flat n=0 and a zero-extent MDRange both call the functor zero
    times (and never with an empty index array)."""
    calls = []
    parallel_for(space, 0, lambda idx: calls.append(len(idx)))
    parallel_for(space, MDRangePolicy((0, 4)), lambda a, b: calls.append(0))
    assert calls == []


@pytest.mark.parametrize("space", SPACES, ids=lambda s: s.name)
def test_parallel_reduce_empty_flat_and_mdrange_consistent(space):
    """Flat n=0 and zero-extent MDRange raise the same documented error."""
    with pytest.raises(ValueError, match="no reduction identity"):
        parallel_reduce(space, 0, lambda idx: 0.0)
    with pytest.raises(ValueError, match="no reduction identity"):
        parallel_reduce(space, MDRangePolicy((4, 0)), lambda a, b: 0.0)


def test_chunks_negative_raises():
    with pytest.raises(ValueError):
        list(Serial().chunks(-1))


# -- backend-parametrized bitwise identity, including the real ProcPool ----

def _bit_body(idx, out, x):
    out[idx] = np.sin(x[idx]) * np.exp(-x[idx])


def _bit_partial(idx, x):
    return x[idx].sum()


def _bit_tile(kz, jy, out):
    out[np.ix_(kz, jy)] = np.cos(kz[:, None] * 0.1) + jy[None, :] * 0.01


@pytest.fixture(scope="module")
def procpool():
    space = ProcPool(2)
    yield space
    space.runtime.shutdown()


@pytest.fixture(scope="module")
def all_backends(procpool):
    return SPACES + [procpool]


def test_for_reduce_scan_bitwise_across_all_backends(all_backends):
    """§5.1's validation property, now including a backend that really
    executes on separate processes: identical bits from every space."""
    rng = np.random.default_rng(11)
    n = 20_000
    x = rng.standard_normal(n)
    ref_out = None
    ref_sum = None
    ref_scan = None
    for space in all_backends:
        out = np.zeros(n)
        parallel_for(space, n, BoundKernel(_bit_body, (out, x)))
        total = parallel_reduce(space, n, BoundKernel(_bit_partial, (x,)))
        scanned = parallel_scan(space, n, x)
        if ref_out is None:
            ref_out, ref_sum, ref_scan = out, total, scanned
        else:
            assert np.array_equal(out, ref_out), space.name
            assert total == ref_sum, space.name
            assert np.array_equal(scanned, ref_scan), space.name


def test_mdrange_bitwise_across_all_backends(all_backends):
    policy = MDRangePolicy(extents=(24, 40), tile=(6, 40))
    ref = None
    for space in all_backends:
        out = np.zeros((24, 40))
        parallel_for(space, policy, BoundKernel(_bit_tile, (out,)))
        if ref is None:
            ref = out
        else:
            assert np.array_equal(out, ref), space.name


def test_reduce_non_commutative_combine_pins_order(all_backends):
    """combine(a, b) = a + 2b is order-sensitive: identical results on
    every backend prove the pairwise tree sees identical ordered partials."""
    rng = np.random.default_rng(12)
    x = rng.standard_normal(30_000)

    def combine(a, b):
        return a + 2.0 * b

    ref = None
    for space in all_backends:
        got = parallel_reduce(space, len(x), BoundKernel(_bit_partial, (x,)), combine=combine)
        if ref is None:
            ref = got
        else:
            assert got == ref, space.name


def test_empty_space_edges_on_procpool(procpool):
    """The n=0 / zero-extent contract holds on the process backend too."""
    parallel_for(procpool, 0, BoundKernel(_bit_body, (np.zeros(0), np.zeros(0))))
    with pytest.raises(ValueError, match="no reduction identity"):
        parallel_reduce(procpool, 0, BoundKernel(_bit_partial, (np.zeros(0),)))
    with pytest.raises(ValueError, match="no reduction identity"):
        parallel_reduce(procpool, MDRangePolicy((0, 3)), BoundKernel(_bit_partial, (np.zeros(0),)))
    assert parallel_scan(procpool, 0, np.zeros(0)).shape == (0,)
