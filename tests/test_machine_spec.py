"""Tests for machine specifications (published §6.3 hardware facts)."""

import pytest

from repro.machine import (
    CORES_PER_NODE,
    CPE_PROCESSOR,
    MPE_PROCESSOR,
    OCEANLIGHT_NODES,
    orise,
    sunway_oceanlight,
)


def test_oceanlight_published_core_count():
    m = sunway_oceanlight()
    # Paper: "more than 107520 nodes ... 41932800 cores".
    assert m.n_nodes == 107520
    assert m.total_cores == 41_932_800
    assert m.node.cores_per_node == CORES_PER_NODE == 390


def test_oceanlight_process_layout():
    m = sunway_oceanlight()
    # One process per CG: 6 per node, 65 cores each (1 MPE + 64 CPE).
    assert m.node.processes_per_node == 6
    assert m.node.cores_per_process == 65
    assert m.total_processes == 107520 * 6


def test_oceanlight_fat_tree_taper():
    net = sunway_oceanlight().network
    assert net.nodes_per_supernode == 256
    assert net.oversubscription == pytest.approx(256 / 48)
    assert net.effective_bandwidth(inter_supernode=True) < net.effective_bandwidth(
        inter_supernode=False
    )


def test_oceanlight_partition():
    m = sunway_oceanlight(5462)
    assert m.n_nodes == 5462
    assert m.processes_for_nodes(5462) == 5462 * 6
    with pytest.raises(ValueError):
        sunway_oceanlight(OCEANLIGHT_NODES + 1)
    with pytest.raises(ValueError):
        m.processes_for_nodes(10_000)


def test_cpe_vs_mpe_throughput_ratio():
    # The ~130x raw ratio underlies the paper's 84-184x end-to-end speedups.
    ratio = CPE_PROCESSOR.flops / MPE_PROCESSOR.flops
    assert 80 < ratio < 200


def test_orise_gpu_layout():
    m = orise()
    assert m.node.processes_per_node == 4  # one process per GPU
    assert m.node.staging_bw == pytest.approx(1.6e10)  # 16 GB/s PCIe
    assert m.network.bandwidth == pytest.approx(2.5e10)  # 25 GB/s network
    assert m.processes_for_nodes(4060 // 4 + 1) > 4060  # Table 2 scale fits


def test_orise_supports_16085_gpus():
    # Largest published ORISE run.
    assert orise().total_processes >= 16085


def test_with_processor_swaps_mode():
    m = sunway_oceanlight()
    host = m.with_processor(MPE_PROCESSOR)
    assert host.node.processor is MPE_PROCESSOR
    assert m.node.processor is CPE_PROCESSOR
