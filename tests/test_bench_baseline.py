"""Tests for the JSON perf-baseline regression gate."""

import math

import pytest

from repro.bench import PerfBaseline, compare_baselines, emit


def _doc(**values):
    doc = PerfBaseline(suite="t")
    for name, (value, kind) in values.items():
        doc.record(name, value, kind=kind)
    return doc


class TestPerfBaseline:
    def test_record_validates_kind(self):
        doc = PerfBaseline(suite="t")
        with pytest.raises(ValueError, match="kind"):
            doc.record("m", 1.0, kind="vibes")

    def test_json_roundtrip(self, tmp_path):
        doc = _doc(a=(3.0, "count"), b=(0.5, "model"), c=(12.0, "wall"))
        path = doc.write(tmp_path / "BENCH_t.json")
        loaded = PerfBaseline.from_file(path)
        assert loaded.suite == "t"
        assert loaded.metrics == doc.metrics

    def test_version_check(self):
        with pytest.raises(ValueError, match="version"):
            PerfBaseline.from_json('{"version": 99, "suite": "t", "metrics": {}}')


class TestCompare:
    def test_identical_passes(self):
        doc = _doc(a=(3.0, "count"), w=(10.0, "wall"))
        cmp = compare_baselines(doc, doc)
        assert cmp.ok
        assert cmp.checked == 1  # wall is informational, not gated

    def test_within_tolerance_passes(self):
        cur = _doc(a=(110.0, "count"))
        base = _doc(a=(100.0, "count"))
        assert compare_baselines(cur, base, tolerance=0.15).ok

    def test_regression_fails(self):
        cur = _doc(a=(130.0, "count"))
        base = _doc(a=(100.0, "count"))
        cmp = compare_baselines(cur, base, tolerance=0.15)
        assert not cmp.ok
        assert cmp.regressions[0].name == "a"
        assert cmp.regressions[0].rel_change == pytest.approx(0.30)
        assert "REGRESSION" in cmp.report()

    def test_symmetric_catches_improvements(self):
        """An unexplained 2x 'improvement' in a count metric means the
        benchmark stopped measuring what it used to — gate it."""
        cur = _doc(a=(50.0, "count"))
        base = _doc(a=(100.0, "count"))
        assert not compare_baselines(cur, base).ok
        assert compare_baselines(cur, base, symmetric=False).ok

    def test_wall_never_gates(self):
        cur = _doc(w=(1000.0, "wall"))
        base = _doc(w=(1.0, "wall"))
        cmp = compare_baselines(cur, base)
        assert cmp.ok
        assert cmp.informational[0].name == "w"

    def test_missing_metric_fails_new_metric_passes(self):
        cur = _doc(b=(1.0, "count"))
        base = _doc(a=(1.0, "count"))
        cmp = compare_baselines(cur, base)
        assert not cmp.ok
        assert cmp.missing == ["a"]
        assert cmp.added == ["b"]

    def test_zero_baseline_handled(self):
        assert compare_baselines(_doc(a=(0.0, "count")), _doc(a=(0.0, "count"))).ok
        cmp = compare_baselines(_doc(a=(5.0, "count")), _doc(a=(0.0, "count")))
        assert not cmp.ok

    def test_speedup_gates_floor_on_multicore_host(self):
        """speedup < 1x fails iff the current doc reports >1 host core."""
        base = _doc(s=(1.8, "speedup"), **{"host.cores": (4.0, "wall")})
        slow = _doc(s=(0.7, "speedup"), **{"host.cores": (4.0, "wall")})
        cmp = compare_baselines(slow, base)
        assert not cmp.ok
        assert cmp.regressions[0].name == "s"
        assert cmp.regressions[0].baseline == 1.0  # the floor, not the old value

    def test_speedup_informational_on_single_core_host(self):
        base = _doc(s=(1.8, "speedup"), **{"host.cores": (1.0, "wall")})
        slow = _doc(s=(0.7, "speedup"), **{"host.cores": (1.0, "wall")})
        cmp = compare_baselines(slow, base)
        assert cmp.ok
        assert "s" in [d.name for d in cmp.informational]

    def test_speedup_never_compared_against_committed_value(self):
        """A 10x-better machine must not trip the symmetric drift gate."""
        base = _doc(s=(1.1, "speedup"), **{"host.cores": (16.0, "wall")})
        fast = _doc(s=(11.0, "speedup"), **{"host.cores": (16.0, "wall")})
        assert compare_baselines(fast, base).ok

    def test_speedup_without_cores_metric_is_informational(self):
        base = _doc(s=(1.5, "speedup"))
        slow = _doc(s=(0.5, "speedup"))
        assert compare_baselines(slow, base).ok

    def test_cli_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        cur = _doc(a=(100.0, "count")).write(tmp_path / "cur.json")
        base = _doc(a=(100.0, "count")).write(tmp_path / "base.json")
        assert main(["perf-gate", str(cur), str(base)]) == 0
        assert "OK" in capsys.readouterr().out
        bad = _doc(a=(200.0, "count")).write(tmp_path / "bad.json")
        assert main(["perf-gate", str(bad), str(base)]) == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestDriftKind:
    """The calibration loop's metric kind: gated on the band, never on
    the committed value, with non-finite drift always failing."""

    def test_within_band_passes(self):
        cur = _doc(d=(0.3, "drift"))
        base = _doc(d=(-0.4, "drift"))
        cmp = compare_baselines(cur, base, drift_tolerance=0.5)
        assert cmp.ok
        assert cmp.checked == 1
        assert "within" in cmp.report()

    def test_exceeding_band_fails(self):
        cmp = compare_baselines(
            _doc(d=(0.6, "drift")), _doc(d=(0.0, "drift")), drift_tolerance=0.5
        )
        assert not cmp.ok
        assert "DRIFT" in cmp.report()

    def test_band_is_symmetric(self):
        assert not compare_baselines(
            _doc(d=(-0.6, "drift")), _doc(d=(0.0, "drift")), drift_tolerance=0.5
        ).ok

    def test_boundary_exactly_met_passes(self):
        assert compare_baselines(
            _doc(d=(0.5, "drift")), _doc(d=(0.0, "drift")), drift_tolerance=0.5
        ).ok
        assert compare_baselines(
            _doc(d=(-0.5, "drift")), _doc(d=(0.0, "drift")), drift_tolerance=0.5
        ).ok

    def test_non_finite_drift_always_fails(self):
        """NaN > tol is falsy — the gate must not pass silently."""
        for bad in (math.nan, math.inf, -math.inf):
            cmp = compare_baselines(
                _doc(d=(bad, "drift")), _doc(d=(0.0, "drift")),
                drift_tolerance=1e9,
            )
            assert not cmp.ok
            assert "non-finite" in cmp.report()

    def test_never_compared_against_committed_value(self):
        """A huge committed drift is documentation, not a target: a fresh
        near-zero drift passes even though the relative change is wild."""
        cur = _doc(d=(0.001, "drift"))
        base = _doc(d=(0.45, "drift"))
        assert compare_baselines(cur, base, tolerance=0.15).ok

    def test_drift_tolerance_validated(self):
        doc = _doc(d=(0.0, "drift"))
        with pytest.raises(ValueError, match="drift_tolerance"):
            compare_baselines(doc, doc, drift_tolerance=-0.1)
        with pytest.raises(ValueError, match="drift_tolerance"):
            compare_baselines(doc, doc, drift_tolerance=math.nan)

    def test_missing_drift_metric_still_fails(self):
        cmp = compare_baselines(_doc(), _doc(d=(0.0, "drift")))
        assert not cmp.ok
        assert cmp.missing == ["d"]

    def test_cli_drift_tolerance_flag(self, tmp_path, capsys):
        from repro.cli import main

        cur = _doc(d=(0.8, "drift")).write(tmp_path / "cur.json")
        base = _doc(d=(0.0, "drift")).write(tmp_path / "base.json")
        assert main(["perf-gate", str(cur), str(base)]) == 1
        capsys.readouterr()
        assert main(["perf-gate", str(cur), str(base),
                     "--drift-tolerance", "1.0"]) == 0
        assert "within" in capsys.readouterr().out


class TestEmit:
    def test_writes_named_file_and_roundtrips(self, tmp_path, capsys):
        doc = _doc(a=(3.0, "count"))
        out = emit(doc, tmp_path)
        assert out == tmp_path / "BENCH_t.json"
        assert PerfBaseline.from_file(out).metrics == doc.metrics
        assert f"[bench-json] {out}" in capsys.readouterr().out

    def test_stamps_host_cores_once(self, tmp_path):
        doc = _doc(a=(1.0, "count"))
        emit(doc, tmp_path, echo=False)
        assert doc.metrics["host.cores"]["kind"] == "wall"
        assert doc.metrics["host.cores"]["value"] >= 1.0

    def test_respects_existing_host_cores(self, tmp_path):
        doc = _doc(**{"host.cores": (64.0, "wall")})
        emit(doc, tmp_path, echo=False)
        assert doc.metrics["host.cores"]["value"] == 64.0

    def test_host_metadata_opt_out(self, tmp_path):
        doc = _doc(a=(1.0, "count"))
        emit(doc, tmp_path, host_metadata=False, echo=False)
        assert "host.cores" not in doc.metrics
