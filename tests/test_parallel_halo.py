"""Tests for structured and graph halo exchange against serial references."""

import numpy as np
import pytest

from repro.parallel import (
    Block2D,
    GraphHalo,
    SimWorld,
    StructuredHalo,
    local_with_halo,
)


def _global_field(ny, nx):
    j, i = np.mgrid[0:ny, 0:nx]
    return (j * 1000 + i).astype(np.float64)


def _run_structured(ny, nx, py, px, width, tripolar=False):
    """Run a halo exchange and return each rank's padded array."""
    gfield = _global_field(ny, nx)

    def program(comm):
        block = Block2D(ny, nx, py, px, comm.rank)
        ys, xs = block.global_slices()
        padded = local_with_halo(gfield[ys, xs].copy(), width)
        halo = StructuredHalo(block, width=width, tripolar_fold=tripolar)
        halo.exchange(comm, padded)
        return padded

    return SimWorld(py * px).run(program)


@pytest.mark.parametrize("width", [1, 2])
def test_interior_halos_match_global_field(width):
    ny, nx, py, px = 12, 16, 3, 4
    results = _run_structured(ny, nx, py, px, width)
    gfield = _global_field(ny, nx)
    for rank, padded in enumerate(results):
        block = Block2D(ny, nx, py, px, rank)
        y0, y1 = block.y_range
        x0, x1 = block.x_range
        w = width
        # East halo (periodic in x).
        expected_east = gfield[y0:y1, (np.arange(x1, x1 + w) % nx)]
        assert np.array_equal(padded[w:-w, -w:], expected_east)
        # West halo.
        expected_west = gfield[y0:y1, (np.arange(x0 - w, x0) % nx)]
        assert np.array_equal(padded[w:-w, :w], expected_west)
        # North halo (only for interior process rows).
        if y1 < ny:
            assert np.array_equal(padded[-w:, w:-w], gfield[y1 : y1 + w, x0:x1])
        # South halo.
        if y0 > 0:
            assert np.array_equal(padded[:w, w:-w], gfield[y0 - w : y0, x0:x1])


def test_corner_halos_filled_by_two_sweeps():
    ny, nx, py, px = 8, 8, 2, 2
    results = _run_structured(ny, nx, py, px, 1)
    gfield = _global_field(ny, nx)
    padded = results[0]  # block at (0,0): rows 0..3, cols 0..3
    # North-east corner halo = global (4, 4).
    assert padded[-1, -1] == gfield[4, 4]


def test_tripolar_fold_top_halo():
    ny, nx, py, px = 8, 8, 2, 2
    results = _run_structured(ny, nx, py, px, 1, tripolar=True)
    gfield = _global_field(ny, nx)
    # Top process row blocks: ranks 2 (cols 0..3) and 3 (cols 4..7).
    # Across the fold, point (ny-1, i) meets (ny-1, nx-1-i); the ghost row
    # holds the mirrored top interior row of the partner block.
    for rank, cols in ((2, range(0, 4)), (3, range(4, 8))):
        padded = results[rank]
        block = Block2D(ny, nx, py, px, rank)
        _, xs = block.global_slices()
        for k, i in enumerate(cols):
            assert padded[-1, 1 + k] == gfield[ny - 1, nx - 1 - i]


def test_tripolar_fold_requires_divisible_nx():
    def program(comm):
        block = Block2D(8, 9, 2, 2, comm.rank)  # 9 % 2 != 0
        padded = local_with_halo(np.zeros(block.shape), 1)
        StructuredHalo(block, width=1, tripolar_fold=True).exchange(comm, padded)

    with pytest.raises(RuntimeError, match="divisible"):
        SimWorld(4).run(program)


def test_padded_shape_mismatch_raises():
    def program(comm):
        block = Block2D(8, 8, 2, 2, comm.rank)
        padded = np.zeros((3, 3))
        StructuredHalo(block, width=1).exchange(comm, padded)

    with pytest.raises(RuntimeError, match="does not match"):
        SimWorld(4).run(program)


def test_graph_halo_roundtrip():
    """Two ranks exchanging endpoint values over explicit index lists."""

    def program(comm):
        # Global array of 8 entries, rank 0 owns [0..3], rank 1 owns [4..7].
        # Each rank needs the adjacent entry of the other as halo.
        if comm.rank == 0:
            owned = np.array([0.0, 1.0, 2.0, 3.0])
            halo = GraphHalo({1: np.array([3])}, {1: np.array([4])})
        else:
            owned = np.array([40.0, 50.0, 60.0, 70.0])
            halo = GraphHalo({0: np.array([0])}, {0: np.array([4])})
        values = np.concatenate([owned, [np.nan]])
        halo.exchange(comm, values)
        return values

    results = SimWorld(2).run(program)
    assert results[0][4] == 40.0
    assert results[1][4] == 3.0


def test_graph_halo_from_owners_consistency():
    """from_owners must build mutually consistent lists for a 1-D chain."""
    n_global, n_ranks = 16, 4
    owners = np.repeat(np.arange(n_ranks), n_global // n_ranks)

    # Each rank needs the global entries just outside its own range.
    needed = {}
    for r in range(n_ranks):
        lo, hi = r * 4, (r + 1) * 4
        need = []
        if lo > 0:
            need.append(lo - 1)
        if hi < n_global:
            need.append(hi)
        needed[r] = np.array(need)

    def program(comm):
        r = comm.rank
        lo = r * 4
        g2l = {lo + k: k for k in range(4)}
        halo_global = list(needed[r])
        halo = GraphHalo.from_owners(owners, needed, r, g2l, halo_global)
        values = np.concatenate(
            [np.arange(lo, lo + 4, dtype=float), np.full(len(halo_global), np.nan)]
        )
        halo.exchange(comm, values)
        return values

    results = SimWorld(n_ranks).run(program)
    # Rank 1 owns 4..7; halo entries are global 3 and 8.
    assert results[1][4] == 3.0
    assert results[1][5] == 8.0
    # Boundary ranks have one halo entry.
    assert results[0][4] == 4.0
    assert results[3][4] == 11.0


def test_graph_halo_bytes_accounting():
    halo = GraphHalo(
        {1: np.array([0, 1, 2]), 2: np.array([3])},
        {1: np.array([10, 11, 12]), 2: np.array([13])},
    )
    assert halo.n_neighbors == 2
    assert halo.bytes_per_exchange(itemsize=8) == 32
    assert halo.bytes_per_exchange(itemsize=4, n_fields=3) == 48


def test_local_with_halo_requires_2d():
    with pytest.raises(ValueError):
        local_with_halo(np.zeros(5), 1)
