"""Tests for the icosahedral Voronoi C-grid generator."""

import numpy as np
import pytest

from repro.grids import IcosahedralGrid, icosahedral_counts


def test_counts_formula():
    assert icosahedral_counts(0) == (12, 30, 20)
    assert icosahedral_counts(3) == (642, 1920, 1280)
    with pytest.raises(ValueError):
        icosahedral_counts(-1)


def test_counts_match_table1_ratios():
    """Table 1 reports cells:edges:vertices = 2:3:1 in triangle counting:
    our (triangles, edges, cells) ratios must match (= 2 : 3 : 1)."""
    nc, ne, nd = icosahedral_counts(6)
    assert nd / nc == pytest.approx(2.0, rel=0.01)   # triangles ~ 2x hex cells
    assert ne / nc == pytest.approx(3.0, rel=0.01)


def test_table1_extrapolation_to_paper_scales():
    """The paper's 1-km grid: 3.4e8 'cells' (triangles), 5.0e8 edges,
    1.7e8 vertices -> our level-13 counts land in that decade with the
    exact Euler relations."""
    nc, ne, nd = icosahedral_counts(13)
    # nd = triangles: 20*4^13 = 1.34e9; level 12 gives 3.36e8 ~ paper's 3.4e8.
    nc12, ne12, nd12 = icosahedral_counts(12)
    assert nd12 == pytest.approx(3.4e8, rel=0.02)
    assert ne12 == pytest.approx(5.0e8, rel=0.02)
    assert nc12 == pytest.approx(1.7e8, rel=0.02)


def test_build_counts(icos3):
    assert (icos3.n_cells, icos3.n_edges, icos3.n_dual) == icosahedral_counts(3)


def test_euler_formula(icos3):
    assert icos3.n_cells - icos3.n_edges + icos3.n_dual == 2


def test_twelve_pentagons(icos4):
    assert int(np.sum(icos4.cell_nedges == 5)) == 12
    assert int(np.sum(icos4.cell_nedges == 6)) == icos4.n_cells - 12


def test_cell_areas_tile_sphere(icos3):
    total = 4 * np.pi * icos3.radius**2
    assert icos3.area_cell.sum() == pytest.approx(total, rel=1e-10)
    assert icos3.area_dual.sum() == pytest.approx(total, rel=1e-10)


def test_areas_nearly_uniform(icos4):
    ratio = icos4.area_cell.max() / icos4.area_cell.min()
    assert ratio < 2.0  # icosahedral grids are quasi-uniform


def test_mean_spacing_vs_resolution_formula(icos4):
    # ~450 km at level 4 (2562 cells).
    assert icos4.mean_cell_spacing_km == pytest.approx(446.0, rel=0.02)


def test_normals_tangents_orthonormal(icos3):
    g = icos3
    assert np.allclose(np.sum(g.normal * g.xyz_edge, axis=-1), 0.0, atol=1e-12)
    assert np.allclose(np.sum(g.tangent * g.xyz_edge, axis=-1), 0.0, atol=1e-12)
    assert np.allclose(np.sum(g.normal * g.tangent, axis=-1), 0.0, atol=1e-12)
    assert np.allclose(np.linalg.norm(g.normal, axis=-1), 1.0)


def test_normal_points_c1_to_c2(icos3):
    g = icos3
    chord = g.xyz_cell[g.edge_cells[:, 1]] - g.xyz_cell[g.edge_cells[:, 0]]
    assert np.all(np.sum(chord * g.normal, axis=-1) > 0)


def test_dual_order_matches_tangent(icos3):
    g = icos3
    d = g.xyz_dual[g.edge_dual[:, 1]] - g.xyz_dual[g.edge_dual[:, 0]]
    assert np.all(np.sum(d * g.tangent, axis=-1) > 0)


def test_edge_lengths_positive_and_sane(icos3):
    g = icos3
    assert np.all(g.de > 0)
    assert np.all(g.le > 0)
    # On a quasi-uniform hex grid le/de ~ 1/sqrt(3) (dual edges shorter).
    assert 0.3 < np.median(g.le / g.de) < 0.8


def test_cell_edge_ring_is_closed(icos3):
    """Consecutive edges around a cell must share exactly the recorded
    dual vertex, and the vertex ring must contain distinct triangles."""
    g = icos3
    for c in [0, 11, 100, 641]:
        n = g.cell_nedges[c]
        ring_v = g.cell_vertices[c, :n]
        assert len(set(ring_v.tolist())) == n


def test_cell_edge_signs(icos3):
    g = icos3
    for c in [0, 50, 300]:
        n = g.cell_nedges[c]
        for j in range(n):
            e = g.cell_edges[c, j]
            sign = g.cell_edge_sign[c, j]
            if sign > 0:
                assert g.edge_cells[e, 0] == c
            else:
                assert g.edge_cells[e, 1] == c


def test_kites_sum_to_one(icos3):
    sums = icos3.kite.sum(axis=1)
    assert np.allclose(sums, 1.0, atol=1e-12)


def test_dual_kites_cover_dual_area(icos3):
    """Kites regrouped around a dual vertex approximate the dual area."""
    g = icos3
    per_vertex = g.dual_kite.sum(axis=1)
    assert np.all(per_vertex > 0)
    assert np.allclose(per_vertex, g.area_dual, rtol=0.15)


def test_trsk_weight_antisymmetry(icos3):
    """The energy form K[e,e'] = le*de*w[e,e'] must be exactly
    antisymmetric (enforced at build; this checks the stored table)."""
    g = icos3
    k = {}
    for e in range(g.n_edges):
        for j in range(g.edge_edges.shape[1]):
            ep = g.edge_edges[e, j]
            if ep >= 0:
                k[(e, int(ep))] = g.le[e] * g.de[e] * g.edge_weights[e, j]
    for (e, ep), val in k.items():
        assert k.get((ep, e), 0.0) == pytest.approx(-val, abs=1e-9 * max(1.0, abs(val)))


def test_build_rejects_negative_level():
    with pytest.raises(ValueError):
        IcosahedralGrid.build(-1)


def test_latlon_fields_present(icos3):
    g = icos3
    assert g.lon_cell.shape == (g.n_cells,)
    assert np.all(np.abs(g.lat_cell) <= np.pi / 2)
    assert g.lat_dual.shape == (g.n_dual,)
