"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_commands():
    parser = build_parser()
    for cmd in ("info", "run-coupled", "typhoon", "scaling", "train-ai"):
        args = parser.parse_args([cmd])
        assert args.command == cmd


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info_runs(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "AP3ESM" in out
    assert "1v1" in out and "25v10" in out


def test_scaling_single_curve(capsys):
    assert main(["scaling", "--curve", "atm_3km_mpe"]) == 0
    out = capsys.readouterr().out
    assert "3 km ATM MPE" in out
    assert "anchor" in out


def test_scaling_unknown_curve(capsys):
    assert main(["scaling", "--curve", "nope"]) == 2
    assert "unknown curve" in capsys.readouterr().err


def test_run_coupled_short(capsys, tmp_path):
    rc = main([
        "run-coupled", "--days", "0.1", "--atm-level", "3",
        "--ocn-nlon", "48", "--ocn-nlat", "32", "--ocn-levels", "5",
        "--restart-dir", str(tmp_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "SYPD" in out
    assert (tmp_path / "atm" / "restart.json").exists()
    assert (tmp_path / "ocn" / "restart.json").exists()


def test_typhoon_short(capsys):
    assert main(["typhoon", "--hours", "2", "--atm-level", "3"]) == 0
    out = capsys.readouterr().out
    assert "Vmax" in out
    assert "eye radius" in out


def test_backend_flag_parses():
    parser = build_parser()
    args = parser.parse_args(["run-coupled", "--backend", "procs",
                              "--backend-workers", "2"])
    assert args.backend == "procs"
    assert args.backend_workers == 2
    assert parser.parse_args(["run-coupled"]).backend == "serial"
    with pytest.raises(SystemExit):
        parser.parse_args(["run-coupled", "--backend", "quantum"])


def test_run_coupled_procs_backend(capsys):
    rc = main([
        "run-coupled", "--days", "0.1", "--atm-level", "3",
        "--ocn-nlon", "48", "--ocn-nlat", "32", "--ocn-levels", "5",
        "--backend", "procs", "--backend-workers", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "procs backend" in out
    assert "pool dispatch" in out
