"""Tests for the semi-implicit dycore (the paper's method class)."""

import numpy as np
import pytest

from repro.atm import ShallowWaterDycore, SWEState, williamson_tc2
from repro.atm.semi_implicit import SemiImplicitDycore, helmholtz_solve
from repro.grids import trsk


class TestHelmholtzSolver:
    def test_identity_when_coefficient_zero(self, icos4):
        rng = np.random.default_rng(0)
        rhs = rng.standard_normal(icos4.n_cells)
        x, n_iter = helmholtz_solve(icos4, 0.0, rhs)
        assert np.allclose(x, rhs, atol=1e-12)

    def test_residual_small(self, icos4):
        rng = np.random.default_rng(1)
        rhs = rng.standard_normal(icos4.n_cells)
        coeff = 1e11  # (theta dt)^2 g H at big dt
        x, n_iter = helmholtz_solve(icos4, coeff, rhs, tol=1e-12)
        res = x - coeff * trsk.divergence(icos4, trsk.gradient(icos4, x)) - rhs
        assert np.abs(res).max() < 1e-9 * np.abs(rhs).max()
        assert 0 < n_iter < 2000

    def test_smooth_rhs_converges_fast(self, icos4):
        rhs = np.sin(2 * icos4.lon_cell) * np.cos(icos4.lat_cell)
        _, n_iter = helmholtz_solve(icos4, 1e10, rhs)
        assert n_iter < 200

    def test_negative_coefficient_rejected(self, icos4):
        with pytest.raises(ValueError):
            helmholtz_solve(icos4, -1.0, np.zeros(icos4.n_cells))


class TestSemiImplicitStepping:
    def test_theta_validation(self, icos4):
        with pytest.raises(ValueError):
            SemiImplicitDycore(icos4, theta=0.3)
        with pytest.raises(ValueError):
            SemiImplicitDycore(icos4, theta=1.2)

    def test_stable_beyond_explicit_cfl(self, icos4):
        """The whole point: 5x the explicit gravity-wave limit, stable."""
        explicit = ShallowWaterDycore(icos4)
        si = SemiImplicitDycore(icos4, theta=0.55)
        s = williamson_tc2(icos4)
        dt = 5.0 * explicit.max_stable_dt(s, cfl=0.4)
        for _ in range(20):
            s = si.step(s, dt)
        assert np.isfinite(s.h).all()
        assert np.abs(s.u).max() < 100.0

    def test_explicit_blows_up_at_that_dt(self, icos4):
        """Control: the explicit stepper is unstable at the same dt."""
        explicit = ShallowWaterDycore(icos4)
        s = williamson_tc2(icos4)
        dt = 5.0 * explicit.max_stable_dt(s, cfl=0.4)
        with np.errstate(all="ignore"):
            for _ in range(20):
                s = explicit.step_rk4(s, dt)
        assert (not np.isfinite(s.h).all()) or np.abs(s.u).max() > 1e3

    def test_mass_conserved_to_roundoff(self, icos4):
        si = SemiImplicitDycore(icos4)
        s = williamson_tc2(icos4)
        m0 = si.total_mass(s)
        dt = 3000.0
        for _ in range(10):
            s = si.step(s, dt)
        assert si.total_mass(s) == pytest.approx(m0, rel=1e-12)

    def test_tc2_error_small_after_a_day(self, icos4):
        si = SemiImplicitDycore(icos4, theta=0.55)
        s0 = williamson_tc2(icos4)
        s = s0.copy()
        dt = 4000.0
        for _ in range(int(86400 / dt) + 1):
            s = si.step(s, dt)
        assert np.abs(s.h - s0.h).max() / s0.h.mean() < 0.03

    def test_converges_to_explicit_at_small_dt(self, icos4):
        """As dt -> 0, semi-implicit and explicit trajectories agree."""
        explicit = ShallowWaterDycore(icos4)
        si = SemiImplicitDycore(icos4, theta=0.5)
        s0 = williamson_tc2(icos4)
        dt = 0.1 * explicit.max_stable_dt(s0, cfl=0.4)
        se = s0.copy()
        ss = s0.copy()
        for _ in range(10):
            se = explicit.step_rk4(se, dt)
            ss = si.step(ss, dt)
        # Relative to how much the state moved, the schemes agree closely.
        moved = np.abs(se.h - s0.h).max()
        assert np.abs(ss.h - se.h).max() < 0.2 * max(moved, 1e-9)

    def test_cg_iteration_count_exposed(self, icos4):
        si = SemiImplicitDycore(icos4)
        s = williamson_tc2(icos4)
        si.step(s, 3000.0)
        assert si.last_cg_iterations > 0

    def test_larger_theta_damps_gravity_waves(self, icos3):
        """theta = 1 (backward Euler) damps a gravity-wave pulse faster
        than theta = 0.5 (trapezoidal, neutral)."""
        s0 = SWEState(
            h=np.full(icos3.n_cells, 2000.0), u=np.zeros(icos3.n_edges)
        )
        s0.h[0] += 100.0  # a pulse
        dt = 2000.0
        energies = {}
        for theta in (0.5, 1.0):
            si = SemiImplicitDycore(icos3, theta=theta)
            s = s0.copy()
            for _ in range(30):
                s = si.step(s, dt)
            energies[theta] = si.total_energy(s)
        assert energies[1.0] < energies[0.5]
