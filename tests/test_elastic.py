"""Tests for elastic rank-failure recovery: revoke/shrink/spare on the
simulated communicator, owner re-partition, GSMap/Router repair, the
kill-and-continue field driver, and the coupled driver's recovering loop.

The invariants under test mirror the ULFM-style contract:

* ``shrink`` completes every step on the surviving ranks with the global
  invariant conserved (and, for the decomposition-independent stencil,
  bitwise-identical results);
* ``spare`` keeps the decomposition and is bitwise-identical to a twin
  that never failed;
* ``abort`` (the default) surfaces the failure exactly as before — and a
  driver with resilience disabled takes the pre-elastic code paths.
"""

import numpy as np
import pytest

from repro.coupler import GlobalSegMap, Router
from repro.grids.remap import index_remap
from repro.obs import Obs
from repro.parallel import (
    RankFailure,
    SimWorld,
    reassign_dead_ranks,
    shrink_owners,
)
from repro.resilience import (
    ElasticFieldRun,
    FaultPlan,
    FaultPlanError,
    RecoveryPolicy,
    ResilienceConfig,
)


# -- owner re-partition ------------------------------------------------------


class TestShrinkOwners:
    def test_reassign_adopts_nearest_alive(self):
        owners = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        out = reassign_dead_ranks(owners, {1})
        # the dead block splits between its two nearest neighbors
        assert out.tolist() == [0, 0, 0, 2, 2, 2, 3, 3]

    def test_reassign_tie_breaks_left(self):
        owners = np.array([0, 1, 2])
        out = reassign_dead_ranks(owners, {1})
        assert out.tolist() == [0, 0, 2]

    def test_shrink_owners_renumbers_dense(self):
        owners = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        new, old_to_new = shrink_owners(owners, {2})
        assert sorted(set(new.tolist())) == [0, 1, 2]
        assert old_to_new == {0: 0, 1: 1, 3: 2}
        # dead cells adopted, block contiguity preserved
        assert new.tolist() == [0, 0, 1, 1, 1, 2, 2, 2]

    def test_shrink_owners_keeps_empty_survivors(self):
        # rank 2 owns no cells; numbering must still match SimWorld.shrink
        owners = np.array([0, 0, 1, 1, 3, 3])
        new, old_to_new = shrink_owners(owners, {1}, n_ranks=4)
        assert old_to_new == {0: 0, 2: 1, 3: 2}
        assert new.tolist() == [0, 0, 0, 2, 2, 2]


class TestWorldRepair:
    def test_shrink_renumbers_and_keeps_parents(self):
        world = SimWorld(4)
        new = world.shrink({1})
        assert new.n_ranks == 3
        assert new.parent_ranks == (0, 2, 3)

    def test_spare_promotion_fills_slot(self):
        world = SimWorld(4, n_spares=2)
        new = world.promote_spares({2})
        assert new.n_ranks == 4
        assert new.parent_ranks == (0, 1, 4, 3)  # spare id 4 took slot 2
        # one spare left for the next failure
        assert new.promote_spares({0}).parent_ranks == (5, 1, 4, 3)

    def test_spare_pool_exhaustion_raises(self):
        world = SimWorld(4, n_spares=1)
        new = world.promote_spares({2})
        with pytest.raises(ValueError, match="spare"):
            new.promote_spares({0})

    def test_run_elastic_reports_dead_not_raises(self):
        def program(comm):
            if comm.rank == 1:
                raise RankFailure(comm.rank, "injected")
            # survivors blocked on the dead rank are interrupted by the
            # revoke rather than waiting out the timeout
            comm.recv(source=1, tag=0)
            return comm.rank

        world = SimWorld(3, timeout=10.0)
        outcome = world.run_elastic(program)
        assert outcome.failed
        assert outcome.dead == (1,)
        assert set(outcome.interrupted) == {0, 2}

    def test_plain_run_still_raises_root_cause(self):
        def program(comm):
            if comm.rank == 0:
                raise RankFailure(comm.rank, "injected")
            return comm.rank

        with pytest.raises(RuntimeError, match="RankFailure"):
            SimWorld(2, timeout=10.0).run(program)


# -- coupler-layer repair ----------------------------------------------------


class TestGSMapShrink:
    def test_shrink_reassigns_and_renumbers(self):
        gsmap = GlobalSegMap.from_owners(np.repeat(np.arange(4), 4))
        new, old_to_new = gsmap.shrink({2})
        assert new.n_pes == 3
        owners = new.owner_array()
        assert sorted(set(owners.tolist())) == [0, 1, 2]
        assert old_to_new == {0: 0, 1: 1, 3: 2}

    def test_shrink_preserves_holes(self):
        owners = np.array([0, 0, -1, 1, 1, 2, 2, -1])
        new, _ = GlobalSegMap.from_owners(owners).shrink({1})
        out = new.owner_array()
        assert out[2] == -1 and out[7] == -1  # holes neither adopt nor adopted
        assert sorted(set(out.tolist())) == [-1, 0, 1]


class TestRouterRedistribute:
    def test_moves_survivor_state_and_marks_holes(self):
        old = np.array([0, 0, 1, 1, 2, 2])
        masked = old.copy()
        masked[old == 1] = -1  # rank 1 died
        new, _ = shrink_owners(old, {1}, n_ranks=3)
        router = Router.build(
            GlobalSegMap.from_owners(masked), GlobalSegMap.from_owners(new)
        )
        gfield = np.arange(6.0)
        src = {r: gfield[old == r] for r in (0, 2)}
        dst_sizes = {q: int(np.count_nonzero(new == q)) for q in range(2)}
        out = router.redistribute(src, dst_sizes)
        merged = np.empty(6)
        for q, shard in out.items():
            merged[new == q] = shard
        # survivor cells carry their values; dead cells are NaN holes
        assert np.array_equal(merged[old != 1], gfield[old != 1])
        assert np.isnan(merged[old == 1]).all()


class TestIndexRemap:
    def test_exact_selection(self):
        sel = index_remap(np.array([4, 9, 2]), np.array([2, 9]))
        assert np.array_equal(sel @ np.array([40.0, 90.0, 20.0]),
                              np.array([20.0, 90.0]))

    def test_missing_destination_named(self):
        with pytest.raises(ValueError, match="7"):
            index_remap(np.array([1, 2]), np.array([2, 7]))


# -- the kill-and-continue field driver --------------------------------------


KILL_PLAN = {"seed": 11, "comm": [{"kind": "kill", "rank": 2, "after_ops": 20}]}


class TestElasticFieldRun:
    def _run(self, tmp_path, policy, faults=None, obs=None):
        return ElasticFieldRun(
            tmp_path / str(policy), policy=policy,
            faults=FaultPlan.from_dict(faults) if faults else None,
            obs=obs,
        ).run()

    def test_abort_surfaces_failure(self, tmp_path):
        with pytest.raises(RankFailure):
            self._run(tmp_path, "abort", faults=KILL_PLAN)

    def test_shrink_conserves_and_matches_twin(self, tmp_path):
        obs = Obs()
        twin = self._run(tmp_path, "abort")
        out = self._run(tmp_path, "shrink", faults=KILL_PLAN, obs=obs)
        assert out.survived_failure
        assert out.n_ranks == 3
        assert out.mass_drift < 1e-12
        # the stencil is decomposition-independent: bitwise, not just close
        assert np.array_equal(out.field, twin.field)
        event = out.recoveries[0]
        assert event.policy == "shrink"
        assert event.dead == (2,)
        assert event.n_ranks_after == 3
        assert event.cells_restored == 16
        assert event.replayed_steps > 0
        counters = {
            name: h.metrics.get(name).value
            for h in obs.all_ranks() for name in h.metrics.names()
            if name.startswith("resilience.")
        }
        assert counters["resilience.recoveries"] == 1
        assert counters["resilience.ranks_lost"] == 1

    def test_spare_is_bitwise_twin(self, tmp_path):
        twin = self._run(tmp_path, "abort")
        out = self._run(tmp_path, "spare", faults=KILL_PLAN)
        assert out.survived_failure
        assert out.n_ranks == 4  # decomposition unchanged
        assert np.array_equal(out.field, twin.field)
        assert out.recoveries[0].dead_parents == (2,)

    def test_no_fault_runs_identically_under_any_policy(self, tmp_path):
        twin = self._run(tmp_path, "abort")
        for policy in ("shrink", "spare"):
            out = self._run(tmp_path, policy)
            assert not out.survived_failure
            assert np.array_equal(out.field, twin.field)

    def test_policy_parse_rejects_unknown(self):
        assert RecoveryPolicy.parse("Shrink") is RecoveryPolicy.SHRINK
        with pytest.raises(ValueError, match="unknown recovery policy"):
            RecoveryPolicy.parse("panic")


# -- fault-plan validation (structured errors) -------------------------------


class TestFaultPlanValidation:
    @pytest.mark.parametrize("doc,fragment", [
        ({"seed": 1, "comm": [{"kind": "kill", "whoops": 2}]},
         r"\$\.comm\[0\]\.whoops"),
        ({"seed": 1, "comm": [{"kind": "kill", "rank": "two"}]},
         r"\$\.comm\[0\]\.rank"),
        ({"seed": 1, "physics": {"kind": "nan"}}, r"\$\.physics"),
        ({"seed": "x"}, r"\$\.seed"),
        ({"seed": 1, "bogus": []}, r"bogus"),
        ({"seed": 1, "crash_at_coupling": "soon"}, r"\$\.crash_at_coupling"),
    ])
    def test_bad_documents_name_the_path(self, doc, fragment):
        with pytest.raises(FaultPlanError, match=fragment):
            FaultPlan.from_dict(doc)

    def test_invalid_json_names_position(self):
        with pytest.raises(FaultPlanError, match="line 1"):
            FaultPlan.from_json("{nope}")

    def test_error_is_a_value_error(self):
        # backward compatibility: older callers catch ValueError
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"seed": 1, "bogus": []})


# -- degraded-mode performance estimate --------------------------------------


class TestDegradedEstimate:
    def test_losing_ranks_slows_the_model(self):
        from repro.bench.scaling import paper_coupled_model

        coupled = paper_coupled_model("3v2")
        est = coupled.degraded_estimate(100, 50, lost1=10)
        assert est["sypd_degraded"] < est["sypd_full"]
        assert est["slowdown"] > 1.0
        assert est["procs_domain1"] == 90.0

    def test_losing_everything_rejected(self):
        from repro.bench.scaling import paper_coupled_model

        coupled = paper_coupled_model("3v2")
        with pytest.raises(ValueError):
            coupled.degraded_estimate(4, 4, lost1=4)


# -- the coupled driver's recovering loop ------------------------------------


def _coupled_config(tmp_path, policy, concurrent=False, spares=1):
    from repro.esm import AP3ESMConfig

    return AP3ESMConfig(
        atm_level=3, ocn_nlon=48, ocn_nlat=32, ocn_levels=6,
        concurrent_domains=concurrent,
        resilience=ResilienceConfig(
            enabled=True, checkpoint_every=2, checkpoint_dir=str(tmp_path),
            recovery_policy=policy, spare_ranks=spares,
            watchdog_s=20.0 if concurrent else None,
        ),
    )


def _inject_ocean_failure(model, at=3, times=1):
    """Monkeypatch ocn.pre_coupling to die like a lost node, ``times``
    times, once the coupling counter reaches ``at``."""
    orig = model.ocn.pre_coupling
    fired = {"n": 0}

    def failing(forcing):
        if model.n_couplings >= at and fired["n"] < times:
            fired["n"] += 1
            raise RankFailure(0, "injected node loss in ocean domain")
        return orig(forcing)

    model.ocn.pre_coupling = failing


class TestCoupledRecovery:
    def _twin_state(self, tmp_path, couplings=6):
        from repro.esm import AP3ESM, AP3ESMConfig

        cfg = AP3ESMConfig(
            atm_level=3, ocn_nlon=48, ocn_nlat=32, ocn_levels=6,
            resilience=ResilienceConfig(
                enabled=True, checkpoint_every=2,
                checkpoint_dir=str(tmp_path / "twin"),
            ),
        )
        twin = AP3ESM(cfg)
        twin.init()
        twin.run_couplings(couplings)
        return twin.ocn.t.copy(), twin.atm.t_col.copy()

    @pytest.mark.parametrize("policy", ["shrink", "spare"])
    def test_recovers_and_matches_twin(self, tmp_path, policy):
        from repro.esm import AP3ESM

        twin_ocn, twin_atm = self._twin_state(tmp_path)
        model = AP3ESM(_coupled_config(tmp_path / policy, policy))
        model.init()
        assert model._recovery is not None
        _inject_ocean_failure(model)
        model.run_couplings(6)
        assert len(model.recovery_events) == 1
        event = model.recovery_events[0]
        assert event["policy"] == policy
        assert event["domain"] == "domain2"
        assert event["restored_to_coupling"] <= event["failed_at_coupling"]
        assert np.array_equal(model.ocn.t, twin_ocn)
        assert np.array_equal(model.atm.t_col, twin_atm)
        if policy == "shrink":
            assert model.scheduler.degraded == {"domain2": 1}
            assert model.task_domains()["domain2"]["lost_ranks"] == 1
        else:
            assert model.scheduler.degraded == {}

    def test_concurrent_domain_kill_recovers_without_deadlock(self, tmp_path):
        """Satellite: a rank kill inside the threaded ocean domain, with
        --concurrent-domains and the watchdog armed, recovers (shrink)
        without deadlocking the watchdog — and the continuation is
        bitwise-identical to the serial fault-free twin."""
        from repro.esm import AP3ESM

        twin_ocn, twin_atm = self._twin_state(tmp_path)
        model = AP3ESM(
            _coupled_config(tmp_path / "conc", "shrink", concurrent=True)
        )
        model.init()
        _inject_ocean_failure(model)
        model.run_couplings(6)
        model.scheduler.shutdown()
        assert len(model.recovery_events) == 1
        assert model.recovery_events[0]["domain"] == "domain2"
        assert np.array_equal(model.ocn.t, twin_ocn)
        assert np.array_equal(model.atm.t_col, twin_atm)

    def test_concurrent_domain_kill_abort_surfaces_cleanly(self, tmp_path):
        """Under the default abort policy the same kill surfaces as a
        structured error (not a hang) and leaves no stuck thread."""
        from repro.esm import AP3ESM, AP3ESMConfig

        cfg = AP3ESMConfig(
            atm_level=3, ocn_nlon=48, ocn_nlat=32, ocn_levels=6,
            concurrent_domains=True,
            resilience=ResilienceConfig(enabled=True, watchdog_s=20.0),
        )
        model = AP3ESM(cfg)
        model.init()
        assert model._recovery is None
        _inject_ocean_failure(model)
        with pytest.raises(RankFailure):
            model.run_couplings(10)
            model._publish_ocean()  # surface the latent lagged failure
        model.scheduler.shutdown()

    def test_spare_pool_exhaustion_surfaces(self, tmp_path):
        from repro.esm import AP3ESM

        model = AP3ESM(_coupled_config(tmp_path, "spare", spares=1))
        model.init()
        _inject_ocean_failure(model, times=5)
        with pytest.raises(RankFailure):
            model.run_couplings(6)
        assert len(model.recovery_events) == 1  # one spare spent, then out

    def test_persistent_fault_gives_up_after_retry_cap(self, tmp_path):
        from repro.esm import AP3ESM

        model = AP3ESM(_coupled_config(tmp_path, "shrink"))
        model.init()
        _inject_ocean_failure(model, times=100)
        with pytest.raises(RankFailure):
            model.run_couplings(6)
        assert len(model.recovery_events) == model.MAX_RECOVERY_RETRIES

    def test_non_abort_policy_requires_checkpointing(self):
        from repro.esm import AP3ESM, AP3ESMConfig

        cfg = AP3ESMConfig(
            atm_level=3, ocn_nlon=48, ocn_nlat=32, ocn_levels=6,
            resilience=ResilienceConfig(enabled=True,
                                        recovery_policy="shrink"),
        )
        with pytest.raises(ValueError, match="checkpoint"):
            AP3ESM(cfg).init()


# -- chaos + reporting -------------------------------------------------------


class TestKillChaos:
    def test_kill_and_continue_stage(self, tmp_path):
        from repro.resilience.chaos import run_chaos

        plan = FaultPlan.from_dict(KILL_PLAN)
        report = run_chaos(plan, couplings=2)
        assert report.survived
        assert report.kill_ranks == 1
        assert report.shrink_recovered is True
        assert report.shrink_ranks_after == 3
        assert report.shrink_mass_drift < 1e-12
        assert report.spare_bitwise_identical is True
        assert report.counters["resilience.recoveries"] >= 2
        assert "spare bitwise identical: True" in report.summary()


class TestInterventionReport:
    def test_resilience_section_appears_when_nonzero(self):
        from repro.obs.export import resilience_interventions, text_report

        obs = Obs()
        obs.counter("resilience.recoveries").inc()
        obs.fork(1).counter("resilience.ranks_lost").inc(2)
        regs = [h.metrics for h in obs.all_ranks()]
        totals = resilience_interventions(regs)
        assert totals == {"resilience.recoveries": 1.0,
                          "resilience.ranks_lost": 2.0}
        report = text_report([h.tracer for h in obs.all_ranks()], regs)
        assert "resilience interventions" in report
        assert "resilience.ranks_lost" in report

    def test_clean_run_has_no_section(self):
        from repro.obs.export import text_report

        obs = Obs()
        obs.counter("cpl.steps").inc(4)
        obs.fork(1).counter("ocn.steps").inc(2)
        report = text_report(
            [h.tracer for h in obs.all_ranks()],
            [h.metrics for h in obs.all_ranks()],
        )
        assert "resilience interventions" not in report


class TestCliFlag:
    def test_recovery_policy_roundtrip(self, tmp_path):
        from repro.cli import _resilience_config, build_parser

        args = build_parser().parse_args([
            "run-coupled", "--recovery-policy", "spare", "--spare-ranks", "2",
            "--checkpoint-every", "2", "--checkpoint-dir", str(tmp_path),
        ])
        res = _resilience_config(args)
        assert res.recovery_policy == "spare"
        assert res.spare_ranks == 2

    def test_default_is_abort_and_config_free(self):
        from repro.cli import _resilience_config, build_parser

        args = build_parser().parse_args(["run-coupled"])
        assert _resilience_config(args) is None

    def test_non_abort_without_checkpoints_rejected(self):
        from repro.cli import _resilience_config, build_parser

        args = build_parser().parse_args(
            ["run-coupled", "--recovery-policy", "shrink"])
        with pytest.raises(SystemExit, match="rollback target"):
            _resilience_config(args)
