"""Tests for the tripolar ocean grid and its synthetic earth."""

import math

import numpy as np
import pytest

from repro.grids import TripolarGrid, default_levels, lonlat_to_xyz


def test_area_tiles_sphere_minus_south_cap(tripolar_small):
    g = tripolar_small
    # The grid starts at 78S; everything north of that must be tiled exactly.
    expected = (1.0 - (1.0 - math.sin(math.radians(78))) / 2.0)
    ratio = g.area.sum() / (4 * math.pi * g.radius**2)
    assert ratio == pytest.approx(expected, abs=2e-4)


def test_ocean_fraction_matches_earth(tripolar_small):
    assert tripolar_small.ocean_fraction == pytest.approx(0.71, abs=0.01)


def test_wet_fraction_3d_in_band(tripolar_small):
    """3-D wet fraction ~0.6: removing non-ocean points saves 30-45 % of
    the box (paper quotes ~30 % resource reduction)."""
    wf = tripolar_small.wet_fraction_3d()
    assert 0.5 < wf < 0.72


def test_levels_mask_monotone_in_depth(tripolar_small):
    """A wet cell at level k+1 implies wet at level k (no overhangs)."""
    m3 = tripolar_small.levels_mask()
    assert not np.any(m3[1:] & ~m3[:-1])


def test_displaced_poles_are_on_land(tripolar_small):
    g = tripolar_small
    for plon in (g.pole_lon, g.pole_lon + math.pi):
        p = lonlat_to_xyz(np.array(plon), np.array(math.radians(75.0)))
        idx = np.argmax(g.centers.reshape(-1, 3) @ p)
        assert not g.mask.reshape(-1)[idx]


def test_antarctica_is_land(tripolar_small):
    g = tripolar_small
    southmost = g.mask[0, :]
    assert not southmost.any()


def test_longitude_periodicity(tripolar_small):
    g = tripolar_small
    assert np.allclose(g.corners[:, 0], g.corners[:, -1])


def test_seam_fold_consistency(tripolar_small):
    """The top corner row must be symmetric under i -> nlon - i (the fold:
    both halves of the last ring land on the same seam segment)."""
    g = tripolar_small
    top = g.corners[-1]  # (nlon+1, 3)
    folded = top[::-1]
    assert np.allclose(top, folded, atol=1e-9)


def test_depth_zero_on_land_positive_on_ocean(tripolar_small):
    g = tripolar_small
    assert np.all(g.depth[~g.mask] == 0.0)
    assert np.all(g.depth[g.mask] > 0.0)
    assert g.depth.max() <= 5500.0 + 1.0


def test_default_levels_monotone_stretched():
    z = default_levels(80)
    assert len(z) == 81
    assert z[0] == 0.0
    assert z[-1] == pytest.approx(5500.0)
    dz = np.diff(z)
    assert np.all(dz > 0)
    assert dz[-1] > 3 * dz[0]  # stretched: thin surface layers
    with pytest.raises(ValueError):
        default_levels(0)


def test_build_determinism():
    a = TripolarGrid.build(48, 32, n_levels=5)
    b = TripolarGrid.build(48, 32, n_levels=5)
    assert np.array_equal(a.mask, b.mask)
    assert np.array_equal(a.depth, b.depth)


def test_build_rejects_tiny_grid():
    with pytest.raises(ValueError):
        TripolarGrid.build(4, 64)


def test_paper_grid_point_formula():
    """Table 1: LICOM 1-km grid is 36000 x 22018 x 80 = 6.3e10 points."""
    assert 36000 * 22018 * 80 == pytest.approx(6.3e10, rel=0.01)


def test_centers_inside_cells(tripolar_small):
    """Each center must be closer to its own 4 corners than to the
    antipode — a cheap sanity check that the mapping didn't fold cells."""
    g = tripolar_small
    corner_dot = np.einsum(
        "ijk,ijk->ij", g.centers, g.corners[:-1, :-1]
    )
    assert np.all(corner_dot > 0.5)
