"""Tests for restart I/O: bit-exact round-trips and the restart contract
(run N+M == run N, save, load, run M)."""

import numpy as np
import pytest

from repro.atm import GristConfig, GristModel
from repro.io.restart import load_restart, save_restart
from repro.ocn import LicomConfig, LicomModel


class TestGenericRestart:
    def test_roundtrip_multiple_fields(self, tmp_path):
        rng = np.random.default_rng(0)
        fields = {
            "a": rng.standard_normal((10, 20)),
            "b": rng.standard_normal((3, 4, 5)),
            "c": rng.standard_normal(7),
        }
        save_restart(tmp_path, fields, scalars={"time": 123.5})
        loaded, scalars = load_restart(tmp_path)
        assert scalars["time"] == 123.5
        for name, arr in fields.items():
            assert np.array_equal(loaded[name], arr)
            assert loaded[name].shape == arr.shape

    def test_float32_preserved(self, tmp_path):
        fields = {"x": np.arange(100, dtype=np.float32)}
        save_restart(tmp_path, fields)
        loaded, _ = load_restart(tmp_path)
        assert loaded["x"].dtype == np.float32
        assert np.array_equal(loaded["x"], fields["x"])

    def test_manifest_versioned(self, tmp_path):
        save_restart(tmp_path, {"x": np.zeros(4)})
        manifest = tmp_path / "restart.json"
        text = manifest.read_text().replace('"version": 1', '"version": 99')
        manifest.write_text(text)
        with pytest.raises(ValueError, match="version"):
            load_restart(tmp_path)


class TestOceanRestartContract:
    def test_run_save_load_run_is_bitwise(self, tmp_path):
        def fresh():
            m = LicomModel(LicomConfig(nlon=48, nlat=32, n_levels=6))
            m.init()
            m.import_state({
                "taux": np.where(m.metrics.mask_c, 0.05, 0.0),
                "heat_flux": np.where(m.metrics.mask_c, 20.0, 0.0),
            })
            return m

        reference = fresh()
        reference.run(8)

        staged = fresh()
        staged.run(4)
        staged.save_restart(tmp_path)

        resumed = fresh()
        resumed.load_restart(tmp_path)
        assert resumed.n_steps == 4
        resumed.run(4)

        assert np.array_equal(resumed.t, reference.t)
        assert np.array_equal(resumed.s, reference.s)
        assert np.array_equal(resumed.u, reference.u)
        assert np.array_equal(resumed.bt.eta, reference.bt.eta)
        assert resumed.time == reference.time


class TestAtmRestartContract:
    def test_run_save_load_run_is_bitwise(self, tmp_path):
        def fresh():
            m = GristModel(GristConfig(level=3))
            m.init()
            return m

        reference = fresh()
        reference.run(6)

        staged = fresh()
        staged.run(3)
        staged.save_restart(tmp_path)

        resumed = fresh()
        resumed.load_restart(tmp_path)
        resumed.run(3)

        assert np.array_equal(resumed.swe.h, reference.swe.h)
        assert np.array_equal(resumed.swe.u, reference.swe.u)
        assert np.array_equal(resumed.t_col, reference.t_col)
        assert np.array_equal(resumed.tracer, reference.tracer)
        assert resumed.time == reference.time


class TestCoupledRestartContract:
    def test_coupled_run_save_load_run_is_bitwise(self, tmp_path):
        from repro.esm import AP3ESM, AP3ESMConfig

        def fresh():
            m = AP3ESM(AP3ESMConfig(
                atm_level=3, ocn_nlon=48, ocn_nlat=32, ocn_levels=5
            ))
            m.init()
            return m

        reference = fresh()
        reference.run_couplings(10)

        staged = fresh()
        staged.run_couplings(5)
        staged.save_restart(tmp_path)

        resumed = fresh()
        resumed.load_restart(tmp_path)
        assert resumed.n_couplings == 5
        resumed.run_couplings(5)

        assert np.array_equal(resumed.atm.swe.h, reference.atm.swe.h)
        assert np.array_equal(resumed.ocn.t, reference.ocn.t)
        assert np.array_equal(resumed.ice.thickness, reference.ice.thickness)
        assert np.array_equal(resumed.lnd.bucket, reference.lnd.bucket)
        assert resumed.clock.time == reference.clock.time
