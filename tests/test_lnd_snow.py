"""Tests for the land model's snow scheme."""

import numpy as np
import pytest

from repro.lnd import LandModel


def _forcing(n, gsw=0.0, precip=0.0, t_air=288.0):
    return dict(
        gsw=np.full(n, gsw),
        glw=np.full(n, 300.0),
        precip=np.full(n, precip),
        t_air=np.full(n, t_air),
        dt=3600.0,
    )


def test_cold_precipitation_accumulates_as_snow():
    m = LandModel(5)
    m.init()
    m.tskin[:] = 260.0
    for _ in range(24):
        out = m.force(**_forcing(5, precip=1e-3, t_air=263.0))
    assert np.all(m.snow > 0)
    assert np.all(out["snow_depth"] > 0)
    # Cold precip does not fill the bucket directly.
    assert np.all(m.bucket <= 0.5 * m.config.bucket_capacity + 1e-12)


def test_warm_rain_does_not_make_snow():
    m = LandModel(5)
    m.init()
    for _ in range(10):
        m.force(**_forcing(5, precip=1e-3, t_air=290.0))
    assert np.all(m.snow == 0)


def test_snow_melts_under_strong_sun_and_fills_bucket():
    m = LandModel(5)
    m.init()
    m.snow[:] = 0.05
    m.tskin[:] = 274.0
    m.bucket[:] = 0.0
    for _ in range(48):
        m.force(**_forcing(5, gsw=700.0, t_air=285.0))
    assert np.all(m.snow < 0.05)
    assert np.all(m.bucket > 0)  # meltwater arrived


def test_snow_raises_albedo():
    m = LandModel(4)
    m.init()
    base = m.effective_albedo().copy()
    m.snow[:] = 1.0
    snowy = m.effective_albedo()
    assert np.all(snowy > base)
    assert snowy[0] == pytest.approx(m.config.snow_albedo)


def test_partial_snow_cover_blends_albedo():
    m = LandModel(1)
    m.init()
    m.snow[:] = 0.5 * m.config.snow_masking_depth
    a = m.effective_albedo()[0]
    assert m.config.albedo < a < m.config.snow_albedo


def test_snowy_surface_absorbs_less():
    """With the same sun, a snow-covered surface warms more slowly."""
    bare = LandModel(1)
    bare.init()
    snowy = LandModel(1)
    snowy.init()
    snowy.snow[:] = 1.0
    # Keep the pack from melting (cold skin) to isolate the albedo effect.
    bare.tskin[:] = snowy.tskin[:] = 265.0
    for _ in range(6):
        bare.force(**_forcing(1, gsw=600.0, t_air=265.0))
        snowy.force(**_forcing(1, gsw=600.0, t_air=265.0))
    assert snowy.tskin[0] < bare.tskin[0]


def test_snow_only_on_land_cells():
    mask = np.array([True, False])
    m = LandModel(2, land_mask=mask)
    m.init()
    m.tskin[:] = 260.0
    for _ in range(5):
        m.force(**_forcing(2, precip=1e-3, t_air=260.0))
    assert m.snow[0] > 0
    assert m.snow[1] == 0
