"""Tests for the fault-injection + resilience subsystem.

Covers the contracts the chaos harness relies on: deterministic fault
plans, retried transient sends that stay bit-identical, structured
timeout/kill diagnostics, checksummed rotating checkpoints that fall
back past corruption, the per-column physics guardrail, the task-domain
watchdog — and that all of it costs nothing when disabled.
"""

import threading

import numpy as np
import pytest

from repro.coupler import AttrVect, GlobalSegMap, Rearranger, Router
from repro.io.restart import RestartError, load_restart, save_restart
from repro.obs import Obs
from repro.parallel import (
    CommTimeoutError,
    CommTransientError,
    RankFailure,
    SimWorld,
)
from repro.resilience import (
    CheckpointError,
    CheckpointFault,
    CheckpointManager,
    CommFault,
    CommFaultInjector,
    FaultPlan,
    GuardedPhysics,
    PhysicsFault,
    PhysicsFaultInjector,
    ResilienceConfig,
    RetryPolicy,
    WatchdogTimeout,
    corrupt_checkpoint,
    retry_with_backoff,
)


# -- fault plans -------------------------------------------------------------


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(
            seed=42,
            comm=[CommFault(kind="transient", src=0, dst=1, times=2),
                  CommFault(kind="kill", rank=2, after_ops=5)],
            checkpoints=[CheckpointFault(kind="truncate", index=-1)],
            physics=[PhysicsFault(kind="nan", step=3, columns=(1, 5))],
            crash_at_coupling=4,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert plan.n_faults == 4

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 9, "physics": '
                        '[{"kind": "blowup", "step": 2, "n_columns": 3}]}')
        plan = FaultPlan.from_file(path)
        assert plan.seed == 9
        assert plan.physics[0].kind == "blowup"

    def test_unknown_keys_and_kinds_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"bogus": 1})
        with pytest.raises(ValueError, match="comm fault kind"):
            CommFault(kind="meteor")
        with pytest.raises(ValueError, match="checkpoint fault kind"):
            CheckpointFault(kind="meteor")
        with pytest.raises(ValueError, match="physics fault kind"):
            PhysicsFault(kind="meteor", step=0, n_columns=1)


# -- comm faults through the rearranger --------------------------------------


def _mirror_transfer(n_ranks=4, per_rank=4, faults=None, obs=None, **knobs):
    """Run a p2p rearrangement between block and reversed-block
    decompositions; returns per-rank output arrays."""
    src = GlobalSegMap.from_owners(np.repeat(np.arange(n_ranks), per_rank))
    dst = GlobalSegMap.from_owners(
        np.repeat(np.arange(n_ranks)[::-1], per_rank))
    router = Router.build(src, dst)
    gfield = np.arange(float(n_ranks * per_rank))
    rearranger = Rearranger(router, method="p2p", **knobs)
    world = SimWorld(n_ranks, timeout=5.0, faults=faults)

    def program(comm):
        av = AttrVect.from_dict({"f": gfield[src.local_indices(comm.rank)]})
        out = rearranger.rearrange(
            comm, av, len(dst.local_indices(comm.rank)),
            obs=obs.fork(comm.rank) if obs is not None else None,
        )
        return out.data.copy()

    return world.run(program), world


class TestCommFaults:
    def test_transient_retry_is_bit_identical(self):
        plan = FaultPlan(comm=[
            CommFault(kind="transient", src=0, dst=3, match=0, times=2)])
        obs = Obs()
        clean, _ = _mirror_transfer()
        faulted, _ = _mirror_transfer(
            faults=CommFaultInjector(plan, obs=obs), obs=obs,
            max_retries=3)
        for a, b in zip(faulted, clean):
            assert np.array_equal(a, b)
        totals = {}
        for h in obs.all_ranks():
            for name in h.metrics.names():
                m = h.metrics.get(name)
                if m.kind == "counter":
                    totals[name] = totals.get(name, 0) + m.value
        assert totals["resilience.retries"] == 2
        assert totals["resilience.faults_injected"] == 2

    def test_transient_beyond_budget_surfaces(self):
        plan = FaultPlan(comm=[
            CommFault(kind="transient", src=0, dst=3, times=5)])
        with pytest.raises(RuntimeError) as err:
            _mirror_transfer(faults=CommFaultInjector(plan), max_retries=1)
        assert isinstance(err.value.__cause__, CommTransientError)

    def test_drop_surfaces_structured_timeout(self):
        plan = FaultPlan(comm=[CommFault(kind="drop", src=1, dst=2)])
        with pytest.raises(RuntimeError) as err:
            _mirror_transfer(faults=CommFaultInjector(plan),
                             recv_timeout=0.4)
        cause = err.value.__cause__
        assert isinstance(cause, CommTimeoutError)
        assert (cause.src, cause.dst) == (1, 2)
        assert cause.tag == 7300
        assert cause.timeout == 0.4

    def test_kill_surfaces_as_root_cause(self):
        plan = FaultPlan(comm=[CommFault(kind="kill", rank=2, after_ops=0)])
        with pytest.raises(RuntimeError) as err:
            _mirror_transfer(faults=CommFaultInjector(plan),
                             recv_timeout=0.4)
        # Peers see timeouts/broken barriers; the killed rank must win.
        cause = err.value.__cause__
        assert isinstance(cause, RankFailure)
        assert cause.rank == 2

    def test_corrupt_flips_exactly_one_bit(self):
        plan = FaultPlan(seed=5, comm=[
            CommFault(kind="corrupt", src=0, dst=3)])
        clean, _ = _mirror_transfer()
        faulted, _ = _mirror_transfer(faults=CommFaultInjector(plan))
        diff = [int((a != b).sum()) for a, b in zip(faulted, clean)]
        assert sum(diff) == 1  # one element of one rank's output changed

    def test_no_injector_no_extra_messages(self):
        """Resilience knobs armed but no faults installed: same bits,
        same ledger traffic as the pre-resilience rearranger."""
        plain, world_plain = _mirror_transfer()
        armed, world_armed = _mirror_transfer(
            max_retries=3, retry_backoff_s=0.01, recv_timeout=5.0)
        for a, b in zip(armed, plain):
            assert np.array_equal(a, b)
        assert (world_armed.ledger.total_messages
                == world_plain.ledger.total_messages)
        assert world_armed.ledger.total_bytes == world_plain.ledger.total_bytes


class TestRetryWithBackoff:
    def test_succeeds_within_budget(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise CommTransientError(0, 1, 7, attempt=calls["n"])
            return "ok"

        slept = []
        obs = Obs()
        out = retry_with_backoff(
            flaky, RetryPolicy(max_retries=3, backoff_s=0.5),
            obs=obs, sleep=slept.append)
        assert out == "ok"
        assert calls["n"] == 3
        assert slept == [0.5, 1.0]  # exponential, deterministic
        assert obs.metrics.get("resilience.retries").value == 2

    def test_budget_exhausted_reraises(self):
        def always():
            raise CommTransientError(0, 1, 7)

        with pytest.raises(CommTransientError):
            retry_with_backoff(always, RetryPolicy(max_retries=2),
                               sleep=lambda s: None)


# -- restart corruption ------------------------------------------------------


class TestRestartCorruption:
    def _save(self, tmp_path):
        rng = np.random.default_rng(3)
        fields = {"t": rng.standard_normal((6, 4)), "q": rng.standard_normal(9)}
        save_restart(tmp_path, fields, scalars={"time": 7.0})
        return fields

    def test_roundtrip_with_crcs(self, tmp_path):
        fields = self._save(tmp_path)
        loaded, scalars = load_restart(tmp_path)
        assert scalars["time"] == 7.0
        for name in fields:
            assert np.array_equal(loaded[name], fields[name])

    def test_bitflip_detected(self, tmp_path):
        self._save(tmp_path)
        corrupt_checkpoint(tmp_path, "bitflip")
        with pytest.raises(RestartError, match="CRC") as err:
            load_restart(tmp_path)
        assert err.value.field in ("t", "q")
        assert err.value.expected != err.value.actual

    def test_truncate_detected(self, tmp_path):
        self._save(tmp_path)
        corrupt_checkpoint(tmp_path, "truncate")
        with pytest.raises(RestartError):
            load_restart(tmp_path)

    def test_stale_version_structured(self, tmp_path):
        self._save(tmp_path)
        corrupt_checkpoint(tmp_path, "stale")
        with pytest.raises(RestartError, match="version") as err:
            load_restart(tmp_path)
        assert err.value.expected == 1
        assert err.value.actual == 99
        # Backward compatible with callers expecting ValueError.
        assert isinstance(err.value, ValueError)

    def test_missing_manifest_structured(self, tmp_path):
        with pytest.raises(RestartError, match="manifest"):
            load_restart(tmp_path)

    def test_size_shape_mismatch_structured(self, tmp_path):
        import json

        self._save(tmp_path)
        manifest = tmp_path / "restart.json"
        data = json.loads(manifest.read_text())
        data["fields"]["q"]["size"] = 5
        manifest.write_text(json.dumps(data))
        with pytest.raises(RestartError, match="size") as err:
            load_restart(tmp_path)
        assert err.value.field == "q"

    def test_manifest_written_atomically(self, tmp_path):
        self._save(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))


# -- rotating checkpoints ----------------------------------------------------


def _fake_saver(payload):
    def saver(directory):
        save_restart(directory / "comp", {"x": payload},
                     scalars={"v": float(payload[0])})
    return saver


class TestCheckpointManager:
    def test_rotation_keeps_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=2)
        for step in (1, 2, 3):
            mgr.to_file(_fake_saver(np.full(4, float(step))), step)
        names = [p.name for p in mgr.checkpoints()]
        assert names == ["ckpt-00000002", "ckpt-00000003"]
        assert not list(tmp_path.glob(".tmp-*"))

    def test_validate_catches_each_corruption(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=3)
        for kind in ("bitflip", "truncate", "stale"):
            path = mgr.to_file(_fake_saver(np.arange(8.0)), 1)
            mgr.validate(path)
            corrupt_checkpoint(path, kind)
            with pytest.raises(CheckpointError):
                mgr.validate(path)

    def test_validate_catches_unmanifested_file(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=1)
        path = mgr.to_file(_fake_saver(np.arange(8.0)), 1)
        (path / "stray.bin").write_bytes(b"oops")
        with pytest.raises(CheckpointError, match="manifest does not cover"):
            mgr.validate(path)

    def test_restore_falls_back_past_corruption(self, tmp_path):
        obs = Obs()
        mgr = CheckpointManager(tmp_path, keep=3, obs=obs)
        for step in (1, 2, 3):
            mgr.to_file(_fake_saver(np.full(4, float(step))), step)
        corrupt_checkpoint(mgr.checkpoints()[-1], "bitflip")

        seen = {}

        def loader(directory):
            fields, scalars = load_restart(directory / "comp")
            seen["v"] = scalars["v"]

        restored = mgr.restore_latest_valid(loader)
        assert restored.name == "ckpt-00000002"
        assert seen["v"] == 2.0
        assert obs.metrics.get("resilience.checkpoint_fallbacks").value == 1
        assert obs.metrics.get("resilience.restores").value == 1

    def test_restore_raises_when_everything_corrupt(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=2)
        for step in (1, 2):
            mgr.to_file(_fake_saver(np.arange(4.0)), step)
        for ckpt in mgr.checkpoints():
            corrupt_checkpoint(ckpt, "truncate")
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            mgr.restore_latest_valid(lambda d: None)


# -- physics guardrail -------------------------------------------------------


def _column_state(ncol=8, nlev=5):
    from repro.atm.columns import ColumnState

    rng = np.random.default_rng(11)
    return ColumnState(
        u=rng.normal(5, 2, (ncol, nlev)),
        v=rng.normal(0, 2, (ncol, nlev)),
        t=rng.normal(280, 10, (ncol, nlev)),
        q=np.abs(rng.normal(5e-3, 1e-3, (ncol, nlev))),
        p=np.linspace(1e4, 1e5, nlev),
        tskin=rng.normal(288, 5, ncol),
        coszr=np.clip(rng.uniform(-0.2, 1.0, ncol), 0, None),
    )


class _PoisonedPhysics:
    """Conventional suite that emits NaN for a fixed set of columns."""

    def __init__(self, bad_columns):
        from repro.atm.physics import ConventionalPhysics

        self.inner = ConventionalPhysics()
        self.bad_columns = list(bad_columns)

    def compute(self, state, dt_s):
        tend = self.inner.compute(state, dt_s)
        tend.dt[self.bad_columns, :] = np.nan
        return tend

class TestGuardedPhysics:
    def test_healthy_suite_passes_through_bitwise(self):
        from repro.atm.physics import ConventionalPhysics

        state = _column_state()
        bare = ConventionalPhysics().compute(state.copy(), 600.0)
        guarded = GuardedPhysics(ConventionalPhysics()).compute(
            state.copy(), 600.0)
        for name in ("du", "dv", "dt", "dq", "gsw", "glw", "precip",
                     "cloud_fraction", "shflx", "lhflx"):
            assert np.array_equal(getattr(guarded, name), getattr(bare, name))

    def test_bad_columns_fall_back_others_untouched(self):
        from repro.atm.physics import ConventionalPhysics

        bad = [2, 5]
        state = _column_state()
        obs = Obs()
        guard = GuardedPhysics(_PoisonedPhysics(bad), obs=obs)
        tend = guard.compute(state.copy(), 600.0)
        reference = ConventionalPhysics().compute(state.copy(), 600.0)
        poisoned = _PoisonedPhysics(bad).compute(state.copy(), 600.0)

        ok = [c for c in range(8) if c not in bad]
        assert np.isfinite(tend.dt).all()
        # Fallback columns equal the conventional recompute...
        assert np.array_equal(tend.dt[bad], reference.dt[bad])
        # ...and healthy columns keep the primary's bits.
        assert np.array_equal(tend.dt[ok], poisoned.dt[ok])
        assert guard.fallback_columns_total == 2
        assert obs.metrics.get(
            "resilience.physics_fallback_columns").value == 2
        assert obs.metrics.get(
            "resilience.physics_fallback_events").value == 1

    def test_blowup_injection_detected(self):
        from repro.atm.physics import ConventionalPhysics

        plan = FaultPlan(seed=1, physics=[
            PhysicsFault(kind="blowup", step=0, columns=(1,))])
        guard = GuardedPhysics(
            ConventionalPhysics(),
            injector=PhysicsFaultInjector(plan),
            step_fn=lambda: 0,
        )
        tend = guard.compute(_column_state(), 600.0)
        reference = ConventionalPhysics().compute(_column_state(), 600.0)
        assert np.array_equal(tend.dt, reference.dt)  # fully repaired
        assert guard.fallback_columns_total == 1

    def test_injection_keyed_on_step(self):
        from repro.atm.physics import ConventionalPhysics

        plan = FaultPlan(physics=[
            PhysicsFault(kind="nan", step=7, columns=(0,))])
        step = {"n": 0}
        guard = GuardedPhysics(
            ConventionalPhysics(),
            injector=PhysicsFaultInjector(plan),
            step_fn=lambda: step["n"],
        )
        guard.compute(_column_state(), 600.0)
        assert guard.fallback_columns_total == 0  # step 0: nothing
        step["n"] = 7
        guard.compute(_column_state(), 600.0)
        assert guard.fallback_columns_total == 1  # step 7: injected


# -- watchdog ----------------------------------------------------------------


class TestWatchdog:
    def test_hung_domain_aborts_with_diagnostic(self):
        from repro.esm.scheduler import TaskDomainScheduler

        obs = Obs()
        sched = TaskDomainScheduler(
            obs=obs, concurrent=True, watchdog_s=0.2)
        release = threading.Event()
        handle = sched.launch("domain2", lambda _obs: release.wait(10.0))
        with pytest.raises(WatchdogTimeout, match="domain2"):
            handle.result()
        assert obs.metrics.get("resilience.watchdog_aborts").value == 1
        release.set()  # let the worker finish so shutdown is clean
        sched.shutdown()

    def test_fast_domain_unaffected(self):
        from repro.esm.scheduler import TaskDomainScheduler

        sched = TaskDomainScheduler(concurrent=True, watchdog_s=5.0)
        handle = sched.launch("domain2", lambda _obs: 42)
        assert handle.result() == 42
        sched.shutdown()


# -- coupled-model wiring ----------------------------------------------------


def _small_config(**kwargs):
    from repro.esm import AP3ESMConfig

    return AP3ESMConfig(atm_level=3, ocn_nlon=48, ocn_nlat=32,
                        ocn_levels=6, **kwargs)


class TestCoupledResilience:
    def test_disabled_is_zero_overhead_and_bitwise_stable(self):
        """resilience.enabled (guardrail armed, healthy physics) changes
        nothing: same bits as the disabled driver, no intervention
        counters beyond the checkpoint machinery (which is off here)."""
        from repro.esm import AP3ESM

        obs = Obs()
        plain = AP3ESM(_small_config(), obs=obs)
        plain.init()
        assert plain.guarded_physics is None
        assert plain.checkpoints is None
        plain.run_couplings(2)

        guarded = AP3ESM(_small_config(
            resilience=ResilienceConfig(enabled=True)))
        guarded.init()
        assert guarded.guarded_physics is not None
        guarded.run_couplings(2)

        assert np.array_equal(plain.atm.t_col, guarded.atm.t_col)
        assert np.array_equal(plain.atm.swe.h, guarded.atm.swe.h)
        assert np.array_equal(plain.ocn.t, guarded.ocn.t)
        assert guarded.guarded_physics.fallback_columns_total == 0
        resilience_counters = [
            name for h in obs.all_ranks() for name in h.metrics.names()
            if name.startswith("resilience.")
        ]
        assert resilience_counters == []

    def test_checkpoint_recover_resume_is_bitwise(self, tmp_path):
        from repro.esm import AP3ESM

        res = ResilienceConfig(enabled=True, checkpoint_every=2,
                               checkpoint_dir=str(tmp_path))
        reference = AP3ESM(_small_config(
            resilience=ResilienceConfig(enabled=True)))
        reference.init()
        reference.run_couplings(5)

        crashed = AP3ESM(_small_config(resilience=res))
        crashed.init()
        crashed.run_couplings(3)  # checkpoint written at coupling 2
        crashed.scheduler.shutdown()

        revived = AP3ESM(_small_config(resilience=res))
        revived.init()
        restored = revived.recover()
        assert restored.name == "ckpt-00000002"
        assert revived.n_couplings == 2
        revived.run_couplings(3)

        assert np.array_equal(reference.atm.t_col, revived.atm.t_col)
        assert np.array_equal(reference.ocn.t, revived.ocn.t)
        assert reference.clock.time == revived.clock.time

    def test_chaos_end_to_end(self, tmp_path):
        from repro.resilience.chaos import run_chaos

        plan = FaultPlan(
            seed=7,
            comm=[CommFault(kind="transient", src=0, dst=3, times=2)],
            checkpoints=[CheckpointFault(kind="bitflip", index=-1)],
            physics=[PhysicsFault(kind="nan", step=2, n_columns=3)],
        )
        res = ResilienceConfig(enabled=True, checkpoint_every=2,
                               checkpoint_dir=str(tmp_path),
                               max_retries=3, recv_timeout_s=5.0)
        report = run_chaos(plan, config=_small_config(resilience=res),
                           couplings=6)
        assert report.survived
        assert report.comm_masked is True
        assert report.bitwise_identical is True
        assert report.counters["resilience.retries"] > 0
        assert report.counters["resilience.checkpoint_fallbacks"] > 0
        assert report.counters["resilience.physics_fallback_columns"] > 0
        assert "bitwise identical" in report.summary()


class TestResilienceConfig:
    def test_checkpoint_requires_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            ResilienceConfig(enabled=True, checkpoint_every=2)

    def test_namelist_ignores_resilience_field(self, tmp_path):
        from repro.esm import AP3ESMConfig

        nml = tmp_path / "ap3esm.nml"
        nml.write_text("&ap3esm_nml\n  atm_level = 3\n/\n")
        cfg = AP3ESMConfig.from_namelist(nml)
        assert cfg.resilience.enabled is False
