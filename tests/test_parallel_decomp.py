"""Tests for block decompositions and unstructured partitioners."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel import (
    Block1D,
    Block2D,
    block_ranges,
    factor_2d,
    partition_cells_contiguous,
    partition_cells_space_filling,
)


@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=64))
def test_block_ranges_cover_and_balance(n, parts):
    ranges = block_ranges(n, parts)
    assert len(ranges) == parts
    # Coverage: concatenated ranges tile [0, n) exactly.
    cursor = 0
    for s, e in ranges:
        assert s == cursor
        assert e >= s
        cursor = e
    assert cursor == n
    # Balance: sizes differ by at most one.
    sizes = [e - s for s, e in ranges]
    assert max(sizes) - min(sizes) <= 1


def test_block_ranges_rejects_bad_args():
    with pytest.raises(ValueError):
        block_ranges(-1, 2)
    with pytest.raises(ValueError):
        block_ranges(10, 0)


@given(
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=1, max_value=32),
)
def test_block1d_owner_matches_ranges(n, parts):
    ranges = block_ranges(n, parts)
    probe = Block1D(n, parts, 0)
    for rank, (s, e) in enumerate(ranges):
        for g in {s, (s + e) // 2, e - 1} if e > s else set():
            assert probe.owner(g) == rank


def test_block1d_size_and_range():
    b = Block1D(10, 3, 1)
    assert b.range == (4, 7)
    assert b.size == 3
    with pytest.raises(IndexError):
        b.owner(10)


@given(st.integers(min_value=1, max_value=4096))
def test_factor_2d_is_exact_factorization(n):
    px, py = factor_2d(n)
    assert px * py == n


def test_factor_2d_respects_aspect():
    px, py = factor_2d(64, aspect=4.0)
    assert px * py == 64
    assert px >= py  # elongated in x as requested


def test_block2d_tiles_grid():
    ny, nx, py, px = 17, 23, 3, 4
    covered = np.zeros((ny, nx), dtype=int)
    for rank in range(py * px):
        b = Block2D(ny, nx, py, px, rank)
        ys, xs = b.global_slices()
        covered[ys, xs] += 1
    assert np.all(covered == 1)


def test_block2d_neighbors_periodic_x():
    b = Block2D(8, 8, 2, 2, rank=0)  # coords (0, 0)
    assert b.neighbor(0, -1) == 1      # wraps in x
    assert b.neighbor(0, +1) == 1
    assert b.neighbor(-1, 0) is None   # off the south edge
    assert b.neighbor(+1, 0) == 2


def test_block2d_neighbors_nonperiodic():
    b = Block2D(8, 8, 2, 2, rank=0)
    assert b.neighbor(0, -1, periodic_x=False) is None


def test_block2d_owner_of():
    ny, nx, py, px = 12, 16, 3, 4
    for rank in range(py * px):
        b = Block2D(ny, nx, py, px, rank)
        ys, xs = b.global_slices()
        assert Block2D.owner_of(ny, nx, py, px, ys.start, xs.start) == rank


def test_contiguous_partition_counts():
    owners = partition_cells_contiguous(100, 7)
    counts = np.bincount(owners, minlength=7)
    assert counts.sum() == 100
    assert counts.max() - counts.min() <= 1


def test_space_filling_partition_balances():
    rng = np.random.default_rng(0)
    n = 1000
    lon = rng.uniform(0, 2 * np.pi, n)
    lat = rng.uniform(-np.pi / 2, np.pi / 2, n)
    owners = partition_cells_space_filling(lon, lat, 8)
    counts = np.bincount(owners, minlength=8)
    assert counts.sum() == n
    assert counts.max() - counts.min() <= 1


def test_space_filling_partition_is_local():
    """SFC partitions must be more compact than striding: the mean pairwise
    angular spread within a part should beat a random partition."""
    rng = np.random.default_rng(1)
    n = 2000
    lon = rng.uniform(0, 2 * np.pi, n)
    lat = rng.uniform(-np.pi / 2, np.pi / 2, n)
    sfc = partition_cells_space_filling(lon, lat, 16)
    rnd = rng.integers(0, 16, n)

    def spread(owners):
        total = 0.0
        for p in range(16):
            sel = owners == p
            total += lon[sel].std() + lat[sel].std()
        return total

    assert spread(sfc) < 0.6 * spread(rnd)


def test_space_filling_shape_mismatch():
    with pytest.raises(ValueError):
        partition_cells_space_filling([0.0, 1.0], [0.0], 2)
