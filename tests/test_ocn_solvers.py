"""Tests for the ocean solvers: metrics, barotropic, mixing, tracers."""

import numpy as np
import pytest

from repro.ocn import (
    BarotropicSolver,
    BarotropicState,
    BaroclinicSolver,
    CGridMetrics,
    MixingParams,
    TracerSolver,
    canuto_kappa,
    divergence_c,
    grad_x,
    grad_y,
    implicit_vertical_diffusion,
    linear_eos,
    richardson_number,
)


@pytest.fixture(scope="module")
def metrics(tripolar_small):
    return CGridMetrics.build(tripolar_small)


@pytest.fixture(scope="module")
def ocean_pieces(tripolar_small, metrics):
    g = tripolar_small
    mask3d = g.levels_mask()
    dz = np.diff(g.z_interfaces)
    return g, metrics, mask3d, dz


class TestMetrics:
    def test_masks_consistent(self, ocean_pieces):
        g, m, _, _ = ocean_pieces
        # A face is open only if both neighbors are ocean.
        assert np.all(~m.mask_u[~m.mask_c])
        assert np.all(~m.mask_v[~m.mask_c])
        # The seam row's north faces are closed.
        assert not m.mask_v[-1].any()

    def test_face_lengths_positive_on_open_faces(self, ocean_pieces):
        _, m, _, _ = ocean_pieces
        assert np.all(m.ly_east[m.mask_u] > 0)
        assert np.all(m.dxu[m.mask_u] > 0)

    def test_divergence_of_zero_flux(self, metrics):
        z = np.zeros(metrics.shape)
        assert np.allclose(divergence_c(metrics, z, z), 0.0)

    def test_divergence_integrates_to_zero(self, metrics):
        """Closed domain: the area integral of any flux divergence is 0."""
        rng = np.random.default_rng(0)
        fu = rng.standard_normal(metrics.shape)
        fv = rng.standard_normal(metrics.shape)
        div = divergence_c(metrics, fu, fv)
        total = np.sum(metrics.area * div)
        scale = np.abs(fu).max() * metrics.ly_east.max()
        assert abs(total) < 1e-9 * scale

    def test_gradients_of_constant_vanish(self, metrics):
        phi = np.full(metrics.shape, 4.2)
        assert np.allclose(grad_x(metrics, phi), 0.0)
        assert np.allclose(grad_y(metrics, phi), 0.0)


class TestBarotropic:
    def test_volume_conserved(self, ocean_pieces):
        g, m, _, _ = ocean_pieces
        solver = BarotropicSolver(m, g.depth)
        s = BarotropicState.zeros(m.shape)
        s.eta = np.where(m.mask_c, 0.1 * np.sin(3 * g.lon), 0.0)
        v0 = solver.total_volume(s)
        dt = solver.max_stable_dt()
        for _ in range(50):
            s, _ = solver.step(s, dt)
        assert solver.total_volume(s) == pytest.approx(v0, abs=1e-6 * m.area.sum() ** 0.5)

    def test_stability_long_run(self, ocean_pieces):
        """Semi-implicit Coriolis: KE must not grow from an unforced state."""
        g, m, _, _ = ocean_pieces
        solver = BarotropicSolver(m, g.depth)
        s = BarotropicState.zeros(m.shape)
        s.eta = np.where(m.mask_c, np.exp(-((g.lat) ** 2 + (g.lon - 3) ** 2) * 20.0), 0.0)
        dt = solver.max_stable_dt()
        for _ in range(100):
            s, _ = solver.step(s, dt)
        ke_mid = solver.kinetic_energy(s)
        for _ in range(400):
            s, _ = solver.step(s, dt)
        assert solver.kinetic_energy(s) < 2.0 * ke_mid
        assert np.isfinite(s.eta).all()

    def test_land_stays_dry(self, ocean_pieces):
        g, m, _, _ = ocean_pieces
        solver = BarotropicSolver(m, g.depth)
        s = BarotropicState.zeros(m.shape)
        s.eta = np.where(m.mask_c, 0.5, 0.0)
        s, _ = solver.step(s, solver.max_stable_dt())
        assert np.all(s.eta[~m.mask_c] == 0.0)
        assert np.all(s.u[~m.mask_u] == 0.0)

    def test_wind_stress_accelerates(self, ocean_pieces):
        g, m, _, _ = ocean_pieces
        solver = BarotropicSolver(m, g.depth)
        s = BarotropicState.zeros(m.shape)
        dt = solver.max_stable_dt()
        taux = np.where(m.mask_u, 0.1, 0.0)
        for _ in range(10):
            s, _ = solver.step(s, dt, taux=taux)
        assert solver.kinetic_energy(s) > 0

    def test_step_returns_norm(self, ocean_pieces):
        g, m, _, _ = ocean_pieces
        solver = BarotropicSolver(m, g.depth)
        s = BarotropicState.zeros(m.shape)
        s.eta = np.where(m.mask_c, 1.0, 0.0)
        _, norm = solver.step(s, solver.max_stable_dt())
        assert norm > 0

    def test_depth_shape_validated(self, metrics):
        with pytest.raises(ValueError):
            BarotropicSolver(metrics, np.zeros((3, 3)))


class TestMixing:
    def test_richardson_sign(self):
        dz = np.array([10.0, 10.0, 10.0])
        # Stable stratification (density increasing downward), no shear.
        rho = np.array([1024.0, 1025.0, 1026.0])[:, None]
        u = np.zeros((3, 1))
        ri = richardson_number(rho, u, u, dz)
        assert np.all(ri > 0)
        # Unstable stratification.
        ri_unstable = richardson_number(rho[::-1], u, u, dz)
        assert np.all(ri_unstable < 0)

    def test_canuto_kappa_limits(self):
        p = MixingParams()
        assert canuto_kappa(np.array([1e9]), p)[0] == pytest.approx(p.kappa_background, rel=0.01)
        assert canuto_kappa(np.array([-1.0]), p)[0] == p.kappa_max
        assert canuto_kappa(np.array([0.0]), p)[0] == pytest.approx(
            p.kappa_background + p.kappa_0
        )
        # Monotone decreasing with Ri.
        ri = np.linspace(0, 10, 50)
        k = canuto_kappa(ri, p)
        assert np.all(np.diff(k) <= 0)

    def test_implicit_diffusion_conserves_and_smooths(self):
        dz = np.full(8, 10.0)
        field = np.zeros((8, 4))
        field[3] = 10.0
        kappa = np.full((7, 4), 1e-2)
        out = implicit_vertical_diffusion(field, kappa, dz, dt=3600.0)
        # Column integral conserved (uniform dz).
        assert np.allclose(out.sum(axis=0), field.sum(axis=0))
        # Peak smoothed, neighbors raised.
        assert np.all(out[3] < 10.0)
        assert np.all(out[2] > 0.0)

    def test_implicit_diffusion_stable_at_huge_dt(self):
        dz = np.full(5, 5.0)
        field = np.random.default_rng(0).standard_normal((5, 10))
        kappa = np.full((4, 10), 0.1)
        out = implicit_vertical_diffusion(field, kappa, dz, dt=1e6)
        # Backward Euler: bounded by the initial extremes.
        assert out.max() <= field.max() + 1e-9
        assert out.min() >= field.min() - 1e-9

    def test_mask_blocks_diffusion_through_bathymetry(self):
        dz = np.full(4, 10.0)
        field = np.array([[10.0], [10.0], [0.0], [0.0]])
        mask = np.array([[True], [True], [False], [False]])
        kappa = np.full((3, 1), 1.0)
        out = implicit_vertical_diffusion(field, kappa, dz, 1e5, mask3d=mask)
        assert np.allclose(out[2:], 0.0)  # dry cells untouched
        assert np.allclose(out[:2], 10.0)  # nothing leaked out

    def test_diffusion_validates_inputs(self):
        with pytest.raises(ValueError):
            implicit_vertical_diffusion(np.zeros((4, 2)), np.zeros((2, 2)), np.ones(4), 1.0)
        with pytest.raises(ValueError):
            implicit_vertical_diffusion(np.zeros((4, 2)), np.zeros((3, 2)), np.ones(4), -1.0)


class TestBaroclinic:
    def test_eos_density_decreases_with_temperature(self):
        t = np.array([0.0, 10.0, 20.0])
        s = np.full(3, 35.0)
        rho = linear_eos(t, s)
        assert np.all(np.diff(rho) < 0)
        assert rho[1] == pytest.approx(1026.0, rel=1e-6)

    def test_step_remains_finite_and_masked(self, ocean_pieces):
        g, m, mask3d, dz = ocean_pieces
        solver = BaroclinicSolver(m, mask3d, dz)
        shape3 = mask3d.shape
        t = np.where(mask3d, 15.0, 0.0)
        t[0] += np.where(mask3d[0], 5.0 * np.cos(g.lat), 0.0)
        s = np.where(mask3d, 35.0, 0.0)
        u = np.zeros(shape3)
        v = np.zeros(shape3)
        for _ in range(5):
            u, v = solver.step(u, v, t, s, 1800.0, taux=np.full(m.shape, 0.1))
        assert np.isfinite(u).all() and np.isfinite(v).all()
        assert np.all(u[~solver.mask_u3] == 0.0)
        assert np.abs(u).max() < 5.0

    def test_pressure_increases_with_cold_water_above(self, ocean_pieces):
        g, m, mask3d, dz = ocean_pieces
        solver = BaroclinicSolver(m, mask3d, dz)
        warm = np.full(mask3d.shape, 20.0)
        cold = np.full(mask3d.shape, 0.0)
        s = np.full(mask3d.shape, 35.0)
        p_warm = solver.pressure(warm, s)
        p_cold = solver.pressure(cold, s)
        assert np.all(p_cold[-1] >= p_warm[-1])

    def test_shape_validation(self, ocean_pieces):
        g, m, mask3d, dz = ocean_pieces
        with pytest.raises(ValueError):
            BaroclinicSolver(m, mask3d[:, :10, :10], dz)
        with pytest.raises(ValueError):
            BaroclinicSolver(m, mask3d, dz[:-1])


class TestTracers:
    def test_tracer_content_conserved_by_advection(self, ocean_pieces):
        g, m, mask3d, dz = ocean_pieces
        solver = TracerSolver(m, mask3d, dz)
        rng = np.random.default_rng(1)
        c = np.where(mask3d, 10.0 + rng.random(mask3d.shape), 0.0)
        u = np.where(solver.mask_u3, 0.05 * rng.standard_normal(mask3d.shape), 0.0)
        v = np.where(solver.mask_v3, 0.05 * rng.standard_normal(mask3d.shape), 0.0)
        c0 = solver.content(c)
        for _ in range(10):
            c = solver.advect(c, u, v, 1800.0)
        assert solver.content(c) == pytest.approx(c0, rel=1e-12)

    def test_upwind_is_essentially_monotone(self, ocean_pieces):
        """Upwind in flux form is strictly monotone only for discretely
        non-divergent transport; masked coastlines make the test flow
        weakly divergent, so we allow a small (2 % of the range) excursion
        while requiring conservation to hold exactly (previous test)."""
        g, m, mask3d, dz = ocean_pieces
        solver = TracerSolver(m, mask3d, dz)
        rng = np.random.default_rng(2)
        c = np.where(mask3d, rng.uniform(5.0, 25.0, mask3d.shape), 0.0)
        u = np.where(solver.mask_u3, 0.05, 0.0)
        v = np.where(solver.mask_v3, 0.02, 0.0)
        lo, hi = c[mask3d].min(), c[mask3d].max()
        tol = 0.02 * (hi - lo)
        for _ in range(20):
            c = solver.advect(c, u, v, 1800.0)
        assert c[mask3d].min() >= lo - tol
        assert c[mask3d].max() <= hi + tol

    def test_surface_heat_flux_warms_surface_only(self, ocean_pieces):
        g, m, mask3d, dz = ocean_pieces
        solver = TracerSolver(m, mask3d, dz)
        t = np.where(mask3d, 10.0, 0.0)
        s = np.where(mask3d, 35.0, 0.0)
        zeros = np.zeros(mask3d.shape)
        flux = np.where(mask3d[0], 200.0, 0.0)
        t2, _ = solver.step(t, s, zeros, zeros, 3600.0, surface_heat_flux=flux)
        warmed = t2[0][mask3d[0]] - t[0][mask3d[0]]
        assert np.all(warmed > 0)

    def test_freshwater_dilutes_salinity(self, ocean_pieces):
        g, m, mask3d, dz = ocean_pieces
        solver = TracerSolver(m, mask3d, dz)
        t = np.where(mask3d, 10.0, 0.0)
        s = np.where(mask3d, 35.0, 0.0)
        zeros = np.zeros(mask3d.shape)
        fresh = np.where(mask3d[0], 1e-4, 0.0)
        _, s2 = solver.step(t, s, zeros, zeros, 3600.0, surface_fresh_flux=fresh)
        assert np.all(s2[0][mask3d[0]] < 35.0)


class TestMUSCLAdvection:
    def test_muscl_conserves_content(self, ocean_pieces):
        g, m, mask3d, dz = ocean_pieces
        solver = TracerSolver(m, mask3d, dz)
        rng = np.random.default_rng(5)
        c = np.where(mask3d, 10.0 + rng.random(mask3d.shape), 0.0)
        u = np.where(solver.mask_u3, 0.05 * rng.standard_normal(mask3d.shape), 0.0)
        v = np.where(solver.mask_v3, 0.05 * rng.standard_normal(mask3d.shape), 0.0)
        c0 = solver.content(c)
        for _ in range(10):
            c = solver.advect(c, u, v, 1800.0, scheme="muscl")
        assert solver.content(c) == pytest.approx(c0, rel=1e-12)

    def test_muscl_less_diffusive_than_upwind(self, ocean_pieces):
        """Advecting a front: the limited 2nd-order scheme keeps it
        sharper (larger gradient variance) than 1st-order upwind."""
        g, m, mask3d, dz = ocean_pieces
        solver = TracerSolver(m, mask3d, dz)
        # A zonal step function in a wet band.
        c0 = np.where(mask3d, 10.0, 0.0)
        nlon = mask3d.shape[2]
        c0[:, :, nlon // 2 :] += 10.0
        u = np.where(solver.mask_u3, 0.3, 0.0)
        v = np.zeros(mask3d.shape)

        def sharpness(c):
            d = np.abs(np.diff(c, axis=2))[mask3d[:, :, 1:] & mask3d[:, :, :-1]]
            return float((d**2).sum())

        c_up = c0.copy()
        c_mu = c0.copy()
        for _ in range(30):
            c_up = solver.advect(c_up, u, v, 1800.0, scheme="upwind")
            c_mu = solver.advect(c_mu, u, v, 1800.0, scheme="muscl")
        assert sharpness(c_mu) > sharpness(c_up)

    def test_muscl_essentially_monotone(self, ocean_pieces):
        g, m, mask3d, dz = ocean_pieces
        solver = TracerSolver(m, mask3d, dz)
        rng = np.random.default_rng(6)
        c = np.where(mask3d, rng.uniform(5.0, 25.0, mask3d.shape), 0.0)
        u = np.where(solver.mask_u3, 0.05, 0.0)
        v = np.where(solver.mask_v3, 0.02, 0.0)
        lo, hi = c[mask3d].min(), c[mask3d].max()
        tol = 0.05 * (hi - lo)  # limiter bounds excursions near coasts
        for _ in range(20):
            c = solver.advect(c, u, v, 1800.0, scheme="muscl")
        assert c[mask3d].min() >= lo - tol
        assert c[mask3d].max() <= hi + tol

    def test_unknown_scheme_rejected(self, ocean_pieces):
        g, m, mask3d, dz = ocean_pieces
        solver = TracerSolver(m, mask3d, dz)
        with pytest.raises(ValueError):
            solver.advect(np.zeros(mask3d.shape), np.zeros(mask3d.shape),
                          np.zeros(mask3d.shape), 1.0, scheme="weno9")

    def test_step_honors_configured_scheme(self, ocean_pieces):
        g, m, mask3d, dz = ocean_pieces
        up = TracerSolver(m, mask3d, dz, advection_scheme="upwind")
        mu = TracerSolver(m, mask3d, dz, advection_scheme="muscl")
        rng = np.random.default_rng(7)
        t = np.where(mask3d, 10.0 + rng.random(mask3d.shape), 0.0)
        s = np.where(mask3d, 35.0, 0.0)
        u = np.where(up.mask_u3, 0.2, 0.0)
        zeros = np.zeros(mask3d.shape)
        t_up, _ = up.step(t, s, u, zeros, 1800.0)
        t_mu, _ = mu.step(t, s, u, zeros, 1800.0)
        assert not np.array_equal(t_up, t_mu)
