"""Tests for the non-ocean-point removal (§5.2.2) and the LICOM model."""

import numpy as np
import pytest

from repro.ocn import (
    Compressor,
    LicomConfig,
    LicomModel,
    block_owner_map,
    compressed_equals_full,
    load_stats,
    wet_partition,
    wet_topology_matrix,
)
from repro.parallel import comm_graph_from_matrix, greedy_locality_mapping, traffic_split


@pytest.fixture(scope="module")
def mask3d(tripolar_small):
    return tripolar_small.levels_mask()


class TestCompressor:
    def test_roundtrip_exact(self, mask3d):
        comp = Compressor(mask3d)
        rng = np.random.default_rng(0)
        field = rng.standard_normal(mask3d.shape)
        packed = comp.compress(field)
        assert packed.shape == (comp.n_wet,)
        restored = comp.decompress(packed, fill=np.nan)
        assert np.array_equal(restored[mask3d], field[mask3d])
        assert np.all(np.isnan(restored[~mask3d]))

    def test_reduction_about_30_to_45_percent(self, mask3d):
        comp = Compressor(mask3d)
        assert 0.25 < comp.reduction < 0.50

    def test_kernel_equivalence_bitwise(self, mask3d):
        """'Consistent results': packed execution == masked full execution."""
        comp = Compressor(mask3d)
        rng = np.random.default_rng(1)
        field = rng.standard_normal(mask3d.shape) + 10.0

        def kernel(x):
            return np.sqrt(np.abs(x)) * 1.7 + x**2 * 1e-3

        assert compressed_equals_full(comp, kernel, field)

    def test_memory_bytes(self, mask3d):
        comp = Compressor(mask3d)
        full, packed = comp.memory_bytes(n_fields=4)
        assert full == comp.n_full * 8 * 4
        assert packed == comp.n_wet * 8 * 4
        assert packed < full

    def test_shape_validation(self, mask3d):
        comp = Compressor(mask3d)
        with pytest.raises(ValueError):
            comp.compress(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            comp.decompress(np.zeros(3))


class TestRankRemap:
    def test_wet_partition_balances_load(self, mask3d):
        n_ranks = 12
        before = block_owner_map(mask3d, py=3, px=4)
        after = wet_partition(mask3d, n_ranks)
        s_before = load_stats(mask3d, before, n_ranks)
        s_after = load_stats(mask3d, after, n_ranks)
        assert s_after["imbalance"] < s_before["imbalance"]
        assert s_after["imbalance"] < 1.2

    def test_wet_partition_covers_all_wet_columns(self, mask3d):
        owners = wet_partition(mask3d, 8)
        wet_cols = mask3d.sum(axis=0) > 0
        assert np.all(owners[wet_cols] >= 0)
        assert np.all(owners[~wet_cols] == -1)
        assert set(np.unique(owners[wet_cols])) <= set(range(8))

    def test_wet_partition_rank_validation(self, mask3d):
        with pytest.raises(ValueError):
            wet_partition(mask3d, 0)

    def test_topology_matrix_symmetric(self, mask3d):
        owners = wet_partition(mask3d, 6)
        mat = wet_topology_matrix(owners, 6)
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)

    def test_new_topology_feeds_locality_mapping(self, mask3d):
        """End-to-end §5.2.2 pipeline: compress -> remap ranks -> rebuild
        the communication topology -> map onto nodes."""
        n_ranks = 8
        owners = wet_partition(mask3d, n_ranks)
        mat = wet_topology_matrix(owners, n_ranks)
        graph = comm_graph_from_matrix(mat)
        placement = greedy_locality_mapping(graph, n_nodes=4, ranks_per_node=2,
                                            nodes_per_supernode=2)
        split = traffic_split(graph, placement)
        total = sum(split.values())
        assert total > 0
        # The greedy mapping keeps a majority of traffic below the top level.
        assert split["inter_supernode"] < 0.7 * total


class TestLicomModel:
    @pytest.fixture(scope="class")
    def model(self):
        m = LicomModel(LicomConfig(nlon=48, nlat=32, n_levels=10))
        m.init()
        m.import_state({
            "taux": np.where(m.metrics.mask_c, 0.05, 0.0),
            "heat_flux": np.where(m.metrics.mask_c, 30.0, 0.0),
        })
        m.run(10)
        return m

    def test_substep_ratio(self, model):
        assert model.dt_baroclinic == pytest.approx(10 * model.dt_barotropic)
        assert model.dt_tracer == model.dt_baroclinic

    def test_exports_all_coupling_fields(self, model):
        out = model.export_state()
        assert {"sst", "sss", "ssh", "u_surf", "v_surf", "freezing"} <= set(out)
        for key in ("sst", "ssh", "u_surf"):
            assert np.isfinite(out[key]).all()

    def test_sst_physical(self, model):
        wet = model.mask3d[0]
        sst = model.export_state()["sst"][wet]
        assert sst.min() >= -1.8 - 1e-9
        assert sst.max() < 40.0

    def test_freezing_floor_enforced(self, model):
        assert np.all(model.t[model.mask3d] >= -1.8 - 1e-12)

    def test_import_validates_shapes(self, model):
        with pytest.raises(ValueError):
            model.import_state({"taux": np.zeros(5)})

    def test_memory_report(self, model):
        rep = model.memory_report()
        assert rep["packed_bytes"] < rep["full_bytes"]
        assert 0.2 < rep["reduction"] < 0.6

    def test_timers(self, model):
        names = set(model.timers.names())
        assert {"ocn_run", "ocn_barotropic", "ocn_baroclinic", "ocn_tracer"} <= names

    def test_lifecycle(self):
        m = LicomModel(LicomConfig(nlon=48, nlat=32, n_levels=5))
        with pytest.raises(RuntimeError):
            m.step()
        m.init()
        m.step()
        summary = m.finalize()
        assert summary["steps"] == 1
        with pytest.raises(RuntimeError):
            m.step()
