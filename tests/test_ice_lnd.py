"""Tests for the sea-ice and land components."""

import numpy as np
import pytest

from repro.ice import CiceConfig, CiceModel
from repro.lnd import LandConfig, LandModel


@pytest.fixture(scope="module")
def ice(tripolar_small):
    m = CiceModel(tripolar_small)
    m.init()
    return m


class TestCice:
    def test_initial_ice_is_polar_and_on_ocean(self, ice):
        has_ice = ice.concentration > 0
        assert has_ice.any()
        assert np.all(np.abs(ice.grid.lat[has_ice]) > np.radians(65.0))
        assert np.all(ice.grid.mask[has_ice])

    def test_freezing_ocean_grows_ice(self, tripolar_small):
        m = CiceModel(tripolar_small)
        m.init()
        freezing = tripolar_small.mask & (np.abs(tripolar_small.lat) > np.radians(60))
        m.import_state({"freezing": freezing})
        v0 = m.total_volume()
        for _ in range(10):
            m.step(3600.0)
        assert m.total_volume() > v0

    def test_strong_sun_melts_ice(self, tripolar_small):
        m = CiceModel(tripolar_small)
        m.init()
        shape = m.metrics.shape
        m.import_state({
            "gsw": np.full(shape, 600.0),
            "glw": np.full(shape, 350.0),
            "t_air": np.full(shape, 10.0),
        })
        v0 = m.total_volume()
        for _ in range(48):
            m.step(3600.0)
        assert m.total_volume() < v0

    def test_concentration_bounded(self, tripolar_small):
        m = CiceModel(tripolar_small)
        m.init()
        m.import_state({"freezing": tripolar_small.mask.copy()})
        for _ in range(20):
            m.step(3600.0)
        assert m.concentration.min() >= 0.0
        assert m.concentration.max() <= 1.0
        assert np.all(m.concentration[~tripolar_small.mask] == 0.0)

    def test_drift_transports_ice(self, tripolar_small):
        m = CiceModel(tripolar_small)
        m.init()
        u = np.where(m.metrics.mask_u, 0.2, 0.0)
        m.import_state({"u_drift": u})
        thick0 = m.thickness.copy()
        for _ in range(10):
            m.step(3600.0)
        moved = np.abs(m.thickness - thick0)[tripolar_small.mask]
        assert moved.max() > 0

    def test_export_albedo_reflects_ice(self, ice):
        out = ice.export_state()
        icy = out["ice_fraction"] > 0.5
        open_ocean = (out["ice_fraction"] == 0) & ice.grid.mask
        assert out["albedo"][icy].min() > out["albedo"][open_ocean].max()

    def test_import_shape_validated(self, ice):
        with pytest.raises(ValueError):
            ice.import_state({"sst": np.zeros(3)})

    def test_lifecycle(self, tripolar_small):
        m = CiceModel(tripolar_small)
        with pytest.raises(RuntimeError):
            m.step(3600.0)
        m.init()
        m.step(3600.0)
        s = m.finalize()
        assert s["steps"] == 1


class TestLand:
    def _forcing(self, n, gsw=300.0, precip=0.0):
        return dict(
            gsw=np.full(n, gsw),
            glw=np.full(n, 320.0),
            precip=np.full(n, precip),
            t_air=np.full(n, 288.0),
            dt=1800.0,
        )

    def test_sunny_forcing_warms_surface(self):
        m = LandModel(50)
        m.init()
        t0 = m.tskin.mean()
        for _ in range(24):
            m.force(**self._forcing(50, gsw=700.0))
        assert m.tskin.mean() > t0

    def test_rain_fills_bucket_then_runs_off(self):
        m = LandModel(10)
        m.init()
        heavy = self._forcing(10, gsw=0.0, precip=5e-2)  # heavy rain
        out = None
        for _ in range(50):
            out = m.force(**heavy)
        assert np.all(m.bucket <= m.config.bucket_capacity + 1e-12)
        assert out["runoff"].max() > 0
        assert np.all(out["soil_wetness"] <= 1.0)

    def test_dry_bucket_limits_evaporation(self):
        m = LandModel(10)
        m.init()
        m.bucket[:] = 0.0
        out = m.force(**self._forcing(10, gsw=800.0))
        assert np.all(out["evaporation"] == 0.0)

    def test_skin_temperature_bounded(self):
        m = LandModel(5)
        m.init()
        for _ in range(200):
            m.force(**self._forcing(5, gsw=1200.0))
        assert m.tskin.max() <= 340.0

    def test_mask_leaves_non_land_untouched(self):
        mask = np.array([True, False, True])
        m = LandModel(3, land_mask=mask)
        m.init()
        t_before = m.tskin[1]
        m.force(**self._forcing(3, gsw=900.0))
        assert m.tskin[1] == t_before

    def test_validation(self):
        with pytest.raises(ValueError):
            LandModel(0)
        with pytest.raises(ValueError):
            LandModel(4, land_mask=np.ones(3, bool))
        m = LandModel(4)
        m.init()
        with pytest.raises(ValueError):
            m.force(np.zeros(3), np.zeros(4), np.zeros(4), np.zeros(4), 1800.0)
        with pytest.raises(ValueError):
            m.force(np.zeros(4), np.zeros(4), np.zeros(4), np.zeros(4), 0.0)

    def test_finalize_summary(self):
        m = LandModel(8)
        m.init()
        m.force(**self._forcing(8))
        s = m.finalize()
        assert s["steps"] == 1
        assert 180.0 < s["mean_tskin"] < 340.0
