"""Tests for deterministic RNG derivation."""

import numpy as np

from repro.utils import derive_seed, seeded


def test_same_parts_same_stream():
    a = seeded("atm", 3).standard_normal(8)
    b = seeded("atm", 3).standard_normal(8)
    assert np.array_equal(a, b)


def test_different_parts_different_stream():
    a = seeded("atm", 3).standard_normal(8)
    b = seeded("ocn", 3).standard_normal(8)
    assert not np.array_equal(a, b)


def test_seed_is_63_bit_nonnegative():
    for parts in [("x",), ("x", 1), (1, 2, 3), (None,)]:
        s = derive_seed(*parts)
        assert 0 <= s < 2**63


def test_order_matters():
    assert derive_seed("a", "b") != derive_seed("b", "a")


def test_no_concatenation_collision():
    # ("ab", "c") must differ from ("a", "bc"): the separator prevents it.
    assert derive_seed("ab", "c") != derive_seed("a", "bc")
