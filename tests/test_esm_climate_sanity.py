"""System-level climate sanity: a 10-day coupled integration must stay in
a physically plausible envelope with bounded drifts — the kind of
acceptance run real coupled-model developments use before any science."""

import numpy as np
import pytest

from repro.esm import AP3ESM, AP3ESMConfig, atm_snapshot


@pytest.fixture(scope="module")
def ten_day_run():
    model = AP3ESM(AP3ESMConfig(atm_level=3, ocn_nlon=48, ocn_nlat=32, ocn_levels=6))
    model.init()
    wet = model.ocn.mask3d[0]
    area = model.ocn.metrics.area
    start = {
        "sst_mean": float(np.sum(model.ocn.t[0][wet] * area[wet]) / area[wet].sum()),
        "mass": model.atm.dycore.total_mass(model.atm.swe),
        "salt": model.ocn.tracers.content(model.ocn.s),
        "ice_volume": model.ice.total_volume(),
        "tskin_mean": float(model.atm.tskin.mean()),
    }
    model.run_days(10.0)
    return model, start, wet, area


def test_sst_drift_bounded(ten_day_run):
    model, start, wet, area = ten_day_run
    sst_mean = float(np.sum(model.ocn.t[0][wet] * area[wet]) / area[wet].sum())
    assert abs(sst_mean - start["sst_mean"]) < 3.0  # deg C over 10 days


def test_atmosphere_mass_drift_small(ten_day_run):
    """Dycore mass is exact; only the heating feedback moves it, slowly."""
    model, start, _, _ = ten_day_run
    drift = abs(model.atm.dycore.total_mass(model.atm.swe) - start["mass"]) / start["mass"]
    assert drift < 0.05


def test_ocean_salt_nearly_conserved(ten_day_run):
    """Salinity has no interior sources; only the surface freshwater flux
    moves the total, slowly."""
    model, start, _, _ = ten_day_run
    drift = abs(model.ocn.tracers.content(model.ocn.s) - start["salt"]) / start["salt"]
    assert drift < 0.01


def test_ice_stays_polar_and_bounded(ten_day_run):
    model, _, _, _ = ten_day_run
    icy = model.ice.concentration > 0.1
    if icy.any():
        assert np.abs(model.ice.grid.lat[icy]).min() > np.radians(40.0)
    # Not a runaway snowball: ice area below 30% of the ocean.
    frac = model.ice.total_area() / model.ocn.metrics.area[model.ocn.grid.mask].sum()
    assert frac < 0.3


def test_radiation_budget_plausible(ten_day_run):
    """Global-mean absorbed shortwave within Earth-like bounds (the model
    samples a single time of day at coupling, so the envelope is loose)."""
    model, _, _, _ = ten_day_run
    snap = atm_snapshot(model.atm)
    gsw_mean = snap["gsw"].mean()
    assert 50.0 < gsw_mean < 700.0


def test_hydrology_closes(ten_day_run):
    """Land bucket stays within capacity; soil wetness in [0, 1]."""
    model, _, _, _ = ten_day_run
    land = model.land_mask_atm
    assert np.all(model.lnd.bucket[land] >= 0)
    assert np.all(model.lnd.bucket[land] <= model.lnd.config.bucket_capacity + 1e-12)


def test_no_extreme_winds(ten_day_run):
    model, _, _, _ = ten_day_run
    assert np.abs(model.atm.swe.u).max() < 150.0


def test_timers_account_everything(ten_day_run):
    """The coupled timer dominates and includes every component timer."""
    model, _, _, _ = ten_day_run
    total = model.timers.total("cpl_run")
    parts = sum(model.timers.total(n) for n in ("atm_run", "ocn_run", "ice_run", "lnd_run"))
    assert total >= parts * 0.95
