"""Tests for grid partitioning and inter-grid remapping."""

import numpy as np
import pytest

from repro.grids import IcosPartition, nearest_remap, tripolar_blocks
from repro.parallel import SimWorld


class TestIcosPartition:
    def test_partition_covers_all_cells(self, icos3):
        part = IcosPartition.build(icos3, 6)
        total = np.concatenate(part.local_cells)
        assert np.array_equal(np.sort(total), np.arange(icos3.n_cells))

    def test_partition_balanced(self, icos3):
        part = IcosPartition.build(icos3, 8)
        sizes = [len(c) for c in part.local_cells]
        assert max(sizes) - min(sizes) <= 1

    def test_halo_cells_are_foreign_neighbors(self, icos3):
        part = IcosPartition.build(icos3, 4)
        for r in range(4):
            assert np.all(part.owners[part.halo_cells[r]] != r)

    def test_surface_to_volume_shrinks_with_fewer_ranks(self, icos4):
        few = IcosPartition.build(icos4, 4)
        many = IcosPartition.build(icos4, 64)
        s_few = np.mean([few.surface_to_volume(r) for r in range(4)])
        s_many = np.mean([many.surface_to_volume(r) for r in range(64)])
        assert s_few < s_many

    def test_scatter_gather_roundtrip(self, icos3):
        part = IcosPartition.build(icos3, 5)
        field = np.arange(icos3.n_cells, dtype=float)
        locals_ = [part.scatter(r, field) for r in range(5)]
        assert np.array_equal(part.gather(locals_), field)

    def test_graph_halo_exchange_fills_correct_values(self, icos3):
        """Distributed halo exchange reproduces the scattered global field."""
        part = IcosPartition.build(icos3, 4)
        field = np.arange(icos3.n_cells, dtype=float) * 2.0

        def program(comm):
            r = comm.rank
            n_own = len(part.local_cells[r])
            values = np.concatenate(
                [field[part.local_cells[r]], np.full(len(part.halo_cells[r]), np.nan)]
            )
            part.graph_halo(r).exchange(comm, values)
            return values[n_own:]

        results = SimWorld(4).run(program)
        for r, halo_vals in enumerate(results):
            assert np.array_equal(halo_vals, field[part.halo_cells[r]])

    def test_rejects_bad_rank_count(self, icos3):
        with pytest.raises(ValueError):
            IcosPartition.build(icos3, 0)


class TestTripolarBlocks:
    def test_blocks_tile_grid(self):
        blocks = tripolar_blocks(32, 64, 8)
        covered = np.zeros((32, 64), dtype=int)
        for b in blocks:
            ys, xs = b.global_slices()
            covered[ys, xs] += 1
        assert np.all(covered == 1)

    def test_blocks_respect_aspect(self):
        blocks = tripolar_blocks(100, 400, 16)
        assert blocks[0].px >= blocks[0].py


class TestRemap:
    def test_constant_preserved_exactly(self, icos3, tripolar_small):
        g, t = icos3, tripolar_small
        remap = nearest_remap(
            g.xyz_cell, t.centers.reshape(-1, 3), g.area_cell, t.area.reshape(-1)
        )
        out = remap.apply(np.full(g.n_cells, 5.0))
        assert np.allclose(out, 5.0, atol=1e-12)
        assert np.allclose(remap.row_sums(), 1.0, atol=1e-12)

    def test_smooth_field_accuracy(self, icos4, tripolar_small):
        g, t = icos4, tripolar_small
        remap = nearest_remap(
            g.xyz_cell, t.centers.reshape(-1, 3), g.area_cell, t.area.reshape(-1)
        )
        f_src = np.sin(2 * g.lon_cell) * np.cos(g.lat_cell)
        f_dst_exact = (np.sin(2 * t.lon) * np.cos(t.lat)).reshape(-1)
        out = remap.apply(f_src)
        assert np.abs(out - f_dst_exact).max() < 0.15
        assert np.sqrt(np.mean((out - f_dst_exact) ** 2)) < 0.04

    def test_conservative_fixer_zeroes_integral_error(self, icos3, tripolar_small):
        g, t = icos3, tripolar_small
        remap = nearest_remap(
            g.xyz_cell, t.centers.reshape(-1, 3), g.area_cell, t.area.reshape(-1)
        )
        f = 1.0 + 0.5 * np.sin(g.lat_cell)
        raw_err = remap.conservation_error(f)
        fixed = remap.apply_conservative(f)
        fixed_err = abs(remap.dst_integral(fixed) - remap.src_integral(f)) / abs(
            remap.src_integral(f)
        )
        assert fixed_err < 1e-12
        assert raw_err < 0.05  # raw remap is already nearly conservative

    def test_multifield_apply(self, icos3, tripolar_small):
        g, t = icos3, tripolar_small
        remap = nearest_remap(
            g.xyz_cell, t.centers.reshape(-1, 3), g.area_cell, t.area.reshape(-1)
        )
        fields = np.stack([np.ones(g.n_cells), np.arange(g.n_cells, dtype=float)])
        out = remap.apply(fields)
        assert out.shape == (2, remap.n_dst)
        assert np.allclose(out[0], 1.0)

    def test_k1_is_nearest_neighbor(self, icos3):
        src = icos3.xyz_cell
        remap = nearest_remap(src, src, icos3.area_cell, icos3.area_cell, k=1)
        f = np.arange(icos3.n_cells, dtype=float)
        assert np.array_equal(remap.apply(f), f)

    def test_shape_validation(self, icos3, tripolar_small):
        g, t = icos3, tripolar_small
        remap = nearest_remap(
            g.xyz_cell, t.centers.reshape(-1, 3), g.area_cell, t.area.reshape(-1)
        )
        with pytest.raises(ValueError):
            remap.apply(np.zeros(7))
        with pytest.raises(ValueError):
            nearest_remap(g.xyz_cell, g.xyz_cell, g.area_cell, g.area_cell, k=0)
