"""Tests for the GRIST component model (CPL7 contract + stepping)."""

import numpy as np
import pytest

from repro.atm import GristConfig, GristModel
from repro.atm.model import DYCORE_SUBSTEPS, TRACER_SUBSTEPS


@pytest.fixture(scope="module")
def model():
    m = GristModel(GristConfig(level=3))
    m.init()
    m.run(4)
    return m


def test_substep_ratios_match_paper():
    """Dycore:tracer:model = 8:30:120 s -> 15 and 4 substeps."""
    assert DYCORE_SUBSTEPS == 120 // 8
    assert TRACER_SUBSTEPS == 120 // 30


def test_lifecycle_enforced():
    m = GristModel(GristConfig(level=3))
    with pytest.raises(RuntimeError, match="not initialized"):
        m.step()
    m.init()
    m.step()
    m.finalize()
    with pytest.raises(RuntimeError, match="finalized"):
        m.step()


def test_clock_advances_consistently(model):
    assert model.time == pytest.approx(model.n_steps * model.dt_model)
    assert model.dt_model == pytest.approx(DYCORE_SUBSTEPS * model.dt_dycore)
    assert model.dt_tracer == pytest.approx(model.dt_model / TRACER_SUBSTEPS)


def test_export_provides_coupling_fields(model):
    out = model.export_state()
    required = {"taux", "tauy", "t_bot", "q_bot", "u_bot", "v_bot",
                "gsw", "glw", "precip", "shflx", "lhflx"}
    assert required <= set(out.keys())
    for key in required:
        assert out[key].shape == (model.grid.n_cells,)
        assert np.all(np.isfinite(out[key]))


def test_wind_stress_aligned_with_wind(model):
    out = model.export_state()
    # tau = rho cd |V| V: components share sign with the wind.
    assert np.all(out["taux"] * out["u_bot"] >= 0)
    assert np.all(out["tauy"] * out["v_bot"] >= 0)


def test_import_sst_updates_skin_temperature():
    m = GristModel(GristConfig(level=3))
    m.init()
    sst = np.full(m.grid.n_cells, 300.0)
    m.import_state({"sst": sst})
    assert np.allclose(m.tskin, 300.0)
    with pytest.raises(ValueError):
        m.import_state({"sst": np.zeros(3)})


def test_import_ice_fraction_clipped():
    m = GristModel(GristConfig(level=3))
    m.init()
    m.import_state({"ice_fraction": np.full(m.grid.n_cells, 2.0)})
    assert m.ice_fraction.max() == 1.0


def test_state_remains_finite_over_a_day(model):
    assert np.all(np.isfinite(model.swe.h))
    assert np.all(np.isfinite(model.swe.u))
    assert model.swe.h.min() > 0
    assert np.abs(model.swe.u).max() < 200.0
    assert 150.0 < model.t_col.min() and model.t_col.max() < 350.0


def test_tracer_mass_conserved():
    m = GristModel(GristConfig(level=3))
    m.init()
    mass0 = float(np.sum(m.tracer * m.swe.h * m.grid.area_cell))
    # Tracer substeps happen inside step(); compare tracer mass against the
    # concurrently-evolving h field (mixing-ratio conservation).
    m.run(3)
    mass1 = float(np.sum(m.tracer * m.swe.h * m.grid.area_cell))
    assert mass1 == pytest.approx(mass0, rel=0.02)


def test_timers_populated(model):
    names = set(model.timers.names())
    assert {"atm_run", "atm_dycore", "atm_tracer", "atm_physics"} <= names
    assert model.timers.total("atm_run") > 0


def test_finalize_summary():
    m = GristModel(GristConfig(level=3))
    m.init()
    m.run(2)
    s = m.finalize()
    assert s["steps"] == 2
    assert s["simulated_seconds"] == pytest.approx(2 * m.dt_model)


class TestSemiImplicitScheme:
    """The paper's 'Semi-implicit' method class wired into the component."""

    def test_runs_stably_for_a_day(self):
        m = GristModel(GristConfig(level=3, time_scheme="semi_implicit"))
        m.init()
        m.run(24)
        assert np.isfinite(m.swe.h).all()
        assert m.swe.h.min() > 0
        assert np.abs(m.swe.u).max() < 200.0

    def test_mass_conserved(self):
        m = GristModel(GristConfig(level=3, time_scheme="semi_implicit",
                                   heating_feedback=0.0))
        m.init()
        mass0 = m.dycore.total_mass(m.swe)
        m.run(6)
        # With heating feedback off, only round-off touches the mass.
        assert m.dycore.total_mass(m.swe) == pytest.approx(mass0, rel=1e-10)

    def test_unknown_scheme_rejected(self):
        m = GristModel(GristConfig(level=3, time_scheme="leapfrog"))
        with pytest.raises(ValueError, match="time_scheme"):
            m.init()

    def test_si_and_rk4_agree_qualitatively(self):
        """Same physics, different time schemes: the large-scale state
        stays close after a few hours."""
        results = {}
        for scheme in ("rk4", "semi_implicit"):
            m = GristModel(GristConfig(level=3, time_scheme=scheme))
            m.init()
            m.run(4)
            results[scheme] = m.swe.h.copy()
        diff = np.abs(results["rk4"] - results["semi_implicit"]).max()
        scale = results["rk4"].max() - results["rk4"].min()
        assert diff < 0.15 * scale
