"""Tests for the scaling-study runners and paper reference data."""

import numpy as np
import pytest

from repro.bench import (
    HEADLINES,
    SOTA_MODELS,
    STRONG_SCALING_CURVES,
    coupled_curve,
    evaluate_all_curves,
    evaluate_curve,
    format_curve_result,
    format_table,
    resources_to_processes,
    weak_scaling_series,
    workload_for,
)


@pytest.fixture(scope="module")
def all_results():
    return evaluate_all_curves()


class TestPaperData:
    def test_every_curve_has_anchors(self):
        for key, curve in STRONG_SCALING_CURVES.items():
            assert len(curve.anchors()) >= 1, key

    def test_published_efficiencies_match_prose(self):
        """The reconstructed series must reproduce the paper's quoted
        parallel efficiencies."""
        expected = {
            "atm_3km_mpe": 0.246,
            "atm_3km_cpe": 0.403,
            "atm_1km_cpe": 0.515,
            "ocn_2km_mpe": 0.886,
            "ocn_2km_cpe": 0.494,
            "ocn_1km_orise_opt": 0.543,
            "coupled_3v2": 0.522,
            "coupled_1v1": 0.907,
        }
        for key, eff in expected.items():
            got = STRONG_SCALING_CURVES[key].published_efficiency()
            assert got == pytest.approx(eff, abs=0.02), key

    def test_mpe_cpe_speedup_band_in_data(self):
        """The published series embed the quoted 112-184x ATM speedups."""
        mpe = STRONG_SCALING_CURVES["atm_3km_mpe"].points
        cpe = STRONG_SCALING_CURVES["atm_3km_cpe"].points
        # Same node counts: 5462 nodes (32768 MPE cores vs 2129920 CPE
        # cores) and 43691 nodes.
        assert cpe[0].sypd / mpe[0].sypd == pytest.approx(112.0, rel=0.02)
        assert cpe[-1].sypd / mpe[-1].sypd == pytest.approx(184.0, rel=0.02)

    def test_orise_speedup_vs_record(self):
        opt = STRONG_SCALING_CURVES["ocn_1km_orise_opt"].points[-1].sypd
        rec = STRONG_SCALING_CURVES["ocn_1km_orise_original"].points[-1].sypd
        assert opt / rec == pytest.approx(HEADLINES["speedup_vs_gb24_record"], abs=0.05)

    def test_sota_includes_this_work(self):
        names = [m.name for m in SOTA_MODELS]
        assert any("AP3ESM 3v2" in n for n in names)
        assert sum(m.is_fit_endpoint for m in SOTA_MODELS) == 2


class TestResourceConversion:
    def test_sunway_cpe_mode_divides_by_65(self):
        curve = STRONG_SCALING_CURVES["atm_3km_cpe"]
        assert resources_to_processes(curve, 2129920) == 2129920 // 65

    def test_sunway_mpe_mode_one_core_per_process(self):
        curve = STRONG_SCALING_CURVES["atm_3km_mpe"]
        assert resources_to_processes(curve, 32768) == 32768

    def test_orise_one_process_per_gpu(self):
        curve = STRONG_SCALING_CURVES["ocn_1km_orise_opt"]
        assert resources_to_processes(curve, 4060) == 4060


class TestEvaluation:
    def test_anchors_match_exactly(self, all_results):
        for key, result in all_results.items():
            for (r, pub, mod, tag) in result.rows():
                if tag == "anchor":
                    assert mod == pytest.approx(pub, rel=1e-5), key

    def test_interior_predictions_within_20pct(self, all_results):
        """Non-anchor published points are genuine predictions; they must
        land within 20 % of the paper."""
        for key, result in all_results.items():
            assert result.max_prediction_error() < 0.20, key

    def test_modeled_efficiency_matches_published(self, all_results):
        for key, result in all_results.items():
            assert result.modeled_efficiency() == pytest.approx(
                result.curve.published_efficiency(), rel=0.05
            ), key

    def test_workloads_sized_from_table1(self):
        wl = workload_for(STRONG_SCALING_CURVES["atm_3km_cpe"])
        assert wl.columns == pytest.approx(4.2e7, rel=0.01)
        wl = workload_for(STRONG_SCALING_CURVES["ocn_2km_cpe"])
        assert wl.columns == pytest.approx(18000 * 11511 * 0.70, rel=0.01)

    def test_curve_report_renders(self, all_results):
        text = format_curve_result(all_results["atm_3km_cpe"])
        assert "3 km ATM CPE+OPT" in text
        assert "anchor" in text and "prediction" in text


class TestCoupled:
    @pytest.mark.parametrize("label", ["3v2", "1v1"])
    def test_coupled_predictions_within_35pct(self, label):
        """Coupled curves compose standalone calibrations; only the
        sync-imbalance scalar sees coupled data.  Everything must land
        within 35 % and the headline endpoints within 15 %."""
        result = coupled_curve(label)
        for pub, mod in zip(result.published, result.modeled):
            assert mod == pytest.approx(pub, rel=0.35)
        assert result.modeled[-1] == pytest.approx(result.published[-1], rel=0.15)

    def test_coupled_slower_than_atm_alone(self):
        atm = evaluate_curve(STRONG_SCALING_CURVES["atm_3km_cpe"])
        cpl = coupled_curve("3v2")
        # At 17M cores: coupled 0.71 vs ATM-alone 1.16 published.
        assert cpl.modeled[3] < atm.modeled[3]


class TestWeakScaling:
    @pytest.mark.parametrize("component", ["atm", "ocn"])
    def test_weak_efficiency_high(self, component):
        series = weak_scaling_series(component)
        assert len(series["sypd"]) == 4
        # Paper: 87.85 % (atm) / 96.57 % (ocn); the model must stay high.
        assert series["efficiency"][-1] > 0.75

    def test_ocn_weak_scaling_better_than_atm(self):
        """The paper's ordering: ocean weak-scales better (96.6 vs 87.9%)."""
        atm = weak_scaling_series("atm")["efficiency"][-1]
        ocn = weak_scaling_series("ocn")["efficiency"][-1]
        # Allow modeling noise but preserve the qualitative ordering.
        assert ocn > atm - 0.05


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1.0, None], ["x", 2.5]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "-" in lines[1]
