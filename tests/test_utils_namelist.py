"""Tests for the Fortran-namelist parser and the config integration."""

import numpy as np
import pytest

from repro.esm import AP3ESMConfig
from repro.utils import NamelistError, parse_namelist, read_namelist, write_namelist

EXAMPLE = """
! AP3ESM coupled configuration (laptop scale)
&ap3esm_nml
  atm_level = 4
  ocn_nlon = 96, ocn_nlat = 64
  ocn_levels = 10
  ocn_couple_ratio = 5
/

&physics_nml
  albedo = 0.3
  sw_absorptivity = 1.2d-1     ! Fortran double exponent
  use_ai = .true.
  schemes = 'radiation', 'convection', 'condensation'
/
"""


class TestParser:
    def test_groups_and_scalars(self):
        groups = parse_namelist(EXAMPLE)
        assert set(groups) == {"ap3esm_nml", "physics_nml"}
        nml = groups["ap3esm_nml"]
        assert nml["atm_level"] == 4
        assert nml["ocn_nlon"] == 96 and nml["ocn_nlat"] == 64

    def test_fortran_types(self):
        phys = parse_namelist(EXAMPLE)["physics_nml"]
        assert phys["albedo"] == pytest.approx(0.3)
        assert phys["sw_absorptivity"] == pytest.approx(0.12)
        assert phys["use_ai"] is True
        assert phys["schemes"] == ["radiation", "convection", "condensation"]

    def test_comments_stripped(self):
        groups = parse_namelist("&g\n x = 1 ! a comment with = and , inside\n/")
        assert groups["g"]["x"] == 1

    def test_comment_char_inside_string_kept(self):
        groups = parse_namelist("&g\n name = 'not ! a comment'\n/")
        assert groups["g"]["name"] == "not ! a comment"

    def test_logical_forms(self):
        groups = parse_namelist("&g\n a = .true.\n b = F\n c = .f.\n/")
        assert groups["g"] == {"a": True, "b": False, "c": False}

    def test_duplicate_last_wins(self):
        groups = parse_namelist("&g\n x = 1\n x = 2\n/")
        assert groups["g"]["x"] == 2

    def test_malformed_raises(self):
        with pytest.raises(NamelistError):
            parse_namelist("x = 1")  # no group
        with pytest.raises(NamelistError):
            parse_namelist("&g\n x = @@@\n/")

    def test_roundtrip(self, tmp_path):
        groups = {
            "run_nml": {
                "steps": 10, "dt": 120.0, "restart": False,
                "tags": ["a", "b"], "title": "hello world",
            }
        }
        path = tmp_path / "run.nml"
        write_namelist(path, groups)
        back = read_namelist(path)
        assert back == groups


class TestConfigIntegration:
    def test_config_from_namelist(self, tmp_path):
        path = tmp_path / "ap3esm.nml"
        path.write_text(EXAMPLE)
        cfg = AP3ESMConfig.from_namelist(path)
        assert cfg.atm_level == 4
        assert cfg.ocn_nlon == 96
        assert cfg.ocn_couple_ratio == 5
        assert cfg.atm_nlev == 30  # default preserved

    def test_missing_group_rejected(self, tmp_path):
        path = tmp_path / "bad.nml"
        path.write_text("&other_nml\n x = 1\n/")
        with pytest.raises(ValueError, match="ap3esm_nml"):
            AP3ESMConfig.from_namelist(path)

    def test_unknown_variable_warns_and_is_ignored(self, tmp_path):
        path = tmp_path / "bad2.nml"
        path.write_text("&ap3esm_nml\n warp_drive = 9\n atm_level = 4\n/")
        with pytest.warns(UserWarning, match="warp_drive"):
            cfg = AP3ESMConfig.from_namelist(path)
        assert cfg.atm_level == 4
        assert not hasattr(cfg, "warp_drive")

    def test_namelist_config_actually_runs(self, tmp_path):
        path = tmp_path / "tiny.nml"
        path.write_text(
            "&ap3esm_nml\n atm_level = 3\n ocn_nlon = 48\n ocn_nlat = 32\n"
            " ocn_levels = 5\n/"
        )
        from repro.esm import AP3ESM

        model = AP3ESM(AP3ESMConfig.from_namelist(path))
        model.init()
        model.run_couplings(2)
        assert np.isfinite(model.atm.swe.h).all()
