"""Tests for Kokkos-style Views, mirrors, and deep copies."""

import numpy as np
import pytest

from repro.pp import (
    Layout,
    MemorySpace,
    TransferLedger,
    View,
    create_mirror_view,
    deep_copy,
)


def test_alloc_layouts():
    right = View.alloc("a", (4, 6), layout=Layout.RIGHT)
    left = View.alloc("b", (4, 6), layout=Layout.LEFT)
    assert right.data.flags.c_contiguous
    assert left.data.flags.f_contiguous
    assert right.shape == (4, 6)
    assert right.nbytes == 4 * 6 * 8


def test_of_detects_layout():
    arr_f = np.asfortranarray(np.zeros((3, 5)))
    v = View.of("x", arr_f)
    assert v.layout is Layout.LEFT
    v2 = View.of("y", np.zeros((3, 5)))
    assert v2.layout is Layout.RIGHT


def test_indexing_and_fill():
    v = View.alloc("v", (2, 2))
    v[0, 1] = 3.5
    assert v[0, 1] == 3.5
    v.fill(7.0)
    assert np.all(v.data == 7.0)


def test_relayout_preserves_values():
    v = View.alloc("v", (3, 4))
    v.data[:] = np.arange(12).reshape(3, 4)
    w = v.relayout(Layout.LEFT)
    assert w.data.flags.f_contiguous
    assert np.array_equal(w.data, v.data)
    # Same-layout relayout is a no-op returning the same object.
    assert v.relayout(Layout.RIGHT) is v


def test_mirror_same_space_is_zero_copy():
    v = View.alloc("v", (4,), space=MemorySpace.HOST)
    assert create_mirror_view(v, MemorySpace.HOST) is v


def test_mirror_other_space_fresh_allocation():
    v = View.alloc("v", (4,), space=MemorySpace.HOST)
    v.fill(1.0)
    m = create_mirror_view(v, MemorySpace.DEVICE)
    assert m is not v
    assert m.space is MemorySpace.DEVICE
    assert m.shape == v.shape
    assert np.all(m.data == 0.0)  # mirror does not copy contents


def test_deep_copy_across_spaces_records_transfer():
    ledger = TransferLedger()
    host = View.alloc("h", (100,), space=MemorySpace.HOST)
    host.fill(2.0)
    dev = create_mirror_view(host, MemorySpace.DEVICE)
    deep_copy(dev, host, ledger=ledger)
    assert np.all(dev.data == 2.0)
    assert ledger.h2d_bytes == 800
    assert ledger.d2h_bytes == 0
    deep_copy(host, dev, ledger=ledger)
    assert ledger.d2h_bytes == 800
    assert ledger.copies == 2
    assert ledger.total_bytes == 1600


def test_deep_copy_same_space_not_counted():
    ledger = TransferLedger()
    a = View.alloc("a", (10,))
    b = View.alloc("b", (10,))
    a.fill(5.0)
    deep_copy(b, a, ledger=ledger)
    assert np.all(b.data == 5.0)
    assert ledger.total_bytes == 0


def test_deep_copy_shape_mismatch():
    a = View.alloc("a", (3,))
    b = View.alloc("b", (4,))
    with pytest.raises(ValueError, match="shape mismatch"):
        deep_copy(a, b)
