"""Tests for the multi-category ice thickness distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ice.categories import CATEGORY_BOUNDS, ThicknessDistribution


@pytest.fixture
def itd():
    d = ThicknessDistribution(n_cells=10)
    d.seed(np.arange(5), thickness=0.3, concentration=0.5)   # category 0
    d.seed(np.arange(5, 10), thickness=2.0, concentration=0.8)  # category 2
    return d


class TestStructure:
    def test_standard_five_categories(self, itd):
        assert itd.n_categories == 5
        assert CATEGORY_BOUNDS[0] == 0.0
        assert np.isinf(CATEGORY_BOUNDS[-1])

    def test_seed_lands_in_right_category(self, itd):
        assert np.all(itd.area[0, :5] == 0.5)
        assert np.all(itd.area[2, 5:] == 0.8)
        assert itd.mean_thickness()[0] == pytest.approx(0.3)
        assert itd.mean_thickness()[7] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThicknessDistribution(0)
        with pytest.raises(ValueError):
            ThicknessDistribution(4, bounds=np.array([0.1, 1.0]))
        d = ThicknessDistribution(4)
        with pytest.raises(ValueError):
            d.step(-1.0, np.zeros(4))
        with pytest.raises(ValueError):
            d.step(3600.0, np.zeros(3))


class TestGrowth:
    def test_thin_ice_grows_faster(self, itd):
        cold = np.full(10, -20.0)
        rates = itd.growth_rates(cold)
        # Category 0 (0.3 m) must outgrow category 2 (2.0 m).
        assert rates[0, 0] > 3.0 * rates[2, 7]

    def test_no_growth_above_freezing(self, itd):
        warm = np.full(10, 5.0)
        assert np.all(itd.growth_rates(warm) == 0.0)

    def test_growth_increases_volume_not_area(self, itd):
        cold = np.full(10, -20.0)
        a0 = itd.area.copy()
        v0 = itd.total_volume().copy()
        itd.step(3600.0, cold)
        assert np.array_equal(itd.concentration(), a0.sum(axis=0))
        assert np.all(itd.total_volume() >= v0)

    def test_melt_removes_volume(self, itd):
        warm = np.full(10, 0.0)
        v0 = itd.total_volume().copy()
        itd.step(86400.0, warm, melt_flux=np.full(10, 300.0))
        assert np.all(itd.total_volume() <= v0)

    def test_new_ice_forms_in_thinnest_category(self):
        d = ThicknessDistribution(4)
        d.step(3600.0, np.full(4, -5.0), new_ice_area_rate=np.full(4, 1e-5))
        assert np.all(d.area[0] > 0)
        assert np.all(d.area[1:] == 0)
        assert d.concentration().max() <= 1.0


class TestRemapping:
    def test_growth_promotes_across_boundary(self):
        d = ThicknessDistribution(1)
        d.seed(np.array([0]), thickness=0.6, concentration=1.0)  # near the 0.64 bound
        cold = np.full(1, -30.0)
        for _ in range(40):
            d.step(86400.0, cold)
        # The ice thickened past 0.64 m: category 0 must be empty now.
        assert d.area[0, 0] == 0.0
        assert d.concentration()[0] == pytest.approx(1.0)

    def test_melt_demotes_across_boundary(self):
        d = ThicknessDistribution(1)
        d.seed(np.array([0]), thickness=1.5, concentration=1.0)  # category 2
        warm = np.full(1, 0.0)
        for _ in range(30):
            d.step(86400.0, warm, melt_flux=np.full(1, 100.0))
        assert d.area[2, 0] == 0.0  # demoted out of category 2
        assert d.total_volume()[0] < 1.5

    def test_remap_conserves_area_and_volume(self, itd):
        a0 = itd.concentration().copy()
        v0 = itd.total_volume().copy()
        itd._remap()
        assert np.allclose(itd.concentration(), a0)
        assert np.allclose(itd.total_volume(), v0)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.05, max_value=8.0), st.floats(min_value=0.05, max_value=1.0))
    def test_remap_conservation_property(self, thickness, conc):
        d = ThicknessDistribution(3)
        d.seed(np.arange(3), thickness=thickness, concentration=conc)
        # Force thickness out of its category by direct volume change.
        d.volume *= 3.0
        v0 = d.total_volume().copy()
        a0 = d.concentration().copy()
        d._remap()
        assert np.allclose(d.total_volume(), v0)
        assert np.allclose(d.concentration(), a0)
        # After remapping, every occupied category holds in-bounds ice.
        h = d.category_thickness()
        for n in range(d.n_categories):
            occ = d.area[n] > 1e-12
            if occ.any():
                assert np.all(h[n][occ] >= d.bounds[n] - 1e-9)


class TestSlabComparison:
    def test_multicategory_outgrows_single_slab(self):
        """The reason ITD exists: a 50/50 mix of thin and thick ice grows
        faster than the same volume as one mean-thickness slab."""
        multi = ThicknessDistribution(1)
        multi.seed(np.array([0]), thickness=0.2, concentration=0.4)
        multi.area[3, 0] = 0.4
        multi.volume[3, 0] = 0.4 * 3.0  # thick category
        slab = multi.as_single_slab()
        assert slab.total_volume()[0] == pytest.approx(multi.total_volume()[0])

        cold = np.full(1, -25.0)
        for _ in range(20):
            multi.step(86400.0, cold)
            slab.step(86400.0, cold)
        assert multi.total_volume()[0] > 1.05 * slab.total_volume()[0]
