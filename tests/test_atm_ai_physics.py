"""Tests for the AI physics suite: training protocol, skill, and the
drop-in replacement contract (slow nets kept tiny)."""

import numpy as np
import pytest

from repro.atm import (
    AIPhysicsSuite,
    ConventionalPhysics,
    generate_training_archive,
    synthetic_columns,
)


@pytest.fixture(scope="module")
def small_archive():
    """A miniature training archive (small CNN-friendly)."""
    return generate_training_archive(
        n_days=16, steps_per_day=4, ncol_per_step=16, nlev=10
    )


@pytest.fixture(scope="module")
def trained_suite(small_archive):
    return AIPhysicsSuite.train(small_archive, epochs=40, width=32, lr=3e-3)


class TestArchive:
    def test_archive_shapes(self, small_archive):
        n = 16 * 4 * 16
        assert small_archive["x_column"].shape == (n, 5, 10)
        assert small_archive["y_tendency"].shape == (n, 4, 10)
        assert small_archive["x_radiation"].shape == (n, 5 * 10 + 2)
        assert small_archive["y_radiation"].shape == (n, 2)

    def test_archive_deterministic(self):
        a = generate_training_archive(n_days=2, steps_per_day=2, ncol_per_step=4, nlev=8)
        b = generate_training_archive(n_days=2, steps_per_day=2, ncol_per_step=4, nlev=8)
        assert np.array_equal(a["x_column"], b["x_column"])
        assert np.array_equal(a["y_tendency"], b["y_tendency"])

    def test_targets_are_conventional_physics(self, small_archive):
        """The supervision really is the conventional suite's output."""
        cols = synthetic_columns(16, 10, season=0, step=0, seed=0)
        tend = ConventionalPhysics().compute(cols, 120.0)
        assert np.allclose(small_archive["y_tendency"][:16, 2], tend.dt)
        assert np.allclose(small_archive["y_radiation"][:16, 0], tend.gsw)

    def test_seasonal_coverage(self, small_archive):
        """Radiation targets vary across the archive (seasons shift sun)."""
        gsw = small_archive["y_radiation"][:, 0]
        assert gsw.std() > 10.0


class TestTraining:
    def test_loss_decreases(self, trained_suite):
        hist = trained_suite.tendency_trainer.history["train"]
        assert hist[-1] < hist[0]

    def test_validation_tracked(self, trained_suite):
        assert len(trained_suite.tendency_trainer.history["val"]) > 0

    def test_radiation_skill_positive(self, trained_suite, small_archive):
        idx = np.arange(len(small_archive["x_radiation"]))
        skill = trained_suite.skill(small_archive, idx)
        assert skill["radiation"] > 0.5
        assert skill["tendency"] > 0.2


class TestInference:
    def test_compute_matches_physics_interface(self, trained_suite):
        cols = synthetic_columns(16, 10, season=2, step=1)
        tend = trained_suite.compute(cols, 120.0)
        assert tend.dt.shape == (16, 10)
        assert tend.gsw.shape == (16,)
        assert np.all(tend.gsw >= 0)
        assert np.all(tend.precip >= 0)
        assert np.all((tend.cloud_fraction >= 0) & (tend.cloud_fraction <= 1))

    def test_resolution_adaptive_runs_on_other_column_counts(self, trained_suite):
        """Trained at one (horizontal) sampling, runs on any batch size —
        and, being convolutional, on any vertical extent too."""
        for ncol in (1, 5, 40):
            cols = synthetic_columns(ncol, 10, season=0, step=0)
            tend = trained_suite.compute(cols, 120.0)
            assert tend.dt.shape == (ncol, 10)

    def test_tendencies_correlate_with_truth(self, trained_suite):
        cols = synthetic_columns(64, 10, season=3, step=2, seed=99)
        truth = ConventionalPhysics().compute(cols, 120.0)
        pred = trained_suite.compute(cols, 120.0)
        # Temperature tendency correlation on unseen data.
        c = np.corrcoef(pred.dt.ravel(), truth.dt.ravel())[0, 1]
        assert c > 0.4

    def test_ai_inference_cheaper_than_conventional_per_flop_model(self, trained_suite):
        """Structural check of the cost asymmetry: AI inference is matmul
        dominated; conventional physics does multi-sweep branchy work.
        (Wall-clock comparison is done in the benchmark, not here.)"""
        n_params = trained_suite.tendency_trainer.model.n_params
        assert n_params < 2e5  # the small test net


class TestSerialization:
    def test_save_load_roundtrip_bitwise(self, trained_suite, tmp_path):
        path = tmp_path / "suite.npz"
        trained_suite.save(path)
        loaded = AIPhysicsSuite.load(path)
        cols = synthetic_columns(16, 10, season=2, step=1)
        a = trained_suite.compute(cols, 120.0)
        b = loaded.compute(cols, 120.0)
        assert np.array_equal(a.dt, b.dt)
        assert np.array_equal(a.gsw, b.gsw)
        assert np.array_equal(a.precip, b.precip)

    def test_roundtrip_restores_every_artifact(self, trained_suite, tmp_path):
        """Weights, both modules' normalizers, and the tendency guard-rail
        limits all survive save -> load exactly."""
        from repro.ai.serialize import state_dict

        path = tmp_path / "suite.npz"
        trained_suite.save(path)
        loaded = AIPhysicsSuite.load(path)
        for orig_t, load_t in (
            (trained_suite.tendency_trainer, loaded.tendency_trainer),
            (trained_suite.radiation_trainer, loaded.radiation_trainer),
        ):
            orig_sd = state_dict(orig_t.model)
            load_sd = state_dict(load_t.model)
            assert sorted(orig_sd) == sorted(load_sd)
            for key in orig_sd:
                assert np.array_equal(orig_sd[key], load_sd[key]), key
            assert np.array_equal(orig_t.x_norm.mean, load_t.x_norm.mean)
            assert np.array_equal(orig_t.x_norm.std, load_t.x_norm.std)
            assert np.array_equal(orig_t.y_norm.mean, load_t.y_norm.mean)
            assert np.array_equal(orig_t.y_norm.std, load_t.y_norm.std)
        assert np.array_equal(trained_suite.tendency_limits,
                              loaded.tendency_limits)

    def test_loaded_suite_batches_bitwise(self, trained_suite, tmp_path):
        """A reloaded suite keeps the cross-member batching contract: one
        stacked compute equals the per-batch computes bit-for-bit."""
        from repro.atm.columns import ColumnState

        path = tmp_path / "suite.npz"
        trained_suite.save(path)
        loaded = AIPhysicsSuite.load(path)
        batches = [synthetic_columns(n, 10, season=i, step=i, seed=i)
                   for i, n in enumerate((9, 1, 22))]
        stacked = loaded.compute(ColumnState.concat(batches), 120.0)
        parts = stacked.split([b.ncol for b in batches])
        for part, cols in zip(parts, batches):
            solo = loaded.compute(cols, 120.0)
            assert np.array_equal(part.dt, solo.dt)
            assert np.array_equal(part.gsw, solo.gsw)
            assert np.array_equal(part.precip, solo.precip)

    def test_untrained_suite_cannot_save(self, tmp_path):
        from repro.ai import Trainer, build_radiation_mlp, build_tendency_cnn

        fresh = AIPhysicsSuite(
            tendency_trainer=Trainer(build_tendency_cnn(levels=10, width=8, n_res_units=1)),
            radiation_trainer=Trainer(build_radiation_mlp(levels=10)),
        )
        with pytest.raises(RuntimeError, match="train"):
            fresh.save(tmp_path / "x.npz")

    def test_state_dict_shape_mismatch_detected(self, tmp_path):
        from repro.ai import build_tendency_cnn
        from repro.ai.serialize import load_model, save_model

        small = build_tendency_cnn(levels=10, width=8, n_res_units=1)
        big = build_tendency_cnn(levels=10, width=16, n_res_units=1)
        save_model(tmp_path / "m.npz", small)
        with pytest.raises(ValueError, match="mismatch"):
            load_model(tmp_path / "m.npz", big)
