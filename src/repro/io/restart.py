"""Model restart files on the subfile format.

The paper's §5.2.5 strategy exists to make initialization and restart I/O
scale; this module provides the model-facing layer: a restart is a JSON
manifest (field names, shapes, dtypes, scalars) plus one subfile set per
field, written/read through :mod:`repro.io.subfile`.  Bit-exact
round-trips are tested, as is the restart contract itself: *run N+M steps*
equals *run N, save, load, run M* bit for bit (for the ocean component).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from ..parallel.decomp import block_ranges
from .subfile import SubfileLayout, read_subfiles, write_subfiles

__all__ = ["save_restart", "load_restart", "RestartError", "write_atomic_text"]

MANIFEST = "restart.json"


class RestartError(ValueError):
    """A restart set failed validation.

    Structured: carries the manifest path, the offending field (when
    any), and the expected/actual values of whatever mismatched, so a
    corrupt or truncated restart is diagnosable without reading hexdumps.
    """

    def __init__(
        self,
        message: str,
        *,
        manifest: Union[str, Path, None] = None,
        field: str | None = None,
        expected: object = None,
        actual: object = None,
    ) -> None:
        detail = message
        if field is not None:
            detail += f" [field={field}]"
        if expected is not None or actual is not None:
            detail += f" [expected={expected!r}, actual={actual!r}]"
        if manifest is not None:
            detail += f" [manifest={manifest}]"
        super().__init__(detail)
        self.manifest = None if manifest is None else str(manifest)
        self.field = field
        self.expected = expected
        self.actual = actual


def write_atomic_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` via temp-file + ``os.replace``: a crash
    mid-write leaves either the old file or none — never a half-parsing
    one."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


def _subfile_crcs(directory: Path, base: str, layout: SubfileLayout) -> Dict[str, int]:
    """crc32 of each subfile in a field's group set, keyed by file name."""
    crcs: Dict[str, int] = {}
    for g in range(layout.n_groups):
        name = layout.subfile_name(base, g)
        crcs[name] = zlib.crc32((directory / name).read_bytes())
    return crcs


def save_restart(
    directory: Union[str, Path],
    fields: Dict[str, np.ndarray],
    scalars: Dict[str, float] | None = None,
    n_ranks: int = 8,
    n_groups: int = 4,
) -> Path:
    """Write a restart set: one subfile group set per field + manifest.

    ``fields`` values may have any shape (flattened for I/O; shapes are
    recorded in the manifest).  Returns the manifest path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    layout = SubfileLayout(n_ranks, n_groups)
    manifest: Dict[str, object] = {
        "version": 1,
        "n_ranks": n_ranks,
        "n_groups": n_groups,
        "scalars": dict(scalars or {}),
        "fields": {},
    }
    for name, arr in fields.items():
        arr = np.asarray(arr)
        flat = np.ascontiguousarray(arr).ravel()
        slices = [(s, flat[s:e]) for s, e in block_ranges(flat.size, n_ranks)]
        write_subfiles(directory, name, layout, slices)
        manifest["fields"][name] = {
            "shape": list(arr.shape),
            "dtype": str(arr.dtype),
            "size": int(flat.size),
            "crc32": _subfile_crcs(directory, name, layout),
        }
    # The manifest is written last AND atomically: readers either see the
    # previous complete restart.json or the new complete one, never a
    # torn write that half-parses.
    return write_atomic_text(
        directory / MANIFEST, json.dumps(manifest, indent=2, sort_keys=True)
    )


def _validate_manifest(manifest: object, path: Path) -> Dict[str, object]:
    """Structural validation of a parsed manifest, before any data I/O.

    Raises :class:`RestartError` naming exactly what is malformed; returns
    the manifest dict on success.
    """
    if not isinstance(manifest, dict):
        raise RestartError("manifest is not a JSON object", manifest=path)
    version = manifest.get("version")
    if version != 1:
        raise RestartError(
            "unsupported restart version",
            manifest=path, expected=1, actual=version,
        )
    for key in ("n_ranks", "n_groups", "fields", "scalars"):
        if key not in manifest:
            raise RestartError(f"manifest missing {key!r} key", manifest=path)
    if not isinstance(manifest["fields"], dict):
        raise RestartError("manifest 'fields' is not an object", manifest=path)
    for name, meta in manifest["fields"].items():
        if not isinstance(meta, dict):
            raise RestartError("field entry is not an object",
                               manifest=path, field=name)
        for key in ("shape", "dtype", "size"):
            if key not in meta:
                raise RestartError(f"field entry missing {key!r}",
                                   manifest=path, field=name)
        try:
            np.dtype(meta["dtype"])
        except TypeError as exc:
            raise RestartError(f"bad field dtype: {exc}",
                               manifest=path, field=name,
                               actual=meta["dtype"]) from None
        declared = int(np.prod(meta["shape"], dtype=np.int64)) if meta["shape"] else 1
        if declared != int(meta["size"]):
            raise RestartError(
                "field size inconsistent with shape",
                manifest=path, field=name,
                expected=declared, actual=int(meta["size"]),
            )
    return manifest


def load_restart(
    directory: Union[str, Path],
) -> Tuple[Dict[str, np.ndarray], Dict[str, float]]:
    """Read a restart set; returns (fields, scalars).

    The manifest is validated up front and every subfile is CRC-checked
    against it (when the manifest carries checksums — older sets without
    them still load); any missing, truncated, or size-mismatched piece
    raises a structured :class:`RestartError` instead of a bare
    ``KeyError``/``ValueError`` from deep inside the reader.
    """
    directory = Path(directory)
    path = directory / MANIFEST
    try:
        text = path.read_text()
    except OSError as exc:
        raise RestartError(f"cannot read restart manifest: {exc}",
                           manifest=path) from None
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RestartError(f"restart manifest is not valid JSON: {exc}",
                           manifest=path) from None
    manifest = _validate_manifest(manifest, path)
    layout = SubfileLayout(int(manifest["n_ranks"]), int(manifest["n_groups"]))
    fields: Dict[str, np.ndarray] = {}
    for name, meta in manifest["fields"].items():
        for fname, crc in (meta.get("crc32") or {}).items():
            fpath = directory / fname
            try:
                actual = zlib.crc32(fpath.read_bytes())
            except OSError as exc:
                raise RestartError(f"cannot read subfile {fname}: {exc}",
                                   manifest=path, field=name) from None
            if actual != int(crc):
                raise RestartError(
                    f"subfile {fname} fails its CRC (corrupt payload)",
                    manifest=path, field=name,
                    expected=int(crc), actual=actual,
                )
        try:
            flat = read_subfiles(directory, name, layout, int(meta["size"]))
        except (OSError, ValueError) as exc:
            raise RestartError(
                f"cannot reassemble field from subfiles: {exc}",
                manifest=path, field=name, expected=int(meta["size"]),
            ) from None
        fields[name] = flat.astype(meta["dtype"], copy=False).reshape(meta["shape"])
    return fields, dict(manifest["scalars"])
