"""Model restart files on the subfile format.

The paper's §5.2.5 strategy exists to make initialization and restart I/O
scale; this module provides the model-facing layer: a restart is a JSON
manifest (field names, shapes, dtypes, scalars) plus one subfile set per
field, written/read through :mod:`repro.io.subfile`.  Bit-exact
round-trips are tested, as is the restart contract itself: *run N+M steps*
equals *run N, save, load, run M* bit for bit (for the ocean component).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from ..parallel.decomp import block_ranges
from .subfile import SubfileLayout, read_subfiles, write_subfiles

__all__ = ["save_restart", "load_restart"]

MANIFEST = "restart.json"


def save_restart(
    directory: Union[str, Path],
    fields: Dict[str, np.ndarray],
    scalars: Dict[str, float] | None = None,
    n_ranks: int = 8,
    n_groups: int = 4,
) -> Path:
    """Write a restart set: one subfile group set per field + manifest.

    ``fields`` values may have any shape (flattened for I/O; shapes are
    recorded in the manifest).  Returns the manifest path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    layout = SubfileLayout(n_ranks, n_groups)
    manifest: Dict[str, object] = {
        "version": 1,
        "n_ranks": n_ranks,
        "n_groups": n_groups,
        "scalars": dict(scalars or {}),
        "fields": {},
    }
    for name, arr in fields.items():
        arr = np.asarray(arr)
        flat = np.ascontiguousarray(arr).ravel()
        slices = [(s, flat[s:e]) for s, e in block_ranges(flat.size, n_ranks)]
        write_subfiles(directory, name, layout, slices)
        manifest["fields"][name] = {
            "shape": list(arr.shape),
            "dtype": str(arr.dtype),
            "size": int(flat.size),
        }
    path = directory / MANIFEST
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return path


def load_restart(
    directory: Union[str, Path],
) -> Tuple[Dict[str, np.ndarray], Dict[str, float]]:
    """Read a restart set; returns (fields, scalars)."""
    directory = Path(directory)
    manifest = json.loads((directory / MANIFEST).read_text())
    if manifest.get("version") != 1:
        raise ValueError(f"unsupported restart version {manifest.get('version')}")
    layout = SubfileLayout(int(manifest["n_ranks"]), int(manifest["n_groups"]))
    fields: Dict[str, np.ndarray] = {}
    for name, meta in manifest["fields"].items():
        flat = read_subfiles(directory, name, layout, int(meta["size"]))
        fields[name] = flat.astype(meta["dtype"], copy=False).reshape(meta["shape"])
    return fields, dict(manifest["scalars"])
