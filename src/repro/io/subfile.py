"""Subfile-partitioned parallel I/O (§5.2.5).

"To address initialization and I/O bottlenecks, a data-partitioning
strategy that divides data into smaller subfiles is implemented.  We
assign groups of MPI ranks to the I/O for a set of subfiles, and leverage
a binary format for the I/O data."

* :class:`SubfileLayout` — assigns ranks to I/O groups; each group owns
  one subfile holding its members' contiguous global slices.
* :func:`write_subfiles` / :func:`read_subfiles` — the binary format
  (magic + dtype + per-rank extents header, raw data after) and global
  reassembly.
* :class:`IOCostModel` — why subfiles win at scale: a single shared file
  serializes through one writer / the metadata server, while ``n_groups``
  subfiles stream concurrently until the filesystem's aggregate bandwidth
  saturates.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..parallel.decomp import block_ranges

__all__ = ["SubfileLayout", "write_subfiles", "read_subfiles", "IOCostModel"]

MAGIC = b"AP3E"
VERSION = 1
_HEADER = struct.Struct("<4sIII")  # magic, version, n_ranks_in_file, dtype code
_EXTENT = struct.Struct("<QQ")     # (global_start, length) per rank

_DTYPES = {0: np.float64, 1: np.float32, 2: np.int64, 3: np.int32}
_DTYPE_CODES = {np.dtype(v): k for k, v in _DTYPES.items()}


@dataclass(frozen=True)
class SubfileLayout:
    """Assignment of ``n_ranks`` to ``n_groups`` I/O groups."""

    n_ranks: int
    n_groups: int

    def __post_init__(self) -> None:
        if not 1 <= self.n_groups <= self.n_ranks:
            raise ValueError("need 1 <= n_groups <= n_ranks")

    def group_of(self, rank: int) -> int:
        if not 0 <= rank < self.n_ranks:
            raise ValueError("rank out of range")
        for g, (s, e) in enumerate(block_ranges(self.n_ranks, self.n_groups)):
            if s <= rank < e:
                return g
        raise AssertionError("unreachable")

    def ranks_of(self, group: int) -> List[int]:
        s, e = block_ranges(self.n_ranks, self.n_groups)[group]
        return list(range(s, e))

    def subfile_name(self, base: str, group: int) -> str:
        return f"{base}.{group:05d}.bin"


def write_subfiles(
    directory: Union[str, Path],
    base: str,
    layout: SubfileLayout,
    rank_slices: Sequence[Tuple[int, np.ndarray]],
    obs=None,
) -> List[Path]:
    """Write per-rank (global_start, values) slices into group subfiles.

    ``rank_slices[r]`` is rank r's contribution: the global offset of its
    contiguous slice and the values.  Returns the subfile paths.  A live
    ``obs`` handle records a span plus bytes/files-written counters.
    """
    if len(rank_slices) != layout.n_ranks:
        raise ValueError("need one slice per rank")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dtype = np.asarray(rank_slices[0][1]).dtype
    if dtype not in _DTYPE_CODES:
        raise ValueError(f"unsupported dtype {dtype}")
    if obs is None or not obs.enabled:
        return _write_subfiles(directory, base, layout, rank_slices, dtype)
    with obs.span("io.write_subfiles", base=base, n_groups=layout.n_groups):
        paths = _write_subfiles(directory, base, layout, rank_slices, dtype)
    nbytes = sum(p.stat().st_size for p in paths)
    obs.counter("io.subfiles_written").inc(len(paths))
    obs.counter("io.bytes_written").inc(nbytes)
    obs.histogram("io.subfile_write_bytes").observe(nbytes / max(len(paths), 1))
    return paths


def _write_subfiles(
    directory: Path,
    base: str,
    layout: SubfileLayout,
    rank_slices: Sequence[Tuple[int, np.ndarray]],
    dtype: np.dtype,
) -> List[Path]:
    paths: List[Path] = []
    for g in range(layout.n_groups):
        members = layout.ranks_of(g)
        path = directory / layout.subfile_name(base, g)
        with open(path, "wb") as fh:
            fh.write(_HEADER.pack(MAGIC, VERSION, len(members), _DTYPE_CODES[dtype]))
            for r in members:
                start, values = rank_slices[r]
                values = np.ascontiguousarray(values, dtype=dtype)
                fh.write(_EXTENT.pack(int(start), values.size))
            for r in members:
                _, values = rank_slices[r]
                fh.write(np.ascontiguousarray(values, dtype=dtype).tobytes())
        paths.append(path)
    return paths


def read_subfiles(
    directory: Union[str, Path],
    base: str,
    layout: SubfileLayout,
    global_size: int,
    obs=None,
) -> np.ndarray:
    """Reassemble the global array from a subfile set."""
    if obs is not None and obs.enabled:
        with obs.span("io.read_subfiles", base=base, n_groups=layout.n_groups):
            out = read_subfiles(directory, base, layout, global_size)
        obs.counter("io.subfiles_read").inc(layout.n_groups)
        obs.counter("io.bytes_read").inc(out.nbytes)
        return out
    directory = Path(directory)
    out = None
    covered = 0
    for g in range(layout.n_groups):
        path = directory / layout.subfile_name(base, g)
        with open(path, "rb") as fh:
            magic, version, n_in_file, dtype_code = _HEADER.unpack(
                fh.read(_HEADER.size)
            )
            if magic != MAGIC:
                raise ValueError(f"{path}: bad magic {magic!r}")
            if version != VERSION:
                raise ValueError(f"{path}: unsupported version {version}")
            dtype = np.dtype(_DTYPES[dtype_code])
            extents = [_EXTENT.unpack(fh.read(_EXTENT.size)) for _ in range(n_in_file)]
            if out is None:
                out = np.zeros(global_size, dtype=dtype)
            for start, length in extents:
                if start + length > global_size:
                    raise ValueError(f"{path}: extent beyond global size")
                data = np.frombuffer(fh.read(length * dtype.itemsize), dtype=dtype)
                out[start : start + length] = data
                covered += length
    if out is None:
        raise FileNotFoundError("no subfiles read")
    if covered != global_size:
        raise ValueError(f"subfiles cover {covered} of {global_size} entries")
    return out


@dataclass(frozen=True)
class IOCostModel:
    """Analytic I/O timing: shared-file vs subfile strategies.

    Parameters are per the machine description: each node can stream
    ``node_bw`` to the filesystem, which saturates at ``fs_bw`` aggregate;
    every file touched costs ``metadata_s`` on the metadata server, and a
    *shared* file adds ``lock_s`` per writer for stripe-lock contention.
    """

    node_bw: float = 2.0e9        # bytes/s per I/O node
    fs_bw: float = 4.0e11         # bytes/s aggregate filesystem
    metadata_s: float = 5.0e-3    # per file create/open
    lock_s: float = 2.0e-4        # per writer on a shared file

    def shared_file_time(self, total_bytes: float, n_writers: int) -> float:
        if total_bytes < 0 or n_writers < 1:
            raise ValueError("bad arguments")
        bw = min(self.fs_bw, self.node_bw * min(n_writers, 8))  # stripe limit
        return self.metadata_s + n_writers * self.lock_s + total_bytes / bw

    def subfile_time(self, total_bytes: float, n_groups: int) -> float:
        # Each subfile pays its own create/open on the metadata server:
        # the penalty grows linearly with n_groups, so past bandwidth
        # saturation extra groups *cost* time and best_group_count has a
        # real optimum instead of always driving to max bandwidth.
        if total_bytes < 0 or n_groups < 1:
            raise ValueError("bad arguments")
        bw = min(self.fs_bw, self.node_bw * n_groups)
        return n_groups * self.metadata_s + total_bytes / bw

    def best_group_count(self, total_bytes: float, n_ranks: int) -> int:
        """Group count minimizing modeled subfile time (sweep powers of 2)."""
        best, best_t = 1, float("inf")
        g = 1
        while g <= n_ranks:
            t = self.subfile_time(total_bytes, g)
            if t < best_t:
                best, best_t = g, t
            g *= 2
        return best
