"""Subfile parallel I/O: binary format, rank groups, cost model, restarts."""

from .restart import load_restart, save_restart
from .subfile import IOCostModel, SubfileLayout, read_subfiles, write_subfiles

__all__ = [
    "SubfileLayout",
    "write_subfiles",
    "read_subfiles",
    "IOCostModel",
    "save_restart",
    "load_restart",
]
