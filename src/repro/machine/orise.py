"""The ORISE heterogeneous machine model.

Published facts (paper §6.3): each node has one 4-way 8-core x86 CPU at
2.0 GHz with 128 GB memory and **four MI60-class HIP GPUs**; CPU and GPUs
share 32-bit PCIe with DMA at 16 GB/s; nodes connect through a 25 GB/s
high-speed network.  The ocean model runs one MPI process per GPU
(Table 2: 1000 nodes → 4000 GPUs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .spec import MachineSpec, NetworkSpec, NodeSpec, ProcessorSpec

if TYPE_CHECKING:  # pp layer stays an optional import for the machine specs
    from .calibrate import CalibrationTable

__all__ = ["GPU_PROCESSOR", "HOST_PROCESSOR", "orise", "ORISE_NODES"]

# Table 2 scales the ocean to 16085 GPUs; round the machine up to 4200
# nodes (16800 GPUs) — the paper does not publish the full node count.
ORISE_NODES = 4200
GPUS_PER_NODE = 4

#: MI60-class accelerator: 6.6 TF FP64 peak; bandwidth-bound stencils
#: sustain a fraction of HBM2's 1 TB/s.
GPU_PROCESSOR = ProcessorSpec(
    name="ORISE-GPU",
    flops=1.3e12,
    mem_bw=6.0e11,
    cache_bytes=4 * 1024 * 1024,
    cache_speedup=1.0,
)

#: Host CPU share backing one GPU process (8 of 32 cores at 2 GHz).
HOST_PROCESSOR = ProcessorSpec(
    name="ORISE-CPU",
    flops=2.0e10,
    mem_bw=2.0e10,
    cache_bytes=8 * 1024 * 1024,
    cache_speedup=1.5,
)


def orise(
    n_nodes: int = ORISE_NODES,
    calibration: Optional["CalibrationTable"] = None,
) -> MachineSpec:
    """The ORISE system (optionally a partition of ``n_nodes``).

    ``calibration`` applies a measurement-fitted table's
    :meth:`~repro.machine.calibrate.CalibrationTable.machine_scales` to
    both the GPU and host processor specs; ``None`` (the default) keeps
    the hand-set constants unchanged.
    """
    if not 0 < n_nodes <= ORISE_NODES:
        raise ValueError(f"ORISE model has {ORISE_NODES} nodes")
    node = NodeSpec(
        name="ORISE-node",
        processes_per_node=GPUS_PER_NODE,
        cores_per_process=1,
        processor=GPU_PROCESSOR,
        host_processor=HOST_PROCESSOR,
        staging_bw=1.6e10,  # 16 GB/s PCIe DMA
    )
    network = NetworkSpec(
        latency_s=1.5e-6,
        bandwidth=2.5e10,   # 25 GB/s
        nodes_per_supernode=ORISE_NODES,  # flat network: no supernode taper
        oversubscription=1.0,
    )
    spec = MachineSpec("ORISE", n_nodes, node, network)
    if calibration is not None:
        spec = spec.calibrated(**calibration.machine_scales())
    return spec
