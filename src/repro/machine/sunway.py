"""The Sunway OceanLight machine model.

Published facts (paper §6.3 and [25]):

* >107520 nodes, one SW26010P 390-core CPU per node → 41,932,800 cores.
* 390 cores/node = 6 core groups (CG), each 1 MPE + 64 CPEs; the paper
  assigns **one MPI process per CG**, with the MPE offloading to its CPEs.
* Each 256-node group on a leaf switch forms a **super node**; super nodes
  connect through a 16:3 (256:48) oversubscribed multi-layer fat tree.

Sustained-rate defaults below are calibration parameters (see
:mod:`repro.machine.spec`); the published MPE-vs-CPE speedups of 84–184×
(§7.2) pin the *ratio* between the two processor specs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .spec import MachineSpec, NetworkSpec, NodeSpec, ProcessorSpec

if TYPE_CHECKING:  # pp layer stays an optional import for the machine specs
    from .calibrate import CalibrationTable

__all__ = [
    "MPE_PROCESSOR",
    "CPE_PROCESSOR",
    "sunway_oceanlight",
    "OCEANLIGHT_NODES",
    "CORES_PER_NODE",
    "CORES_PER_PROCESS",
]

OCEANLIGHT_NODES = 107520
CORES_PER_NODE = 390
PROCESSES_PER_NODE = 6       # one per core group
CORES_PER_PROCESS = 65       # 1 MPE + 64 CPEs

#: MPE-only execution: one management core doing all the work (the paper's
#: "MPE" baseline curves).  A SW26010P MPE is a modest in-order-ish core;
#: stencil codes sustain O(1) GFLOP/s on it.
MPE_PROCESSOR = ProcessorSpec(
    name="SW26010P-MPE",
    flops=1.2e9,
    mem_bw=4.0e9,
    cache_bytes=512 * 1024,
    cache_speedup=2.0,
)

#: CPE-accelerated execution: the whole CG (64 CPEs) working, with LDM
#: tiling ("CPE+OPT").  The ~130x flops ratio to the MPE reproduces the
#: paper's measured 84-184x end-to-end speedups once communication terms
#: (which do not accelerate) are added.
CPE_PROCESSOR = ProcessorSpec(
    name="SW26010P-CG",
    flops=1.56e11,
    mem_bw=4.8e10,
    cache_bytes=64 * 256 * 1024,
    cache_speedup=1.6,
)


def sunway_oceanlight(
    n_nodes: int = OCEANLIGHT_NODES,
    calibration: Optional["CalibrationTable"] = None,
) -> MachineSpec:
    """The OceanLight system (optionally a partition of ``n_nodes``).

    ``calibration`` (a measurement-fitted
    :class:`~repro.machine.calibrate.CalibrationTable`) rescales both
    processor classes by the table's
    :meth:`~repro.machine.calibrate.CalibrationTable.machine_scales`,
    preserving the published MPE-vs-CPE ratio; ``None`` (the default)
    returns the hand-set constants unchanged.
    """
    if not 0 < n_nodes <= OCEANLIGHT_NODES:
        raise ValueError(f"OceanLight has {OCEANLIGHT_NODES} nodes")
    node = NodeSpec(
        name="SW26010P",
        processes_per_node=PROCESSES_PER_NODE,
        cores_per_process=CORES_PER_PROCESS,
        processor=CPE_PROCESSOR,
        host_processor=MPE_PROCESSOR,
        staging_bw=None,  # CPEs share the node memory: no PCIe staging
    )
    network = NetworkSpec(
        latency_s=2.5e-6,
        bandwidth=2.0e10,
        nodes_per_supernode=256,
        oversubscription=256.0 / 48.0,  # the 16:3 fat-tree taper
    )
    spec = MachineSpec("Sunway OceanLight", n_nodes, node, network)
    if calibration is not None:
        spec = spec.calibrated(**calibration.machine_scales())
    return spec
