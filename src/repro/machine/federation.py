"""Computing-power-network federation (the paper's §8 future work).

"To further scale, we will explore federating geographically distributed
HPC clusters through a computing power network, enabling task-level
parallel execution of distinct ESM components and thereby improving
aggregate performance."

This module prices exactly that: one component per machine (e.g. the
atmosphere on Sunway OceanLight, the ocean on ORISE), coupled across a
wide-area link.  The coupled time per day becomes

    max(T_atm@machine1, T_ocn@machine2) + T_wan(coupling traffic)

and the analysis exposes the break-even WAN bandwidth/latency at which
federation beats the best single-machine two-domain split — the go/no-go
number such a deployment would need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..utils.units import SECONDS_PER_DAY, sypd_from_walltime
from .perfmodel import ComponentWorkload, CoupledPerfModel, CouplingSpec, PerfModel

__all__ = ["WanLink", "FederatedESM"]


@dataclass(frozen=True)
class WanLink:
    """A wide-area interconnect between two centers.

    Defaults are a dedicated research-network class link: ~50 ms one-way
    latency (continental distance) and 100 Gb/s provisioned bandwidth.
    """

    latency_s: float = 0.05
    bandwidth: float = 1.25e10  # bytes/s (100 Gb/s)

    def transfer_time(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.latency_s + nbytes / self.bandwidth


@dataclass(frozen=True)
class FederatedESM:
    """One component per machine, coupled across a WAN.

    Parameters
    ----------
    model1 / workload1:
        The first component on its machine (e.g. atmosphere on Sunway).
    model2 / workload2:
        The second component on its machine (e.g. ocean on ORISE).
    coupling:
        Same spec as the single-machine coupled model; its byte volumes
        cross the WAN here.
    link:
        The computing-power-network link.
    """

    model1: PerfModel
    workload1: ComponentWorkload
    model2: PerfModel
    workload2: ComponentWorkload
    coupling: CouplingSpec
    link: WanLink = field(default_factory=WanLink)

    def wan_time_per_day(self) -> float:
        """Coupling traffic over the WAN (every exchange crosses it)."""
        total = 0.0
        for label, freq in self.coupling.exchanges_per_day.items():
            nbytes = self.coupling.bytes_per_exchange.get(label, 0.0)
            total += freq * self.link.transfer_time(nbytes)
        return total

    def time_per_day(self, n_procs1: int, n_procs2: int) -> float:
        t1 = self.model1.time_per_day(self.workload1, n_procs1).total
        t2 = self.model2.time_per_day(self.workload2, n_procs2).total
        return max(t1, t2) + self.wan_time_per_day()

    def predict_sypd(self, n_procs1: int, n_procs2: int) -> float:
        return sypd_from_walltime(SECONDS_PER_DAY, self.time_per_day(n_procs1, n_procs2))

    # -- analysis -------------------------------------------------------------

    def compare_with_single_machine(
        self,
        single: CoupledPerfModel,
        single_total_procs: int,
        n_procs1: int,
        n_procs2: int,
    ) -> Dict[str, float]:
        """Federated vs the best single-machine two-domain split."""
        s1, s2 = single.balance_resources(single_total_procs)
        t_single = single.time_per_day(s1, s2)
        t_fed = self.time_per_day(n_procs1, n_procs2)
        return {
            "single_machine_s_per_day": t_single,
            "federated_s_per_day": t_fed,
            "federation_speedup": t_single / t_fed,
            "wan_share_of_federated": self.wan_time_per_day() / t_fed,
        }

    def breakeven_bandwidth(
        self,
        target_s_per_day: float,
        n_procs1: int,
        n_procs2: int,
    ) -> Optional[float]:
        """Smallest WAN bandwidth (bytes/s) at which the federated time
        meets ``target_s_per_day`` (None if latency alone already blows
        the budget)."""
        if target_s_per_day <= 0:
            raise ValueError("target must be positive")
        t1 = self.model1.time_per_day(self.workload1, n_procs1).total
        t2 = self.model2.time_per_day(self.workload2, n_procs2).total
        compute = max(t1, t2)
        lat_total = sum(
            freq * self.link.latency_s
            for freq in self.coupling.exchanges_per_day.values()
        )
        budget = target_s_per_day - compute - lat_total
        if budget <= 0:
            return None
        total_bytes = sum(
            freq * self.coupling.bytes_per_exchange.get(label, 0.0)
            for label, freq in self.coupling.exchanges_per_day.items()
        )
        return total_bytes / budget
