"""Hardware specifications for the simulated machines.

The specs record what the paper's §6.3 publishes about the two systems:
Sunway OceanLight (SW26010P: 390 cores/node = 6 core groups of 1 MPE + 64
CPEs; >107520 nodes; 256-node super-nodes on one leaf switch; 16:3
oversubscribed multi-layer fat tree) and ORISE (4 MI60-class HIP GPUs per
node, 32-core x86 host, 16 GB/s PCIe DMA, 25 GB/s interconnect).

Quantities the paper does not publish (sustained per-core rates, achieved
memory bandwidths) are *calibration parameters*: the performance model
anchors them against one published Table 2 point per curve and predicts the
rest.  They are given physically plausible defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

__all__ = ["ProcessorSpec", "NodeSpec", "NetworkSpec", "MachineSpec"]


@dataclass(frozen=True)
class ProcessorSpec:
    """One schedulable processing element class (MPE core, CG, or GPU).

    ``flops`` / ``mem_bw`` are *sustained* rates for stencil-dominated
    climate kernels, not peaks: the model is roofline-style, so kernel time
    is ``max(flops_needed / flops, bytes_needed / mem_bw)``.
    """

    name: str
    flops: float            # sustained FLOP/s
    mem_bw: float           # sustained bytes/s to its main memory
    cache_bytes: float = 0  # fast-memory capacity (LDM / L2 / HBM cache)
    cache_speedup: float = 1.0  # mem_bw multiplier when working set fits

    def calibrated(
        self, flops_scale: float = 1.0, mem_bw_scale: float = 1.0
    ) -> "ProcessorSpec":
        """Sustained rates rescaled by measurement-fitted factors.

        This is how a :class:`~repro.machine.calibrate.CalibrationTable`'s
        :meth:`~repro.machine.calibrate.CalibrationTable.machine_scales`
        lands on a spec: ratios between processor classes (the published
        MPE-vs-CPE speedups) are preserved because both are scaled by the
        same measured factors.
        """
        if flops_scale <= 0 or mem_bw_scale <= 0:
            raise ValueError("calibration scales must be positive")
        return replace(
            self,
            flops=self.flops * flops_scale,
            mem_bw=self.mem_bw * mem_bw_scale,
        )


@dataclass(frozen=True)
class NodeSpec:
    """A node: how many processes it hosts and what each one drives."""

    name: str
    processes_per_node: int
    cores_per_process: int
    processor: ProcessorSpec          # per-process compute element
    host_processor: Optional[ProcessorSpec] = None  # e.g. MPE-only mode
    staging_bw: Optional[float] = None  # host<->device bytes/s (PCIe), if any

    @property
    def cores_per_node(self) -> int:
        return self.processes_per_node * self.cores_per_process


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect parameters for the LogGP-style cost model."""

    latency_s: float                  # end-to-end small-message latency
    bandwidth: float                  # per-NIC injection bandwidth, bytes/s
    nodes_per_supernode: int = 256
    oversubscription: float = 1.0     # >1 slows inter-supernode traffic

    def effective_bandwidth(self, inter_supernode: bool) -> float:
        if inter_supernode and self.oversubscription > 1.0:
            return self.bandwidth / self.oversubscription
        return self.bandwidth


@dataclass(frozen=True)
class MachineSpec:
    """A full machine: nodes + network + a name for reports."""

    name: str
    n_nodes: int
    node: NodeSpec
    network: NetworkSpec

    @property
    def total_processes(self) -> int:
        return self.n_nodes * self.node.processes_per_node

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.node.cores_per_node

    def processes_for_nodes(self, n_nodes: int) -> int:
        if not 0 < n_nodes <= self.n_nodes:
            raise ValueError(
                f"{self.name} has {self.n_nodes} nodes; requested {n_nodes}"
            )
        return n_nodes * self.node.processes_per_node

    def with_processor(self, processor: ProcessorSpec) -> "MachineSpec":
        """A copy whose processes drive a different compute element (used to
        switch a curve between MPE-only and CPE-accelerated modes)."""
        return replace(self, node=replace(self.node, processor=processor))

    def calibrated(
        self, flops_scale: float = 1.0, mem_bw_scale: float = 1.0
    ) -> "MachineSpec":
        """Every processor class rescaled by measurement-fitted factors
        (see :meth:`ProcessorSpec.calibrated`); identity scales return an
        equal spec."""
        node = replace(
            self.node,
            processor=self.node.processor.calibrated(flops_scale, mem_bw_scale),
            host_processor=(
                None
                if self.node.host_processor is None
                else self.node.host_processor.calibrated(flops_scale, mem_bw_scale)
            ),
        )
        return replace(self, node=node)
