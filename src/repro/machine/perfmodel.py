"""Analytic performance model: from component workloads to SYPD.

This is the substitute for running on the real Sunway OceanLight / ORISE
machines.  Time per simulated day of a component is assembled from first
principles:

* **compute** — roofline per process: ``max(flops / proc.flops, bytes /
  mem_bw)`` per phase step, with a cache bonus when the per-process working
  set fits in fast memory (this term produces the super-linear 118 %
  efficiency the paper measures for the OCN MPE curve);
* **halo exchange** — perimeter-scaled message sizes from the 2-D
  decomposition, priced with the LogGP models in
  :mod:`repro.parallel.collectives`;
* **collectives** — log2(P) latency terms per allreduce (CFL checks,
  barotropic dot products), with the fat-tree oversubscription penalty when
  the job spans super-nodes;
* **staging** — PCIe transfer of halo data for accelerator machines (ORISE);
* **serial** — an Amdahl term for work that does not parallelize (dominant
  in the paper's MPE-only baselines, whose strong-scaling efficiency
  collapses to 24.6 %).

Sustained rates are not published, so each curve of Table 2/Fig 8 is
**calibrated** on its two endpoint anchors (compute scale + serial seconds,
a 2x2 linear solve) and every intermediate point is a prediction.  The
benchmarks report paper-vs-model for all points, including the calibrated
ones (where agreement is exact by construction and labeled as such).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..utils.units import SECONDS_PER_DAY, sypd_from_walltime
from .spec import MachineSpec, ProcessorSpec

if TYPE_CHECKING:  # avoid importing the pp layer at module import time
    from .calibrate import CalibrationTable

__all__ = [
    "Phase",
    "ComponentWorkload",
    "PerfBreakdown",
    "PerfModel",
    "CoupledPerfModel",
    "CouplingSpec",
]


@dataclass(frozen=True)
class Phase:
    """One sub-cycle of a component (dycore, tracer, physics, barotropic...).

    Parameters
    ----------
    steps_per_day:
        Number of times this phase executes per simulated day.
    flops_per_point / bytes_per_point:
        Work per 3-D grid point per step.
    halo_fields:
        Number of 3-D fields whose halos are exchanged each step.
    halo_width:
        Halo depth in points.
    allreduces_per_step:
        Global reductions per step (CFL checks, solver dot products).
    kernel:
        Optional calibration-class tag naming the probe kernel in a
        :class:`~repro.machine.calibrate.CalibrationTable` that prices
        this phase (``stencil``, ``axpy``, ``stream``, ``fma8``,
        ``transcendental``).  Untagged phases fall back to
        nearest-arithmetic-intensity matching; without a calibration
        table the tag is inert.
    """

    name: str
    steps_per_day: float
    flops_per_point: float
    bytes_per_point: float
    halo_fields: int = 1
    halo_width: int = 1
    allreduces_per_step: float = 0.0
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.steps_per_day <= 0:
            raise ValueError("steps_per_day must be positive")
        if self.flops_per_point < 0 or self.bytes_per_point < 0:
            raise ValueError("work per point must be >= 0")


@dataclass(frozen=True)
class ComponentWorkload:
    """A component's computational profile on a given grid configuration."""

    name: str
    columns: int           # horizontal grid points (cells / wet columns)
    levels: int
    phases: Tuple[Phase, ...]
    point_bytes_state: float = 200.0   # resident state bytes per 3-D point
    serial_seconds_per_day: float = 0.0  # Amdahl term (calibrated)

    def __post_init__(self) -> None:
        if self.columns <= 0 or self.levels <= 0:
            raise ValueError("grid extents must be positive")
        if not self.phases:
            raise ValueError("a workload needs at least one phase")

    @property
    def points(self) -> int:
        return self.columns * self.levels

    def scaled(self, points_factor: float) -> "ComponentWorkload":
        """Workload with the column count scaled (e.g. non-ocean-point
        removal keeps ~70 % of the points)."""
        if points_factor <= 0:
            raise ValueError("points_factor must be positive")
        return replace(self, columns=max(1, int(round(self.columns * points_factor))))


@dataclass(frozen=True)
class PerfBreakdown:
    """Per-simulated-day time decomposition for one component run."""

    component: str
    n_processes: int
    t_compute: float
    t_halo: float
    t_collectives: float
    t_staging: float
    t_serial: float

    @property
    def total(self) -> float:
        return self.t_compute + self.t_halo + self.t_collectives + self.t_staging + self.t_serial

    @property
    def sypd(self) -> float:
        return sypd_from_walltime(SECONDS_PER_DAY, self.total)

    @property
    def comm_fraction(self) -> float:
        return (self.t_halo + self.t_collectives + self.t_staging) / self.total


@dataclass(frozen=True)
class PerfModel:
    """Performance model of one machine in one execution mode.

    Parameters
    ----------
    machine:
        The machine spec.
    mode:
        ``"accelerated"`` (CPEs/GPUs) or ``"host"`` (MPE-only / CPU-only).
    compute_scale:
        Multiplier on compute time (calibrated; 1.0 = spec defaults).
    comm_scale:
        Multiplier on communication time (calibrated).
    calibration:
        Optional measurement-fitted :class:`~repro.machine.calibrate.CalibrationTable`.
        When set, each phase's roofline step time is repriced with the
        matching kernel's fitted ``overhead_factor`` / ``bandwidth_scale``
        / ``per_launch_s``; when ``None`` (the default) the compute term
        is byte-identical to the uncalibrated constants.
    """

    machine: MachineSpec
    mode: str = "accelerated"
    compute_scale: float = 1.0
    comm_scale: float = 1.0
    calibration: Optional["CalibrationTable"] = None
    #: Per-rank compute-time coefficient of variation.  Every substep ends
    #: at the *slowest* rank, and the expected maximum of P iid
    #: rank-times is ~ mean * (1 + cv * sqrt(2 ln P)) (Gumbel asymptotics)
    #: — the "synchronization overhead at large node counts" the paper
    #: blames for the Fig. 8b efficiency drop.  Default 0 (off): the
    #: strong-scaling reproductions do not depend on it; the weak-scaling
    #: bench uses it as an explicit sensitivity knob.
    imbalance_cv: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("accelerated", "host"):
            raise ValueError("mode must be 'accelerated' or 'host'")
        if self.mode == "host" and self.machine.node.host_processor is None:
            raise ValueError(f"{self.machine.name} has no host-only mode")
        if self.compute_scale <= 0 or self.comm_scale < 0:
            raise ValueError("scales must be positive")
        if self.imbalance_cv < 0:
            raise ValueError("imbalance_cv must be >= 0")

    # -- pieces ------------------------------------------------------------

    @property
    def processor(self) -> ProcessorSpec:
        if self.mode == "host":
            assert self.machine.node.host_processor is not None
            return self.machine.node.host_processor
        return self.machine.node.processor

    def _effective_mem_bw(self, working_set_bytes: float) -> float:
        p = self.processor
        if p.cache_bytes > 0 and working_set_bytes <= p.cache_bytes:
            return p.mem_bw * p.cache_speedup
        return p.mem_bw

    def _local_geometry(self, workload: ComponentWorkload, n_procs: int) -> Tuple[float, float]:
        """(local 3-D points, halo points per width-1 single-field exchange).

        Assumes a 2-D horizontal decomposition with full columns local: the
        halo perimeter of a near-square block of ``cols_local`` columns is
        ``4 * sqrt(cols_local)`` columns.
        """
        cols_local = workload.columns / n_procs
        points_local = cols_local * workload.levels
        perimeter_cols = 4.0 * math.sqrt(max(cols_local, 1.0))
        return points_local, perimeter_cols * workload.levels

    def _spans_supernodes(self, n_procs: int) -> bool:
        nodes = n_procs / self.machine.node.processes_per_node
        return nodes > self.machine.network.nodes_per_supernode

    # -- main entry ----------------------------------------------------------

    def time_per_day(self, workload: ComponentWorkload, n_procs: int) -> PerfBreakdown:
        """Seconds of wall time per simulated day."""
        if n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if n_procs > self.machine.total_processes:
            raise ValueError(
                f"{self.machine.name} supports at most "
                f"{self.machine.total_processes} processes; got {n_procs}"
            )
        proc = self.processor
        net = self.machine.network
        points_local, halo_points = self._local_geometry(workload, n_procs)
        working_set = points_local * workload.point_bytes_state
        mem_bw = self._effective_mem_bw(working_set)

        t_compute = 0.0
        t_halo = 0.0
        t_coll = 0.0
        t_staging = 0.0
        spans = self._spans_supernodes(n_procs)
        latency = net.latency_s * (1.5 if spans else 1.0)
        halo_bw = net.effective_bandwidth(inter_supernode=False)

        for phase in workload.phases:
            flops = points_local * phase.flops_per_point
            bytes_ = points_local * phase.bytes_per_point
            if self.calibration is None:
                t_step = max(flops / proc.flops, bytes_ / mem_bw)
            else:
                entry = self.calibration.for_phase(phase)
                t_step = (
                    max(flops / proc.flops, bytes_ / (mem_bw * entry.bandwidth_scale))
                    * entry.overhead_factor
                    + entry.per_launch_s
                )
            t_compute += phase.steps_per_day * t_step

            if n_procs > 1:
                halo_bytes = halo_points * phase.halo_width * phase.halo_fields * 8.0
                n_neighbors = 4
                t_halo += phase.steps_per_day * (
                    n_neighbors * latency + halo_bytes / halo_bw
                )
                if phase.allreduces_per_step > 0:
                    rounds = max(1, math.ceil(math.log2(n_procs)))
                    t_coll += (
                        phase.steps_per_day
                        * phase.allreduces_per_step
                        * rounds
                        * latency
                    )
                if self.machine.node.staging_bw:
                    # Halo data crosses PCIe twice (D2H before send, H2D after recv).
                    t_staging += phase.steps_per_day * (
                        2.0 * halo_bytes / self.machine.node.staging_bw
                    )

        if self.imbalance_cv > 0.0 and n_procs > 1:
            # Expected max of n_procs iid rank times (Gumbel asymptotics).
            t_compute *= 1.0 + self.imbalance_cv * math.sqrt(2.0 * math.log(n_procs))

        return PerfBreakdown(
            component=workload.name,
            n_processes=n_procs,
            t_compute=t_compute * self.compute_scale,
            t_halo=t_halo * self.comm_scale,
            t_collectives=t_coll * self.comm_scale,
            t_staging=t_staging * self.comm_scale,
            t_serial=workload.serial_seconds_per_day,
        )

    def predict_sypd(self, workload: ComponentWorkload, n_procs: int) -> float:
        return self.time_per_day(workload, n_procs).sypd

    def with_calibration(
        self, calibration: Optional["CalibrationTable"]
    ) -> "PerfModel":
        """The same model repriced with measurement-fitted kernel terms
        (``None`` returns to the uncalibrated constants)."""
        return replace(self, calibration=calibration)

    # -- calibration ---------------------------------------------------------

    def calibrated(
        self,
        workload: ComponentWorkload,
        anchors: Sequence[Tuple[int, float]],
    ) -> Tuple["PerfModel", ComponentWorkload]:
        """Calibrate (compute_scale, serial_seconds_per_day) on anchors.

        ``anchors`` is a list of ``(n_procs, sypd)`` published points.  With
        two anchors the 2x2 linear system is solved exactly; with one, only
        the compute scale is fit (serial term left as-is).  Returns the
        calibrated model and the workload carrying the fitted serial term.

        The communication terms stay first-principles: calibration never
        touches them, so scaling *shape* between anchors remains a genuine
        prediction.
        """
        if not anchors:
            raise ValueError("need at least one anchor point")

        def parts(n_procs: int) -> Tuple[float, float]:
            base = replace(self, compute_scale=1.0).time_per_day(
                replace(workload, serial_seconds_per_day=0.0), n_procs
            )
            comm = base.t_halo + base.t_collectives + base.t_staging
            return base.t_compute, comm

        targets = [
            (p, SECONDS_PER_DAY / (365.0 * sypd)) for p, sypd in anchors
        ]
        if len(targets) == 1:
            p, t_day = targets[0]
            t_comp, t_comm = parts(p)
            resid = t_day - t_comm - workload.serial_seconds_per_day
            if resid <= 0:
                raise ValueError(
                    "anchor is faster than the modeled communication floor; "
                    "reduce comm_scale or check the workload"
                )
            return (
                replace(self, compute_scale=resid / t_comp),
                workload,
            )

        (p1, t1), (p2, t2) = targets[0], targets[-1]
        c1, m1 = parts(p1)
        c2, m2 = parts(p2)
        # Solve a*c + B = t - m for (a, B).
        denom = c1 - c2
        if abs(denom) < 1e-30:
            raise ValueError("anchors have identical compute time; cannot calibrate")
        a = ((t1 - m1) - (t2 - m2)) / denom
        b = (t1 - m1) - a * c1
        if a <= 0:
            # Degenerate fit (published curve is super-linear beyond the cache
            # model): fall back to a one-anchor fit on the largest scale.
            return self.calibrated(workload, [anchors[-1]])
        b = max(b, 0.0)
        return (
            replace(self, compute_scale=a),
            replace(workload, serial_seconds_per_day=b),
        )


@dataclass(frozen=True)
class CouplingSpec:
    """Coupler cost description for the coupled model.

    ``exchanges_per_day`` maps component pair labels to coupling
    frequencies (the paper: atm 180, ocn 36, ice 180 per day);
    ``bytes_per_exchange`` is the rearranged boundary-data volume.

    The latency term is granularity-aware (the coalescing axis of the
    coupler fast path): under ``granularity="plan"`` (the compiled
    :class:`repro.coupler.RearrangePlan` layout, default) each partner
    edge carries ONE message per exchange; under ``"field"`` (legacy MCT)
    it carries one message *per coupling field*, multiplying the latency
    term by ``fields_per_exchange[label]``.  Data volume is identical
    either way — coalescing removes message count, not bytes.
    """

    exchanges_per_day: Dict[str, float]
    bytes_per_exchange: Dict[str, float]
    partners: int = 16  # overlapping ranks per rearrange (sparse p2p)
    #: Coupling fields per exchanged bundle, per pair label (what the
    #: legacy per-field rearranger turns into separate messages).
    fields_per_exchange: Dict[str, float] = field(default_factory=dict)
    #: Message layout: "plan" posts one coalesced message per partner
    #: edge per exchange; "field" posts one per field per edge.
    granularity: str = "plan"

    def __post_init__(self) -> None:
        if self.granularity not in ("plan", "field"):
            raise ValueError("granularity must be 'plan' or 'field'")

    def messages_per_partner(self, label: str) -> float:
        if self.granularity == "field":
            return max(1.0, self.fields_per_exchange.get(label, 1.0))
        return 1.0

    def repriced(self, granularity: str) -> "CouplingSpec":
        """The same coupling under the other message layout."""
        return replace(self, granularity=granularity)

    def message_reduction(self) -> Dict[str, float]:
        """Messages saved per partner edge by coalescing (field -> plan),
        per pair label."""
        return {
            label: max(1.0, self.fields_per_exchange.get(label, 1.0))
            for label in self.exchanges_per_day
        }

    def time_per_day(self, model: PerfModel, n_procs: int) -> float:
        net = model.machine.network
        latency = net.latency_s * (1.5 if model._spans_supernodes(n_procs) else 1.0)
        bw = net.effective_bandwidth(inter_supernode=True)
        total = 0.0
        for label, freq in self.exchanges_per_day.items():
            nbytes = self.bytes_per_exchange.get(label, 0.0) / max(n_procs, 1)
            messages = self.partners * self.messages_per_partner(label)
            total += freq * (messages * latency + nbytes * self.partners / max(self.partners, 1) / bw)
        return total * model.comm_scale


@dataclass(frozen=True)
class CoupledPerfModel:
    """Two concurrent task domains + coupler (the paper's §5.1.2 layout).

    Domain 1 hosts coupler + atmosphere + sea ice + land; domain 2 hosts
    the ocean.  The coupled time per day is ``max(domain times) +
    coupling``, and :meth:`balance_resources` finds the split that the
    paper's "computational resource allocation is adjusted based on the
    computational profile of each component" describes.
    """

    model1: PerfModel
    model2: PerfModel
    domain1: Tuple[ComponentWorkload, ...]
    domain2: Tuple[ComponentWorkload, ...]
    coupling: CouplingSpec
    #: Inter-domain synchronization/imbalance: at every coupling point the
    #: faster domain idles; a static split cannot balance every interval,
    #: so a fraction of the *smaller* domain time is lost (calibrated).
    sync_imbalance: float = 0.0
    #: Coupled-run serial term (driver sequencing, merge/diagnose steps).
    serial_seconds: float = 0.0

    @classmethod
    def from_layout(
        cls,
        layout: Dict[str, Dict[str, object]],
        workloads: Dict[str, ComponentWorkload],
        model1: PerfModel,
        model2: PerfModel,
        coupling: CouplingSpec,
        calibration: Optional["CalibrationTable"] = None,
        **kwargs,
    ) -> "CoupledPerfModel":
        """Build from a driver task-domain layout (``AP3ESM.task_domains``
        / ``repro.esm.scheduler.paper_layout`` shape).

        ``workloads`` maps component names to their profiles; layout
        members without a workload (the coupler, or components too cheap
        to model) are skipped.  Each domain must keep at least one
        modeled member.  ``calibration`` (optional) reprices both domain
        models with one measurement-fitted table.
        """
        if calibration is not None:
            model1 = model1.with_calibration(calibration)
            model2 = model2.with_calibration(calibration)
        def pick(name: str) -> Tuple[ComponentWorkload, ...]:
            members = layout[name]["members"]
            picked = tuple(workloads[m] for m in members if m in workloads)
            if not picked:
                raise ValueError(
                    f"no workloads for {name} members {list(members)}"
                )
            return picked

        return cls(
            model1=model1,
            model2=model2,
            domain1=pick("domain1"),
            domain2=pick("domain2"),
            coupling=coupling,
            **kwargs,
        )

    def with_calibration(
        self, calibration: Optional["CalibrationTable"]
    ) -> "CoupledPerfModel":
        """Both domain models repriced with one measurement-fitted table
        (``None`` returns to the uncalibrated constants)."""
        return replace(
            self,
            model1=self.model1.with_calibration(calibration),
            model2=self.model2.with_calibration(calibration),
        )

    def domain_time(self, domain: Sequence[ComponentWorkload], model: PerfModel, n_procs: int) -> float:
        return sum(model.time_per_day(w, n_procs).total for w in domain)

    def time_per_day(self, n_procs1: int, n_procs2: int) -> float:
        t1 = self.domain_time(self.domain1, self.model1, n_procs1)
        t2 = self.domain_time(self.domain2, self.model2, n_procs2)
        t_couple = self.coupling.time_per_day(self.model1, n_procs1)
        return (
            max(t1, t2)
            + self.sync_imbalance * min(t1, t2)
            + t_couple
            + self.serial_seconds
        )

    def calibrated_coupled(
        self, anchors: Sequence[Tuple[int, int, float]]
    ) -> "CoupledPerfModel":
        """Fit (sync_imbalance, serial_seconds) on coupled anchor points.

        ``anchors`` are (n_procs1, n_procs2, published_sypd).  With two
        anchors the 2x2 system is solved exactly; interior coupled points
        remain predictions.  Falls back to clamped single-parameter fits
        when the exact solution is unphysical (negative terms).
        """
        if not anchors:
            raise ValueError("need at least one coupled anchor")
        base = replace(self, sync_imbalance=0.0, serial_seconds=0.0)

        def parts(n1: int, n2: int) -> Tuple[float, float, float]:
            t1 = base.domain_time(base.domain1, base.model1, n1)
            t2 = base.domain_time(base.domain2, base.model2, n2)
            return max(t1, t2), min(t1, t2), base.coupling.time_per_day(base.model1, n1)

        targets = [
            (n1, n2, SECONDS_PER_DAY / (365.0 * sypd)) for n1, n2, sypd in anchors
        ]
        if len(targets) == 1:
            n1, n2, t_pub = targets[0]
            mx, mn, tc = parts(n1, n2)
            beta = max((t_pub - mx - tc) / mn, 0.0) if mn > 0 else 0.0
            return replace(self, sync_imbalance=beta, serial_seconds=0.0)

        (n1a, n2a, ta), (n1b, n2b, tb) = targets[0], targets[-1]
        mxa, mna, tca = parts(n1a, n2a)
        mxb, mnb, tcb = parts(n1b, n2b)
        # Solve beta*mn + B = t_pub - mx - tc at both anchors.
        ra = ta - mxa - tca
        rb = tb - mxb - tcb
        denom = mna - mnb
        if abs(denom) < 1e-30:
            return self.calibrated_coupled([anchors[-1]])
        beta = (ra - rb) / denom
        serial = ra - beta * mna
        if beta < 0 or serial < 0:
            # The exact solve is unphysical (overhead grows faster than the
            # smaller domain's time at small scale): fall back to a
            # log-space least-squares fit of the imbalance factor alone,
            # which balances the anchor errors instead of nailing one end.
            import numpy as np

            betas = np.linspace(0.0, 3.0, 301)
            cost = np.zeros_like(betas)
            for (n1, n2, t_pub) in targets:
                mx, mn, tc = parts(n1, n2)
                cost += (np.log(mx + betas * mn + tc) - math.log(t_pub)) ** 2
            beta = float(betas[int(np.argmin(cost))])
            return replace(self, sync_imbalance=beta, serial_seconds=0.0)
        return replace(self, sync_imbalance=beta, serial_seconds=serial)

    def predict_sypd(self, n_procs1: int, n_procs2: int) -> float:
        return sypd_from_walltime(SECONDS_PER_DAY, self.time_per_day(n_procs1, n_procs2))

    def degraded_estimate(
        self, n_procs1: int, n_procs2: int, lost1: int = 0, lost2: int = 0
    ) -> Dict[str, float]:
        """Post-shrink throughput: the same workload on the processes that
        survive a rank loss (elastic recovery's degraded-mode continuation).

        Returns the fault-free and degraded SYPD plus the slowdown factor
        — what an operator uses to decide between continuing shrunk and
        draining for a repair.
        """
        if not 0 <= lost1 < n_procs1 or not 0 <= lost2 < n_procs2:
            raise ValueError(
                f"lost ranks ({lost1}, {lost2}) must leave at least one "
                f"process per domain of ({n_procs1}, {n_procs2})"
            )
        full = self.predict_sypd(n_procs1, n_procs2)
        degraded = self.predict_sypd(n_procs1 - lost1, n_procs2 - lost2)
        return {
            "sypd_full": full,
            "sypd_degraded": degraded,
            "slowdown": full / degraded if degraded > 0 else float("inf"),
            "procs_domain1": float(n_procs1 - lost1),
            "procs_domain2": float(n_procs2 - lost2),
        }

    def sequential_time_per_day(self, total_procs: int) -> float:
        """§5.1.2's *other* strategy: "all components are executed
        sequentially within a single domain" — every component gets the
        whole allocation, but their times add instead of overlapping.
        No inter-domain imbalance applies (there is only one domain)."""
        if total_procs < 1:
            raise ValueError("total_procs must be >= 1")
        t1 = self.domain_time(self.domain1, self.model1, total_procs)
        t2 = self.domain_time(self.domain2, self.model2, total_procs)
        t_couple = self.coupling.time_per_day(self.model1, total_procs)
        return t1 + t2 + t_couple + self.serial_seconds

    def strategy_comparison(self, total_procs: int) -> Dict[str, float]:
        """Concurrent-domains vs sequential-single-domain (seconds/day and
        the speedup of the strategy the paper chose)."""
        n1, n2 = self.balance_resources(total_procs)
        concurrent = self.time_per_day(n1, n2)
        sequential = self.sequential_time_per_day(total_procs)
        return {
            "concurrent_s_per_day": concurrent,
            "sequential_s_per_day": sequential,
            "speedup": sequential / concurrent,
            "split_domain1": float(n1),
            "split_domain2": float(n2),
        }

    def balance_resources(self, total_procs: int, steps: int = 64) -> Tuple[int, int]:
        """Split ``total_procs`` between the domains to minimize coupled time."""
        if total_procs < 2:
            raise ValueError("need at least 2 processes to split")
        best = (total_procs - 1, 1)
        best_t = float("inf")
        for k in range(1, steps):
            n1 = max(1, int(round(total_procs * k / steps)))
            n2 = total_procs - n1
            if n2 < 1:
                continue
            t = self.time_per_day(n1, n2)
            if t < best_t:
                best_t = t
                best = (n1, n2)
        return best
