"""Analytic machine models (Sunway OceanLight, ORISE) and the performance
model that regenerates the paper's scaling tables and figures."""

from .calibrate import (
    CalibrationError,
    CalibrationTable,
    DriftReport,
    KernelCalibration,
    ReferenceRates,
    calibrate,
    drift,
    drift_report,
    measure_probes,
)
from .federation import FederatedESM, WanLink
from .orise import GPU_PROCESSOR, HOST_PROCESSOR, ORISE_NODES, orise
from .perfmodel import (
    ComponentWorkload,
    CoupledPerfModel,
    CouplingSpec,
    PerfBreakdown,
    PerfModel,
    Phase,
)
from .spec import MachineSpec, NetworkSpec, NodeSpec, ProcessorSpec
from .sunway import (
    CORES_PER_NODE,
    CORES_PER_PROCESS,
    CPE_PROCESSOR,
    MPE_PROCESSOR,
    OCEANLIGHT_NODES,
    sunway_oceanlight,
)
from .workloads import (
    atm_workload,
    ice_workload,
    lnd_workload,
    ocn_workload,
)

__all__ = [
    "ProcessorSpec",
    "FederatedESM",
    "WanLink",
    "NodeSpec",
    "NetworkSpec",
    "MachineSpec",
    "Phase",
    "ComponentWorkload",
    "PerfBreakdown",
    "PerfModel",
    "CoupledPerfModel",
    "CouplingSpec",
    "sunway_oceanlight",
    "orise",
    "MPE_PROCESSOR",
    "CPE_PROCESSOR",
    "GPU_PROCESSOR",
    "HOST_PROCESSOR",
    "OCEANLIGHT_NODES",
    "ORISE_NODES",
    "CORES_PER_NODE",
    "CORES_PER_PROCESS",
    "atm_workload",
    "ocn_workload",
    "ice_workload",
    "lnd_workload",
    "CalibrationError",
    "CalibrationTable",
    "KernelCalibration",
    "ReferenceRates",
    "DriftReport",
    "calibrate",
    "drift",
    "drift_report",
    "measure_probes",
]
