"""Component workload profiles for the paper's model configurations.

These encode §6.1 of the paper into :class:`~repro.machine.perfmodel.Phase`
terms:

* **GRIST atmosphere** — dycore Δt = 8 s, tracer Δt = 30 s, model (physics)
  Δt = 120 s, 30 vertical levels; physics is either the conventional suite
  or the AI suite (whose cost is dominated by dense tensor kernels and is
  several times cheaper per column — §5.2.1).
* **LICOM ocean** — barotropic Δt = 2 s, baroclinic Δt = 20 s, tracer
  Δt = 20 s, 80 levels.  The barotropic sub-stepping is 2-D work with a
  global solver reduction per step — the scalability-limiting term.
* **CICE sea ice / land** — light phases mirroring the ocean/atmosphere
  grids (the paper: "these two components are not bottlenecks").

FLOP/byte counts per point are order-of-magnitude estimates for the
respective numerical schemes; the calibration layer absorbs the absolute
scale, so only their *ratios across phases* shape the predictions.

Each phase also carries a ``kernel`` tag naming its probe class in a
:class:`~repro.machine.calibrate.CalibrationTable` (``stencil`` for the
dycore/baroclinic/EVP stencils, ``axpy`` for tracer advection, ``stream``
for the 2-D barotropic sub-stepping, ``fma8`` for dense AI-physics tensor
kernels, ``transcendental`` for column physics) — necessary because phase
*names* are not unique across workloads (ATM and OCN both have a
``tracer``).  Without a calibration table the tags are inert.
"""

from __future__ import annotations

from ..utils.units import SECONDS_PER_DAY
from .perfmodel import ComponentWorkload, Phase

__all__ = [
    "atm_workload",
    "ocn_workload",
    "ice_workload",
    "lnd_workload",
    "ATM_DYCORE_DT",
    "ATM_TRACER_DT",
    "ATM_MODEL_DT",
    "OCN_BAROTROPIC_DT",
    "OCN_BAROCLINIC_DT",
    "OCN_TRACER_DT",
]

ATM_DYCORE_DT = 8.0
ATM_TRACER_DT = 30.0
ATM_MODEL_DT = 120.0

OCN_BAROTROPIC_DT = 2.0
OCN_BAROCLINIC_DT = 20.0
OCN_TRACER_DT = 20.0


def atm_workload(
    cells: int,
    levels: int = 30,
    ai_physics: bool = True,
    name: str = "ATM",
) -> ComponentWorkload:
    """GRIST-like atmosphere workload on ``cells`` horizontal cells.

    The conventional physics suite costs ~8x the AI suite per column step:
    the AI suite replaces branch-heavy column parameterizations with a
    ~5e5-parameter CNN whose inference is dense matmul work (~2 * params /
    levels FLOPs per 3-D point) running near peak.
    """
    dycore = Phase(
        name="dycore",
        steps_per_day=SECONDS_PER_DAY / ATM_DYCORE_DT,
        flops_per_point=220.0,
        bytes_per_point=360.0,
        halo_fields=5,
        halo_width=2,
        allreduces_per_step=0.1,  # CFL check every ~10 steps
        kernel="stencil",
    )
    tracer = Phase(
        name="tracer",
        steps_per_day=SECONDS_PER_DAY / ATM_TRACER_DT,
        flops_per_point=90.0,
        bytes_per_point=160.0,
        halo_fields=2,
        halo_width=2,
        kernel="axpy",
    )
    if ai_physics:
        # ~5e5 params, 2 FLOPs/param per column, spread over `levels` points,
        # but executed as dense tensor kernels: effective cost per point is
        # low and the halo needs nothing (column-local).
        physics = Phase(
            name="ai-physics",
            steps_per_day=SECONDS_PER_DAY / ATM_MODEL_DT,
            flops_per_point=2.0 * 5.0e5 / levels / 8.0,  # tensor-kernel efficiency
            bytes_per_point=120.0,
            halo_fields=0,
            kernel="fma8",
        )
    else:
        physics = Phase(
            name="conventional-physics",
            steps_per_day=SECONDS_PER_DAY / ATM_MODEL_DT,
            flops_per_point=1.0e6 / levels,
            bytes_per_point=900.0,
            halo_fields=0,
            kernel="transcendental",
        )
    return ComponentWorkload(
        name=name,
        columns=cells,
        levels=levels,
        phases=(dycore, tracer, physics),
        point_bytes_state=30 * 8.0,
    )


def ocn_workload(
    columns: int,
    levels: int = 80,
    compressed: bool = False,
    name: str = "OCN",
) -> ComponentWorkload:
    """LICOM-like ocean workload on ``columns`` horizontal points.

    ``compressed=True`` applies the §5.2.2 non-ocean-point removal: the 3-D
    wet fraction of the tripolar grid is ~0.70 of the full box (oceans
    cover ~71 % of the surface and bathymetry removes more points at
    depth), so the same simulation runs on ~30 % fewer points.
    """
    barotropic = Phase(
        name="barotropic",
        steps_per_day=SECONDS_PER_DAY / OCN_BAROTROPIC_DT,
        # 2-D free-surface work: ~40 flops per column == 40/levels per point.
        flops_per_point=40.0 / levels,
        bytes_per_point=64.0 / levels,
        halo_fields=1,
        halo_width=1,
        allreduces_per_step=1.0,  # solver norm / stabilization each substep
        kernel="stream",
    )
    baroclinic = Phase(
        name="baroclinic",
        steps_per_day=SECONDS_PER_DAY / OCN_BAROCLINIC_DT,
        flops_per_point=180.0,
        bytes_per_point=280.0,
        halo_fields=3,
        halo_width=2,
        kernel="stencil",
    )
    tracer = Phase(
        name="tracer",
        steps_per_day=SECONDS_PER_DAY / OCN_TRACER_DT,
        flops_per_point=140.0,
        bytes_per_point=240.0,
        halo_fields=2,
        halo_width=2,
        kernel="axpy",
    )
    wl = ComponentWorkload(
        name=name,
        columns=columns,
        levels=levels,
        phases=(barotropic, baroclinic, tracer),
        point_bytes_state=40 * 8.0,
    )
    return wl.scaled(0.70) if compressed else wl


def ice_workload(columns: int, name: str = "ICE") -> ComponentWorkload:
    """CICE4-like sea-ice workload (mirrors the ocean grid, 1 level,
    thermodynamics + EVP-like dynamics at the coupling frequency)."""
    thermo = Phase(
        name="thermo",
        steps_per_day=180.0,
        flops_per_point=400.0,
        bytes_per_point=300.0,
        halo_fields=0,
        kernel="transcendental",
    )
    dyn = Phase(
        name="dynamics",
        steps_per_day=180.0,
        flops_per_point=600.0,
        bytes_per_point=400.0,
        halo_fields=2,
        halo_width=1,
        kernel="stencil",
    )
    return ComponentWorkload(name=name, columns=columns, levels=1, phases=(thermo, dyn))


def lnd_workload(columns: int, name: str = "LND") -> ComponentWorkload:
    """Bucket land model workload (atmosphere-grid land columns)."""
    step = Phase(
        name="surface",
        steps_per_day=SECONDS_PER_DAY / ATM_MODEL_DT,
        flops_per_point=300.0,
        bytes_per_point=240.0,
        halo_fields=0,
        kernel="transcendental",
    )
    return ComponentWorkload(name=name, columns=columns, levels=1, phases=(step,))
