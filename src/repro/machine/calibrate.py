"""Measurement-calibrated machine model: close the modeled-vs-measured loop.

The analytic model in :mod:`repro.machine.perfmodel` prices kernels with
hand-set roofline constants, so every PR that makes the code faster
silently widens the gap between what the model predicts and what the pp
layer actually measures.  This module closes that loop the way the
csl-experiments compute model does — derive an ``overhead_factor`` from
measured-vs-theoretical time — and keeps it honest over time through the
perf-baseline gate (a ``drift`` metric kind in ``BENCH_calibration.json``).

The pass has three parts:

* **measure** — :func:`measure_probes` launches a portfolio of probe
  kernels with analytically known work (stream copy, axpy, stencil, FMA
  chain, transcendental column) through :func:`repro.pp.parallel_for`,
  instrumented with the same :class:`repro.pp.KernelMetrics` /
  ``KernelStats`` accumulators every component kernel uses.  Measured
  seconds are read back *from the accumulators* (and the MDRange probe's
  :class:`repro.pp.TileProfile`), not from ad-hoc timers — the calibration
  consumes exactly the observability signal production runs emit.
* **fit** — :func:`calibrate` fits, per probe kernel, a line
  ``t(n) = per_launch_s + slope * n`` over the probe sizes and decomposes
  the slope into roofline terms: bandwidth-bound probes yield an effective
  ``bandwidth_scale`` (achieved / reference bytes-per-second), compute-
  bound probes an ``overhead_factor`` (measured / theoretical roofline
  time, the csl-experiments quantity).  The result is a versioned,
  content-addressed :class:`CalibrationTable` persisted with the unified
  ``to_file`` / ``from_file`` protocol.
* **drift** — :func:`drift_report` re-measures and compares the table's
  modeled per-kernel time against fresh measurements; :func:`drift` is the
  guarded scalar used by the ``drift`` metric kind in
  :mod:`repro.bench.baseline` (non-finite drift always fails the gate —
  ``NaN > tol`` being falsy must never pass silently).

A :class:`CalibrationTable` is applied to the analytic model through the
explicit ``calibration=`` handles on :class:`~repro.machine.perfmodel.PerfModel`,
:func:`~repro.machine.sunway.sunway_oceanlight` and
:func:`~repro.machine.orise.orise`.  With ``calibration=None`` (the
default) every model output is byte-identical to the uncalibrated
constants.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

# Submodule imports (not the pp package) keep this importable from
# machine/__init__ while pp/__init__ itself is mid-import (pp.backends
# imports machine.spec).
from ..pp.execspace import ExecutionSpace, Serial
from ..pp.kernels import BoundKernel, MDRangePolicy, parallel_for
from ..pp.stats import KernelMetrics

__all__ = [
    "CalibrationError",
    "ReferenceRates",
    "KernelProbe",
    "PROBES",
    "KernelMeasurement",
    "measure_probes",
    "KernelCalibration",
    "IDENTITY_CALIBRATION",
    "CalibrationTable",
    "calibrate",
    "drift",
    "DriftEntry",
    "DriftReport",
    "drift_report",
]

_TABLE_VERSION = 1

#: Floor below which a measured/modeled duration is treated as zero
#: (well under one tick of any realistic monotonic clock).
_ZERO_S = 1e-12


class CalibrationError(ValueError):
    """A calibration table is malformed, tampered with, or unusable."""


# ---------------------------------------------------------------------------
# probe kernels: module-level (picklable) functors with known work
# ---------------------------------------------------------------------------


def _probe_stream(idx: np.ndarray, out: np.ndarray, x: np.ndarray) -> None:
    """Pure copy: the STREAM-style bandwidth floor (0 flops/point)."""
    out[idx] = x[idx]


def _probe_axpy(idx: np.ndarray, out: np.ndarray, x: np.ndarray, y: np.ndarray) -> None:
    """out = a*x + y: the tracer-advection intensity class."""
    out[idx] = 2.5 * x[idx] + y[idx]


def _probe_fma8(idx: np.ndarray, out: np.ndarray, x: np.ndarray, y: np.ndarray) -> None:
    """Eight chained multiply-adds per point: dense tensor-kernel class."""
    v = x[idx]
    w = y[idx]
    for _ in range(8):
        v = v * 1.0000001 + w
    out[idx] = v


def _probe_transcendental(idx: np.ndarray, out: np.ndarray, x: np.ndarray) -> None:
    """sin + sqrt per point: the column-physics intensity class."""
    out[idx] = np.sin(x[idx]) + np.sqrt(np.abs(x[idx]) + 1.0)


def _probe_stencil2d(ix: np.ndarray, iy: np.ndarray, out: np.ndarray, x: np.ndarray) -> None:
    """4-point MDRange stencil: the dycore/baroclinic class (tiled)."""
    sub = np.ix_(ix, iy)
    out[sub] = 0.25 * (
        x[sub] + x[np.ix_(ix + 1, iy)] + x[np.ix_(ix, iy + 1)] + x[np.ix_(ix + 1, iy + 1)]
    )


@dataclass(frozen=True)
class KernelProbe:
    """A probe kernel with analytically known per-iteration work.

    ``flops_per_iter`` / ``bytes_per_iter`` are *nominal* accounting
    constants for the roofline denominator (streaming reads + one write;
    transcendentals priced at their usual polynomial cost) — the fit only
    needs them to be consistent between calibration and prediction, not
    exact.
    """

    name: str
    fn: Callable
    flops_per_iter: float
    bytes_per_iter: float
    n_inputs: int = 1       # input arrays handed to the functor (plus out)
    md: bool = False        # launch through a 2-D MDRangePolicy (tiled)

    @property
    def intensity(self) -> float:
        """Arithmetic intensity (flops/byte) used for phase matching."""
        return (self.flops_per_iter + 1e-9) / (self.bytes_per_iter + 1e-9)


PROBES: Dict[str, KernelProbe] = {
    p.name: p
    for p in (
        KernelProbe("stream", _probe_stream, flops_per_iter=0.0, bytes_per_iter=16.0),
        KernelProbe("axpy", _probe_axpy, flops_per_iter=2.0, bytes_per_iter=24.0, n_inputs=2),
        KernelProbe("stencil", _probe_stencil2d, flops_per_iter=6.0, bytes_per_iter=16.0, md=True),
        KernelProbe("fma8", _probe_fma8, flops_per_iter=16.0, bytes_per_iter=24.0, n_inputs=2),
        KernelProbe(
            "transcendental", _probe_transcendental, flops_per_iter=40.0, bytes_per_iter=16.0
        ),
    )
}


# ---------------------------------------------------------------------------
# reference rates: the denominator of "theoretical" time
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReferenceRates:
    """Nominal sustained host rates theoretical roofline time is computed
    against (the :func:`repro.pp.Serial` lane rate and a commodity-DRAM
    stream bandwidth).  Stored in the table so a fit is reproducible."""

    flops: float = 3.2e9
    mem_bw: float = 1.6e10

    def __post_init__(self) -> None:
        if self.flops <= 0 or self.mem_bw <= 0:
            raise CalibrationError("reference rates must be positive")

    def roofline_s(self, flops: float, bytes_: float) -> float:
        """Theoretical seconds for ``flops`` + ``bytes_`` of streamed work."""
        return max(flops / self.flops, bytes_ / self.mem_bw)

    def payload(self) -> Dict[str, float]:
        return {"flops": self.flops, "mem_bw": self.mem_bw}


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelMeasurement:
    """What one probe kernel measured, straight off its obs accumulator."""

    kernel: str
    sizes: Tuple[int, ...]            # actual iteration counts per size
    best_s: Tuple[float, ...]         # best-of-repeats wall seconds per size
    launches: int                     # total launches (from KernelStats)
    iterations: int                   # total iterations (from KernelStats)
    seconds: float                    # total accumulated wall (from KernelStats)
    flops_per_iter: float
    bytes_per_iter: float
    tile_imbalance: float = 0.0       # max/mean tile size (MDRange probes)


def _probe_arrays(
    probe: KernelProbe, n: int, rng: np.random.Generator
) -> Tuple[int, Tuple[np.ndarray, ...], Any]:
    """Allocate (out, inputs...) for one probe launch.

    Returns ``(actual_iterations, functor_args, policy)`` — MDRange probes
    round ``n`` down to a square and carry a one-point halo pad.
    """
    if probe.md:
        m = max(2, math.isqrt(n))
        x = rng.random((m + 1, m + 1))
        out = np.zeros((m, m))
        return m * m, (out, x), MDRangePolicy((m, m))
    out = np.zeros(n)
    inputs = tuple(rng.random(n) for _ in range(probe.n_inputs))
    return n, (out,) + inputs, n


def measure_probes(
    space: Optional[ExecutionSpace] = None,
    sizes: Sequence[int] = (16_384, 65_536),
    repeats: int = 3,
    metrics: Optional[KernelMetrics] = None,
    probes: Optional[Dict[str, KernelProbe]] = None,
    seed: int = 20250711,
) -> Dict[str, KernelMeasurement]:
    """Run every probe at every size, ``repeats`` launches each.

    All launches flow through :func:`repro.pp.parallel_for` with a
    ``calib.<probe>`` accumulator from ``metrics`` (a
    :class:`repro.pp.KernelMetrics` pool, obs-attached or not), and the
    measured seconds are read back from that accumulator — the same
    KernelStats path production kernels publish through.  Per-size wall
    time is the best (minimum) launch, which is the stable statistic for
    a line fit on a shared machine.
    """
    if space is None:
        space = Serial()
    if metrics is None:
        metrics = KernelMetrics()
    if repeats < 1:
        raise CalibrationError("repeats must be >= 1")
    sizes = tuple(int(s) for s in sizes)
    if not sizes or any(s < 4 for s in sizes):
        raise CalibrationError("probe sizes must be >= 4")
    probes = dict(PROBES) if probes is None else probes
    rng = np.random.default_rng(seed)

    out: Dict[str, KernelMeasurement] = {}
    for name, probe in probes.items():
        acc = metrics.stats(f"calib.{name}")
        actual_sizes: List[int] = []
        best_s: List[float] = []
        worst_imbalance = 0.0
        for n in sizes:
            actual, args, policy = _probe_arrays(probe, n, rng)
            functor = BoundKernel(probe.fn, args)
            best = math.inf
            for _ in range(repeats):
                before = acc.seconds
                prof = parallel_for(space, policy, functor, stats=acc, profile=probe.md)
                best = min(best, acc.seconds - before)
                if prof is not None:
                    worst_imbalance = max(worst_imbalance, prof.imbalance)
            actual_sizes.append(actual)
            best_s.append(best)
        out[name] = KernelMeasurement(
            kernel=name,
            sizes=tuple(actual_sizes),
            best_s=tuple(best_s),
            launches=acc.launches,
            iterations=acc.iterations,
            seconds=acc.seconds,
            flops_per_iter=probe.flops_per_iter,
            bytes_per_iter=probe.bytes_per_iter,
            tile_imbalance=worst_imbalance,
        )
    return out


def _fit_line(sizes: Sequence[int], times: Sequence[float]) -> Tuple[float, float]:
    """Least-squares ``t = intercept + slope * n``; clamped physical.

    With a single size the intercept is pinned to zero.  A non-positive
    fitted slope (clock-resolution noise) falls back to the secant through
    the origin and the largest size.
    """
    if len(sizes) == 1:
        return 0.0, max(times[0] / sizes[0], _ZERO_S)
    ns = np.asarray(sizes, dtype=float)
    ts = np.asarray(times, dtype=float)
    slope, intercept = np.polyfit(ns, ts, 1)
    if not math.isfinite(slope) or slope <= 0.0:
        k = int(np.argmax(ns))
        slope = max(ts[k] / ns[k], _ZERO_S)
        intercept = 0.0
    return max(float(intercept), 0.0), max(float(slope), _ZERO_S)


# ---------------------------------------------------------------------------
# the fitted artifact
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelCalibration:
    """Fitted cost terms for one kernel class.

    ``overhead_factor`` multiplies the roofline time (csl-experiments:
    measured / theoretical), ``bandwidth_scale`` rescales the memory-
    bandwidth denominator (achieved / reference), and ``per_launch_s`` is
    the fixed cost added once per kernel launch.
    """

    kernel: str
    overhead_factor: float = 1.0
    per_launch_s: float = 0.0
    bandwidth_scale: float = 1.0
    flops_per_iter: float = 0.0
    bytes_per_iter: float = 0.0
    measured_s: float = 0.0      # total accumulated wall during the fit
    theoretical_s: float = 0.0   # reference roofline time for the same work

    def __post_init__(self) -> None:
        for label, v in (
            ("overhead_factor", self.overhead_factor),
            ("bandwidth_scale", self.bandwidth_scale),
        ):
            if not math.isfinite(v) or v <= 0:
                raise CalibrationError(f"{self.kernel}: {label} must be finite and > 0")
        if not math.isfinite(self.per_launch_s) or self.per_launch_s < 0:
            raise CalibrationError(f"{self.kernel}: per_launch_s must be finite and >= 0")

    @property
    def intensity(self) -> float:
        return (self.flops_per_iter + 1e-9) / (self.bytes_per_iter + 1e-9)

    def payload(self) -> Dict[str, float]:
        return {
            "overhead_factor": self.overhead_factor,
            "per_launch_s": self.per_launch_s,
            "bandwidth_scale": self.bandwidth_scale,
            "flops_per_iter": self.flops_per_iter,
            "bytes_per_iter": self.bytes_per_iter,
            "measured_s": self.measured_s,
            "theoretical_s": self.theoretical_s,
        }

    def modeled_s(self, n: int, reference: ReferenceRates) -> float:
        """Calibrated prediction of one launch over ``n`` iterations."""
        per_iter = max(
            self.flops_per_iter / reference.flops,
            self.bytes_per_iter / (reference.mem_bw * self.bandwidth_scale),
        )
        return self.per_launch_s + n * per_iter * self.overhead_factor


#: The do-nothing calibration: applying it reproduces the uncalibrated
#: roofline exactly (factor 1, no launch cost, reference bandwidth).
IDENTITY_CALIBRATION = KernelCalibration(kernel="identity")


@dataclass(frozen=True)
class CalibrationTable:
    """Versioned, content-addressed set of fitted per-kernel cost terms.

    The table is the artifact ``python -m repro calibrate`` emits and the
    ``calibration=`` handles consume.  Its identity (:attr:`table_id`) is
    the SHA-256 of the canonical fit payload — version, machine, space,
    reference rates, entries — so two fits agree iff their bytes agree;
    ``meta`` (host info, probe sizes) rides along without affecting
    identity.  Persistence is the unified ``to_file`` / ``from_file``
    protocol (there are deliberately no ``save``/``load`` aliases), and
    ``from_file`` re-derives the hash to detect hand-edited tables.
    """

    entries: Dict[str, KernelCalibration] = field(default_factory=dict)
    machine: str = "host"
    space: str = "Serial"
    reference: ReferenceRates = field(default_factory=ReferenceRates)
    meta: Dict[str, Any] = field(default_factory=dict)

    # -- identity -----------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """The content that defines this table's identity (excludes meta)."""
        return {
            "version": _TABLE_VERSION,
            "machine": self.machine,
            "space": self.space,
            "reference": self.reference.payload(),
            "entries": {name: e.payload() for name, e in sorted(self.entries.items())},
        }

    @property
    def table_id(self) -> str:
        blob = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- persistence (unified protocol) -------------------------------------

    def to_file(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        doc = self.payload()
        doc["table_id"] = self.table_id
        doc["meta"] = self.meta
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CalibrationTable":
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CalibrationError(f"unreadable calibration table {path}: {exc}") from exc
        if doc.get("version") != _TABLE_VERSION:
            raise CalibrationError(
                f"{path}: calibration table version {doc.get('version')!r} "
                f"!= supported {_TABLE_VERSION}"
            )
        try:
            entries = {
                name: KernelCalibration(kernel=name, **terms)
                for name, terms in doc["entries"].items()
            }
            table = cls(
                entries=entries,
                machine=doc["machine"],
                space=doc["space"],
                reference=ReferenceRates(**doc["reference"]),
                meta=doc.get("meta", {}),
            )
        except (KeyError, TypeError) as exc:
            raise CalibrationError(f"{path}: malformed calibration table: {exc}") from exc
        stored = doc.get("table_id")
        if stored is not None and stored != table.table_id:
            raise CalibrationError(
                f"{path}: content hash mismatch (stored {stored[:12]}..., "
                f"computed {table.table_id[:12]}...) — table was edited by hand?"
            )
        return table

    # -- lookup -------------------------------------------------------------

    def entry(self, kernel: Optional[str]) -> Optional[KernelCalibration]:
        if kernel is None:
            return None
        return self.entries.get(kernel)

    def for_intensity(self, flops_per_point: float, bytes_per_point: float) -> KernelCalibration:
        """Nearest probe class by arithmetic intensity (log distance)."""
        if not self.entries:
            return IDENTITY_CALIBRATION
        ai = math.log((flops_per_point + 1e-9) / (bytes_per_point + 1e-9))
        return min(
            self.entries.values(), key=lambda e: abs(math.log(e.intensity) - ai)
        )

    def for_phase(self, phase: Any) -> KernelCalibration:
        """Terms for a :class:`~repro.machine.perfmodel.Phase`: the
        phase's explicit ``kernel`` tag when present in the table, else
        the nearest probe by arithmetic intensity."""
        tagged = self.entry(getattr(phase, "kernel", None))
        if tagged is not None:
            return tagged
        return self.for_intensity(phase.flops_per_point, phase.bytes_per_point)

    # -- machine-level scales ------------------------------------------------

    def machine_scales(self) -> Dict[str, float]:
        """Collapse the table into whole-processor rate scales.

        ``mem_bw_scale`` comes from the most bandwidth-bound probe's
        achieved/reference ratio; ``flops_scale`` from the inverse
        overhead of the most compute-bound probe.  Used by the machine
        factories (:func:`repro.machine.sunway.sunway_oceanlight`,
        :func:`repro.machine.orise.orise`) to rescale their
        :class:`~repro.machine.spec.ProcessorSpec` sustained rates.
        """
        if not self.entries:
            return {"flops_scale": 1.0, "mem_bw_scale": 1.0}
        by_intensity = sorted(self.entries.values(), key=lambda e: e.intensity)
        mem_bw_scale = by_intensity[0].bandwidth_scale
        flops_scale = 1.0 / by_intensity[-1].overhead_factor
        return {"flops_scale": flops_scale, "mem_bw_scale": mem_bw_scale}

    # -- human report --------------------------------------------------------

    def report(self) -> str:
        lines = [
            f"calibration table {self.table_id[:12]} "
            f"(machine={self.machine}, space={self.space}, "
            f"{len(self.entries)} kernel(s))",
            f"reference rates: {self.reference.flops:.3g} FLOP/s, "
            f"{self.reference.mem_bw:.3g} B/s",
            f"{'kernel':<16}{'overhead':>10}{'launch_us':>11}{'bw_scale':>10}"
            f"{'meas_s':>10}{'theor_s':>10}",
        ]
        for name in sorted(self.entries):
            e = self.entries[name]
            lines.append(
                f"{name:<16}{e.overhead_factor:>10.3f}{e.per_launch_s * 1e6:>11.2f}"
                f"{e.bandwidth_scale:>10.3f}{e.measured_s:>10.4f}{e.theoretical_s:>10.4f}"
            )
        scales = self.machine_scales()
        lines.append(
            f"machine scales: flops x{scales['flops_scale']:.3f}, "
            f"mem_bw x{scales['mem_bw_scale']:.3f}"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the fit
# ---------------------------------------------------------------------------


def calibrate(
    space: Optional[ExecutionSpace] = None,
    sizes: Sequence[int] = (16_384, 65_536),
    repeats: int = 3,
    reference: Optional[ReferenceRates] = None,
    metrics: Optional[KernelMetrics] = None,
    machine: str = "host",
    measurements: Optional[Dict[str, KernelMeasurement]] = None,
) -> CalibrationTable:
    """Measure the probe portfolio and fit a :class:`CalibrationTable`.

    Pass ``measurements`` to fit a table from an existing measurement set
    (e.g. collected on another host) instead of running the probes here.
    """
    if space is None:
        space = Serial()
    if reference is None:
        reference = ReferenceRates()
    if measurements is None:
        measurements = measure_probes(
            space=space, sizes=sizes, repeats=repeats, metrics=metrics
        )
    entries: Dict[str, KernelCalibration] = {}
    for name, m in measurements.items():
        intercept, slope = _fit_line(m.sizes, m.best_s)
        bw_bound = (
            m.bytes_per_iter > 0
            and m.bytes_per_iter / reference.mem_bw >= m.flops_per_iter / reference.flops
        )
        if bw_bound:
            achieved_bw = m.bytes_per_iter / slope
            bandwidth_scale = min(max(achieved_bw / reference.mem_bw, 1e-3), 1e3)
        else:
            bandwidth_scale = 1.0
        scaled_roofline = max(
            m.flops_per_iter / reference.flops,
            m.bytes_per_iter / (reference.mem_bw * bandwidth_scale)
            if m.bytes_per_iter > 0
            else 0.0,
        )
        if scaled_roofline <= 0.0:
            raise CalibrationError(f"{name}: probe has no accountable work")
        overhead = min(max(slope / scaled_roofline, 1e-3), 1e6)
        entries[name] = KernelCalibration(
            kernel=name,
            overhead_factor=overhead,
            per_launch_s=intercept,
            bandwidth_scale=bandwidth_scale,
            flops_per_iter=m.flops_per_iter,
            bytes_per_iter=m.bytes_per_iter,
            measured_s=m.seconds,
            theoretical_s=m.iterations
            * reference.roofline_s(m.flops_per_iter, m.bytes_per_iter),
        )
    any_m = next(iter(measurements.values()), None)
    return CalibrationTable(
        entries=entries,
        machine=machine,
        space=space.name,
        reference=reference,
        meta={
            "sizes": list(any_m.sizes) if any_m is not None else [],
            "repeats": repeats,
            "probe_launches": sum(m.launches for m in measurements.values()),
        },
    )


# ---------------------------------------------------------------------------
# drift: modeled vs measured
# ---------------------------------------------------------------------------


def drift(modeled_s: float, measured_s: float) -> float:
    """Signed modeled-vs-measured drift fraction, guarded.

    ``(modeled - measured) / measured``, except:

    * any non-finite or negative input → ``inf`` (the gate must fail
      loudly; ``NaN > tol`` is falsy in Python and would pass silently);
    * measured ≈ 0: ``0.0`` when the model also predicts ≈ 0, else
      ``inf`` (the model claims cost where none was measured).
    """
    if not (math.isfinite(modeled_s) and math.isfinite(measured_s)):
        return math.inf
    if modeled_s < 0.0 or measured_s < 0.0:
        return math.inf
    if measured_s <= _ZERO_S:
        return 0.0 if modeled_s <= _ZERO_S else math.inf
    return (modeled_s - measured_s) / measured_s


@dataclass(frozen=True)
class DriftEntry:
    """One kernel's modeled-vs-measured comparison."""

    kernel: str
    modeled_s: float
    measured_s: float
    drift: float


@dataclass(frozen=True)
class DriftReport:
    """Per-kernel drift of a calibration table against fresh measurements.

    ``ok`` requires every compared kernel's ``|drift|`` to be finite and
    within tolerance (the boundary exactly met passes) **and** every table
    kernel to have been re-measured — a kernel the table prices but the
    probe run no longer exercises cannot be verified.  Kernels measured
    but absent from the table (``uncalibrated``) are informational: they
    are priced by intensity fallback, not by a stale entry.
    """

    entries: Tuple[DriftEntry, ...]
    missing_measurements: Tuple[str, ...]
    uncalibrated: Tuple[str, ...]
    tolerance: float
    table_id: str = ""

    @property
    def worst(self) -> float:
        if not self.entries:
            return 0.0
        return max((abs(e.drift) for e in self.entries), default=0.0)

    @property
    def ok(self) -> bool:
        if self.missing_measurements:
            return False
        return all(
            math.isfinite(e.drift) and abs(e.drift) <= self.tolerance
            for e in self.entries
        )

    def report(self) -> str:
        lines = [
            f"drift report vs table {self.table_id[:12]} "
            f"(tolerance +/-{self.tolerance:.0%})",
            f"{'kernel':<16}{'modeled_s':>12}{'measured_s':>12}{'drift':>10}",
        ]
        for e in sorted(self.entries, key=lambda e: -abs(e.drift)):
            flag = "" if math.isfinite(e.drift) and abs(e.drift) <= self.tolerance else "  << FAIL"
            shown = f"{e.drift:+.1%}" if math.isfinite(e.drift) else "inf"
            lines.append(
                f"{e.kernel:<16}{e.modeled_s:>12.5g}{e.measured_s:>12.5g}"
                f"{shown:>10}{flag}"
            )
        for k in self.missing_measurements:
            lines.append(f"{k:<16}  in table but not measured  << FAIL")
        for k in self.uncalibrated:
            lines.append(f"{k:<16}  measured but not in table (intensity fallback)")
        lines.append(f"worst |drift|: {self.worst:.1%} -> {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def drift_report(
    table: CalibrationTable,
    measurements: Dict[str, KernelMeasurement],
    tolerance: float = 0.5,
) -> DriftReport:
    """Compare the table's modeled per-kernel time to fresh measurements.

    For every kernel present in both, the modeled side prices each
    measured size with the table's fitted terms
    (:meth:`KernelCalibration.modeled_s`) and the measured side is the
    sum of best-of-repeats launches.
    """
    if tolerance < 0 or not math.isfinite(tolerance):
        raise CalibrationError("tolerance must be finite and >= 0")
    entries: List[DriftEntry] = []
    for name in sorted(set(table.entries) & set(measurements)):
        cal = table.entries[name]
        m = measurements[name]
        modeled = sum(cal.modeled_s(n, table.reference) for n in m.sizes)
        measured = sum(m.best_s)
        entries.append(
            DriftEntry(
                kernel=name,
                modeled_s=modeled,
                measured_s=measured,
                drift=drift(modeled, measured),
            )
        )
    return DriftReport(
        entries=tuple(entries),
        missing_measurements=tuple(sorted(set(table.entries) - set(measurements))),
        uncalibrated=tuple(sorted(set(measurements) - set(table.entries))),
        tolerance=tolerance,
        table_id=table.table_id,
    )
