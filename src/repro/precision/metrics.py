"""Mixed-precision acceptance metrics (§5.2.3).

"For GRIST, we measured surface pressure and relative vorticity deviations
using the relative L2 norm against double-precision baselines, with a 5 %
error threshold for long-term stability.  For LICOM, which uses tripolar
grids, we incorporated grid area into root mean square deviation (RMSD)
calculations.  Averaging 30 days of daily data, RMSD values were 0.018 C
for temperature, 0.0098 psu for salinity, and 0.0005 m for sea surface
height."

These exact thresholds are encoded here so the mixed-precision benchmark
reports pass/fail against the paper's own acceptance criteria.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "relative_l2",
    "area_weighted_rmsd",
    "GRIST_REL_L2_THRESHOLD",
    "LICOM_RMSD_THRESHOLDS",
    "AcceptanceReport",
    "evaluate_licom_acceptance",
]

#: GRIST acceptance: relative L2 of surface pressure / vorticity < 5 %.
GRIST_REL_L2_THRESHOLD = 0.05

#: LICOM published 30-day RMSD values (paper's measured numbers; we accept
#: anything at or below the same order).
LICOM_RMSD_THRESHOLDS = {
    "temperature": 0.018,   # deg C
    "salinity": 0.0098,     # psu
    "ssh": 0.0005,          # m
}


def relative_l2(test: np.ndarray, reference: np.ndarray) -> float:
    """||test - reference||_2 / ||reference||_2."""
    test = np.asarray(test, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if test.shape != reference.shape:
        raise ValueError("shape mismatch")
    denom = float(np.linalg.norm(reference.ravel()))
    if denom == 0.0:
        raise ValueError("reference norm is zero")
    return float(np.linalg.norm((test - reference).ravel())) / denom


def area_weighted_rmsd(
    test: np.ndarray,
    reference: np.ndarray,
    area: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> float:
    """sqrt( sum(area * (test-ref)^2) / sum(area) ) over (masked) cells.

    The tripolar-grid form the paper uses: plain RMSD would overweight the
    many small polar cells.
    """
    test = np.asarray(test, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    area = np.asarray(area, dtype=np.float64)
    if test.shape != reference.shape:
        raise ValueError("shape mismatch")
    if area.shape != test.shape[-area.ndim :]:
        raise ValueError("area must match the trailing (spatial) axes")
    w = area.copy()
    if mask is not None:
        w = np.where(mask, w, 0.0)
    total = w.sum() * (test.size / w.size)
    if total <= 0:
        raise ValueError("no weight in the masked region")
    sq = (test - reference) ** 2 * w
    return float(np.sqrt(sq.sum() / total))


@dataclass(frozen=True)
class AcceptanceReport:
    """Measured-vs-threshold record for one acceptance variable."""

    name: str
    measured: float
    threshold: float

    @property
    def passed(self) -> bool:
        return self.measured <= self.threshold

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.passed else "FAIL"
        return f"{self.name}: {self.measured:.3e} (<= {self.threshold:.3e}) {mark}"


def evaluate_licom_acceptance(
    daily_t: Sequence[np.ndarray],
    daily_s: Sequence[np.ndarray],
    daily_ssh: Sequence[np.ndarray],
    ref_t: Sequence[np.ndarray],
    ref_s: Sequence[np.ndarray],
    ref_ssh: Sequence[np.ndarray],
    area: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Dict[str, AcceptanceReport]:
    """30-day-mean area-weighted RMSD for (T, S, SSH) vs FP64 reference."""
    if not (len(daily_t) == len(ref_t) and len(daily_s) == len(ref_s) and len(daily_ssh) == len(ref_ssh)):
        raise ValueError("test/reference day counts differ")

    def mean_rmsd(tests, refs):
        vals = [area_weighted_rmsd(a, b, area, mask) for a, b in zip(tests, refs)]
        return float(np.mean(vals))

    return {
        "temperature": AcceptanceReport(
            "temperature", mean_rmsd(daily_t, ref_t), LICOM_RMSD_THRESHOLDS["temperature"]
        ),
        "salinity": AcceptanceReport(
            "salinity", mean_rmsd(daily_s, ref_s), LICOM_RMSD_THRESHOLDS["salinity"]
        ),
        "ssh": AcceptanceReport(
            "ssh", mean_rmsd(daily_ssh, ref_ssh), LICOM_RMSD_THRESHOLDS["ssh"]
        ),
    }
