"""Per-variable precision policies.

§5.2.3: "we focus on reducing variable precision within the dynamical core
of GRIST and LICOM" — some variables tolerate FP32 (tendencies, fluxes),
some need group scaling (large-offset fields like pressure), and some must
stay FP64 (accumulators, areas).  A :class:`PrecisionPolicy` captures that
assignment, applies it to a state dict (quantize/dequantize round-trip,
which is what running the arithmetic in reduced precision does to the
stored state each step), and reports the memory saving.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

import numpy as np

from .groupscale import GroupScaled32

__all__ = ["Precision", "PrecisionPolicy"]


class Precision(enum.Enum):
    FP64 = "fp64"
    FP32 = "fp32"
    FP32_GROUPSCALED = "fp32-groupscaled"


@dataclass
class PrecisionPolicy:
    """Variable name -> precision class; unlisted variables default FP64."""

    assignments: Dict[str, Precision] = field(default_factory=dict)
    group_size: int = 64

    def precision_of(self, name: str) -> Precision:
        return self.assignments.get(name, Precision.FP64)

    def assign(self, name: str, precision: Precision) -> None:
        self.assignments[name] = precision

    def apply(self, state: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Round-trip each variable through its storage precision.

        This is the storage-precision effect of a mixed-precision step:
        FP64 variables pass through untouched; FP32 variables lose to a
        plain cast; group-scaled variables lose only relative-to-group-max
        bits.
        """
        out: Dict[str, np.ndarray] = {}
        for name, arr in state.items():
            p = self.precision_of(name)
            arr = np.asarray(arr, dtype=np.float64)
            if p is Precision.FP64:
                out[name] = arr.copy()
            elif p is Precision.FP32:
                out[name] = arr.astype(np.float32).astype(np.float64)
            else:
                out[name] = GroupScaled32.encode(arr, self.group_size).decode()
        return out

    def memory_report(self, state: Mapping[str, np.ndarray]) -> Dict[str, float]:
        """Bytes before/after applying the policy to the resident state."""
        before = 0
        after = 0
        for name, arr in state.items():
            arr = np.asarray(arr)
            n = arr.size
            before += n * 8
            p = self.precision_of(name)
            if p is Precision.FP64:
                after += n * 8
            elif p is Precision.FP32:
                after += n * 4
            else:
                n_groups = (n + self.group_size - 1) // self.group_size
                after += n * 4 + n_groups * 8
        return {
            "bytes_fp64": float(before),
            "bytes_mixed": float(after),
            "saving_fraction": 1.0 - after / max(before, 1),
        }
