"""Group-wise scaling FP64/FP32 mixed precision and acceptance metrics."""

from .groupscale import GroupScaled32, quantize_roundtrip_error
from .metrics import (
    GRIST_REL_L2_THRESHOLD,
    LICOM_RMSD_THRESHOLDS,
    AcceptanceReport,
    area_weighted_rmsd,
    evaluate_licom_acceptance,
    relative_l2,
)
from .policy import Precision, PrecisionPolicy

__all__ = [
    "GroupScaled32",
    "quantize_roundtrip_error",
    "Precision",
    "PrecisionPolicy",
    "relative_l2",
    "area_weighted_rmsd",
    "GRIST_REL_L2_THRESHOLD",
    "LICOM_RMSD_THRESHOLDS",
    "AcceptanceReport",
    "evaluate_licom_acceptance",
]
