"""Group-wise scaling mixed precision (§5.2.3).

"We implement a group-wise scaling mixed-precision method (FP64/FP32) for
key components of the model."  An FP64 field is stored as FP32 mantissas
plus one FP64 scale per *group* of consecutive elements: each group is
normalized by its own max-magnitude before the cast, so fields with large
dynamic range (pressure vs. its tiny horizontal anomalies) keep relative
accuracy that a plain FP32 cast would destroy.

Round-trip relative error per element is bounded by the FP32 unit
round-off (2^-24) — the property the tests pin — while storage and
bandwidth halve (plus one scale per group).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["GroupScaled32", "quantize_roundtrip_error"]

FP32_EPS = float(np.finfo(np.float32).eps)


@dataclass
class GroupScaled32:
    """An FP64 array stored as group-scaled FP32."""

    mantissa: np.ndarray   # float32, flattened groups
    scales: np.ndarray     # float64, one per group
    shape: Tuple[int, ...]
    group_size: int

    @staticmethod
    def encode(field: np.ndarray, group_size: int = 64) -> "GroupScaled32":
        """Quantize ``field`` (any shape) with groups along the flat order."""
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        field = np.asarray(field, dtype=np.float64)
        flat = field.ravel()
        n = flat.size
        n_groups = (n + group_size - 1) // group_size
        padded = np.zeros(n_groups * group_size)
        padded[:n] = flat
        groups = padded.reshape(n_groups, group_size)
        scales = np.abs(groups).max(axis=1)
        safe = np.where(scales > 0, scales, 1.0)
        mantissa = (groups / safe[:, None]).astype(np.float32)
        return GroupScaled32(
            mantissa=mantissa, scales=scales, shape=field.shape, group_size=group_size
        )

    def decode(self) -> np.ndarray:
        safe = np.where(self.scales > 0, self.scales, 1.0)
        flat = (self.mantissa.astype(np.float64) * safe[:, None]).ravel()
        n = int(np.prod(self.shape)) if self.shape else 1
        return flat[:n].reshape(self.shape)

    @property
    def nbytes(self) -> int:
        return int(self.mantissa.nbytes + self.scales.nbytes)

    def compression_ratio(self) -> float:
        """Stored bytes / original FP64 bytes (< 1)."""
        original = int(np.prod(self.shape)) * 8 if self.shape else 8
        return self.nbytes / max(original, 1)


def quantize_roundtrip_error(field: np.ndarray, group_size: int = 64) -> float:
    """Max elementwise relative error of encode+decode (should be <~2^-24
    relative to the group max)."""
    gs = GroupScaled32.encode(field, group_size)
    back = gs.decode()
    flat = np.asarray(field, dtype=np.float64).ravel()
    n = flat.size
    n_groups = (n + group_size - 1) // group_size
    padded = np.zeros(n_groups * group_size)
    padded[:n] = flat
    group_max = np.abs(padded.reshape(n_groups, group_size)).max(axis=1)
    ref = np.repeat(np.where(group_max > 0, group_max, 1.0), group_size)[:n]
    return float(np.max(np.abs(back.ravel() - flat) / ref))
