"""Grid infrastructure: icosahedral Voronoi C-grid (atmosphere), tripolar
grid with synthetic earth (ocean/ice), partitioners, and remapping."""

from .icos import IcosahedralGrid, icosahedral_counts
from .partition import IcosPartition, tripolar_blocks
from .remap import RemapMatrix, index_remap, nearest_remap
from .sphere import (
    arc_length,
    lonlat_to_xyz,
    normalize,
    spherical_triangle_area,
    tangent_basis,
    triangle_circumcenter,
    xyz_to_lonlat,
)
from .tripolar import TripolarGrid, default_levels
from . import trsk

__all__ = [
    "IcosahedralGrid",
    "icosahedral_counts",
    "TripolarGrid",
    "default_levels",
    "IcosPartition",
    "tripolar_blocks",
    "RemapMatrix",
    "nearest_remap",
    "index_remap",
    "trsk",
    "normalize",
    "lonlat_to_xyz",
    "xyz_to_lonlat",
    "arc_length",
    "spherical_triangle_area",
    "triangle_circumcenter",
    "tangent_basis",
]
