"""Spherical geometry primitives shared by the grid generators.

All functions operate on unit vectors (points on the unit sphere) stored as
``(..., 3)`` numpy arrays; radii are applied by callers.  Formulas are the
numerically robust ones (atan2-based arc lengths and spherical excess), so
they behave for the nearly-degenerate triangles a high-level subdivision
produces.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize",
    "lonlat_to_xyz",
    "xyz_to_lonlat",
    "arc_length",
    "spherical_triangle_area",
    "triangle_circumcenter",
    "tangent_basis",
]


def normalize(v: np.ndarray) -> np.ndarray:
    """Unit vectors along ``v`` (last axis), safe against zero vectors."""
    v = np.asarray(v, dtype=np.float64)
    norm = np.linalg.norm(v, axis=-1, keepdims=True)
    if np.any(norm == 0):
        raise ValueError("cannot normalize a zero vector")
    return v / norm


def lonlat_to_xyz(lon: np.ndarray, lat: np.ndarray) -> np.ndarray:
    """Unit-sphere Cartesian coordinates from longitude/latitude (radians)."""
    lon = np.asarray(lon, dtype=np.float64)
    lat = np.asarray(lat, dtype=np.float64)
    cl = np.cos(lat)
    return np.stack([cl * np.cos(lon), cl * np.sin(lon), np.sin(lat)], axis=-1)


def xyz_to_lonlat(xyz: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(lon, lat) in radians from unit vectors; lon in [-pi, pi]."""
    xyz = np.asarray(xyz, dtype=np.float64)
    lon = np.arctan2(xyz[..., 1], xyz[..., 0])
    lat = np.arcsin(np.clip(xyz[..., 2], -1.0, 1.0))
    return lon, lat


def arc_length(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Great-circle distance between unit vectors (robust atan2 form)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    cross = np.linalg.norm(np.cross(a, b), axis=-1)
    dot = np.sum(a * b, axis=-1)
    return np.arctan2(cross, dot)


def spherical_triangle_area(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Area (spherical excess) of triangles with unit-vector corners.

    Uses the Oosterom-Strackee formula
    ``E = 2 atan2(|a.(b x c)|, 1 + a.b + b.c + c.a)`` which is stable for
    small triangles.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    num = np.abs(np.sum(a * np.cross(b, c), axis=-1))
    den = 1.0 + np.sum(a * b, axis=-1) + np.sum(b * c, axis=-1) + np.sum(c * a, axis=-1)
    return 2.0 * np.arctan2(num, den)


def triangle_circumcenter(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Spherical circumcenter of triangles (equidistant from all corners).

    The circumcenter lies along ``(b - a) x (c - a)``; the sign is chosen to
    put it in the same hemisphere as the triangle's centroid.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    n = np.cross(b - a, c - a)
    n = normalize(n)
    centroid = normalize(a + b + c)
    flip = np.sum(n * centroid, axis=-1) < 0
    n = np.where(flip[..., None], -n, n)
    return n


def tangent_basis(p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Local (east, north) unit vectors in the tangent plane at ``p``."""
    p = np.asarray(p, dtype=np.float64)
    z = np.array([0.0, 0.0, 1.0])
    east = np.cross(z, p)
    norms = np.linalg.norm(east, axis=-1, keepdims=True)
    # At the poles pick an arbitrary east.
    polar = norms[..., 0] < 1e-12
    if np.any(polar):
        east = east.copy()
        east[polar] = np.array([1.0, 0.0, 0.0])
        norms = np.linalg.norm(east, axis=-1, keepdims=True)
    east = east / norms
    north = np.cross(p, east)
    return east, north
