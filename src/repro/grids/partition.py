"""Partitioning of model grids onto simulated MPI ranks.

* :class:`IcosPartition` — space-filling-curve partition of icosahedral
  cells with one-ring halos and ready-to-use :class:`~repro.parallel.halo.
  GraphHalo` exchange lists per rank.
* :func:`tripolar_blocks` — 2-D block decomposition of the tripolar grid
  shaped to its aspect ratio (the ocean component's layout).

The atmosphere/ocean numerics in this library run on global arrays (the
paper's models are Fortran+MPI; our correctness-bearing numerics are
serial numpy), but the partition layer is exercised end-to-end by the
distributed halo-exchange tests and by the coupler's GSMap/Router, which
consume exactly these owner maps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..parallel.decomp import Block2D, factor_2d, partition_cells_space_filling
from ..parallel.halo import GraphHalo
from .icos import IcosahedralGrid

__all__ = ["IcosPartition", "tripolar_blocks"]


@dataclass
class IcosPartition:
    """SFC partition of icosahedral cells across ``n_ranks``.

    Attributes
    ----------
    owners:
        (n_cells,) owning rank per global cell.
    local_cells:
        Per rank, the sorted global ids of owned cells.
    halo_cells:
        Per rank, the sorted global ids of one-ring halo cells (owned by
        neighbors, adjacent through an edge).
    """

    grid: IcosahedralGrid
    n_ranks: int
    owners: np.ndarray
    local_cells: List[np.ndarray]
    halo_cells: List[np.ndarray]

    @staticmethod
    def build(grid: IcosahedralGrid, n_ranks: int) -> "IcosPartition":
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        owners = partition_cells_space_filling(grid.lon_cell, grid.lat_cell, n_ranks)
        return IcosPartition.from_owners(grid, owners, n_ranks)

    @staticmethod
    def from_owners(
        grid: IcosahedralGrid, owners: np.ndarray, n_ranks: int
    ) -> "IcosPartition":
        """Partition from an explicit owner array (the path elastic
        recovery re-enters with a repaired decomposition)."""
        owners = np.asarray(owners)
        local = [np.sort(np.where(owners == r)[0]) for r in range(n_ranks)]

        # One-ring halos through edge adjacency.
        c1 = grid.edge_cells[:, 0]
        c2 = grid.edge_cells[:, 1]
        halo: List[np.ndarray] = []
        for r in range(n_ranks):
            mine1 = owners[c1] == r
            mine2 = owners[c2] == r
            neighbors = np.concatenate([c2[mine1], c1[mine2]])
            ext = np.unique(neighbors[owners[neighbors] != r])
            halo.append(ext)
        return IcosPartition(grid, n_ranks, owners.astype(np.int64), local, halo)

    def shrink(self, dead: List[int]) -> "IcosPartition":
        """Repaired partition after rank loss: the dead ranks' cells are
        absorbed by the nearest survivors along the SFC index order and
        survivors are densely renumbered (same ordering as
        :meth:`repro.parallel.SimWorld.shrink`)."""
        from ..parallel.decomp import shrink_owners

        new_owners, old_to_new = shrink_owners(self.owners, dead, n_ranks=self.n_ranks)
        return IcosPartition.from_owners(self.grid, new_owners, len(old_to_new))

    def surface_to_volume(self, rank: int) -> float:
        """|halo| / |owned| for a rank — the communication-to-computation
        ratio the machine model's halo term is built on."""
        n_own = len(self.local_cells[rank])
        if n_own == 0:
            return float("inf")
        return len(self.halo_cells[rank]) / n_own

    def graph_halo(self, rank: int) -> GraphHalo:
        """Exchange lists for ``rank`` (owned entries first, halo after)."""
        needed: Dict[int, np.ndarray] = {
            r: self.halo_cells[r] for r in range(self.n_ranks)
        }
        g2l = {int(g): i for i, g in enumerate(self.local_cells[rank])}
        return GraphHalo.from_owners(
            self.owners, needed, rank, g2l, list(self.halo_cells[rank])
        )

    def scatter(self, rank: int, global_field: np.ndarray) -> np.ndarray:
        """Local array (owned + halo slots) for a global cell field; halo
        slots are filled (use NaN-fill + exchange to test the halo path)."""
        own = global_field[self.local_cells[rank]]
        halo = global_field[self.halo_cells[rank]]
        return np.concatenate([own, halo])

    def gather(self, locals_: List[np.ndarray]) -> np.ndarray:
        """Reassemble a global field from per-rank owned portions."""
        if len(locals_) != self.n_ranks:
            raise ValueError("need one local array per rank")
        out = np.empty(self.grid.n_cells, dtype=np.asarray(locals_[0]).dtype)
        for r in range(self.n_ranks):
            own = np.asarray(locals_[r])[: len(self.local_cells[r])]
            out[self.local_cells[r]] = own
        return out


def tripolar_blocks(nlat: int, nlon: int, n_ranks: int) -> List[Block2D]:
    """Block decomposition of an (nlat, nlon) tripolar grid, one per rank,
    with the process grid shaped to the domain aspect ratio."""
    px, py = factor_2d(n_ranks, aspect=nlon / nlat)
    return [Block2D(nlat, nlon, py, px, r) for r in range(n_ranks)]
