"""TRSK finite-volume operators on the icosahedral Voronoi C-grid.

These are the Thuburn-Ringler-Skamarock-Klemp (2009/2010) mimetic
operators GRIST-class dycores are built from:

* ``divergence`` (edges -> cells) and ``gradient`` (cells -> edges) are
  discrete adjoints under the (area, le*de) inner products, so the
  pressure-gradient / continuity pair conserves energy;
* ``curl`` (edges -> dual vertices) gives relative vorticity by circulation
  around cell-center triangles;
* ``tangential`` reconstructs tangential velocities/fluxes from normal
  components via the grid's antisymmetrized TRSK weight table, making the
  nonlinear Coriolis term exactly energy-neutral;
* ``kinetic_energy_cell``, ``cell_to_edge``, ``cell_to_dual`` are the
  standard averaging maps.

All operators are vectorized gather/scatter over the mesh arrays (numpy
``add.at`` scatters), per the HPC-python guidance: no python-level loops in
the time-stepping path.
"""

from __future__ import annotations

import numpy as np

from .icos import IcosahedralGrid

__all__ = [
    "divergence",
    "gradient",
    "curl",
    "tangential",
    "cell_to_edge",
    "dual_to_edge",
    "cell_to_dual",
    "kinetic_energy_cell",
    "laplacian_edge",
]


def divergence(grid: IcosahedralGrid, u: np.ndarray) -> np.ndarray:
    """Divergence at cells of a normal-component edge field (1/s if u is
    velocity; flux divergence if u is already a flux)."""
    flux = grid.le * u
    div = np.zeros(grid.n_cells, dtype=np.float64)
    np.add.at(div, grid.edge_cells[:, 0], flux)
    np.add.at(div, grid.edge_cells[:, 1], -flux)
    return div / grid.area_cell


def gradient(grid: IcosahedralGrid, phi: np.ndarray) -> np.ndarray:
    """Normal gradient at edges of a cell field (c1 -> c2 direction)."""
    return (phi[grid.edge_cells[:, 1]] - phi[grid.edge_cells[:, 0]]) / grid.de


def curl(grid: IcosahedralGrid, u: np.ndarray) -> np.ndarray:
    """Relative vorticity at dual vertices (circulation / dual area).

    The circulation path around a dual vertex runs along the dual edges
    (cell-center connections); ``u`` is the velocity component along those
    (the primal-edge normal), and orientation gives +1 for the vertex on
    the +tangent side.
    """
    circ = grid.de * u
    zeta = np.zeros(grid.n_dual, dtype=np.float64)
    np.add.at(zeta, grid.edge_dual[:, 1], circ)
    np.add.at(zeta, grid.edge_dual[:, 0], -circ)
    return zeta / grid.area_dual


def tangential(grid: IcosahedralGrid, u: np.ndarray) -> np.ndarray:
    """Tangential component at edges reconstructed from normal components."""
    ee = grid.edge_edges
    mask = ee >= 0
    vals = u[np.where(mask, ee, 0)]
    return np.sum(grid.edge_weights * np.where(mask, vals, 0.0), axis=1)


def cell_to_edge(grid: IcosahedralGrid, phi: np.ndarray) -> np.ndarray:
    """Two-point average of a cell field onto edges."""
    return 0.5 * (phi[grid.edge_cells[:, 0]] + phi[grid.edge_cells[:, 1]])


def dual_to_edge(grid: IcosahedralGrid, psi: np.ndarray) -> np.ndarray:
    """Two-point average of a dual-vertex field onto edges."""
    return 0.5 * (psi[grid.edge_dual[:, 0]] + psi[grid.edge_dual[:, 1]])


def cell_to_dual(grid: IcosahedralGrid, phi: np.ndarray) -> np.ndarray:
    """Kite-area-weighted average of a cell field onto dual vertices (the
    thickness average used in the PV definition)."""
    weighted = np.sum(grid.dual_kite * phi[grid.tri], axis=1)
    return weighted / np.sum(grid.dual_kite, axis=1)


def kinetic_energy_cell(grid: IcosahedralGrid, u: np.ndarray) -> np.ndarray:
    """Kinetic energy per unit mass at cells: K_c = sum_e (le de / 4) u^2 / A_c."""
    contrib = 0.25 * grid.le * grid.de * u * u
    ke = np.zeros(grid.n_cells, dtype=np.float64)
    np.add.at(ke, grid.edge_cells[:, 0], contrib)
    np.add.at(ke, grid.edge_cells[:, 1], contrib)
    return ke / grid.area_cell


def laplacian_edge(grid: IcosahedralGrid, u: np.ndarray) -> np.ndarray:
    """Vector Laplacian of an edge velocity field:
    ``lap(u) = grad(div u) - curl_perp(curl u)`` (the del^2 used for
    horizontal hyper-/diffusion in dycores)."""
    div = divergence(grid, u)
    zeta = curl(grid, u)
    grad_div = gradient(grid, div)
    # curl-perp at edge: tangential derivative of zeta along the edge,
    # i.e. (zeta_t2 - zeta_t1)/le.
    dzeta = (zeta[grid.edge_dual[:, 1]] - zeta[grid.edge_dual[:, 0]]) / grid.le
    return grad_div - dzeta
