"""Subdivided-icosahedron Voronoi C-grid (the GRIST/MPAS grid family).

The primal mesh is the triangulation obtained by recursively subdividing an
icosahedron; **cells** of the model grid are the Voronoi regions around the
triangulation vertices (12 pentagons, the rest hexagons), **edges** carry
normal velocities, and **dual vertices** (triangle circumcenters) carry
vorticity — the C-grid staggering of Thuburn-Ringler-Skamarock-Klemp
(TRSK), which GRIST builds on.

Counts at subdivision level ``g`` obey the Euler relations the paper's
Table 1 exhibits: ``cells = 10*4^g + 2``, ``edges = 30*4^g``, ``dual
(triangles) = 20*4^g`` — i.e. cells : edges : triangles ≈ 1 : 3 : 2, the
2 : 3 : 1 ratio of Table 1's (triangle-counted) cells : edges : vertices.

The mesh also carries everything the TRSK operators need: ordered
edge/vertex rings around every cell, kite-area weights ``R_{v,c}``
(normalized so they sum to 1 per cell), and the tangential-reconstruction
weight table with its energy-conserving antisymmetry enforced exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..utils.units import EARTH_RADIUS
from .sphere import (
    arc_length,
    normalize,
    spherical_triangle_area,
    tangent_basis,
    triangle_circumcenter,
    xyz_to_lonlat,
)

__all__ = ["IcosahedralGrid", "icosahedral_counts"]


def icosahedral_counts(level: int) -> Tuple[int, int, int]:
    """(n_cells, n_edges, n_triangles) at subdivision ``level``."""
    if level < 0:
        raise ValueError("level must be >= 0")
    f = 4**level
    return 10 * f + 2, 30 * f, 20 * f


def _base_icosahedron() -> Tuple[np.ndarray, np.ndarray]:
    phi = (1.0 + math.sqrt(5.0)) / 2.0
    verts = np.array(
        [
            (-1, phi, 0), (1, phi, 0), (-1, -phi, 0), (1, -phi, 0),
            (0, -1, phi), (0, 1, phi), (0, -1, -phi), (0, 1, -phi),
            (phi, 0, -1), (phi, 0, 1), (-phi, 0, -1), (-phi, 0, 1),
        ],
        dtype=np.float64,
    )
    faces = np.array(
        [
            (0, 11, 5), (0, 5, 1), (0, 1, 7), (0, 7, 10), (0, 10, 11),
            (1, 5, 9), (5, 11, 4), (11, 10, 2), (10, 7, 6), (7, 1, 8),
            (3, 9, 4), (3, 4, 2), (3, 2, 6), (3, 6, 8), (3, 8, 9),
            (4, 9, 5), (2, 4, 11), (6, 2, 10), (8, 6, 7), (9, 8, 1),
        ],
        dtype=np.int64,
    )
    return normalize(verts), faces


def _subdivide(verts: np.ndarray, faces: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    cache: Dict[Tuple[int, int], int] = {}
    new_verts: List[np.ndarray] = list(verts)

    def midpoint(a: int, b: int) -> int:
        key = (a, b) if a < b else (b, a)
        idx = cache.get(key)
        if idx is None:
            idx = len(new_verts)
            new_verts.append(normalize(verts[a] + verts[b]))
            cache[key] = idx
        return idx

    new_faces = np.empty((len(faces) * 4, 3), dtype=np.int64)
    for i, (a, b, c) in enumerate(faces):
        ab, bc, ca = midpoint(a, b), midpoint(b, c), midpoint(c, a)
        new_faces[4 * i : 4 * i + 4] = [
            (a, ab, ca), (b, bc, ab), (c, ca, bc), (ab, bc, ca)
        ]
    return np.array(new_verts), new_faces


@dataclass
class IcosahedralGrid:
    """The fully assembled C-grid mesh; build with :meth:`build`."""

    level: int
    radius: float
    xyz_cell: np.ndarray      # (nc, 3) unit vectors: cell centers
    xyz_dual: np.ndarray      # (nd, 3) triangle circumcenters
    xyz_edge: np.ndarray      # (ne, 3) edge midpoints
    tri: np.ndarray           # (nd, 3) cell ids per triangle (CCW outside)
    edge_cells: np.ndarray    # (ne, 2) [c1, c2]; normal points c1 -> c2
    edge_dual: np.ndarray     # (ne, 2) [t1, t2]; t2 on +tangent side
    normal: np.ndarray        # (ne, 3) unit normal at edge midpoint
    tangent: np.ndarray       # (ne, 3) = up x normal
    de: np.ndarray            # (ne,) primal distance |c1 c2| (m)
    le: np.ndarray            # (ne,) dual distance |t1 t2| (m)
    area_cell: np.ndarray     # (nc,) Voronoi cell areas (m^2)
    area_dual: np.ndarray     # (nd,) cell-center-triangle areas (m^2)
    cell_nedges: np.ndarray   # (nc,) 5 or 6
    cell_edges: np.ndarray    # (nc, 6) CCW-ordered edge ids, -1 padded
    cell_edge_sign: np.ndarray  # (nc, 6) +1 if normal out of cell
    cell_vertices: np.ndarray   # (nc, 6) dual id between edge j and j+1
    kite: np.ndarray          # (nc, 6) R_{v,c}, sums to 1 per cell
    dual_kite: np.ndarray     # (nd, 3) kite areas (m^2) aligned with tri cols
    edge_edges: np.ndarray    # (ne, 10) neighbor edge ids, -1 padded
    edge_weights: np.ndarray  # (ne, 10) TRSK tangential weights
    lon_cell: np.ndarray = field(default=None)  # type: ignore[assignment]
    lat_cell: np.ndarray = field(default=None)  # type: ignore[assignment]
    lon_edge: np.ndarray = field(default=None)  # type: ignore[assignment]
    lat_edge: np.ndarray = field(default=None)  # type: ignore[assignment]
    lat_dual: np.ndarray = field(default=None)  # type: ignore[assignment]

    @property
    def n_cells(self) -> int:
        return self.xyz_cell.shape[0]

    @property
    def n_edges(self) -> int:
        return self.edge_cells.shape[0]

    @property
    def n_dual(self) -> int:
        return self.tri.shape[0]

    @property
    def mean_cell_spacing_km(self) -> float:
        return float(np.sqrt(self.area_cell.mean()) / 1000.0)

    # -- construction ------------------------------------------------------

    @staticmethod
    def build(level: int, radius: float = EARTH_RADIUS) -> "IcosahedralGrid":
        """Generate the grid at subdivision ``level`` (0 = raw icosahedron)."""
        if level < 0:
            raise ValueError("level must be >= 0")
        verts, faces = _base_icosahedron()
        for _ in range(level):
            verts, faces = _subdivide(verts, faces)

        # Consistent outward-CCW triangle orientation.
        a, b, c = verts[faces[:, 0]], verts[faces[:, 1]], verts[faces[:, 2]]
        outward = np.sum(np.cross(b - a, c - a) * (a + b + c), axis=-1)
        swap = outward < 0
        faces[swap] = faces[swap][:, [0, 2, 1]]

        nc = len(verts)
        nd = len(faces)

        # Edges: unique sorted vertex pairs, with adjacent triangles.
        edge_index: Dict[Tuple[int, int], int] = {}
        edge_cells_list: List[Tuple[int, int]] = []
        edge_tris: List[List[int]] = []
        for t, (i, j, k) in enumerate(faces):
            for va, vb in ((i, j), (j, k), (k, i)):
                key = (va, vb) if va < vb else (vb, va)
                e = edge_index.get(key)
                if e is None:
                    e = len(edge_cells_list)
                    edge_index[key] = e
                    edge_cells_list.append(key)
                    edge_tris.append([])
                edge_tris[e].append(t)
        ne = len(edge_cells_list)
        edge_cells = np.array(edge_cells_list, dtype=np.int64)
        if any(len(ts) != 2 for ts in edge_tris):
            raise RuntimeError("non-manifold mesh: every edge must touch 2 triangles")
        edge_dual = np.array(edge_tris, dtype=np.int64)

        xyz_dual = triangle_circumcenter(
            verts[faces[:, 0]], verts[faces[:, 1]], verts[faces[:, 2]]
        )

        xc1 = verts[edge_cells[:, 0]]
        xc2 = verts[edge_cells[:, 1]]
        xyz_edge = normalize(xc1 + xc2)
        # Normal: the c1->c2 chord projected into the tangent plane.
        chord = xc2 - xc1
        chord -= np.sum(chord * xyz_edge, axis=-1, keepdims=True) * xyz_edge
        nrm = normalize(chord)
        tng = np.cross(xyz_edge, nrm)  # up x n: +t is 90 deg CCW of n

        # Order dual pair so t2 sits on the +tangent side.
        d1 = xyz_dual[edge_dual[:, 0]]
        d2 = xyz_dual[edge_dual[:, 1]]
        wrong = np.sum((d2 - d1) * tng, axis=-1) < 0
        edge_dual[wrong] = edge_dual[wrong][:, ::-1]

        de = radius * arc_length(xc1, xc2)
        le = radius * arc_length(xyz_dual[edge_dual[:, 0]], xyz_dual[edge_dual[:, 1]])

        area_dual = radius**2 * spherical_triangle_area(
            verts[faces[:, 0]], verts[faces[:, 1]], verts[faces[:, 2]]
        )

        # Edges around each cell.
        cell_edge_lists: List[List[int]] = [[] for _ in range(nc)]
        for e, (v1, v2) in enumerate(edge_cells):
            cell_edge_lists[v1].append(e)
            cell_edge_lists[v2].append(e)
        maxdeg = max(len(l) for l in cell_edge_lists)
        if maxdeg > 6:
            raise RuntimeError("unexpected cell degree > 6")

        cell_nedges = np.array([len(l) for l in cell_edge_lists], dtype=np.int64)
        cell_edges = np.full((nc, 6), -1, dtype=np.int64)
        cell_edge_sign = np.zeros((nc, 6), dtype=np.float64)
        cell_vertices = np.full((nc, 6), -1, dtype=np.int64)

        # CCW ordering by angle in the local tangent basis.
        east, north = tangent_basis(verts)
        for c in range(nc):
            edges = cell_edge_lists[c]
            mids = xyz_edge[edges]
            rel = mids - verts[c]
            ang = np.arctan2(rel @ north[c], rel @ east[c])
            order = np.argsort(ang)
            edges = [edges[i] for i in order]
            n = len(edges)
            cell_edges[c, :n] = edges
            for j, e in enumerate(edges):
                cell_edge_sign[c, j] = 1.0 if edge_cells[e, 0] == c else -1.0
                e_next = edges[(j + 1) % n]
                shared = set(edge_dual[e]) & set(edge_dual[e_next])
                if len(shared) != 1:
                    raise RuntimeError("cell edge ring is not consistent")
                cell_vertices[c, j] = shared.pop()

        # Voronoi cell areas from the ordered dual-corner ring.
        area_cell = np.zeros(nc, dtype=np.float64)
        for c in range(nc):
            n = cell_nedges[c]
            ring = cell_vertices[c, :n]
            for j in range(n):
                area_cell[c] += spherical_triangle_area(
                    verts[c], xyz_dual[ring[j]], xyz_dual[ring[(j + 1) % n]]
                )
        area_cell *= radius**2

        # Kite areas R_{v,c}: region of cell c associated with dual corner v,
        # bounded by the midpoints of the two edges meeting at v.  Vertex
        # slot j (between edges j and j+1) pairs with those two edges.
        kite = np.zeros((nc, 6), dtype=np.float64)
        for c in range(nc):
            n = cell_nedges[c]
            for j in range(n):
                e1 = cell_edges[c, j]
                e2 = cell_edges[c, (j + 1) % n]
                v = cell_vertices[c, j]
                kite[c, j] = spherical_triangle_area(
                    verts[c], xyz_edge[e1], xyz_dual[v]
                ) + spherical_triangle_area(verts[c], xyz_dual[v], xyz_edge[e2])
            kite[c, :n] /= kite[c, :n].sum()  # TRSK needs sum_v R_{v,c} = 1

        # Kite areas regrouped around dual vertices (for PV thickness
        # averaging): dual_kite[t, k] is the kite of cell tri[t, k] at t.
        dual_kite = np.zeros((nd, 3), dtype=np.float64)
        for c in range(nc):
            n = cell_nedges[c]
            for j in range(n):
                v = cell_vertices[c, j]
                k = int(np.where(faces[v] == c)[0][0])
                dual_kite[v, k] = kite[c, j] * area_cell[c]

        grid = IcosahedralGrid(
            level=level,
            radius=radius,
            xyz_cell=verts,
            xyz_dual=xyz_dual,
            xyz_edge=xyz_edge,
            tri=faces,
            edge_cells=edge_cells,
            edge_dual=edge_dual,
            normal=nrm,
            tangent=tng,
            de=de,
            le=le,
            area_cell=area_cell,
            area_dual=area_dual,
            cell_nedges=cell_nedges,
            cell_edges=cell_edges,
            cell_edge_sign=cell_edge_sign,
            cell_vertices=cell_vertices,
            kite=kite,
            dual_kite=dual_kite,
            edge_edges=np.empty(0),
            edge_weights=np.empty(0),
        )
        grid._build_trsk_weights()
        grid.lon_cell, grid.lat_cell = xyz_to_lonlat(verts)
        grid.lon_edge, grid.lat_edge = xyz_to_lonlat(xyz_edge)
        _, grid.lat_dual = xyz_to_lonlat(xyz_dual)
        return grid

    # -- TRSK tangential-reconstruction weights ----------------------------

    def _build_trsk_weights(self) -> None:
        """Weights ``w`` with ``v_e = sum_e' w[e, e'] u_e'`` (TRSK eq. 33),
        post-antisymmetrized in the energy norm ``K = diag(le*de) @ w`` so
        the nonlinear Coriolis term conserves kinetic energy to round-off.
        """
        ne = self.n_edges
        acc: List[Dict[int, float]] = [dict() for _ in range(ne)]
        for e in range(ne):
            for c, t_sign in ((self.edge_cells[e, 0], -1.0), (self.edge_cells[e, 1], 1.0)):
                n = int(self.cell_nedges[c])
                ring = self.cell_edges[c, :n]
                p = int(np.where(ring == e)[0][0])
                rsum = 0.0
                for j in range(1, n):
                    v_slot = (p + j - 1) % n
                    rsum += self.kite[c, v_slot]
                    ep = int(ring[(p + j) % n])
                    n_sign = self.cell_edge_sign[c, (p + j) % n]
                    w = (self.le[ep] / self.de[e]) * (rsum - 0.5) * n_sign * t_sign
                    acc[e][ep] = acc[e].get(ep, 0.0) + w

        # Antisymmetrize K[e, e'] = le_e * de_e * w[e, e'].
        kmat: Dict[Tuple[int, int], float] = {}
        for e, row in enumerate(acc):
            for ep, w in row.items():
                kmat[(e, ep)] = self.le[e] * self.de[e] * w
        for (e, ep) in list(kmat.keys()):
            if e < ep:
                a = kmat.get((e, ep), 0.0)
                b = kmat.get((ep, e), 0.0)
                anti = 0.5 * (a - b)
                kmat[(e, ep)] = anti
                kmat[(ep, e)] = -anti

        rows: List[List[Tuple[int, float]]] = [[] for _ in range(ne)]
        for (e, ep), k in kmat.items():
            rows[e].append((ep, k / (self.le[e] * self.de[e])))
        maxk = max(len(r) for r in rows)
        self.edge_edges = np.full((ne, maxk), -1, dtype=np.int64)
        self.edge_weights = np.zeros((ne, maxk), dtype=np.float64)
        for e, row in enumerate(rows):
            row.sort()
            for j, (ep, w) in enumerate(row):
                self.edge_edges[e, j] = ep
                self.edge_weights[e, j] = w

    # -- vector helpers -----------------------------------------------------

    def project_to_edges(self, vec_field) -> np.ndarray:
        """Normal components ``u_e`` of an analytic vector field.

        ``vec_field(xyz) -> (n, 3)`` tangent vectors at the given points.
        """
        vecs = np.asarray(vec_field(self.xyz_edge))
        return np.sum(vecs * self.normal, axis=-1)

    def tangential_of(self, vec_field) -> np.ndarray:
        """Analytic tangential components at edges (for testing TRSK)."""
        vecs = np.asarray(vec_field(self.xyz_edge))
        return np.sum(vecs * self.tangent, axis=-1)
