"""Regridding between the atmosphere (icosahedral) and ocean (tripolar)
grids — the sparse-matrix interpolation the coupler applies to every
exchanged field.

Two schemes, mirroring what CPL7 mapping files provide:

* :func:`nearest_remap` — inverse-distance weighting over the k nearest
  source cells (row-normalized, so constants are preserved exactly);
* :meth:`RemapMatrix.with_global_conservation` — the coupler's "flux
  fixer": a multiplicative correction making the area integral of the
  remapped field match the source integral exactly (what conservative
  mapping + global fixers achieve in production couplers).

Matrices are scipy CSR; ``apply`` is a sparse mat-vec, so remapping costs
O(nnz) per field per coupling step — the quantity the coupler cost model
charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.sparse import csr_matrix
from scipy.spatial import cKDTree

__all__ = ["RemapMatrix", "nearest_remap", "index_remap"]


@dataclass
class RemapMatrix:
    """Sparse remap operator ``dst = W @ src`` with area metadata."""

    weights: csr_matrix
    src_area: np.ndarray
    dst_area: np.ndarray

    def __post_init__(self) -> None:
        n_dst, n_src = self.weights.shape
        if len(self.src_area) != n_src or len(self.dst_area) != n_dst:
            raise ValueError("area vectors must match matrix shape")

    @property
    def n_src(self) -> int:
        return self.weights.shape[1]

    @property
    def n_dst(self) -> int:
        return self.weights.shape[0]

    @property
    def nnz(self) -> int:
        return self.weights.nnz

    def apply(self, field: np.ndarray) -> np.ndarray:
        """Remap a source field (last axis = source cells)."""
        field = np.asarray(field)
        if field.shape[-1] != self.n_src:
            raise ValueError(
                f"field has {field.shape[-1]} cells, matrix expects {self.n_src}"
            )
        return self.weights @ field if field.ndim == 1 else (self.weights @ field.T).T

    def row_sums(self) -> np.ndarray:
        return np.asarray(self.weights.sum(axis=1)).ravel()

    def src_integral(self, field: np.ndarray) -> float:
        return float(np.sum(field * self.src_area))

    def dst_integral(self, field: np.ndarray) -> float:
        return float(np.sum(field * self.dst_area))

    def conservation_error(self, field: np.ndarray) -> float:
        """Relative integral mismatch of a remapped field."""
        src = self.src_integral(field)
        dst = self.dst_integral(self.apply(field))
        denom = max(abs(src), 1e-300)
        return abs(dst - src) / denom

    def apply_conservative(self, field: np.ndarray) -> np.ndarray:
        """Remap then apply the global flux fixer: scale the destination
        field so its area integral equals the source integral exactly.
        (Falls back to the raw remap when the integral is ~0, where a
        multiplicative fixer is ill-defined.)"""
        out = self.apply(field)
        src = self.src_integral(field)
        dst = self.dst_integral(out)
        if abs(dst) < 1e-300 or abs(src) < 1e-300:
            return out
        return out * (src / dst)


def index_remap(src_gidx: np.ndarray, dst_gidx: np.ndarray) -> csr_matrix:
    """Selection matrix S with ``dst_values = S @ src_values`` where both
    sides carry the *same* global indices in different local orders.

    This is the exact (weight-1) remap elastic recovery uses to move a
    checkpointed shard, stored in the dead rank's old local order, onto a
    survivor's new local order: no interpolation, bitwise value identity.
    Every destination index must be present on the source side.
    """
    src_gidx = np.asarray(src_gidx, dtype=np.int64).ravel()
    dst_gidx = np.asarray(dst_gidx, dtype=np.int64).ravel()
    order = np.argsort(src_gidx, kind="stable")
    pos = np.searchsorted(src_gidx[order], dst_gidx)
    if np.any(pos >= src_gidx.size) or np.any(src_gidx[order][np.minimum(pos, src_gidx.size - 1)] != dst_gidx):
        missing = dst_gidx[
            (pos >= src_gidx.size)
            | (src_gidx[order][np.minimum(pos, src_gidx.size - 1)] != dst_gidx)
        ]
        raise ValueError(
            f"destination indices missing from source: {missing[:8].tolist()}"
            + ("..." if missing.size > 8 else "")
        )
    cols = order[pos]
    rows = np.arange(dst_gidx.size)
    return csr_matrix(
        (np.ones(dst_gidx.size), (rows, cols)),
        shape=(dst_gidx.size, src_gidx.size),
    )


def nearest_remap(
    src_xyz: np.ndarray,
    dst_xyz: np.ndarray,
    src_area: np.ndarray,
    dst_area: np.ndarray,
    k: int = 4,
    power: float = 2.0,
) -> RemapMatrix:
    """Row-normalized inverse-distance remap over the k nearest sources.

    Parameters
    ----------
    src_xyz, dst_xyz:
        Unit-sphere cell centers, shape (n, 3).
    src_area, dst_area:
        Cell areas (m^2), used for the conservation diagnostics/fixer.
    k:
        Stencil size; k=1 degenerates to nearest-neighbor injection.
    """
    src_xyz = np.asarray(src_xyz, dtype=np.float64).reshape(-1, 3)
    dst_xyz = np.asarray(dst_xyz, dtype=np.float64).reshape(-1, 3)
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, len(src_xyz))
    tree = cKDTree(src_xyz)
    dist, idx = tree.query(dst_xyz, k=k)
    if k == 1:
        dist = dist[:, None]
        idx = idx[:, None]
    # IDW weights with an epsilon so exact hits don't divide by zero.
    w = 1.0 / np.maximum(dist, 1e-12) ** power
    w /= w.sum(axis=1, keepdims=True)
    n_dst = len(dst_xyz)
    rows = np.repeat(np.arange(n_dst), k)
    mat = csr_matrix(
        (w.ravel(), (rows, idx.ravel())), shape=(n_dst, len(src_xyz))
    )
    return RemapMatrix(mat, np.asarray(src_area, dtype=np.float64).ravel(),
                       np.asarray(dst_area, dtype=np.float64).ravel())
