"""Bucket land-surface model, directly coupled to the atmosphere.

Per §5.1.1: "GRIST and the land surface model directly exchange data,
bypassing the coupler.  Consequently, AP3ESM does not currently include a
coupler-owned land model component."  This model therefore lives on the
*atmosphere's* icosahedral cells (its land subset) and exchanges fields
through plain method calls from :class:`repro.atm.model.GristModel` /
the AP3ESM driver, not through MCT.

Physics: a classic Manabe bucket — surface energy balance for skin
temperature (forced by the gsw/glw the AI radiation module produces,
which "serve as inputs to the land surface model"), bucket hydrology
(precipitation in, evaporation out, runoff when full).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..pp import ExecutionSpace, KernelStats, Serial
from ..utils.timers import TimerRegistry
from .kernels import run_bucket

__all__ = ["LandConfig", "LandModel"]


@dataclass
class LandConfig:
    bucket_capacity: float = 0.15      # m of water
    heat_capacity: float = 2.0e5       # J/(m^2 K) effective surface slab
    albedo: float = 0.25
    snow_albedo: float = 0.65          # deep-snow albedo
    snow_masking_depth: float = 0.05   # m SWE at which snow dominates albedo
    emissivity: float = 0.95
    beta_exponent: float = 1.0         # evaporation efficiency curve
    start_time: float = 0.0

# Re-exported from the kernel module (single source of truth for the
# portable bucket kernel and its host model).
from .kernels import T_SNOW  # noqa: E402


class LandModel:
    """Bucket land surface on a set of (atmosphere) land cells."""

    name = "lnd"

    def __init__(
        self,
        n_cells: int,
        land_mask: Optional[np.ndarray] = None,
        config: LandConfig | None = None,
        timers: Optional[TimerRegistry] = None,
    ) -> None:
        if n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        self.n_cells = n_cells
        self.land_mask = (
            np.ones(n_cells, dtype=bool) if land_mask is None else np.asarray(land_mask, bool)
        )
        if self.land_mask.shape != (n_cells,):
            raise ValueError("land_mask must have one entry per cell")
        self.config = config if config is not None else LandConfig()
        self.timers = timers if timers is not None else TimerRegistry()
        self._space: ExecutionSpace = Serial()
        self._kmetrics = None  # Optional[repro.pp.KernelMetrics]
        self._kernels = None  # Optional[repro.pp.KernelRegistry]
        self._initialized = False

    def _kernel_stats(self, kernel: str) -> Optional[KernelStats]:
        return self._kmetrics.stats(kernel) if self._kmetrics is not None else None

    def init(self) -> None:
        cfg = self.config
        self.tskin = np.full(self.n_cells, 285.0)
        self.bucket = np.full(self.n_cells, 0.5 * cfg.bucket_capacity)
        self.snow = np.zeros(self.n_cells)  # snow water equivalent, m
        self.runoff_total = np.zeros(self.n_cells)
        self.time = cfg.start_time
        self.n_steps = 0
        self._forcing: Optional[Dict[str, np.ndarray]] = None
        self._outputs: Dict[str, np.ndarray] = {}
        self._initialized = True

    # -- Component protocol (shared context + uniform coupling surface) ----------

    def set_context(self, ctx) -> None:
        """Bind the shared ComponentContext: the bucket kernel dispatches
        on the context's space and joins the shared hash registry."""
        self._ctx = ctx
        self._space = ctx.space
        self._kmetrics = ctx.metrics
        self._kernels = ctx.kernels
        from .kernels import bucket_kernel

        ctx.kernels.register(bucket_kernel)

    def pre_coupling(self, imports: Dict[str, np.ndarray]) -> None:
        """Stage the atmosphere forcing for the next :meth:`step`."""
        self._check()
        self._forcing = dict(imports)

    def step(self, dt: Optional[float] = None) -> None:
        """Run one bucket step on the staged forcing."""
        self._check()
        if dt is None:
            raise ValueError("the land component needs an explicit coupling dt")
        if self._forcing is None:
            raise RuntimeError("pre_coupling must stage forcing before step")
        self._outputs = self.force(
            gsw=self._forcing["gsw"], glw=self._forcing["glw"],
            precip=self._forcing["precip"], t_air=self._forcing["t_air"],
            dt=dt,
        )

    def post_coupling(self) -> Dict[str, np.ndarray]:
        """The surface state the atmosphere reads back."""
        self._check()
        return self._outputs

    def state(self) -> Dict[str, np.ndarray]:
        """The prognostic state (what restarts save and the precision
        policy round-trips)."""
        self._check()
        return {
            "tskin": self.tskin, "bucket": self.bucket,
            "snow": self.snow, "runoff_total": self.runoff_total,
        }

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        self._check()
        for key in ("tskin", "bucket", "snow", "runoff_total"):
            if key in state:
                setattr(self, key, state[key])

    def effective_albedo(self) -> np.ndarray:
        """Snow-masked surface albedo: blends toward the snow albedo as
        the pack deepens past the masking depth."""
        cfg = self.config
        cover = np.clip(self.snow / cfg.snow_masking_depth, 0.0, 1.0)
        return cfg.albedo + (cfg.snow_albedo - cfg.albedo) * cover

    def finalize(self) -> Dict[str, float]:
        self._check()
        return {
            "steps": float(self.n_steps),
            "mean_tskin": float(self.tskin[self.land_mask].mean()),
            "total_runoff": float(self.runoff_total[self.land_mask].sum()),
        }

    # -- direct (coupler-bypassing) exchange ------------------------------------

    def force(
        self,
        gsw: np.ndarray,
        glw: np.ndarray,
        precip: np.ndarray,
        t_air: np.ndarray,
        dt: float,
    ) -> Dict[str, np.ndarray]:
        """One land step driven by atmosphere fields; returns the surface
        state the atmosphere reads back (tskin, evaporation, runoff).
        """
        self._check()
        if dt <= 0:
            raise ValueError("dt must be positive")
        for name, arr in (("gsw", gsw), ("glw", glw), ("precip", precip), ("t_air", t_air)):
            if np.asarray(arr).shape != (self.n_cells,):
                raise ValueError(f"{name} must have one entry per cell")
        cfg = self.config
        with self.timers.timed("lnd_run"):
            # The whole bucket update is pointwise over cells; dispatch it
            # through the portable kernel on the bound execution space.
            self.tskin, self.bucket, self.snow, runoff, evap, albedo = run_bucket(
                self._space,
                self.tskin, self.bucket, self.snow, self.land_mask,
                np.asarray(gsw, dtype=float), np.asarray(glw, dtype=float),
                np.asarray(precip, dtype=float), np.asarray(t_air, dtype=float),
                dt, cfg, stats=self._kernel_stats("lnd.bucket"),
                registry=self._kernels,
            )
            self.runoff_total += np.where(self.land_mask, runoff, 0.0)
        self.time += dt
        self.n_steps += 1
        return {
            "tskin_land": self.tskin.copy(),
            "evaporation": np.where(self.land_mask, evap, 0.0),
            "runoff": np.where(self.land_mask, runoff, 0.0),
            "snow_depth": np.where(self.land_mask, self.snow, 0.0),
            "albedo": albedo,
            "soil_wetness": np.where(
                self.land_mask, self.bucket / cfg.bucket_capacity, 0.0
            ),
        }

    def save_restart(self, directory) -> None:
        """Write the prognostic land state as a subfile restart set."""
        self._check()
        from ..io.restart import save_restart

        save_restart(
            directory,
            fields={
                "tskin": self.tskin,
                "bucket": self.bucket,
                "snow": self.snow,
                "runoff_total": self.runoff_total,
            },
            scalars={"time": self.time, "n_steps": float(self.n_steps)},
        )

    def load_restart(self, directory) -> None:
        """Restore the prognostic land state bit-exactly."""
        self._check()
        from ..io.restart import load_restart

        fields, scalars = load_restart(directory)
        self.tskin = fields["tskin"]
        self.bucket = fields["bucket"]
        self.snow = fields["snow"]
        self.runoff_total = fields["runoff_total"]
        self.time = scalars["time"]
        self.n_steps = int(scalars["n_steps"])

    def water_balance_error(self, total_precip_m: float, total_evap_m: float) -> float:
        """Closure check: d(bucket) = P - E - runoff (per unit area means)."""
        self._check()
        cfg = self.config
        d_bucket = float(self.bucket[self.land_mask].mean()) - 0.5 * cfg.bucket_capacity
        runoff = float(self.runoff_total[self.land_mask].mean())
        return abs(d_bucket + runoff - (total_precip_m - total_evap_m))

    def _check(self) -> None:
        if not self._initialized:
            raise RuntimeError("model not initialized (call init())")
