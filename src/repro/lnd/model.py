"""Bucket land-surface model, directly coupled to the atmosphere.

Per §5.1.1: "GRIST and the land surface model directly exchange data,
bypassing the coupler.  Consequently, AP3ESM does not currently include a
coupler-owned land model component."  This model therefore lives on the
*atmosphere's* icosahedral cells (its land subset) and exchanges fields
through plain method calls from :class:`repro.atm.model.GristModel` /
the AP3ESM driver, not through MCT.

Physics: a classic Manabe bucket — surface energy balance for skin
temperature (forced by the gsw/glw the AI radiation module produces,
which "serve as inputs to the land surface model"), bucket hydrology
(precipitation in, evaporation out, runoff when full).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..utils.timers import TimerRegistry
from ..utils.units import LATENT_HEAT_VAPORIZATION, STEFAN_BOLTZMANN

__all__ = ["LandConfig", "LandModel"]


@dataclass
class LandConfig:
    bucket_capacity: float = 0.15      # m of water
    heat_capacity: float = 2.0e5       # J/(m^2 K) effective surface slab
    albedo: float = 0.25
    snow_albedo: float = 0.65          # deep-snow albedo
    snow_masking_depth: float = 0.05   # m SWE at which snow dominates albedo
    emissivity: float = 0.95
    beta_exponent: float = 1.0         # evaporation efficiency curve
    start_time: float = 0.0

T_SNOW = 273.15  # precipitation falls as snow below this air temperature
LATENT_HEAT_FUSION_W = 3.337e5 * 1000.0  # J/m^3 of water equivalent


class LandModel:
    """Bucket land surface on a set of (atmosphere) land cells."""

    name = "lnd"

    def __init__(
        self,
        n_cells: int,
        land_mask: Optional[np.ndarray] = None,
        config: LandConfig | None = None,
        timers: Optional[TimerRegistry] = None,
    ) -> None:
        if n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        self.n_cells = n_cells
        self.land_mask = (
            np.ones(n_cells, dtype=bool) if land_mask is None else np.asarray(land_mask, bool)
        )
        if self.land_mask.shape != (n_cells,):
            raise ValueError("land_mask must have one entry per cell")
        self.config = config if config is not None else LandConfig()
        self.timers = timers if timers is not None else TimerRegistry()
        self._initialized = False

    def init(self) -> None:
        cfg = self.config
        self.tskin = np.full(self.n_cells, 285.0)
        self.bucket = np.full(self.n_cells, 0.5 * cfg.bucket_capacity)
        self.snow = np.zeros(self.n_cells)  # snow water equivalent, m
        self.runoff_total = np.zeros(self.n_cells)
        self.time = cfg.start_time
        self.n_steps = 0
        self._initialized = True

    def effective_albedo(self) -> np.ndarray:
        """Snow-masked surface albedo: blends toward the snow albedo as
        the pack deepens past the masking depth."""
        cfg = self.config
        cover = np.clip(self.snow / cfg.snow_masking_depth, 0.0, 1.0)
        return cfg.albedo + (cfg.snow_albedo - cfg.albedo) * cover

    def finalize(self) -> Dict[str, float]:
        self._check()
        return {
            "steps": float(self.n_steps),
            "mean_tskin": float(self.tskin[self.land_mask].mean()),
            "total_runoff": float(self.runoff_total[self.land_mask].sum()),
        }

    # -- direct (coupler-bypassing) exchange ------------------------------------

    def force(
        self,
        gsw: np.ndarray,
        glw: np.ndarray,
        precip: np.ndarray,
        t_air: np.ndarray,
        dt: float,
    ) -> Dict[str, np.ndarray]:
        """One land step driven by atmosphere fields; returns the surface
        state the atmosphere reads back (tskin, evaporation, runoff).
        """
        self._check()
        if dt <= 0:
            raise ValueError("dt must be positive")
        for name, arr in (("gsw", gsw), ("glw", glw), ("precip", precip), ("t_air", t_air)):
            if np.asarray(arr).shape != (self.n_cells,):
                raise ValueError(f"{name} must have one entry per cell")
        cfg = self.config
        with self.timers.timed("lnd_run"):
            beta = np.clip(self.bucket / cfg.bucket_capacity, 0.0, 1.0) ** cfg.beta_exponent
            albedo = self.effective_albedo()
            # Potential evaporation from the available energy (bounded >= 0).
            net_rad = (1.0 - albedo) * gsw + cfg.emissivity * (
                glw - STEFAN_BOLTZMANN * self.tskin**4
            )
            pot_evap = np.maximum(0.3 * net_rad, 0.0) / (LATENT_HEAT_VAPORIZATION * 1000.0)
            evap = beta * pot_evap  # m/s of water

            # Snow: precipitation falls frozen below T_SNOW; a snow pack
            # melts with the positive energy balance (energy-limited),
            # consuming latent heat of fusion and filling the bucket.
            frozen = t_air < T_SNOW
            water_in = np.maximum(precip, 0.0) / 1000.0  # m/s of water
            snowfall = np.where(frozen, water_in, 0.0)
            rain = np.where(frozen, 0.0, water_in)
            melt_energy = np.maximum(net_rad, 0.0) * (self.tskin > T_SNOW - 0.5)
            melt_rate = np.where(
                self.snow > 0.0, melt_energy / LATENT_HEAT_FUSION_W, 0.0
            )
            melt = np.minimum(melt_rate * dt, self.snow + snowfall * dt) / max(dt, 1e-12)
            self.snow = np.where(
                self.land_mask,
                np.maximum(self.snow + dt * (snowfall - melt), 0.0),
                self.snow,
            )

            # Energy balance: radiative + sensible exchange with the air,
            # minus latent cooling (evaporation + snowmelt).
            sensible = 15.0 * (t_air - self.tskin)
            latent = evap * 1000.0 * LATENT_HEAT_VAPORIZATION + melt * LATENT_HEAT_FUSION_W
            dT = (net_rad + sensible - latent) / cfg.heat_capacity
            self.tskin = np.where(self.land_mask, self.tskin + dt * dT, self.tskin)
            self.tskin = np.clip(self.tskin, 180.0, 340.0)

            # Bucket hydrology: rain + snowmelt in, evaporation out.
            bucket_new = self.bucket + dt * (rain + melt - evap)
            runoff = np.maximum(bucket_new - cfg.bucket_capacity, 0.0)
            self.bucket = np.where(
                self.land_mask, np.clip(bucket_new - runoff, 0.0, cfg.bucket_capacity), self.bucket
            )
            self.runoff_total += np.where(self.land_mask, runoff, 0.0)
        self.time += dt
        self.n_steps += 1
        return {
            "tskin_land": self.tskin.copy(),
            "evaporation": np.where(self.land_mask, evap, 0.0),
            "runoff": np.where(self.land_mask, runoff, 0.0),
            "snow_depth": np.where(self.land_mask, self.snow, 0.0),
            "albedo": albedo,
            "soil_wetness": np.where(
                self.land_mask, self.bucket / cfg.bucket_capacity, 0.0
            ),
        }

    def save_restart(self, directory) -> None:
        """Write the prognostic land state as a subfile restart set."""
        self._check()
        from ..io.restart import save_restart

        save_restart(
            directory,
            fields={
                "tskin": self.tskin,
                "bucket": self.bucket,
                "snow": self.snow,
                "runoff_total": self.runoff_total,
            },
            scalars={"time": self.time, "n_steps": float(self.n_steps)},
        )

    def load_restart(self, directory) -> None:
        """Restore the prognostic land state bit-exactly."""
        self._check()
        from ..io.restart import load_restart

        fields, scalars = load_restart(directory)
        self.tskin = fields["tskin"]
        self.bucket = fields["bucket"]
        self.snow = fields["snow"]
        self.runoff_total = fields["runoff_total"]
        self.time = scalars["time"]
        self.n_steps = int(scalars["n_steps"])

    def water_balance_error(self, total_precip_m: float, total_evap_m: float) -> float:
        """Closure check: d(bucket) = P - E - runoff (per unit area means)."""
        self._check()
        cfg = self.config
        d_bucket = float(self.bucket[self.land_mask].mean()) - 0.5 * cfg.bucket_capacity
        runoff = float(self.runoff_total[self.land_mask].mean())
        return abs(d_bucket + runoff - (total_precip_m - total_evap_m))

    def _check(self) -> None:
        if not self._initialized:
            raise RuntimeError("model not initialized (call init())")
