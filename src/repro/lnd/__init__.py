"""Bucket land-surface model (directly coupled to the atmosphere)."""

from .model import LandConfig, LandModel

__all__ = ["LandConfig", "LandModel"]
