"""Bucket land-surface kernel on the performance-portability layer.

The Manabe bucket update of :meth:`LandModel.force` is pointwise over
the (atmosphere) land cells, so it ports directly onto a flat
``pp.parallel_for`` launch through the hash-based registry — each chunk
of cells is independent, making the port bit-identical to the
whole-array reference on every execution space.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..pp import ExecutionSpace, KernelRegistry, KernelStats
from ..utils.units import LATENT_HEAT_VAPORIZATION, STEFAN_BOLTZMANN

__all__ = ["LND_KERNELS", "make_lnd_registry", "bucket_kernel", "run_bucket"]

T_SNOW = 273.15  # precipitation falls as snow below this air temperature
LATENT_HEAT_FUSION_W = 3.337e5 * 1000.0  # J/m^3 of water equivalent


def bucket_kernel(
    idx: np.ndarray,
    tskin_out: np.ndarray,
    bucket_out: np.ndarray,
    snow_out: np.ndarray,
    runoff: np.ndarray,
    evap_out: np.ndarray,
    albedo_out: np.ndarray,
    tskin: np.ndarray,
    bucket: np.ndarray,
    snow: np.ndarray,
    land_mask: np.ndarray,
    gsw: np.ndarray,
    glw: np.ndarray,
    precip: np.ndarray,
    t_air: np.ndarray,
    dt: float,
    bucket_capacity: float,
    heat_capacity: float,
    soil_albedo: float,
    snow_albedo: float,
    snow_masking_depth: float,
    emissivity: float,
    beta_exponent: float,
) -> None:
    """Energy balance + bucket hydrology for one chunk of land cells."""
    m = land_mask[idx]
    tk = tskin[idx]
    bk = bucket[idx]
    sn = snow[idx]

    beta = np.clip(bk / bucket_capacity, 0.0, 1.0) ** beta_exponent
    # Snow-masked albedo: blends toward the snow albedo as the pack
    # deepens past the masking depth.
    cover = np.clip(sn / snow_masking_depth, 0.0, 1.0)
    albedo = soil_albedo + (snow_albedo - soil_albedo) * cover
    albedo_out[idx] = albedo
    # Potential evaporation from the available energy (bounded >= 0).
    net_rad = (1.0 - albedo) * gsw[idx] + emissivity * (
        glw[idx] - STEFAN_BOLTZMANN * tk**4
    )
    pot_evap = np.maximum(0.3 * net_rad, 0.0) / (LATENT_HEAT_VAPORIZATION * 1000.0)
    evap = beta * pot_evap  # m/s of water
    evap_out[idx] = evap

    # Snow: precipitation falls frozen below T_SNOW; a snow pack melts
    # with the positive energy balance (energy-limited), consuming
    # latent heat of fusion and filling the bucket.
    frozen = t_air[idx] < T_SNOW
    water_in = np.maximum(precip[idx], 0.0) / 1000.0  # m/s of water
    snowfall = np.where(frozen, water_in, 0.0)
    rain = np.where(frozen, 0.0, water_in)
    melt_energy = np.maximum(net_rad, 0.0) * (tk > T_SNOW - 0.5)
    melt_rate = np.where(sn > 0.0, melt_energy / LATENT_HEAT_FUSION_W, 0.0)
    melt = np.minimum(melt_rate * dt, sn + snowfall * dt) / max(dt, 1e-12)
    snow_out[idx] = np.where(m, np.maximum(sn + dt * (snowfall - melt), 0.0), sn)

    # Energy balance: radiative + sensible exchange with the air, minus
    # latent cooling (evaporation + snowmelt).
    sensible = 15.0 * (t_air[idx] - tk)
    latent = evap * 1000.0 * LATENT_HEAT_VAPORIZATION + melt * LATENT_HEAT_FUSION_W
    dT = (net_rad + sensible - latent) / heat_capacity
    tskin_out[idx] = np.clip(np.where(m, tk + dt * dT, tk), 180.0, 340.0)

    # Bucket hydrology: rain + snowmelt in, evaporation out.
    bucket_new = bk + dt * (rain + melt - evap)
    ro = np.maximum(bucket_new - bucket_capacity, 0.0)
    bucket_out[idx] = np.where(m, np.clip(bucket_new - ro, 0.0, bucket_capacity), bk)
    runoff[idx] = ro


def make_lnd_registry(name: str = "lnd") -> KernelRegistry:
    """A fresh per-context registry with the land kernels registered."""
    reg = KernelRegistry(name=name)
    reg.register(bucket_kernel)
    return reg


#: Backward-compatible module-level registry: the default used by
#: :func:`run_bucket` when no per-context registry is passed.
LND_KERNELS = make_lnd_registry()


def run_bucket(
    space: ExecutionSpace,
    tskin: np.ndarray,
    bucket: np.ndarray,
    snow: np.ndarray,
    land_mask: np.ndarray,
    gsw: np.ndarray,
    glw: np.ndarray,
    precip: np.ndarray,
    t_air: np.ndarray,
    dt: float,
    params,
    stats: Optional[KernelStats] = None,
    registry: Optional[KernelRegistry] = None,
) -> Tuple[np.ndarray, ...]:
    """(tskin, bucket, snow, runoff, evap, albedo) after one bucket step.

    ``params`` is a :class:`repro.lnd.model.LandConfig`-shaped object.
    """
    reg = registry if registry is not None else LND_KERNELS
    n = tskin.shape[0]
    tskin_out = np.zeros_like(tskin)
    bucket_out = np.zeros_like(bucket)
    snow_out = np.zeros_like(snow)
    runoff = np.zeros(n)
    evap = np.zeros(n)
    albedo = np.zeros(n)
    reg.launch(
        space, reg.register(bucket_kernel), n,
        tskin_out, bucket_out, snow_out, runoff, evap, albedo,
        tskin, bucket, snow, land_mask, gsw, glw, precip, t_air,
        dt, params.bucket_capacity, params.heat_capacity, params.albedo,
        params.snow_albedo, params.snow_masking_depth, params.emissivity,
        params.beta_exponent, stats=stats,
    )
    return tskin_out, bucket_out, snow_out, runoff, evap, albedo
