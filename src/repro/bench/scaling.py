"""Scaling-study runners: published curve -> calibrated model -> full curve.

Glue between :mod:`repro.bench.paper_data` and :mod:`repro.machine`: builds
the right machine/workload for each published curve, calibrates on the
anchor points, and evaluates the model at every published resource count
(plus optional extra points for smooth figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..machine import (
    ComponentWorkload,
    CoupledPerfModel,
    CouplingSpec,
    PerfModel,
    atm_workload,
    ocn_workload,
    orise,
    sunway_oceanlight,
)
from ..esm.config import GRIST_CONFIGS, LICOM_CONFIGS
from ..esm.scheduler import paper_layout
from .paper_data import (
    CORES_PER_SUNWAY_PROCESS,
    STRONG_SCALING_CURVES,
    ScalingCurve,
    WEAK_SCALING,
)

__all__ = [
    "CurveResult",
    "resources_to_processes",
    "workload_for",
    "evaluate_curve",
    "evaluate_all_curves",
    "weak_scaling_series",
    "coupled_curve",
    "paper_coupled_model",
    "predict_pairing_sypd",
]


def resources_to_processes(curve: ScalingCurve, resources: float) -> int:
    """Published resource counts -> model process counts."""
    if curve.machine == "orise":
        return max(1, int(resources))              # one process per GPU
    if curve.mode == "host":
        return max(1, int(resources))              # MPE-only: 1 core each
    return max(1, int(resources) // CORES_PER_SUNWAY_PROCESS)


def workload_for(curve: ScalingCurve) -> ComponentWorkload:
    """The grid-sized workload behind a published curve."""
    if curve.component == "atm":
        res = float(curve.resolution_label.split()[0])
        cfg = GRIST_CONFIGS[res]
        # Workload columns = hexagon cells.
        cells = cfg.cells if cfg.convention == "hexagon" else cfg.vertices
        return atm_workload(int(cells), cfg.levels)
    if curve.component == "ocn":
        res = float(curve.resolution_label.split()[0])
        cfg = LICOM_CONFIGS[res]
        compressed = "opt" in curve.key or curve.mode == "accelerated"
        return ocn_workload(cfg.nlon * cfg.nlat, cfg.levels, compressed=compressed)
    raise ValueError(f"no single-component workload for {curve.component!r}")


def model_for(curve: ScalingCurve) -> PerfModel:
    machine = sunway_oceanlight() if curve.machine == "sunway" else orise()
    return PerfModel(machine, mode=curve.mode)


@dataclass
class CurveResult:
    """Published-vs-modeled series for one curve."""

    curve: ScalingCurve
    resources: List[float]
    published: List[Optional[float]]
    modeled: List[float]
    anchors: List[bool]
    compute_scale: float
    serial_seconds: float
    sync_imbalance: float = 0.0

    def rows(self) -> List[Tuple[float, Optional[float], float, str]]:
        out = []
        for r, pub, mod, anc in zip(self.resources, self.published, self.modeled, self.anchors):
            tag = "anchor" if anc else ("prediction" if pub is not None else "model-only")
            out.append((r, pub, mod, tag))
        return out

    def max_prediction_error(self) -> float:
        """Worst relative error on non-anchor published points."""
        errs = [
            abs(m - p) / p
            for p, m, a in zip(self.published, self.modeled, self.anchors)
            if p is not None and not a
        ]
        return max(errs) if errs else 0.0

    def modeled_efficiency(self) -> float:
        first, last = 0, len(self.resources) - 1
        return (self.modeled[last] / self.modeled[first]) / (
            self.resources[last] / self.resources[first]
        )


def evaluate_curve(curve: ScalingCurve, extra_resources: Optional[List[float]] = None) -> CurveResult:
    """Calibrate on the curve's anchors, evaluate everywhere."""
    workload = workload_for(curve)
    model = model_for(curve)
    anchors = [(resources_to_processes(curve, p.resources), p.sypd) for p in curve.anchors()]
    cal, wl = model.calibrated(workload, anchors)

    resources = [p.resources for p in curve.points]
    published: List[Optional[float]] = [p.sypd for p in curve.points]
    anchor_flags = [p.anchor for p in curve.points]
    for extra in extra_resources or []:
        resources.append(extra)
        published.append(None)
        anchor_flags.append(False)

    modeled = [
        cal.predict_sypd(wl, resources_to_processes(curve, r)) for r in resources
    ]
    return CurveResult(
        curve=curve,
        resources=resources,
        published=published,
        modeled=modeled,
        anchors=anchor_flags,
        compute_scale=cal.compute_scale,
        serial_seconds=wl.serial_seconds_per_day,
    )


def evaluate_all_curves() -> Dict[str, CurveResult]:
    """All single-component curves (coupled ones go through
    :func:`coupled_curve`, which composes standalone calibrations)."""
    return {
        key: evaluate_curve(c)
        for key, c in STRONG_SCALING_CURVES.items()
        if c.component != "coupled"
    }


def weak_scaling_series(component: str, imbalance_cv: float = 0.0) -> Dict[str, List[float]]:
    """Fig. 8b: fixed work per node across the resolution/node ladder.

    Returns per-point modeled SYPD and the weak-scaling efficiency series
    (time-per-step at fixed per-node work, normalized to the first point).
    The component model is calibrated from the corresponding strong-scaling
    curve's anchors so the weak series is a genuine prediction.

    ``imbalance_cv`` switches on the synchronization-jitter term (expected
    max of P iid rank times) — the mechanism the paper blames for its
    Fig. 8b efficiency drop; used as a sensitivity knob by the bench.
    """
    from dataclasses import replace as _replace

    spec = WEAK_SCALING[component]
    base_key = "atm_3km_cpe" if component == "atm" else "ocn_2km_cpe"
    curve = STRONG_SCALING_CURVES[base_key]
    model = _replace(model_for(curve), imbalance_cv=imbalance_cv)
    anchors = [
        (resources_to_processes(curve, p.resources), p.sypd) for p in curve.anchors()
    ]
    cal, wl_cal = model.calibrated(workload_for(curve), anchors)

    sypd: List[float] = []
    time_per_day: List[float] = []
    for res_km, nodes in spec["ladder"]:
        procs = nodes * 6
        if component == "atm":
            cfg = GRIST_CONFIGS[res_km]
            cells = cfg.cells if cfg.convention == "hexagon" else cfg.vertices
            wl = atm_workload(int(cells), cfg.levels)
        else:
            cfg = LICOM_CONFIGS[res_km]
            wl = ocn_workload(cfg.nlon * cfg.nlat, cfg.levels, compressed=True)
        wl = type(wl)(
            name=wl.name, columns=wl.columns, levels=wl.levels, phases=wl.phases,
            point_bytes_state=wl.point_bytes_state,
            serial_seconds_per_day=wl_cal.serial_seconds_per_day,
        )
        bd = cal.time_per_day(wl, procs)
        sypd.append(bd.sypd)
        time_per_day.append(bd.total)
    # Weak efficiency: T(first) / T(n) at ~fixed work per node.
    eff = [time_per_day[0] / t for t in time_per_day]
    return {
        "resolution_km": [r for r, _ in spec["ladder"]],
        "nodes": [n for _, n in spec["ladder"]],
        "sypd": sypd,
        "efficiency": eff,
        "published_terminal_efficiency": [spec["published_efficiency"]],
    }


def predict_pairing_sypd(label: str, total_cores: float) -> Dict[str, float]:
    """Model-only coupled SYPD for ANY Table 1 pairing (the paper publishes
    coupled numbers only for 3v2 and 1v1; this completes the table).

    Component calibrations come from the published standalone curves (3 km
    ATM and 2 km OCN on Sunway), transferred to the pairing's grid sizes;
    the coupled overhead scalar comes from the 3v2 coupled fit.
    """
    from ..esm.config import AP3ESM_CONFIGS

    pairing = AP3ESM_CONFIGS[label]
    machine = sunway_oceanlight()
    model = PerfModel(machine, mode="accelerated")

    atm_curve = STRONG_SCALING_CURVES["atm_3km_cpe"]
    acfg = pairing.atm
    cells = acfg.cells if acfg.convention == "hexagon" else acfg.vertices
    cal_a, wl_a3 = model.calibrated(
        atm_workload(int(GRIST_CONFIGS[3.0].cells), 30),
        [(resources_to_processes(atm_curve, p.resources), p.sypd)
         for p in atm_curve.anchors()],
    )
    wl_a = atm_workload(int(cells), acfg.levels)
    wl_a = replace_workload(wl_a, wl_a3.serial_seconds_per_day)

    ocn_curve = STRONG_SCALING_CURVES["ocn_2km_cpe"]
    ocfg = pairing.ocn
    cal_o, wl_o2 = model.calibrated(
        ocn_workload(LICOM_CONFIGS[2.0].nlon * LICOM_CONFIGS[2.0].nlat, 80, compressed=True),
        [(resources_to_processes(ocn_curve, p.resources), p.sypd)
         for p in ocn_curve.anchors()],
    )
    wl_o = ocn_workload(ocfg.nlon * ocfg.nlat, ocfg.levels, compressed=True)
    wl_o = replace_workload(wl_o, wl_o2.serial_seconds_per_day)

    coupling = CouplingSpec(
        exchanges_per_day={"atm": 180.0, "ocn": 36.0, "ice": 180.0},
        bytes_per_exchange={
            "atm": float(cells) * 8 * 8,
            "ocn": float(ocfg.nlon * ocfg.nlat) * 8 * 8,
            "ice": float(ocfg.nlon * ocfg.nlat) * 8 * 2,
        },
        fields_per_exchange={"atm": 8.0, "ocn": 8.0, "ice": 2.0},
    )
    coupled = CoupledPerfModel.from_layout(
        paper_layout(), {"atm": wl_a, "ocn": wl_o},
        model1=cal_a, model2=cal_o, coupling=coupling,
    )
    # Transfer the 3v2 sync-imbalance scalar (the coupled-only effect).
    ref = coupled_curve("3v2")
    from dataclasses import replace as _dc_replace

    coupled = _dc_replace(coupled, sync_imbalance=ref.sync_imbalance)
    total = max(2, int(total_cores) // CORES_PER_SUNWAY_PROCESS)
    n1, n2 = coupled.balance_resources(total)
    return {
        "sypd": coupled.predict_sypd(n1, n2),
        "procs_domain1": float(n1),
        "procs_domain2": float(n2),
    }


def replace_workload(wl: ComponentWorkload, serial: float) -> ComponentWorkload:
    """Workload copy carrying a calibrated serial term."""
    return type(wl)(
        name=wl.name, columns=wl.columns, levels=wl.levels, phases=wl.phases,
        point_bytes_state=wl.point_bytes_state, serial_seconds_per_day=serial,
    )


def paper_coupled_model(label: str) -> CoupledPerfModel:
    """The paper-calibrated coupled model for a coupled curve label
    ('3v2' or '1v1'), without evaluating the curve.

    The same object :func:`coupled_curve` builds internally; elastic
    recovery uses it to price degraded-mode continuation
    (:meth:`CoupledPerfModel.degraded_estimate`) after a shrink.
    """
    curve = STRONG_SCALING_CURVES[f"coupled_{label}"]
    coupled = _build_coupled_model(label)

    def split(r: float) -> Tuple[int, int]:
        total = max(2, int(r) // CORES_PER_SUNWAY_PROCESS)
        return coupled.balance_resources(total)

    anchor_points = [p for p in curve.points if p.anchor]
    return coupled.calibrated_coupled(
        [(*split(p.resources), p.sypd) for p in anchor_points]
    )


def coupled_curve(label: str) -> CurveResult:
    """AP3ESM coupled curves, assembled from *standalone* calibrations.

    The coupled model is NOT calibrated on the coupled points: its
    components carry the standalone curves' calibrations, resources are
    split with :meth:`CoupledPerfModel.balance_resources`, and the
    published coupled SYPD are pure predictions — the strongest test the
    machine model faces.
    """
    curve = STRONG_SCALING_CURVES[f"coupled_{label}"]
    coupled = _build_coupled_model(label)

    def split(r: float) -> Tuple[int, int]:
        total = max(2, int(r) // CORES_PER_SUNWAY_PROCESS)
        return coupled.balance_resources(total)

    # Calibrate the two coupled-only terms (inter-domain sync imbalance +
    # driver serial time) on the curve's anchor endpoints; interior points
    # stay predictions.
    anchor_points = [p for p in curve.points if p.anchor]
    coupled = coupled.calibrated_coupled(
        [(*split(p.resources), p.sypd) for p in anchor_points]
    )

    resources = [p.resources for p in curve.points]
    modeled = []
    for r in resources:
        n1, n2 = split(r)
        modeled.append(coupled.predict_sypd(n1, n2))
    return CurveResult(
        curve=curve,
        resources=resources,
        published=[p.sypd for p in curve.points],
        modeled=modeled,
        anchors=[p.anchor for p in curve.points],
        compute_scale=coupled.model1.compute_scale,
        serial_seconds=coupled.serial_seconds,
        sync_imbalance=coupled.sync_imbalance,
    )


def _build_coupled_model(label: str) -> CoupledPerfModel:
    """Uncalibrated-coupled (component-calibrated) model for a label."""
    machine = sunway_oceanlight()
    model = PerfModel(machine, mode="accelerated")

    if label == "3v2":
        atm_key, atm_res, ocn_res = "atm_3km_cpe", 3.0, 2.0
    elif label == "1v1":
        atm_key, atm_res, ocn_res = "atm_1km_cpe", 1.0, 1.0
    else:
        raise ValueError(f"unknown coupled label {label!r}")

    atm_curve = STRONG_SCALING_CURVES[atm_key]
    acfg = GRIST_CONFIGS[atm_res]
    cells = acfg.cells if acfg.convention == "hexagon" else acfg.vertices
    wl_a = atm_workload(int(cells), acfg.levels)
    cal_a, wl_a = model.calibrated(
        wl_a,
        [(resources_to_processes(atm_curve, p.resources), p.sypd) for p in atm_curve.anchors()],
    )

    ocn_curve = STRONG_SCALING_CURVES["ocn_2km_cpe"]
    ocfg = LICOM_CONFIGS[ocn_res]
    wl_o = ocn_workload(ocfg.nlon * ocfg.nlat, ocfg.levels, compressed=True)
    # Reuse the 2 km curve's calibration scale for the 1v1 ocean (no
    # standalone Sunway 1 km ocean curve is published).
    cal_o, wl_o2km = model.calibrated(
        ocn_workload(LICOM_CONFIGS[2.0].nlon * LICOM_CONFIGS[2.0].nlat, 80, compressed=True),
        [(resources_to_processes(ocn_curve, p.resources), p.sypd) for p in ocn_curve.anchors()],
    )
    wl_o = type(wl_o)(
        name=wl_o.name, columns=wl_o.columns, levels=wl_o.levels, phases=wl_o.phases,
        point_bytes_state=wl_o.point_bytes_state,
        serial_seconds_per_day=wl_o2km.serial_seconds_per_day,
    )

    coupling = CouplingSpec(
        exchanges_per_day={"atm": 180.0, "ocn": 36.0, "ice": 180.0},
        bytes_per_exchange={
            "atm": float(cells) * 8 * 8,
            "ocn": float(ocfg.nlon * ocfg.nlat) * 8 * 8,
            "ice": float(ocfg.nlon * ocfg.nlat) * 8 * 2,
        },
        fields_per_exchange={"atm": 8.0, "ocn": 8.0, "ice": 2.0},
    )
    return CoupledPerfModel.from_layout(
        paper_layout(), {"atm": wl_a, "ocn": wl_o},
        model1=cal_a, model2=cal_o, coupling=coupling,
    )
