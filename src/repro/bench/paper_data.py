"""Published reference numbers from the paper's evaluation section.

Table 2's OCR in the provided text is garbled (row labels shifted), so the
curves below are **reconstructed from the prose of §7.2/§7.3**, which is
internally consistent, cross-checked against the table's parallel-
efficiency columns (e.g. the OCN-MPE row's 100/118/107 % matches the
0.0014/0.0033/0.0060 SYPD series exactly).  Every reconstruction is
annotated.  Points marked ``anchor=True`` are used to calibrate the
machine model; all other points are *predictions* reported in
EXPERIMENTS.md.

Also here: the Fig. 2 state-of-the-art survey data (prior coupled models'
SYPD vs total grid points) and the published component/coupled headline
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ScalingPoint",
    "ScalingCurve",
    "STRONG_SCALING_CURVES",
    "WEAK_SCALING",
    "SOTA_MODELS",
    "HEADLINES",
    "CORES_PER_SUNWAY_PROCESS",
]

#: Sunway: one MPI process per 65-core core group in CPE mode; 1 core per
#: process in MPE-only mode.  ORISE: one process per GPU.
CORES_PER_SUNWAY_PROCESS = 65


@dataclass(frozen=True)
class ScalingPoint:
    """One published point of a strong-scaling curve."""

    resources: float      # cores (Sunway) or GPUs (ORISE), as published
    sypd: float
    anchor: bool = False  # used for model calibration
    note: str = ""


@dataclass(frozen=True)
class ScalingCurve:
    """One curve of Fig. 8a / Table 2."""

    key: str
    label: str
    machine: str              # "sunway" | "orise"
    mode: str                 # "accelerated" | "host"
    component: str            # "atm" | "ocn" | "coupled"
    resolution_label: str
    points: Tuple[ScalingPoint, ...]
    resource_unit: str = "cores"

    def anchors(self) -> List[ScalingPoint]:
        return [p for p in self.points if p.anchor]

    def published_efficiency(self) -> float:
        """Parallel efficiency at the largest published scale."""
        first, last = self.points[0], self.points[-1]
        return (last.sypd / first.sypd) / (last.resources / first.resources)


STRONG_SCALING_CURVES: Dict[str, ScalingCurve] = {
    "atm_3km_mpe": ScalingCurve(
        key="atm_3km_mpe",
        label="3 km ATM MPE",
        machine="sunway",
        mode="host",
        component="atm",
        resolution_label="3 km",
        points=(
            ScalingPoint(32768, 0.0032, anchor=True, note="prose: 5462 nodes"),
            ScalingPoint(262144, 0.0063, anchor=True, note="prose: 43691 nodes; eff 24.6%"),
        ),
    ),
    "atm_3km_cpe": ScalingCurve(
        key="atm_3km_cpe",
        label="3 km ATM CPE+OPT",
        machine="sunway",
        mode="accelerated",
        component="atm",
        resolution_label="3 km",
        points=(
            ScalingPoint(2129920, 0.36, anchor=True),
            ScalingPoint(4259840, 0.70, note="table eff 97.2%"),
            ScalingPoint(8519680, 0.92, note="table eff 63.9%"),
            ScalingPoint(17039360, 1.16, anchor=True, note="prose eff 40.3%"),
        ),
    ),
    "atm_1km_cpe": ScalingCurve(
        key="atm_1km_cpe",
        label="1 km ATM CPE+OPT",
        machine="sunway",
        mode="accelerated",
        component="atm",
        resolution_label="1 km",
        points=(
            ScalingPoint(4259840, 0.20, anchor=True),
            ScalingPoint(34078270, 0.85, anchor=True, note="headline; eff 51.5%"),
        ),
    ),
    "ocn_2km_mpe": ScalingCurve(
        key="ocn_2km_mpe",
        label="2 km OCN MPE",
        machine="sunway",
        mode="host",
        component="ocn",
        resolution_label="2 km",
        points=(
            ScalingPoint(19608, 0.0014, anchor=True),
            ScalingPoint(38550, 0.0033, note="table eff 118% (super-linear)"),
            ScalingPoint(76026, 0.0060, note="table eff 107%"),
            ScalingPoint(300366, 0.019, anchor=True,
                         note="prose: 'over 300000 cores', eff 88.6% backs out ~3.0e5"),
        ),
    ),
    "ocn_2km_cpe": ScalingCurve(
        key="ocn_2km_cpe",
        label="2 km OCN CPE+OPT",
        machine="sunway",
        mode="accelerated",
        component="ocn",
        resolution_label="2 km",
        points=(
            ScalingPoint(1273415, 0.21, anchor=True),
            ScalingPoint(2505880, 0.42),
            ScalingPoint(4941755, 0.72),
            ScalingPoint(19513780, 1.59, anchor=True, note="prose eff 49.4%"),
        ),
    ),
    "ocn_1km_orise_original": ScalingCurve(
        key="ocn_1km_orise_original",
        label="1 km OCN Original (GB'24 record)",
        machine="orise",
        mode="accelerated",
        component="ocn",
        resolution_label="1 km",
        resource_unit="GPUs",
        points=(
            ScalingPoint(4000, 0.77, anchor=True),
            ScalingPoint(8000, 1.25),
            ScalingPoint(12000, 1.49),
            ScalingPoint(16085, 1.70, anchor=True, note="the SC'24 record"),
        ),
    ),
    "ocn_1km_orise_opt": ScalingCurve(
        key="ocn_1km_orise_opt",
        label="1 km OCN OPT",
        machine="orise",
        mode="accelerated",
        component="ocn",
        resolution_label="1 km",
        resource_unit="GPUs",
        points=(
            ScalingPoint(4060, 0.92, anchor=True),
            ScalingPoint(8060, 1.45),
            ScalingPoint(11927, 1.76),
            ScalingPoint(16085, 1.98, anchor=True, note="headline; eff 54.3%; 1.2x record"),
        ),
    ),
    "coupled_3v2": ScalingCurve(
        key="coupled_3v2",
        label="AP3ESM 3v2",
        machine="sunway",
        mode="accelerated",
        component="coupled",
        resolution_label="3v2",
        points=(
            ScalingPoint(3403335, 0.18, anchor=True),
            ScalingPoint(4259840, 0.20),
            ScalingPoint(8519680, 0.40),
            ScalingPoint(17039360, 0.71),
            ScalingPoint(36553140, 1.01, anchor=True, note="prose eff 52.2%"),
        ),
    ),
    "coupled_1v1": ScalingCurve(
        key="coupled_1v1",
        label="AP3ESM 1v1",
        machine="sunway",
        mode="accelerated",
        component="coupled",
        resolution_label="1v1",
        points=(
            ScalingPoint(8745360, 0.14, anchor=True),
            ScalingPoint(17359160, 0.23, note="table eff 82.8%"),
            ScalingPoint(37172980, 0.54, anchor=True, note="headline; eff 90.7%"),
        ),
    ),
}

#: Fig. 8b weak scaling: (resolution_km, nodes) ladders and published
#: terminal efficiencies.
WEAK_SCALING = {
    "atm": {
        "ladder": [(25.0, 683), (10.0, 2731), (6.0, 10922), (3.0, 43691)],
        "terminal_cores": 17039360,
        "published_efficiency": 0.8785,
    },
    "ocn": {
        "ladder": [(10.0, 2107), (5.0, 8212), (3.0, 18225), (2.0, 50035)],
        "terminal_cores": 19513780,
        "published_efficiency": 0.9657,
    },
}


@dataclass(frozen=True)
class SOTAModel:
    """One prior coupled model from the Fig. 2 survey."""

    name: str
    year: int
    total_grid_points: float
    sypd: float
    is_fit_endpoint: bool = False  # CNRM 2019 and CESM 2024 define the line


#: Fig. 2 survey, assembled from §4's narrative (grid counts estimated
#: from the quoted resolutions where the figure's exact values are not in
#: the text).
SOTA_MODELS: List[SOTAModel] = [
    SOTAModel("CNRM-CM6 (2019)", 2019, 2.0e8, 2.0, is_fit_endpoint=True),
    SOTAModel("HadGEM3-GC3.1-HH (2018)", 2018, 3.3e8, 0.49),
    SOTAModel("E3SM v1 HR (2019)", 2019, 4.5e8, 0.8),
    SOTAModel("EC-Earth3P-VHR (2024)", 2024, 8.0e8, 2.8),
    SOTAModel("ICON nextGEMS 9v5 (2025)", 2025, 3.5e9, 600.0 / 365.0),
    SOTAModel("ICON MSA 5 km (2023)", 2023, 6.0e9, 0.47),
    SOTAModel("CESM Sunway 5v3 (2024)", 2024, 8.0e9, 0.61, is_fit_endpoint=True),
    SOTAModel("AP3ESM 3v2 (this work)", 2025, 1.5e10, 1.01),
    SOTAModel("AP3ESM 1v1 (this work)", 2025, 7.2e10, 0.54),
]

#: Headline numbers (abstract / §1).
HEADLINES = {
    "atm_1km_sypd": 0.85,
    "atm_1km_cores": 34.1e6,
    "ocn_1km_sypd": 1.98,
    "ocn_1km_gpus": 16085,
    "coupled_1v1_sypd": 0.54,
    "coupled_1v1_cores": 37.2e6,
    "coupled_3v2_sypd": 1.01,
    "coupled_1v1_efficiency": 0.907,
    "mpe_to_cpe_speedup_atm": (112.0, 184.0),
    "mpe_to_cpe_speedup_ocn": (84.0, 150.0),
    "speedup_vs_gb24_record": 1.2,
    "nonocean_removal_saving": 0.30,
}
