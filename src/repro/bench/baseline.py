"""JSON perf baselines and the CI regression gate.

Benchmarks emit ``BENCH_<suite>.json`` documents — flat metric maps with
a *kind* per metric — and CI compares them against the committed
baselines under ``benchmarks/baselines/``:

* ``count`` — deterministic arithmetic (message counts, bytes moved,
  cache hits): gated hard, any drift beyond tolerance fails;
* ``model`` — deterministic performance-model output (modeled seconds,
  SYPD): gated with the same tolerance;
* ``wall`` — measured wall time on whatever machine ran the suite:
  **informational only**, reported but never failed (CI runners are too
  noisy to gate on);
* ``speedup`` — measured wall-time ratio (serial time / parallel time).
  The committed value is never a target — speedup is machine-dependent —
  but the **floor is gated**: when the current document reports a
  ``host.cores`` metric greater than 1, a speedup below 1.0 fails (a
  parallel backend must not be slower than serial on a multi-core host);
  on single-core runners it is informational.
* ``drift`` — modeled-vs-measured drift fraction per kernel (see
  :func:`repro.machine.calibrate.drift`).  Like ``speedup``, the
  committed value is never a target (measurements are machine-dependent);
  the **band is gated**: the current run fails when ``|drift|`` exceeds
  ``drift_tolerance`` or is non-finite (``NaN > tol`` is falsy — a
  silent pass — so finiteness is checked explicitly).  The boundary
  exactly met passes.

The gate is symmetric by default — an unexplained 10× *improvement* in a
``count`` metric usually means the benchmark stopped measuring the thing
it used to measure, which is just as much a regression of the baseline's
meaning.  Refresh the baseline deliberately by re-running the suite and
committing the new JSON.

Every benchmark writes its document through :func:`emit` — one place that
stamps host metadata (``host.cores``, the speedup-floor switch), writes
``BENCH_<suite>.json`` under the report directory and verifies the
round-trip — instead of hand-rolled ``json.dump`` blocks per suite.

CLI (used by the CI job)::

    python -m repro.bench.baseline compare CURRENT BASELINE [--tolerance 0.15]
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "PerfBaseline",
    "BaselineComparison",
    "compare_baselines",
    "load_baseline",
    "emit",
]

_VERSION = 1
_KINDS = ("count", "model", "wall", "speedup", "drift")
#: Relative difference below which two values are "the same" even when
#: the baseline value is 0 (guards the 0-vs-1e-12 division).
_ABS_FLOOR = 1e-12


@dataclass
class PerfBaseline:
    """One suite's metric document (what ``BENCH_<suite>.json`` holds)."""

    suite: str
    metrics: Dict[str, Dict[str, Union[float, str]]] = field(default_factory=dict)

    def record(self, name: str, value: float, kind: str = "count",
               unit: str = "") -> None:
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        self.metrics[name] = {"value": float(value), "kind": kind, "unit": unit}

    def to_json(self) -> str:
        return json.dumps(
            {"version": _VERSION, "suite": self.suite, "metrics": self.metrics},
            indent=2, sort_keys=True,
        )

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @staticmethod
    def from_json(text: str) -> "PerfBaseline":
        doc = json.loads(text)
        if doc.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {doc.get('version')!r}"
            )
        return PerfBaseline(suite=doc["suite"], metrics=doc["metrics"])

    @staticmethod
    def from_file(path: Union[str, Path]) -> "PerfBaseline":
        return PerfBaseline.from_json(Path(path).read_text())


def load_baseline(path: Union[str, Path]) -> PerfBaseline:
    return PerfBaseline.from_file(path)


def emit(
    doc: PerfBaseline,
    directory: Union[str, Path],
    host_metadata: bool = True,
    echo: bool = True,
) -> Path:
    """The one way a benchmark suite writes its ``BENCH_<suite>.json``.

    Stamps ``host.cores`` (kind ``wall`` — informational, but it switches
    the speedup-floor and documents where measurements came from) unless
    the suite already recorded it, writes ``BENCH_<suite>.json`` under
    ``directory``, verifies the document round-trips, and returns the
    path.  ``echo=True`` prints the ``[bench-json] <path>`` line the CI
    logs grep for.
    """
    if host_metadata and "host.cores" not in doc.metrics:
        doc.record("host.cores", float(os.cpu_count() or 1), kind="wall")
    out = doc.write(Path(directory) / f"BENCH_{doc.suite}.json")
    if PerfBaseline.from_file(out).metrics != doc.metrics:
        raise RuntimeError(f"{out}: emitted document did not round-trip")
    if echo:
        print(f"\n[bench-json] {out}")
    return out


@dataclass
class MetricDelta:
    name: str
    kind: str
    baseline: float
    current: float

    @property
    def rel_change(self) -> float:
        if abs(self.baseline) < _ABS_FLOOR:
            return 0.0 if abs(self.current) < _ABS_FLOOR else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)


@dataclass
class BaselineComparison:
    """Outcome of comparing a fresh run against the committed baseline."""

    suite: str
    tolerance: float
    regressions: List[MetricDelta] = field(default_factory=list)
    informational: List[MetricDelta] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    checked: int = 0
    drift_tolerance: float = 0.5

    @property
    def ok(self) -> bool:
        """Gate verdict: no gated metric drifted and none disappeared."""
        return not self.regressions and not self.missing

    def report(self) -> str:
        lines = [f"perf gate: suite={self.suite} tolerance={self.tolerance:.0%} "
                 f"checked={self.checked} -> {'OK' if self.ok else 'FAIL'}"]
        for d in self.regressions:
            if d.kind == "drift":
                shown = f"{d.current:+.1%}" if math.isfinite(d.current) else "non-finite"
                lines.append(
                    f"  DRIFT {d.name}: modeled-vs-measured {shown} "
                    f"exceeds +/-{self.drift_tolerance:.0%}"
                )
                continue
            lines.append(
                f"  REGRESSION {d.name} [{d.kind}]: "
                f"{d.baseline:.6g} -> {d.current:.6g} ({d.rel_change:+.1%})"
            )
        for name in self.missing:
            lines.append(f"  MISSING {name}: in baseline but not in current run")
        for d in self.informational:
            if d.kind == "drift":
                lines.append(
                    f"  drift {d.name}: {d.current:+.1%} modeled-vs-measured "
                    f"(within +/-{self.drift_tolerance:.0%})"
                )
                continue
            mark = " (drifted)" if abs(d.rel_change) > self.tolerance else ""
            lines.append(
                f"  {d.kind} {d.name}: {d.baseline:.6g} -> {d.current:.6g} "
                f"({d.rel_change:+.1%}){mark}"
            )
        for name in self.added:
            lines.append(f"  new metric {name} (not yet in baseline)")
        return "\n".join(lines)


def compare_baselines(
    current: PerfBaseline,
    baseline: PerfBaseline,
    tolerance: float = 0.15,
    symmetric: bool = True,
    drift_tolerance: float = 0.5,
) -> BaselineComparison:
    """Compare a fresh suite run against the committed baseline.

    ``count``/``model`` metrics whose relative change exceeds
    ``tolerance`` (in either direction when ``symmetric``, else only
    when worse, i.e. larger) are regressions; ``wall`` metrics are
    always informational; ``speedup`` metrics are gated against the 1.0
    floor iff the current document's ``host.cores`` metric exceeds 1,
    and informational otherwise; ``drift`` metrics are gated against the
    ``drift_tolerance`` band on the *current* value only (never compared
    to the committed number — it documents, it is not a target), with
    non-finite drift always failing.  Metrics present in the baseline but
    absent from the current run fail the gate (the benchmark lost
    coverage); new metrics are reported but pass.
    """
    if not math.isfinite(drift_tolerance) or drift_tolerance < 0:
        raise ValueError("drift_tolerance must be finite and >= 0")
    cmp = BaselineComparison(
        suite=current.suite, tolerance=tolerance, drift_tolerance=drift_tolerance
    )
    for name, meta in sorted(baseline.metrics.items()):
        cur = current.metrics.get(name)
        if cur is None:
            cmp.missing.append(name)
            continue
        delta = MetricDelta(
            name=name,
            kind=str(meta.get("kind", "count")),
            baseline=float(meta["value"]),
            current=float(cur["value"]),
        )
        if delta.kind == "wall":
            cmp.informational.append(delta)
            continue
        if delta.kind == "drift":
            # Machine-dependent: only the |current| <= band matters; the
            # boundary exactly met passes.  Non-finite always fails —
            # ``NaN > tol`` is falsy and would slip through a naive check.
            cmp.checked += 1
            if not math.isfinite(delta.current) or abs(delta.current) > drift_tolerance:
                cmp.regressions.append(delta)
            else:
                cmp.informational.append(delta)
            continue
        if delta.kind == "speedup":
            # Machine-dependent: the committed value is not a target.
            # Gate only the 1.0 floor (parallel must not be slower than
            # serial), and only when the *current* run's host reports
            # more than one core.
            cores = float(current.metrics.get("host.cores", {}).get("value", 1.0))
            if cores > 1.0:
                cmp.checked += 1
                if delta.current < 1.0:
                    cmp.regressions.append(
                        MetricDelta(delta.name, "speedup", 1.0, delta.current)
                    )
                    continue
            cmp.informational.append(delta)
            continue
        cmp.checked += 1
        change = delta.rel_change
        over = abs(change) > tolerance if symmetric else change > tolerance
        if over:
            cmp.regressions.append(delta)
    cmp.added = sorted(set(current.metrics) - set(baseline.metrics))
    return cmp


def _main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.baseline",
        description="Compare a BENCH_*.json run against a committed baseline.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    c = sub.add_parser("compare", help="gate a fresh run against a baseline")
    c.add_argument("current", help="BENCH_*.json emitted by the benchmark run")
    c.add_argument("baseline", help="committed baseline JSON")
    c.add_argument("--tolerance", type=float, default=0.15,
                   help="relative drift allowed on count/model metrics "
                        "(default 0.15)")
    c.add_argument("--one-sided", action="store_true",
                   help="only fail on increases (worse), not improvements")
    c.add_argument("--drift-tolerance", type=float, default=0.5,
                   help="|modeled-vs-measured| band allowed on drift "
                        "metrics (default 0.5)")
    args = parser.parse_args(argv)

    comparison = compare_baselines(
        PerfBaseline.from_file(args.current),
        PerfBaseline.from_file(args.baseline),
        tolerance=args.tolerance,
        symmetric=not args.one_sided,
        drift_tolerance=args.drift_tolerance,
    )
    print(comparison.report())
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    raise SystemExit(_main())
