"""Paper-vs-measured reporting for the benchmark harness.

Every benchmark prints the same kind of table the paper's evaluation
section shows: resources, published SYPD (where the paper gives one),
modeled/measured SYPD, and the point's role (anchor vs prediction).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["format_table", "format_curve_result", "banner"]


def banner(title: str, width: int = 78) -> str:
    bar = "=" * width
    return f"\n{bar}\n{title}\n{bar}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    floatfmt: str = "{:.3f}",
) -> str:
    """Plain-text table with right-aligned numeric columns."""

    def cell(x: object) -> str:
        if x is None:
            return "-"
        if isinstance(x, float):
            return floatfmt.format(x)
        return str(x)

    str_rows = [[cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, val in enumerate(row):
            widths[i] = max(widths[i], len(val))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_curve_result(result) -> str:
    """Render a :class:`repro.bench.scaling.CurveResult`."""
    headers = [result.curve.resource_unit, "paper SYPD", "model SYPD", "role"]
    rows: List[Tuple[object, ...]] = []
    for r, pub, mod, tag in result.rows():
        rows.append((f"{r:,.0f}", pub, mod, tag))
    lines = [
        banner(f"{result.curve.label}  [{result.curve.machine}, {result.curve.mode}]"),
        format_table(headers, rows),
        (
            f"calibration: compute_scale={result.compute_scale:.3f}, "
            f"serial={result.serial_seconds:.2f}s/day; "
            f"modeled end-to-end efficiency "
            f"{result.modeled_efficiency() * 100:.1f}% "
            f"(paper {result.curve.published_efficiency() * 100:.1f}%)"
        ),
    ]
    return "\n".join(lines)
