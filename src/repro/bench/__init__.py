"""Benchmark support: published reference data, scaling runners, reports,
and the JSON perf-baseline regression gate."""

from .baseline import (
    BaselineComparison,
    PerfBaseline,
    compare_baselines,
    emit,
    load_baseline,
)
from .paper_data import (
    CORES_PER_SUNWAY_PROCESS,
    HEADLINES,
    SOTA_MODELS,
    STRONG_SCALING_CURVES,
    WEAK_SCALING,
    ScalingCurve,
    ScalingPoint,
)
from .report import banner, format_curve_result, format_table
from .scaling import (
    CurveResult,
    coupled_curve,
    predict_pairing_sypd,
    evaluate_all_curves,
    evaluate_curve,
    resources_to_processes,
    weak_scaling_series,
    workload_for,
)

__all__ = [
    "ScalingPoint",
    "ScalingCurve",
    "STRONG_SCALING_CURVES",
    "WEAK_SCALING",
    "SOTA_MODELS",
    "HEADLINES",
    "CORES_PER_SUNWAY_PROCESS",
    "CurveResult",
    "evaluate_curve",
    "evaluate_all_curves",
    "weak_scaling_series",
    "coupled_curve",
    "predict_pairing_sypd",
    "resources_to_processes",
    "workload_for",
    "format_table",
    "format_curve_result",
    "banner",
    "PerfBaseline",
    "BaselineComparison",
    "compare_baselines",
    "load_baseline",
    "emit",
]
