"""Rotating, checksummed, atomically-written checkpoints.

The discipline the 40M-core coupled runs report as first-order
engineering (Duan et al.): a checkpoint that cannot half-exist, a
manifest that can prove every byte, and a rotation that always holds a
fallback.

* **Atomic**: a checkpoint is staged under a dot-prefixed temp directory
  and renamed into place only after its manifest (itself written
  temp-then-``os.replace``) covers every file — a crash at any instant
  leaves either the previous complete set or an ignorable temp.
* **Checksummed**: the manifest records size + crc32 of every file in the
  set (including the per-component ``restart.json`` manifests, which are
  themselves CRC'd per subfile — two independent layers).
* **Rotating**: the newest ``keep`` checkpoints survive; restore walks
  newest → oldest, skipping invalid sets and counting each skip as a
  ``resilience.checkpoint_fallbacks`` intervention.
* **Exclusive**: publish and prune hold an inter-process ``flock`` on a
  ``.lock`` file in the root, so two writers sharing one rotation (two
  service jobs, or a worker racing the reaper that requeued it) cannot
  interleave ``os.rename``/``rmtree`` and shred each other's sets.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import zlib
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

try:  # POSIX; the lock degrades to a no-op where flock is unavailable
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from .errors import CheckpointError

__all__ = ["CheckpointManager"]

_MANIFEST = "checkpoint.json"
_PREFIX = "ckpt-"
_LOCKFILE = ".lock"
_VERSION = 1


class CheckpointManager:
    """Owns one rotating checkpoint directory.

    ``to_file``/``restore_latest_valid`` (alias ``from_file``) take
    callables (e.g. ``model.save_restart`` / ``model.load_restart``) so
    the manager works for any component or the whole coupled system
    without importing them.  (The pre-unification ``save`` alias is gone;
    ``to_file``/``from_file`` is the one persistence idiom.)
    """

    def __init__(self, root: Union[str, Path], keep: int = 3, obs=None) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.root = Path(root)
        self.keep = keep
        self.obs = obs
        self.root.mkdir(parents=True, exist_ok=True)

    # -- write -------------------------------------------------------------

    def to_file(self, saver: Callable[[Path], None], step: int) -> Path:
        """Write checkpoint ``step`` atomically and prune the rotation.

        ``saver(directory)`` must materialize the state under the given
        (staging) directory; the manager then manifests and publishes it.
        """
        if self.obs is None:
            return self._save(saver, step)
        with self.obs.span("resilience.checkpoint", step=step):
            path = self._save(saver, step)
        self.obs.counter("resilience.checkpoints_written").inc()
        return path

    @contextlib.contextmanager
    def _locked(self):
        """Inter-process exclusive lock on the rotation (flock on
        ``<root>/.lock``).  Held across stage → manifest → publish →
        prune so concurrent writers serialize whole rotations; a holder
        dying (SIGKILL) releases the flock with its fd, so a crashed
        writer never wedges the rotation."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        fd = os.open(self.root / _LOCKFILE, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _save(self, saver: Callable[[Path], None], step: int) -> Path:
        final = self.root / f"{_PREFIX}{step:08d}"
        staging = self.root / f".tmp-{final.name}"
        with self._locked():
            if staging.exists():
                shutil.rmtree(staging)
            if final.exists():  # re-checkpoint of the same step: replace it
                shutil.rmtree(final)
            staging.mkdir(parents=True)
            saver(staging)
            files: Dict[str, Dict[str, int]] = {}
            for f in sorted(p for p in staging.rglob("*") if p.is_file()):
                rel = f.relative_to(staging).as_posix()
                data = f.read_bytes()
                files[rel] = {"size": len(data), "crc32": zlib.crc32(data)}
            manifest = {"version": _VERSION, "step": int(step), "files": files}
            tmp_manifest = staging / (_MANIFEST + ".tmp")
            tmp_manifest.write_text(
                json.dumps(manifest, indent=2, sort_keys=True)
            )
            os.replace(tmp_manifest, staging / _MANIFEST)
            os.rename(staging, final)
            self._prune()
        return final

    def _prune(self) -> None:
        ckpts = self.checkpoints()
        for old in ckpts[: -self.keep]:
            shutil.rmtree(old, ignore_errors=True)
        # Leftover staging directories from a crashed writer are garbage.
        for tmp in self.root.glob(f".tmp-{_PREFIX}*"):
            shutil.rmtree(tmp, ignore_errors=True)

    # -- read --------------------------------------------------------------

    def checkpoints(self) -> List[Path]:
        """Published checkpoints, oldest → newest."""
        return sorted(self.root.glob(f"{_PREFIX}*"))

    def latest(self) -> Optional[Path]:
        """Newest *published* checkpoint (no validation; use
        :meth:`latest_valid` to also prove the bytes), or None when the
        rotation is empty — the cheap "is there anything to resume
        from?" probe services ask before building a model."""
        ckpts = self.checkpoints()
        return ckpts[-1] if ckpts else None

    def step_of(self, path: Union[str, Path]) -> int:
        return int(Path(path).name[len(_PREFIX):])

    def validate(self, path: Union[str, Path]) -> None:
        """Raise :class:`CheckpointError` unless every manifested file
        exists with the recorded size and CRC (and nothing is missing
        from the manifest)."""
        path = Path(path)
        manifest_path = path / _MANIFEST
        try:
            manifest = json.loads(manifest_path.read_text())
        except OSError:
            raise CheckpointError("checkpoint has no manifest",
                                  path=path, reason="missing manifest") from None
        except json.JSONDecodeError as exc:
            raise CheckpointError("checkpoint manifest is not valid JSON",
                                  path=path, reason=str(exc)) from None
        if manifest.get("version") != _VERSION:
            raise CheckpointError(
                "checkpoint manifest has unsupported version",
                path=path, reason=f"version={manifest.get('version')!r}",
            )
        files = manifest.get("files", {})
        for rel, meta in files.items():
            f = path / rel
            try:
                data = f.read_bytes()
            except OSError:
                raise CheckpointError("checkpoint file missing",
                                      path=path, reason=rel) from None
            if len(data) != meta["size"]:
                raise CheckpointError(
                    "checkpoint file truncated",
                    path=path,
                    reason=f"{rel}: {len(data)} of {meta['size']} bytes",
                )
            if zlib.crc32(data) != meta["crc32"]:
                raise CheckpointError(
                    "checkpoint file fails its CRC (corrupt payload)",
                    path=path, reason=rel,
                )
        on_disk = {
            p.relative_to(path).as_posix()
            for p in path.rglob("*") if p.is_file()
        } - {_MANIFEST}
        extra = on_disk - set(files)
        if extra:
            raise CheckpointError(
                "checkpoint holds files the manifest does not cover",
                path=path, reason=", ".join(sorted(extra)[:3]),
            )

    def latest_valid(self) -> Optional[Path]:
        """Newest checkpoint that passes validation (None if none do);
        counts every invalid set skipped as a checkpoint fallback."""
        for ckpt in reversed(self.checkpoints()):
            try:
                self.validate(ckpt)
                return ckpt
            except CheckpointError:
                if self.obs is not None:
                    self.obs.counter("resilience.checkpoint_fallbacks").inc()
        return None

    def restore_latest_valid(self, loader: Callable[[Path], None]) -> Path:
        """Load the newest valid checkpoint via ``loader(directory)``.

        Walks newest → oldest; a set that fails validation *or* whose
        load raises a restart error is skipped (counted as a fallback)
        and the next older one is tried.  Raises :class:`CheckpointError`
        when nothing on disk survives.
        """
        from ..io.restart import RestartError

        span = (self.obs.span("resilience.restore")
                if self.obs is not None else _NULL_CTX)
        with span:
            tried = 0
            for ckpt in reversed(self.checkpoints()):
                tried += 1
                try:
                    self.validate(ckpt)
                    loader(ckpt)
                except (CheckpointError, RestartError):
                    if self.obs is not None:
                        self.obs.counter("resilience.checkpoint_fallbacks").inc()
                    continue
                if self.obs is not None:
                    self.obs.counter("resilience.restores").inc()
                return ckpt
        raise CheckpointError(
            "no valid checkpoint to restore from",
            path=self.root, reason=f"{tried} candidate(s) all failed",
        )

    def from_file(self, loader: Callable[[Path], None]) -> Path:
        """Alias for :meth:`restore_latest_valid` — the restore half of
        the repo-wide ``to_file``/``from_file`` persistence convention."""
        return self.restore_latest_valid(loader)


class _Null:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return None


_NULL_CTX = _Null()
