"""Per-column AI-physics guardrail with conventional fallback.

Hybrid physics-AI coupling needs guardrails around learned tendencies
(Zanna et al.): a CNN that emits NaN for one weird column, or a tendency
that would blow the state up, must not crash or poison the run.  The
:class:`GuardedPhysics` wrapper is a drop-in physics suite that

1. runs the primary suite (AI or conventional) on the full batch;
2. flags bad columns — any non-finite tendency/flux, or a tendency whose
   one-step increment exceeds the physical limits;
3. recomputes *only the flagged columns* with the conventional fallback
   suite and splices them in — unflagged columns keep the primary's
   output bit for bit;
4. counts every intervention (``resilience.physics_fallback_columns`` /
   ``..._events``) so silent degradation is impossible.

With no faults and a healthy suite the wrapper adds one detection pass
and zero state changes: output is bitwise identical to the bare suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..atm.columns import ColumnState
from ..atm.physics import ConventionalPhysics, PhysicsTendencies

__all__ = ["GuardrailLimits", "GuardedPhysics"]


@dataclass(frozen=True)
class GuardrailLimits:
    """Physical bounds on what one physics step may do to a column.

    Violating any of these marks the column as blown up.  Defaults are an
    order of magnitude beyond anything the conventional suite produces,
    so in-distribution columns are never touched.
    """

    max_dt_k: float = 30.0      # |ΔT| per step, K
    max_dq: float = 0.02        # |Δq| per step, kg/kg
    max_dwind: float = 50.0     # |Δu|, |Δv| per step, m/s
    max_flux: float = 5000.0    # |gsw|, |glw|, W/m^2


class GuardedPhysics:
    """Drop-in physics suite wrapping a primary with a guarded fallback.

    Parameters
    ----------
    primary:
        The suite being guarded (``AIPhysicsSuite`` or any object with
        ``compute(state, dt_s) -> PhysicsTendencies``).
    fallback:
        The conventional suite recomputing flagged columns (defaults to a
        fresh :class:`ConventionalPhysics`).
    limits:
        Blow-up thresholds; ``None`` uses :class:`GuardrailLimits`
        defaults.
    obs:
        Observability handle for the intervention counters.
    injector:
        Optional :class:`repro.resilience.faults.PhysicsFaultInjector`
        corrupting the primary's output before detection (chaos testing).
    step_fn:
        Returns the current model step for the injector's keying
        (installed by the driver; replay-stable across restarts).
    """

    def __init__(
        self,
        primary,
        fallback=None,
        limits: Optional[GuardrailLimits] = None,
        obs=None,
        injector=None,
        step_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        self.primary = primary
        self.fallback = fallback if fallback is not None else ConventionalPhysics()
        self.limits = limits if limits is not None else GuardrailLimits()
        self.obs = obs
        self.injector = injector
        self.step_fn = step_fn
        self.fallback_columns_total = 0

    def bind(self, space, metrics, registry=None) -> None:
        """Forward the pp-kernel binding both suites understand."""
        for suite in (self.primary, self.fallback):
            if hasattr(suite, "bind"):
                suite.bind(space, metrics, registry=registry)

    # -- detection ---------------------------------------------------------

    def _bad_columns(self, tend: PhysicsTendencies, dt_s: float) -> np.ndarray:
        """Boolean (ncol,) mask of columns needing the fallback."""
        lim = self.limits
        finite = (
            np.isfinite(tend.du).all(axis=1)
            & np.isfinite(tend.dv).all(axis=1)
            & np.isfinite(tend.dt).all(axis=1)
            & np.isfinite(tend.dq).all(axis=1)
            & np.isfinite(tend.gsw)
            & np.isfinite(tend.glw)
        )
        blowup = (
            (np.abs(tend.dt) * dt_s > lim.max_dt_k).any(axis=1)
            | (np.abs(tend.dq) * dt_s > lim.max_dq).any(axis=1)
            | (np.abs(tend.du) * dt_s > lim.max_dwind).any(axis=1)
            | (np.abs(tend.dv) * dt_s > lim.max_dwind).any(axis=1)
            | (np.abs(tend.gsw) > lim.max_flux)
            | (np.abs(tend.glw) > lim.max_flux)
        )
        return ~finite | blowup

    # -- the physics-suite protocol ---------------------------------------

    def compute(self, state: ColumnState, dt_s: float) -> PhysicsTendencies:
        tend = self.primary.compute(state, dt_s)
        if self.injector is not None:
            step = self.step_fn() if self.step_fn is not None else 0
            self.injector.apply(tend, step)
        bad = self._bad_columns(tend, dt_s)
        if not bad.any():
            return tend
        idx = np.flatnonzero(bad)
        sub = ColumnState(
            u=state.u[idx], v=state.v[idx], t=state.t[idx], q=state.q[idx],
            p=state.p, tskin=state.tskin[idx], coszr=state.coszr[idx],
        )
        fb = self.fallback.compute(sub, dt_s)
        for name in ("du", "dv", "dt", "dq", "gsw", "glw", "precip",
                     "cloud_fraction", "shflx", "lhflx"):
            getattr(tend, name)[idx] = getattr(fb, name)
        self.fallback_columns_total += int(idx.size)
        if self.obs is not None:
            self.obs.counter("resilience.physics_fallback_columns").inc(int(idx.size))
            self.obs.counter("resilience.physics_fallback_events").inc()
        return tend
