"""The resilience error taxonomy, in one import surface.

The concrete classes live with the layer that raises them — comm errors
in :mod:`repro.parallel.comm`, restart errors in :mod:`repro.io.restart`
— so low-level modules never import upward; this module re-exports them
next to the errors the resilience machinery itself raises
(:class:`CheckpointError`, :class:`WatchdogTimeout`).
"""

from __future__ import annotations

from ..io.restart import RestartError
from ..parallel.comm import (
    CommRevokedError,
    CommTimeoutError,
    CommTransientError,
    RankFailure,
)

__all__ = [
    "ResilienceError",
    "CheckpointError",
    "WatchdogTimeout",
    "WorkerKilled",
    "RestartError",
    "CommTransientError",
    "CommTimeoutError",
    "CommRevokedError",
    "RankFailure",
]


class ResilienceError(RuntimeError):
    """Base class for errors raised by the resilience machinery itself."""


class CheckpointError(ResilienceError):
    """A checkpoint failed validation, or no valid checkpoint exists."""

    def __init__(self, message: str, *, path=None, reason: str | None = None) -> None:
        detail = message
        if path is not None:
            detail += f" [checkpoint={path}]"
        if reason is not None:
            detail += f" [reason={reason}]"
        super().__init__(detail)
        self.path = None if path is None else str(path)
        self.reason = reason


class WorkerKilled(ResilienceError):
    """A scenario-service worker died (simulated SIGKILL) while driving
    a job — the service-level analogue of :class:`RankFailure`.  The
    scheduler's reaper classifies it as an *interruption* (requeue and
    resume from the job's newest checkpoint), never as a job failure."""

    def __init__(self, job_id: str, coupling: int) -> None:
        super().__init__(
            f"worker killed while driving job {job_id!r} at coupling "
            f"{coupling}"
        )
        self.job_id = job_id
        self.coupling = coupling


class WatchdogTimeout(ResilienceError):
    """A task domain exceeded its watchdog budget and was abandoned with
    a diagnostic instead of deadlocking the driver."""

    def __init__(self, domain: str, timeout_s: float) -> None:
        super().__init__(
            f"task domain {domain!r} did not finish within its "
            f"{timeout_s:g}s watchdog budget — aborting the wait instead "
            "of deadlocking (dead rank or hung communication in that "
            "domain?)"
        )
        self.domain = domain
        self.timeout_s = timeout_s
