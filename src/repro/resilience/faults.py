"""Deterministic fault injection: the FaultPlan and its injectors.

A :class:`FaultPlan` is a seeded, JSON-serializable description of every
fault a chaos run will inject:

* **comm faults** — transient send failures (succeed on retry), dropped
  or bit-corrupted messages, and rank kills, executed inside the
  simulated MPI runtime by :class:`CommFaultInjector`;
* **checkpoint faults** — truncation, bit-flips, and stale manifest
  versions applied to restart sets on disk by
  :func:`corrupt_checkpoint`;
* **physics faults** — NaN or blow-up tendencies injected into the
  (AI) physics output by :class:`PhysicsFaultInjector`, keyed on the
  atmosphere *model step* so a replay after checkpoint recovery
  re-injects the identical faults (the property the chaos harness's
  bitwise comparison relies on);
* **service faults** — ``worker_kill`` entries, coupling-keyed and
  job-scoped (the service-layer analogue of PR 8's ``member`` key),
  executed by :class:`ServiceFaultInjector` inside the
  :mod:`repro.serve` job scheduler: the targeted job's worker dies
  mid-run and the reaper must requeue and resume it.

Everything is deterministic via :mod:`repro.utils.rng`; nothing here is
imported by the runtime unless a plan is actually installed.
"""

from __future__ import annotations

import itertools
import json
import re
import threading
import zlib
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..parallel.comm import CommTransientError, RankFailure
from ..utils.rng import seeded
from .errors import WorkerKilled

__all__ = [
    "CommFault",
    "CheckpointFault",
    "PhysicsFault",
    "ServiceFault",
    "FaultPlan",
    "FaultPlanError",
    "CommFaultInjector",
    "PhysicsFaultInjector",
    "ServiceFaultInjector",
    "corrupt_checkpoint",
]


class FaultPlanError(ValueError):
    """A fault plan failed validation; names the offending key/path so a
    malformed JSON file is diagnosable instead of surfacing as a raw
    ``KeyError``/``TypeError`` deep in the injectors.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the old unknown-key errors keep working.
    """

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"fault plan: {message} [at {path}]")
        self.path = path

_COMM_KINDS = ("transient", "drop", "corrupt", "kill")
_CKPT_KINDS = ("bitflip", "truncate", "stale")
_PHYS_KINDS = ("nan", "blowup")
_SERVICE_KINDS = ("worker_kill",)


@dataclass(frozen=True)
class CommFault:
    """One fault on the simulated interconnect.

    ``match`` selects which send on the (src, dst) edge is hit (0-based,
    counted per edge); ``times`` is how many consecutive attempts of that
    send fail for ``transient`` faults (a retry beyond that succeeds).
    ``kill`` faults ignore the edge and kill ``rank`` at its
    ``after_ops``-th comm operation.

    A non-None ``member`` scopes the fault to ONE ensemble member: the
    fleet supervisor injects it at that member's fault boundary instead
    of the simulated interconnect — ``match`` then selects the member's
    coupling index, ``times`` how many consecutive couplings time out
    (``transient`` surfaces as a comm timeout, ``kill`` as a rank
    failure; ``drop``/``corrupt`` are payload-level and cannot be member
    scoped).  Member-less faults keep their exact interconnect meaning.
    """

    kind: str
    src: int = 0
    dst: int = 0
    match: int = 0
    times: int = 1
    rank: int = 0
    after_ops: int = 0
    member: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _COMM_KINDS:
            raise ValueError(f"unknown comm fault kind {self.kind!r}; "
                             f"choose from {_COMM_KINDS}")
        _check_member(self.member)
        if self.member is not None and self.kind not in ("transient", "kill"):
            raise ValueError(
                f"member scoping supports only transient and kill comm "
                f"faults, got {self.kind!r}"
            )


@dataclass(frozen=True)
class CheckpointFault:
    """Corruption applied to one checkpoint directory at crash time.

    ``index`` selects the checkpoint in chronological order (negative
    indexes from the newest, Python-style: -1 = latest).
    """

    kind: str
    index: int = -1

    def __post_init__(self) -> None:
        if self.kind not in _CKPT_KINDS:
            raise ValueError(f"unknown checkpoint fault kind {self.kind!r}; "
                             f"choose from {_CKPT_KINDS}")


@dataclass(frozen=True)
class PhysicsFault:
    """Corrupt the physics suite's output at one atmosphere model step.

    Either list explicit ``columns``, or give ``n_columns`` and let the
    plan's seed pick them deterministically.

    A non-None ``member`` scopes the fault to ONE ensemble member: the
    fleet supervisor corrupts that member's atmosphere state once when
    its model-step counter reaches ``step`` (member-less faults keep
    their exact injector meaning, firing in every model the plan is
    installed into).
    """

    kind: str
    step: int
    columns: Tuple[int, ...] = ()
    n_columns: int = 0
    member: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _PHYS_KINDS:
            raise ValueError(f"unknown physics fault kind {self.kind!r}; "
                             f"choose from {_PHYS_KINDS}")
        if not self.columns and self.n_columns <= 0:
            raise ValueError("physics fault needs columns or n_columns > 0")
        _check_member(self.member)


@dataclass(frozen=True)
class ServiceFault:
    """Kill one scenario-service worker mid-job (simulated SIGKILL).

    Coupling-keyed and job-scoped, mirroring PR 8's member-scoped
    faults: the fault fires when the job named by ``job`` reaches
    coupling index ``coupling`` (``job=None`` scopes it to *every*
    job).  One-shot per scheduler run — after the reaper requeues the
    job and the resumed attempt replays the same coupling, the fault
    does not re-fire, so every chaos experiment terminates.
    """

    kind: str
    coupling: int = 0
    job: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _SERVICE_KINDS:
            raise ValueError(f"unknown service fault kind {self.kind!r}; "
                             f"choose from {_SERVICE_KINDS}")
        if not isinstance(self.coupling, int) or isinstance(self.coupling, bool) \
                or self.coupling < 0:
            raise ValueError(
                f"coupling must be a non-negative integer, got {self.coupling!r}"
            )
        if self.job is not None and not isinstance(self.job, str):
            raise ValueError(f"job must be a string or null, got {self.job!r}")


def _check_member(member: Optional[int]) -> None:
    if member is None:
        return
    if not isinstance(member, int) or isinstance(member, bool) or member < 0:
        raise ValueError(
            f"member must be a non-negative integer, got {member!r}"
        )


@dataclass
class FaultPlan:
    """The complete, seeded description of a chaos experiment."""

    seed: int = 0
    comm: List[CommFault] = field(default_factory=list)
    checkpoints: List[CheckpointFault] = field(default_factory=list)
    physics: List[PhysicsFault] = field(default_factory=list)
    #: Service-level faults (``worker_kill``) the job scheduler injects.
    service: List[ServiceFault] = field(default_factory=list)
    #: Coupling index at which the chaos harness simulates a crash
    #: (None = let the harness pick one past the first checkpoint).
    crash_at_coupling: Optional[int] = None

    # -- (de)serialization -------------------------------------------------

    @staticmethod
    def from_dict(data: Dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError("$", f"plan must be an object, got {type(data).__name__}")
        known = {"seed", "comm", "checkpoints", "physics", "service",
                 "crash_at_coupling"}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                "$", f"unknown fault-plan keys: {sorted(unknown)}"
            )
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise FaultPlanError("$.seed", f"seed must be an integer, got {seed!r}")
        crash = data.get("crash_at_coupling")
        if crash is not None and (not isinstance(crash, int) or isinstance(crash, bool)):
            raise FaultPlanError(
                "$.crash_at_coupling",
                f"crash_at_coupling must be an integer or null, got {crash!r}",
            )
        return FaultPlan(
            seed=seed,
            comm=_parse_entries("comm", data.get("comm", []), CommFault),
            checkpoints=_parse_entries(
                "checkpoints", data.get("checkpoints", []), CheckpointFault
            ),
            physics=_parse_entries(
                "physics", data.get("physics", []), PhysicsFault,
                transform=lambda f: {**f, "columns": tuple(f.get("columns", ()))},
            ),
            service=_parse_entries(
                "service", data.get("service", []), ServiceFault
            ),
            crash_at_coupling=crash,
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(
                f"$ (line {exc.lineno}, column {exc.colno})",
                f"not valid JSON: {exc.msg}",
            ) from None
        return FaultPlan.from_dict(data)

    @staticmethod
    def from_file(path: Union[str, Path]) -> "FaultPlan":
        return FaultPlan.from_json(Path(path).read_text())

    def to_file(self, path: Union[str, Path]) -> Path:
        """Write the plan as JSON (the inverse of :meth:`from_file`)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    def to_json(self) -> str:
        data = asdict(self)
        data["physics"] = [
            {**f, "columns": list(f["columns"])} for f in data["physics"]
        ]
        return json.dumps(data, indent=2, sort_keys=True)

    @property
    def n_faults(self) -> int:
        return (len(self.comm) + len(self.checkpoints) + len(self.physics)
                + len(self.service))

    # -- ensemble member scoping -------------------------------------------

    @property
    def member_scoped(self) -> bool:
        """True when any comm/physics fault targets one ensemble member."""
        return any(
            f.member is not None
            for f in itertools.chain(self.comm, self.physics)
        )

    def member_targets(self) -> List[int]:
        """Sorted member indices any fault in the plan targets."""
        return sorted({
            f.member
            for f in itertools.chain(self.comm, self.physics)
            if f.member is not None
        })

    def for_member(self, k: int) -> Tuple[List[PhysicsFault], List["CommFault"]]:
        """(physics, comm) faults scoped to member ``k``."""
        return (
            [f for f in self.physics if f.member == k],
            [f for f in self.comm if f.member == k],
        )

    def without_members(self) -> "FaultPlan":
        """The plan with every member-scoped fault removed — what global
        (interconnect / per-model) injectors should consume, so a mixed
        plan's member faults never leak into every member."""
        return FaultPlan(
            seed=self.seed,
            comm=[f for f in self.comm if f.member is None],
            checkpoints=list(self.checkpoints),
            physics=[f for f in self.physics if f.member is None],
            service=list(self.service),
            crash_at_coupling=self.crash_at_coupling,
        )


def _parse_entries(section: str, entries, cls, transform=None) -> List:
    """Build fault dataclasses from a plan section, converting every
    malformed entry into a :class:`FaultPlanError` naming its path."""
    if not isinstance(entries, (list, tuple)):
        raise FaultPlanError(
            f"$.{section}",
            f"must be a list of objects, got {type(entries).__name__}",
        )
    out: List = []
    valid = {f.name for f in dataclass_fields(cls)}
    for i, entry in enumerate(entries):
        path = f"$.{section}[{i}]"
        if not isinstance(entry, dict):
            raise FaultPlanError(
                path, f"must be an object, got {type(entry).__name__}"
            )
        extra = set(entry) - valid
        if extra:
            raise FaultPlanError(
                f"{path}.{sorted(extra)[0]}",
                f"unknown key(s) {sorted(extra)} (valid: {sorted(valid)})",
            )
        payload = transform(entry) if transform is not None else entry
        for f in dataclass_fields(cls):
            if f.name not in payload:
                continue
            v = payload[f.name]
            if f.type in ("int", int) and (
                not isinstance(v, int) or isinstance(v, bool)
            ):
                raise FaultPlanError(
                    f"{path}.{f.name}",
                    f"{f.name} must be an integer, got {v!r}",
                )
            if f.type in ("str", str) and not isinstance(v, str):
                raise FaultPlanError(
                    f"{path}.{f.name}",
                    f"{f.name} must be a string, got {v!r}",
                )
        try:
            out.append(cls(**payload))
        except (ValueError, TypeError) as exc:
            key = _error_key(cls, exc)
            raise FaultPlanError(f"{path}{key}", str(exc)) from None
    return out


def _error_key(cls, exc: BaseException) -> str:
    """``.{field}`` for the dataclass field a validation message names
    (longest word-boundary match wins, so ``n_columns`` beats
    ``columns``), or ``""`` when no field is identifiable."""
    msg = str(exc)
    hits = [
        f.name for f in dataclass_fields(cls)
        if re.search(rf"\b{re.escape(f.name)}\b", msg)
    ]
    return f".{max(hits, key=len)}" if hits else ""


class CommFaultInjector:
    """Executes a plan's comm faults inside the simulated runtime.

    Installed via ``SimWorld(n, faults=injector)``; the runtime calls
    ``on_send``/``on_recv`` (see :class:`repro.parallel.comm.SimWorld`).
    Thread-safe: ranks are threads.  A live ``obs`` handle counts every
    injection under ``resilience.faults_injected``.
    """

    def __init__(self, plan: FaultPlan, obs=None) -> None:
        self._plan = plan
        # Member-scoped faults belong to the fleet supervisor's boundary,
        # not the interconnect; a mixed plan must not leak them here.
        self._comm = [f for f in plan.comm if f.member is None]
        self._obs = obs
        self._lock = threading.Lock()
        self._edge_sends: Dict[Tuple[int, int], int] = {}
        self._rank_ops: Dict[int, int] = {}
        self._remaining: Dict[int, int] = {
            i: f.times for i, f in enumerate(self._comm) if f.kind == "transient"
        }
        self._fired: set = set()
        self._kills = {f.rank: f.after_ops for f in self._comm if f.kind == "kill"}
        self.injected = 0

    def _count(self) -> None:
        self.injected += 1
        if self._obs is not None:
            self._obs.counter("resilience.faults_injected").inc()

    def _check_kill(self, rank: int, op: str) -> None:
        budget = self._kills.get(rank)
        if budget is None:
            return
        done = self._rank_ops.get(rank, 0)
        if done >= budget:
            del self._kills[rank]
            self._count()
            raise RankFailure(rank, op)
        self._rank_ops[rank] = done + 1

    def on_send(self, src: int, dst: int, tag: int, payload):
        """May raise, corrupt (returns a new payload), or drop (returns
        None); otherwise returns the payload unchanged."""
        with self._lock:
            self._check_kill(src, f"send(dst={dst}, tag={tag})")
            edge = (src, dst)
            seq = self._edge_sends.get(edge, 0)
            for i, f in enumerate(self._comm):
                if f.kind == "kill" or (f.src, f.dst) != edge or f.match != seq:
                    continue
                if f.kind == "transient":
                    left = self._remaining.get(i, 0)
                    if left > 0:
                        self._remaining[i] = left - 1
                        self._count()
                        # Do NOT advance the edge counter: the retry is
                        # attempt seq again, failing until times exhausted.
                        raise CommTransientError(src, dst, tag,
                                                 attempt=f.times - left)
                elif i not in self._fired:
                    self._fired.add(i)
                    self._edge_sends[edge] = seq + 1
                    self._count()
                    if f.kind == "drop":
                        return None
                    return _bitflip_payload(
                        payload, seeded("comm-corrupt", self._plan.seed, i)
                    )
            self._edge_sends[edge] = seq + 1
            return payload

    def on_recv(self, rank: int, source, tag: int) -> None:
        with self._lock:
            self._check_kill(rank, f"recv(src={source}, tag={tag})")


def _bitflip_payload(payload, rng: np.random.Generator):
    """Flip one bit of an ndarray payload (other payload types pass
    through untouched — the rearranger only moves arrays)."""
    if not isinstance(payload, np.ndarray) or payload.nbytes == 0:
        return payload
    corrupted = payload.copy()
    raw = corrupted.view(np.uint8).reshape(-1)
    pos = int(rng.integers(0, raw.size))
    raw[pos] ^= np.uint8(1 << int(rng.integers(0, 8)))
    return corrupted


class PhysicsFaultInjector:
    """Applies a plan's physics faults to a tendencies object in place.

    Keyed on the atmosphere model step (monotone, restored by restart),
    so replays after checkpoint recovery re-inject identically.  Returns
    the number of columns corrupted at this step.
    """

    def __init__(self, plan: FaultPlan, obs=None) -> None:
        self._by_step: Dict[int, List[PhysicsFault]] = {}
        for f in plan.physics:
            if f.member is not None:
                # Member-scoped faults fire at the fleet supervisor's
                # boundary, never in a per-model injector.
                continue
            self._by_step.setdefault(f.step, []).append(f)
        self._seed = plan.seed
        self._obs = obs

    @property
    def steps(self) -> List[int]:
        return sorted(self._by_step)

    def apply(self, tend, step: int) -> int:
        faults = self._by_step.get(step)
        if not faults:
            return 0
        ncol = tend.dt.shape[0]
        hit: set = set()
        for f in faults:
            if f.columns:
                cols = [c for c in f.columns if 0 <= c < ncol]
            else:
                rng = seeded("physics-fault", self._seed, f.kind, f.step)
                cols = list(rng.choice(ncol, size=min(f.n_columns, ncol),
                                       replace=False))
            idx = np.asarray(cols, dtype=int)
            if f.kind == "nan":
                tend.dt[idx, :] = np.nan
                tend.dq[idx, :] = np.nan
            else:  # blowup: far past any physical tendency magnitude
                tend.dt[idx, :] = 1.0e6
                tend.du[idx, :] = 1.0e6
            hit.update(cols)
        if self._obs is not None and hit:
            self._obs.counter("resilience.faults_injected").inc(len(faults))
        return len(hit)


class ServiceFaultInjector:
    """Executes a plan's ``worker_kill`` faults inside the job scheduler.

    The worker driving a job calls :meth:`check` once per coupling
    (before stepping); a matching fault raises
    :class:`~repro.resilience.errors.WorkerKilled`, which the scheduler
    classifies as an interruption — requeue and resume, never a job
    failure.  One-shot per injector instance: the resumed attempt
    replays the same coupling without re-dying, so chaos runs terminate.
    Thread-safe (scheduler workers may be threads).
    """

    def __init__(self, plan: FaultPlan, obs=None) -> None:
        self._faults = list(plan.service)
        self._fired: set = set()
        self._obs = obs
        self._lock = threading.Lock()
        self.injected = 0

    def check(self, job_id: str, coupling: int) -> None:
        """Raise :class:`WorkerKilled` when a not-yet-fired fault
        targets ``job_id`` (or every job) at this coupling."""
        with self._lock:
            for i, f in enumerate(self._faults):
                if i in self._fired:
                    continue
                if f.job is not None and f.job != job_id:
                    continue
                if f.coupling != coupling:
                    continue
                self._fired.add(i)
                self.injected += 1
                if self._obs is not None:
                    self._obs.counter("resilience.faults_injected").inc()
                raise WorkerKilled(job_id, coupling)


def corrupt_checkpoint(
    path: Union[str, Path],
    kind: str,
    rng: Optional[np.random.Generator] = None,
) -> Path:
    """Damage a checkpoint/restart directory on disk, one of the three
    corruption modes the resilience layer must detect:

    * ``bitflip`` — XOR one bit of one subfile payload;
    * ``truncate`` — chop a subfile short;
    * ``stale`` — rewrite every manifest's version to an unsupported one.

    Returns the file actually damaged.
    """
    if kind not in _CKPT_KINDS:
        raise ValueError(f"unknown corruption kind {kind!r}; "
                         f"choose from {_CKPT_KINDS}")
    path = Path(path)
    rng = rng if rng is not None else seeded("corrupt-checkpoint", str(path), kind)
    if kind == "stale":
        manifests = sorted(path.rglob("*.json"))
        if not manifests:
            raise FileNotFoundError(f"no manifest under {path}")
        for m in manifests:
            data = json.loads(m.read_text())
            data["version"] = 99
            m.write_text(json.dumps(data))
        return manifests[0]
    subfiles = sorted(path.rglob("*.bin"))
    if not subfiles:
        raise FileNotFoundError(f"no subfiles under {path}")
    victim = subfiles[int(rng.integers(0, len(subfiles)))]
    raw = bytearray(victim.read_bytes())
    if kind == "truncate":
        victim.write_bytes(bytes(raw[: max(1, len(raw) // 2)]))
    else:  # bitflip
        pos = int(rng.integers(0, len(raw)))
        raw[pos] ^= 1 << int(rng.integers(0, 8))
        victim.write_bytes(bytes(raw))
    return victim


def file_crc(path: Union[str, Path]) -> int:
    """crc32 of a file's bytes (the checksum the manifests store)."""
    return zlib.crc32(Path(path).read_bytes())
