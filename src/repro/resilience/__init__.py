"""Fault injection + resilience: survive rank faults, corrupt restarts,
and AI-physics blow-ups.

Two halves, per the production discipline the paper's companion efforts
report (Duan et al. on 40M-core failure handling, Zanna et al. on
guardrails around learned physics):

* **Fault injection** — a seeded, JSON-serializable :class:`FaultPlan`
  that can kill ranks, glitch/drop/corrupt messages in the simulated
  runtime, damage restart sets on disk, and poison AI-physics output;
* **Resilience machinery** — checksummed atomic rotating checkpoints
  (:class:`CheckpointManager`), retry-with-backoff
  (:func:`retry_with_backoff`) and structured comm timeouts, a task-
  domain watchdog, and the per-column physics guardrail
  (:class:`GuardedPhysics`).

Everything is opt-in: with :class:`ResilienceConfig` disabled (the
default) the driver takes the pre-resilience code paths and adds zero
messages to the :class:`~repro.parallel.comm.TrafficLedger`.

The chaos harness lives in :mod:`repro.resilience.chaos` (imported
lazily here — it drives the coupled model, which itself imports this
package).
"""

from __future__ import annotations

from .checkpoint import CheckpointManager
from .config import ResilienceConfig
from .elastic import (
    ElasticFieldRun,
    ElasticRunResult,
    RecoveryEvent,
    RecoveryPolicy,
)
from .errors import (
    CheckpointError,
    CommRevokedError,
    CommTimeoutError,
    CommTransientError,
    RankFailure,
    ResilienceError,
    RestartError,
    WatchdogTimeout,
    WorkerKilled,
)
from .faults import (
    CheckpointFault,
    CommFault,
    CommFaultInjector,
    FaultPlan,
    FaultPlanError,
    PhysicsFault,
    PhysicsFaultInjector,
    ServiceFault,
    ServiceFaultInjector,
    corrupt_checkpoint,
)
from .guardrail import GuardedPhysics, GuardrailLimits
from .retry import RetryPolicy, retry_with_backoff
from .supervisor import (
    FleetSupervisor,
    MemberEvent,
    MemberPolicy,
    PhysicsBlowupError,
    classify_failure,
)

__all__ = [
    "ResilienceConfig",
    "ResilienceError",
    "CheckpointError",
    "WatchdogTimeout",
    "RestartError",
    "CommTransientError",
    "CommTimeoutError",
    "CommRevokedError",
    "RankFailure",
    "RecoveryPolicy",
    "RecoveryEvent",
    "ElasticFieldRun",
    "ElasticRunResult",
    "FaultPlan",
    "FaultPlanError",
    "CommFault",
    "CheckpointFault",
    "PhysicsFault",
    "ServiceFault",
    "CommFaultInjector",
    "PhysicsFaultInjector",
    "ServiceFaultInjector",
    "WorkerKilled",
    "corrupt_checkpoint",
    "CheckpointManager",
    "GuardedPhysics",
    "GuardrailLimits",
    "RetryPolicy",
    "retry_with_backoff",
    "FleetSupervisor",
    "MemberPolicy",
    "MemberEvent",
    "PhysicsBlowupError",
    "classify_failure",
    "run_chaos",
    "ChaosReport",
]


def __getattr__(name: str):
    # Lazy: chaos imports repro.esm, which imports this package.
    if name in ("run_chaos", "ChaosReport"):
        from . import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
