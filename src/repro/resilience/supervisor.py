"""Fleet supervisor: member-level fault isolation for ensemble runs.

PR 7's :class:`~repro.esm.ensemble.EnsembleRun` steps N coupled members
in one process with zero fault boundary — any member exception kills the
whole fleet.  The :class:`FleetSupervisor` is that boundary: it wraps
every member's coupling step, classifies what went wrong into a
structured :class:`MemberEvent`, and applies a per-member
:class:`MemberPolicy`:

* ``fail_fast`` — record the event and re-raise the original exception
  unchanged (the pre-supervisor behavior, and the default);
* ``quarantine`` — remove the member from the fleet mid-run.  The
  lockstep driver and the batched-physics stack shrink dynamically, and
  the survivors' trajectories stay **bitwise identical** to a fleet that
  never contained the failed member's faults (column independence + the
  fixed per-row GEMM reduction order make the batched call insensitive
  to which members share it);
* ``restart`` — roll the member back to its newest valid rotating
  checkpoint (its own :class:`~repro.resilience.checkpoint.\
CheckpointManager` under ``member<k>/``), replay it forward to the fleet
  clock *solo* (the lockstep hook is detached during replay; the batched
  == sequential contract makes the replay bitwise-equal to the fleet
  path), and rejoin it to lockstep bitwise-identical to a never-faulted
  twin.  A member that exhausts ``restart_max`` restarts — or whose
  replay itself fails — escalates to quarantine.

Member-scoped faults from a :class:`~repro.resilience.faults.FaultPlan`
(entries with a ``member`` key) are injected here, at the fault
boundary: physics faults corrupt the member's atmosphere state once at
their model step, comm faults surface as timeouts/rank failures at the
member's coupling.  Injection is one-shot — a restart replays *clean*,
which is exactly what makes the never-faulted-twin comparison exact.

Everything is observable: ``ensemble.supervisor.*`` counters (events,
quarantines, restarts, escalations, replayed couplings, injected
faults) and an ``ensemble.supervisor.alive`` gauge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..io.restart import RestartError
from ..parallel.comm import (
    CommRevokedError,
    CommTimeoutError,
    CommTransientError,
    RankFailure,
)
from ..utils.rng import seeded
from .errors import CheckpointError, ResilienceError, WatchdogTimeout
from .faults import CommFault, FaultPlan, PhysicsFault

__all__ = [
    "MemberPolicy",
    "MemberEvent",
    "PhysicsBlowupError",
    "FleetSupervisor",
    "classify_failure",
]


class MemberPolicy(Enum):
    """What the supervisor does with one member's failure."""

    FAIL_FAST = "fail_fast"
    QUARANTINE = "quarantine"
    RESTART = "restart"

    @staticmethod
    def parse(name: str) -> "MemberPolicy":
        try:
            return MemberPolicy(name)
        except ValueError:
            raise ValueError(
                f"unknown member_policy {name!r}; choose from "
                f"{tuple(p.value for p in MemberPolicy)}"
            ) from None


class PhysicsBlowupError(ResilienceError):
    """A member's post-step health check found a poisoned atmosphere
    (non-finite state or an unphysical temperature magnitude)."""

    def __init__(self, member: int, coupling: int, detail: str) -> None:
        super().__init__(
            f"member {member} blew up at coupling {coupling}: {detail}"
        )
        self.member = member
        self.coupling = coupling
        self.detail = detail


#: Failure classes the supervisor contains; anything else (a programming
#: error, KeyboardInterrupt, ...) propagates untouched.
FAULT_TYPES: Tuple[type, ...] = (
    FloatingPointError,
    ResilienceError,       # PhysicsBlowupError, CheckpointError, WatchdogTimeout
    RestartError,
    CommTransientError,
    CommTimeoutError,
    CommRevokedError,
    RankFailure,
)


def classify_failure(exc: BaseException) -> str:
    """Map an exception to the supervisor's event taxonomy."""
    if isinstance(exc, (PhysicsBlowupError, FloatingPointError)):
        return "physics_blowup"
    if isinstance(exc, WatchdogTimeout):
        return "watchdog"
    if isinstance(exc, (CheckpointError, RestartError)):
        return "checkpoint_corruption"
    if isinstance(exc, (RankFailure, CommRevokedError)):
        return "rank_failure"
    if isinstance(exc, (CommTimeoutError, CommTransientError)):
        return "comm_timeout"
    return "unknown"


@dataclass
class MemberEvent:
    """One supervised member failure and what was done about it."""

    member: int
    coupling: int
    #: Taxonomy bucket from :func:`classify_failure`.
    kind: str
    #: Exception class name (the full message lands in ``detail``).
    error: str
    #: ``fail_fast`` | ``quarantine`` | ``restart`` | ``escalate``.
    action: str
    detail: str = ""
    replayed_couplings: int = 0
    restored_from: Optional[str] = None


class FleetSupervisor:
    """The per-coupling fault boundary around every ensemble member.

    Built by :class:`~repro.esm.ensemble.EnsembleRun` when resilience is
    enabled; drives one fleet coupling via :meth:`step_fleet`.
    """

    #: Post-step health check: any |T| beyond this (K) is a blow-up.
    BLOWUP_T = 1.0e4

    def __init__(
        self,
        members: Sequence[object],
        policy: MemberPolicy,
        *,
        restart_max: int = 2,
        backoff_s: float = 0.0,
        lockstep=None,
        plan: Optional[FaultPlan] = None,
        obs=None,
    ) -> None:
        from ..obs import NULL_OBS

        self.members = list(members)
        self.policy = policy
        self.restart_max = restart_max
        self.backoff_s = backoff_s
        self.lockstep = lockstep
        self.obs = obs if obs is not None else NULL_OBS
        self.alive: List[bool] = [True] * len(self.members)
        self.restarts_used: List[int] = [0] * len(self.members)
        self.events: List[MemberEvent] = []
        self.couplings = 0
        self.quarantines = 0
        self.restarts = 0
        self.escalations = 0
        self.replayed_total = 0
        self.faults_injected = 0
        self._seed = plan.seed if plan is not None else 0
        #: One-shot member-scoped fault queues (popped when fired, so a
        #: restart replays clean and the never-faulted twin is exact).
        self._phys_pending: Dict[int, List[PhysicsFault]] = {}
        self._comm_pending: Dict[int, List[CommFault]] = {}
        if plan is not None:
            for k in plan.member_targets():
                if k >= len(self.members):
                    raise ValueError(
                        f"fault plan targets member {k} but the ensemble "
                        f"has {len(self.members)} member(s)"
                    )
                phys, comm = plan.for_member(k)
                if phys:
                    self._phys_pending[k] = list(phys)
                if comm:
                    self._comm_pending[k] = list(comm)
        if self.policy is MemberPolicy.RESTART:
            for k, m in enumerate(self.members):
                if getattr(m, "checkpoints", None) is None:
                    raise ValueError(
                        "member_policy='restart' needs a rollback target: "
                        "set resilience.checkpoint_every/checkpoint_dir "
                        f"(member {k} has no checkpoint manager)"
                    )

    # -- fleet status ------------------------------------------------------

    @property
    def n_alive(self) -> int:
        return sum(self.alive)

    @property
    def quarantined(self) -> List[int]:
        return [k for k, ok in enumerate(self.alive) if not ok]

    def alive_members(self) -> List[Tuple[int, object]]:
        return [
            (k, m) for k, m in enumerate(self.members) if self.alive[k]
        ]

    # -- the supervised coupling -------------------------------------------

    def step_fleet(self) -> None:
        """One coupling interval for every alive member, inside the fault
        boundary; failures are handled after every member attempted its
        step, so a restarted member replays to a settled fleet clock."""
        target = self.couplings + 1
        roster = self.alive_members()
        if self.policy is MemberPolicy.RESTART and self.couplings == 0:
            # Seed checkpoint: a failure before the first cadence interval
            # needs a rollback target (same-step saves replace, so this is
            # idempotent across re-entry).
            for k, m in roster:
                if m.n_couplings == 0:
                    m.checkpoint()
        for k, m in roster:
            self._inject_physics(k, m)
        failures: List[Tuple[int, object, BaseException]] = []
        for k, m in roster:
            try:
                self._raise_comm(k, m)
                m.step_coupling()
                self._health_check(k, m)
            except FAULT_TYPES as exc:
                if self.policy is MemberPolicy.FAIL_FAST:
                    self._record(MemberEvent(
                        member=k, coupling=m.n_couplings,
                        kind=classify_failure(exc),
                        error=type(exc).__name__,
                        action="fail_fast", detail=str(exc),
                    ))
                    raise
                failures.append((k, m, exc))
        for k, m, exc in failures:
            self._handle_failure(k, m, exc, target)
        for k, m in self.alive_members():
            ckpts = getattr(m, "checkpoints", None)
            every = m.config.resilience.checkpoint_every
            if ckpts is not None and every and m.n_couplings % every == 0:
                m.checkpoint()
        self.couplings = target
        if not any(self.alive):
            raise ResilienceError(
                f"entire fleet quarantined by coupling {target}: "
                f"{len(self.members)} member(s) failed and no survivor "
                "remains to continue the run"
            )

    # -- member-scoped fault injection -------------------------------------

    def _inject_physics(self, k: int, m) -> None:
        """Corrupt member ``k``'s atmosphere state for any scoped physics
        fault whose model step falls inside this coupling (one-shot)."""
        pending = self._phys_pending.get(k)
        if not pending:
            return
        spc = m.config.atm_steps_per_coupling
        lo = m.atm.n_steps
        for f in [f for f in pending if lo <= f.step < lo + spc]:
            pending.remove(f)
            t = np.array(m.atm.t_col, dtype=float)
            ncol = t.shape[0]
            if f.columns:
                cols = [c for c in f.columns if 0 <= c < ncol]
            else:
                rng = seeded("physics-fault", self._seed, f.kind, f.step)
                cols = list(rng.choice(ncol, size=min(f.n_columns, ncol),
                                       replace=False))
            idx = np.asarray(cols, dtype=int)
            t[idx, :] = np.nan if f.kind == "nan" else 1.0e6
            m.atm.t_col = t
            self._count_injected()

    def _raise_comm(self, k: int, m) -> None:
        """Surface a scoped comm fault at member ``k``'s coupling: a
        ``transient`` fault times the member out for ``times`` consecutive
        couplings starting at ``match`` (so it defeats rollback-and-replay
        until the window passes); ``kill`` raises a rank failure."""
        for f in self._comm_pending.get(k, ()):
            lo, hi = f.match, f.match + max(1, f.times)
            if not (lo <= m.n_couplings < hi):
                continue
            self._count_injected()
            if f.kind == "kill":
                raise RankFailure(
                    f.rank, f"member {k} coupling {m.n_couplings}"
                )
            raise CommTimeoutError(None, f.rank, 0, 0.0)

    def _count_injected(self) -> None:
        self.faults_injected += 1
        self.obs.counter("ensemble.supervisor.faults_injected").inc()

    def _health_check(self, k: int, m) -> None:
        """Post-step sanity of the member's atmosphere: non-finite state
        or an unphysical |T| surfaces as :class:`PhysicsBlowupError` (a
        silent NaN would otherwise poison every later coupling and any
        checkpoint written from it)."""
        t = np.asarray(m.atm.t_col, dtype=float)
        h = np.asarray(m.atm.swe.h, dtype=float)
        if not (np.isfinite(t).all() and np.isfinite(h).all()):
            raise PhysicsBlowupError(
                k, m.n_couplings, "non-finite atmosphere state"
            )
        if float(np.abs(t).max()) > self.BLOWUP_T:
            raise PhysicsBlowupError(
                k, m.n_couplings,
                f"|T| = {float(np.abs(t).max()):.3g} K exceeds "
                f"{self.BLOWUP_T:g} K",
            )

    # -- failure handling --------------------------------------------------

    def _record(self, event: MemberEvent) -> None:
        self.events.append(event)
        self.obs.counter("ensemble.supervisor.events").inc()

    def _handle_failure(self, k: int, m, exc: BaseException, target: int) -> None:
        kind = classify_failure(exc)
        if self.policy is MemberPolicy.RESTART:
            if self.restarts_used[k] < self.restart_max:
                try:
                    self._restart_member(k, m, exc, kind, target)
                    return
                except FAULT_TYPES as replay_exc:
                    # The rollback/replay itself failed (corrupt
                    # checkpoints, a persistent fault window, ...).
                    exc, kind = replay_exc, classify_failure(replay_exc)
            self._quarantine(k, m, exc, kind, action="escalate")
            return
        self._quarantine(k, m, exc, kind, action="quarantine")

    def _restart_member(
        self, k: int, m, exc: BaseException, kind: str, target: int
    ) -> None:
        """Roll member ``k`` back to its newest valid checkpoint and
        replay it solo to the fleet clock; on return it is bitwise-equal
        to a never-faulted twin and back in lockstep."""
        attempt = self.restarts_used[k] + 1
        if self.backoff_s > 0:
            time.sleep(self.backoff_s * (2 ** (attempt - 1)))
        self.restarts_used[k] = attempt
        failed_at = m.n_couplings
        with self.obs.span(
            "ensemble.supervisor.restart",
            member=k, attempt=attempt, error=type(exc).__name__,
        ):
            # Drop in-flight domain-2 work and any poisoned lagged export
            # handle before restoring (mirrors AP3ESM.recover_from_failure).
            m.scheduler.reset("domain2")
            m._pending = None
            runner = m._atm_runner
            m._atm_runner = None
            try:
                if self.lockstep is not None:
                    # The fleet may have advanced this member's atmosphere
                    # (and granted a credit) before the failure surfaced;
                    # the rollback invalidates both.
                    self.lockstep.clear_credits(m.atm)
                restored = m.checkpoints.restore_latest_valid(m.load_restart)
                replayed = target - m.n_couplings
                every = m.config.resilience.checkpoint_every
                for _ in range(replayed):
                    m.step_coupling()
                    # Keep the member's checkpoint rotation identical to a
                    # never-faulted twin's; the final (target) cadence save
                    # is written by the fleet pass with everyone else's.
                    if every and m.n_couplings % every == 0 \
                            and m.n_couplings < target:
                        m.checkpoint()
                self._health_check(k, m)
            finally:
                m._atm_runner = runner
        self.restarts += 1
        self.replayed_total += replayed
        self.obs.counter("ensemble.supervisor.restarts").inc()
        self.obs.counter("ensemble.supervisor.replayed_couplings").inc(replayed)
        self._record(MemberEvent(
            member=k, coupling=failed_at, kind=kind,
            error=type(exc).__name__, action="restart", detail=str(exc),
            replayed_couplings=replayed, restored_from=str(restored),
        ))

    def _quarantine(
        self, k: int, m, exc: BaseException, kind: str, action: str
    ) -> None:
        """Remove member ``k`` from the fleet: survivors' batched stack
        shrinks and their trajectories continue bitwise-unchanged."""
        self.alive[k] = False
        try:
            m._wait_ocean()
        except Exception:
            pass
        m._atm_runner = None
        if self.lockstep is not None:
            self.lockstep.remove(m.atm)
        self.quarantines += 1
        self.obs.counter("ensemble.supervisor.quarantines").inc()
        if action == "escalate":
            self.escalations += 1
            self.obs.counter("ensemble.supervisor.escalations").inc()
        self.obs.gauge("ensemble.supervisor.alive").set(float(self.n_alive))
        self._record(MemberEvent(
            member=k, coupling=m.n_couplings, kind=kind,
            error=type(exc).__name__, action=action, detail=str(exc),
        ))
