"""Retry-with-backoff for simulated transient failures.

Deterministic: exponential backoff with no jitter, and a zero base delay
by default — the simulated runtime has nothing to wait *for*, the retry
discipline (bounded attempts, counted interventions) is what matters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Tuple, Type, TypeVar

from ..parallel.comm import CommTransientError

__all__ = ["RetryPolicy", "retry_with_backoff"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, how long to back off, on what errors."""

    max_retries: int = 3
    backoff_s: float = 0.0
    retry_on: Tuple[Type[BaseException], ...] = (CommTransientError,)

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.backoff_s < 0:
            raise ValueError("max_retries and backoff_s must be >= 0")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based): base * 2^(n-1)."""
        return self.backoff_s * (2.0 ** max(attempt - 1, 0))


def retry_with_backoff(
    fn: Callable[[], T],
    policy: RetryPolicy = RetryPolicy(),
    obs=None,
    counter: str = "resilience.retries",
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` retrying on the policy's transient errors.

    Every retry increments the obs ``counter``; the final failure is
    re-raised unchanged once the budget is spent.  A retried success is
    bit-identical to an unfaulted call by construction — ``fn`` is simply
    invoked again with the same closure state.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except policy.retry_on:
            attempt += 1
            if attempt > policy.max_retries:
                raise
            if obs is not None:
                obs.counter(counter).inc()
            delay = policy.delay(attempt)
            if delay > 0:
                sleep(delay)
