"""Retry-with-backoff for simulated transient failures.

Deterministic: exponential backoff with a zero base delay by default —
the simulated runtime has nothing to wait *for*, the retry discipline
(bounded attempts, counted interventions) is what matters.  Services
that retry *real* work (the :mod:`repro.serve` job scheduler) opt into a
``max_backoff_s`` delay cap and seeded full jitter: the delay for
attempt ``n`` is drawn uniformly from ``[0, min(base * 2^(n-1), cap)]``
by a generator keyed on ``("retry.jitter", jitter_seed, n)`` — the same
(seed, attempt) pair always yields the same delay, so a replayed retry
schedule is bit-reproducible while still de-synchronizing a fleet of
retriers (the classic thundering-herd fix).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from ..parallel.comm import CommTransientError
from ..utils.rng import seeded

__all__ = ["RetryPolicy", "retry_with_backoff"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, how long to back off, on what errors.

    The defaults (``backoff_s=0.0``, no cap, no jitter) keep every
    pre-existing call site byte-identical: ``delay`` returns exactly the
    uncapped, unjittered exponential it always did.
    """

    max_retries: int = 3
    backoff_s: float = 0.0
    retry_on: Tuple[Type[BaseException], ...] = (CommTransientError,)
    #: Ceiling on any single backoff delay (None = uncapped exponential).
    max_backoff_s: Optional[float] = None
    #: Arm seeded deterministic full jitter (None = no jitter).
    jitter_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.backoff_s < 0:
            raise ValueError("max_retries and backoff_s must be >= 0")
        if self.max_backoff_s is not None and self.max_backoff_s < 0:
            raise ValueError("max_backoff_s must be >= 0")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based): base * 2^(n-1),
        capped at ``max_backoff_s``, then full-jittered when a
        ``jitter_seed`` is set (uniform on [0, capped delay], drawn from
        the deterministic ``("retry.jitter", seed, attempt)`` stream)."""
        d = self.backoff_s * (2.0 ** max(attempt - 1, 0))
        if self.max_backoff_s is not None:
            d = min(d, self.max_backoff_s)
        if self.jitter_seed is not None and d > 0.0:
            rng = seeded("retry.jitter", self.jitter_seed, attempt)
            d = float(rng.uniform(0.0, d))
        return d


def retry_with_backoff(
    fn: Callable[[], T],
    policy: RetryPolicy = RetryPolicy(),
    obs=None,
    counter: str = "resilience.retries",
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` retrying on the policy's transient errors.

    Every retry increments the obs ``counter``; the final failure is
    re-raised unchanged once the budget is spent.  A retried success is
    bit-identical to an unfaulted call by construction — ``fn`` is simply
    invoked again with the same closure state.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except policy.retry_on:
            attempt += 1
            if attempt > policy.max_retries:
                raise
            if obs is not None:
                obs.counter(counter).inc()
            delay = policy.delay(attempt)
            if delay > 0:
                sleep(delay)
