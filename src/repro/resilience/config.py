"""Resilience configuration (the ``resilience`` section of AP3ESMConfig).

Kept dependency-free so the driver, the CLI, and the chaos harness can
all import it without touching the rest of the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ResilienceConfig"]


@dataclass
class ResilienceConfig:
    """Opt-in resilience machinery for a coupled run.

    Everything is off by default (``enabled=False``): the driver then
    takes exactly the pre-resilience code paths — no guard wrapper, no
    checkpoint manager, no watchdog, zero extra messages or branches on
    the hot loop beyond one ``is None`` check.
    """

    enabled: bool = False
    #: Wrap the physics suite in a :class:`GuardedPhysics` that falls back
    #: to the conventional parameterization for NaN/blow-up columns.
    guard_physics: bool = True
    #: Write a rotating checkpoint every N couplings (0 = never).
    checkpoint_every: int = 0
    #: Rotating checkpoint directory (required when checkpoint_every > 0).
    checkpoint_dir: Optional[str] = None
    #: How many checkpoints the rotation keeps on disk.
    checkpoint_keep: int = 3
    #: Retries for transient comm failures (rearranger sends).
    max_retries: int = 3
    #: Base backoff between retries, doubling per attempt (0 = immediate;
    #: the simulated runtime needs no real waiting).
    backoff_s: float = 0.0
    #: Per-receive timeout surfacing a dead peer as CommTimeoutError
    #: (None = the world's default deadlock guard).
    recv_timeout_s: Optional[float] = None
    #: Abort waiting on a task domain after this many seconds
    #: (None = wait forever, the pre-resilience behavior).
    watchdog_s: Optional[float] = None
    #: What to do when a rank dies mid-run: ``abort`` (default, the
    #: pre-elastic behavior), ``shrink`` (survivors absorb the lost cells
    #: and continue degraded), or ``spare`` (a pre-allocated idle rank
    #: takes the slot; continuation bitwise-identical to a no-failure twin).
    recovery_policy: str = "abort"
    #: Idle ranks pre-allocated for ``spare`` promotion.
    spare_ranks: int = 1
    #: What the ensemble fleet supervisor does when ONE member's coupling
    #: step fails: ``fail_fast`` (default, the pre-supervisor behavior —
    #: the exception propagates and kills the fleet), ``quarantine``
    #: (remove the member mid-run; survivors continue bitwise-unchanged),
    #: or ``restart`` (roll the member back to its rotating checkpoint
    #: and replay it to the fleet clock; escalates to quarantine after
    #: ``member_restart_max`` restarts).  Ignored outside EnsembleRun.
    member_policy: str = "fail_fast"
    #: Restarts one member may consume before the supervisor escalates
    #: its next failure to quarantine.
    member_restart_max: int = 2

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.checkpoint_every and not self.checkpoint_dir:
            raise ValueError("checkpoint_every > 0 requires checkpoint_dir")
        if self.recovery_policy not in ("abort", "shrink", "spare"):
            raise ValueError(
                f"unknown recovery_policy {self.recovery_policy!r}; "
                "choose from ('abort', 'shrink', 'spare')"
            )
        if self.spare_ranks < 0:
            raise ValueError("spare_ranks must be >= 0")
        if self.member_policy not in ("fail_fast", "quarantine", "restart"):
            raise ValueError(
                f"unknown member_policy {self.member_policy!r}; "
                "choose from ('fail_fast', 'quarantine', 'restart')"
            )
        if self.member_restart_max < 0:
            raise ValueError("member_restart_max must be >= 0")
