"""Chaos harness: prove a coupled run survives an injected fault plan.

``run_chaos`` executes a :class:`~repro.resilience.faults.FaultPlan`
end to end, in (up to) three stages:

1. **Comm stage** — replays the plan's comm faults through a 4-rank
   simulated world driving a p2p :class:`~repro.coupler.Rearranger`
   between two block decompositions, with the configured retry budget
   and receive timeout.  The faulted transfer is compared bit for bit
   against a fault-free twin: transient faults must be fully *masked*
   (retried sends deliver the identical buffered payload); drops, kills,
   and corruption must surface as structured errors or as an unmasked
   difference — never as a hang.
2. **Crash stage** — runs the coupled model with the physics injector
   installed until ``crash_at_coupling``, damages checkpoints on disk
   per the plan, then builds a *fresh* model, recovers from the newest
   valid checkpoint (corrupt sets are skipped and counted), and resumes
   to the target coupling count.
3. **Bitwise twin** — a no-crash model with the same configuration and
   the same (step-keyed) physics faults runs straight through; the
   recovered run's final state must match it bit for bit, because
   replayed steps re-inject identically and recovery restores exact
   state.

Plans with *member-scoped* faults (a ``member`` key on physics or comm
entries) additionally run an **ensemble stage**: a batched fleet under
the :class:`~repro.resilience.supervisor.FleetSupervisor` proves both
recovery modes — quarantine (survivors bitwise-identical to a fleet
that never held the faulted members' faults) and checkpoint-rollback
restart (every member bitwise-identical to its never-faulted twin).

Plans with *service* faults (``worker_kill`` entries) run a **service
stage**: the :mod:`repro.serve` scenario job service is killed between
EVERY pair of journal records (both instants around each append) and
restarted; every kill point must recover — journal replay + checkpoint
resume + publish adoption — with each completed job's restart set
bitwise-identical to an uninterrupted twin's and exactly one completed
record per job in the whole journal history.

The report aggregates every ``resilience.*`` counter so an experiment
where nothing was actually injected (or nothing actually recovered) is
visible, not silently green.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..obs import Obs
from ..utils.rng import seeded
from .faults import (
    CommFaultInjector,
    FaultPlan,
    PhysicsFaultInjector,
    corrupt_checkpoint,
)

__all__ = ["ChaosReport", "run_chaos", "default_chaos_config"]

#: Every intervention counter the resilience layer can emit.
RESILIENCE_COUNTERS = (
    "resilience.faults_injected",
    "resilience.retries",
    "resilience.checkpoints_written",
    "resilience.checkpoint_fallbacks",
    "resilience.restores",
    "resilience.physics_fallback_columns",
    "resilience.physics_fallback_events",
    "resilience.watchdog_aborts",
    "resilience.recoveries",
    "resilience.ranks_lost",
    "resilience.replayed_steps",
    "resilience.replayed_couplings",
    "resilience.spares_used",
    "resilience.spares_exhausted",
    "resilience.domains_degraded",
    "ensemble.supervisor.events",
    "ensemble.supervisor.faults_injected",
    "ensemble.supervisor.quarantines",
    "ensemble.supervisor.restarts",
    "ensemble.supervisor.escalations",
    "ensemble.supervisor.replayed_couplings",
    "serve.submitted",
    "serve.dispatched",
    "serve.completed",
    "serve.interruptions",
    "serve.requeued",
    "serve.retries",
    "serve.reaped",
    "serve.rejected",
    "serve.failed",
    "serve.quarantined",
    "serve.adopted",
    "serve.resumes",
    "serve.published",
    "serve.journal.records",
    "serve.journal.replayed_records",
    "serve.journal.rotations",
)


@dataclass
class ChaosReport:
    """What a chaos run did and whether the faults were masked."""

    plan_faults: int
    couplings: int
    crash_at: Optional[int] = None
    recovered_from: Optional[str] = None
    comm_masked: Optional[bool] = None
    comm_error: Optional[str] = None
    bitwise_identical: Optional[bool] = None
    kill_ranks: Optional[int] = None
    shrink_recovered: Optional[bool] = None
    shrink_ranks_after: Optional[int] = None
    shrink_mass_drift: Optional[float] = None
    shrink_sypd_degraded: Optional[float] = None
    spare_bitwise_identical: Optional[bool] = None
    ensemble_members: Optional[int] = None
    ensemble_quarantined: Optional[List[int]] = None
    ensemble_quarantine_bitwise: Optional[bool] = None
    ensemble_restart_bitwise: Optional[bool] = None
    service_jobs: Optional[int] = None
    service_journal_records: Optional[int] = None
    service_crash_points: Optional[int] = None
    service_bitwise: Optional[bool] = None
    service_exactly_once: Optional[bool] = None
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def survived(self) -> bool:
        """The run completed every coupling it was asked for (a surfaced
        comm error is still surviving — it is structured, not a hang),
        the shrink continuation conserved the global invariant, the
        spare continuation matched the fault-free twin bit for bit, and
        both ensemble-supervisor modes kept their bitwise contracts."""
        return (
            self.bitwise_identical is not False
            and self.spare_bitwise_identical is not False
            and (self.shrink_mass_drift is None
                 or self.shrink_mass_drift < 1e-9)
            and self.ensemble_quarantine_bitwise is not False
            and self.ensemble_restart_bitwise is not False
            and self.service_bitwise is not False
            and self.service_exactly_once is not False
        )

    def summary(self) -> str:
        lines = [
            f"chaos: {self.plan_faults} planned fault(s), "
            f"{self.couplings} coupling(s)",
        ]
        if self.comm_masked is not None:
            lines.append(f"  comm stage masked: {self.comm_masked}")
        if self.comm_error is not None:
            lines.append(f"  comm stage surfaced: {self.comm_error}")
        if self.crash_at is not None:
            lines.append(
                f"  crashed at coupling {self.crash_at}, "
                f"recovered from {self.recovered_from}"
            )
        if self.bitwise_identical is not None:
            lines.append(
                f"  bitwise identical to fault-free twin: "
                f"{self.bitwise_identical}"
            )
        if self.kill_ranks is not None:
            lines.append(
                f"  kill stage: {self.kill_ranks} rank(s) killed; "
                f"shrink recovered: {self.shrink_recovered} "
                f"(to {self.shrink_ranks_after} rank(s), "
                f"mass drift {self.shrink_mass_drift:.3g}); "
                f"spare bitwise identical: {self.spare_bitwise_identical}"
            )
            if self.shrink_sypd_degraded is not None:
                lines.append(
                    f"  degraded-mode SYPD estimate: "
                    f"{self.shrink_sypd_degraded:.3g}"
                )
        if self.ensemble_members is not None:
            lines.append(
                f"  ensemble stage ({self.ensemble_members} member(s)): "
                f"quarantined {self.ensemble_quarantined}; "
                f"survivors bitwise identical: "
                f"{self.ensemble_quarantine_bitwise}; "
                f"restart rejoin bitwise identical: "
                f"{self.ensemble_restart_bitwise}"
            )
        if self.service_jobs is not None:
            lines.append(
                f"  service stage ({self.service_jobs} job(s), "
                f"{self.service_journal_records} journal record(s)): "
                f"killed at {self.service_crash_points} inter-record "
                f"instant(s); completed restarts bitwise identical: "
                f"{self.service_bitwise}; every job completed exactly "
                f"once: {self.service_exactly_once}"
            )
        for name in RESILIENCE_COUNTERS:
            value = self.counters.get(name, 0.0)
            if value:
                lines.append(f"  {name} = {value:g}")
        return "\n".join(lines)


def default_chaos_config(checkpoint_dir=None, checkpoint_every: int = 2):
    """A laptop-scale coupled configuration with resilience armed —
    the configuration the CLI chaos path and the smoke test run."""
    from ..esm import AP3ESMConfig
    from .config import ResilienceConfig

    resilience = ResilienceConfig(
        enabled=True,
        checkpoint_every=checkpoint_every if checkpoint_dir else 0,
        checkpoint_dir=checkpoint_dir,
        max_retries=3,
        recv_timeout_s=5.0,
    )
    return AP3ESMConfig(resilience=resilience)


def _sum_counters(obs: Obs) -> Dict[str, float]:
    """Total every counter across the parent handle and its forks."""
    totals: Dict[str, float] = {}
    for handle in obs.all_ranks():
        for name in handle.metrics.names():
            metric = handle.metrics.get(name)
            if getattr(metric, "kind", None) == "counter":
                totals[name] = totals.get(name, 0.0) + metric.value
    return totals


# -- stage 1: comm faults through the rearranger ---------------------------


def _comm_stage(plan: FaultPlan, res, obs: Obs, report: ChaosReport) -> None:
    from ..coupler import AttrVect, GlobalSegMap, Rearranger, Router
    from ..parallel.comm import SimWorld

    n_ranks, per_rank = 4, 8
    gsize = n_ranks * per_rank
    # Block source vs reversed-block destination: every rank exchanges
    # with its mirror, so each (src, dst) edge in a plan is exercised.
    src = GlobalSegMap.from_owners(np.repeat(np.arange(n_ranks), per_rank))
    dst = GlobalSegMap.from_owners(np.repeat(np.arange(n_ranks)[::-1], per_rank))
    router = Router.build(src, dst)
    gfield = np.arange(float(gsize))
    recv_timeout = res.recv_timeout_s if res.recv_timeout_s is not None else 5.0

    def transfer(injector, obs_handle) -> List[np.ndarray]:
        rearranger = Rearranger(
            router,
            method="p2p",
            max_retries=res.max_retries,
            retry_backoff_s=res.backoff_s,
            recv_timeout=recv_timeout,
        )
        world = SimWorld(n_ranks, timeout=2 * recv_timeout, faults=injector)

        def rank_program(comm):
            av = AttrVect.from_dict({"f": gfield[src.local_indices(comm.rank)]})
            out = rearranger.rearrange(
                comm,
                av,
                len(dst.local_indices(comm.rank)),
                obs=obs_handle.fork(comm.rank) if obs_handle is not None else None,
            )
            return out.data.copy()

        return world.run(rank_program)

    clean = transfer(None, None)
    try:
        faulted = transfer(CommFaultInjector(plan, obs=obs), obs)
    except RuntimeError as exc:
        # Drops and kills surface as structured errors (the point: a
        # clean diagnostic, not a hang); record and move on.
        cause = exc.__cause__ if exc.__cause__ is not None else exc
        report.comm_error = f"{type(cause).__name__}: {cause}"
        return
    report.comm_masked = all(
        np.array_equal(a, b) for a, b in zip(faulted, clean)
    )


# -- stage 1b: kill-and-continue (elastic recovery) ------------------------


def _kill_perf_estimate():
    """(coupled model, n_procs1, n_procs2) for the degraded-SYPD gauge —
    best-effort: the kill stage must not depend on the bench package."""
    try:
        from ..bench.scaling import CORES_PER_SUNWAY_PROCESS, paper_coupled_model

        coupled = paper_coupled_model("3v2")
        n1, n2 = coupled.balance_resources(
            max(2, 2_000_000 // CORES_PER_SUNWAY_PROCESS)
        )
        return coupled, n1, n2
    except Exception:
        return None


def _kill_stage(plan: FaultPlan, obs: Obs, report: ChaosReport) -> None:
    """Kill-and-continue: replay the plan's ``kill`` faults through the
    elastic recovery loop under each non-abort policy.

    ``shrink`` must complete every step on the surviving ranks with the
    global invariant conserved; ``spare`` must match the fault-free twin
    bit for bit (the decomposition never changed).  The twin runs the
    same field program with no faults under ``abort``.
    """
    import tempfile

    from .elastic import ElasticFieldRun, RecoveryPolicy

    kills = [f for f in plan.comm if f.kind == "kill"]
    report.kill_ranks = len({f.rank for f in kills})
    perf = _kill_perf_estimate()

    def run(policy, faults, obs_handle):
        with tempfile.TemporaryDirectory(prefix="chaos-kill-") as d:
            return ElasticFieldRun(
                d, policy=policy, faults=faults, obs=obs_handle,
                perf_estimate=perf,
            ).run()

    twin = run(RecoveryPolicy.ABORT, None, None)

    shrink = run(RecoveryPolicy.SHRINK, plan, obs)
    report.shrink_recovered = (
        shrink.survived_failure and shrink.steps == twin.steps
    )
    report.shrink_ranks_after = shrink.n_ranks
    report.shrink_mass_drift = shrink.mass_drift
    if shrink.recoveries and shrink.recoveries[-1].sypd_degraded is not None:
        report.shrink_sypd_degraded = shrink.recoveries[-1].sypd_degraded

    spare = run(RecoveryPolicy.SPARE, plan, obs)
    report.spare_bitwise_identical = bool(
        np.array_equal(spare.field, twin.field)
    )


# -- stage 1c: ensemble fleet supervisor -----------------------------------


def _ensemble_stage(
    plan: FaultPlan, config, couplings: int, obs: Obs, report: ChaosReport
) -> None:
    """Prove BOTH supervisor recovery modes against the plan's
    member-scoped faults:

    * ``quarantine`` — the targeted members are removed mid-run and every
      survivor's final state is bitwise-identical to the same member of a
      fleet that never contained the faults;
    * ``restart`` — every member (including the faulted ones, rolled back
      to their rotating ``member<k>/`` checkpoints and replayed) ends
      bitwise-identical to its never-faulted twin.

    The twin fleet runs the identical configuration with no plan and the
    default ``fail_fast`` policy — i.e. the pre-supervisor code path.
    """
    import tempfile

    from ..esm import EnsembleConfig, EnsembleRun

    members = max(3, max(plan.member_targets()) + 1)
    targets = set(plan.member_targets())
    report.ensemble_members = members

    def fleet(policy, with_plan, obs_handle, ckpt_dir):
        res = dataclasses.replace(
            config.resilience,
            enabled=True,
            guard_physics=False,  # batching needs the unguarded suite
            recovery_policy="abort",
            member_policy=policy,
            checkpoint_every=2 if ckpt_dir else 0,
            checkpoint_dir=ckpt_dir,
        )
        ens = EnsembleRun(EnsembleConfig(
            base=dataclasses.replace(config, resilience=res),
            members=members,
            batch_physics=True,
            fault_plan=plan if with_plan else None,
        ), obs=obs_handle)
        ens.init()
        ens.run_couplings(couplings)
        states = [_final_state(m) for m in ens.members]
        ens.finalize()
        return ens, states

    twin, twin_states = fleet("fail_fast", False, None, None)

    quarantined, q_states = fleet("quarantine", True, obs, None)
    report.ensemble_quarantined = list(quarantined.supervisor.quarantined)
    survivors = [k for k in range(members) if quarantined.supervisor.alive[k]]
    report.ensemble_quarantine_bitwise = (
        set(report.ensemble_quarantined) == targets
        and all(
            np.array_equal(q_states[k][f], twin_states[k][f])
            for k in survivors for f in q_states[k]
        )
    )

    with tempfile.TemporaryDirectory(prefix="chaos-ensemble-") as d:
        restarted, r_states = fleet("restart", True, obs, d)
        report.ensemble_restart_bitwise = (
            all(restarted.supervisor.alive)
            and restarted.supervisor.restarts > 0
            and all(
                np.array_equal(r_states[k][f], twin_states[k][f])
                for k in range(members) for f in r_states[k]
            )
        )


# -- stage 1d: scenario-service kill sweep ---------------------------------


def _dirs_bitwise_equal(a, b) -> bool:
    from pathlib import Path

    a, b = Path(a), Path(b)
    files_a = sorted(p.relative_to(a) for p in a.rglob("*") if p.is_file())
    files_b = sorted(p.relative_to(b) for p in b.rglob("*") if p.is_file())
    if files_a != files_b:
        return False
    return all((a / rel).read_bytes() == (b / rel).read_bytes()
               for rel in files_a)


def _completed_record_counts(journal_path) -> Dict[str, int]:
    """Per-job count of ``completed`` state records in a journal — the
    exactly-once ledger (adoption and replay must never double it)."""
    import json

    counts: Dict[str, int] = {}
    for line in journal_path.read_text().splitlines():
        try:
            body = json.loads(line)["body"]
        except (ValueError, KeyError):
            continue
        if body.get("event") == "state" and body.get("state") == "completed":
            counts[body["job_id"]] = counts.get(body["job_id"], 0) + 1
    return counts


def _service_stage(
    plan: FaultPlan, config, couplings: int, obs: Obs, report: ChaosReport
) -> None:
    """The scenario-service kill sweep: SIGKILL between EVERY pair of
    journal records, restart, and demand bitwise + exactly-once recovery.

    Three service runs anchor the sweep:

    1. a **twin** service (no faults, no crashes) publishes the
       reference restart set for every job;
    2. a **reference** service runs the plan's ``worker_kill`` faults
       straight through, measuring the journal length R (its published
       results must already match the twin — interruption recovery is
       bitwise);
    3. for every append index k < R and both instants around it
       (``after`` the k-th record hit disk, and ``before`` the next one
       does — i.e. after the inter-record work: checkpoints, publishes),
       a fresh service runs with a crash hook at that instant, is
       "killed", and a restarted service (journal replay + checkpoint
       resume + publish adoption) must drain the queue with every job's
       restart set bitwise-identical to the twin's and exactly ONE
       completed record per job in the whole journal history.
    """
    import tempfile
    from pathlib import Path

    from ..serve import JobScheduler, JobSpec, JobStore, ServeConfig, ServiceCrash

    res = config.resilience
    every = res.checkpoint_every if res.checkpoint_every > 0 else 2
    specs = [
        JobSpec("job0", couplings=couplings, perturb_amplitude=1e-3),
        JobSpec("job1", couplings=couplings, perturb_seed=1,
                perturb_amplitude=1e-3),
    ]
    report.service_jobs = len(specs)
    scfg = ServeConfig(checkpoint_every=every)

    def service_life(root: Path, crash_at=None, with_faults=True,
                     count_obs=None):
        """One service process lifetime; returns (scheduler, crashed)."""
        store = JobStore(root / "store", crash_at=crash_at, obs=count_obs)
        try:
            sched = JobScheduler(
                store, config, root / "work", scfg,
                fault_plan=plan if with_faults else None, obs=count_obs,
            )
            sched.recover()
            for spec in specs:
                if spec.job_id not in store.jobs:
                    sched.submit(spec)
            sched.run_until_idle()
            return sched, False
        except ServiceCrash:
            return None, True
        finally:
            # Stand-in for kernel fd cleanup on process death: the flock
            # is released, nothing is flushed or written.
            store.close()

    with tempfile.TemporaryDirectory(prefix="chaos-serve-") as d:
        base = Path(d)
        twin_root = base / "twin"
        twin, _ = service_life(twin_root, with_faults=False)
        twin_dirs = {s.job_id: twin.runner.published_dir(s.job_id)
                     for s in specs}

        ref_root = base / "ref"
        ref, _ = service_life(ref_root, count_obs=obs)
        records = ref.store.appends
        report.service_journal_records = records
        bitwise = all(
            _dirs_bitwise_equal(ref.runner.published_dir(s.job_id),
                                twin_dirs[s.job_id])
            for s in specs
        )

        crash_points = 0
        exactly_once = True
        for k in range(records):
            for phase in ("after", "before"):
                root = base / f"kill-{phase}-{k}"
                first, crashed = service_life(
                    root, crash_at=(phase, k), count_obs=obs
                )
                if crashed:
                    crash_points += 1
                    final, crashed_again = service_life(root, count_obs=obs)
                    if crashed_again:  # a restart must never re-crash
                        bitwise = False
                        continue
                else:
                    final = first
                if final.store.counts().get("completed", 0) != len(specs):
                    bitwise = False  # a job was lost
                    continue
                bitwise = bitwise and all(
                    _dirs_bitwise_equal(final.runner.published_dir(s.job_id),
                                        twin_dirs[s.job_id])
                    for s in specs
                )
                done = _completed_record_counts(final.store.path)
                exactly_once = exactly_once and all(
                    done.get(s.job_id) == 1 for s in specs
                )
        report.service_crash_points = crash_points
        report.service_bitwise = bitwise
        report.service_exactly_once = exactly_once


# -- stages 2+3: crash, recover, and the bitwise twin ----------------------


def _final_state(model) -> Dict[str, np.ndarray]:
    return {
        "atm.h": model.atm.swe.h.copy(),
        "atm.u": model.atm.swe.u.copy(),
        "atm.t_col": model.atm.t_col.copy(),
        "atm.tracer": model.atm.tracer.copy(),
        "ocn.t": model.ocn.t.copy(),
        "ocn.s": model.ocn.s.copy(),
        "ocn.u": model.ocn.u.copy(),
        "ocn.eta": model.ocn.bt.eta.copy(),
        "clock.time": np.asarray(model.clock.time),
        "n_couplings": np.asarray(float(model.n_couplings)),
    }


def _build_model(config, obs, plan: FaultPlan, count_obs):
    from ..esm import AP3ESM

    model = AP3ESM(config, obs=obs)
    model.init()
    if plan.physics and model.guarded_physics is not None:
        model.guarded_physics.injector = PhysicsFaultInjector(
            plan, obs=count_obs
        )
    return model

def _corrupt_planned(plan: FaultPlan, manager) -> List[str]:
    damaged = []
    ckpts = manager.checkpoints()
    for i, fault in enumerate(plan.checkpoints):
        if not ckpts:
            break
        victim = ckpts[fault.index % len(ckpts)]
        corrupt_checkpoint(
            victim, fault.kind,
            rng=seeded("chaos-corrupt", plan.seed, i),
        )
        damaged.append(victim.name)
    return damaged


def _crash_stage(
    plan: FaultPlan, config, couplings: int, obs: Obs, report: ChaosReport
) -> None:
    res = config.resilience
    every = res.checkpoint_every
    crash_at = plan.crash_at_coupling
    if crash_at is None:
        # Just past the second checkpoint: corrupting the newest set
        # still leaves an older one to fall back to, with work to replay.
        crash_at = min(couplings, 2 * every + 1)
    crash_at = max(every, min(crash_at, couplings))
    report.crash_at = crash_at

    # Run to the crash point, writing checkpoints along the way, then
    # abandon the model (the "crash") and damage checkpoints per plan.
    victim = _build_model(config, obs, plan, count_obs=obs)
    victim.run_couplings(crash_at)
    victim.scheduler.shutdown()
    _corrupt_planned(plan, victim.checkpoints)

    # A fresh process: recover from the newest valid set and resume.
    survivor = _build_model(config, obs, plan, count_obs=obs)
    restored = survivor.recover()
    report.recovered_from = restored.name
    survivor.run_couplings(couplings - survivor.n_couplings)
    state = _final_state(survivor)
    survivor.scheduler.shutdown()

    # The twin never crashes (and never checkpoints — same physics
    # faults, separate directory-free config), so any divergence is the
    # recovery's fault.
    twin_config = dataclasses.replace(
        config,
        resilience=dataclasses.replace(
            res, checkpoint_every=0, checkpoint_dir=None
        ),
    )
    twin = _build_model(twin_config, None, plan, count_obs=None)
    twin.run_couplings(couplings)
    twin_state = _final_state(twin)
    twin.scheduler.shutdown()

    report.bitwise_identical = all(
        np.array_equal(state[k], twin_state[k]) for k in state
    )


def run_chaos(
    plan: FaultPlan,
    config=None,
    couplings: int = 6,
    obs: Optional[Obs] = None,
) -> ChaosReport:
    """Execute ``plan`` against a coupled run and report what happened.

    ``config`` must have ``resilience.enabled``; when it also configures
    checkpointing, the crash/recover/twin stages run (and ``couplings``
    must leave room past the first checkpoint).  ``None`` builds
    :func:`default_chaos_config` with checkpointing off — comm and
    physics faults only.
    """
    if config is None:
        config = default_chaos_config()
    res = config.resilience
    if not res.enabled:
        raise ValueError("chaos needs config.resilience.enabled=True")
    if couplings < 1:
        raise ValueError("couplings must be >= 1")
    obs = obs if obs is not None else Obs()
    report = ChaosReport(plan_faults=plan.n_faults, couplings=couplings)

    if plan.comm:
        _comm_stage(plan, res, obs, report)
    if any(f.kind == "kill" for f in plan.comm):
        _kill_stage(plan, obs, report)
    if plan.member_scoped:
        _ensemble_stage(plan, config, couplings, obs, report)
    if plan.service:
        _service_stage(plan, config, couplings, obs, report)

    # The solo crash/recover stage is skipped for service-only plans:
    # the service stage already drives (and kills) whole coupled runs.
    solo_relevant = bool(
        plan.comm or plan.physics or plan.checkpoints or not plan.service
    )
    if res.checkpoint_every > 0 and solo_relevant:
        _crash_stage(plan, config, couplings, obs, report)
    elif solo_relevant:
        model = _build_model(config, obs, plan, count_obs=obs)
        model.run_couplings(couplings)
        model.scheduler.shutdown()

    report.counters = _sum_counters(obs)
    return report
