"""Elastic rank-failure recovery: revoke, shrink (or promote a spare),
re-decompose, restore, replay.

The ULFM-style loop the 40M-core campaigns need (Duan et al.): a rank
death detected by the runtime must not end the run.  The pieces:

* :class:`RecoveryPolicy` — ``abort`` (pre-elastic behavior, the
  default), ``shrink`` (survivors absorb the dead ranks' cells and
  continue degraded), ``spare`` (a pre-allocated idle rank takes the
  dead slot; the decomposition is unchanged, so the continuation is
  bitwise-identical to a fault-free twin);
* :class:`ElasticFieldRun` — the end-to-end driver over a 1-D ring
  field: per-epoch checkpoints (per-rank subfiles via
  :class:`~repro.resilience.checkpoint.CheckpointManager`), kill
  detection via :meth:`~repro.parallel.SimWorld.run_elastic`, communicator
  repair via :meth:`~repro.parallel.SimWorld.shrink` /
  :meth:`~repro.parallel.SimWorld.promote_spares`, re-decomposition via
  :func:`~repro.parallel.decomp.shrink_owners`, survivor-state migration
  via a :class:`~repro.coupler.Router` between the old and repaired
  GSMaps, dead-shard restore through
  :func:`~repro.grids.remap.index_remap`, and deterministic replay from
  the checkpoint step.

Recovery semantics (what rolls back, what survives): every rank keeps an
in-memory copy of its shard as of the last checkpoint, so on failure
survivor-held state is rolled back *in place* — no I/O, no movement
beyond what the repaired decomposition requires.  Only the dead ranks'
cells are read from the checkpoint's subfiles.  All ranks then replay the
steps since the checkpoint; the stencil computes identical per-cell FP
operations under any decomposition, so the shrink continuation conserves
the global invariants and the spare continuation is bitwise-identical to
a run that never failed.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..coupler.gsmap import GlobalSegMap
from ..coupler.router import Router
from ..grids.remap import index_remap
from ..io.subfile import SubfileLayout, read_subfiles, write_subfiles
from ..parallel.comm import RankFailure, SimWorld
from ..parallel.decomp import partition_cells_contiguous, shrink_owners
from .checkpoint import CheckpointManager
from .faults import CommFaultInjector, FaultPlan

__all__ = [
    "RecoveryPolicy",
    "RecoveryEvent",
    "ElasticRunResult",
    "ElasticFieldRun",
]


class RecoveryPolicy(str, enum.Enum):
    """What the driver does when a rank dies mid-run."""

    ABORT = "abort"    #: surface the failure (pre-elastic behavior)
    SHRINK = "shrink"  #: survivors absorb the lost cells, continue degraded
    SPARE = "spare"    #: a pre-allocated idle rank takes the slot, bitwise

    @classmethod
    def parse(cls, value: Union[str, "RecoveryPolicy"]) -> "RecoveryPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown recovery policy {value!r}; "
                f"choose from {[p.value for p in cls]}"
            ) from None


@dataclass(frozen=True)
class RecoveryEvent:
    """One completed recovery: who died, what rolled back, what it costs."""

    policy: str
    dead: Tuple[int, ...]           #: failed slots, numbering before repair
    dead_parents: Tuple[int, ...]   #: identities in the original world
    replay_from_step: int           #: checkpoint step the run resumed at
    replayed_steps: int             #: steps re-executed because of the death
    n_ranks_before: int
    n_ranks_after: int
    cells_restored: int             #: cells read back from the checkpoint
    cells_migrated: int             #: survivor cells moved to a new owner
    sypd_degraded: Optional[float] = None
    slowdown: Optional[float] = None


@dataclass
class ElasticRunResult:
    """Final state of an elastic run."""

    field: np.ndarray
    steps: int
    n_ranks: int
    owners: np.ndarray
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    mass_initial: float = 0.0
    mass_final: float = 0.0

    @property
    def mass_drift(self) -> float:
        denom = max(abs(self.mass_initial), 1e-300)
        return abs(self.mass_final - self.mass_initial) / denom

    @property
    def survived_failure(self) -> bool:
        return len(self.recoveries) > 0


def _epoch(comm, shards, owners, nu, n_steps, epoch):
    """One checkpoint epoch of flux-form diffusion on the periodic ring.

    Each rank owns a contiguous index block; per step it exchanges one
    edge value with each ring neighbor and applies
    ``f[i] += nu * (f[i+1] - 2 f[i] + f[i-1])`` — per-cell FP operations
    independent of the decomposition, which is what makes post-shrink
    replay conservative and post-spare replay bitwise.
    """
    gsize = owners.size
    mine = np.flatnonzero(owners == comm.rank)
    f = shards[comm.rank].copy()
    if mine.size == 0:
        return f
    lo, hi = int(mine[0]), int(mine[-1])
    left = int(owners[(lo - 1) % gsize])
    right = int(owners[(hi + 1) % gsize])
    for s in range(n_steps):
        # Tags separate direction and step so a fast rank one step ahead
        # cannot have its messages matched early.
        t_left, t_right = 2 * s, 2 * s + 1
        comm.send(float(f[0]), left, tag=t_left)
        comm.send(float(f[-1]), right, tag=t_right)
        halo_r = comm.recv(source=right, tag=t_left)
        halo_l = comm.recv(source=left, tag=t_right)
        ext = np.concatenate([[halo_l], f, [halo_r]])
        f = f + nu * (ext[2:] - 2.0 * ext[1:-1] + ext[:-2])
    return f


class ElasticFieldRun:
    """Kill-and-continue driver: the complete elastic-recovery loop over
    a distributed 1-D field, small enough for CI yet exercising every
    layer (comm revoke/shrink, owner re-partition, GSMap/Router rebuild,
    subfile checkpoint restore, index remap, deterministic replay).

    Parameters
    ----------
    checkpoint_dir:
        Where the rotating checkpoint sets live.
    policy:
        :class:`RecoveryPolicy` (or its string value).
    faults:
        Optional :class:`FaultPlan` whose ``kill`` entries exercise the
        recovery; dropped after the first repair (the dead rank's kill
        has fired; survivor numbering changes under ``shrink``).
    n_spares:
        Idle ranks pre-allocated for ``spare`` promotion.
    perf_estimate:
        Optional ``(coupled_model, n_procs1, n_procs2)`` triple; after a
        shrink the degraded SYPD is estimated via
        :meth:`~repro.machine.CoupledPerfModel.degraded_estimate` and
        recorded on the event and the ``resilience.recovery.*`` gauges.
    """

    def __init__(
        self,
        checkpoint_dir: Union[str, Path],
        gsize: int = 64,
        n_ranks: int = 4,
        steps: int = 12,
        checkpoint_every: int = 4,
        nu: float = 0.05,
        policy: Union[str, RecoveryPolicy] = RecoveryPolicy.ABORT,
        faults: Optional[FaultPlan] = None,
        n_spares: int = 1,
        n_io_groups: int = 2,
        obs=None,
        timeout: float = 15.0,
        perf_estimate: Optional[Tuple[Any, int, int]] = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if gsize < n_ranks:
            raise ValueError("need at least one cell per rank")
        self.checkpoint_dir = Path(checkpoint_dir)
        self.gsize = gsize
        self.n_ranks = n_ranks
        self.steps = steps
        self.checkpoint_every = checkpoint_every
        self.nu = nu
        self.policy = RecoveryPolicy.parse(policy)
        self.faults = faults
        self.n_spares = n_spares
        self.n_io_groups = n_io_groups
        self.obs = obs
        self.timeout = timeout
        self.perf_estimate = perf_estimate

    # -- checkpoint I/O ----------------------------------------------------

    def _saver(self, owners: np.ndarray, shards: List[np.ndarray], step: int):
        layout = SubfileLayout(
            len(shards), min(self.n_io_groups, len(shards))
        )

        def save(directory: Path) -> None:
            slices = []
            for r, shard in enumerate(shards):
                mine = np.flatnonzero(owners == r)
                start = int(mine[0]) if mine.size else 0
                slices.append((start, np.asarray(shard, dtype=np.float64)))
            write_subfiles(directory, "field", layout, slices, obs=self.obs)
            meta = {
                "step": int(step),
                "n_ranks": len(shards),
                "n_groups": layout.n_groups,
                "owners": [int(o) for o in owners],
            }
            (Path(directory) / "meta.json").write_text(json.dumps(meta))

        return save

    def _restore_global(self, manager: CheckpointManager) -> Dict[str, Any]:
        """Read the newest valid checkpoint set back into a global field
        (walking past corrupt sets, counting fallbacks/restores)."""
        restored: Dict[str, Any] = {}

        def load(path: Path) -> None:
            meta = json.loads((Path(path) / "meta.json").read_text())
            layout = SubfileLayout(meta["n_ranks"], meta["n_groups"])
            restored["field"] = read_subfiles(
                path, "field", layout, self.gsize, obs=self.obs
            )
            restored["step"] = int(meta["step"])
            restored["owners"] = np.asarray(meta["owners"], dtype=np.int64)

        manager.restore_latest_valid(load)
        return restored

    # -- recovery ----------------------------------------------------------

    def _recover(
        self,
        world: SimWorld,
        dead: Tuple[int, ...],
        owners: np.ndarray,
        ckpt_shards: List[np.ndarray],
        manager: CheckpointManager,
        ckpt_step: int,
        failed_epoch_steps: int,
    ) -> Tuple[SimWorld, np.ndarray, List[np.ndarray], RecoveryEvent]:
        """Repair the world, re-decompose, restore the lost shard, and
        roll survivors back to their in-memory checkpoint copies."""
        restored = self._restore_global(manager)
        if restored["step"] != ckpt_step:
            raise RuntimeError(
                f"checkpoint on disk is step {restored['step']}, driver "
                f"expected step {ckpt_step} — rotation and epoch disagree"
            )
        g_ckpt = restored["field"]
        dead_gidx = np.flatnonzero(np.isin(owners, list(dead)))
        dead_parents = tuple(world.parent_ranks[r] for r in dead)

        if self.policy is RecoveryPolicy.SPARE:
            new_world = world.promote_spares(dead)
            new_owners = owners.copy()
            new_shards: List[np.ndarray] = []
            for r in range(world.n_ranks):
                if r in dead:
                    mine = np.flatnonzero(owners == r)
                    new_shards.append(g_ckpt[mine].copy())
                else:
                    new_shards.append(ckpt_shards[r].copy())
            cells_migrated = 0
        else:  # SHRINK
            new_world = world.shrink(dead)
            new_owners, old_to_new = shrink_owners(
                owners, dead, n_ranks=world.n_ranks
            )
            new_gsmap = GlobalSegMap.from_owners(new_owners)
            # Survivor-held state moves (where it moves at all) through a
            # Router between the hole-masked old decomposition and the
            # repaired one — the same offline-construction path the
            # coupler uses, applied driver-side.
            masked = owners.astype(np.int64).copy()
            masked[dead_gidx] = -1
            router = Router.build(GlobalSegMap.from_owners(masked), new_gsmap)
            src_shards = {
                r: np.asarray(ckpt_shards[r], dtype=np.float64)
                for r in range(world.n_ranks)
                if r not in dead
            }
            dst_sizes = {
                q: int(np.count_nonzero(new_owners == q))
                for q in range(new_world.n_ranks)
            }
            moved = router.redistribute(src_shards, dst_sizes)
            # The dead ranks' cells are the NaN holes left by the partial
            # redistribute; fill them from the checkpoint through the
            # exact (weight-1) index remap.
            ckpt_dead_vals = g_ckpt[dead_gidx]
            new_to_old = {v: k for k, v in old_to_new.items()}
            new_shards = []
            cells_migrated = 0
            for q in range(new_world.n_ranks):
                shard = moved[q]
                dst_gidx = np.flatnonzero(new_owners == q)
                holes = np.flatnonzero(np.isnan(shard))
                if holes.size:
                    sel = index_remap(dead_gidx, dst_gidx[holes])
                    shard[holes] = sel @ ckpt_dead_vals
                old_owner_here = owners[dst_gidx]
                cells_migrated += int(np.count_nonzero(
                    (old_owner_here != new_to_old[q])
                    & ~np.isin(old_owner_here, list(dead))
                ))
                new_shards.append(shard)

        event = RecoveryEvent(
            policy=self.policy.value,
            dead=tuple(sorted(dead)),
            dead_parents=dead_parents,
            replay_from_step=ckpt_step,
            replayed_steps=failed_epoch_steps,
            n_ranks_before=world.n_ranks,
            n_ranks_after=new_world.n_ranks,
            cells_restored=int(dead_gidx.size),
            cells_migrated=cells_migrated,
            **self._degraded_sypd(len(dead)),
        )
        if self.obs is not None:
            self.obs.counter("resilience.recoveries").inc()
            self.obs.counter("resilience.ranks_lost").inc(len(dead))
            self.obs.counter("resilience.replayed_steps").inc(
                failed_epoch_steps
            )
            self.obs.gauge("resilience.recovery.n_ranks").set(
                new_world.n_ranks
            )
            if event.sypd_degraded is not None:
                self.obs.gauge("resilience.recovery.sypd_degraded").set(
                    event.sypd_degraded
                )
                self.obs.gauge("resilience.recovery.slowdown").set(
                    event.slowdown
                )
        return new_world, new_owners, new_shards, event

    def _degraded_sypd(self, n_lost: int) -> Dict[str, Optional[float]]:
        if self.perf_estimate is None or self.policy is RecoveryPolicy.SPARE:
            # Spare promotion keeps the proc count: no degradation.
            return {"sypd_degraded": None, "slowdown": None}
        model, n1, n2 = self.perf_estimate
        est = model.degraded_estimate(n1, n2, lost1=n_lost)
        return {
            "sypd_degraded": est["sypd_degraded"],
            "slowdown": est["slowdown"],
        }

    # -- the run -----------------------------------------------------------

    def run(self) -> ElasticRunResult:
        owners = partition_cells_contiguous(self.gsize, self.n_ranks).astype(
            np.int64
        )
        injector = (
            CommFaultInjector(self.faults, obs=self.obs)
            if self.faults is not None and self.faults.comm
            else None
        )
        world = SimWorld(
            self.n_ranks,
            timeout=self.timeout,
            faults=injector,
            n_spares=self.n_spares if self.policy is RecoveryPolicy.SPARE else 0,
        )
        manager = CheckpointManager(self.checkpoint_dir, keep=3, obs=self.obs)

        x = np.arange(self.gsize, dtype=np.float64)
        f0 = 1.0 + 0.5 * np.sin(2.0 * np.pi * x / self.gsize)
        shards = [f0[np.flatnonzero(owners == r)].copy() for r in range(self.n_ranks)]
        mass0 = float(sum(s.sum() for s in shards))
        recoveries: List[RecoveryEvent] = []

        step = 0
        while step < self.steps:
            n_do = min(self.checkpoint_every, self.steps - step)
            ckpt_step = step
            ckpt_shards = [s.copy() for s in shards]
            manager.to_file(self._saver(owners, shards, step), step)
            outcome = world.run_elastic(
                _epoch, shards, owners, self.nu, n_do, step // self.checkpoint_every
            )
            if not outcome.failed:
                shards = list(outcome.results)
                step += n_do
                continue
            if self.policy is RecoveryPolicy.ABORT:
                raise RankFailure(
                    outcome.dead[0],
                    f"elastic run at step {step} (policy=abort)",
                )
            span = (
                self.obs.span(
                    "resilience.recovery",
                    policy=self.policy.value,
                    dead=list(outcome.dead),
                    step=step,
                )
                if self.obs is not None
                else _NULL_CTX
            )
            with span:
                world, owners, shards, event = self._recover(
                    world, outcome.dead, owners, ckpt_shards,
                    manager, ckpt_step, n_do,
                )
            recoveries.append(event)
            step = ckpt_step  # deterministic replay of the failed epoch

        final = np.empty(self.gsize, dtype=np.float64)
        for r in range(world.n_ranks):
            final[np.flatnonzero(owners == r)] = shards[r]
        return ElasticRunResult(
            field=final,
            steps=self.steps,
            n_ranks=world.n_ranks,
            owners=owners,
            recoveries=recoveries,
            mass_initial=mass0,
            mass_final=float(final.sum()),
        )


class _Null:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return None


_NULL_CTX = _Null()
