"""Units, conversions, and physical constants shared across components.

The paper's headline metric is SYPD (simulated years per day); some prior
work it compares against reports SDPD (simulated days per day).  This module
keeps every conversion in one place so that benchmarks and the machine model
cannot disagree about what a "year" is (365 days, following the CESM timing
convention used by ``getTiming``).
"""

from __future__ import annotations

import math

__all__ = [
    "DAYS_PER_YEAR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_YEAR",
    "EARTH_RADIUS",
    "EARTH_OMEGA",
    "GRAVITY",
    "RHO_OCEAN",
    "RHO_AIR",
    "CP_AIR",
    "CP_OCEAN",
    "LATENT_HEAT_VAPORIZATION",
    "LATENT_HEAT_FUSION",
    "RHO_ICE",
    "STEFAN_BOLTZMANN",
    "KARMAN",
    "sypd_from_walltime",
    "walltime_from_sypd",
    "sdpd_from_sypd",
    "sypd_from_sdpd",
    "parallel_efficiency",
    "resolution_to_cell_km",
]

DAYS_PER_YEAR = 365.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_YEAR = DAYS_PER_YEAR * SECONDS_PER_DAY

# Physical constants (SI).
EARTH_RADIUS = 6.371e6          # m
EARTH_OMEGA = 7.292e-5          # rad/s
GRAVITY = 9.80616               # m/s^2
RHO_OCEAN = 1026.0              # kg/m^3
RHO_AIR = 1.225                 # kg/m^3
CP_AIR = 1004.64                # J/(kg K)
CP_OCEAN = 3996.0               # J/(kg K)
LATENT_HEAT_VAPORIZATION = 2.501e6   # J/kg
LATENT_HEAT_FUSION = 3.337e5         # J/kg
RHO_ICE = 917.0                 # kg/m^3
STEFAN_BOLTZMANN = 5.670374419e-8    # W/(m^2 K^4)
KARMAN = 0.4


def sypd_from_walltime(simulated_seconds: float, wall_seconds: float) -> float:
    """Simulated-years-per-day from a simulated interval and its wall time."""
    if wall_seconds <= 0:
        raise ValueError("wall_seconds must be positive")
    if simulated_seconds <= 0:
        raise ValueError("simulated_seconds must be positive")
    return (simulated_seconds / SECONDS_PER_YEAR) / (wall_seconds / SECONDS_PER_DAY)


def walltime_from_sypd(sypd: float, simulated_seconds: float = SECONDS_PER_YEAR) -> float:
    """Wall seconds needed to simulate ``simulated_seconds`` at a given SYPD."""
    if sypd <= 0:
        raise ValueError("sypd must be positive")
    return (simulated_seconds / SECONDS_PER_YEAR) * SECONDS_PER_DAY / sypd


def sdpd_from_sypd(sypd: float) -> float:
    """Simulated-days-per-day from simulated-years-per-day."""
    return sypd * DAYS_PER_YEAR


def sypd_from_sdpd(sdpd: float) -> float:
    """Simulated-years-per-day from simulated-days-per-day."""
    return sdpd / DAYS_PER_YEAR


def parallel_efficiency(
    base_throughput: float,
    base_resources: float,
    throughput: float,
    resources: float,
) -> float:
    """Strong-scaling parallel efficiency relative to a baseline point.

    Matches the paper's convention: efficiency = (speedup achieved) /
    (resource growth), with the smallest-scale run of each curve as 100 %.
    """
    if min(base_throughput, base_resources, throughput, resources) <= 0:
        raise ValueError("all inputs must be positive")
    speedup = throughput / base_throughput
    growth = resources / base_resources
    return speedup / growth


def resolution_to_cell_km(n_cells: int, fraction_of_sphere: float = 1.0) -> float:
    """Nominal horizontal resolution (km) from a global cell count.

    Uses the square root of mean cell area over the (fractional) sphere,
    the convention used when quoting "1-km" global grids.
    """
    if n_cells <= 0:
        raise ValueError("n_cells must be positive")
    area = 4.0 * math.pi * EARTH_RADIUS**2 * fraction_of_sphere
    return math.sqrt(area / n_cells) / 1000.0
