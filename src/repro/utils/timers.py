"""GPTL-style hierarchical timer registry.

The paper measures all performance with "timers from the GPTL in Coupler 7,
with the maximum value across all MPI ranks recorded", and derives SYPD with
the ``getTiming`` script.  This module reproduces that machinery:

* :class:`TimerRegistry` — named, nestable start/stop timers with call
  counts, accumulated wall time, and parent/child structure (like GPTL).
* :func:`get_timing` — the ``getTiming`` equivalent: given per-rank timer
  registries and the simulated interval, reports max-across-ranks wall time
  and the derived SYPD/SDPD.

Timers accept an injectable clock so that simulated executions (where
"wall time" comes from the machine performance model rather than the host
CPU) use exactly the same accounting path as real runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

__all__ = [
    "TimerNode",
    "TimerRegistry",
    "TimingReport",
    "get_timing",
]


@dataclass
class TimerNode:
    """Accumulated statistics for one named timer."""

    name: str
    count: int = 0
    total: float = 0.0
    # 0.0, not inf: a never-recorded timer must not report an infinite
    # minimum (it leaked into reports and min-across-ranks aggregates).
    min: float = 0.0
    max: float = 0.0
    children: Dict[str, "TimerNode"] = field(default_factory=dict)
    _started_at: Optional[float] = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def record(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        self.min = elapsed if self.count == 1 else min(self.min, elapsed)
        self.max = max(self.max, elapsed)


class TimerRegistry:
    """A GPTL-like registry of nestable named timers.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time in seconds.
        Defaults to :func:`time.perf_counter`.  Simulated runs pass the
        virtual clock of the machine model.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self._root = TimerNode(name="<root>")
        self._stack: List[TimerNode] = [self._root]

    # -- core API ----------------------------------------------------------

    def start(self, name: str) -> None:
        """Start (or resume) the timer ``name`` nested under the current one."""
        if any(n.name == name for n in self._stack[1:]):
            raise RuntimeError(f"timer {name!r} already running")
        parent = self._stack[-1]
        node = parent.children.get(name)
        if node is None:
            node = TimerNode(name=name)
            parent.children[name] = node
        if node.running:
            raise RuntimeError(f"timer {name!r} already running")
        node._started_at = self._clock()
        self._stack.append(node)

    def stop(self, name: str) -> float:
        """Stop timer ``name``; it must be the innermost running timer."""
        node = self._stack[-1]
        if node is self._root or node.name != name:
            raise RuntimeError(
                f"timer nesting violation: tried to stop {name!r}, "
                f"innermost is {node.name!r}"
            )
        assert node._started_at is not None
        elapsed = self._clock() - node._started_at
        node._started_at = None
        node.record(elapsed)
        self._stack.pop()
        return elapsed

    def timed(self, name: str):
        """Context manager form: ``with registry.timed("atm_run"): ...``."""
        registry = self

        class _Ctx:
            def __enter__(self) -> None:
                registry.start(name)

            def __exit__(self, *exc) -> None:
                registry.stop(name)

        return _Ctx()

    def add(self, name: str, elapsed: float) -> None:
        """Directly credit ``elapsed`` seconds to a top-level timer.

        Used by the machine performance model, which computes durations
        analytically instead of measuring them.
        """
        node = self._root.children.get(name)
        if node is None:
            node = TimerNode(name=name)
            self._root.children[name] = node
        node.record(elapsed)

    # -- queries -----------------------------------------------------------

    def total(self, name: str) -> float:
        """Accumulated seconds for ``name``, searched depth-first."""
        node = self._find(self._root, name)
        if node is None:
            raise KeyError(name)
        return node.total

    def names(self) -> List[str]:
        out: List[str] = []

        def walk(node: TimerNode) -> None:
            for child in node.children.values():
                out.append(child.name)
                walk(child)

        walk(self._root)
        return out

    def _find(self, node: TimerNode, name: str) -> Optional[TimerNode]:
        for child in node.children.values():
            if child.name == name:
                return child
            found = self._find(child, name)
            if found is not None:
                return found
        return None

    def report(self, indent: int = 2) -> str:
        """Human-readable nested report (like ``gptl`` output)."""
        lines = [
            f"{'timer':<40}{'calls':>8}{'total(s)':>14}{'mean(s)':>14}"
            f"{'min(s)':>14}{'max(s)':>14}"
        ]

        def walk(node: TimerNode, depth: int) -> None:
            for child in node.children.values():
                pad = " " * (indent * depth)
                lines.append(
                    f"{pad + child.name:<40}{child.count:>8}"
                    f"{child.total:>14.6f}{child.mean:>14.6f}"
                    f"{child.min:>14.6f}{child.max:>14.6f}"
                )
                walk(child, depth + 1)

        walk(self._root, 0)
        return "\n".join(lines)


@dataclass(frozen=True)
class TimingReport:
    """Result of :func:`get_timing`: the ``getTiming``-script equivalent."""

    timer: str
    n_ranks: int
    max_seconds: float
    min_seconds: float
    mean_seconds: float
    simulated_days: float
    sypd: float
    sdpd: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.timer}: max {self.max_seconds:.4f}s over {self.n_ranks} "
            f"ranks for {self.simulated_days:.2f} simulated days "
            f"-> {self.sypd:.3f} SYPD ({self.sdpd:.1f} SDPD)"
        )


def get_timing(
    registries: Iterable[TimerRegistry],
    timer: str,
    simulated_days: float,
) -> TimingReport:
    """Aggregate per-rank timers into an SYPD figure.

    Mirrors the paper's measurement mechanism: "Wall-clock time measurements
    are obtained using timers ... with the maximum value across all MPI ranks
    recorded to account for potential load imbalance."

    Parameters
    ----------
    registries:
        One :class:`TimerRegistry` per (simulated) MPI rank.
    timer:
        Name of the timer covering the model run loop.
    simulated_days:
        Length of the simulated interval in model days.
    """
    totals = [reg.total(timer) for reg in registries]
    if not totals:
        raise ValueError("no registries supplied")
    if simulated_days <= 0:
        raise ValueError("simulated_days must be positive")
    max_s = max(totals)
    if max_s <= 0:
        raise ValueError(f"timer {timer!r} accumulated no time")
    seconds_per_day = 86400.0
    days_per_year = 365.0
    # SYPD = simulated years per wall-clock day.
    sypd = (simulated_days / days_per_year) / (max_s / seconds_per_day)
    return TimingReport(
        timer=timer,
        n_ranks=len(totals),
        max_seconds=max_s,
        min_seconds=min(totals),
        mean_seconds=sum(totals) / len(totals),
        simulated_days=simulated_days,
        sypd=sypd,
        sdpd=sypd * days_per_year,
    )
