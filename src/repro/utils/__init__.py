"""Shared utilities: timers, units/constants, deterministic RNG."""

from .namelist import NamelistError, parse_namelist, read_namelist, write_namelist
from .rng import derive_seed, seeded
from .timers import TimerRegistry, TimingReport, get_timing
from .units import (
    DAYS_PER_YEAR,
    EARTH_OMEGA,
    EARTH_RADIUS,
    GRAVITY,
    SECONDS_PER_DAY,
    SECONDS_PER_YEAR,
    parallel_efficiency,
    resolution_to_cell_km,
    sdpd_from_sypd,
    sypd_from_sdpd,
    sypd_from_walltime,
    walltime_from_sypd,
)

__all__ = [
    "TimerRegistry",
    "parse_namelist",
    "read_namelist",
    "write_namelist",
    "NamelistError",
    "TimingReport",
    "get_timing",
    "seeded",
    "derive_seed",
    "DAYS_PER_YEAR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_YEAR",
    "EARTH_RADIUS",
    "EARTH_OMEGA",
    "GRAVITY",
    "sypd_from_walltime",
    "walltime_from_sypd",
    "sdpd_from_sypd",
    "sypd_from_sdpd",
    "parallel_efficiency",
    "resolution_to_cell_km",
]
