"""Fortran-namelist configuration files.

CESM/CPL7 configure everything through Fortran namelists, and the paper's
components inherit that culture ("large legacy codes").  This module
parses and writes the `&group ... /` format so AP3ESM configurations can
be driven from the same kind of file a CESM user would expect:

    &ap3esm_nml
      atm_level = 4
      ocn_nlon = 96, ocn_nlat = 64
      physics = 'conventional'          ! the AI suite plugs in at runtime
      couple_ratio = 5
    /

Supported value types: integers, reals (including Fortran's ``1.d0``
exponent form), logicals (``.true.``/``.false.``/T/F), quoted strings, and
comma-separated lists of those.  ``!`` comments are stripped.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Union

__all__ = ["parse_namelist", "read_namelist", "write_namelist", "NamelistError"]


class NamelistError(ValueError):
    """Raised for malformed namelist text."""


_GROUP_RE = re.compile(r"&\s*([A-Za-z_]\w*)(.*?)(?:^|\s)/", re.DOTALL | re.MULTILINE)
_ASSIGN_RE = re.compile(r"([A-Za-z_]\w*)\s*=\s*")


def _parse_scalar(token: str) -> Any:
    token = token.strip()
    if not token:
        raise NamelistError("empty value")
    low = token.lower()
    if low in (".true.", "t", ".t."):
        return True
    if low in (".false.", "f", ".f."):
        return False
    if (token[0] == token[-1] == "'" or token[0] == token[-1] == '"') and len(token) >= 2:
        return token[1:-1]
    # Fortran double-precision exponents: 1.5d3 -> 1.5e3.
    numeric = re.sub(r"[dD]([+-]?\d+)$", r"e\1", token)
    try:
        return int(numeric)
    except ValueError:
        pass
    try:
        return float(numeric)
    except ValueError:
        raise NamelistError(f"cannot parse value {token!r}") from None


def _split_values(text: str) -> List[str]:
    """Split a value blob on commas, respecting quoted strings."""
    parts: List[str] = []
    buf = []
    quote = None
    for ch in text:
        if quote:
            buf.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            buf.append(ch)
        elif ch == ",":
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if buf and "".join(buf).strip():
        parts.append("".join(buf))
    return [p.strip() for p in parts if p.strip()]


def parse_namelist(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse namelist text into {group: {variable: value}}.

    Scalar assignments give scalars; comma-separated assignments give
    lists.  Duplicate variables within a group: the last wins (Fortran
    semantics).
    """
    # Strip ! comments (not inside quotes — handled by a simple scan).
    lines = []
    for line in text.splitlines():
        out = []
        quote = None
        for ch in line:
            if quote:
                out.append(ch)
                if ch == quote:
                    quote = None
            elif ch in "'\"":
                quote = ch
                out.append(ch)
            elif ch == "!":
                break
            else:
                out.append(ch)
        lines.append("".join(out))
    clean = "\n".join(lines)

    groups: Dict[str, Dict[str, Any]] = {}
    matched_any = False
    for gm in _GROUP_RE.finditer(clean):
        matched_any = True
        name = gm.group(1).lower()
        body = gm.group(2)
        vars_: Dict[str, Any] = {}
        assigns = list(_ASSIGN_RE.finditer(body))
        for i, am in enumerate(assigns):
            key = am.group(1).lower()
            end = assigns[i + 1].start() if i + 1 < len(assigns) else len(body)
            raw = body[am.end() : end].strip().rstrip(",")
            values = [_parse_scalar(v) for v in _split_values(raw)]
            if not values:
                raise NamelistError(f"variable {key!r} has no value")
            vars_[key] = values[0] if len(values) == 1 else values
        groups[name] = vars_
    if not matched_any and clean.strip():
        raise NamelistError("no namelist groups found (missing '&group ... /')")
    return groups


def read_namelist(path: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    return parse_namelist(Path(path).read_text())


def _format_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return ".true." if value else ".false."
    if isinstance(value, str):
        return f"'{value}'"
    return repr(value)


def write_namelist(path: Union[str, Path], groups: Dict[str, Dict[str, Any]]) -> None:
    """Write {group: {var: value}} in namelist format (round-trips with
    :func:`read_namelist`)."""
    lines: List[str] = []
    for name, vars_ in groups.items():
        lines.append(f"&{name}")
        for key, value in vars_.items():
            if isinstance(value, (list, tuple)):
                rendered = ", ".join(_format_scalar(v) for v in value)
            else:
                rendered = _format_scalar(value)
            lines.append(f"  {key} = {rendered}")
        lines.append("/")
        lines.append("")
    Path(path).write_text("\n".join(lines))
