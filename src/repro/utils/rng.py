"""Deterministic random-number helpers.

Every stochastic piece of the library (synthetic initial states, AI-physics
training data, workload generators) draws from generators created here so
that tests and benchmarks are reproducible bit-for-bit across runs — the
same property the paper relies on for its bit-for-bit coupled-model
validation.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["seeded", "derive_seed"]


def derive_seed(*parts: object) -> int:
    """Derive a stable 63-bit seed from arbitrary labeled parts.

    Hashing (rather than summing) keeps distinct label tuples statistically
    independent: ``derive_seed("atm", 3)`` and ``derive_seed("ocn", 3)``
    share no structure.
    """
    payload = "\x1f".join(repr(p) for p in parts).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def seeded(*parts: object) -> np.random.Generator:
    """A numpy Generator deterministically seeded from labeled parts."""
    return np.random.default_rng(derive_seed(*parts))
