"""Structured observability: span tracing, metrics, and exporters.

The layer behind every performance number this reproduction reports —
the structured equivalent of the paper's GPTL timers + ``getTiming``
script.  See :class:`Obs` for the facade components accept, and
``docs/API.md`` for the quickstart.
"""

from .core import NULL_OBS, Obs, PrefixedObs
from .export import (
    chrome_trace_events,
    coupler_fastpath,
    kernel_measurements,
    text_report,
    timing_summary,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import Span, Tracer

__all__ = [
    "Obs",
    "PrefixedObs",
    "NULL_OBS",
    "Span",
    "Tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace_events",
    "write_chrome_trace",
    "text_report",
    "timing_summary",
    "coupler_fastpath",
    "kernel_measurements",
]
