"""Span-based structured tracer.

The paper instruments every component phase with GPTL timers and reads
them back through ``getTiming``; this module is the structured superset:
each measurement is a :class:`Span` — a named, nestable interval with
attributes — rather than only an accumulated total.  A finished trace can
be *degraded* back to a :class:`~repro.utils.timers.TimerRegistry`
(:meth:`Tracer.to_timer_registry`), so everything the flat timers could
report (totals, counts, min/max, SYPD via ``get_timing``) still works,
while the spans additionally carry start/end times, per-call attributes,
and the full nesting path needed for Chrome-trace export.

Like :class:`~repro.utils.timers.TimerRegistry`, the tracer takes an
injectable zero-argument clock, so simulated executions driven by the
machine model's virtual clock use the same accounting path as real runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..utils.timers import TimerRegistry

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One finished interval of a trace.

    ``path`` is the full nesting chain (outermost first, this span last);
    ``start`` is seconds on the tracer's clock since its epoch.
    """

    name: str
    start: float
    duration: float
    rank: int
    path: Tuple[str, ...]
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    @property
    def parent(self) -> Optional[str]:
        return self.path[-2] if len(self.path) > 1 else None

    @property
    def end(self) -> float:
        return self.start + self.duration


class Tracer:
    """Records nestable :class:`Span` s for one rank.

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds.  Defaults to
        :func:`time.perf_counter`; simulated runs pass the virtual clock
        of the machine model.
    rank:
        The (simulated) MPI rank this tracer belongs to; stamped on every
        span and used as the Chrome-trace ``pid``.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None, rank: int = 0) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self.rank = rank
        self.epoch = self._clock()
        self.spans: List[Span] = []
        self._stack: List[Tuple[str, float, Dict[str, Any]]] = []

    # -- core API ----------------------------------------------------------

    def begin(self, name: str, **attrs: Any) -> None:
        """Open a span nested under the currently open one."""
        self._stack.append((name, self._clock() - self.epoch, dict(attrs)))

    def end(self, name: Optional[str] = None) -> Span:
        """Close the innermost span (validating ``name`` if given)."""
        if not self._stack:
            raise RuntimeError("no span is open")
        open_name, start, attrs = self._stack[-1]
        if name is not None and name != open_name:
            raise RuntimeError(
                f"span nesting violation: tried to end {name!r}, "
                f"innermost is {open_name!r}"
            )
        self._stack.pop()
        span = Span(
            name=open_name,
            start=start,
            duration=(self._clock() - self.epoch) - start,
            rank=self.rank,
            path=tuple(n for (n, _, _) in self._stack) + (open_name,),
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def span(self, name: str, **attrs: Any):
        """Context-manager form: ``with tracer.span("atm_run", steps=4): ...``."""
        tracer = self

        class _Ctx:
            def __enter__(self) -> None:
                tracer.begin(name, **attrs)

            def __exit__(self, *exc) -> None:
                tracer.end(name)

        return _Ctx()

    @property
    def active(self) -> Optional[str]:
        """Name of the innermost open span, or None."""
        return self._stack[-1][0] if self._stack else None

    # -- queries -----------------------------------------------------------

    def find(self, name: str) -> List[Span]:
        """All finished spans named ``name``, in completion order."""
        return [s for s in self.spans if s.name == name]

    def total(self, name: str) -> float:
        """Accumulated duration of all spans named ``name``."""
        return sum(s.duration for s in self.find(name))

    def to_timer_registry(self) -> TimerRegistry:
        """Aggregate the finished spans into a GPTL-style registry.

        The resulting registry has the same nested structure, totals,
        counts, and min/max a :class:`TimerRegistry` would have recorded
        for the same execution — the tracer strictly subsumes it.
        """
        reg = TimerRegistry()
        # Completion order is children-before-parents; creation order of
        # registry nodes does not matter for the aggregate statistics.
        for span in self.spans:
            node = reg._root
            for part in span.path:
                child = node.children.get(part)
                if child is None:
                    child = type(node)(name=part)
                    node.children[part] = child
                node = child
            node.record(span.duration)
        return reg
