"""Metrics registry: counters, gauges, and histograms, per rank.

The coupler feeds it rearranger bytes/messages (from payload sizes and
the :class:`~repro.parallel.comm.TrafficLedger`), the ESM driver feeds it
per-component step counts, and subfile I/O feeds it bytes/files moved.
:func:`MetricsRegistry.aggregate` merges per-rank registries into
min/max/sum/mean summaries — the same max-across-ranks convention the
paper's ``getTiming`` applies to timers.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from ..parallel.comm import TrafficLedger

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (messages sent, bytes written...)."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """Point-in-time value (queue depth, current SYPD, ledger total...)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


class Histogram:
    """Distribution sketch: count/sum/min/max plus log2 buckets.

    Buckets hold counts of observations with ``2**(i-1) < v <= 2**i``
    (index by ``ceil(log2 v)``), which is enough resolution for message
    sizes and phase durations without storing samples.
    """

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = 0.0
        self.max = 0.0
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.count == 1 else min(self.min, value)
        self.max = max(self.max, value)
        exp = math.ceil(math.log2(value)) if value > 0 else 0
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named metrics for one (simulated) rank."""

    def __init__(self, rank: int = 0) -> None:
        self.rank = rank
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics[name]

    def record_traffic(self, ledger: TrafficLedger, prefix: str = "comm") -> None:
        """Mirror a :class:`TrafficLedger`'s cumulative totals as gauges."""
        self.gauge(f"{prefix}.p2p_messages").set(ledger.p2p_messages)
        self.gauge(f"{prefix}.p2p_bytes").set(ledger.p2p_bytes)
        self.gauge(f"{prefix}.total_messages").set(ledger.total_messages)
        self.gauge(f"{prefix}.total_bytes").set(ledger.total_bytes)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}

    def report(self) -> str:
        """Per-rank text report, one metric per line."""
        lines = [f"{'metric':<44}{'kind':>10}{'value':>16}"]
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Histogram):
                value = (
                    f"n={m.count} sum={m.sum:.6g} "
                    f"min={m.min:.6g} max={m.max:.6g}"
                )
                lines.append(f"{name:<44}{m.kind:>10}  {value}")
            else:
                lines.append(f"{name:<44}{m.kind:>10}{m.value:>16.6g}")
        return "\n".join(lines)

    # -- cross-rank aggregation -------------------------------------------

    @staticmethod
    def aggregate(
        registries: Iterable["MetricsRegistry"],
        names: Optional[Iterable[str]] = None,
    ) -> Dict[str, Dict[str, float]]:
        """Combine per-rank registries into min/max/sum/mean summaries.

        Counters and gauges aggregate over their values; histograms over
        their per-rank counts/sums (min/max take the extreme across
        ranks).  A metric missing on some ranks aggregates over the ranks
        that have it (``n_ranks`` records how many).
        """
        regs = list(registries)
        if not regs:
            raise ValueError("no registries supplied")
        wanted = set(names) if names is not None else None
        per_name: Dict[str, List[object]] = {}
        for reg in regs:
            for name in reg.names():
                if wanted is not None and name not in wanted:
                    continue
                per_name.setdefault(name, []).append(reg.get(name))
        out: Dict[str, Dict[str, float]] = {}
        for name, metrics in sorted(per_name.items()):
            if isinstance(metrics[0], Histogram):
                counts = [m.count for m in metrics]
                sums = [m.sum for m in metrics]
                out[name] = {
                    "n_ranks": float(len(metrics)),
                    "count": float(sum(counts)),
                    "sum": float(sum(sums)),
                    "min": float(min(m.min for m in metrics)),
                    "max": float(max(m.max for m in metrics)),
                }
            else:
                values = [m.value for m in metrics]
                out[name] = {
                    "n_ranks": float(len(metrics)),
                    "min": float(min(values)),
                    "max": float(max(values)),
                    "sum": float(sum(values)),
                    "mean": float(sum(values) / len(values)),
                }
        return out
