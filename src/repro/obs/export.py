"""Trace/metric exporters.

Three output formats, matching how the paper's numbers were consumed:

* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the Chrome
  Trace Event JSON format (open in ``chrome://tracing`` or Perfetto):
  one complete-duration ("ph": "X") event per span, ``pid`` = rank,
  timestamps in microseconds;
* :func:`text_report` — a per-rank plain-text report: the nested span
  aggregate (GPTL-style) plus the metrics table;
* :func:`timing_summary` — the ``getTiming`` equivalent: max-across-ranks
  wall time of one span and the derived SYPD, via
  :func:`repro.utils.timers.get_timing`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..utils.timers import TimingReport, get_timing
from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "text_report",
    "timing_summary",
    "resilience_interventions",
    "coupler_fastpath",
    "kernel_measurements",
]


def resilience_interventions(
    metrics: Iterable[MetricsRegistry],
) -> Dict[str, float]:
    """Total every nonzero ``resilience.*`` and ``ensemble.supervisor.*``
    counter across ranks.

    The resilience layer counts each intervention (retries, checkpoint
    fallbacks, physics fallbacks, recoveries, replayed work, spares
    used), and the fleet supervisor counts its member-level ones
    (quarantines, restarts, escalations, replayed couplings); a run that
    needed none returns ``{}``.
    """
    totals: Dict[str, float] = {}
    for reg in metrics:
        for name in reg.names():
            if not (name.startswith("resilience.")
                    or name.startswith("ensemble.supervisor.")):
                continue
            metric = reg.get(name)
            if getattr(metric, "kind", None) == "counter" and metric.value:
                totals[name] = totals.get(name, 0.0) + metric.value
    return totals


def coupler_fastpath(metrics: Iterable[MetricsRegistry]) -> Dict[str, float]:
    """Total every nonzero ``coupler.*``/``cpl.plan.*`` counter across
    ranks — the fast-path ledger (cache hits/misses, exchange traffic,
    pruning savings, coalesced-plan messages).  A run that never touched
    the fast path returns ``{}``.
    """
    totals: Dict[str, float] = {}
    for reg in metrics:
        for name in reg.names():
            if not (name.startswith("coupler.") or name.startswith("cpl.plan.")):
                continue
            metric = reg.get(name)
            if getattr(metric, "kind", None) == "counter" and metric.value:
                totals[name] = totals.get(name, 0.0) + metric.value
    return totals


def kernel_measurements(
    metrics: Iterable[MetricsRegistry],
) -> Dict[str, Dict[str, float]]:
    """Collect per-kernel pp measurements across ranks.

    The pp layer publishes ``pp.<kernel>.launches`` (counter),
    ``pp.<kernel>.iterations`` (histogram) and ``pp.<kernel>.seconds``
    (counter of measured wall time) through
    :class:`repro.pp.stats.ObsKernelStats`.  This exporter inverts those
    names back into ``{kernel: {launches, iterations, seconds}}`` — the
    measured side of the modeled-vs-measured loop that
    :mod:`repro.machine.calibrate` closes.  Tile gauges (``pp.tile.*``)
    and totals gauges are excluded; a run that launched no instrumented
    kernels returns ``{}``.
    """
    out: Dict[str, Dict[str, float]] = {}
    for reg in metrics:
        for name in reg.names():
            if not name.startswith("pp.") or name.startswith("pp.tile."):
                continue
            kernel, _, field = name[len("pp."):].rpartition(".")
            if field not in ("launches", "iterations", "seconds") or not kernel:
                continue
            metric = reg.get(name)
            kind = getattr(metric, "kind", None)
            if field == "iterations":
                if kind != "histogram":
                    continue
                value = metric.sum
            else:
                if kind != "counter":
                    continue
                value = metric.value
            rec = out.setdefault(
                kernel, {"launches": 0.0, "iterations": 0.0, "seconds": 0.0}
            )
            rec[field] += value
    return out


def _jsonable(value: Any) -> Any:
    """Coerce span attributes to JSON-safe scalars."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def chrome_trace_events(tracers: Iterable[Tracer]) -> List[Dict[str, Any]]:
    """Flatten per-rank tracers into Chrome Trace Event dicts.

    Every span becomes ``{"name", "cat", "ph": "X", "ts", "dur", "pid",
    "tid", "args"}`` with ``ts``/``dur`` in microseconds and the rank as
    ``pid`` (so Perfetto draws one lane per rank); ``cat`` carries the
    parent chain for filtering.
    """
    events: List[Dict[str, Any]] = []
    for tracer in tracers:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": tracer.rank,
            "tid": 0,
            "args": {"name": f"rank {tracer.rank}"},
        })
        for span in tracer.spans:
            events.append({
                "name": span.name,
                "cat": "/".join(span.path[:-1]) or "root",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.rank,
                "tid": 0,
                "args": {k: _jsonable(v) for k, v in span.attrs.items()},
            })
    return events


def write_chrome_trace(
    path: Union[str, Path],
    tracers: Iterable[Tracer],
    metrics: Optional[Iterable[MetricsRegistry]] = None,
) -> Path:
    """Write a ``trace.json`` loadable by chrome://tracing / Perfetto.

    Aggregated metrics (if given) ride along under ``otherData`` where
    the trace viewer surfaces them as run metadata.
    """
    path = Path(path)
    doc: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracers),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        regs = list(metrics)
        if regs:
            doc["otherData"] = {
                name: summary
                for name, summary in MetricsRegistry.aggregate(regs).items()
            }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc))
    return path


def text_report(
    tracers: Iterable[Tracer],
    metrics: Optional[Iterable[MetricsRegistry]] = None,
) -> str:
    """Per-rank human-readable report: span aggregates + metrics."""
    sections: List[str] = []
    tracer_list = list(tracers)
    metric_list = list(metrics) if metrics is not None else []
    by_rank: Dict[int, MetricsRegistry] = {m.rank: m for m in metric_list}
    for tracer in tracer_list:
        sections.append(f"== rank {tracer.rank} ==")
        sections.append(tracer.to_timer_registry().report())
        reg = by_rank.get(tracer.rank)
        if reg is not None and reg.names():
            sections.append(reg.report())
    orphan_metrics = [m for m in metric_list if m.rank not in {t.rank for t in tracer_list}]
    for reg in orphan_metrics:
        sections.append(f"== rank {reg.rank} (metrics only) ==")
        sections.append(reg.report())
    if len(metric_list) > 1:
        sections.append("== aggregate across ranks ==")
        agg = MetricsRegistry.aggregate(metric_list)
        lines = [f"{'metric':<44}{'min':>14}{'max':>14}{'sum':>16}"]
        for name, summary in agg.items():
            lines.append(
                f"{name:<44}{summary['min']:>14.6g}{summary['max']:>14.6g}"
                f"{summary['sum']:>16.6g}"
            )
        sections.append("\n".join(lines))
    interventions = resilience_interventions(metric_list)
    if interventions:
        lines = ["== resilience interventions =="]
        for name in sorted(interventions):
            lines.append(f"{name:<44}{interventions[name]:>14g}")
        sections.append("\n".join(lines))
    fastpath = coupler_fastpath(metric_list)
    if fastpath:
        lines = ["== coupler fast path =="]
        for name in sorted(fastpath):
            lines.append(f"{name:<44}{fastpath[name]:>14g}")
        sections.append("\n".join(lines))
    kernels = kernel_measurements(metric_list)
    if any(rec["seconds"] > 0 for rec in kernels.values()):
        lines = [
            "== pp kernel measurements ==",
            f"{'kernel':<36}{'launches':>10}{'iterations':>14}{'seconds':>12}",
        ]
        for name in sorted(kernels):
            rec = kernels[name]
            lines.append(
                f"{name:<36}{rec['launches']:>10g}{rec['iterations']:>14g}"
                f"{rec['seconds']:>12.4g}"
            )
        sections.append("\n".join(lines))
    return "\n".join(sections)


def timing_summary(
    tracers: Iterable[Tracer],
    span: str,
    simulated_days: float,
) -> TimingReport:
    """``getTiming``-compatible SYPD summary over one span name.

    Each tracer degrades to its timer registry; :func:`get_timing` then
    applies the paper's max-across-ranks convention.
    """
    return get_timing(
        [t.to_timer_registry() for t in tracers], span, simulated_days
    )
