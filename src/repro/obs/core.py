"""The :class:`Obs` facade: one handle bundling tracer + metrics.

Components take ``obs: Obs | None = None``; a live handle records spans
and metrics, ``None`` (or a disabled handle) costs one branch per call
site — the contract that keeps tracing-off overhead negligible on hot
paths like the rearranger.

SPMD programs call :meth:`Obs.fork` once per simulated rank; forks share
the parent's clock and show up as separate ``pid`` lanes in the exported
Chrome trace and as separate rows in cross-rank metric aggregation.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..utils.timers import TimingReport
from .export import text_report, timing_summary, write_chrome_trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import Tracer

__all__ = ["Obs", "PrefixedObs", "NULL_OBS"]


class _NoopCtx:
    """Shared do-nothing context manager for disabled observability."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


class _NoopMetric:
    """Accepts any metric update and drops it."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP_CTX = _NoopCtx()
_NOOP_METRIC = _NoopMetric()


class Obs:
    """Observability handle for one rank: a tracer plus a metrics registry.

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds; defaults to
        :func:`time.perf_counter`.  Pass the machine model's virtual clock
        to trace simulated executions on simulated time.
    enabled:
        When False every call is a no-op (shared null objects, no
        allocation); :data:`NULL_OBS` is the ready-made disabled handle.
    rank:
        The (simulated) MPI rank, stamped on spans and metrics.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        rank: int = 0,
    ) -> None:
        self.enabled = enabled
        self.rank = rank
        self._clock = clock if clock is not None else time.perf_counter
        self.tracer = Tracer(clock=self._clock, rank=rank)
        self.metrics = MetricsRegistry(rank=rank)
        self._children: Dict[int, "Obs"] = {}
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        if not self.enabled:
            return _NOOP_CTX
        return self.tracer.span(name, **attrs)

    def counter(self, name: str) -> Union[Counter, _NoopMetric]:
        return self.metrics.counter(name) if self.enabled else _NOOP_METRIC

    def gauge(self, name: str) -> Union[Gauge, _NoopMetric]:
        return self.metrics.gauge(name) if self.enabled else _NOOP_METRIC

    def histogram(self, name: str) -> Union[Histogram, _NoopMetric]:
        return self.metrics.histogram(name) if self.enabled else _NOOP_METRIC

    # -- namespacing -------------------------------------------------------

    def prefixed(self, prefix: str) -> "Obs":
        """A view of this handle that prepends ``prefix + '.'`` to every
        span and metric name — how ensemble members share one parent
        registry without colliding (``member.<k>.*``).  Disabled handles
        return themselves: the no-op fast path stays a single branch.
        """
        if not self.enabled:
            return self
        return PrefixedObs(self, prefix)

    # -- SPMD --------------------------------------------------------------

    def fork(self, rank: int) -> "Obs":
        """Per-rank child handle (thread-safe; idempotent per rank).

        Children share the parent's clock and enabled flag and are
        included in the parent's exports.
        """
        with self._lock:
            child = self._children.get(rank)
            if child is None:
                child = Obs(clock=self._clock, enabled=self.enabled, rank=rank)
                self._children[rank] = child
            return child

    def all_ranks(self) -> List["Obs"]:
        """This handle plus every fork, ordered by rank."""
        with self._lock:
            children = sorted(self._children.values(), key=lambda o: o.rank)
        return [self] + children

    # -- export ------------------------------------------------------------

    def _recorded(self) -> List["Obs"]:
        """Handles that actually recorded something (drops an idle parent)."""
        handles = [
            o for o in self.all_ranks()
            if o.tracer.spans or o.metrics.names()
        ]
        return handles or [self]

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        handles = self._recorded()
        return write_chrome_trace(
            path,
            [o.tracer for o in handles],
            [o.metrics for o in handles],
        )

    def report(self) -> str:
        handles = self._recorded()
        return text_report(
            [o.tracer for o in handles], [o.metrics for o in handles]
        )

    def timing(self, span: str, simulated_days: float) -> TimingReport:
        """Max-across-ranks SYPD summary for ``span`` (getTiming shape)."""
        return timing_summary(
            [o.tracer for o in self._recorded()], span, simulated_days
        )


class PrefixedObs:
    """Name-prefixing view over a base :class:`Obs` handle.

    Records through the *base* tracer/metrics (so exports aggregate all
    members in one place) but under ``<prefix>.<name>``.  Everything not
    name-shaped — exports, forks' bookkeeping, ``tracer``/``metrics``
    attributes — delegates to the base handle unchanged.
    """

    def __init__(self, base: Obs, prefix: str) -> None:
        self._base = base
        self.prefix = prefix

    @property
    def enabled(self) -> bool:
        return self._base.enabled

    @property
    def rank(self) -> int:
        return self._base.rank

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def span(self, name: str, **attrs: Any):
        return self._base.span(self._name(name), **attrs)

    def counter(self, name: str):
        return self._base.counter(self._name(name))

    def gauge(self, name: str):
        return self._base.gauge(self._name(name))

    def histogram(self, name: str):
        return self._base.histogram(self._name(name))

    def prefixed(self, prefix: str) -> "Obs | PrefixedObs":
        """Chain prefixes: ``obs.prefixed('member.0').prefixed('cpl')``
        records under ``member.0.cpl.*``."""
        if not self._base.enabled:
            return self._base
        return PrefixedObs(self._base, self._name(prefix))

    def __getattr__(self, attr: str):
        return getattr(self._base, attr)


NULL_OBS = Obs(enabled=False)
"""Shared disabled handle: every span/metric call is a no-op."""
