"""Model configurations: the paper's Table 1 plus laptop-scale test grids.

Table 1 lists five GRIST resolutions (1/3/6/10/25 km) with their
cell/edge/vertex counts, five LICOM resolutions (1/2/3/5/10 km) with their
tripolar dimensions, and five AP3ESM pairings (1v1 ... 25v10) with total
grid counts.  :data:`GRIST_CONFIGS` / :data:`LICOM_CONFIGS` /
:data:`AP3ESM_CONFIGS` encode the published numbers; the ``*_counts``
helpers recompute them from first principles (icosahedral Euler relations,
nlon x nlat x 80) so the Table 1 benchmark can verify them rather than
echo them.

Coupling frequencies (§6.1): atm 180, ocn 36, ice 180 couplings per day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "GristGridConfig",
    "LicomGridConfig",
    "AP3ESMPairing",
    "GRIST_CONFIGS",
    "LICOM_CONFIGS",
    "AP3ESM_CONFIGS",
    "COUPLING_FREQUENCIES_PER_DAY",
    "grist_counts_from_triangles",
    "grist_counts_from_hexagons",
    "licom_grid_points",
]

COUPLING_FREQUENCIES_PER_DAY = {"atm": 180.0, "ocn": 36.0, "ice": 180.0}


@dataclass(frozen=True)
class GristGridConfig:
    """One GRIST row of Table 1.

    Table 1 mixes two counting conventions (a quirk this reproduction
    preserves and tests): the **1-km row counts triangles** ("cells" :
    edges : vertices = 2 : 3 : 1, matching icosahedral level 12 exactly),
    while the **3-25 km rows count hexagons** (1 : 3 : 2, matching levels
    11, 10, 9, 8).  ``convention`` records which one applies.
    """

    resolution_km: float
    cells: float
    edges: float
    vertices: float
    grid_points: float  # "No. of Grids" column
    levels: int = 30
    convention: str = "hexagon"  # or "triangle"

    @property
    def icos_level(self) -> int:
        """Subdivision level whose counts match this row."""
        import math

        if self.convention == "triangle":
            return round(math.log(self.cells / 20.0, 4.0))
        return round(math.log((self.cells - 2.0) / 10.0, 4.0))


@dataclass(frozen=True)
class LicomGridConfig:
    """One LICOM row of Table 1."""

    resolution_km: float
    nlon: int
    nlat: int
    grid_points: float
    levels: int = 80


@dataclass(frozen=True)
class AP3ESMPairing:
    """One coupled configuration (label like '3v2')."""

    label: str
    atm_resolution_km: float
    ocn_resolution_km: float
    total_grid_points: float

    @property
    def atm(self) -> GristGridConfig:
        return GRIST_CONFIGS[self.atm_resolution_km]

    @property
    def ocn(self) -> LicomGridConfig:
        return LICOM_CONFIGS[self.ocn_resolution_km]


GRIST_CONFIGS: Dict[float, GristGridConfig] = {
    1.0: GristGridConfig(1.0, 3.4e8, 5.0e8, 1.7e8, 8.6e9, convention="triangle"),
    3.0: GristGridConfig(3.0, 4.2e7, 1.3e8, 8.4e7, 2.1e9),
    6.0: GristGridConfig(6.0, 1.1e7, 3.2e7, 2.1e7, 5.4e8),
    10.0: GristGridConfig(10.0, 2.6e6, 7.9e6, 5.2e6, 1.9e8),
    25.0: GristGridConfig(25.0, 6.7e5, 2.0e6, 1.3e6, 3.1e7),
}

LICOM_CONFIGS: Dict[float, LicomGridConfig] = {
    1.0: LicomGridConfig(1.0, 36000, 22018, 6.3e10),
    2.0: LicomGridConfig(2.0, 18000, 11511, 1.3e10),
    3.0: LicomGridConfig(3.0, 10800, 6907, 5.8e9),
    5.0: LicomGridConfig(5.0, 7200, 4605, 2.1e9),
    10.0: LicomGridConfig(10.0, 3600, 2302, 5.2e8),
}

AP3ESM_CONFIGS: Dict[str, AP3ESMPairing] = {
    "1v1": AP3ESMPairing("1v1", 1.0, 1.0, 7.2e10),
    "3v2": AP3ESMPairing("3v2", 3.0, 2.0, 1.5e10),
    "6v3": AP3ESMPairing("6v3", 6.0, 3.0, 6.3e9),
    "10v5": AP3ESMPairing("10v5", 10.0, 5.0, 2.3e9),
    "25v10": AP3ESMPairing("25v10", 25.0, 10.0, 5.5e8),
}


def grist_counts_from_triangles(n_triangles: float) -> Tuple[float, float]:
    """(edges, vertices) from a triangle count via Euler's relations:
    for a closed triangulation, E = 3F/2 and V = F/2 + 2."""
    return 1.5 * n_triangles, 0.5 * n_triangles + 2


def grist_counts_from_hexagons(n_hexagons: float) -> Tuple[float, float]:
    """(edges, triangles) from a hexagon-cell count: E = 3C - 6,
    T = 2C - 4 on the closed dual mesh."""
    return 3.0 * n_hexagons - 6, 2.0 * n_hexagons - 4


def licom_grid_points(cfg: LicomGridConfig) -> float:
    """Total 3-D box points of a LICOM configuration."""
    return float(cfg.nlon) * cfg.nlat * cfg.levels
