"""The coupled AP3ESM: configurations, driver, typhoon case, diagnostics."""

from .ap3esm import AP3ESM, AP3ESMConfig
from .ensemble import (
    BatchedPhysicsDriver,
    EnsembleConfig,
    EnsembleRun,
    LockstepAtmospheres,
)
from .component import (
    Component,
    ComponentContext,
    default_mixed_policy,
    precision_policy,
)
from .scheduler import (
    PAPER_DOMAINS,
    TaskDomain,
    TaskDomainScheduler,
    paper_layout,
)
from .config import (
    AP3ESM_CONFIGS,
    COUPLING_FREQUENCIES_PER_DAY,
    GRIST_CONFIGS,
    LICOM_CONFIGS,
    AP3ESMPairing,
    GristGridConfig,
    LicomGridConfig,
    grist_counts_from_hexagons,
    grist_counts_from_triangles,
    licom_grid_points,
)
from .diagnostics import (
    atm_snapshot,
    structure_function,
    cold_wake,
    surface_kinetic_energy,
    surface_rossby_number,
    surface_speed,
    wind_speed_10m,
)
from .typhoon import (
    HollandVortex,
    TyphoonExperiment,
    VortexFix,
    VortexTracker,
    inject_vortex,
    track_distance,
)

__all__ = [
    "AP3ESM",
    "AP3ESMConfig",
    "EnsembleConfig",
    "EnsembleRun",
    "BatchedPhysicsDriver",
    "LockstepAtmospheres",
    "Component",
    "ComponentContext",
    "default_mixed_policy",
    "precision_policy",
    "TaskDomain",
    "TaskDomainScheduler",
    "PAPER_DOMAINS",
    "paper_layout",
    "GristGridConfig",
    "LicomGridConfig",
    "AP3ESMPairing",
    "GRIST_CONFIGS",
    "LICOM_CONFIGS",
    "AP3ESM_CONFIGS",
    "COUPLING_FREQUENCIES_PER_DAY",
    "grist_counts_from_triangles",
    "grist_counts_from_hexagons",
    "licom_grid_points",
    "surface_rossby_number",
    "surface_kinetic_energy",
    "surface_speed",
    "wind_speed_10m",
    "cold_wake",
    "atm_snapshot",
    "structure_function",
    "HollandVortex",
    "inject_vortex",
    "VortexFix",
    "VortexTracker",
    "TyphoonExperiment",
    "track_distance",
]
