"""Multi-instance experiment sessions: N coupled models in one process.

The production service the ROADMAP aims at runs *many* AP³ESM scenarios
per process, not one.  This module is the session layer that makes that
real:

* :class:`EnsembleConfig` — a base :class:`AP3ESMConfig` plus per-member
  config deltas and seeded initial-condition perturbations
  (``utils.rng.seeded`` under the ``("ensemble.member", seed, k)``
  namespace, so members are deterministic and mutually distinct);
* :class:`EnsembleRun` — constructs N perturbed-member :class:`AP3ESM`
  instances sharing warm infrastructure (ONE :class:`CouplerCache`, ONE
  process-pool backend, per-member ``member.<k>.*`` obs prefixes into
  one parent registry) and steps them in lockstep;
* :class:`BatchedPhysicsDriver` — the raw-speed centerpiece: all
  members' physics input columns are stacked into a SINGLE suite call
  (one CNN/MLP forward — one GEMM — serves the whole fleet), then the
  tendencies are scattered back per member.  Batched output is
  bitwise-identical to per-member inference: column independence plus
  the fixed per-row GEMM reduction order in :mod:`repro.ai.layers`;
* :class:`LockstepAtmospheres` — the credit scheme that lets each
  member's unmodified coupling loop participate: the first member's
  atmosphere run advances *every* member's atmosphere through
  ``begin_step`` → one batched compute → ``complete_step``, granting
  step credits the other members consume when their own loops arrive.

Member 0 is never perturbed, so a zero-delta member 0 is
bitwise-identical to a solo ``AP3ESM`` run — the twin the CI smoke job
checks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:
    from ..resilience.faults import FaultPlan
    from ..resilience.supervisor import FleetSupervisor

from ..atm.columns import ColumnState
from ..atm.physics import ConventionalPhysics, PhysicsTendencies
from ..coupler import CouplerCache
from ..obs import NULL_OBS, Obs
from ..pp import make_backend
from ..utils.rng import seeded
from ..utils.timers import get_timing
from .ap3esm import AP3ESM, AP3ESMConfig

__all__ = [
    "EnsembleConfig",
    "EnsembleRun",
    "BatchedPhysicsDriver",
    "LockstepAtmospheres",
]


@dataclass
class EnsembleConfig:
    """One ensemble session: N members around a base configuration."""

    base: AP3ESMConfig = field(default_factory=AP3ESMConfig)
    members: int = 2
    #: Namespace seed for the member perturbations; the per-member stream
    #: is ``seeded("ensemble.member", perturb_seed, k)``.
    perturb_seed: int = 0
    #: Gaussian perturbation amplitude (K) applied to the atmosphere
    #: temperature columns of members k >= 1.  Member 0 is never
    #: perturbed (the bitwise solo twin).
    perturb_amplitude: float = 1e-3
    #: Stack all members' physics columns into one suite call per step.
    batch_physics: bool = False
    #: Optional per-member config overrides (``dataclasses.replace``
    #: deltas onto ``base``); shorter lists leave trailing members at the
    #: base configuration.
    config_deltas: Optional[Sequence[Dict[str, object]]] = None
    #: Optional :class:`~repro.resilience.faults.FaultPlan` whose
    #: member-scoped entries the fleet supervisor injects at each
    #: member's fault boundary (requires ``base.resilience.enabled``).
    fault_plan: Optional["FaultPlan"] = None

    def __post_init__(self) -> None:
        if self.members < 1:
            raise ValueError("an ensemble needs at least one member")

    def member_config(self, k: int) -> AP3ESMConfig:
        """The k-th member's configuration (base + delta)."""
        delta: Dict[str, object] = {}
        if self.config_deltas is not None and k < len(self.config_deltas):
            delta = dict(self.config_deltas[k])
        valid = {f.name for f in dataclasses.fields(AP3ESMConfig)}
        unknown = set(delta) - valid
        if unknown:
            raise ValueError(
                f"member {k} config delta has unknown keys: {sorted(unknown)}"
            )
        return dataclasses.replace(self.base, **delta)


def _batchable_suites(suites: Sequence[object]) -> None:
    """Validate the member physics suites can share one batched call.

    Batched inference runs member 0's suite over the stacked columns, so
    every member's suite must be *equivalent*: literally the same object,
    or conventional suites with equal parameters.  Guarded suites are
    rejected — the guardrail's per-column fallback bookkeeping is
    per-member state a fleet call cannot attribute.
    """
    first = suites[0]
    for k, suite in enumerate(suites):
        if hasattr(suite, "fallback_columns_total"):
            raise ValueError(
                "batch_physics is incompatible with the physics guardrail "
                "(resilience.guard_physics): per-member fallback accounting "
                "cannot be attributed through a fleet call"
            )
        if suite is first:
            continue
        if isinstance(first, ConventionalPhysics) and isinstance(suite, ConventionalPhysics):
            if suite.params == first.params:
                continue
            raise ValueError(
                f"member {k} has different physics parameters than member 0; "
                "batched physics requires equivalent suites"
            )
        raise ValueError(
            f"member {k} physics suite differs from member 0 "
            f"({type(suite).__name__} vs {type(first).__name__}); share one "
            "suite object across members to batch"
        )


class BatchedPhysicsDriver:
    """Cross-member batched physics: one suite call serves the fleet.

    ``compute`` gathers every member's :class:`ColumnState` into a single
    stacked batch, runs ONE ``suite.compute`` (member 0's suite), and
    splits the tendencies back per member — bitwise-identical to calling
    each member's suite on its own columns, which
    :meth:`compute_sequential` does for the comparison path.
    """

    def __init__(
        self,
        suites: Sequence[object],
        batch: bool = True,
        obs: Obs | None = None,
    ) -> None:
        if not suites:
            raise ValueError("need at least one physics suite")
        if batch:
            _batchable_suites(suites)
        self.suites = list(suites)
        self.batch = batch
        self.obs = obs if obs is not None else NULL_OBS
        self.fleet_calls = 0
        self.member_calls = 0
        self.columns_total = 0

    def compute(
        self, cols: Sequence[ColumnState], dt_s: float
    ) -> List[PhysicsTendencies]:
        if self.batch:
            return self.compute_batched(cols, dt_s)
        return self.compute_sequential(cols, dt_s)

    def compute_batched(
        self, cols: Sequence[ColumnState], dt_s: float
    ) -> List[PhysicsTendencies]:
        """One stacked suite call, scattered back per member."""
        sizes = [c.ncol for c in cols]
        stacked = ColumnState.concat(cols)
        tend = self.suites[0].compute(stacked, dt_s)
        self.fleet_calls += 1
        self.columns_total += stacked.ncol
        self.obs.counter("ensemble.physics.fleet_calls").inc()
        self.obs.counter("ensemble.physics.columns").inc(stacked.ncol)
        return tend.split(sizes)

    def compute_sequential(
        self, cols: Sequence[ColumnState], dt_s: float
    ) -> List[PhysicsTendencies]:
        """Per-member suite calls (the pre-batching baseline)."""
        self.member_calls += len(cols)
        self.obs.counter("ensemble.physics.member_calls").inc(len(cols))
        return [
            suite.compute(c, dt_s) for suite, c in zip(self.suites, cols)
        ]

    def remove_member(self, i: int) -> None:
        """Dynamic membership: drop member ``i``'s suite slot (the fleet
        supervisor quarantined it).  The stacked batch simply shrinks —
        column independence keeps the survivors' results bitwise-equal to
        a batch that never contained the removed member."""
        del self.suites[i]


class LockstepAtmospheres:
    """Credit-based lockstep stepping of every member's atmosphere.

    Installed as each member's ``_atm_runner``: the first member whose
    coupling loop asks for atmosphere steps advances the WHOLE fleet —
    every atmosphere's ``begin_step`` (dynamics), one batched physics
    compute, every ``complete_step`` (apply + clock) — and grants one
    step credit per member.  The other members' loops then consume their
    credits instead of re-stepping.  Each member's atmosphere state is
    mutated only by its own begin/complete pair, so the interleaving is
    bitwise-equivalent to every member stepping alone.
    """

    def __init__(self, atms: Sequence[object], driver: BatchedPhysicsDriver) -> None:
        self._atms = list(atms)
        self._index = {id(a): i for i, a in enumerate(self._atms)}
        self._credits = [0] * len(self._atms)
        self.driver = driver
        dts = {float(a.dt_model) for a in self._atms}
        if len(dts) != 1:
            raise ValueError(
                f"lockstep members must share the atmosphere model step; got {sorted(dts)}"
            )
        self.dt_model = dts.pop()
        self.fleet_steps = 0

    def install(self, members: Sequence[AP3ESM]) -> None:
        for m in members:
            m._atm_runner = self.run

    def run(self, atm, n_steps: int) -> None:
        """The ``_atm_runner`` hook: advance ``atm`` by ``n_steps``,
        stepping the whole fleet for any step not yet credited."""
        k = self._index[id(atm)]
        for _ in range(n_steps):
            if self._credits[k] == 0:
                self._advance_fleet()
            self._credits[k] -= 1

    def _advance_fleet(self) -> None:
        cols = [a.begin_step() for a in self._atms]
        tends = self.driver.compute(cols, self.dt_model)
        for a, tend in zip(self._atms, tends):
            a.complete_step(tend)
        for i in range(len(self._credits)):
            self._credits[i] += 1
        self.fleet_steps += 1

    # -- dynamic membership (fleet supervisor) -----------------------------

    def remove(self, atm) -> None:
        """Drop ``atm`` from the lockstep fleet (quarantine): its credits
        are discarded and the batched stack shrinks with it.  Removing an
        unknown atmosphere is a no-op."""
        i = self._index.get(id(atm))
        if i is None:
            return
        del self._atms[i]
        del self._credits[i]
        self._index = {id(a): j for j, a in enumerate(self._atms)}
        self.driver.remove_member(i)

    def clear_credits(self, atm) -> None:
        """Zero ``atm``'s step credits before a checkpoint rollback: any
        fleet advance the member received this coupling is invalidated by
        the restore, and the solo replay re-earns its place."""
        i = self._index.get(id(atm))
        if i is not None:
            self._credits[i] = 0


class EnsembleRun:
    """N lockstep coupled experiments sharing warm infrastructure.

    Lifecycle mirrors :class:`AP3ESM`: ``init()`` →
    ``run_couplings(n)``/``step_coupling()`` → ``summary()`` →
    ``finalize()``.  One process pool and one coupler cache are built
    once and handed to every member; each member records observability
    under its ``member.<k>.*`` prefix in the shared parent registry.
    """

    def __init__(self, config: EnsembleConfig | None = None, obs: Obs | None = None) -> None:
        self.config = config if config is not None else EnsembleConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.members: List[AP3ESM] = []
        self._space = None
        self._owned_pool = None
        self._cache: Optional[CouplerCache] = None
        self.physics_driver: Optional[BatchedPhysicsDriver] = None
        self.lockstep: Optional[LockstepAtmospheres] = None
        #: Fleet supervisor (fault boundary + quarantine/restart); None
        #: unless resilience configures a non-default member_policy or a
        #: fault plan — the default path is byte-identical to pre-PR.
        self.supervisor: Optional["FleetSupervisor"] = None
        self.n_couplings = 0
        self._initialized = False

    # -- lifecycle ---------------------------------------------------------

    def init(self) -> None:
        cfg = self.config
        base = cfg.base
        with self.obs.span("ensemble.init", members=cfg.members):
            # Shared execution backend: ONE pool serves every member's
            # kernel launches (started before any member threads exist).
            if base.backend != "serial":
                self._space = make_backend(base.backend, base.backend_workers or None)
                self._owned_pool = getattr(self._space, "runtime", None)
                if self._owned_pool is not None:
                    self._owned_pool.obs = self.obs
                    self._owned_pool.ensure_started()
            # Shared warm coupler cache: the first member builds the
            # GSMaps/Routers, the rest hit the content-addressed table.
            if base.coupler_cache_dir is not None:
                self._cache = CouplerCache(base.coupler_cache_dir, obs=self.obs)
            # A later member's config validation or init() failing must
            # not leak the pool or the members already started.
            try:
                member_cfgs = [
                    self._scoped_config(cfg.member_config(k), k)
                    for k in range(cfg.members)
                ]
                if cfg.batch_physics:
                    self._validate_uniform(member_cfgs)
                for k, mcfg in enumerate(member_cfgs):
                    member = AP3ESM(
                        mcfg,
                        obs=self.obs.prefixed(f"member.{k}"),
                        space=self._space,
                        coupler_cache=self._cache,
                    )
                    self.members.append(member)
                    member.init()
                    self.perturb_member(k, member)
                if cfg.batch_physics:
                    self.physics_driver = BatchedPhysicsDriver(
                        [m.atm.physics for m in self.members], batch=True, obs=self.obs
                    )
                    self.lockstep = LockstepAtmospheres(
                        [m.atm for m in self.members], self.physics_driver
                    )
                    self.lockstep.install(self.members)
                self._arm_supervisor()
            except BaseException:
                self._teardown_partial()
                raise
        self._initialized = True

    def _scoped_config(self, mcfg: AP3ESMConfig, k: int) -> AP3ESMConfig:
        """Scope a member's rotating-checkpoint directory to
        ``<checkpoint_dir>/member<k>``, so N members sharing one base
        config never overwrite each other's rotations (and the fleet
        supervisor can roll each member back independently)."""
        res = mcfg.resilience
        if res.enabled and res.checkpoint_dir:
            mcfg = dataclasses.replace(
                mcfg,
                resilience=dataclasses.replace(
                    res,
                    checkpoint_dir=str(Path(res.checkpoint_dir) / f"member{k}"),
                ),
            )
        return mcfg

    def _arm_supervisor(self) -> None:
        """Build the fleet supervisor when resilience asks for one: a
        non-default ``member_policy`` or a fault plan.  The fail-fast
        default without a plan arms nothing, keeping ``step_coupling``
        byte-identical to the pre-supervisor loop."""
        cfg = self.config
        res = cfg.base.resilience
        plan = cfg.fault_plan
        if plan is not None and not res.enabled:
            raise ValueError(
                "fault_plan requires base.resilience.enabled=True (the "
                "fleet supervisor is resilience machinery)"
            )
        if not res.enabled:
            return
        if res.member_policy == "fail_fast" and plan is None:
            return
        from ..resilience.supervisor import FleetSupervisor, MemberPolicy

        self.supervisor = FleetSupervisor(
            self.members,
            MemberPolicy.parse(res.member_policy),
            restart_max=res.member_restart_max,
            backoff_s=res.backoff_s,
            lockstep=self.lockstep,
            plan=plan,
            obs=self.obs,
        )

    def _teardown_partial(self) -> None:
        """Best-effort cleanup of a failed ``init()``: finalize every
        member that completed its own init, shut down schedulers of
        half-built ones, and stop the owned pool."""
        for m in self.members:
            try:
                if getattr(m, "_initialized", False):
                    m.finalize()
                else:
                    scheduler = getattr(m, "scheduler", None)
                    if scheduler is not None:
                        scheduler.shutdown()
            except Exception:
                pass
        self.members = []
        if self._owned_pool is not None:
            try:
                self._owned_pool.shutdown()
            finally:
                self._owned_pool = None

    def _validate_uniform(self, member_cfgs: Sequence[AP3ESMConfig]) -> None:
        """Batched physics stacks columns across members, so the
        atmosphere discretizations (and coupling cadence) must match."""
        base = member_cfgs[0]
        for k, mcfg in enumerate(member_cfgs[1:], start=1):
            for key in ("atm_level", "atm_nlev", "atm_steps_per_coupling"):
                if getattr(mcfg, key) != getattr(base, key):
                    raise ValueError(
                        f"batch_physics needs a uniform atmosphere across members: "
                        f"member {k} differs in {key} "
                        f"({getattr(mcfg, key)} != {getattr(base, key)})"
                    )
            if mcfg.resilience.enabled and mcfg.resilience.guard_physics:
                raise ValueError(
                    "batch_physics is incompatible with the physics guardrail "
                    f"(member {k} has resilience.guard_physics set)"
                )
        if base.resilience.enabled and base.resilience.guard_physics:
            raise ValueError(
                "batch_physics is incompatible with the physics guardrail "
                "(member 0 has resilience.guard_physics set)"
            )

    def perturb_member(self, k: int, member: AP3ESM) -> None:
        """Seeded initial-condition perturbation for member ``k``.

        Member 0 stays untouched (the bitwise solo twin); members k >= 1
        receive Gaussian noise on the atmosphere temperature columns from
        the deterministic ``("ensemble.member", perturb_seed, k)`` stream.
        """
        cfg = self.config
        if k == 0 or cfg.perturb_amplitude == 0.0:
            return
        rng = seeded("ensemble.member", cfg.perturb_seed, k)
        noise = rng.standard_normal(member.atm.t_col.shape)
        member.atm.t_col = member.atm.t_col + cfg.perturb_amplitude * noise

    def finalize(self) -> List[Dict[str, Dict[str, float]]]:
        self._check()
        out: List[Dict[str, Dict[str, float]]] = []
        first_error: Optional[BaseException] = None
        try:
            for m in self.members:
                try:
                    out.append(m.finalize())
                except BaseException as exc:  # keep finalizing the rest
                    if first_error is None:
                        first_error = exc
        finally:
            # The owned pool is process-level state: it must come down
            # even when a member's finalize raised.
            if self._owned_pool is not None:
                st = self._owned_pool.stats
                self.obs.gauge("pp.procpool.dispatches_total").set(float(st.dispatches))
                self.obs.gauge("pp.procpool.fallbacks_total").set(float(st.fallbacks))
                self._owned_pool.shutdown()
        if first_error is not None:
            raise first_error
        return out

    def pool_stats(self):
        """Stats of the ensemble-owned process pool (``None`` when the
        backend is serial)."""
        return self._owned_pool.stats if self._owned_pool is not None else None

    # -- stepping ----------------------------------------------------------

    def step_coupling(self) -> None:
        """One coupling interval for every member, in lockstep.

        Interleaving per coupling (rather than per member over the whole
        window) keeps all members' clocks aligned, which is what lets the
        batched atmosphere advance the fleet together.
        """
        self._check()
        with self.obs.span("ensemble.step", coupling=self.n_couplings):
            if self.supervisor is not None:
                self.supervisor.step_fleet()
            else:
                for m in self.members:
                    m.step_coupling()
        self.n_couplings += 1

    def run_couplings(self, n: int) -> None:
        for _ in range(n):
            self.step_coupling()
        for m in self.members:
            m._wait_ocean()

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Ensemble roll-up: per-member + spread/mean/min-max SYPD, the
        cross-member surface-temperature spread, the batched-physics
        call accounting, and (when the fleet supervisor is armed) the
        degraded-fleet section.  SYPD aggregates and the spread cover
        the *surviving* members; quarantined rows stay listed with
        ``alive = 0``.  Emits ``ensemble.*`` gauges."""
        self._check()
        sup = self.supervisor
        live: List[Tuple[int, AP3ESM]] = (
            list(enumerate(self.members)) if sup is None
            else (sup.alive_members() or list(enumerate(self.members)))
        )
        simulated_days = live[0][1].clock.time / 86400.0
        sypds: List[float] = []
        per_member: List[Dict[str, float]] = []
        for k, m in enumerate(self.members):
            rep = get_timing([m.timers], "cpl_run", simulated_days)
            row = {
                "member": float(k),
                "sypd": rep.sypd,
                "wall_s": rep.max_seconds,
                "couplings": float(m.n_couplings),
            }
            if sup is not None:
                row["alive"] = 1.0 if sup.alive[k] else 0.0
            per_member.append(row)
            if sup is None or sup.alive[k]:
                sypds.append(rep.sypd)
        t_bot = np.stack([m.atm.t_col[:, -1] for _, m in live])
        spread_t = float(t_bot.std(axis=0).mean()) if len(live) > 1 else 0.0
        out: Dict[str, object] = {
            "members": per_member,
            "simulated_days": simulated_days,
            "sypd": {
                "mean": float(np.mean(sypds)),
                "min": float(np.min(sypds)),
                "max": float(np.max(sypds)),
                "spread": float(np.max(sypds) - np.min(sypds)),
            },
            "spread": {"t_bot": spread_t},
        }
        if self.physics_driver is not None:
            out["batched_physics"] = {
                "fleet_calls": self.physics_driver.fleet_calls,
                "columns_total": self.physics_driver.columns_total,
                "fleet_steps": self.lockstep.fleet_steps if self.lockstep else 0,
            }
        if sup is not None:
            # Degraded-fleet roll-up: effective ensemble size and the
            # fleet throughput scaled by the surviving fraction.
            out["supervisor"] = {
                "policy": sup.policy.value,
                "members_total": float(len(self.members)),
                "alive": float(sup.n_alive),
                "effective_size": float(sup.n_alive),
                "quarantined": list(sup.quarantined),
                "quarantines": float(sup.quarantines),
                "restarts": float(sup.restarts),
                "escalations": float(sup.escalations),
                "replayed_couplings": float(sup.replayed_total),
                "faults_injected": float(sup.faults_injected),
                "sypd_degraded": float(np.mean(sypds))
                * sup.n_alive / len(self.members),
                "events": [dataclasses.asdict(e) for e in sup.events],
            }
            self.obs.gauge("ensemble.supervisor.alive").set(float(sup.n_alive))
            self.obs.gauge("ensemble.supervisor.sypd_degraded").set(
                out["supervisor"]["sypd_degraded"]
            )
        self.obs.gauge("ensemble.sypd.mean").set(out["sypd"]["mean"])
        self.obs.gauge("ensemble.sypd.min").set(out["sypd"]["min"])
        self.obs.gauge("ensemble.sypd.max").set(out["sypd"]["max"])
        self.obs.gauge("ensemble.spread.t_bot").set(spread_t)
        return out

    # -- fleet-coherent checkpoints (scenario service) ---------------------

    def checkpoint(self) -> List[Path]:
        """Write one rotating checkpoint per member, all at the current
        fleet coupling (requires ``base.resilience.checkpoint_*`` — the
        per-member rotations live under ``<dir>/member<k>`` via
        :meth:`_scoped_config`).  Returns the published paths."""
        self._check()
        return [m.checkpoint() for m in self.members]

    def has_checkpoint(self) -> bool:
        """True when EVERY member's rotation holds at least one
        published checkpoint (the cheap "can we resume?" probe)."""
        self._check()
        return all(
            m.checkpoints is not None and m.checkpoints.latest() is not None
            for m in self.members
        )

    def recover(self) -> int:
        """Fleet-coherent restore: every member rolls back to the newest
        coupling for which ALL members hold a *valid* checkpoint, so the
        restored fleet is clock-aligned (members checkpoint at one
        cadence, so a common step always exists while any rotation is
        non-empty).  Lockstep credits are cleared — any fleet advance a
        member received this coupling is invalidated by the restore.
        Returns the coupling restored to."""
        from ..resilience.errors import CheckpointError

        self._check()
        common: Optional[set] = None
        for m in self.members:
            if m.checkpoints is None:
                raise RuntimeError(
                    "ensemble recovery needs per-member checkpoints "
                    "(set base.resilience.checkpoint_*)"
                )
            steps = set()
            for ckpt in m.checkpoints.checkpoints():
                try:
                    m.checkpoints.validate(ckpt)
                except CheckpointError:
                    if self.obs is not None:
                        self.obs.counter(
                            "resilience.checkpoint_fallbacks"
                        ).inc()
                    continue
                steps.add(m.checkpoints.step_of(ckpt))
            common = steps if common is None else (common & steps)
        if not common:
            raise CheckpointError(
                "no coupling step has a valid checkpoint in every member",
                reason=f"{len(self.members)} member rotation(s) share no step",
            )
        step = max(common)
        for m in self.members:
            path = next(
                c for c in m.checkpoints.checkpoints()
                if m.checkpoints.step_of(c) == step
            )
            m._wait_ocean()
            m.load_restart(path)
            if self.lockstep is not None:
                self.lockstep.clear_credits(m.atm)
        self.n_couplings = step
        if self.obs is not None:
            self.obs.counter("resilience.restores").inc()
            self.obs.gauge("ensemble.recovered_to").set(float(step))
        return step

    # -- restart I/O -------------------------------------------------------

    def save_restarts(self, directory) -> None:
        """Write each member's full coupled restart under
        ``<directory>/member<k>/``."""
        self._check()
        base = Path(directory)
        for k, m in enumerate(self.members):
            m.save_restart(base / f"member{k}")

    def _check(self) -> None:
        if not self._initialized:
            raise RuntimeError("ensemble not initialized (call init())")
