"""Diagnostics for the evaluation figures.

* :func:`surface_rossby_number` — Fig. 6's "vertical vorticity normalized
  by the local Coriolis parameter" on the ocean grid;
* :func:`surface_kinetic_energy` / :func:`surface_speed` — Fig. 1's ocean
  surface fields;
* :func:`wind_speed_10m`, precipitation and cloud-fraction accessors —
  Fig. 1/6's atmosphere fields;
* :func:`cold_wake` — the post-typhoon SST depression the paper's coupled
  runs reproduce.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..atm.model import GristModel
from ..ocn.model import LicomModel

__all__ = [
    "surface_rossby_number",
    "surface_kinetic_energy",
    "surface_speed",
    "wind_speed_10m",
    "cold_wake",
    "atm_snapshot",
    "structure_function",
]


def structure_function(
    field: np.ndarray,
    mask: np.ndarray,
    max_lag: int = 16,
) -> Dict[str, np.ndarray]:
    """Second-order zonal structure function S2(k) = <|f(x + k) - f(x)|^2>.

    The scale-resolved variance diagnostic behind the paper's
    mesoscale/submesoscale claims (km-scale grids put energy at small
    separations that coarse grids cannot hold).  Works on masked fields —
    only pairs with both ends wet contribute — unlike an FFT spectrum,
    which the synthetic continents would corrupt.

    Returns ``{"lag": k cells, "s2": S2(k)}`` for k = 1..max_lag (zonal
    separations, periodic wrap).
    """
    field = np.asarray(field, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if field.shape != mask.shape:
        raise ValueError("field and mask shapes differ")
    if max_lag < 1 or max_lag >= field.shape[1]:
        raise ValueError("max_lag must be in [1, nlon)")
    lags = np.arange(1, max_lag + 1)
    s2 = np.empty(max_lag)
    f = np.where(mask, field, 0.0)
    for i, k in enumerate(lags):
        shifted = np.roll(f, -k, axis=1)
        both = mask & np.roll(mask, -k, axis=1)
        diff2 = (shifted - f) ** 2
        n = both.sum()
        s2[i] = float(diff2[both].sum() / n) if n else np.nan
    return {"lag": lags, "s2": s2}


def surface_rossby_number(ocn: LicomModel, f_floor: float = 2.0e-5) -> np.ndarray:
    """Ro = zeta / f at ocean cell centers (NaN on land).

    zeta is the curl of the total (barotropic + surface baroclinic)
    velocity evaluated with the C-grid metrics; ``f_floor`` keeps the
    equator from blowing the normalization up.
    """
    m = ocn.metrics
    u = ocn.u[0] + ocn.bt.u
    v = ocn.v[0] + ocn.bt.v
    u = np.where(m.mask_u, u, 0.0)
    v = np.where(m.mask_v, v, 0.0)
    # zeta at centers: dv/dx - du/dy with face-centered differences.
    dvdx = (v - np.roll(v, 1, axis=1)) / m.dxu
    u_south = np.vstack([u[:1], u[:-1]])
    dudy = (u - u_south) / m.dyv
    zeta = dvdx - dudy
    f_safe = np.where(np.abs(m.f_c) < f_floor, np.sign(m.f_c + 1e-30) * f_floor, m.f_c)
    ro = zeta / f_safe
    return np.where(m.mask_c, ro, np.nan)


def surface_kinetic_energy(ocn: LicomModel) -> np.ndarray:
    """0.5 |u_surf|^2 (m^2/s^2) at centers (NaN on land) — Fig. 1a."""
    out = ocn.export_state()
    ke = 0.5 * (out["u_surf"] ** 2 + out["v_surf"] ** 2)
    return np.where(ocn.metrics.mask_c, ke, np.nan)


def surface_speed(ocn: LicomModel) -> np.ndarray:
    """|u_surf| (m/s) at centers (NaN on land) — Fig. 1c."""
    return np.sqrt(2.0 * surface_kinetic_energy(ocn))


def wind_speed_10m(atm: GristModel) -> np.ndarray:
    """10 m wind speed proxy: |V| of the reconstructed cell winds."""
    u, v = atm._cell_winds()
    return np.sqrt(u**2 + v**2)


def cold_wake(sst_before: np.ndarray, sst_after: np.ndarray, mask: np.ndarray) -> Dict[str, float]:
    """Cold-wake statistics: how much the ocean surface cooled."""
    if sst_before.shape != sst_after.shape:
        raise ValueError("shape mismatch")
    delta = np.where(mask, sst_after - sst_before, np.nan)
    cooled = delta[mask & (delta < 0)]
    return {
        "max_cooling": float(-np.nanmin(delta)) if np.isfinite(delta).any() else 0.0,
        "mean_cooling": float(-cooled.mean()) if cooled.size else 0.0,
        "cooled_fraction": float(cooled.size / max(mask.sum(), 1)),
    }


def atm_snapshot(atm: GristModel) -> Dict[str, np.ndarray]:
    """Fig. 1 atmosphere fields: precipitation, cloud fraction, 10 m wind."""
    out: Dict[str, np.ndarray] = {"wind10m": wind_speed_10m(atm)}
    for key in ("precip", "cloud_fraction", "gsw", "glw"):
        if key in atm.diag:
            out[key] = atm.diag[key].copy()
    return out
