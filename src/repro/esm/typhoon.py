"""Idealized typhoon experiment (the Figs. 6/7 substitution).

The paper forecasts Super Typhoon Doksuri (July 2023) from real analyses;
offline we embed an analytic **Holland (1980) vortex** in gradient-wind
balance into the coupled model's initial state, integrate, and apply the
same analysis chain: a minimum-pressure tracker for the trajectory and
intensity (Fig. 7), wind/Rossby-number structure snapshots at two coupled
resolutions (Fig. 6), and the SST cold wake.  The "best track" reference
is the highest-resolution run of the same case (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..atm.model import GristModel
from ..grids.sphere import lonlat_to_xyz, normalize
from ..utils.units import EARTH_OMEGA, EARTH_RADIUS, GRAVITY
from .ap3esm import AP3ESM
from .diagnostics import surface_rossby_number, wind_speed_10m

__all__ = ["HollandVortex", "inject_vortex", "VortexFix", "VortexTracker", "TyphoonExperiment"]


@dataclass(frozen=True)
class HollandVortex:
    """Holland (1980) wind profile: V(r) = Vmax sqrt((Rm/r)^B exp(1 - (Rm/r)^B))."""

    center_lon: float            # radians
    center_lat: float            # radians
    v_max: float = 45.0          # m/s
    r_max: float = 2.0e5         # m, radius of maximum wind
    b: float = 1.6               # Holland shape parameter
    warm_core_k: float = 4.0     # mid-level warm anomaly (K)

    def wind(self, r: np.ndarray) -> np.ndarray:
        """Tangential wind speed at radius r (m)."""
        r = np.maximum(np.asarray(r, dtype=np.float64), 1.0)
        x = (self.r_max / r) ** self.b
        return self.v_max * np.sqrt(x * np.exp(1.0 - x))

    def height_depression(self, r: np.ndarray, f: float) -> np.ndarray:
        """Gradient-balanced free-surface depression (m):
        g dh/dr = V^2/r + f V  integrated from r to infinity (numerically,
        on a shared radius grid)."""
        r = np.asarray(r, dtype=np.float64)
        r_grid = np.linspace(1.0e3, 4.0e6, 2048)
        v = self.wind(r_grid)
        integrand = v**2 / r_grid + abs(f) * v
        from scipy.integrate import cumulative_trapezoid

        # C(r) = int_{r0}^{r}; the outward remainder I(r) = C(rmax) - C(r)
        # gives the (negative) depression -I/g, deepest at the center.
        c = cumulative_trapezoid(integrand, r_grid, initial=0.0)
        depression = -(c[-1] - c) / GRAVITY
        return np.interp(np.clip(r, r_grid[0], r_grid[-1]), r_grid, depression)


def inject_vortex(atm: GristModel, vortex: HollandVortex) -> None:
    """Superpose a balanced Holland vortex on the atmosphere state."""
    grid = atm.grid
    c = lonlat_to_xyz(np.array(vortex.center_lon), np.array(vortex.center_lat))
    f = 2.0 * EARTH_OMEGA * math.sin(vortex.center_lat)

    # Thickness depression at cells.
    cosd = np.clip(grid.xyz_cell @ c, -1.0, 1.0)
    r_cell = EARTH_RADIUS * np.arccos(cosd)
    atm.swe.h = atm.swe.h + vortex.height_depression(r_cell, f)

    # Tangential (cyclonic) wind at edges.
    p = grid.xyz_edge
    cosd_e = np.clip(p @ c, -1.0, 1.0)
    r_edge = EARTH_RADIUS * np.arccos(cosd_e)
    toward = c[None, :] - cosd_e[:, None] * p
    norm = np.linalg.norm(toward, axis=1, keepdims=True)
    toward = toward / np.maximum(norm, 1e-12)
    spin = np.cross(toward, p)  # counterclockwise (NH cyclone)
    if vortex.center_lat < 0:
        spin = -spin
    v_t = vortex.wind(r_edge)
    atm.swe.u = atm.swe.u + v_t * np.sum(spin * grid.normal, axis=1)

    # Warm core + moistening in the columns (fuels the physics).
    w = np.exp(-((r_cell / (2.0 * vortex.r_max)) ** 2))
    profile = np.exp(-((atm.p / atm.p[len(atm.p) // 2] - 1.0) ** 2) * 4.0)
    atm.t_col = atm.t_col + vortex.warm_core_k * w[:, None] * profile[None, :]
    atm.q_col = np.clip(atm.q_col * (1.0 + 0.5 * w[:, None]), 0.0, 0.04)


@dataclass(frozen=True)
class VortexFix:
    """One tracker fix."""

    time: float
    lon: float            # radians
    lat: float
    min_h: float          # m (the SWE pressure proxy)
    max_wind: float       # m/s within the search radius


class VortexTracker:
    """Minimum-height-*anomaly* tracker with continuity constraint.

    The raw SWE height has a large zonal structure (geostrophic balance
    with the jet), so the tracker removes the instantaneous latitude-bin
    mean before locating the storm — the standard anomaly tracking used on
    real pressure fields.
    """

    def __init__(self, atm: GristModel, first_guess: Tuple[float, float],
                 search_radius: float = 1.5e6, n_lat_bins: int = 37) -> None:
        self.atm = atm
        self.search_radius = search_radius
        self.n_lat_bins = n_lat_bins
        self._last = first_guess
        self.fixes: List[VortexFix] = []

    def _height_anomaly(self) -> np.ndarray:
        grid = self.atm.grid
        h = self.atm.swe.h
        bins = np.clip(
            ((grid.lat_cell + np.pi / 2) / np.pi * self.n_lat_bins).astype(int),
            0,
            self.n_lat_bins - 1,
        )
        sums = np.bincount(bins, weights=h, minlength=self.n_lat_bins)
        counts = np.bincount(bins, minlength=self.n_lat_bins)
        zonal_mean = sums / np.maximum(counts, 1)
        return h - zonal_mean[bins]

    def fix(self) -> VortexFix:
        grid = self.atm.grid
        c = lonlat_to_xyz(np.array(self._last[0]), np.array(self._last[1]))
        cosd = np.clip(grid.xyz_cell @ c, -1.0, 1.0)
        r = EARTH_RADIUS * np.arccos(cosd)
        near = r < self.search_radius
        if not near.any():
            raise RuntimeError("tracker lost the vortex")
        idx = np.flatnonzero(near)
        center = idx[np.argmin(self._height_anomaly()[idx])]
        lon, lat = float(grid.lon_cell[center]), float(grid.lat_cell[center])

        # Intensity: strongest wind within the search radius.
        speed = wind_speed_10m(self.atm)
        c2 = grid.xyz_cell[center]
        cosd2 = np.clip(grid.xyz_cell @ c2, -1.0, 1.0)
        near2 = EARTH_RADIUS * np.arccos(cosd2) < self.search_radius
        vmax = float(speed[near2].max())

        fix = VortexFix(
            time=self.atm.time, lon=lon, lat=lat,
            min_h=float(self.atm.swe.h[center]), max_wind=vmax,
        )
        self._last = (lon, lat)
        self.fixes.append(fix)
        return fix

    def track(self) -> np.ndarray:
        """(n_fixes, 4) array of [time, lon, lat, max_wind]."""
        return np.array([[f.time, f.lon, f.lat, f.max_wind] for f in self.fixes])


def track_distance(track_a: np.ndarray, track_b: np.ndarray) -> float:
    """Mean great-circle separation (km) of two tracks at matching fixes."""
    n = min(len(track_a), len(track_b))
    if n == 0:
        raise ValueError("empty track")
    a = lonlat_to_xyz(track_a[:n, 1], track_a[:n, 2])
    b = lonlat_to_xyz(track_b[:n, 1], track_b[:n, 2])
    cosd = np.clip(np.sum(a * b, axis=-1), -1.0, 1.0)
    return float(np.mean(EARTH_RADIUS * np.arccos(cosd)) / 1000.0)


@dataclass
class TyphoonExperiment:
    """End-to-end coupled typhoon run: inject, integrate, track, diagnose.

    ``model`` must be an initialized :class:`AP3ESM`; the experiment owns
    the vortex, the tracker, and the before/after SST snapshots.
    """

    model: AP3ESM
    vortex: HollandVortex
    track_every: int = 1

    def __post_init__(self) -> None:
        inject_vortex(self.model.atm, self.vortex)
        self.tracker = VortexTracker(
            self.model.atm, (self.vortex.center_lon, self.vortex.center_lat)
        )
        self.sst_before = self.model.ocn.t[0].copy()
        self.tracker.fix()

    def run(self, n_couplings: int) -> np.ndarray:
        """Advance the coupled model, fixing the vortex position along the
        way; returns the track array."""
        for k in range(n_couplings):
            self.model.step_coupling()
            if (k + 1) % self.track_every == 0:
                self.tracker.fix()
        return self.tracker.track()

    def structure_snapshot(self) -> Dict[str, np.ndarray]:
        """Fig. 6 fields: 10 m wind on the atmosphere grid and surface
        Rossby number on the ocean grid."""
        return {
            "wind10m": wind_speed_10m(self.model.atm),
            "rossby": surface_rossby_number(self.model.ocn),
        }

    def eye_metrics(self) -> Dict[str, float]:
        """Structure metrics for the Fig. 6 resolution comparison.

        * ``eye_radius_km`` — radius of the maximum *azimuthal-mean* wind,
          computed on rings one grid spacing wide and floored at the grid
          spacing (a coarse grid that cannot resolve the eye reports its
          own spacing — the honest "unresolved" value);
        * ``storm_radius_km`` — outermost ring whose azimuthal-mean wind
          anomaly exceeds half the peak (compactness of the wind field);
        * ``wind_grad_rms`` — RMS horizontal wind-speed gradient within
          1500 km ("finer details in the spatial pattern of the wind");
        * ``rossby_p95`` — 95th percentile of |Ro| on the ocean within
          1500 km (fine-scale oceanic response);
        * ``max_wind`` — the tracker's intensity.
        """
        atm = self.model.atm
        last = self.tracker.fixes[-1]
        c = lonlat_to_xyz(np.array(last.lon), np.array(last.lat))
        cosd = np.clip(atm.grid.xyz_cell @ c, -1.0, 1.0)
        r = EARTH_RADIUS * np.arccos(cosd)
        speed = wind_speed_10m(atm)
        spacing_m = atm.grid.mean_cell_spacing_km * 1000.0

        # Azimuthal-mean wind on rings one spacing wide out to 2500 km.
        n_rings = max(3, int(2.5e6 / spacing_m))
        ring_idx = np.minimum((r / spacing_m).astype(int), n_rings)
        sums = np.bincount(ring_idx, weights=speed, minlength=n_rings + 1)[:n_rings]
        counts = np.bincount(ring_idx, minlength=n_rings + 1)[:n_rings]
        ring_mean = sums / np.maximum(counts, 1)
        background = ring_mean[-1]
        anomaly = ring_mean - background
        peak_ring = int(np.argmax(ring_mean))
        eye_radius_km = max((peak_ring + 0.5) * spacing_m, spacing_m) / 1000.0
        # Outermost ring still above half of the peak anomaly.
        if anomaly.max() > 0:
            above = np.flatnonzero(anomaly > 0.5 * anomaly.max())
            storm_radius_km = (above.max() + 1) * spacing_m / 1000.0
        else:
            storm_radius_km = float("nan")

        # Wind-gradient sharpness: |dw| across edges within 1500 km.
        g = atm.grid
        near_e = (EARTH_RADIUS * np.arccos(
            np.clip(g.xyz_edge @ c, -1.0, 1.0)
        )) < 1.5e6
        dw = (speed[g.edge_cells[:, 1]] - speed[g.edge_cells[:, 0]]) / g.de
        wind_grad_rms = float(np.sqrt(np.mean(dw[near_e] ** 2))) if near_e.any() else 0.0

        ro = surface_rossby_number(self.model.ocn)
        oc = self.model.ocn.grid
        cosd_o = np.clip(oc.centers.reshape(-1, 3) @ c, -1.0, 1.0)
        r_o = (EARTH_RADIUS * np.arccos(cosd_o)).reshape(oc.mask.shape)
        sel = (r_o < 1.5e6) & oc.mask & np.isfinite(ro)
        ro_p95 = float(np.nanpercentile(np.abs(ro[sel]), 95)) if sel.any() else 0.0
        return {
            "eye_radius_km": eye_radius_km,
            "storm_radius_km": storm_radius_km,
            "wind_grad_rms": wind_grad_rms,
            "rossby_p95": ro_p95,
            "max_wind": last.max_wind,
        }
