"""The coupled AP3ESM driver: atmosphere + ocean + sea ice + land.

Wiring follows the paper:

* the **coupler** (CPL7 primitives from :mod:`repro.coupler`) owns the
  main clock and per-component alarms; coupling frequencies keep the
  paper's §6.1 ratio — the ocean couples once per ``ocn_couple_ratio`` (=5,
  i.e. 180:36 per day) atmosphere couplings;
* **land is coupled directly** to the atmosphere (bypassing the coupler),
  receiving the AI-radiation fluxes gsw/glw per §5.2.1;
* the **sea ice** component mirrors the ocean grid;
* exchanged bundles pass through the pruned field registry, and the
  atmosphere<->ocean grid change goes through the sparse remap matrices
  (global flux fixer applied to the heat/water fluxes).

Task-domain placement (§5.1.2: domain 1 = coupler+atm+ice+lnd, domain 2 =
ocn) is a *performance* concept: this serial driver executes sequentially
and the machine model prices the concurrent layout; :meth:`task_domains`
exposes the mapping the benchmarks feed to
:class:`repro.machine.CoupledPerfModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..atm import GristConfig, GristModel
from ..coupler import Clock, FieldRegistry
from ..grids.remap import RemapMatrix, nearest_remap
from ..ice import CiceModel
from ..lnd import LandModel
from ..obs import NULL_OBS, Obs
from ..ocn import LicomConfig, LicomModel
from ..utils.timers import TimerRegistry
from ..utils.units import LATENT_HEAT_VAPORIZATION, STEFAN_BOLTZMANN

__all__ = ["AP3ESMConfig", "AP3ESM"]

KELVIN = 273.15
OCEAN_ALBEDO = 0.07
OCEAN_EMISSIVITY = 0.96


@dataclass
class AP3ESMConfig:
    """Laptop-scale coupled configuration (paper pairings in config.py)."""

    atm_level: int = 3
    atm_nlev: int = 30
    ocn_nlon: int = 96
    ocn_nlat: int = 64
    ocn_levels: int = 10
    atm_steps_per_coupling: int = 1
    ocn_couple_ratio: int = 5      # paper: atm 180/day vs ocn 36/day
    physics: Optional[object] = None  # a PhysicsSuite; None = conventional

    @staticmethod
    def from_namelist(path) -> "AP3ESMConfig":
        """Build a configuration from a CESM-style namelist file with an
        ``&ap3esm_nml`` group (unknown variables are rejected)."""
        from ..utils.namelist import read_namelist

        groups = read_namelist(path)
        if "ap3esm_nml" not in groups:
            raise ValueError("namelist must contain an &ap3esm_nml group")
        nml = groups["ap3esm_nml"]
        import dataclasses

        valid = {f.name for f in dataclasses.fields(AP3ESMConfig)} - {"physics"}
        unknown = set(nml) - valid
        if unknown:
            raise ValueError(f"unknown ap3esm_nml variables: {sorted(unknown)}")
        return AP3ESMConfig(**{k: v for k, v in nml.items()})


class AP3ESM:
    """The coupled Earth system model."""

    def __init__(
        self,
        config: AP3ESMConfig | None = None,
        obs: Obs | None = None,
    ) -> None:
        self.config = config if config is not None else AP3ESMConfig()
        self.timers = TimerRegistry()
        self.obs = obs if obs is not None else NULL_OBS
        self._initialized = False

    # -- lifecycle ---------------------------------------------------------------

    def init(self) -> None:
        with self.obs.span("esm.init"):
            self._init()

    def _init(self) -> None:
        cfg = self.config
        self.atm = GristModel(
            GristConfig(level=cfg.atm_level, nlev=cfg.atm_nlev),
            physics=cfg.physics,
            timers=self.timers,
        )
        self.atm.init()
        self.ocn = LicomModel(
            LicomConfig(nlon=cfg.ocn_nlon, nlat=cfg.ocn_nlat, n_levels=cfg.ocn_levels),
            timers=self.timers,
        )
        self.ocn.init()
        self.ice = CiceModel(self.ocn.grid, timers=self.timers)
        self.ice.init()

        # Remap operators between the two grids.
        ocn_xyz = self.ocn.grid.centers.reshape(-1, 3)
        ocn_area = self.ocn.grid.area.reshape(-1)
        atm_grid = self.atm.grid
        self.o2a = nearest_remap(ocn_xyz, atm_grid.xyz_cell, ocn_area, atm_grid.area_cell)
        self.a2o = nearest_remap(atm_grid.xyz_cell, ocn_xyz, atm_grid.area_cell, ocn_area)

        # Land mask on atmosphere cells from the remapped ocean mask.
        ocean_frac = self.o2a.apply(self.ocn.grid.mask.reshape(-1).astype(float))
        self.ocean_frac_atm = np.clip(ocean_frac, 0.0, 1.0)
        self.land_mask_atm = self.ocean_frac_atm < 0.5
        self.lnd = LandModel(
            atm_grid.n_cells, land_mask=self.land_mask_atm, timers=self.timers
        )
        self.lnd.init()

        # Coupler clock: one tick per atmosphere coupling interval, with
        # the ocean alarm at the paper's 5:1 frequency ratio.
        self.dt_couple = cfg.atm_steps_per_coupling * self.atm.dt_model
        self.clock = Clock(dt=self.dt_couple)
        self.clock.add_alarm("cpl_ocn", interval=cfg.ocn_couple_ratio * self.dt_couple)

        # Ocean substeps per ocean coupling, with dt adjusted so the
        # coupling period is an exact multiple of the internal step (the
        # §5.1.1 clock-consistency requirement).
        period = cfg.ocn_couple_ratio * self.dt_couple
        n = max(1, math.ceil(period / self.ocn.dt_baroclinic))
        self.ocn.dt_baroclinic = period / n
        self.ocn.dt_barotropic = self.ocn.dt_baroclinic / 10.0
        self.ocn.dt_tracer = self.ocn.dt_baroclinic
        self.ocn_steps_per_coupling = n

        # Pruned coupling-field registry (§5.2.4).
        self.fields = FieldRegistry.cesm_default()
        self.fields.mark_used(
            "x2o", ["Foxx_taux", "Foxx_tauy", "Foxx_swnet", "Foxx_lwdn",
                    "Foxx_sen", "Foxx_lat", "Foxx_rain"]
        )
        self.fields.mark_used("o2x", ["So_t", "So_u", "So_v", "So_ssh"])
        self.fields.mark_used("i2x", ["Si_ifrac", "Si_t"])
        self.fields.mark_used(
            "a2x", ["Sa_tbot", "Faxa_swndr", "Faxa_lwdn", "Faxa_rainc",
                    "Faxa_taux", "Faxa_tauy", "Faxa_sen", "Faxa_lat"]
        )

        self.n_couplings = 0
        self._initialized = True

    def finalize(self) -> Dict[str, Dict[str, float]]:
        self._check()
        with self.obs.span("esm.finalize"):
            return {
                "atm": self.atm.finalize(),
                "ocn": self.ocn.finalize(),
                "ice": self.ice.finalize(),
                "lnd": self.lnd.finalize(),
            }

    # -- coupling loop ---------------------------------------------------------------

    def step_coupling(self) -> None:
        """One atmosphere coupling interval (+ ocean when its alarm rings)."""
        self._check()
        cfg = self.config
        obs = self.obs
        with self.timers.timed("cpl_run"), obs.span(
            "cpl.step", coupling=self.n_couplings
        ):
            with obs.span("atm.run", steps=cfg.atm_steps_per_coupling):
                self.atm.run(cfg.atm_steps_per_coupling)
                a2x = self.atm.export_state()

            # --- direct atmosphere -> land -> atmosphere exchange --------
            with obs.span("lnd.force"):
                lnd_out = self.lnd.force(
                    gsw=a2x["gsw"], glw=a2x["glw"], precip=a2x["precip"],
                    t_air=a2x["t_bot"], dt=self.dt_couple,
                )

            # --- atmosphere -> ice (on the ocean grid) --------------------
            with obs.span("cpl.a2o_remap"):
                shape_o = self.ocn.metrics.shape
                to_ocn = {
                    name: self.a2o.apply(a2x[name]).reshape(shape_o)
                    for name in ("gsw", "glw", "t_bot", "taux", "tauy", "shflx", "lhflx", "precip")
                }
            with obs.span("ice.step"):
                o2x = self.ocn.export_state()
                self.ice.import_state({
                    "gsw": to_ocn["gsw"],
                    "glw": to_ocn["glw"],
                    "t_air": to_ocn["t_bot"] - KELVIN,
                    "sst": o2x["sst"],
                    "freezing": o2x["freezing"],
                    "u_drift": o2x["u_surf"],
                    "v_drift": o2x["v_surf"],
                })
                self.ice.step(self.dt_couple)
                i2x = self.ice.export_state()

            # --- atmosphere(+ice) -> ocean at the slower frequency --------
            self.clock.advance()
            if self.clock.ringing("cpl_ocn"):
                with obs.span("ocn.run", substeps=self.ocn_steps_per_coupling):
                    sst_k = o2x["sst"] + KELVIN
                    open_water = 1.0 - i2x["ice_fraction"]
                    net_heat = (
                        (1.0 - OCEAN_ALBEDO) * to_ocn["gsw"]
                        + to_ocn["glw"]
                        - OCEAN_EMISSIVITY * STEFAN_BOLTZMANN * sst_k**4
                        - to_ocn["shflx"]
                        - to_ocn["lhflx"]
                    ) * open_water
                    evap = to_ocn["lhflx"] / LATENT_HEAT_VAPORIZATION
                    self.ocn.import_state({
                        "taux": to_ocn["taux"] * open_water,
                        "tauy": to_ocn["tauy"] * open_water,
                        "heat_flux": net_heat,
                        "fresh_flux": (to_ocn["precip"] - evap) * open_water,
                    })
                    self.ocn.run(self.ocn_steps_per_coupling)
                    o2x = self.ocn.export_state()
                obs.counter("ocn.couplings").inc()
                obs.counter("ocn.steps").inc(self.ocn_steps_per_coupling)

            # --- ocean + ice + land -> atmosphere -------------------------
            with obs.span("cpl.o2a_merge"):
                sst_atm = self.o2a.apply((o2x["sst"] + KELVIN).reshape(-1))
                ice_frac_atm = np.clip(
                    self.o2a.apply(i2x["ice_fraction"].reshape(-1)), 0.0, 1.0
                )
                ice_t_atm = self.o2a.apply((i2x["ice_tsurf"] + KELVIN).reshape(-1))
                skin = (1.0 - ice_frac_atm) * sst_atm + ice_frac_atm * ice_t_atm
                skin = np.where(self.land_mask_atm, lnd_out["tskin_land"], skin)
                self.atm.import_state({"sst": skin, "ice_fraction": ice_frac_atm})
        obs.counter("cpl.steps").inc()
        obs.counter("atm.steps").inc(cfg.atm_steps_per_coupling)
        self.n_couplings += 1

    def run_couplings(self, n: int) -> None:
        for _ in range(n):
            self.step_coupling()

    def run_days(self, days: float) -> None:
        per_day = 86400.0 / self.dt_couple
        self.run_couplings(max(1, int(round(days * per_day))))

    # -- restart I/O (§5.2.5, whole coupled system) ---------------------------------------

    def save_restart(self, directory) -> None:
        """Write all four components' restart sets plus the coupler clock."""
        self._check()
        from pathlib import Path

        from ..io.restart import save_restart

        base = Path(directory)
        self.atm.save_restart(base / "atm")
        self.ocn.save_restart(base / "ocn")
        self.ice.save_restart(base / "ice")
        self.lnd.save_restart(base / "lnd")
        save_restart(
            base / "cpl",
            fields={},
            scalars={
                "time": self.clock.time,
                "n_couplings": float(self.n_couplings),
                "step_count": float(self.clock.step_count),
            },
        )

    def load_restart(self, directory) -> None:
        """Restore the whole coupled system; clocks stay synchronized."""
        self._check()
        from pathlib import Path

        from ..io.restart import load_restart

        base = Path(directory)
        self.atm.load_restart(base / "atm")
        self.ocn.load_restart(base / "ocn")
        self.ice.load_restart(base / "ice")
        self.lnd.load_restart(base / "lnd")
        _, scalars = load_restart(base / "cpl")
        self.clock.time = scalars["time"]
        self.clock.step_count = int(scalars["step_count"])
        self.n_couplings = int(scalars["n_couplings"])
        # Re-arm the ocean alarm consistently with the restored clock.
        alarm = self.clock._alarms["cpl_ocn"]
        periods_done = int(self.clock.time / alarm.interval + 1e-9)
        alarm.reset_to(periods_done)

    # -- performance-layout description (§5.1.2) -----------------------------------------

    def task_domains(self) -> Dict[str, Dict[str, object]]:
        """The two concurrent task domains the paper allocates resources
        to (consumed by the machine model's CoupledPerfModel)."""
        return {
            "domain1": {
                "members": ["cpl", "atm", "ice", "lnd"],
                "rationale": "atmosphere dominates cost; coupler co-located "
                             "to minimize exchange; land is tied to the "
                             "atmosphere; ice is cheap",
            },
            "domain2": {
                "members": ["ocn"],
                "rationale": "second-largest cost, runs concurrently",
            },
        }

    def _check(self) -> None:
        if not self._initialized:
            raise RuntimeError("coupled model not initialized (call init())")
