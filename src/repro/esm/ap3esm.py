"""The coupled AP3ESM driver: atmosphere + ocean + sea ice + land.

Wiring follows the paper:

* the **coupler** (CPL7 primitives from :mod:`repro.coupler`) owns the
  main clock and per-component alarms; coupling frequencies keep the
  paper's §6.1 ratio — the ocean couples once per ``ocn_couple_ratio`` (=5,
  i.e. 180:36 per day) atmosphere couplings;
* **land is coupled directly** to the atmosphere (bypassing the coupler),
  receiving the AI-radiation fluxes gsw/glw per §5.2.1;
* the **sea ice** component mirrors the ocean grid;
* exchanged bundles pass through the pruned field registry, and the
  atmosphere<->ocean grid change goes through the sparse remap matrices
  (global flux fixer applied to the heat/water fluxes);
* all four components implement the :class:`repro.esm.component.Component`
  protocol and share ONE :class:`ComponentContext` (execution space,
  kernel registry, precision policy, obs handle).

Task-domain placement (§5.1.2: domain 1 = coupler+atm+ice+lnd, domain 2 =
ocn) is executed by a :class:`repro.esm.scheduler.TaskDomainScheduler`:
serially by default, concurrently (thread pool) with
``concurrent_domains=True``.  Ocean coupling is **lagged by one coupling
period** — the export from the ocean run launched at alarm coupling *k*
is published at alarm coupling *k + ratio*, so domain 1 never reads
in-flight ocean state and the two schedules are bitwise identical.
:meth:`task_domains` exposes the layout the benchmarks feed to
:class:`repro.machine.CoupledPerfModel.from_layout`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..atm import GristConfig, GristModel
from ..coupler import (
    Clock,
    CoupledExchange,
    CouplerCache,
    FieldRegistry,
    RearrangePlan,
)
from ..grids.remap import nearest_remap
from ..ice import CiceModel
from ..lnd import LandModel
from ..obs import NULL_OBS, Obs
from ..ocn import LicomConfig, LicomModel
from ..pp import ExecutionSpace, make_backend
from ..resilience.config import ResilienceConfig
from ..utils.timers import TimerRegistry
from ..utils.units import LATENT_HEAT_VAPORIZATION, STEFAN_BOLTZMANN
from .component import ComponentContext, precision_policy
from .scheduler import PAPER_DOMAINS, TaskDomainScheduler, TaskHandle

__all__ = ["AP3ESMConfig", "AP3ESM"]

KELVIN = 273.15
OCEAN_ALBEDO = 0.07
OCEAN_EMISSIVITY = 0.96

#: The driver-native coupling-field registry (§5.2.4): per path, what the
#: producing component registers vs. what this driver actually reads.
#: Registered lists mirror each component's ``export_state`` (a2x's six
#: diagnostic fields are optional — absent until the physics populates
#: them); used sets are exactly the reads in ``_domain1_unit`` /
#: ``_ocean_forcing`` / the components' ``import_state``.
_O2X_FIELDS = ("sst", "sss", "ssh", "u_surf", "v_surf", "freezing")
_O2X_USED = ("sst", "u_surf", "v_surf", "freezing")
_A2X_FIELDS = (
    "taux", "tauy", "t_bot", "q_bot", "u_bot", "v_bot",
    "gsw", "glw", "precip", "shflx", "lhflx", "cloud_fraction",
)
_A2X_USED = ("taux", "tauy", "t_bot", "gsw", "glw", "precip", "shflx", "lhflx")
_X2O_FIELDS = ("taux", "tauy", "heat_flux", "fresh_flux")
_I2X_FIELDS = ("ice_fraction", "ice_thickness", "ice_tsurf", "albedo")
_I2X_USED = ("ice_fraction", "ice_tsurf")


@dataclass
class AP3ESMConfig:
    """Laptop-scale coupled configuration (paper pairings in config.py)."""

    atm_level: int = 3
    atm_nlev: int = 30
    ocn_nlon: int = 96
    ocn_nlat: int = 64
    ocn_levels: int = 10
    atm_steps_per_coupling: int = 1
    ocn_couple_ratio: int = 5      # paper: atm 180/day vs ocn 36/day
    precision: str = "fp64"        # 'fp64' or 'mixed' (§5.2.3)
    concurrent_domains: bool = False  # run domain 2 on its own thread
    #: Apply FieldRegistry pruning to every coupling-path handoff
    #: (§5.2.4); surviving fields stay bitwise identical.
    prune_fields: bool = False
    #: Directory for content-addressed offline GSMap/Router construction;
    #: None disables the coupler cache (and the compiled plans).
    coupler_cache_dir: Optional[str] = None
    #: Execution backend for every component kernel: 'serial' (default),
    #: 'threads'/'cpe'/'gpu' (modeled spaces), or 'procs' — the real
    #: shared-memory process pool, bitwise-identical to 'serial'.
    backend: str = "serial"
    #: Worker/lane count for the chosen backend; 0 = backend default
    #: (all host cores for 'procs').
    backend_workers: int = 0
    physics: Optional[object] = None  # a PhysicsSuite; None = conventional
    #: Resilience machinery (guardrail, checkpoints, watchdog); disabled
    #: by default — the driver then takes the pre-resilience code paths.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    @staticmethod
    def from_namelist(path) -> "AP3ESMConfig":
        """Build a configuration from a CESM-style namelist file with an
        ``&ap3esm_nml`` group (unknown variables are warned about and
        ignored, so newer namelists keep working on older drivers)."""
        from ..utils.namelist import read_namelist

        groups = read_namelist(path)
        if "ap3esm_nml" not in groups:
            raise ValueError("namelist must contain an &ap3esm_nml group")
        nml = groups["ap3esm_nml"]
        import dataclasses

        valid = {f.name for f in dataclasses.fields(AP3ESMConfig)} - {
            "physics", "resilience",
        }
        unknown = set(nml) - valid
        if unknown:
            warnings.warn(
                f"ignoring unknown ap3esm_nml variables: {sorted(unknown)}",
                stacklevel=2,
            )
        return AP3ESMConfig(**{k: v for k, v in nml.items() if k in valid})


class AP3ESM:
    """The coupled Earth system model."""

    def __init__(
        self,
        config: AP3ESMConfig | None = None,
        obs: Obs | None = None,
        space: ExecutionSpace | None = None,
        coupler_cache: Optional[CouplerCache] = None,
    ) -> None:
        self.config = config if config is not None else AP3ESMConfig()
        self.timers = TimerRegistry()
        self.obs = obs if obs is not None else NULL_OBS
        self._space = space
        #: Warm CouplerCache handed in by a session driver (EnsembleRun):
        #: all instances share one content-addressed table instead of each
        #: rebuilding the same GSMaps/Routers.
        self._shared_cache = coupler_cache
        self._owned_pool = None
        #: Ensemble hook: when set, ``_domain1_unit`` calls
        #: ``self._atm_runner(self.atm, n_steps)`` instead of
        #: ``self.atm.run(n_steps)`` — how the lockstep driver interposes
        #: cross-member batched physics without touching the schedule.
        self._atm_runner = None
        self._initialized = False

    # -- lifecycle ---------------------------------------------------------------

    def init(self) -> None:
        with self.obs.span("esm.init"):
            self._init()

    def _init(self) -> None:
        cfg = self.config
        res = cfg.resilience
        # Physics guardrail (§ resilience): wrap the suite so NaN/blow-up
        # columns fall back to the conventional parameterization instead
        # of poisoning the coupled state.  Disabled -> the suite is passed
        # through untouched and bitwise behavior is the pre-resilience one.
        physics = cfg.physics
        self.guarded_physics = None
        if res.enabled and res.guard_physics:
            from ..atm.physics import ConventionalPhysics
            from ..resilience.guardrail import GuardedPhysics

            primary = physics if physics is not None else ConventionalPhysics()
            self.guarded_physics = GuardedPhysics(primary, obs=self.obs)
            physics = self.guarded_physics
        self.atm = GristModel(
            GristConfig(level=cfg.atm_level, nlev=cfg.atm_nlev),
            physics=physics,
            timers=self.timers,
        )
        self.atm.init()
        if self.guarded_physics is not None:
            # Key chaos injections on the atm step counter: it is restored
            # by restart, so replay after recovery re-injects identically.
            self.guarded_physics.step_fn = lambda: self.atm.n_steps
        self.ocn = LicomModel(
            LicomConfig(nlon=cfg.ocn_nlon, nlat=cfg.ocn_nlat, n_levels=cfg.ocn_levels),
            timers=self.timers,
        )
        self.ocn.init()
        self.ice = CiceModel(self.ocn.grid, timers=self.timers)
        self.ice.init()

        # Remap operators between the two grids.
        ocn_xyz = self.ocn.grid.centers.reshape(-1, 3)
        ocn_area = self.ocn.grid.area.reshape(-1)
        atm_grid = self.atm.grid
        self.o2a = nearest_remap(ocn_xyz, atm_grid.xyz_cell, ocn_area, atm_grid.area_cell)
        self.a2o = nearest_remap(atm_grid.xyz_cell, ocn_xyz, atm_grid.area_cell, ocn_area)

        # Land mask on atmosphere cells from the remapped ocean mask.
        ocean_frac = self.o2a.apply(self.ocn.grid.mask.reshape(-1).astype(float))
        self.ocean_frac_atm = np.clip(ocean_frac, 0.0, 1.0)
        self.land_mask_atm = self.ocean_frac_atm < 0.5
        self.lnd = LandModel(
            atm_grid.n_cells, land_mask=self.land_mask_atm, timers=self.timers
        )
        self.lnd.init()

        # ONE shared context for all four components: execution space,
        # kernel registry (the §5.3 hash table), precision policy, obs.
        # An explicit `space=` argument wins over the config backend name.
        self._owned_pool = None
        space = self._space
        if space is None and cfg.backend != "serial":
            space = make_backend(cfg.backend, cfg.backend_workers or None)
            self._owned_pool = getattr(space, "runtime", None)
        if hasattr(space, "runtime"):
            # Real process backend: bind obs so pp.procpool.* metrics land
            # in this run's registry, and fork the workers NOW — before
            # the scheduler spawns threads (forking a threaded process is
            # the classic deadlock).  A pool we don't own (an ensemble's
            # shared backend) keeps its owner's obs binding.
            if self._owned_pool is not None or space.runtime.obs is None:
                space.runtime.obs = self.obs
            space.runtime.ensure_started()
        ctx_kwargs = {"precision": precision_policy(cfg.precision), "obs": self.obs}
        if space is not None:
            ctx_kwargs["space"] = space
        self.ctx = ComponentContext(**ctx_kwargs)
        self.components = (self.atm, self.ocn, self.ice, self.lnd)
        for comp in self.components:
            comp.set_context(self.ctx)

        # Task-domain scheduler (§5.1.2).  The ocean gets its own timer
        # registry in concurrent mode: the shared one is stack-based and
        # not thread-safe.
        self.scheduler = TaskDomainScheduler(
            PAPER_DOMAINS,
            obs=self.obs,
            concurrent=cfg.concurrent_domains,
            watchdog_s=res.watchdog_s if res.enabled else None,
        )
        if cfg.concurrent_domains:
            self.ocn.timers = TimerRegistry()
        self.ocn_timers = self.ocn.timers

        # Coupler clock: one tick per atmosphere coupling interval, with
        # the ocean alarm at the paper's 5:1 frequency ratio.
        self.dt_couple = cfg.atm_steps_per_coupling * self.atm.dt_model
        self.clock = Clock(dt=self.dt_couple)
        self.clock.add_alarm("cpl_ocn", interval=cfg.ocn_couple_ratio * self.dt_couple)

        # Ocean substeps per ocean coupling, with dt adjusted so the
        # coupling period is an exact multiple of the internal step (the
        # §5.1.1 clock-consistency requirement).
        period = cfg.ocn_couple_ratio * self.dt_couple
        n = max(1, math.ceil(period / self.ocn.dt_baroclinic))
        self.ocn.dt_baroclinic = period / n
        self.ocn.dt_barotropic = self.ocn.dt_baroclinic / 10.0
        self.ocn.dt_tracer = self.ocn.dt_baroclinic
        self.ocn_steps_per_coupling = n

        # Driver-native pruned coupling-field registry (§5.2.4): registered
        # lists mirror the component exports, used sets are the driver's
        # actual reads; the exchange layer applies it to every handoff.
        self.fields = FieldRegistry()
        self.fields.register("a2x", list(_A2X_FIELDS))
        self.fields.register("x2o", list(_X2O_FIELDS))
        self.fields.register("o2x", list(_O2X_FIELDS))
        self.fields.register("i2x", list(_I2X_FIELDS))
        self.fields.mark_used("a2x", list(_A2X_USED))
        self.fields.mark_used("x2o", list(_X2O_FIELDS))  # ocean reads all four
        self.fields.mark_used("o2x", list(_O2X_USED))
        self.fields.mark_used("i2x", list(_I2X_USED))
        self.exchange = CoupledExchange(
            self.fields, prune=cfg.prune_fields, obs=self.obs
        )

        # Offline coupler construction (content-addressed GSMap/Router
        # cache + compiled rearrange plans); disabled unless a cache
        # directory is configured.
        self.coupler_cache: Optional[CouplerCache] = None
        self.plans: Dict[str, RearrangePlan] = {}
        if cfg.coupler_cache_dir is not None or self._shared_cache is not None:
            self._init_coupler_tables()

        # Lagged ocean coupling state: the published export domain 1
        # reads, plus the join handle of the not-yet-published run.
        self._o2x = self.exchange.transfer("o2x", self.ocn.export_state())
        self._pending: Optional[TaskHandle] = None

        # Rotating checkpoints (resilience): None unless configured, so
        # the coupling loop pays one `is None` branch when disabled.
        self.checkpoints = None
        if res.enabled and res.checkpoint_every > 0:
            from ..resilience.checkpoint import CheckpointManager

            self.checkpoints = CheckpointManager(
                res.checkpoint_dir, keep=res.checkpoint_keep, obs=self.obs
            )

        # Elastic recovery: None (the default `abort` policy) keeps the
        # coupling loop on the pre-elastic path behind one `is None`
        # branch; `shrink`/`spare` arm the recovering loop.
        self._recovery = None
        self.recovery_events: list = []
        if res.enabled and res.recovery_policy != "abort":
            from ..resilience.elastic import RecoveryPolicy

            if self.checkpoints is None:
                raise ValueError(
                    f"recovery_policy={res.recovery_policy!r} needs a "
                    "checkpoint to roll back to: set "
                    "resilience.checkpoint_every/checkpoint_dir"
                )
            self._recovery = RecoveryPolicy.parse(res.recovery_policy)
            self._spares_left = res.spare_ranks
            self._failed_at: Optional[int] = None
            self._failed_count = 0

        self.n_couplings = 0
        self._initialized = True

    def finalize(self) -> Dict[str, Dict[str, float]]:
        self._check()
        self._wait_ocean()
        self.scheduler.shutdown()
        with self.obs.span("esm.finalize"):
            out = {
                "atm": self.atm.finalize(),
                "ocn": self.ocn.finalize(),
                "ice": self.ice.finalize(),
                "lnd": self.lnd.finalize(),
            }
        if self._owned_pool is not None:
            st = self._owned_pool.stats
            self.obs.gauge("pp.procpool.dispatches_total").set(float(st.dispatches))
            self.obs.gauge("pp.procpool.fallbacks_total").set(float(st.fallbacks))
            self._owned_pool.shutdown()
        return out

    def pool_stats(self):
        """:class:`~repro.pp.procpool.PoolStats` of the config-owned
        process pool, or ``None`` when the backend is not ``procs``."""
        return self._owned_pool.stats if self._owned_pool is not None else None

    # -- coupling loop ---------------------------------------------------------------

    def step_coupling(self) -> None:
        """One atmosphere coupling interval (+ ocean when its alarm rings).

        Domain 1 (cpl+atm+ice+lnd) executes inline; domain 2 (ocn) is
        launched at the alarm and its export published at the *next*
        alarm — one coupling period of lag either way, so the serial and
        concurrent schedules produce identical bits.
        """
        self._check()
        cfg = self.config
        obs = self.obs
        with self.timers.timed("cpl_run"), obs.span(
            "cpl.step", coupling=self.n_couplings
        ):
            # Publish the lagged ocean export at the coupling whose
            # advance will ring the alarm, *before* domain 1 reads it.
            if self._pending is not None and self.clock.will_ring("cpl_ocn"):
                self._publish_ocean()

            to_ocn, i2x = self.scheduler.execute("domain1", self._domain1_unit)

            self.clock.advance()
            if self.clock.ringing("cpl_ocn"):
                forcing = self.exchange.transfer(
                    "x2o", self._ocean_forcing(to_ocn, i2x)
                )
                self._pending = self.scheduler.launch(
                    "domain2", lambda dom_obs: self._ocean_unit(dom_obs, forcing)
                )
                obs.counter("ocn.couplings").inc()
                obs.counter("ocn.steps").inc(self.ocn_steps_per_coupling)
        obs.counter("cpl.steps").inc()
        obs.counter("atm.steps").inc(cfg.atm_steps_per_coupling)
        self.n_couplings += 1

    def _domain1_unit(self, obs):
        """cpl + atm + ice + lnd for one coupling interval (reads only
        the *published* ocean export, never in-flight ocean state)."""
        cfg = self.config
        with obs.span("atm.run", steps=cfg.atm_steps_per_coupling):
            if self._atm_runner is not None:
                self._atm_runner(self.atm, cfg.atm_steps_per_coupling)
            else:
                self.atm.run(cfg.atm_steps_per_coupling)
            self.ctx.apply_precision(self.atm)
            a2x = self.exchange.transfer("a2x", self.atm.post_coupling())

        # --- direct atmosphere -> land -> atmosphere exchange --------
        with obs.span("lnd.step"):
            self.lnd.pre_coupling({
                "gsw": a2x["gsw"], "glw": a2x["glw"],
                "precip": a2x["precip"], "t_air": a2x["t_bot"],
            })
            self.lnd.step(self.dt_couple)
            self.ctx.apply_precision(self.lnd)
            lnd_out = self.lnd.post_coupling()

        # --- atmosphere -> ice (on the ocean grid) --------------------
        with obs.span("cpl.a2o_remap"):
            shape_o = self.ocn.metrics.shape
            to_ocn = {
                name: self.a2o.apply(a2x[name]).reshape(shape_o)
                for name in ("gsw", "glw", "t_bot", "taux", "tauy", "shflx", "lhflx", "precip")
            }
        with obs.span("ice.step"):
            o2x = self._o2x
            self.ice.pre_coupling({
                "gsw": to_ocn["gsw"],
                "glw": to_ocn["glw"],
                "t_air": to_ocn["t_bot"] - KELVIN,
                "sst": o2x["sst"],
                "freezing": o2x["freezing"],
                "u_drift": o2x["u_surf"],
                "v_drift": o2x["v_surf"],
            })
            self.ice.step(self.dt_couple)
            self.ctx.apply_precision(self.ice)
            i2x = self.exchange.transfer("i2x", self.ice.post_coupling())

        # --- ocean + ice + land -> atmosphere -------------------------
        with obs.span("cpl.o2a_merge"):
            sst_atm = self.o2a.apply((o2x["sst"] + KELVIN).reshape(-1))
            ice_frac_atm = np.clip(
                self.o2a.apply(i2x["ice_fraction"].reshape(-1)), 0.0, 1.0
            )
            ice_t_atm = self.o2a.apply((i2x["ice_tsurf"] + KELVIN).reshape(-1))
            skin = (1.0 - ice_frac_atm) * sst_atm + ice_frac_atm * ice_t_atm
            skin = np.where(self.land_mask_atm, lnd_out["tskin_land"], skin)
            self.atm.pre_coupling({"sst": skin, "ice_fraction": ice_frac_atm})
        return to_ocn, i2x

    def _ocean_forcing(self, to_ocn, i2x) -> Dict[str, np.ndarray]:
        """Merge atmosphere + ice fields into the x2o forcing bundle."""
        sst_k = self._o2x["sst"] + KELVIN
        open_water = 1.0 - i2x["ice_fraction"]
        net_heat = (
            (1.0 - OCEAN_ALBEDO) * to_ocn["gsw"]
            + to_ocn["glw"]
            - OCEAN_EMISSIVITY * STEFAN_BOLTZMANN * sst_k**4
            - to_ocn["shflx"]
            - to_ocn["lhflx"]
        ) * open_water
        evap = to_ocn["lhflx"] / LATENT_HEAT_VAPORIZATION
        return {
            "taux": to_ocn["taux"] * open_water,
            "tauy": to_ocn["tauy"] * open_water,
            "heat_flux": net_heat,
            "fresh_flux": (to_ocn["precip"] - evap) * open_water,
        }

    def _ocean_unit(self, obs, forcing) -> Dict[str, np.ndarray]:
        """Domain 2: one ocean coupling period; returns the new export
        (published by the driver at the next alarm, not here)."""
        with obs.span("ocn.run", substeps=self.ocn_steps_per_coupling):
            self.ocn.pre_coupling(forcing)
            self.ocn.step(self.ocn_steps_per_coupling * self.ocn.dt_baroclinic)
            self.ctx.apply_precision(self.ocn)
            return self.ocn.post_coupling()

    def _publish_ocean(self) -> None:
        """Join the pending ocean run and make its export visible (routed
        through the exchange layer, so pruning applies here too)."""
        if self._pending is not None:
            self._o2x = self.exchange.transfer("o2x", self._pending.result())
            self._pending = None

    def _wait_ocean(self) -> None:
        """Block until any in-flight ocean run finished (the export stays
        unpublished — publishing early would change the schedule)."""
        if self._pending is not None:
            self._pending.wait()

    def run_couplings(self, n: int) -> None:
        if self._recovery is not None:
            return self._run_couplings_elastic(n)
        every = self.config.resilience.checkpoint_every
        for _ in range(n):
            self.step_coupling()
            if (
                self.checkpoints is not None
                and self.n_couplings % every == 0
            ):
                self.checkpoint()
        # Leave no thread mutating ocean state once control returns.
        self._wait_ocean()

    def _run_couplings_elastic(self, n: int) -> None:
        """The recovering coupling loop (``recovery_policy`` shrink/spare).

        A rank-loss-class failure surfacing from either task domain rolls
        the whole coupled state back to the newest valid checkpoint via
        :meth:`recover_from_failure`, then the loop replays forward —
        deterministically, since every component restores bitwise.  The
        same coupling failing ``max_retries`` consecutive times (a hard
        fault no rollback can clear) re-raises.
        """
        from ..resilience.errors import (
            CommRevokedError,
            CommTimeoutError,
            RankFailure,
            WatchdogTimeout,
        )

        every = self.config.resilience.checkpoint_every
        target = self.n_couplings + n
        # Seed checkpoint so a failure before the first interval has a
        # rollback target (idempotent: same-step saves replace).
        if self.n_couplings == 0:
            self.checkpoint()
        while True:
            try:
                if self.n_couplings >= target:
                    self._check_pending()
                    return
                self.step_coupling()
                if self.n_couplings % every == 0:
                    # A latent ocean-unit failure must surface *before*
                    # the checkpoint — otherwise the checkpoint bakes in
                    # an un-stepped ocean and rollback restores poison.
                    self._check_pending()
                    self.checkpoint()
            except (
                RankFailure,
                CommRevokedError,
                CommTimeoutError,
                WatchdogTimeout,
            ) as exc:
                self.recover_from_failure(exc)

    def _check_pending(self) -> None:
        """Join any in-flight ocean run and surface its failure *now*.

        Lagged coupling keeps a unit failure latent in the handle until
        publish; the elastic loop calls this before checkpoints and at
        the end of its window so a poisoned run is never checkpointed or
        handed back to the caller.  The export stays unpublished —
        ``result()`` is idempotent and publishing happens only at the
        alarm."""
        self._wait_ocean()
        if self._pending is not None:
            self._pending.result()

    # -- resilience: rotating checkpoints + recovery ------------------------------

    def checkpoint(self):
        """Write one rotating checkpoint now (requires a configured
        ``resilience.checkpoint_every``/``checkpoint_dir``)."""
        if self.checkpoints is None:
            raise RuntimeError("checkpointing is not configured "
                               "(set config.resilience.checkpoint_*)")
        return self.checkpoints.to_file(self.save_restart, self.n_couplings)

    def recover(self):
        """Restore the newest *valid* checkpoint (corrupt or truncated
        sets are skipped and counted as ``resilience.checkpoint_fallbacks``);
        returns the checkpoint directory restored from."""
        if self.checkpoints is None:
            raise RuntimeError("checkpointing is not configured "
                               "(set config.resilience.checkpoint_*)")
        self._wait_ocean()
        return self.checkpoints.restore_latest_valid(self.load_restart)

    #: Consecutive failures of the same coupling before recovery gives up
    #: (a fault no rollback can clear — e.g. a deterministic component bug).
    MAX_RECOVERY_RETRIES = 3

    def recover_from_failure(self, exc: BaseException) -> str:
        """ULFM-style driver recovery: abandon the failed domain's
        outstanding work (*revoke*), roll the whole coupled state back to
        the newest valid checkpoint (*shrink*'s state repair), and let
        the caller replay forward deterministically.

        Under ``spare`` a pre-allocated idle rank replaces the dead one —
        the decomposition is unchanged, so the replay is bitwise-identical
        to a fault-free twin; the spare pool is decremented and, once
        exhausted, the failure surfaces.  Under ``shrink`` the domain the
        failure was attributed to is marked degraded (fewer ranks carry
        the same decomposed work) and the layout/metrics report it.

        Attribution heuristic: ``WatchdogTimeout`` names its domain; any
        other failure is charged to domain 2 when an unpublished ocean run
        was outstanding, else to domain 1.  Attribution only affects
        degradation bookkeeping — rollback always covers the full coupled
        state.

        Returns the checkpoint directory restored from.
        """
        if self._recovery is None:
            raise RuntimeError(
                "elastic recovery is not armed (recovery_policy=abort)"
            ) from exc
        from ..resilience.elastic import RecoveryPolicy

        failed_at = self.n_couplings
        if failed_at == self._failed_at:
            self._failed_count += 1
        else:
            self._failed_at, self._failed_count = failed_at, 1
        if self._failed_count > self.MAX_RECOVERY_RETRIES:
            raise exc

        policy = self._recovery
        domain = getattr(exc, "domain", None) or (
            "domain2" if self._pending is not None else "domain1"
        )
        obs = self.obs
        with obs.span(
            "resilience.recovery",
            policy=policy.value,
            domain=domain,
            error=type(exc).__name__,
            coupling=failed_at,
        ):
            if policy is RecoveryPolicy.SPARE and self._spares_left <= 0:
                obs.counter("resilience.spares_exhausted").inc()
                raise exc
            self.scheduler.reset("domain2")
            self._pending = None
            restored = self.checkpoints.restore_latest_valid(self.load_restart)
            replayed = failed_at - self.n_couplings
            if policy is RecoveryPolicy.SPARE:
                self._spares_left -= 1
                obs.counter("resilience.spares_used").inc()
            else:
                self.scheduler.mark_degraded(domain)
            obs.counter("resilience.recoveries").inc()
            obs.counter("resilience.ranks_lost").inc(
                len(getattr(exc, "dead", ())) or 1
            )
            obs.counter("resilience.replayed_couplings").inc(replayed)
            obs.gauge("resilience.recovery.coupling").set(float(self.n_couplings))
        self.recovery_events.append({
            "policy": policy.value,
            "domain": domain,
            "error": type(exc).__name__,
            "failed_at_coupling": failed_at,
            "restored_to_coupling": self.n_couplings,
            "replayed_couplings": replayed,
            "checkpoint": str(restored),
        })
        return restored

    def degraded_sypd(self, label: str = "3v2", total_cores: int = 2_000_000):
        """Machine-model SYPD estimate for the current (possibly degraded)
        layout: the paper-calibrated coupled model is balanced at
        ``total_cores``, then each domain's modeled process count is
        docked by the ranks the scheduler recorded as lost.  Emits
        ``resilience.degraded.*`` gauges and returns the
        :meth:`~repro.machine.perfmodel.CoupledPerfModel.degraded_estimate`
        dict."""
        from ..bench.scaling import CORES_PER_SUNWAY_PROCESS, paper_coupled_model

        coupled = paper_coupled_model(label)
        total = max(2, int(total_cores) // CORES_PER_SUNWAY_PROCESS)
        n1, n2 = coupled.balance_resources(total)
        lost = self.scheduler.degraded
        est = coupled.degraded_estimate(
            n1, n2,
            lost1=min(lost.get("domain1", 0), n1 - 1),
            lost2=min(lost.get("domain2", 0), n2 - 1),
        )
        self.obs.gauge("resilience.degraded.sypd").set(est["sypd_degraded"])
        self.obs.gauge("resilience.degraded.slowdown").set(est["slowdown"])
        return est

    def run_days(self, days: float) -> None:
        per_day = 86400.0 / self.dt_couple
        self.run_couplings(max(1, int(round(days * per_day))))

    # -- restart I/O (§5.2.5, whole coupled system) ---------------------------------------

    def save_restart(self, directory) -> None:
        """Write all four components' restart sets plus the coupler clock
        and the lagged-coupling state (published export + pending flag)."""
        self._check()
        self._wait_ocean()
        from pathlib import Path

        from ..io.restart import save_restart

        base = Path(directory)
        self.atm.save_restart(base / "atm")
        self.ocn.save_restart(base / "ocn")
        self.ice.save_restart(base / "ice")
        self.lnd.save_restart(base / "lnd")
        save_restart(
            base / "cpl",
            # Iterate the fields actually present: a pruned run publishes
            # (and must restore) only the surviving o2x subset.
            fields={
                f"o2x_{name}": np.asarray(self._o2x[name], dtype=float)
                for name in sorted(self._o2x)
            },
            scalars={
                "time": self.clock.time,
                "n_couplings": float(self.n_couplings),
                "step_count": float(self.clock.step_count),
                "pending_publish": 1.0 if self._pending is not None else 0.0,
            },
        )

    def load_restart(self, directory) -> None:
        """Restore the whole coupled system; clocks stay synchronized."""
        self._check()
        from pathlib import Path

        from ..io.restart import load_restart

        base = Path(directory)
        self.atm.load_restart(base / "atm")
        self.ocn.load_restart(base / "ocn")
        self.ice.load_restart(base / "ice")
        self.lnd.load_restart(base / "lnd")
        fields, scalars = load_restart(base / "cpl")
        self.clock.time = scalars["time"]
        self.clock.step_count = int(scalars["step_count"])
        self.n_couplings = int(scalars["n_couplings"])
        o2x_names = sorted(k[len("o2x_"):] for k in fields if k.startswith("o2x_"))
        self._o2x = {
            name: fields[f"o2x_{name}"].astype(bool)
            if name == "freezing" else fields[f"o2x_{name}"]
            for name in o2x_names
        }
        # An unpublished export equals the (restored) current ocean state:
        # the run it came from had completed before the save.
        if scalars.get("pending_publish", 0.0) > 0.5:
            self._pending = TaskHandle(value=self.ocn.export_state())
        else:
            self._pending = None
        # Re-arm the ocean alarm consistently with the restored clock.
        alarm = self.clock._alarms["cpl_ocn"]
        periods_done = int(self.clock.time / alarm.interval + 1e-9)
        alarm.reset_to(periods_done)

    # -- coupler fast path (§5.2.4) -------------------------------------------------------

    #: Virtual ranks for the cached coupler decompositions (the coupler-
    #: side and ocean-side layouts a distributed run would use).
    N_COUPLER_RANKS = 4

    def _init_coupler_tables(self) -> None:
        """Offline coupler construction: resolve the GSMaps and Routers
        for the cpl<->ocn exchange through the content-addressed
        :class:`CouplerCache` (a warm cache skips ``Router.build``
        entirely) and compile one :class:`RearrangePlan` per direction —
        the o2x plan coalesces the o2x *and* i2x bundles (ice lives on
        the ocean grid) into a single message per (src, dst) edge."""
        cfg = self.config
        if self._shared_cache is not None:
            self.coupler_cache = self._shared_cache
        else:
            self.coupler_cache = CouplerCache(cfg.coupler_cache_dir, obs=self.obs)
        n = self.N_COUPLER_RANKS
        ncells = self.ocn.grid.mask.size
        grid = f"ocn-{cfg.ocn_nlon}x{cfg.ocn_nlat}"
        # Coupler side: contiguous blocks; ocean side: round-robin stripes
        # (the layouts differ, so the Routers are genuinely M-to-N).
        cpl_owners = np.arange(ncells) * n // ncells
        ocn_owners = np.arange(ncells) % n
        with self.obs.span("cpl.offline_build", grid=grid, ranks=n):
            gsmap_cpl = self.coupler_cache.get_gsmap(f"{grid}/cpl", cpl_owners)
            gsmap_ocn = self.coupler_cache.get_gsmap(f"{grid}/ocn", ocn_owners)
            router_x2o = self.coupler_cache.get_router(
                f"{grid}/cpl", f"{grid}/ocn", gsmap_cpl, gsmap_ocn
            )
            router_o2x = self.coupler_cache.get_router(
                f"{grid}/ocn", f"{grid}/cpl", gsmap_ocn, gsmap_cpl
            )
        self.gsmaps = {"cpl": gsmap_cpl, "ocn": gsmap_ocn}
        fields_of = (
            self.fields.pruned
            if cfg.prune_fields
            else lambda path: self.fields.registered[path]
        )
        self.plans = {
            "x2o": RearrangePlan.compile(router_x2o, {"x2o": fields_of("x2o")}),
            "o2x": RearrangePlan.compile(
                router_o2x, {"o2x": fields_of("o2x"), "i2x": fields_of("i2x")}
            ),
        }

    def coupler_report(self) -> Dict[str, object]:
        """Fast-path accounting: per-path exchange traffic and pruning
        savings, plus (when the cache is armed) cache hit/miss stats and
        the compiled plans' per-field vs. coalesced message counts."""
        self._check()
        ocn_lsize = self.ocn.grid.mask.size
        atm_lsize = self.atm.grid.n_cells
        lsizes = {"a2x": atm_lsize, "x2o": ocn_lsize,
                  "o2x": ocn_lsize, "i2x": ocn_lsize}
        report: Dict[str, object] = {
            "exchange": self.exchange.report(),
            "pruning": {
                path: self.fields.savings(path, lsizes[path])
                for path in sorted(self.fields.registered)
            },
        }
        if self.coupler_cache is not None:
            report["cache"] = self.coupler_cache.stats()
            report["plans"] = {
                name: plan.message_counts(self.N_COUPLER_RANKS)
                for name, plan in sorted(self.plans.items())
            }
        return report

    # -- performance-layout description (§5.1.2) -----------------------------------------

    def task_domains(self) -> Dict[str, Dict[str, object]]:
        """The two concurrent task domains the paper allocates resources
        to (consumed by ``CoupledPerfModel.from_layout``)."""
        return self.scheduler.layout()

    # -- model-wide precision ledger (§5.2.3) --------------------------------------------

    def memory_report(self) -> Dict[str, float]:
        """Resident prognostic-state bytes under the precision policy,
        across all four components."""
        self._check()
        self._wait_ocean()
        return self.ctx.memory_report(self.components)

    def _check(self) -> None:
        if not self._initialized:
            raise RuntimeError("coupled model not initialized (call init())")
