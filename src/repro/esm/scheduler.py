"""Task-domain scheduling for the coupled driver (§5.1.2).

The paper places the coupled system on two *task domains* — domain 1
hosts the coupler, atmosphere, sea ice, and land; domain 2 hosts the
ocean — and runs them concurrently, with "computational resource
allocation ... adjusted based on the computational profile of each
component".  This module makes that layout an explicit, schedulable
object instead of a comment in the driver:

* :class:`TaskDomain` — a named group of components plus the placement
  rationale;
* :class:`TaskDomainScheduler` — executes domain units inline
  (``execute``) or as launched tasks (``launch``), backed by a
  thread-pool when concurrency is requested and by immediate execution
  otherwise.  Every unit runs under a per-domain ``cpl.domain.<name>``
  span; concurrently-launched domains trace on their own forked obs
  rank because the tracer stack is not thread-safe.

The driver pairs ``launch`` with *lagged* coupling (the launched
domain's export is published at a fixed later coupling, not when the
thread happens to finish), which is what makes the concurrent schedule
bitwise-identical to the serial one.

:data:`PAPER_DOMAINS` / :func:`paper_layout` give the canonical §5.1.2
placement; the machine model's ``CoupledPerfModel.from_layout`` consumes
the same dict shape to price it.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "TaskDomain",
    "TaskHandle",
    "TaskDomainScheduler",
    "PAPER_DOMAINS",
    "paper_layout",
]


@dataclass(frozen=True)
class TaskDomain:
    """A named group of components scheduled as one unit."""

    name: str
    members: Tuple[str, ...]
    rationale: str = ""


#: The paper's §5.1.2 placement: coupler+atm+ice+lnd vs ocean.
PAPER_DOMAINS: Tuple[TaskDomain, ...] = (
    TaskDomain(
        name="domain1",
        members=("cpl", "atm", "ice", "lnd"),
        rationale="atmosphere dominates cost; coupler co-located "
                  "to minimize exchange; land is tied to the "
                  "atmosphere; ice is cheap",
    ),
    TaskDomain(
        name="domain2",
        members=("ocn",),
        rationale="second-largest cost, runs concurrently",
    ),
)


def paper_layout() -> Dict[str, Dict[str, object]]:
    """The canonical two-domain layout as a plain dict (the shape
    ``AP3ESM.task_domains`` exposes and ``CoupledPerfModel.from_layout``
    consumes)."""
    return _layout(PAPER_DOMAINS)


def _layout(domains: Sequence[TaskDomain]) -> Dict[str, Dict[str, object]]:
    return {
        d.name: {"members": list(d.members), "rationale": d.rationale}
        for d in domains
    }


def _tag_domain(exc: BaseException, name: str) -> None:
    """Stamp an escaping unit exception with the domain it came from, so
    elastic recovery can attribute the failure without guessing.  Never
    overwrites (WatchdogTimeout already names its domain) and never
    raises (slotted exceptions just go untagged)."""
    if getattr(exc, "domain", None) is None:
        try:
            exc.domain = name
        except Exception:
            pass


class TaskHandle:
    """Join handle for a launched domain unit.

    In serial mode the unit already ran — the handle just carries the
    value.  In concurrent mode it wraps the executor future; ``result``
    blocks (and re-raises the unit's exception, if any).  With a
    ``watchdog_s`` budget, a unit that outlives it raises
    :class:`~repro.resilience.errors.WatchdogTimeout` naming the domain —
    a clean diagnostic instead of a deadlocked driver.
    """

    def __init__(
        self,
        value: Any = None,
        future: Any = None,
        name: str = "",
        watchdog_s: Optional[float] = None,
        obs: Any = None,
    ) -> None:
        self._value = value
        self._future = future
        self._name = name
        self._watchdog_s = watchdog_s
        self._obs = obs

    def done(self) -> bool:
        return self._future is None or self._future.done()

    def _watchdog_abort(self) -> "None":
        from ..resilience.errors import WatchdogTimeout

        if self._obs is not None:
            self._obs.counter("resilience.watchdog_aborts").inc()
        raise WatchdogTimeout(self._name or "<task>", self._watchdog_s)

    def wait(self) -> None:
        """Block until the unit finished — pure synchronization.  A unit
        failure is NOT raised here; it surfaces at :meth:`result` (the
        point where the value would have been consumed).  The watchdog,
        however, fires here too: a hung unit is never silently waited
        on."""
        if self._future is not None:
            try:
                self._future.exception(timeout=self._watchdog_s)
            except _FutureTimeout:
                self._watchdog_abort()

    def result(self) -> Any:
        if self._future is not None:
            try:
                return self._future.result(timeout=self._watchdog_s)
            except _FutureTimeout:
                self._watchdog_abort()
        return self._value


class TaskDomainScheduler:
    """Executes task domains serially or concurrently.

    Parameters
    ----------
    domains:
        The task-domain layout (defaults to the paper's two domains).
    obs:
        Observability handle; every domain unit runs under a
        ``cpl.domain.<name>`` span.
    concurrent:
        When True, :meth:`launch` dispatches units to a thread pool and
        each launched domain traces on ``obs.fork(rank)``; when False,
        :meth:`launch` runs the unit immediately on the caller's thread
        (same schedule, zero threading).
    watchdog_s:
        Seconds a launched unit may run before joins on its handle abort
        with :class:`~repro.resilience.errors.WatchdogTimeout` (None =
        wait forever, the pre-resilience behavior).  Only meaningful in
        concurrent mode — serial launches finish before returning.
    """

    def __init__(
        self,
        domains: Sequence[TaskDomain] = PAPER_DOMAINS,
        obs: Any = None,
        concurrent: bool = False,
        watchdog_s: Optional[float] = None,
    ) -> None:
        if obs is None:
            from ..obs import NULL_OBS

            obs = NULL_OBS
        self.domains: Tuple[TaskDomain, ...] = tuple(domains)
        if not self.domains:
            raise ValueError("need at least one task domain")
        self._by_name = {d.name: d for d in self.domains}
        if len(self._by_name) != len(self.domains):
            raise ValueError("task-domain names must be unique")
        self.obs = obs
        self.concurrent = bool(concurrent)
        self.watchdog_s = watchdog_s
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=max(1, len(self.domains) - 1),
                thread_name_prefix="task-domain",
            )
            if self.concurrent
            else None
        )
        self._domain_obs: Dict[str, Any] = {}
        self._outstanding: List[TaskHandle] = []
        self._degraded: Dict[str, int] = {}

    # -- layout ------------------------------------------------------------

    def domain(self, name: str) -> TaskDomain:
        return self._by_name[name]

    def layout(self) -> Dict[str, Dict[str, object]]:
        """The layout dict the machine model prices (§5.1.2).  Domains
        running degraded after elastic recovery additionally carry their
        ``lost_ranks`` count (absent when nothing was lost, so the
        fault-free layout is unchanged)."""
        out = _layout(self.domains)
        for name, lost in self._degraded.items():
            if lost:
                out[name]["lost_ranks"] = lost
        return out

    @property
    def degraded(self) -> Dict[str, int]:
        """Ranks lost per domain (empty when no recovery happened)."""
        return dict(self._degraded)

    def mark_degraded(self, name: str, lost_ranks: int = 1) -> None:
        """Record that a domain continues with fewer ranks after a
        shrink recovery."""
        if name not in self._by_name:
            raise KeyError(name)
        self._degraded[name] = self._degraded.get(name, 0) + int(lost_ranks)
        self.obs.counter("resilience.domains_degraded").inc()

    # -- execution ---------------------------------------------------------

    def _obs_for(self, name: str) -> Any:
        """Launched domains get their own forked rank when concurrent:
        the tracer/timer stacks are per-thread state."""
        if not self.concurrent:
            return self.obs
        handle = self._domain_obs.get(name)
        if handle is None:
            rank = 1 + [d.name for d in self.domains].index(name)
            handle = self.obs.fork(rank)
            self._domain_obs[name] = handle
        return handle

    def execute(self, name: str, unit: Callable[[Any], Any]) -> Any:
        """Run ``unit(obs)`` inline under the domain's span."""
        domain = self._by_name[name]
        with self.obs.span(f"cpl.domain.{domain.name}"):
            try:
                return unit(self.obs)
            except BaseException as exc:
                _tag_domain(exc, domain.name)
                raise

    def launch(self, name: str, unit: Callable[[Any], Any]) -> TaskHandle:
        """Schedule ``unit(obs)``; returns a join handle.

        Serial mode runs the unit right now on this thread (the caller
        decides when to *consume* the result — that deferral, not the
        execution timing, is what coupling lag means).  Concurrent mode
        submits it to the pool under the domain's forked obs.
        """
        domain = self._by_name[name]
        if self._executor is None:
            with self.obs.span(f"cpl.domain.{domain.name}"):
                try:
                    return TaskHandle(value=unit(self.obs), name=domain.name)
                except BaseException as exc:
                    _tag_domain(exc, domain.name)
                    raise
        domain_obs = self._obs_for(name)

        def run() -> Any:
            with domain_obs.span(f"cpl.domain.{domain.name}"):
                try:
                    return unit(domain_obs)
                except BaseException as exc:
                    _tag_domain(exc, domain.name)
                    raise

        handle = TaskHandle(
            future=self._executor.submit(run),
            name=domain.name,
            watchdog_s=self.watchdog_s,
            obs=self.obs,
        )
        self._outstanding = [h for h in self._outstanding if not h.done()]
        self._outstanding.append(handle)
        return handle

    def drain(self) -> None:
        """Block until every launched unit has finished."""
        for handle in self._outstanding:
            handle.wait()
        self._outstanding = []

    def reset(self, name: str) -> None:
        """Abandon a failed domain's outstanding work so it can re-enter
        the schedule after elastic recovery.

        Handles belonging to ``name`` are dropped without joining (a unit
        hung on a dead rank would otherwise deadlock the driver or trip
        the watchdog again during recovery); in concurrent mode the
        executor is recycled so an abandoned worker thread cannot block a
        relaunched unit.
        """
        if name not in self._by_name:
            raise KeyError(name)
        self._outstanding = [
            h for h in self._outstanding if h._name != name
        ]
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = ThreadPoolExecutor(
                max_workers=max(1, len(self.domains) - 1),
                thread_name_prefix="task-domain",
            )

    def shutdown(self) -> None:
        """Drain and release the thread pool (idempotent)."""
        self.drain()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
