"""The Component protocol and the shared ComponentContext.

§4's portability story is that *every* component runs through one
Kokkos-style kernel layer; §5.3's precision story is one model-wide
group-scaled FP64/FP32 policy.  Both require a uniform component
contract — the prerequisite the 40M-core coupled-modeling work and the
1 km full-Earth study both identify for scaling a coupled system.  This
module defines that contract:

* :class:`Component` — the protocol all four models (`GristModel`,
  `LicomModel`, `CiceModel`, `LandModel`) implement: lifecycle
  (``init`` / ``finalize``), coupling (``pre_coupling`` / ``step`` /
  ``post_coupling``), prognostic state access (``state`` /
  ``set_state``), restart I/O, and context binding;
* :class:`ComponentContext` — ONE shared execution space, ONE shared
  kernel registry (the §5.3 hash table), ONE precision policy, and ONE
  observability handle, bound into every component by the coupled
  driver so backend selection and mixed precision are model-wide
  decisions rather than per-component accidents;
* :func:`default_mixed_policy` — the §5.2.3 assignment: group-scaled
  FP32 for large-offset prognostics (ocean tracers, atmosphere
  thermodynamics), plain FP32 for velocities/fluxes/surface slabs, FP64
  for accumulators.

State keys are namespaced ``<component>.<variable>`` when the policy is
applied, so one policy spans the whole coupled system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Protocol, runtime_checkable

import numpy as np

from ..pp import (
    ExecutionSpace,
    KernelMetrics,
    KernelRegistry,
    KernelStats,
    Serial,
)
from ..precision import Precision, PrecisionPolicy

__all__ = [
    "Component",
    "ComponentContext",
    "default_mixed_policy",
    "precision_policy",
]


@runtime_checkable
class Component(Protocol):
    """The uniform contract every AP3ESM component implements.

    The coupled driver only ever talks to this surface: bind the shared
    context, feed imports, step, collect exports, and round-trip the
    prognostic state (restart I/O and the precision policy both go
    through ``state``/``set_state``).
    """

    name: str

    def init(self) -> None: ...

    def finalize(self) -> Dict[str, float]: ...

    def set_context(self, ctx: "ComponentContext") -> None: ...

    def pre_coupling(self, imports: Dict[str, np.ndarray]) -> None: ...

    def step(self, dt: Optional[float] = None) -> None: ...

    def post_coupling(self) -> Dict[str, np.ndarray]: ...

    def state(self) -> Dict[str, np.ndarray]: ...

    def set_state(self, state: Dict[str, np.ndarray]) -> None: ...

    def save_restart(self, directory) -> None: ...

    def load_restart(self, directory) -> None: ...


@dataclass
class ComponentContext:
    """One shared execution substrate for all components.

    Parameters
    ----------
    space:
        The execution space every component's kernels dispatch on
        (:func:`repro.pp.select_backend` picks it per machine).
    kernels:
        The shared hash-based registry; each component registers its
        kernels here at ``set_context`` so the coupled system has one
        host-side kernel table (the §5.3 registration pass).
    precision:
        The model-wide §5.2.3 precision policy over namespaced
        ``<component>.<variable>`` keys; empty assignments = pure FP64.
    obs:
        Observability handle (``repro.obs.Obs`` or the null handle).
    metrics:
        Per-kernel launch/iteration accumulators feeding the obs
        metrics registry (``pp.<kernel>.launches`` etc.).
    """

    space: ExecutionSpace = field(default_factory=Serial)
    kernels: KernelRegistry = field(default_factory=KernelRegistry)
    precision: PrecisionPolicy = field(default_factory=PrecisionPolicy)
    obs: Any = None
    metrics: KernelMetrics = field(default_factory=KernelMetrics)

    def __post_init__(self) -> None:
        if self.obs is None:
            from ..obs import NULL_OBS

            self.obs = NULL_OBS
        if self.metrics.obs is None:
            self.metrics.obs = self.obs

    def kernel_stats(self, kernel: str) -> KernelStats:
        return self.metrics.stats(kernel)

    # -- the mixed-precision state path (§5.2.3) ---------------------------

    def namespaced_state(self, component: Component) -> Dict[str, np.ndarray]:
        """The component's prognostic state under global keys."""
        return {
            f"{component.name}.{k}": v for k, v in component.state().items()
        }

    def apply_precision(self, component: Component) -> None:
        """Round-trip the component's prognostic state through its
        storage precision (quantize + dequantize via GroupScale).

        A no-op when no assignment touches this component — pure-FP64
        components pay nothing.
        """
        prefix = f"{component.name}."
        if not any(k.startswith(prefix) for k in self.precision.assignments):
            return
        rounded = self.precision.apply(self.namespaced_state(component))
        component.set_state({k[len(prefix):]: v for k, v in rounded.items()})

    def memory_report(self, components) -> Dict[str, float]:
        """Model-wide resident-state memory ledger under the policy."""
        state: Dict[str, np.ndarray] = {}
        for comp in components:
            state.update(self.namespaced_state(comp))
        report = self.precision.memory_report(state)
        n_groupscaled = sum(
            1 for k in state
            if self.precision.precision_of(k) is Precision.FP32_GROUPSCALED
        )
        n_fp32 = sum(
            1 for k in state
            if self.precision.precision_of(k) is Precision.FP32
        )
        report["n_variables"] = float(len(state))
        report["n_fp32"] = float(n_fp32)
        report["n_fp32_groupscaled"] = float(n_groupscaled)
        return report


def default_mixed_policy(group_size: int = 64) -> PrecisionPolicy:
    """The §5.2.3 model-wide assignment.

    Group-scaled FP32 for large-offset prognostics whose dynamic range
    within a group is small (ocean tracers, atmosphere thermodynamic
    columns, fluid thickness); plain FP32 for velocities, surface slabs
    and ice state; FP64 (unlisted) for accumulators like the land
    runoff total.
    """
    gs = Precision.FP32_GROUPSCALED
    f32 = Precision.FP32
    return PrecisionPolicy(
        assignments={
            # ocean: tracers carry large offsets -> group scaling.
            "ocn.t": gs, "ocn.s": gs,
            "ocn.u": f32, "ocn.v": f32,
            "ocn.eta": f32, "ocn.bt_u": f32, "ocn.bt_v": f32,
            # atmosphere: thermodynamic columns group-scale; winds cast.
            "atm.t_col": gs, "atm.q_col": gs, "atm.h": gs,
            "atm.u": f32, "atm.tracer": f32, "atm.tskin": f32,
            # sea ice: thin slab state tolerates a plain cast.
            "ice.thickness": f32, "ice.concentration": f32, "ice.tsurf": f32,
            # land: bucket state casts; runoff_total is an accumulator
            # and stays FP64 by omission.
            "lnd.tskin": f32, "lnd.bucket": f32, "lnd.snow": f32,
        },
        group_size=group_size,
    )


def precision_policy(name: str, group_size: int = 64) -> PrecisionPolicy:
    """Named policies the config/CLI select: ``fp64`` or ``mixed``."""
    if name == "fp64":
        return PrecisionPolicy()
    if name == "mixed":
        return default_mixed_policy(group_size)
    raise ValueError(f"unknown precision policy {name!r} (use 'fp64' or 'mixed')")
