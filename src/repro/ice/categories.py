"""Ice thickness distribution (ITD): CICE's multi-category scheme.

CICE4 carries the ice state in N thickness categories (the standard 5,
with WMO-ish boundaries), because thermodynamic growth is strongly
thickness-dependent — thin ice grows an order of magnitude faster than
thick ice, and a single slab underestimates winter growth badly (the
effect quantified in ``tests/test_ice_categories.py``).

State per cell: area fraction ``a_n`` and volume ``v_n`` per category.
The step (i) grows/melts each category with the 1/h conductive law,
(ii) **remaps** ice whose mean thickness crossed a boundary into the
neighboring category (the linear-remapping role of Lipscomb 2001, here as
conservative rebinning), (iii) forms new ice in the thinnest category.
Area and volume are conserved exactly by the remap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..utils.units import LATENT_HEAT_FUSION, RHO_ICE

__all__ = ["CATEGORY_BOUNDS", "ThicknessDistribution"]

#: CICE's standard 5-category boundaries (m): [0, .64), [.64, 1.39), ...
CATEGORY_BOUNDS = np.array([0.0, 0.64, 1.39, 2.47, 4.57, np.inf])


@dataclass
class ThicknessDistribution:
    """Per-cell multi-category ice state on ``n_cells`` points."""

    n_cells: int
    bounds: np.ndarray = field(default_factory=lambda: CATEGORY_BOUNDS.copy())
    conductivity: float = 2.0       # W/(m K)
    h_new_ice: float = 0.10         # m, thickness of newly formed ice

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        self.bounds = np.asarray(self.bounds, dtype=np.float64)
        if self.bounds[0] != 0.0 or not np.all(np.diff(self.bounds) > 0):
            raise ValueError("bounds must start at 0 and increase")
        n_cat = len(self.bounds) - 1
        self.area = np.zeros((n_cat, self.n_cells))    # fractions, sum <= 1
        self.volume = np.zeros((n_cat, self.n_cells))  # m (grid-cell mean)

    @property
    def n_categories(self) -> int:
        return self.area.shape[0]

    # -- aggregates ---------------------------------------------------------

    def concentration(self) -> np.ndarray:
        return self.area.sum(axis=0)

    def total_volume(self) -> np.ndarray:
        return self.volume.sum(axis=0)

    def mean_thickness(self) -> np.ndarray:
        conc = self.concentration()
        return np.where(conc > 1e-12, self.total_volume() / np.maximum(conc, 1e-12), 0.0)

    def category_thickness(self) -> np.ndarray:
        """(n_cat, n_cells) in-category mean thickness (0 where empty)."""
        return np.where(self.area > 1e-12, self.volume / np.maximum(self.area, 1e-12), 0.0)

    # -- initialization -------------------------------------------------------

    def seed(self, cells: np.ndarray, thickness: float, concentration: float) -> None:
        """Place slab ice on the given cells in the right category."""
        cat = int(np.searchsorted(self.bounds, thickness, side="right") - 1)
        cat = min(cat, self.n_categories - 1)
        self.area[cat, cells] = concentration
        self.volume[cat, cells] = concentration * thickness

    # -- physics ----------------------------------------------------------------

    def growth_rates(self, t_surface: np.ndarray, t_freeze: float = -1.8) -> np.ndarray:
        """(n_cat, n_cells) bottom growth rate (m/s), the 1/h law:
        dh/dt = k (T_f - T_s) / (h rho_i L_f); thin ice grows fastest."""
        h = np.maximum(self.category_thickness(), self.h_new_ice)
        flux = self.conductivity * np.maximum(t_freeze - t_surface, 0.0)[None, :] / h
        return flux / (RHO_ICE * LATENT_HEAT_FUSION)

    def step(
        self,
        dt: float,
        t_surface: np.ndarray,
        melt_flux: Optional[np.ndarray] = None,
        new_ice_area_rate: Optional[np.ndarray] = None,
    ) -> None:
        """One thermodynamic step: grow/melt per category, remap, new ice.

        Parameters
        ----------
        t_surface:
            (n_cells,) surface temperature (deg C) driving conduction.
        melt_flux:
            Optional (n_cells,) W/m^2 of melt energy applied to every
            occupied category.
        new_ice_area_rate:
            Optional (n_cells,) fraction/s of open water freezing over.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if t_surface.shape != (self.n_cells,):
            raise ValueError("t_surface must be (n_cells,)")

        occupied = self.area > 1e-12
        growth = self.growth_rates(t_surface)
        self.volume += np.where(occupied, dt * growth * self.area, 0.0)
        if melt_flux is not None:
            melt_rate = np.maximum(melt_flux, 0.0)[None, :] / (RHO_ICE * LATENT_HEAT_FUSION)
            self.volume -= np.where(occupied, dt * melt_rate * self.area, 0.0)
            self.volume = np.maximum(self.volume, 0.0)
            # Categories melted to zero volume lose their area.
            self.area = np.where(self.volume > 0.0, self.area, 0.0)

        self._remap()

        if new_ice_area_rate is not None:
            open_water = np.clip(1.0 - self.concentration(), 0.0, 1.0)
            da = np.minimum(dt * np.maximum(new_ice_area_rate, 0.0), open_water)
            self.area[0] += da
            self.volume[0] += da * self.h_new_ice

    def _remap(self) -> None:
        """Move ice whose in-category thickness crossed a boundary into the
        adjacent category (conservative: area and volume move together).

        Two passes with thickness recomputed at each step: upward
        promotions first, then downward demotions.  Merging keeps the
        receiving category in bounds (both contributions straddle the
        shared boundary from the same side), so the passes cannot undo
        each other.
        """
        # Upward pass: promote h >= upper bound.
        for n in range(self.n_categories - 1):
            h = self.category_thickness()
            up = (h[n] >= self.bounds[n + 1]) & (self.area[n] > 1e-12)
            if up.any():
                self.area[n + 1][up] += self.area[n][up]
                self.volume[n + 1][up] += self.volume[n][up]
                self.area[n][up] = 0.0
                self.volume[n][up] = 0.0
        # Downward pass: demote h < lower bound.
        for n in range(self.n_categories - 1, 0, -1):
            h = self.category_thickness()
            down = (h[n] < self.bounds[n]) & (self.area[n] > 1e-12)
            if down.any():
                self.area[n - 1][down] += self.area[n][down]
                self.volume[n - 1][down] += self.volume[n][down]
                self.area[n][down] = 0.0
                self.volume[n][down] = 0.0

    # -- comparisons ------------------------------------------------------------

    def as_single_slab(self) -> "ThicknessDistribution":
        """Collapse to one category (the single-slab control experiment)."""
        slab = ThicknessDistribution(
            self.n_cells,
            bounds=np.array([0.0, np.inf]),
            conductivity=self.conductivity,
            h_new_ice=self.h_new_ice,
        )
        slab.area[0] = self.concentration()
        slab.volume[0] = self.total_volume()
        return slab
