"""CICE4-like sea-ice component.

Thermodynamics (energy-balance growth/melt of thickness and concentration)
plus free-drift dynamics with upwind transport, on the *ocean's* tripolar
grid with the same land masking — "the configuration of the sea-ice
component is designed to mirror that of the ocean component" (§6.1), and
the 3-D point-removal optimization "has been applied to the sea-ice model"
too (§5.2.2): the ice state can run compressed on ocean surface points.

Imports: SST + freezing mask (ocean), downward radiation + air temperature
(atmosphere).  Exports: ice fraction and surface temperature (to both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..grids.tripolar import TripolarGrid
from ..ocn.metrics import CGridMetrics
from ..pp import ExecutionSpace, KernelStats, Serial
from ..utils.timers import TimerRegistry
from .kernels import run_thermodynamics

__all__ = ["CiceConfig", "CiceModel"]

T_FREEZE = -1.8       # deg C
ICE_ALBEDO = 0.65
OCEAN_ALBEDO = 0.07
MIN_CONCENTRATION = 1e-4


@dataclass
class CiceConfig:
    drift_wind_factor: float = 0.02    # ice drifts at 2 % of the 10 m wind
    drift_ocean_factor: float = 0.8
    conductivity: float = 2.0          # W/(m K) through the slab
    h_min: float = 0.05                # m, new-ice thickness
    start_time: float = 0.0


class CiceModel:
    """The sea-ice component (mirrors the ocean grid)."""

    name = "ice"

    def __init__(
        self,
        grid: TripolarGrid,
        config: CiceConfig | None = None,
        timers: Optional[TimerRegistry] = None,
    ) -> None:
        self.grid = grid
        self.config = config if config is not None else CiceConfig()
        self.timers = timers if timers is not None else TimerRegistry()
        self._space: ExecutionSpace = Serial()
        self._kmetrics = None  # Optional[repro.pp.KernelMetrics]
        self._kernels = None  # Optional[repro.pp.KernelRegistry]
        self._initialized = False

    def _kernel_stats(self, kernel: str) -> Optional[KernelStats]:
        return self._kmetrics.stats(kernel) if self._kmetrics is not None else None

    def init(self) -> None:
        self.metrics = CGridMetrics.build(self.grid)
        shape = self.metrics.shape
        self.thickness = np.zeros(shape)       # m (grid-cell mean)
        self.concentration = np.zeros(shape)   # 0..1
        self.tsurf = np.full(shape, T_FREEZE)  # deg C
        # Seed ice poleward of 70 deg where there is ocean.
        polar = (np.abs(self.grid.lat) > np.radians(70.0)) & self.grid.mask
        self.thickness[polar] = 1.5
        self.concentration[polar] = 0.9

        self.sst = np.full(shape, 0.0)
        self.freezing = np.zeros(shape, dtype=bool)
        self.gsw = np.zeros(shape)
        self.glw = np.zeros(shape)
        self.t_air = np.full(shape, T_FREEZE)
        self.u_drift = np.zeros(shape)
        self.v_drift = np.zeros(shape)
        self.time = self.config.start_time
        self.n_steps = 0
        self._initialized = True

    def finalize(self) -> Dict[str, float]:
        self._check()
        return {
            "steps": float(self.n_steps),
            "ice_volume": self.total_volume(),
            "ice_area": self.total_area(),
        }

    # -- Component protocol (shared context + uniform coupling surface) --------

    def set_context(self, ctx) -> None:
        """Bind the shared ComponentContext: thermodynamics dispatches on
        the context's space and joins the shared hash registry."""
        self._ctx = ctx
        self._space = ctx.space
        self._kmetrics = ctx.metrics
        self._kernels = ctx.kernels
        from .kernels import thermo_kernel

        ctx.kernels.register(thermo_kernel)

    def pre_coupling(self, imports: Dict[str, np.ndarray]) -> None:
        self.import_state(imports)

    def post_coupling(self) -> Dict[str, np.ndarray]:
        return self.export_state()

    def state(self) -> Dict[str, np.ndarray]:
        """The prognostic state (what restarts save and the precision
        policy round-trips)."""
        self._check()
        return {
            "thickness": self.thickness,
            "concentration": self.concentration,
            "tsurf": self.tsurf,
        }

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        self._check()
        for key in ("thickness", "concentration", "tsurf"):
            if key in state:
                setattr(self, key, state[key])

    # -- boundary exchange -----------------------------------------------------

    def import_state(self, fields: Dict[str, np.ndarray]) -> None:
        self._check()
        shape = self.metrics.shape
        mapping = {
            "sst": "sst", "freezing": "freezing", "gsw": "gsw", "glw": "glw",
            "t_air": "t_air", "u_drift": "u_drift", "v_drift": "v_drift",
        }
        for key, attr in mapping.items():
            if key in fields:
                arr = np.asarray(fields[key])
                if arr.shape != shape:
                    raise ValueError(f"{key} must be (nlat, nlon)")
                setattr(self, attr, arr)

    def export_state(self) -> Dict[str, np.ndarray]:
        self._check()
        return {
            "ice_fraction": self.concentration.copy(),
            "ice_thickness": self.thickness.copy(),
            "ice_tsurf": self.tsurf.copy(),
            "albedo": np.where(
                self.grid.mask,
                OCEAN_ALBEDO + (ICE_ALBEDO - OCEAN_ALBEDO) * self.concentration,
                0.3,
            ),
        }

    # -- stepping -----------------------------------------------------------------

    def step(self, dt: Optional[float] = None) -> None:
        self._check()
        if dt is None:
            raise ValueError("the ice component needs an explicit coupling dt")
        with self.timers.timed("ice_run"):
            with self.timers.timed("ice_thermo"):
                self._thermodynamics(dt)
            with self.timers.timed("ice_dynamics"):
                self._dynamics(dt)
        self.time += dt
        self.n_steps += 1

    def _thermodynamics(self, dt: float) -> None:
        """Slab energy balance: grow where the ocean is at freezing and
        losing heat, melt where the surface balance is positive.

        Dispatched as a tiled MDRange through :mod:`repro.ice.kernels` on
        the bound execution space (the shared coupled-run space)."""
        cfg = self.config
        freezing = np.asarray(self.freezing, dtype=bool)
        self.thickness, self.concentration, self.tsurf = run_thermodynamics(
            self._space,
            self.thickness, self.concentration, self.tsurf,
            self.gsw, self.glw, self.t_air, freezing, self.grid.mask,
            dt, cfg.conductivity, cfg.h_min,
            stats=self._kernel_stats("ice.thermo"), registry=self._kernels,
        )

    def _dynamics(self, dt: float) -> None:
        """Free drift + upwind transport of thickness/concentration."""
        cfg = self.config
        m = self.metrics
        u = cfg.drift_ocean_factor * self.u_drift
        v = cfg.drift_ocean_factor * self.v_drift
        # Mask to open faces.
        u = np.where(m.mask_u, u, 0.0)
        v = np.where(m.mask_v, v, 0.0)

        for name in ("thickness", "concentration"):
            c = getattr(self, name)
            east = np.roll(c, -1, axis=1)
            c_up_u = np.where(u > 0, c, east)
            flux_u = u * c_up_u * m.ly_east
            north = np.vstack([c[1:], c[-1:]])
            c_up_v = np.where(v > 0, c, north)
            flux_v = v * c_up_v * m.lx_north
            fv_south = np.vstack([np.zeros((1, c.shape[1])), flux_v[:-1]])
            div = (flux_u - np.roll(flux_u, 1, axis=1)) + (flux_v - fv_south)
            c_new = c - dt * div / m.area
            setattr(self, name, np.where(self.grid.mask, np.maximum(c_new, 0.0), 0.0))
        self.concentration = np.clip(self.concentration, 0.0, 1.0)

    # -- restart I/O (subfile format, §5.2.5) ----------------------------------------

    def save_restart(self, directory) -> None:
        """Write the prognostic ice state as a subfile restart set."""
        self._check()
        from ..io.restart import save_restart

        save_restart(
            directory,
            fields={
                "thickness": self.thickness,
                "concentration": self.concentration,
                "tsurf": self.tsurf,
            },
            scalars={"time": self.time, "n_steps": float(self.n_steps)},
        )

    def load_restart(self, directory) -> None:
        """Restore the prognostic ice state bit-exactly."""
        self._check()
        from ..io.restart import load_restart

        fields, scalars = load_restart(directory)
        self.thickness = fields["thickness"]
        self.concentration = fields["concentration"]
        self.tsurf = fields["tsurf"]
        self.time = scalars["time"]
        self.n_steps = int(scalars["n_steps"])

    # -- diagnostics ---------------------------------------------------------------

    def total_volume(self) -> float:
        return float(np.sum(self.metrics.area * self.thickness))

    def total_area(self) -> float:
        return float(np.sum(self.metrics.area * self.concentration))

    def _check(self) -> None:
        if not self._initialized:
            raise RuntimeError("model not initialized (call init())")
