"""Sea-ice thermodynamics kernel on the performance-portability layer.

The slab energy balance of :meth:`CiceModel._thermodynamics` is pointwise
over the (nlat, nlon) ocean surface, so it ports directly onto a tiled
``MDRangePolicy`` launch — one tile per CPE/thread block, ``np.ix_``
indexing, bit-identical to the whole-array reference because every point
is independent.  The free-drift dynamics stay in plain numpy: their
upwind stencils read neighbours across tile boundaries, which the
disjoint-chunk contract of :func:`repro.pp.parallel_for` does not cover.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..pp import ExecutionSpace, KernelRegistry, KernelStats, MDRangePolicy
from ..utils.units import LATENT_HEAT_FUSION, RHO_ICE, STEFAN_BOLTZMANN

__all__ = ["ICE_KERNELS", "make_ice_registry", "thermo_kernel", "run_thermodynamics"]

T_FREEZE = -1.8       # deg C
ICE_ALBEDO = 0.65
MIN_CONCENTRATION = 1e-4


def thermo_kernel(
    yi: np.ndarray,
    xi: np.ndarray,
    th_out: np.ndarray,
    cn_out: np.ndarray,
    ts_out: np.ndarray,
    thickness: np.ndarray,
    concentration: np.ndarray,
    tsurf: np.ndarray,
    gsw: np.ndarray,
    glw: np.ndarray,
    t_air: np.ndarray,
    freezing: np.ndarray,
    ocean: np.ndarray,
    dt: float,
    conductivity: float,
    h_min: float,
) -> None:
    """Slab energy balance on one (nlat, nlon) tile."""
    sl = np.ix_(yi, xi)
    th = thickness[sl]
    cn = concentration[sl]
    ts = tsurf[sl]
    oc = ocean[sl]
    frz = freezing[sl]
    t_k = ts + 273.15

    # Surface balance over ice (W/m^2, positive = melt).
    absorbed = (1.0 - ICE_ALBEDO) * gsw[sl] + glw[sl]
    emitted = 0.98 * STEFAN_BOLTZMANN * t_k**4
    sensible = 15.0 * (t_air[sl] - ts)
    balance = absorbed - emitted + sensible

    # Conductive flux through the slab keeps the bottom at freezing.
    h_eff = np.maximum(th, h_min)
    conductive = conductivity * (T_FREEZE - ts) / h_eff

    has_ice = (cn > MIN_CONCENTRATION) & oc
    # Melt at the top where the balance is positive.
    melt_rate = np.where(
        has_ice & (balance > 0), balance / (RHO_ICE * LATENT_HEAT_FUSION), 0.0
    )
    # Growth at the bottom where the ocean is freezing.
    grow_rate = np.where(
        oc & (frz | (has_ice & (conductive > 0))),
        np.abs(conductive) / (RHO_ICE * LATENT_HEAT_FUSION) + 1e-9,
        0.0,
    )
    th_new = np.where(oc, np.maximum(th + dt * (grow_rate - melt_rate), 0.0), 0.0)
    # Concentration follows thickness (lead closing/opening).
    cn_out[sl] = np.where(oc, np.clip(th_new / 0.5, 0.0, 1.0), 0.0)
    # New ice starts at the minimum thickness.
    new_ice = oc & frz & (th_new < h_min)
    th_out[sl] = np.where(new_ice, h_min, th_new)

    # Surface temperature relaxes toward the air over ice.
    ts_out[sl] = np.where(
        has_ice,
        ts + dt / 86400.0 * (np.minimum(t_air[sl], 0.0) - ts),
        T_FREEZE,
    )


def make_ice_registry(name: str = "ice") -> KernelRegistry:
    """A fresh per-context registry with the sea-ice kernels registered."""
    reg = KernelRegistry(name=name)
    reg.register(thermo_kernel)
    return reg


#: Backward-compatible module-level registry: the default used by
#: :func:`run_thermodynamics` when no per-context registry is passed.
ICE_KERNELS = make_ice_registry()


def run_thermodynamics(
    space: ExecutionSpace,
    thickness: np.ndarray,
    concentration: np.ndarray,
    tsurf: np.ndarray,
    gsw: np.ndarray,
    glw: np.ndarray,
    t_air: np.ndarray,
    freezing: np.ndarray,
    ocean: np.ndarray,
    dt: float,
    conductivity: float,
    h_min: float,
    stats: Optional[KernelStats] = None,
    tile: Optional[Tuple[int, int]] = None,
    registry: Optional[KernelRegistry] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(thickness, concentration, tsurf) after one thermodynamic step,
    dispatched as a tiled MDRange over the (nlat, nlon) surface."""
    reg = registry if registry is not None else ICE_KERNELS
    th_out = np.zeros_like(thickness)
    cn_out = np.zeros_like(concentration)
    ts_out = np.zeros_like(tsurf)
    policy = MDRangePolicy(thickness.shape, tile=tile)
    reg.launch(
        space, reg.register(thermo_kernel), policy,
        th_out, cn_out, ts_out,
        thickness, concentration, tsurf, gsw, glw, t_air, freezing, ocean,
        dt, conductivity, h_min, stats=stats,
    )
    return th_out, cn_out, ts_out
