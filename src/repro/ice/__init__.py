"""CICE4-like sea-ice component (mirrors the ocean grid)."""

from .categories import CATEGORY_BOUNDS, ThicknessDistribution
from .model import CiceConfig, CiceModel

__all__ = ["CiceConfig", "CiceModel", "ThicknessDistribution", "CATEGORY_BOUNDS"]
