"""Shallow-water dynamical core on the icosahedral C-grid (TRSK scheme).

This is the GRIST-family dycore reduced to a single layer: vector-invariant
shallow-water equations

    dh/dt = -div(h u)
    du/dt = q_e F_perp_e - grad( g (h + b) + K )_e  (+ optional diffusion)

with thickness ``h`` at cells, normal velocity ``u`` at edges, and PV ``q``
at dual vertices, advanced with RK4 (default) or forward-backward substeps.
The discrete operators come from :mod:`repro.grids.trsk`, so mass is
conserved to round-off and the PV (Coriolis) term is exactly
kinetic-energy-neutral — the invariants the test suite pins down, plus the
Williamson test-case-2 steady geostrophic flow whose error decays with
resolution.

Williamson et al. (1992) TC2 and TC5 (flow over an isolated mountain) are
provided as initial conditions; TC5-like states seed the typhoon and
coupled experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from ..grids import trsk
from ..grids.icos import IcosahedralGrid
from ..utils.units import EARTH_OMEGA, GRAVITY

__all__ = ["SWEState", "ShallowWaterDycore", "williamson_tc2", "isolated_mountain"]


@dataclass
class SWEState:
    """Prognostic shallow-water state."""

    h: np.ndarray  # (n_cells,) fluid thickness, m
    u: np.ndarray  # (n_edges,) normal velocity, m/s

    def copy(self) -> "SWEState":
        return SWEState(self.h.copy(), self.u.copy())


def williamson_tc2(
    grid: IcosahedralGrid,
    u0: float = 2.0 * math.pi * 6.371e6 / (12.0 * 86400.0),
    h0: float = 2.94e4 / GRAVITY,
) -> SWEState:
    """Williamson test case 2: steady zonal geostrophic flow.

    u = u0 cos(lat);  g h = g h0 - (R Omega u0 + u0^2/2) sin^2(lat).
    An exact steady solution of the continuous equations: discrete error
    growth measures dycore accuracy.
    """
    lat_c = grid.lat_cell
    coeff = grid.radius * EARTH_OMEGA * u0 + 0.5 * u0 * u0
    h = h0 - (coeff / GRAVITY) * np.sin(lat_c) ** 2

    def vf(xyz):
        # Zonal flow u0*cos(lat) = solid-body rotation about z.
        return (u0 / grid.radius) * np.cross([0.0, 0.0, 1.0], xyz) * grid.radius

    u = grid.project_to_edges(vf)
    return SWEState(h=h, u=u)


def isolated_mountain(
    grid: IcosahedralGrid,
    u0: float = 20.0,
    h0: float = 5960.0,
    mountain_height: float = 2000.0,
    center_lon: float = -math.pi / 2,
    center_lat: float = math.pi / 6,
    radius_rad: float = math.pi / 9,
) -> Tuple[SWEState, np.ndarray]:
    """Williamson TC5: zonal flow over an isolated conical mountain.

    Returns the state and the terrain field ``b`` (m).
    """
    lat_c = grid.lat_cell
    lon_c = grid.lon_cell
    coeff = grid.radius * EARTH_OMEGA * u0 + 0.5 * u0 * u0
    h_surf = h0 - (coeff / GRAVITY) * np.sin(lat_c) ** 2

    r = np.sqrt(
        np.minimum(
            radius_rad**2,
            (lon_c - center_lon) ** 2 + (lat_c - center_lat) ** 2,
        )
    )
    b = mountain_height * (1.0 - r / radius_rad)

    def vf(xyz):
        return (u0 / grid.radius) * np.cross([0.0, 0.0, 1.0], xyz) * grid.radius

    u = grid.project_to_edges(vf)
    return SWEState(h=h_surf - b, u=u), b


@dataclass
class ShallowWaterDycore:
    """TRSK shallow-water stepper.

    Parameters
    ----------
    grid:
        The icosahedral mesh.
    terrain:
        Optional bottom topography ``b`` at cells (m).
    diffusion:
        Del^2 viscosity coefficient (m^2/s); 0 disables it.  The dycore's
        invariant tests run with 0; long runs use a small value for the
        grid-scale noise any C-grid scheme accumulates.
    """

    grid: IcosahedralGrid
    terrain: Optional[np.ndarray] = None
    diffusion: float = 0.0
    f_dual: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.f_dual = 2.0 * EARTH_OMEGA * np.sin(self.grid.lat_dual)
        if self.terrain is None:
            self.terrain = np.zeros(self.grid.n_cells)
        if len(self.terrain) != self.grid.n_cells:
            raise ValueError("terrain must be a cell field")

    # -- spatial tendencies -------------------------------------------------

    def tendencies(self, state: SWEState) -> SWEState:
        g = self.grid
        h, u = state.h, state.u
        h_e = trsk.cell_to_edge(g, h)
        flux = h_e * u

        dh = -trsk.divergence(g, flux)

        zeta = trsk.curl(g, u)
        h_dual = trsk.cell_to_dual(g, h)
        q_dual = (zeta + self.f_dual) / np.maximum(h_dual, 1e-8)
        q_e = trsk.dual_to_edge(g, q_dual)
        f_perp = trsk.tangential(g, flux)

        ke = trsk.kinetic_energy_cell(g, u)
        bern = GRAVITY * (h + self.terrain) + ke
        du = q_e * f_perp - trsk.gradient(g, bern)
        if self.diffusion > 0.0:
            du = du + self.diffusion * trsk.laplacian_edge(g, u)
        return SWEState(h=dh, u=du)

    # -- time stepping --------------------------------------------------------

    def step_rk4(self, state: SWEState, dt: float) -> SWEState:
        """Classical RK4 step (the accuracy-bearing integrator)."""
        k1 = self.tendencies(state)
        k2 = self.tendencies(SWEState(state.h + 0.5 * dt * k1.h, state.u + 0.5 * dt * k1.u))
        k3 = self.tendencies(SWEState(state.h + 0.5 * dt * k2.h, state.u + 0.5 * dt * k2.u))
        k4 = self.tendencies(SWEState(state.h + dt * k3.h, state.u + dt * k3.u))
        return SWEState(
            h=state.h + (dt / 6.0) * (k1.h + 2 * k2.h + 2 * k3.h + k4.h),
            u=state.u + (dt / 6.0) * (k1.u + 2 * k2.u + 2 * k3.u + k4.u),
        )

    def max_stable_dt(self, state: SWEState, cfl: float = 0.5) -> float:
        """Gravity-wave CFL limit: dt <= cfl * min(de) / sqrt(g h_max)."""
        c = math.sqrt(GRAVITY * float(np.max(state.h + self.terrain)))
        umax = float(np.abs(state.u).max())
        return cfl * float(self.grid.de.min()) / max(c + umax, 1e-12)

    # -- invariants ------------------------------------------------------------

    def total_mass(self, state: SWEState) -> float:
        return float(np.sum(self.grid.area_cell * state.h))

    def total_energy(self, state: SWEState) -> float:
        """Kinetic + available potential energy (J/kg integrated over area)."""
        g = self.grid
        ke_cell = trsk.kinetic_energy_cell(g, state.u)
        h = state.h
        b = self.terrain
        pe = 0.5 * GRAVITY * (h + b) ** 2 - 0.5 * GRAVITY * b**2
        return float(np.sum(g.area_cell * (h * ke_cell + pe)))

    def total_enstrophy(self, state: SWEState) -> float:
        g = self.grid
        zeta = trsk.curl(g, state.u)
        h_dual = trsk.cell_to_dual(g, state.h)
        q = (zeta + self.f_dual) / np.maximum(h_dual, 1e-8)
        return float(np.sum(g.area_dual * 0.5 * h_dual * q * q))
